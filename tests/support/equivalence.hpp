// Shared harness for schema-equivalence testing: run a program through
// the reference interpreter and through the translator+machine under a
// given configuration, and compare final stores.
#pragma once

#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "lang/ast.hpp"

namespace ctdf::testing {

struct SchemaConfig {
  std::string name;
  translate::TranslateOptions topt;
  machine::MachineOptions mopt;
};

/// A representative matrix of schema × machine configurations covering
/// every translation feature (Schemas 1/2/3, optimized switches, memory
/// elimination, parallel reads, both loop modes, finite and unlimited
/// width).
[[nodiscard]] std::vector<SchemaConfig> standard_configs();

/// Runs `prog` under `cfg` and compares against the interpreter.
/// Returns an empty string on success, a diagnostic otherwise.
/// Programs that exhaust interpreter fuel are reported as success
/// ("skip" semantics — nothing to compare against).
[[nodiscard]] std::string check_equivalence(const lang::Program& prog,
                                            const SchemaConfig& cfg);

/// Convenience: all standard configs; returns the first failure or "".
[[nodiscard]] std::string check_all_configs(const lang::Program& prog);

}  // namespace ctdf::testing
