#include "support/equivalence.hpp"

#include <sstream>

namespace ctdf::testing {

std::vector<SchemaConfig> standard_configs() {
  using translate::CoverStrategy;
  using translate::TranslateOptions;
  std::vector<SchemaConfig> out;

  const auto add = [&](std::string name, TranslateOptions topt,
                       machine::LoopMode mode, unsigned width) {
    machine::MachineOptions mopt;
    mopt.loop_mode = mode;
    mopt.width = width;
    mopt.mem_latency = 5;
    out.push_back({std::move(name), topt, mopt});
  };

  add("schema1", TranslateOptions::schema1(), machine::LoopMode::kBarrier, 0);
  add("schema2/barrier", TranslateOptions::schema2(),
      machine::LoopMode::kBarrier, 0);
  add("schema2/pipelined", TranslateOptions::schema2(),
      machine::LoopMode::kPipelined, 0);
  add("schema2/width2", TranslateOptions::schema2(),
      machine::LoopMode::kBarrier, 2);
  add("schema2opt/barrier", TranslateOptions::schema2_optimized(),
      machine::LoopMode::kBarrier, 0);
  add("schema2opt/pipelined", TranslateOptions::schema2_optimized(),
      machine::LoopMode::kPipelined, 0);

  {
    auto t = TranslateOptions::schema2_optimized();
    t.eliminate_memory = true;
    add("memelim/barrier", t, machine::LoopMode::kBarrier, 0);
    add("memelim/pipelined", t, machine::LoopMode::kPipelined, 0);
    t.parallel_reads = true;
    add("memelim+par-reads", t, machine::LoopMode::kPipelined, 0);
  }
  {
    auto t = TranslateOptions::schema2();
    t.parallel_reads = true;
    add("schema2+par-reads", t, machine::LoopMode::kBarrier, 0);
  }
  add("schema3/alias-class",
      TranslateOptions::schema3(CoverStrategy::kAliasClass),
      machine::LoopMode::kBarrier, 0);
  add("schema3/unified", TranslateOptions::schema3(CoverStrategy::kUnified),
      machine::LoopMode::kPipelined, 0);
  add("schema3/component",
      TranslateOptions::schema3(CoverStrategy::kComponent),
      machine::LoopMode::kBarrier, 0);
  {
    auto t = TranslateOptions::schema3(CoverStrategy::kAliasClass);
    t.optimize_switches = true;
    t.parallel_reads = true;
    add("schema3opt", t, machine::LoopMode::kPipelined, 3);
  }
  {
    auto t = TranslateOptions::schema2_optimized();
    t.post_optimize = true;
    add("post-opt/pipelined", t, machine::LoopMode::kPipelined, 0);
    t.eliminate_memory = true;
    add("post-opt+memelim", t, machine::LoopMode::kBarrier, 2);
  }
  {
    auto t = TranslateOptions::schema2_optimized();
    t.max_fanout = 2;  // Monsoon destination-list bound
    add("fanout2/pipelined", t, machine::LoopMode::kPipelined, 0);
  }
  {
    // Macro-op fusion (--opt=all): chains collapse into kMacro nodes;
    // stores must stay byte-identical to every other rung.
    auto t = TranslateOptions::schema2_optimized();
    t.post_optimize = true;
    t.opt_passes = dfg::PassSet::all();
    add("fuse/pipelined", t, machine::LoopMode::kPipelined, 0);
    t.eliminate_memory = true;
    add("fuse+memelim", t, machine::LoopMode::kBarrier, 2);
    t.fuse_limit = 2;  // maximal segmentation: every macro is one pair
    add("fuse/limit2", t, machine::LoopMode::kPipelined, 0);
  }
  {
    // Everything at once: the full optimizing pipeline, fusion included.
    auto t = TranslateOptions::schema2_optimized();
    t.dead_store_elimination = true;
    t.eliminate_memory = true;
    t.parallel_reads = true;
    t.post_optimize = true;
    t.opt_passes = dfg::PassSet::all();
    t.max_fanout = 2;
    add("kitchen-sink", t, machine::LoopMode::kPipelined, 4);
  }
  {
    // --check=integrity configurations: every translation that reaches
    // here must also run violation-free under the tagged
    // dataflow-integrity checker, on each engine. check_equivalence
    // treats a checker report as a failed run, so the whole fuzz corpus
    // doubles as the checker's false-positive gauntlet.
    add("integrity/scan-barrier", TranslateOptions::schema2_optimized(),
        machine::LoopMode::kBarrier, 0);
    out.back().mopt.check = machine::CheckMode::kIntegrity;

    auto t = TranslateOptions::schema2_optimized();
    t.eliminate_memory = true;
    add("integrity/event-pipelined", t, machine::LoopMode::kPipelined, 0);
    out.back().mopt.check = machine::CheckMode::kIntegrity;
    out.back().mopt.engine = machine::EngineKind::kEvent;

    auto p = TranslateOptions::schema2();
    p.parallel_reads = true;
    add("integrity/par-reads-threads", p, machine::LoopMode::kPipelined, 0);
    out.back().mopt.check = machine::CheckMode::kIntegrity;
    out.back().mopt.host_threads = 3;
    out.back().mopt.processors = 2;

    // Fused macro firings must pass the tagged integrity checker too:
    // a macro is one match and one emitted token, so the slot-tag and
    // response accounting must be indistinguishable from the unfused
    // chain's head firing.
    auto f = TranslateOptions::schema2_optimized();
    f.eliminate_memory = true;
    f.post_optimize = true;
    f.opt_passes = dfg::PassSet::all();
    add("integrity/fused-event", f, machine::LoopMode::kPipelined, 0);
    out.back().mopt.check = machine::CheckMode::kIntegrity;
    out.back().mopt.engine = machine::EngineKind::kEvent;
  }
  {
    // Armed-but-generous run budget: a ten-minute deadline and a token
    // allowance no fuzz program approaches. Engaging the budget checks
    // must not perturb a single store cell relative to every unarmed
    // rung above — the poll is observation, never scheduling.
    add("budget/generous-deadline", TranslateOptions::schema2_optimized(),
        machine::LoopMode::kPipelined, 0);
    out.back().mopt.budget.deadline_ms = 600'000;
    out.back().mopt.budget.max_tokens = 1ull << 60;

    auto t = TranslateOptions::schema2_optimized();
    t.eliminate_memory = true;
    add("budget/generous-async", t, machine::LoopMode::kBarrier, 0);
    out.back().mopt.budget.deadline_ms = 600'000;
    out.back().mopt.budget.max_tokens = 1ull << 60;
    out.back().mopt.parallel = machine::ParallelMode::kAsync;
    out.back().mopt.host_threads = 3;
  }
  {
    // Async work-stealing engine, both disciplines: every fuzz program
    // must reach the interpreter's store under epoch-fenced and
    // free-running schedules alike. These configs are also what the CI
    // ThreadSanitizer job drives through the corpus.
    add("async/det", TranslateOptions::schema2_optimized(),
        machine::LoopMode::kPipelined, 0);
    out.back().mopt.parallel = machine::ParallelMode::kAsync;
    out.back().mopt.host_threads = 4;

    auto t = TranslateOptions::schema2_optimized();
    t.eliminate_memory = true;
    t.parallel_reads = true;
    add("async/free", t, machine::LoopMode::kBarrier, 0);
    out.back().mopt.parallel = machine::ParallelMode::kAsync;
    out.back().mopt.host_threads = 4;
    out.back().mopt.deterministic = false;

    auto p = TranslateOptions::schema2();
    p.parallel_reads = true;
    add("async/integrity-multi-pe", p, machine::LoopMode::kPipelined, 0);
    out.back().mopt.check = machine::CheckMode::kIntegrity;
    out.back().mopt.parallel = machine::ParallelMode::kAsync;
    out.back().mopt.host_threads = 3;
    out.back().mopt.processors = 2;
  }
  return out;
}

std::string check_equivalence(const lang::Program& prog,
                              const SchemaConfig& cfg) {
  const lang::InterpResult ref = lang::interpret(prog, 2'000'000);
  if (!ref.completed) return "";  // nothing to compare against

  try {
    const auto tx = core::compile(prog, cfg.topt);
    const auto res = core::execute(tx, cfg.mopt);
    if (!res.stats.completed)
      return cfg.name + ": machine did not complete: " + res.stats.error;
    if (!(res.store == ref.store)) {
      std::ostringstream os;
      os << cfg.name << ": final store differs from interpreter;";
      for (std::size_t i = 0; i < ref.store.cells.size(); ++i) {
        if (ref.store.cells[i] != res.store.cells[i])
          os << " cell[" << i << "] expected " << ref.store.cells[i]
             << " got " << res.store.cells[i];
      }
      os << "\nprogram:\n" << prog.to_string();
      return os.str();
    }
  } catch (const std::exception& e) {
    return cfg.name + ": exception: " + e.what() + "\nprogram:\n" +
           prog.to_string();
  }
  return "";
}

std::string check_all_configs(const lang::Program& prog) {
  for (const SchemaConfig& cfg : standard_configs()) {
    std::string err = check_equivalence(prog, cfg);
    if (!err.empty()) return err;
  }
  return "";
}

}  // namespace ctdf::testing
