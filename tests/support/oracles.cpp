#include "support/oracles.hpp"

#include <algorithm>

namespace ctdf::testing {

namespace {

/// Nodes reachable from `from` without passing through `blocked`
/// (the start node `from` itself is returned even if == blocked only
/// when trivially so; we never need that case).
std::vector<bool> reach_avoiding(const cfg::Graph& g, cfg::NodeId from,
                                 cfg::NodeId blocked) {
  std::vector<bool> seen(g.size(), false);
  if (from == blocked) return seen;
  std::vector<cfg::NodeId> stack{from};
  seen[from.index()] = true;
  while (!stack.empty()) {
    const cfg::NodeId n = stack.back();
    stack.pop_back();
    for (cfg::NodeId s : g.succs(n)) {
      if (s == blocked || seen[s.index()]) continue;
      seen[s.index()] = true;
      stack.push_back(s);
    }
  }
  return seen;
}

}  // namespace

bool naive_postdominates(const cfg::Graph& g, cfg::NodeId m, cfg::NodeId n) {
  if (m == n) return true;
  // m postdominates n iff every path n ⇒ end passes m, i.e. end is not
  // reachable from n when m is removed.
  const auto seen = reach_avoiding(g, n, m);
  return !seen[g.end().index()];
}

bool naive_between(const cfg::Graph& g, cfg::NodeId f, cfg::NodeId ipostdom_f,
                   cfg::NodeId n) {
  // Non-null path F ⇒ N avoiding P: search from F's successors.
  for (cfg::NodeId s : g.succs(f)) {
    if (s == ipostdom_f) continue;
    if (s == n) return true;
    const auto seen = reach_avoiding(g, s, ipostdom_f);
    if (seen[n.index()]) return true;
  }
  return false;
}

bool naive_control_dependent(const cfg::Graph& g, cfg::NodeId n,
                             cfg::NodeId f) {
  // Definition 4 condition 2: N must not strictly postdominate F.
  if (n != f && naive_postdominates(g, n, f)) return false;
  // Condition 1 (a non-null path F ⇒ N on which N postdominates every
  // node after F) holds iff N postdominates some successor of F — the
  // classic equivalent formulation.
  for (cfg::NodeId s : g.succs(f))
    if (naive_postdominates(g, n, s)) return true;
  return false;
}

std::vector<cfg::NodeId> naive_cd_plus(const cfg::Graph& g, cfg::NodeId n) {
  std::vector<bool> in_closure(g.size(), false);
  std::vector<bool> in_result(g.size(), false);
  std::vector<cfg::NodeId> work{n};
  in_closure[n.index()] = true;
  while (!work.empty()) {
    const cfg::NodeId cur = work.back();
    work.pop_back();
    for (cfg::NodeId f : g.all_nodes()) {
      if (g.succs(f).size() < 2) continue;
      if (!naive_control_dependent(g, cur, f)) continue;
      in_result[f.index()] = true;
      if (!in_closure[f.index()]) {
        in_closure[f.index()] = true;
        work.push_back(f);
      }
    }
  }
  std::vector<cfg::NodeId> out;
  for (cfg::NodeId f : g.all_nodes())
    if (in_result[f.index()]) out.push_back(f);
  return out;
}

}  // namespace ctdf::testing
