// Brute-force oracles used to cross-check the efficient analyses.
//
// These deliberately use the *definitions* from the paper (path
// enumeration / naive fixpoints), not clever algorithms, so agreement
// with the production implementations is meaningful evidence.
#pragma once

#include <vector>

#include "cfg/graph.hpp"

namespace ctdf::testing {

/// Naive postdominance: m postdominates n iff removing m makes end
/// unreachable from n (plus reflexivity). O(N·E) per query set.
[[nodiscard]] bool naive_postdominates(const cfg::Graph& g, cfg::NodeId m,
                                       cfg::NodeId n);

/// Definition 1: N is between F and ipostdom(F) iff there is a non-null
/// path F ⇒ N that does not pass through ipostdom(F). (Computed by BFS
/// from F's successors avoiding P.)
[[nodiscard]] bool naive_between(const cfg::Graph& g, cfg::NodeId f,
                                 cfg::NodeId ipostdom_f, cfg::NodeId n);

/// Definition 4, checked directly: N control dependent on F.
[[nodiscard]] bool naive_control_dependent(const cfg::Graph& g, cfg::NodeId n,
                                           cfg::NodeId f);

/// CD⁺(n) by naive fixpoint over naive_control_dependent.
[[nodiscard]] std::vector<cfg::NodeId> naive_cd_plus(const cfg::Graph& g,
                                                     cfg::NodeId n);

}  // namespace ctdf::testing
