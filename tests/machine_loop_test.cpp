// Direct tests of the machine's loop-context mechanics on hand-built
// graphs: barrier vs pipelined entry, per-iteration contexts, exit
// retagging, and nested invocation contexts. These pin down the
// contract the translator relies on, independent of any translation.
#include <gtest/gtest.h>

#include "dfg/graph.hpp"
#include "machine/machine.hpp"

namespace ctdf::machine {
namespace {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;

NodeId add_start(Graph& g, std::vector<std::int64_t> values) {
  Node s;
  s.kind = OpKind::kStart;
  s.num_outputs = static_cast<std::uint16_t>(values.size());
  s.start_values = std::move(values);
  const NodeId n = g.add(std::move(s));
  g.set_start(n);
  return n;
}

NodeId add_end(Graph& g, std::uint16_t inputs) {
  Node e;
  e.kind = OpKind::kEnd;
  e.num_inputs = inputs;
  const NodeId n = g.add(std::move(e));
  g.set_end(n);
  return n;
}

/// A hand-built counted loop over one value token:
///   start(v=0) → le → [v+1] → switch(v < trips) → (T: back to le,
///   F: exit) → store → end
/// Returns the built graph; `store_cell` receives the final value.
struct CountLoop {
  Graph g;
  NodeId le, lx;

  explicit CountLoop(std::int64_t trips) {
    const NodeId s = add_start(g, {0});
    le = g.add_loop_entry(cfg::LoopId{0u}, 1, "L");
    g.connect({s, 0}, {le, 0}, false);

    const NodeId inc = g.add_binop(lang::BinOp::kAdd, "v+1");
    g.connect({le, 0}, {inc, 0}, false);
    g.bind_literal({inc, 1}, 1);

    const NodeId cmp = g.add_binop(lang::BinOp::kLt, "v<t");
    g.connect({inc, 0}, {cmp, 0}, false);
    g.bind_literal({cmp, 1}, trips);

    const NodeId sw = g.add_switch("sw");
    g.connect({inc, 0}, {sw, dfg::port::kSwitchData}, false);
    g.connect({cmp, 0}, {sw, dfg::port::kSwitchPred}, false);
    g.connect({sw, dfg::port::kSwitchTrue}, {le, 0}, false);  // back edge

    lx = g.add_loop_exit(cfg::LoopId{0u}, 1, "X");
    g.connect({sw, dfg::port::kSwitchFalse}, {lx, 0}, false);

    const NodeId st = g.add_store(0, "out");
    g.connect({lx, 0}, {st, 0}, false);
    g.connect({lx, 0}, {st, 1}, false);
    const NodeId e = add_end(g, 1);
    g.connect({st, 0}, {e, 0}, true);
  }
};

class LoopModes : public ::testing::TestWithParam<LoopMode> {};

TEST_P(LoopModes, CountedLoopComputesTripCount) {
  CountLoop loop(7);
  ASSERT_TRUE(loop.g.validate().empty());
  MachineOptions o;
  o.loop_mode = GetParam();
  const RunResult r = run(loop.g, 1, o);
  ASSERT_TRUE(r.stats.completed) << r.stats.error;
  EXPECT_EQ(r.store.cells[0], 7);
  // One context per iteration (the final iteration exits without
  // starting context 8).
  EXPECT_EQ(r.stats.contexts_allocated, 7u);
}

TEST_P(LoopModes, ZeroTripLoopStillExits) {
  // trips = 1: first iteration immediately exits.
  CountLoop loop(1);
  MachineOptions o;
  o.loop_mode = GetParam();
  const RunResult r = run(loop.g, 1, o);
  ASSERT_TRUE(r.stats.completed) << r.stats.error;
  EXPECT_EQ(r.store.cells[0], 1);
  EXPECT_EQ(r.stats.contexts_allocated, 1u);
}

INSTANTIATE_TEST_SUITE_P(Both, LoopModes,
                         ::testing::Values(LoopMode::kBarrier,
                                           LoopMode::kPipelined),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(LoopContexts, BarrierEntryWaitsForAllPorts) {
  // Two circulating tokens; one is delayed through a long gate chain.
  // Under barrier control the loop entry must not start iteration 2
  // until both iteration-1 tokens returned: contexts stay in lockstep.
  Graph g;
  const NodeId s = add_start(g, {0, 0});
  const NodeId le = g.add_loop_entry(cfg::LoopId{0u}, 2, "L");
  g.connect({s, 0}, {le, 0}, false);
  g.connect({s, 1}, {le, 1}, false);

  // Port 0: fast increment; port 1: slow identity (3 gates).
  const NodeId inc = g.add_binop(lang::BinOp::kAdd, "i+1");
  g.connect({le, 0}, {inc, 0}, false);
  g.bind_literal({inc, 1}, 1);
  dfg::PortRef slow{le, 1};
  for (int i = 0; i < 3; ++i) {
    const NodeId gate = g.add_gate("slow");
    g.connect(slow, {gate, 0}, false);
    g.connect(slow, {gate, 1}, false);
    slow = {gate, 0};
  }
  const NodeId cmp = g.add_binop(lang::BinOp::kLt, "i<4");
  g.connect({inc, 0}, {cmp, 0}, false);
  g.bind_literal({cmp, 1}, 4);

  const NodeId sw0 = g.add_switch("sw0");
  g.connect({inc, 0}, {sw0, dfg::port::kSwitchData}, false);
  g.connect({cmp, 0}, {sw0, dfg::port::kSwitchPred}, false);
  const NodeId sw1 = g.add_switch("sw1");
  g.connect(slow, {sw1, dfg::port::kSwitchData}, false);
  g.connect({cmp, 0}, {sw1, dfg::port::kSwitchPred}, false);

  g.connect({sw0, dfg::port::kSwitchTrue}, {le, 0}, false);
  g.connect({sw1, dfg::port::kSwitchTrue}, {le, 1}, false);

  const NodeId lx = g.add_loop_exit(cfg::LoopId{0u}, 2, "X");
  g.connect({sw0, dfg::port::kSwitchFalse}, {lx, 0}, false);
  g.connect({sw1, dfg::port::kSwitchFalse}, {lx, 1}, false);

  const NodeId st = g.add_store(0, "out");
  g.connect({lx, 0}, {st, 0}, false);
  g.connect({lx, 0}, {st, 1}, false);
  const NodeId sy = g.add_synch(2);
  g.connect({st, 0}, {sy, 0}, true);
  g.connect({lx, 1}, {sy, 1}, false);
  const NodeId e = add_end(g, 1);
  g.connect({sy, 0}, {e, 0}, true);
  ASSERT_TRUE(g.validate().empty());

  MachineOptions barrier, pipelined;
  barrier.loop_mode = LoopMode::kBarrier;
  pipelined.loop_mode = LoopMode::kPipelined;
  const RunResult rb = run(g, 1, barrier);
  const RunResult rp = run(g, 1, pipelined);
  ASSERT_TRUE(rb.stats.completed) << rb.stats.error;
  ASSERT_TRUE(rp.stats.completed) << rp.stats.error;
  EXPECT_EQ(rb.store.cells[0], 4);
  EXPECT_EQ(rp.store.cells[0], 4);
  // Pipelined entry lets the fast chain run ahead of the slow one:
  // fewer cycles than the barrier, same answer.
  EXPECT_LT(rp.stats.cycles, rb.stats.cycles);
}

TEST(LoopContexts, NestedLoopsGetDistinctInvocationContexts) {
  // Outer counted loop around an inner counted loop: the inner loop is
  // re-invoked once per outer iteration, each time from a different
  // invocation context. total = outer(3) + inner(3 per outer * 2) = 9.
  Graph g;
  const NodeId s = add_start(g, {0});
  const NodeId ole = g.add_loop_entry(cfg::LoopId{0u}, 1, "outer");
  g.connect({s, 0}, {ole, 0}, false);

  const NodeId oinc = g.add_binop(lang::BinOp::kAdd, "o+1");
  g.connect({ole, 0}, {oinc, 0}, false);
  g.bind_literal({oinc, 1}, 1);

  // Inner loop: multiplies the outer value by 2^2 via two doublings.
  const NodeId ile = g.add_loop_entry(cfg::LoopId{1u}, 1, "inner");
  // Encode (value, count) in one token: value*16 + count.
  const NodeId pack = g.add_binop(lang::BinOp::kMul, "pack");
  g.connect({oinc, 0}, {pack, 0}, false);
  g.bind_literal({pack, 1}, 16);
  g.connect({pack, 0}, {ile, 0}, false);

  const NodeId bump = g.add_binop(lang::BinOp::kAdd, "count+1");
  g.connect({ile, 0}, {bump, 0}, false);
  g.bind_literal({bump, 1}, 1);
  const NodeId icmp = g.add_binop(lang::BinOp::kMod, "count");
  g.connect({bump, 0}, {icmp, 0}, false);
  g.bind_literal({icmp, 1}, 16);
  const NodeId itest = g.add_binop(lang::BinOp::kLt, "count<2");
  g.connect({icmp, 0}, {itest, 0}, false);
  g.bind_literal({itest, 1}, 2);

  const NodeId isw = g.add_switch("isw");
  g.connect({bump, 0}, {isw, dfg::port::kSwitchData}, false);
  g.connect({itest, 0}, {isw, dfg::port::kSwitchPred}, false);
  g.connect({isw, dfg::port::kSwitchTrue}, {ile, 0}, false);
  const NodeId ilx = g.add_loop_exit(cfg::LoopId{1u}, 1, "ix");
  g.connect({isw, dfg::port::kSwitchFalse}, {ilx, 0}, false);

  // Unpack: v = token / 16 (count folded away).
  const NodeId unpack = g.add_binop(lang::BinOp::kDiv, "unpack");
  g.connect({ilx, 0}, {unpack, 0}, false);
  g.bind_literal({unpack, 1}, 16);

  const NodeId otest = g.add_binop(lang::BinOp::kLt, "o<3");
  g.connect({unpack, 0}, {otest, 0}, false);
  g.bind_literal({otest, 1}, 3);
  const NodeId osw = g.add_switch("osw");
  g.connect({unpack, 0}, {osw, dfg::port::kSwitchData}, false);
  g.connect({otest, 0}, {osw, dfg::port::kSwitchPred}, false);
  g.connect({osw, dfg::port::kSwitchTrue}, {ole, 0}, false);
  const NodeId olx = g.add_loop_exit(cfg::LoopId{0u}, 1, "ox");
  g.connect({osw, dfg::port::kSwitchFalse}, {olx, 0}, false);

  const NodeId st = g.add_store(0, "out");
  g.connect({olx, 0}, {st, 0}, false);
  g.connect({olx, 0}, {st, 1}, false);
  const NodeId e = add_end(g, 1);
  g.connect({st, 0}, {e, 0}, true);
  ASSERT_TRUE(g.validate().empty());

  for (const auto mode : {LoopMode::kBarrier, LoopMode::kPipelined}) {
    MachineOptions o;
    o.loop_mode = mode;
    const RunResult r = run(g, 1, o);
    ASSERT_TRUE(r.stats.completed) << to_string(mode) << ": "
                                   << r.stats.error;
    EXPECT_EQ(r.store.cells[0], 3);
    // 3 outer iterations + 2 inner iterations per outer invocation.
    EXPECT_EQ(r.stats.contexts_allocated, 3u + 3u * 2u) << to_string(mode);
  }
}

}  // namespace
}  // namespace ctdf::machine
