// k-bounded loops: the throttle must preserve semantics exactly while
// capping the number of live iteration contexts (frame footprint).
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "lang/corpus.hpp"
#include "lang/generator.hpp"
#include "lang/parser.hpp"

namespace ctdf::machine {
namespace {

struct Outcome {
  RunStats stats;
  lang::Store store;
};

Outcome run_bounded(const lang::Program& prog, unsigned bound,
                    unsigned mem_latency = 12) {
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  topt.parallel_store_arrays = {"x"};
  const auto tx = core::compile(prog, topt);
  MachineOptions mopt;
  mopt.loop_mode = LoopMode::kPipelined;
  mopt.loop_bound = bound;
  mopt.mem_latency = mem_latency;
  auto res = core::execute(tx, mopt);
  EXPECT_TRUE(res.stats.completed) << "bound=" << bound << ": "
                                   << res.stats.error;
  return {std::move(res.stats), std::move(res.store)};
}

TEST(LoopBounding, SemanticsPreservedAcrossBounds) {
  const auto prog = lang::corpus::array_loop(24);
  const auto ref = lang::interpret(prog);
  ASSERT_TRUE(ref.completed);
  for (const unsigned bound : {1u, 2u, 3u, 8u, 0u}) {
    const Outcome o = run_bounded(prog, bound);
    EXPECT_EQ(o.store.cells, ref.store.cells) << "bound=" << bound;
  }
}

TEST(LoopBounding, BoundCapsLiveContexts) {
  const auto prog = lang::corpus::array_loop(32);
  // Long store latency stretches iteration lifetimes so unbounded
  // pipelining visibly piles up live contexts.
  const Outcome unbounded = run_bounded(prog, 0, 60);
  const Outcome k2 = run_bounded(prog, 2, 60);
  // Unbounded pipelining of the parallel store loop keeps many
  // iterations in flight; k=2 caps the footprint (the bound is
  // approximate only across nested-loop boundaries, absent here).
  EXPECT_GT(unbounded.stats.peak_live_contexts, 4u);
  EXPECT_LE(k2.stats.peak_live_contexts, 3u);
  EXPECT_GT(k2.stats.throttle_stalls, 0u);
  EXPECT_EQ(unbounded.stats.throttle_stalls, 0u);
}

TEST(LoopBounding, ThrottlingCostsCyclesMonotonically) {
  const auto prog = lang::corpus::array_loop(32);
  const Outcome k1 = run_bounded(prog, 1);
  const Outcome k4 = run_bounded(prog, 4);
  const Outcome unbounded = run_bounded(prog, 0);
  EXPECT_GE(k1.stats.cycles, k4.stats.cycles);
  EXPECT_GE(k4.stats.cycles, unbounded.stats.cycles);
  // k = 1 approaches barrier-like serialization.
  EXPECT_GT(k1.stats.cycles, unbounded.stats.cycles);
}

TEST(LoopBounding, NestedLoopsStillComplete) {
  const auto prog =
      lang::parse_or_throw(lang::corpus::nested_loops_source(4, 6));
  const auto ref = lang::interpret(prog);
  for (const unsigned bound : {1u, 2u, 0u}) {
    const Outcome o = run_bounded(prog, bound);
    EXPECT_EQ(o.store.cells, ref.store.cells) << "bound=" << bound;
  }
}

TEST(LoopBounding, IgnoredInBarrierMode) {
  const auto prog = lang::corpus::array_loop(12);
  auto topt = translate::TranslateOptions::schema2_optimized();
  const auto tx = core::compile(prog, topt);
  MachineOptions mopt;
  mopt.loop_mode = LoopMode::kBarrier;
  mopt.loop_bound = 1;
  const auto res = core::execute(tx, mopt);
  ASSERT_TRUE(res.stats.completed) << res.stats.error;
  EXPECT_EQ(res.stats.throttle_stalls, 0u);
}

TEST(LoopBounding, RandomProgramsUnaffectedSemantically) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    lang::GeneratorOptions gopt;
    gopt.allow_unstructured = true;
    const auto prog = lang::generate_program(gopt, seed);
    const auto ref = lang::interpret(prog, 1'000'000);
    ASSERT_TRUE(ref.completed);
    auto topt = translate::TranslateOptions::schema2_optimized();
    topt.eliminate_memory = true;
    const auto tx = core::compile(prog, topt);
    for (const unsigned bound : {1u, 3u}) {
      MachineOptions mopt;
      mopt.loop_mode = LoopMode::kPipelined;
      mopt.loop_bound = bound;
      const auto res = core::execute(tx, mopt);
      ASSERT_TRUE(res.stats.completed)
          << "seed " << seed << " bound " << bound << ": "
          << res.stats.error;
      EXPECT_EQ(res.store.cells, ref.store.cells)
          << "seed " << seed << " bound " << bound;
    }
  }
}

}  // namespace
}  // namespace ctdf::machine
