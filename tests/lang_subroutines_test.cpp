#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "lang/interp.hpp"
#include "lang/parser.hpp"
#include "lang/subroutines.hpp"

namespace ctdf::lang {
namespace {

/// The paper's Section 5 program: SUBROUTINE F(X,Y,Z) called as
/// F(A,B,A) and F(C,D,D).
const char* kPaperExample = R"(
var a, b, c, d;
sub f(x, y, z) {
  x := x + 1;
  z := z + y;
}
b := 10; d := 20;
call f(a, b, a);
call f(c, d, d);
)";

TEST(Subroutines, CollectsDefinitionsAndCallSites) {
  const auto r = expand_subroutines_or_throw(kPaperExample);
  ASSERT_EQ(r.subroutines.size(), 1u);
  const SubroutineInfo& f = r.subroutines.front();
  EXPECT_EQ(f.name, "f");
  EXPECT_EQ(f.formals, (std::vector<std::string>{"x", "y", "z"}));
  ASSERT_EQ(f.call_sites.size(), 2u);
  EXPECT_EQ(f.call_sites[0], (std::vector<std::string>{"a", "b", "a"}));
  EXPECT_EQ(f.call_sites[1], (std::vector<std::string>{"c", "d", "d"}));
}

TEST(Subroutines, PaperAliasStructureDerived) {
  const auto r = expand_subroutines_or_throw(kPaperExample);
  const auto pairs = formal_alias_pairs(r.subroutines.front());
  // x~z (from F(A,B,A)) and y~z (from F(C,D,D)); x and y never alias —
  // exactly the paper's [X]={X,Z}, [Y]={Y,Z}, [Z]={X,Y,Z}.
  EXPECT_EQ(pairs, (std::vector<std::pair<std::size_t, std::size_t>>{
                       {0, 2}, {1, 2}}));
  EXPECT_EQ(render_alias_decls(r.subroutines.front()),
            "alias x z;\nalias y z;\n");
}

TEST(Subroutines, ExpansionMatchesHandInlining) {
  const auto r = expand_subroutines_or_throw(kPaperExample);
  const Program expanded = parse_or_throw(r.source);
  const Program manual = parse_or_throw(R"(
var a, b, c, d;
b := 10; d := 20;
a := a + 1;   // f(a, b, a): x:=x+1
a := a + b;   //             z:=z+y with z==a
c := c + 1;   // f(c, d, d)
d := d + d;
)");
  const auto re = interpret(expanded);
  const auto rm = interpret(manual);
  ASSERT_TRUE(re.completed && rm.completed);
  for (const char* v : {"a", "b", "c", "d"})
    EXPECT_EQ(load_var(expanded, re.store, *expanded.symbols.lookup(v)),
              load_var(manual, rm.store, *manual.symbols.lookup(v)))
        << v;
}

TEST(Subroutines, ReferenceSemanticsVisible) {
  // swap-free double: passing the same variable twice doubles it.
  const auto r = expand_subroutines_or_throw(R"(
var p, q;
sub add_into(dst, src) { dst := dst + src; }
p := 5;
call add_into(p, p);
)");
  const Program prog = parse_or_throw(r.source);
  const auto res = interpret(prog);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(load_var(prog, res.store, *prog.symbols.lookup("p")), 10);
}

TEST(Subroutines, NestedCallsSubstituteTransitively) {
  const auto r = expand_subroutines_or_throw(R"(
var u, v;
sub inner(t) { t := t + 1; }
sub outer(s) { call inner(s); call inner(s); }
call outer(u);
call outer(v);
call outer(u);
)");
  const Program prog = parse_or_throw(r.source);
  const auto res = interpret(prog);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(load_var(prog, res.store, *prog.symbols.lookup("u")), 4);
  EXPECT_EQ(load_var(prog, res.store, *prog.symbols.lookup("v")), 2);
  // inner's call sites record the OUTER actuals after substitution.
  const auto& inner = r.subroutines.front();  // map order: inner < outer
  ASSERT_EQ(inner.name, "inner");
  ASSERT_EQ(inner.call_sites.size(), 6u);
  EXPECT_EQ(inner.call_sites[0], std::vector<std::string>{"u"});
}

TEST(Subroutines, StructuredBodiesAllowed) {
  const auto r = expand_subroutines_or_throw(R"(
var n, acc;
sub sum_to(limit, out) {
  out := 0;
  while out * (out + 1) / 2 < limit { out := out + 1; }
}
n := 10;
call sum_to(n, acc);
)");
  const Program prog = parse_or_throw(r.source);
  const auto res = interpret(prog);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(load_var(prog, res.store, *prog.symbols.lookup("acc")), 4);
}

TEST(Subroutines, RunsOnTheDataflowMachineToo) {
  const auto r = expand_subroutines_or_throw(kPaperExample);
  const Program prog = parse_or_throw(r.source);
  const auto ref = interpret(prog);
  const auto tx =
      core::compile(prog, translate::TranslateOptions::schema2_optimized());
  const auto res = core::execute(tx, {});
  ASSERT_TRUE(res.stats.completed) << res.stats.error;
  EXPECT_EQ(res.store.cells, ref.store.cells);
}

TEST(SubroutineErrors, UnknownSubroutine) {
  support::DiagnosticEngine d;
  (void)expand_subroutines("var x; call nope(x);", d);
  EXPECT_TRUE(d.has_errors());
  EXPECT_NE(d.to_string().find("unknown subroutine"), std::string::npos);
}

TEST(SubroutineErrors, ArityMismatch) {
  support::DiagnosticEngine d;
  (void)expand_subroutines("var x; sub f(a, b) { a := b; } call f(x);", d);
  EXPECT_TRUE(d.has_errors());
  EXPECT_NE(d.to_string().find("expected 2"), std::string::npos);
}

TEST(SubroutineErrors, NonIdentifierActualRejected) {
  support::DiagnosticEngine d;
  (void)expand_subroutines("var x; sub f(a) { a := 1; } call f(x + 1);", d);
  EXPECT_TRUE(d.has_errors());
  EXPECT_NE(d.to_string().find("plain variable names"), std::string::npos);
}

TEST(SubroutineErrors, RecursionRejected) {
  support::DiagnosticEngine d;
  (void)expand_subroutines("var x; sub f(a) { call f(a); } call f(x);", d);
  EXPECT_TRUE(d.has_errors());
  EXPECT_NE(d.to_string().find("too deep"), std::string::npos);
}

TEST(SubroutineErrors, Redefinition) {
  support::DiagnosticEngine d;
  (void)expand_subroutines("sub f(a) { a := 1; } sub f(b) { b := 2; }", d);
  EXPECT_TRUE(d.has_errors());
  EXPECT_NE(d.to_string().find("redefinition"), std::string::npos);
}

TEST(Subroutines, NoSubsIsIdentityModuloWhitespace) {
  const auto r = expand_subroutines_or_throw("var x; x := 1 + 2;");
  const Program a = parse_or_throw(r.source);
  const Program b = parse_or_throw("var x; x := 1 + 2;");
  EXPECT_EQ(a.to_string(), b.to_string());
}

}  // namespace
}  // namespace ctdf::lang
