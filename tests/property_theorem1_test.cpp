// Theorem 1 of the paper, checked as an executable property on random
// CFGs: N is between F and ipostdom(F)  ⟺  F ∈ CD⁺(N).
//
// "Between" is checked by brute-force path search (Definition 1);
// CD⁺ is computed by the production control-dependence machinery.
#include <gtest/gtest.h>

#include "cfg/build.hpp"
#include "cfg/control_dep.hpp"
#include "cfg/dominance.hpp"
#include "cfg/intervals.hpp"
#include "lang/corpus.hpp"
#include "lang/generator.hpp"
#include "lang/parser.hpp"
#include "support/oracles.hpp"

namespace ctdf::cfg {
namespace {

void check_theorem1(const Graph& g, const std::string& context) {
  const DomTree pdom(g, DomDirection::kPostdom);
  const ControlDeps cd(g, pdom);
  for (NodeId n : g.all_nodes()) {
    const auto cd_plus = cd.iterated(n);
    for (NodeId f : g.all_nodes()) {
      if (g.succs(f).size() < 2) continue;  // only forks can appear
      const bool lhs = testing::naive_between(g, f, pdom.idom(f), n);
      const bool rhs = cd_plus.test(f.index());
      EXPECT_EQ(lhs, rhs) << context << ": N=" << n.value()
                          << " F=" << f.value() << " (between=" << lhs
                          << ", CD+=" << rhs << ")";
    }
  }
}

TEST(Theorem1, HoldsOnCorpus) {
  for (const auto& np : lang::corpus::all()) {
    const Graph g = build_cfg_or_throw(lang::parse_or_throw(np.source));
    check_theorem1(g, np.name);
  }
}

TEST(Theorem1, IteratedSetAgreesWithNaiveClosure) {
  for (const auto& np : lang::corpus::all()) {
    const Graph g = build_cfg_or_throw(lang::parse_or_throw(np.source));
    const DomTree pdom(g, DomDirection::kPostdom);
    const ControlDeps cd(g, pdom);
    for (NodeId n : g.all_nodes()) {
      const auto fast = cd.iterated(n);
      const auto slow = testing::naive_cd_plus(g, n);
      std::size_t slow_count = 0;
      for (NodeId f : slow) {
        EXPECT_TRUE(fast.test(f.index()))
            << np.name << " missing " << f.value() << " in CD+ of "
            << n.value();
        ++slow_count;
      }
      EXPECT_EQ(fast.count(), slow_count) << np.name << " node " << n.value();
    }
  }
}

class Theorem1Random : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem1Random, HoldsOnRandomUnstructuredPrograms) {
  lang::GeneratorOptions opt;
  opt.allow_unstructured = true;
  opt.allow_irreducible = true;
  opt.max_toplevel_stmts = 9;
  const auto prog = lang::generate_program(opt, GetParam());
  const Graph g = build_cfg_or_throw(prog);
  check_theorem1(g, "seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Random,
                         ::testing::Range<std::uint64_t>(0, 20));

// Also validate on the loop-transformed graphs the translator actually
// consumes (loop entry/exit nodes participate in control dependence).
class Theorem1Transformed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem1Transformed, HoldsAfterLoopTransform) {
  lang::GeneratorOptions opt;
  opt.allow_unstructured = true;
  opt.max_toplevel_stmts = 7;
  const auto prog = lang::generate_program(opt, GetParam());
  Graph g = build_cfg_or_throw(prog);
  support::DiagnosticEngine d;
  (void)transform_loops(g, d);
  ASSERT_FALSE(d.has_errors());
  check_theorem1(g, "transformed seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Transformed,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace ctdf::cfg
