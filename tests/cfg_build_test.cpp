#include <gtest/gtest.h>

#include "cfg/build.hpp"
#include "lang/corpus.hpp"
#include "lang/parser.hpp"

namespace ctdf::cfg {
namespace {

Graph build(std::string_view src) {
  return build_cfg_or_throw(lang::parse_or_throw(src));
}

std::size_t count_kind(const Graph& g, NodeKind k) {
  std::size_t c = 0;
  for (NodeId n : g.all_nodes())
    if (g.kind(n) == k) ++c;
  return c;
}

TEST(CfgBuild, EmptyProgram) {
  const Graph g = build("var x;");
  EXPECT_TRUE(g.validate().empty());
  // start, end, and the final join.
  EXPECT_EQ(g.size(), 3u);
  // Conventional start→end edge: start is a fork.
  EXPECT_EQ(g.node(g.start()).succ_false, g.end());
}

TEST(CfgBuild, StartIsForkByConvention) {
  const Graph g = build("var x; x := 1;");
  const Node& start = g.node(g.start());
  EXPECT_TRUE(start.succ_true.valid());
  EXPECT_EQ(start.succ_false, g.end());
  EXPECT_EQ(g.preds(g.end()).size(), 2u);
}

TEST(CfgBuild, StraightLine) {
  const Graph g = build("var x, y; x := 1; y := x + 1;");
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(count_kind(g, NodeKind::kAssign), 2u);
  EXPECT_EQ(count_kind(g, NodeKind::kFork), 0u);
}

TEST(CfgBuild, StructuredIfMakesDiamond) {
  const Graph g = build("var x, w; if w { x := 1; } else { x := 2; }");
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(count_kind(g, NodeKind::kFork), 1u);
  // The if-join plus the final end-join.
  EXPECT_EQ(count_kind(g, NodeKind::kJoin), 2u);
}

TEST(CfgBuild, EmptyElseBranchWiresForkToJoin) {
  const Graph g = build("var x, w; if w { x := 1; }");
  EXPECT_TRUE(g.validate().empty());
  for (NodeId n : g.all_nodes()) {
    if (g.kind(n) != NodeKind::kFork || n == g.start()) continue;
    EXPECT_EQ(g.kind(g.node(n).succ_false), NodeKind::kJoin);
  }
}

TEST(CfgBuild, WhileMakesCycle) {
  const Graph g = build("var x; while x < 3 { x := x + 1; }");
  EXPECT_TRUE(g.validate().empty());
  // Header join has two predecessors: entry and back edge.
  bool found_header = false;
  for (NodeId n : g.all_nodes()) {
    if (g.kind(n) == NodeKind::kJoin && g.preds(n).size() == 2)
      found_header = true;
  }
  EXPECT_TRUE(found_header);
}

TEST(CfgBuild, RunningExampleShape) {
  const Graph g = build_cfg_or_throw(lang::corpus::running_example());
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(count_kind(g, NodeKind::kAssign), 2u);
  EXPECT_EQ(count_kind(g, NodeKind::kFork), 1u);
}

TEST(CfgBuild, DeadCodeIsPruned) {
  const Graph g = build(R"(
var x;
goto done;
x := 42;        // unreachable
done: x := 1;
)");
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(count_kind(g, NodeKind::kAssign), 1u);
}

TEST(CfgBuild, UnreferencedLabelJoinPruned) {
  const Graph g1 = build("var x; x := 1;");
  const Graph g2 = build("var x; unused: x := 1;");
  // The label join survives (it has a fall-through pred), so sizes may
  // differ; both must validate.
  EXPECT_TRUE(g1.validate().empty());
  EXPECT_TRUE(g2.validate().empty());
}

TEST(CfgBuild, InfiniteLoopRejected) {
  support::DiagnosticEngine d;
  const auto p = lang::parse_or_throw("var x; l: x := x + 1; goto l;");
  (void)build_cfg(p, d);
  EXPECT_TRUE(d.has_errors());
  EXPECT_NE(d.to_string().find("cannot reach end"), std::string::npos);
}

TEST(CfgBuild, GotoEndOnly) {
  const Graph g = build("var x; goto end; x := 5;");
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(count_kind(g, NodeKind::kAssign), 0u);
}

TEST(CfgBuild, RefsOfNodes) {
  const auto p = lang::parse_or_throw(
      "var x, y; array a[4]; x := a[y] + x;");
  const Graph g = build_cfg_or_throw(p);
  for (NodeId n : g.all_nodes()) {
    if (g.kind(n) != NodeKind::kAssign) continue;
    auto refs = g.refs(n);
    EXPECT_EQ(refs.size(), 3u);  // x, a, y
  }
}

TEST(CfgBuild, ValidateCatchesMissingSuccessor) {
  Graph g;
  (void)g.add_join("j");  // never wired
  EXPECT_FALSE(g.validate().empty());
}

TEST(CfgBuild, DotOutputMentionsEveryNode) {
  const auto p = lang::corpus::running_example();
  const Graph g = build_cfg_or_throw(p);
  const std::string dot = g.to_dot(p.symbols);
  for (NodeId n : g.all_nodes())
    EXPECT_NE(dot.find("n" + std::to_string(n.value())), std::string::npos);
}

TEST(CfgBuild, AllCorpusProgramsValidate) {
  for (const auto& np : lang::corpus::all()) {
    const Graph g = build_cfg_or_throw(lang::parse_or_throw(np.source));
    EXPECT_TRUE(g.validate().empty()) << np.name;
  }
}

}  // namespace
}  // namespace ctdf::cfg
