// Differential harness for deterministic fault injection: for every
// swept configuration, a within-budget fault plan (dropped / duplicated
// / jittered cross-PE tokens, split-phase memory NACKs) must preserve
// the semantic outcome of the run — the final store, operators fired by
// kind, and memory traffic — while only timing (cycles, tokens resent)
// may change. Zero-rate plans leave MachineOptions::faults disengaged,
// so the engines stay byte-identical to their fault-free selves; the
// pre-existing event/parallel equivalence suites continue to pin that.
// Finite frame capacity (back-pressure) and every typed failure code
// of the taxonomy are exercised here too.
#include <gtest/gtest.h>

#include <string>

#include "core/compiler.hpp"
#include "lang/corpus.hpp"
#include "lang/parser.hpp"
#include "machine/machine.hpp"

namespace ctdf::machine {
namespace {

/// The invariant the recovery machinery promises: a recovered run is
/// semantically indistinguishable from a fault-free one.
void expect_semantic_match(const RunResult& base, const RunResult& faulted,
                           const std::string& context) {
  ASSERT_TRUE(base.stats.completed) << context << ": " << base.stats.error;
  EXPECT_TRUE(faulted.stats.completed)
      << context << ": " << faulted.stats.error;
  if (!faulted.stats.completed) return;
  EXPECT_EQ(base.stats.ops_fired, faulted.stats.ops_fired) << context;
  EXPECT_EQ(base.stats.fired_by_kind, faulted.stats.fired_by_kind) << context;
  EXPECT_EQ(base.stats.mem_reads, faulted.stats.mem_reads) << context;
  EXPECT_EQ(base.stats.mem_writes, faulted.stats.mem_writes) << context;
  EXPECT_EQ(base.stats.contexts_allocated, faulted.stats.contexts_allocated)
      << context;
  EXPECT_EQ(base.stats.deferred_reads, faulted.stats.deferred_reads)
      << context;
  EXPECT_EQ(base.store.cells, faulted.store.cells) << context;
}

FaultPlan plan_with(double rate, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.drop = rate;
  plan.dup = rate;
  plan.jitter = rate;
  plan.nack = rate;
  return plan;
}

/// Corpus × engines × loop modes × placements × fault seeds × rates.
/// loop_bound stays 0 throughout: k-bound throttle stalls are counted
/// as firings and their number is timing-dependent, so they are
/// deliberately outside the semantic-equivalence contract.
TEST(FaultEquiv, RecoveredRunsMatchFaultFreeSemantics) {
  const struct {
    const char* name;
    std::string source;
  } programs[] = {
      {"running_example", lang::corpus::running_example_source()},
      {"array_loop", lang::corpus::array_loop_source(8)},
      {"nested_loops", lang::corpus::nested_loops_source(3, 4)},
  };
  const struct {
    unsigned processors;
    Placement placement;
  } topologies[] = {
      {2, Placement::kByContext},
      {3, Placement::kByNode},
  };
  std::uint64_t total_faults = 0;
  for (const auto& p : programs) {
    const auto tx = core::compile(
        lang::parse_or_throw(p.source),
        translate::TranslateOptions::schema2_optimized());
    for (const auto loop_mode : {LoopMode::kBarrier, LoopMode::kPipelined}) {
      for (const auto engine : {EngineKind::kScan, EngineKind::kEvent}) {
        for (const auto& topo : topologies) {
          MachineOptions mopt;
          mopt.loop_mode = loop_mode;
          mopt.engine = engine;
          mopt.processors = topo.processors;
          mopt.placement = topo.placement;
          const RunResult base = core::execute(tx, mopt);
          for (const std::uint64_t seed : {1ull, 7ull, 13ull}) {
            for (const double rate : {0.02, 0.1}) {
              MachineOptions fopt = mopt;
              fopt.faults = plan_with(rate, seed);
              const RunResult faulted = core::execute(tx, fopt);
              expect_semantic_match(
                  base, faulted,
                  std::string(p.name) + " loop=" + to_string(loop_mode) +
                      " engine=" + to_string(engine) +
                      " pe=" + std::to_string(topo.processors) +
                      " placement=" + to_string(topo.placement) +
                      " fault_seed=" + std::to_string(seed) +
                      " rate=" + std::to_string(rate));
              total_faults += faulted.stats.faults_injected;
            }
          }
        }
      }
    }
  }
  // The sweep is vacuous unless faults actually landed.
  EXPECT_GT(total_faults, 0u);
}

/// A zero-rate plan (even with a nonzero seed) never engages the fault
/// machinery: every counter, timing included, is byte-identical.
TEST(FaultEquiv, ZeroRatePlanIsByteIdentical) {
  const auto tx =
      core::compile(lang::corpus::nested_loops_source(3, 4),
                    translate::TranslateOptions::schema2_optimized());
  MachineOptions mopt;
  mopt.processors = 2;
  mopt.record_profile = true;
  const RunResult plain = core::execute(tx, mopt);
  MachineOptions zopt = mopt;
  zopt.faults = plan_with(0.0, 99);
  const RunResult zero = core::execute(tx, zopt);
  EXPECT_EQ(plain.stats.completed, zero.stats.completed);
  EXPECT_EQ(plain.stats.cycles, zero.stats.cycles);
  EXPECT_EQ(plain.stats.ops_fired, zero.stats.ops_fired);
  EXPECT_EQ(plain.stats.tokens_sent, zero.stats.tokens_sent);
  EXPECT_EQ(plain.stats.matches, zero.stats.matches);
  EXPECT_EQ(plain.stats.peak_ready, zero.stats.peak_ready);
  EXPECT_EQ(plain.stats.fired_by_kind, zero.stats.fired_by_kind);
  EXPECT_EQ(plain.stats.first_fire_cycle, zero.stats.first_fire_cycle);
  EXPECT_EQ(plain.stats.profile, zero.stats.profile);
  EXPECT_EQ(plain.store.cells, zero.store.cells);
  EXPECT_EQ(zero.stats.faults_injected, 0u);
}

/// The parallel engine recovers in-process (it must not delegate a
/// faulted run to a serial rerun — that would draw a different fault
/// stream) and still reaches the fault-free semantic outcome.
TEST(FaultEquiv, ParallelEngineRecovers) {
  const auto tx =
      core::compile(lang::corpus::nested_loops_source(3, 4),
                    translate::TranslateOptions::schema2_optimized());
  MachineOptions mopt;
  mopt.processors = 2;
  const RunResult base = core::execute(tx, mopt);
  MachineOptions fopt = mopt;
  fopt.host_threads = 3;
  fopt.faults = plan_with(0.05, 7);
  const RunResult faulted = core::execute(tx, fopt);
  expect_semantic_match(base, faulted, "parallel host_threads=3");
  EXPECT_GT(faulted.stats.faults_injected, 0u);
}

/// Finite frame store: a capacity that still admits progress degrades
/// the run gracefully — back-pressure stalls instead of failures, the
/// frame footprint bounded by the capacity, the outcome unchanged.
TEST(FaultEquiv, BackpressureGracefulDegradation) {
  const struct {
    const char* name;
    std::string source;
  } programs[] = {
      {"array_loop", lang::corpus::array_loop_source(10)},
      {"nested_loops", lang::corpus::nested_loops_source(3, 4)},
  };
  for (const auto& p : programs) {
    const auto tx = core::compile(
        lang::parse_or_throw(p.source),
        translate::TranslateOptions::schema2_optimized());
    // Pipelined forwardings are consumed from their source context when
    // they stall, so even capacity 1 makes progress — one iteration at
    // a time, throttled but semantically intact.
    MachineOptions mopt;
    mopt.loop_mode = LoopMode::kPipelined;
    const RunResult base = core::execute(tx, mopt);
    MachineOptions copt = mopt;
    copt.frame_capacity = 1;
    const RunResult capped = core::execute(tx, copt);
    expect_semantic_match(base, capped,
                          std::string(p.name) + " capacity=1 pipelined");
    EXPECT_GT(capped.stats.backpressure_stalls, 0u) << p.name;
    EXPECT_LE(capped.stats.peak_live_contexts, 1u) << p.name;
    EXPECT_GT(base.stats.peak_live_contexts, 1u) << p.name;
    // Barrier entries hold their circulating set matched while stalled;
    // a capacity that admits two live contexts completes untouched.
    MachineOptions bopt;
    bopt.loop_mode = LoopMode::kBarrier;
    const RunResult bbase = core::execute(tx, bopt);
    MachineOptions bcap = bopt;
    bcap.frame_capacity = 2;
    const RunResult bcapped = core::execute(tx, bcap);
    expect_semantic_match(bbase, bcapped,
                          std::string(p.name) + " capacity=2 barrier");
  }
}

// -- typed failure taxonomy ----------------------------------------------

TEST(FaultTaxonomy, RetryExhaustedIsTyped) {
  const auto tx =
      core::compile(lang::corpus::running_example_source(),
                    translate::TranslateOptions::schema2_optimized());
  for (const unsigned host_threads : {0u, 3u}) {
    MachineOptions mopt;
    mopt.processors = 2;
    mopt.host_threads = host_threads;
    mopt.faults.drop = 1.0;  // every cross-PE transmission exhausts
    const RunResult r = core::execute(tx, mopt);
    EXPECT_FALSE(r.stats.completed);
    EXPECT_EQ(r.stats.error_detail.code, ErrorCode::kRetryExhausted)
        << host_threads;
    EXPECT_NE(r.stats.error.find("retry budget exhausted"), std::string::npos)
        << r.stats.error;
    EXPECT_GE(r.stats.watchdog_triggers, 1u);
    // The structured diagnosis rides along in the rendered string.
    EXPECT_NE(r.stats.error.find("loop state:"), std::string::npos)
        << r.stats.error;
    EXPECT_EQ(r.stats.error, r.stats.error_detail.render());
  }
}

TEST(FaultTaxonomy, FrameExhaustedIsTyped) {
  // Barrier entry under capacity 1: the strict firing needs the
  // previous iteration's context live *and* a fresh one — the frame
  // store can never satisfy both, and no context can retire.
  const auto tx =
      core::compile(lang::corpus::array_loop_source(6),
                    translate::TranslateOptions::schema2_optimized());
  MachineOptions mopt;
  mopt.loop_mode = LoopMode::kBarrier;
  mopt.frame_capacity = 1;
  const RunResult r = core::execute(tx, mopt);
  EXPECT_FALSE(r.stats.completed);
  EXPECT_EQ(r.stats.error_detail.code, ErrorCode::kFrameExhausted);
  EXPECT_NE(r.stats.error.find("frame store exhausted"), std::string::npos)
      << r.stats.error;
  EXPECT_NE(r.stats.error.find("blocked on frame capacity 1"),
            std::string::npos)
      << r.stats.error;
  // Per-loop breakdown in the diagnosis.
  EXPECT_NE(r.stats.error_detail.diagnosis.find("loop state:"),
            std::string::npos)
      << r.stats.error_detail.diagnosis;
  EXPECT_GT(r.stats.backpressure_stalls, 0u);
}

TEST(FaultTaxonomy, WatchdogReportsStalledProgress) {
  // watchdog_steps=1 aborts on the first zero-firing scheduler step;
  // with every cross-PE token jittered, operand arrival is staggered
  // enough that one always occurs.
  const auto tx =
      core::compile(lang::corpus::nested_loops_source(3, 4),
                    translate::TranslateOptions::schema2_optimized());
  MachineOptions mopt;
  mopt.processors = 2;
  mopt.faults.jitter = 1.0;
  mopt.faults.watchdog_steps = 1;
  const RunResult r = core::execute(tx, mopt);
  EXPECT_FALSE(r.stats.completed);
  EXPECT_EQ(r.stats.error_detail.code, ErrorCode::kDeadlock);
  EXPECT_NE(r.stats.error.find("watchdog: no operator fired"),
            std::string::npos)
      << r.stats.error;
  EXPECT_GE(r.stats.watchdog_triggers, 1u);
  // Structured diagnosis: blocked slots and the oldest pending token.
  EXPECT_NE(r.stats.error_detail.diagnosis.find("blocked:"),
            std::string::npos)
      << r.stats.error_detail.diagnosis;
  EXPECT_NE(r.stats.error_detail.diagnosis.find("oldest pending token:"),
            std::string::npos)
      << r.stats.error_detail.diagnosis;
}

TEST(FaultTaxonomy, CycleCapKeepsLegacyTextWhenFaultFree) {
  const auto tx =
      core::compile(lang::corpus::running_example_source(),
                    translate::TranslateOptions::schema2_optimized());
  MachineOptions mopt;
  mopt.budget.max_cycles = 3;
  const RunResult r = core::execute(tx, mopt);
  EXPECT_FALSE(r.stats.completed);
  EXPECT_EQ(r.stats.error_detail.code, ErrorCode::kCycleCap);
  // Fault-free runs keep the exact legacy rendering (no diagnosis).
  EXPECT_EQ(r.stats.error,
            "cycle cap exceeded (possible livelock or non-terminating "
            "program)");
  // With the fault machinery engaged the same error carries a
  // diagnosis.
  MachineOptions fopt = mopt;
  fopt.processors = 2;
  fopt.faults.jitter = 0.5;
  const RunResult rf = core::execute(tx, fopt);
  EXPECT_EQ(rf.stats.error_detail.code, ErrorCode::kCycleCap);
  EXPECT_NE(rf.stats.error.find("blocked:"), std::string::npos)
      << rf.stats.error;
}

TEST(FaultTaxonomy, CodeSlugsAreStable) {
  EXPECT_STREQ(code_slug(ErrorCode::kNone), "none");
  EXPECT_STREQ(code_slug(ErrorCode::kDeadlock), "deadlock");
  EXPECT_STREQ(code_slug(ErrorCode::kSlotCollision), "slot-collision");
  EXPECT_STREQ(code_slug(ErrorCode::kCycleCap), "cycle-cap");
  EXPECT_STREQ(code_slug(ErrorCode::kFrameExhausted), "frame-exhausted");
  EXPECT_STREQ(code_slug(ErrorCode::kRetryExhausted), "retry-exhausted");
  EXPECT_STREQ(code_slug(ErrorCode::kIStoreDoubleWrite),
               "istore-double-write");
  EXPECT_STREQ(code_slug(ErrorCode::kStoreInFlight), "store-in-flight");
}

TEST(FaultTaxonomy, FaultSpecParser) {
  FaultPlan plan;
  EXPECT_EQ(parse_fault_spec(
                "drop=0.1,dup=0.05,jitter=0.2,nack=0.1,attempts=4,"
                "backoff=8,cap=128,watchdog=500",
                plan),
            "");
  EXPECT_DOUBLE_EQ(plan.drop, 0.1);
  EXPECT_DOUBLE_EQ(plan.dup, 0.05);
  EXPECT_EQ(plan.max_attempts, 4u);
  EXPECT_EQ(plan.backoff_base, 8u);
  EXPECT_EQ(plan.backoff_cap, 128u);
  EXPECT_EQ(plan.watchdog_steps, 500u);
  EXPECT_TRUE(plan.enabled());
  FaultPlan bad;
  EXPECT_NE(parse_fault_spec("drop=1.5", bad), "");
  EXPECT_NE(parse_fault_spec("gremlins=0.5", bad), "");
  EXPECT_NE(parse_fault_spec("attempts=0", bad), "");
  EXPECT_NE(parse_fault_spec("backoff=16,cap=2", bad), "");
}

}  // namespace
}  // namespace ctdf::machine
