// Confluence: the final store must not depend on which ready operator
// the machine fires first. We randomize the scheduler and sweep machine
// shape (width, latencies, loop mode); every run must agree with the
// interpreter. host_threads is swept too, so confluence-under-
// reordering and parallel-engine determinism are checked by the same
// randomized property.
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "lang/corpus.hpp"
#include "lang/generator.hpp"
#include "lang/parser.hpp"

namespace ctdf::testing {
namespace {

void check_confluent(const lang::Program& prog,
                     const translate::TranslateOptions& topt,
                     const std::string& context) {
  const auto ref = lang::interpret(prog, 1'000'000);
  ASSERT_TRUE(ref.completed);
  const auto tx = core::compile(prog, topt);

  for (const auto loop_mode :
       {machine::LoopMode::kBarrier, machine::LoopMode::kPipelined}) {
    for (const std::uint64_t seed : {0ull, 1ull, 7ull, 99ull}) {
      for (const unsigned width : {0u, 1u, 3u}) {
        // Each (seed, width) pairs with one parallel host_threads value
        // (a full cross product would triple the runtime for no extra
        // coverage — the dedicated differential suite does the
        // exhaustive identity check).
        const unsigned host_threads = (seed + width) % 2 ? 2 : 8;
        for (const unsigned threads : {0u, host_threads}) {
          // At the parallel thread count, each (seed, width) point also
          // runs the async engine in one discipline (alternating so the
          // sweep covers both), checking that confluence holds under
          // genuinely asynchronous schedules too.
          const int variants = threads == 0 ? 1 : 2;
          for (int v = 0; v < variants; ++v) {
            machine::MachineOptions mopt;
            mopt.loop_mode = loop_mode;
            mopt.scheduler_seed = seed;
            mopt.width = width;
            mopt.mem_latency = seed % 2 ? 1 : 9;
            mopt.host_threads = threads;
            if (v == 1) {
              mopt.parallel = machine::ParallelMode::kAsync;
              mopt.deterministic = (seed + width) % 2 == 0;
            }
            const auto res = core::execute(tx, mopt);
            ASSERT_TRUE(res.stats.completed)
                << context << " seed=" << seed << " width=" << width
                << " host_threads=" << threads
                << " parallel=" << to_string(mopt.parallel) << ": "
                << res.stats.error;
            EXPECT_EQ(res.store.cells, ref.store.cells)
                << context << " seed=" << seed << " width=" << width
                << " host_threads=" << threads
                << " parallel=" << to_string(mopt.parallel)
                << " loop=" << to_string(loop_mode);
          }
        }
      }
    }
  }
}

TEST(Confluence, CorpusUnderOptimizedSchema) {
  for (const auto& np : lang::corpus::all()) {
    check_confluent(lang::parse_or_throw(np.source),
                    translate::TranslateOptions::schema2_optimized(),
                    np.name);
  }
}

TEST(Confluence, CorpusUnderMemoryElimination) {
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  topt.parallel_reads = true;
  for (const auto& np : lang::corpus::all())
    check_confluent(lang::parse_or_throw(np.source), topt, np.name);
}

TEST(Confluence, Fig14ParallelStoresAreStillDeterministic) {
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.parallel_store_arrays = {"x"};
  check_confluent(lang::corpus::array_loop(10), topt, "array_loop");
}

TEST(Confluence, IStructuresAreDeterministic) {
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.istructure_arrays = {"x"};
  check_confluent(lang::corpus::array_loop(10), topt, "array_loop_istruct");
}

class ConfluenceRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConfluenceRandom, RandomProgramsAreConfluent) {
  lang::GeneratorOptions gopt;
  gopt.allow_unstructured = true;
  gopt.allow_aliasing = true;
  gopt.num_arrays = 1;
  gopt.max_toplevel_stmts = 8;
  const auto prog = lang::generate_program(gopt, GetParam());
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.parallel_reads = true;
  check_confluent(prog, topt, "seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfluenceRandom,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace ctdf::testing
