// Multi-processor machine mode: semantics must be placement- and
// PE-count-independent; throughput scales until the program's
// parallelism runs out.
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "lang/corpus.hpp"
#include "lang/generator.hpp"
#include "lang/parser.hpp"

namespace ctdf::machine {
namespace {

RunResult run_pe(const lang::Program& prog, unsigned pes,
                 Placement placement, unsigned net = 2) {
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  const auto tx = core::compile(prog, topt);
  MachineOptions mopt;
  mopt.loop_mode = LoopMode::kPipelined;
  mopt.processors = pes;
  mopt.placement = placement;
  mopt.network_latency = net;
  return core::execute(tx, mopt);
}

TEST(MultiPe, SemanticsIndependentOfTopology) {
  for (const auto& np : lang::corpus::all()) {
    const auto prog = lang::parse_or_throw(np.source);
    const auto ref = lang::interpret(prog);
    for (const unsigned pes : {1u, 2u, 5u}) {
      for (const auto placement :
           {Placement::kByNode, Placement::kByContext}) {
        const auto res = run_pe(prog, pes, placement);
        ASSERT_TRUE(res.stats.completed)
            << np.name << " pes=" << pes << " " << to_string(placement)
            << ": " << res.stats.error;
        EXPECT_EQ(res.store.cells, ref.store.cells)
            << np.name << " pes=" << pes << " " << to_string(placement);
      }
    }
  }
}

TEST(MultiPe, MorePesHelpParallelWork) {
  const auto prog =
      core::parse(lang::corpus::independent_chains_source(8, 4));
  const auto p1 = run_pe(prog, 1, Placement::kByNode, 0);
  const auto p8 = run_pe(prog, 8, Placement::kByNode, 0);
  ASSERT_TRUE(p1.stats.completed && p8.stats.completed);
  EXPECT_LT(p8.stats.cycles, p1.stats.cycles);
}

TEST(MultiPe, SinglePeMatchesWidthOne) {
  // One PE firing one op/cycle is the same machine as the abstract pool
  // at width 1 with no network (every hop is local).
  const auto prog = lang::corpus::running_example();
  auto topt = translate::TranslateOptions::schema2_optimized();
  const auto tx = core::compile(prog, topt);
  MachineOptions one_pe;
  one_pe.loop_mode = LoopMode::kPipelined;
  one_pe.processors = 1;
  one_pe.network_latency = 7;  // irrelevant: nothing crosses PEs
  MachineOptions width1;
  width1.loop_mode = LoopMode::kPipelined;
  width1.width = 1;
  const auto a = core::execute(tx, one_pe);
  const auto b = core::execute(tx, width1);
  ASSERT_TRUE(a.stats.completed && b.stats.completed);
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
  EXPECT_EQ(a.store.cells, b.store.cells);
}

TEST(MultiPe, NetworkLatencyCostsCycles) {
  const auto prog = lang::corpus::running_example();
  const auto cheap = run_pe(prog, 4, Placement::kByNode, 0);
  const auto costly = run_pe(prog, 4, Placement::kByNode, 10);
  ASSERT_TRUE(cheap.stats.completed && costly.stats.completed);
  EXPECT_LT(cheap.stats.cycles, costly.stats.cycles);
}

TEST(MultiPe, ByContextKeepsIterationsLocal) {
  // With frame placement, an iteration's internal arcs are all local;
  // only loop entry/exit transfers cross PEs. With node placement every
  // producer-consumer hop risks the network. On a serial loop with an
  // expensive network, frame placement must win.
  const auto prog = lang::corpus::running_example();
  const auto by_ctx = run_pe(prog, 4, Placement::kByContext, 12);
  const auto by_node = run_pe(prog, 4, Placement::kByNode, 12);
  ASSERT_TRUE(by_ctx.stats.completed && by_node.stats.completed);
  EXPECT_LT(by_ctx.stats.cycles, by_node.stats.cycles);
}

TEST(MultiPe, RandomProgramsAllTopologies) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    lang::GeneratorOptions gopt;
    gopt.allow_unstructured = true;
    gopt.num_arrays = 1;
    const auto prog = lang::generate_program(gopt, seed);
    const auto ref = lang::interpret(prog, 1'000'000);
    ASSERT_TRUE(ref.completed);
    for (const unsigned pes : {3u, 7u}) {
      const auto res = run_pe(prog, pes, Placement::kByContext);
      ASSERT_TRUE(res.stats.completed)
          << "seed " << seed << " pes " << pes << ": " << res.stats.error;
      EXPECT_EQ(res.store.cells, ref.store.cells) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace ctdf::machine
