// I-structure deferral edges on hand-built graphs, pinned down under
// every engine: a read arriving before the write waits in the deferral
// map and resolves when the write lands — even when that resolution is
// the run's final act, when several readers queue on one cell, and when
// the reading iteration's context has already retired (and, in the
// event engine, had its frame recycled) by the time the value arrives.
#include <gtest/gtest.h>

#include <string>

#include "dfg/graph.hpp"
#include "machine/machine.hpp"

namespace ctdf::machine {
namespace {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;

NodeId add_start(Graph& g, std::vector<std::int64_t> values) {
  Node s;
  s.kind = OpKind::kStart;
  s.num_outputs = static_cast<std::uint16_t>(values.size());
  s.start_values = std::move(values);
  const NodeId n = g.add(std::move(s));
  g.set_start(n);
  return n;
}

NodeId add_end(Graph& g, std::uint16_t inputs) {
  Node e;
  e.kind = OpKind::kEnd;
  e.num_inputs = inputs;
  const NodeId n = g.add(std::move(e));
  g.set_end(n);
  return n;
}

/// Both engines must complete with identical stats and stores; returns
/// the scan result for further assertions.
RunResult run_all_engines(const Graph& g, std::size_t cells,
                          MachineOptions mopt,
                          const std::vector<IStructureRegion>& is) {
  mopt.engine = EngineKind::kScan;
  const RunResult scan = run(g, cells, mopt, is);
  mopt.engine = EngineKind::kEvent;
  const RunResult event = run(g, cells, mopt, is);
  EXPECT_EQ(scan.stats.completed, event.stats.completed);
  EXPECT_EQ(scan.stats.error, event.stats.error);
  EXPECT_EQ(scan.stats.cycles, event.stats.cycles);
  EXPECT_EQ(scan.stats.ops_fired, event.stats.ops_fired);
  EXPECT_EQ(scan.stats.deferred_reads, event.stats.deferred_reads);
  EXPECT_EQ(scan.stats.leftover_tokens, event.stats.leftover_tokens);
  EXPECT_EQ(scan.store.cells, event.store.cells);
  return scan;
}

TEST(IStructureDeferral, ReadBeforeWriteResolvesAtFinalDrain) {
  // The ifetch fires at cycle 0 and defers; the istore is held back by
  // a gate chain, so the write — and the deferred read's resolution —
  // is the last event in flight. cell 0 is the I-structure; the read
  // value lands in cell 1.
  Graph g;
  const NodeId s = add_start(g, {0, 1});

  const NodeId fetch = g.add_ifetch(0, 1, "early-read");
  g.bind_literal({fetch, 0}, 0);  // index
  g.connect({s, 0}, {fetch, 1}, true);

  const NodeId st = g.add_store(1, "result");
  g.connect({fetch, 0}, {st, 0}, false);
  g.connect({fetch, 0}, {st, 1}, false);

  // Delay the write by three gate hops.
  NodeId prev = s;
  std::uint16_t prev_port = 1;
  for (int i = 0; i < 3; ++i) {
    const NodeId gate = g.add_gate("delay");
    g.bind_literal({gate, 0}, 1);
    g.connect({prev, prev_port}, {gate, 1}, true);
    prev = gate;
    prev_port = 0;
  }
  const NodeId istore = g.add_istore(0, 1, "late-write");
  g.bind_literal({istore, 0}, 42);  // value
  g.bind_literal({istore, 1}, 0);   // index
  g.connect({prev, prev_port}, {istore, 2}, true);

  const NodeId e = add_end(g, 2);
  g.connect({st, 0}, {e, 0}, true);
  g.connect({istore, 0}, {e, 1}, true);

  for (const unsigned mem_latency : {1u, 9u}) {
    MachineOptions o;
    o.mem_latency = mem_latency;
    const RunResult r = run_all_engines(g, 2, o, {{0, 1}});
    ASSERT_TRUE(r.stats.completed) << r.stats.error;
    EXPECT_EQ(r.stats.deferred_reads, 1u);
    EXPECT_EQ(r.store.cells[0], 42);
    EXPECT_EQ(r.store.cells[1], 42);
  }
}

TEST(IStructureDeferral, MultipleDeferredReadersOnOneCell) {
  // Two independent reads queue on the empty cell; one write must wake
  // both, in deferral order, and End collects all three store acks.
  Graph g;
  const NodeId s = add_start(g, {0, 0, 1});
  const NodeId e = add_end(g, 3);

  for (std::uint16_t i = 0; i < 2; ++i) {
    const NodeId fetch = g.add_ifetch(0, 1, "reader");
    g.bind_literal({fetch, 0}, 0);
    g.connect({s, i}, {fetch, 1}, true);
    const NodeId st = g.add_store(1 + i, "out");
    g.connect({fetch, 0}, {st, 0}, false);
    g.connect({fetch, 0}, {st, 1}, false);
    g.connect({st, 0}, {e, i}, true);
  }

  const NodeId gate = g.add_gate("delay");
  g.bind_literal({gate, 0}, 1);
  g.connect({s, 2}, {gate, 1}, true);
  const NodeId istore = g.add_istore(0, 1, "write");
  g.bind_literal({istore, 0}, 7);
  g.bind_literal({istore, 1}, 0);
  g.connect({gate, 0}, {istore, 2}, true);
  g.connect({istore, 0}, {e, 2}, true);

  const RunResult r = run_all_engines(g, 3, {}, {{0, 1}});
  ASSERT_TRUE(r.stats.completed) << r.stats.error;
  EXPECT_EQ(r.stats.deferred_reads, 2u);
  EXPECT_EQ(r.store.cells[0], 7);
  EXPECT_EQ(r.store.cells[1], 7);
  EXPECT_EQ(r.store.cells[2], 7);
}

/// A counted loop of three iterations; the first iteration issues an
/// ifetch of a cell that is only written after the loop has finished.
///
///   start(0) → le → inc → {cmp<3 → sw back/exit, cmp==1 → sw2 →
///   ifetch(cell0) deferred} ; exit v=3 → istore(cell0) → resolves →
///   ifetch value → lx2 → store(cell1) ; End ← both acks.
Graph retirement_loop_graph() {
  Graph g;
  const NodeId s = add_start(g, {0});
  const NodeId le = g.add_loop_entry(cfg::LoopId{0u}, 1, "L");
  g.connect({s, 0}, {le, 0}, false);

  const NodeId inc = g.add_binop(lang::BinOp::kAdd, "v+1");
  g.connect({le, 0}, {inc, 0}, false);
  g.bind_literal({inc, 1}, 1);

  const NodeId cmp = g.add_binop(lang::BinOp::kLt, "v<3");
  g.connect({inc, 0}, {cmp, 0}, false);
  g.bind_literal({cmp, 1}, 3);
  const NodeId sw = g.add_switch("sw");
  g.connect({inc, 0}, {sw, dfg::port::kSwitchData}, false);
  g.connect({cmp, 0}, {sw, dfg::port::kSwitchPred}, false);
  g.connect({sw, dfg::port::kSwitchTrue}, {le, 0}, false);  // back edge

  // First iteration only: trigger the deferred read.
  const NodeId first = g.add_binop(lang::BinOp::kEq, "v==1");
  g.connect({inc, 0}, {first, 0}, false);
  g.bind_literal({first, 1}, 1);
  const NodeId sw2 = g.add_switch("sw2");
  g.connect({inc, 0}, {sw2, dfg::port::kSwitchData}, false);
  g.connect({first, 0}, {sw2, dfg::port::kSwitchPred}, false);
  const NodeId fetch = g.add_ifetch(0, 1, "read-ahead");
  g.bind_literal({fetch, 0}, 0);
  g.connect({sw2, dfg::port::kSwitchTrue}, {fetch, 1}, false);

  // The deferred value leaves the (retired) iteration context through
  // its own loop exit and is stored in cell 1.
  const NodeId lx2 = g.add_loop_exit(cfg::LoopId{0u}, 1, "X2");
  g.connect({fetch, 0}, {lx2, 0}, false);
  const NodeId st = g.add_store(1, "witness");
  g.connect({lx2, 0}, {st, 0}, false);
  g.connect({lx2, 0}, {st, 1}, false);

  // Loop exit: final v = 3 becomes the I-structure write.
  const NodeId lx = g.add_loop_exit(cfg::LoopId{0u}, 1, "X");
  g.connect({sw, dfg::port::kSwitchFalse}, {lx, 0}, false);
  const NodeId istore = g.add_istore(0, 1, "after-loop");
  g.connect({lx, 0}, {istore, 0}, false);  // value = 3
  g.bind_literal({istore, 1}, 0);
  g.connect({lx, 0}, {istore, 2}, false);  // trigger

  const NodeId e = add_end(g, 2);
  g.connect({st, 0}, {e, 0}, true);
  g.connect({istore, 0}, {e, 1}, true);
  return g;
}

TEST(IStructureDeferral, DeferredReadSurvivesContextRetirement) {
  // The issuing iteration's context retires (last live token consumed —
  // the event engine recycles its frame) long before the write lands;
  // the resolution then revives the retired context, and the loop-exit
  // retags the value into the invocation context.
  const Graph g = retirement_loop_graph();
  for (const auto loop_mode : {LoopMode::kBarrier, LoopMode::kPipelined}) {
    MachineOptions o;
    o.loop_mode = loop_mode;
    const RunResult r = run_all_engines(g, 2, o, {{0, 1}});
    ASSERT_TRUE(r.stats.completed)
        << to_string(loop_mode) << ": " << r.stats.error;
    EXPECT_EQ(r.stats.deferred_reads, 1u) << to_string(loop_mode);
    EXPECT_EQ(r.stats.contexts_allocated, 3u) << to_string(loop_mode);
    EXPECT_EQ(r.store.cells[0], 3) << to_string(loop_mode);
    EXPECT_EQ(r.store.cells[1], 3) << to_string(loop_mode);
  }
}

TEST(IStructureDeferral, DeferredReadersSurviveFaultsUnderChecking) {
  // The deferral machinery under adversity, with --check=integrity
  // certifying every delivery: dropped cross-PE tokens force the retry
  // ladder through the deferral path, and a finite frame store bounds
  // the loop while a deferred read pins its issuing context. Recovery
  // must neither lose the deferred response nor trigger a false
  // integrity violation (retransmitted duplicates are dedup'd before
  // the slot tags see them).
  const Graph g = retirement_loop_graph();
  const struct {
    double drop;
    std::uint64_t frame_capacity;
  } adversities[] = {{0.3, 0}, {0.0, 2}, {0.25, 2}};
  for (const auto& adv : adversities) {
    for (const auto engine : {EngineKind::kScan, EngineKind::kEvent}) {
      MachineOptions o;
      o.check = CheckMode::kIntegrity;
      o.engine = engine;
      o.processors = 2;  // faults only strike cross-PE hops
      o.faults.drop = adv.drop;
      o.faults.seed = 11;
      o.frame_capacity = adv.frame_capacity;
      const RunResult r = run(g, 2, o, {{0, 1}});
      const std::string ctx = std::string(to_string(engine)) + " drop=" +
                              std::to_string(adv.drop) + " cap=" +
                              std::to_string(adv.frame_capacity);
      ASSERT_TRUE(r.stats.completed) << ctx << ": " << r.stats.error;
      EXPECT_GT(r.stats.integrity_checks, 0u) << ctx;
      EXPECT_EQ(r.stats.deferred_reads, 1u) << ctx;
      EXPECT_EQ(r.store.cells[0], 3) << ctx;
      EXPECT_EQ(r.store.cells[1], 3) << ctx;
      if (adv.drop > 0) {
        EXPECT_GT(r.stats.faults_injected, 0u) << ctx;
      }
    }
  }
}

TEST(IStructureDeferral, PinnedDeferredReaderDiagnosedOnFrameExhaustion) {
  // One frame is too few: the deferred read pins the first iteration's
  // context, so the loop's next forwarding can never acquire a frame
  // and no context can retire to release one. The failure must carry
  // the typed frame-exhausted code and the diagnosis must point at the
  // pinned deferred reader — the one fact that distinguishes this
  // deadlock from a mis-sized k-bound.
  const Graph g = retirement_loop_graph();
  for (const auto engine : {EngineKind::kScan, EngineKind::kEvent}) {
    MachineOptions o;
    o.check = CheckMode::kIntegrity;
    o.engine = engine;
    o.frame_capacity = 1;
    const RunResult r = run(g, 2, o, {{0, 1}});
    ASSERT_FALSE(r.stats.completed) << to_string(engine);
    EXPECT_EQ(r.stats.error_detail.code, ErrorCode::kFrameExhausted)
        << to_string(engine) << ": " << r.stats.error;
    EXPECT_NE(r.stats.error.find("deferred reader"), std::string::npos)
        << to_string(engine) << ": " << r.stats.error;
  }
}

}  // namespace
}  // namespace ctdf::machine
