// Unit tests for the support utilities.
#include <gtest/gtest.h>

#include <unordered_set>

#include "support/bitset.hpp"
#include "support/diagnostics.hpp"
#include "support/ids.hpp"
#include "support/index_map.hpp"
#include "support/rng.hpp"

namespace ctdf::support {
namespace {

struct ATag;
struct BTag;
using AId = Id<ATag>;
using BId = Id<BTag>;

TEST(Ids, DefaultIsInvalid) {
  AId a;
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(a, AId::invalid());
}

TEST(Ids, ValueRoundTrip) {
  const AId a{42u};
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.value(), 42u);
  EXPECT_EQ(a.index(), 42u);
}

TEST(Ids, Ordering) {
  EXPECT_LT(AId{1u}, AId{2u});
  EXPECT_EQ(AId{3u}, AId{3u});
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<AId, BId>);
}

TEST(Ids, Hashable) {
  std::unordered_set<AId> s;
  s.insert(AId{1u});
  s.insert(AId{1u});
  s.insert(AId{2u});
  EXPECT_EQ(s.size(), 2u);
}

TEST(IndexMap, EnsureGrows) {
  IndexMap<AId, int> m;
  m.ensure(AId{5u}, -1);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_EQ(m[AId{3u}], -1);
  m[AId{3u}] = 7;
  EXPECT_EQ(m[AId{3u}], 7);
}

TEST(IndexMap, Contains) {
  IndexMap<AId, int> m(3, 0);
  EXPECT_TRUE(m.contains(AId{2u}));
  EXPECT_FALSE(m.contains(AId{3u}));
  EXPECT_FALSE(m.contains(AId::invalid()));
}

TEST(IndexMap, MoveOnlyValues) {
  IndexMap<AId, std::unique_ptr<int>> m;
  m.ensure(AId{2u});
  m[AId{1u}] = std::make_unique<int>(9);
  EXPECT_EQ(*m[AId{1u}], 9);
}

TEST(Bitset, SetTestReset) {
  Bitset b(130);
  EXPECT_FALSE(b.any());
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(Bitset, UnionReportsChange) {
  Bitset a(70), b(70);
  b.set(69);
  EXPECT_TRUE(a.union_with(b));
  EXPECT_FALSE(a.union_with(b));  // no change the second time
  EXPECT_TRUE(a.test(69));
}

TEST(Bitset, IntersectAndIntersects) {
  Bitset a(80), b(80);
  a.set(3);
  a.set(70);
  b.set(70);
  EXPECT_TRUE(a.intersects(b));
  a.intersect_with(b);
  EXPECT_FALSE(a.test(3));
  EXPECT_TRUE(a.test(70));
  Bitset c(80);
  EXPECT_FALSE(a.intersects(c));
}

TEST(Bitset, ForEachAscending) {
  Bitset b(100);
  b.set(2);
  b.set(63);
  b.set(64);
  b.set(99);
  std::vector<std::size_t> seen;
  b.for_each([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{2, 63, 64, 99}));
}

TEST(Rng, DeterministicForSeed) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BoundedSampling) {
  SplitMix64 r(13);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_below(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Diagnostics, CollectsAndThrows) {
  DiagnosticEngine d;
  EXPECT_FALSE(d.has_errors());
  d.warning({1, 2}, "w");
  EXPECT_FALSE(d.has_errors());
  d.error({3, 4}, "boom");
  EXPECT_TRUE(d.has_errors());
  EXPECT_EQ(d.error_count(), 1u);
  EXPECT_NE(d.to_string().find("3:4: error: boom"), std::string::npos);
  EXPECT_THROW(d.throw_if_errors(), CompileError);
}

TEST(Diagnostics, NoThrowWithoutErrors) {
  DiagnosticEngine d;
  d.note({}, "hi");
  EXPECT_NO_THROW(d.throw_if_errors());
}

}  // namespace
}  // namespace ctdf::support
