#include <gtest/gtest.h>

#include <algorithm>

#include "cfg/build.hpp"
#include "cfg/ssa.hpp"
#include "lang/corpus.hpp"
#include "lang/generator.hpp"
#include "lang/parser.hpp"

namespace ctdf::cfg {
namespace {

struct Fixture {
  lang::Program prog;
  Graph g;

  explicit Fixture(std::string_view src)
      : prog(lang::parse_or_throw(src)), g(build_cfg_or_throw(prog)) {}

  lang::VarId var(const char* n) const { return *prog.symbols.lookup(n); }
};

TEST(DominanceFrontiers, StraightLineHasEmptyFrontiers) {
  Fixture f("var x, y; x := 1; y := 2;");
  const DomTree dom(f.g, DomDirection::kForward);
  const DominanceFrontiers df(f.g, dom);
  for (NodeId n : f.g.all_nodes()) {
    // `end` is a join of start's two out-edges; only nodes on the
    // branch (everything but start) may have it in their frontier.
    for (NodeId m : df.frontier(n)) EXPECT_EQ(m, f.g.end());
  }
}

TEST(DominanceFrontiers, DiamondFrontierIsTheJoin) {
  Fixture f("var x, w; if w { x := 1; } else { x := 2; }");
  const DomTree dom(f.g, DomDirection::kForward);
  const DominanceFrontiers df(f.g, dom);
  // Both branch assignments have the if-join in their frontier.
  NodeId join;
  for (NodeId n : f.g.all_nodes())
    if (f.g.kind(n) == NodeKind::kJoin && f.g.preds(n).size() == 2) join = n;
  ASSERT_TRUE(join.valid());
  int with_join = 0;
  for (NodeId n : f.g.all_nodes()) {
    if (f.g.kind(n) != NodeKind::kAssign) continue;
    const auto& fr = df.frontier(n);
    if (std::find(fr.begin(), fr.end(), join) != fr.end()) ++with_join;
  }
  EXPECT_EQ(with_join, 2);
}

TEST(DominanceFrontiers, LoopHeaderInBodyFrontier) {
  Fixture f(lang::corpus::running_example_source());
  const DomTree dom(f.g, DomDirection::kForward);
  const DominanceFrontiers df(f.g, dom);
  // The loop body assignments' iterated frontier contains the header.
  NodeId header;
  for (NodeId n : f.g.all_nodes())
    if (f.g.kind(n) == NodeKind::kJoin && f.g.preds(n).size() == 2)
      header = n;
  ASSERT_TRUE(header.valid());
  std::vector<NodeId> defs;
  for (NodeId n : f.g.all_nodes())
    if (f.g.kind(n) == NodeKind::kAssign) defs.push_back(n);
  const auto idf = df.iterated(defs);
  EXPECT_TRUE(std::find(idf.begin(), idf.end(), header) != idf.end());
}

TEST(PhiPlacement, DiamondNeedsOnePhi) {
  Fixture f("var x, w, y; if w { x := 1; } else { x := 2; } y := x;");
  const auto minimal = place_phis(f.g, f.prog.symbols, /*pruned=*/false);
  const auto pruned = place_phis(f.g, f.prog.symbols, /*pruned=*/true);
  // Pruned: exactly one φ for x at the if-join (y and w are never
  // multiply assigned). The synthetic end join gets a second x-φ only
  // because of the conventional start→end analysis edge; exclude it.
  std::size_t x_phis = 0;
  for (NodeId n : f.g.all_nodes()) {
    if (n == f.g.end()) continue;
    for (lang::VarId v : pruned.phis[n])
      if (v == f.var("x")) ++x_phis;
  }
  EXPECT_EQ(x_phis, 1u);
  EXPECT_LE(pruned.total, minimal.total);
}

TEST(PhiPlacement, LoopVariableGetsHeaderPhi) {
  Fixture f(lang::corpus::running_example_source());
  const auto pruned = place_phis(f.g, f.prog.symbols, /*pruned=*/true);
  // x is live around the loop and redefined inside: a φ at the header.
  std::size_t x_phis = 0;
  for (NodeId n : f.g.all_nodes())
    for (lang::VarId v : pruned.phis[n])
      if (v == f.var("x")) ++x_phis;
  EXPECT_GE(x_phis, 1u);
}

TEST(PhiPlacement, SingleAssignmentNeedsNoPhi) {
  Fixture f("var x, w; if w { x := 1; }");
  // x defined once (plus the initial value): minimal SSA still needs a
  // φ at the join (initial vs branch def); with no assignment at all
  // there would be none.
  Fixture g2("var x, w; if w { w := w; }");
  const auto phis = place_phis(g2.g, g2.prog.symbols, false);
  std::size_t x_phis = 0;
  for (NodeId n : g2.g.all_nodes())
    for (lang::VarId v : phis.phis[n])
      if (v == g2.var("x")) ++x_phis;
  EXPECT_EQ(x_phis, 0u);
}

TEST(PhiPlacement, PrunedNeverExceedsMinimal) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    lang::GeneratorOptions opt;
    opt.allow_unstructured = true;
    const auto prog = lang::generate_program(opt, seed);
    Fixture f(prog.to_string());
    const auto minimal = place_phis(f.g, f.prog.symbols, false);
    const auto pruned = place_phis(f.g, f.prog.symbols, true);
    EXPECT_LE(pruned.total, minimal.total) << "seed " << seed;
    // Every pruned φ site is also a minimal φ site.
    for (NodeId n : f.g.all_nodes())
      for (lang::VarId v : pruned.phis[n])
        EXPECT_TRUE(std::find(minimal.phis[n].begin(), minimal.phis[n].end(),
                              v) != minimal.phis[n].end())
            << "seed " << seed;
  }
}

}  // namespace
}  // namespace ctdf::cfg
