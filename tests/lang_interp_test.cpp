#include <gtest/gtest.h>

#include "lang/corpus.hpp"
#include "lang/interp.hpp"
#include "lang/parser.hpp"

namespace ctdf::lang {
namespace {

std::int64_t run_get(std::string_view src, std::string_view var) {
  const Program p = parse_or_throw(src);
  const InterpResult r = interpret(p);
  EXPECT_TRUE(r.completed);
  return load_var(p, r.store, *p.symbols.lookup(var));
}

TEST(Interp, RunningExample) {
  const Program p = corpus::running_example();
  const InterpResult r = interpret(p);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(load_var(p, r.store, *p.symbols.lookup("x")), 5);
  EXPECT_EQ(load_var(p, r.store, *p.symbols.lookup("y")), 5);
}

TEST(Interp, StructuredControl) {
  EXPECT_EQ(run_get("var x, w; w := 3; if w > 2 { x := 10; } else { x := 20; }", "x"), 10);
  EXPECT_EQ(run_get("var s, i; while i < 4 { s := s + i; i := i + 1; }", "s"), 6);
}

TEST(Interp, ArithmeticSemantics) {
  EXPECT_EQ(run_get("var x; x := 7 / 2;", "x"), 3);
  EXPECT_EQ(run_get("var x; x := -7 / 2;", "x"), -3);   // C-style truncation
  EXPECT_EQ(run_get("var x; x := 7 % 3;", "x"), 1);
  // Total semantics: division by zero yields 0.
  EXPECT_EQ(run_get("var x, z; x := 5 / z;", "x"), 0);
  EXPECT_EQ(run_get("var x, z; x := 5 % z;", "x"), 0);
  // Wrapping add.
  EXPECT_EQ(run_get("var x; x := 9223372036854775807 + 1;", "x"), INT64_MIN);
}

TEST(Interp, LogicalOperatorsAreTotal) {
  // No short-circuit: both sides always evaluate (documented; matches
  // the dataflow translation).
  EXPECT_EQ(run_get("var x, z; x := 0 && (5 / z);", "x"), 0);
  EXPECT_EQ(run_get("var x; x := 2 && 3;", "x"), 1);
  EXPECT_EQ(run_get("var x; x := 0 || 0;", "x"), 0);
  EXPECT_EQ(run_get("var x; x := !5;", "x"), 0);
  EXPECT_EQ(run_get("var x; x := !0;", "x"), 1);
}

TEST(Interp, ArrayWrapping) {
  // Subscripts wrap modulo the array size (documented total semantics).
  EXPECT_EQ(run_get("array a[4]; var x; a[5] := 9; x := a[1];", "x"), 9);
  EXPECT_EQ(run_get("array a[4]; var x; a[0 - 1] := 7; x := a[3];", "x"), 7);
}

TEST(Interp, BindSharesStorage) {
  const Program p = parse_or_throw("var x, y; bind x y; x := 4; y := y + 1;");
  const InterpResult r = interpret(p);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(load_var(p, r.store, *p.symbols.lookup("x")), 5);
  EXPECT_EQ(load_var(p, r.store, *p.symbols.lookup("y")), 5);
}

TEST(Interp, AliasWithoutBindIsSeparate) {
  const Program p = parse_or_throw("var x, y; alias x y; x := 4; y := 1;");
  const InterpResult r = interpret(p);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(load_var(p, r.store, *p.symbols.lookup("x")), 4);
  EXPECT_EQ(load_var(p, r.store, *p.symbols.lookup("y")), 1);
}

TEST(Interp, UnstructuredLoop) {
  const Program p = corpus::array_loop(10);
  const InterpResult r = interpret(p);
  ASSERT_TRUE(r.completed);
  for (int i = 1; i <= 10; ++i)
    EXPECT_EQ(load_var(p, r.store, *p.symbols.lookup("x"), i), 1) << i;
  EXPECT_EQ(load_var(p, r.store, *p.symbols.lookup("x"), 0), 0);
}

TEST(Interp, IrreducibleGadget) {
  const Program p = parse_or_throw(corpus::irreducible_source());
  const InterpResult r = interpret(p);
  ASSERT_TRUE(r.completed);
  // e == 1, so first entry jumps to l2: a incremented 4 times (iterations
  // after the first), b incremented 5 times.
  EXPECT_EQ(load_var(p, r.store, *p.symbols.lookup("a")), 4);
  EXPECT_EQ(load_var(p, r.store, *p.symbols.lookup("b")), 5);
}

TEST(Interp, FuelExhaustionReported) {
  const Program p = parse_or_throw("var x; l: x := x + 1; goto l;");
  const InterpResult r = interpret(p, 100);
  EXPECT_FALSE(r.completed);
}

TEST(Interp, NestedLoops) {
  const Program p = parse_or_throw(corpus::nested_loops_source(3, 4));
  const InterpResult r = interpret(p);
  ASSERT_TRUE(r.completed);
  // s = Σ_{i<3} Σ_{j<4} (i*j + 1) = 12 + (0+1+2)*(0+1+2+3) = 12 + 18
  EXPECT_EQ(load_var(p, r.store, *p.symbols.lookup("s")), 30);
}

}  // namespace
}  // namespace ctdf::lang
