// Round-trip properties of machine::lower (graph → ExecProgram): the
// lowered op table must preserve every structural fact the engines
// consume — node count, op kinds, port arities, literal operands,
// fan-out destinations in graph-arc order — and lay out frame slots as
// disjoint per-op ranges with a dense strict index. Checked over the
// corpus programs under several schema option sets and over randomly
// generated programs.
#include <gtest/gtest.h>

#include <vector>

#include "core/compiler.hpp"
#include "lang/corpus.hpp"
#include "lang/generator.hpp"
#include "machine/exec.hpp"

namespace ctdf {
namespace {

void expect_roundtrip(const dfg::Graph& g) {
  const machine::ExecProgram ep = machine::lower(g);
  ASSERT_EQ(ep.num_ops(), g.num_nodes());
  EXPECT_EQ(ep.start(), g.start());
  EXPECT_EQ(ep.end(), g.end());

  const dfg::Node& start = g.node(g.start());
  ASSERT_EQ(ep.start_values().size(), start.start_values.size());
  for (std::size_t i = 0; i < start.start_values.size(); ++i)
    EXPECT_EQ(ep.start_values()[i], start.start_values[i]);

  std::size_t framed = 0, dests = 0, literals = 0;
  std::vector<bool> slot_used(ep.frame_slots(), false);
  std::vector<bool> strict_used(ep.num_framed_ops(), false);
  for (dfg::NodeId n : g.all_nodes()) {
    const dfg::Node& node = g.node(n);
    const machine::ExecOp& op = ep.op(n);
    EXPECT_EQ(op.kind, node.kind);
    EXPECT_EQ(op.num_inputs, node.num_inputs);
    EXPECT_EQ(op.num_outputs, node.num_outputs);
    EXPECT_EQ(ep.label(n.index()), node.label);

    // Strictness and memory flags mirror the kind predicates.
    EXPECT_EQ((op.flags & machine::kExecNonStrict) != 0,
              dfg::is_non_strict_base(node.kind));
    EXPECT_EQ((op.flags & machine::kExecLoopEntry) != 0,
              node.kind == dfg::OpKind::kLoopEntry);
    EXPECT_EQ((op.flags & machine::kExecMem) != 0,
              dfg::is_memory_op(node.kind));
    EXPECT_EQ((op.flags & machine::kExecWrite) != 0,
              dfg::is_write_op(node.kind));

    // Literal operands are inlined; the rest arrive as tokens.
    std::uint16_t consumed = 0;
    for (std::uint16_t p = 0; p < node.num_inputs; ++p) {
      ASSERT_EQ(ep.literal_at(op, p), node.operands[p].is_literal);
      if (node.operands[p].is_literal) {
        EXPECT_EQ(ep.literal_value(op, p), node.operands[p].literal);
        ++literals;
      } else {
        ++consumed;
      }
    }
    EXPECT_EQ(op.consumed_inputs, consumed);

    // Frame layout: every rendezvousing op owns a disjoint slot range
    // and a unique dense strict index.
    const bool expect_framed = node.kind != dfg::OpKind::kStart &&
                               !dfg::is_non_strict_base(node.kind);
    ASSERT_EQ(op.framed(), expect_framed) << node.label;
    if (op.framed()) {
      ++framed;
      ASSERT_LE(op.frame_base + op.num_inputs, ep.frame_slots());
      for (std::uint16_t p = 0; p < op.num_inputs; ++p) {
        EXPECT_FALSE(slot_used[op.frame_base + p]) << node.label;
        slot_used[op.frame_base + p] = true;
      }
      ASSERT_LT(op.strict_index, ep.num_framed_ops());
      EXPECT_FALSE(strict_used[op.strict_index]) << node.label;
      strict_used[op.strict_index] = true;
    }

    // Fan-out destinations, grouped per out-port in graph-arc order —
    // the emission order the engines must reproduce.
    const auto arcs = g.out_arcs(n);
    for (std::uint16_t p = 0; p < node.num_outputs; ++p) {
      std::vector<dfg::Arc> expected;
      for (const dfg::Arc& a : arcs)
        if (a.src_port == p) expected.push_back(a);
      const auto ds = ep.dests(op, p);
      ASSERT_EQ(ds.size(), expected.size()) << node.label << " p" << p;
      for (std::size_t i = 0; i < ds.size(); ++i) {
        EXPECT_EQ(ds[i].node, expected[i].dst);
        EXPECT_EQ(ds[i].port, expected[i].dst_port);
      }
      dests += ds.size();
    }
  }
  // The aggregates the `lower` trace stage reports are exact totals.
  EXPECT_EQ(ep.num_framed_ops(), framed);
  EXPECT_EQ(ep.num_dests(), dests);
  EXPECT_EQ(ep.num_dests(), g.num_arcs());
  EXPECT_EQ(ep.num_literals(), literals);
  for (std::size_t s = 0; s < slot_used.size(); ++s)
    EXPECT_TRUE(slot_used[s]) << "unowned frame slot " << s;
}

std::vector<translate::TranslateOptions> option_ladder() {
  std::vector<translate::TranslateOptions> opts;
  opts.push_back(translate::TranslateOptions::schema1());
  opts.push_back(translate::TranslateOptions::schema2());
  opts.push_back(translate::TranslateOptions::schema2_optimized());
  auto full = translate::TranslateOptions::schema2_optimized();
  full.eliminate_memory = true;
  full.dead_store_elimination = true;
  full.post_optimize = true;
  opts.push_back(full);
  return opts;
}

TEST(ExecLower, RoundTripCorpus) {
  for (const auto& named : lang::corpus::all()) {
    for (const auto& topt : option_ladder()) {
      SCOPED_TRACE(named.name + " / " + topt.describe());
      const auto tx = core::compile(core::parse(named.source), topt);
      expect_roundtrip(tx.graph);
    }
  }
}

TEST(ExecLower, RoundTripRandomPrograms) {
  lang::GeneratorOptions gopt;
  gopt.allow_unstructured = true;
  gopt.num_scalars = 5;
  gopt.max_toplevel_stmts = 12;
  const auto topts = option_ladder();
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const auto prog = lang::generate_program(gopt, seed);
    const auto& topt = topts[seed % topts.size()];
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto tx = core::compile(prog, topt);
    expect_roundtrip(tx.graph);
  }
}

}  // namespace
}  // namespace ctdf
