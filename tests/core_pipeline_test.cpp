// core::Pipeline: staged compilation with per-stage trace, dumps, and
// batch front-end sharing. The golden-trace tests pin the stage
// sequence and the deterministic per-stage statistics (node counts,
// removal counts) for three corpus programs; any change to stage
// behavior must update them consciously.
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "core/pipeline.hpp"
#include "lang/corpus.hpp"
#include "support/diagnostics.hpp"

namespace ctdf {
namespace {

using core::Pipeline;
using core::PipelineOptions;
using core::Stage;

translate::TranslateOptions full_stack() {
  auto t = translate::TranslateOptions::schema2_optimized();
  t.eliminate_memory = true;
  t.dead_store_elimination = true;
  t.post_optimize = true;
  return t;
}

PipelineOptions full_stack_with_ssa() {
  PipelineOptions po(full_stack());
  po.compute_ssa = true;
  return po;
}

TEST(Pipeline, TraceListsEveryStageInOrder) {
  const auto r = Pipeline(full_stack_with_ssa())
                     .run(lang::corpus::running_example_source());
  ASSERT_EQ(r.trace.stages.size(), translate::kNumStages);
  for (std::size_t i = 0; i < translate::kNumStages; ++i)
    EXPECT_EQ(r.trace.stages[i].stage, static_cast<Stage>(i)) << i;
  // Ran stages carry wall time; the total covers them.
  const auto* tr = r.trace.find(Stage::kTranslate);
  ASSERT_NE(tr, nullptr);
  EXPECT_TRUE(tr->ran);
  EXPECT_GT(tr->nanos, 0);
  EXPECT_GE(r.trace.total_nanos(), tr->nanos);
  // Disabled stages are reported as skipped, not dropped.
  const auto* fl = r.trace.find(Stage::kFanout);
  ASSERT_NE(fl, nullptr);
  EXPECT_FALSE(fl->ran);
  // Counter lookup by name; absent names return -1.
  EXPECT_EQ(tr->counter("nodes"),
            static_cast<std::int64_t>(r.translation.graph.num_nodes()));
  EXPECT_EQ(tr->counter("no-such-counter"), -1);
}

TEST(Pipeline, GoldenTraceRunningExample) {
  const auto r = Pipeline(full_stack_with_ssa())
                     .run(lang::corpus::running_example_source());
  EXPECT_EQ(r.trace.summary(),
            "parse: 119 -> 3 stmts=3 vars=2\n"
            "cfg-build: 0 -> 7 nodes=7 edges=8\n"
            "dse: 7 -> 7 removed=0\n"
            "loop-transform: 7 -> 9 loops=1 nodes-split=0\n"
            "cover: 0 -> 2 resources=2 eliminated=2 istructures=0 "
            "fig14-loops=0\n"
            "ssa: 9 -> 9 phis-minimal=4 phis-pruned=3\n"
            "dominance: 9 -> 9\n"
            "control-dep: 9 -> 9 deps=12\n"
            "switch-place: 9 -> 9 switches=2 rounds=1\n"
            "translate: 9 -> 11 nodes=11 arcs=19\n"
            "optimize: 11 -> 11 removed=0 switches-folded=0 "
            "merges-collapsed=0 dead=0 unfireable=0 const-folded=0 "
            "switch-elim=0 synch-narrowed=0 iterations=1 max-loop-depth=1\n"
            "fanout: skipped\n"
            "validate: 11 -> 11 problems=0\n"
            "lower: 11 -> 11 ops=11 dests=19 frame-slots=18 literals=3\n");
}

TEST(Pipeline, GoldenTraceFig9) {
  const auto r =
      Pipeline(full_stack_with_ssa()).run(lang::corpus::fig9_source());
  EXPECT_EQ(r.trace.summary(),
            "parse: 248 -> 7 stmts=7 vars=3\n"
            "cfg-build: 0 -> 11 nodes=11 edges=12\n"
            "dse: 11 -> 11 removed=1\n"
            "loop-transform: 11 -> 11 loops=0 nodes-split=0\n"
            "cover: 0 -> 3 resources=3 eliminated=3 istructures=0 "
            "fig14-loops=0\n"
            "ssa: 11 -> 11 phis-minimal=3 phis-pruned=3\n"
            "dominance: 11 -> 11\n"
            "control-dep: 11 -> 11 deps=9\n"
            "switch-place: 11 -> 11 switches=1 rounds=1\n"
            "translate: 11 -> 11 nodes=11 arcs=17\n"
            "optimize: 11 -> 11 removed=0 switches-folded=0 "
            "merges-collapsed=0 dead=0 unfireable=0 const-folded=0 "
            "switch-elim=0 synch-narrowed=0 iterations=1 max-loop-depth=0\n"
            "fanout: skipped\n"
            "validate: 11 -> 11 problems=0\n"
            "lower: 11 -> 11 ops=11 dests=17 frame-slots=19 literals=4\n");
}

TEST(Pipeline, GoldenTraceArrayLoop) {
  const auto r = Pipeline(full_stack_with_ssa())
                     .run(lang::corpus::array_loop_source(10));
  EXPECT_EQ(r.trace.summary(),
            "parse: 156 -> 3 stmts=3 vars=2\n"
            "cfg-build: 0 -> 7 nodes=7 edges=8\n"
            "dse: 7 -> 7 removed=0\n"
            "loop-transform: 7 -> 9 loops=1 nodes-split=0\n"
            "cover: 0 -> 2 resources=2 eliminated=1 istructures=0 "
            "fig14-loops=0\n"
            "ssa: 9 -> 9 phis-minimal=4 phis-pruned=4\n"
            "dominance: 9 -> 9\n"
            "control-dep: 9 -> 9 deps=12\n"
            "switch-place: 9 -> 9 switches=2 rounds=1\n"
            "translate: 9 -> 10 nodes=10 arcs=18\n"
            "optimize: 10 -> 10 removed=0 switches-folded=0 "
            "merges-collapsed=0 dead=0 unfireable=0 const-folded=0 "
            "switch-elim=0 synch-narrowed=0 iterations=1 max-loop-depth=1\n"
            "fanout: skipped\n"
            "validate: 10 -> 10 problems=0\n"
            "lower: 10 -> 10 ops=10 dests=18 frame-slots=17 literals=3\n");
}

TEST(Pipeline, CompileIsAThinWrapperOverRun) {
  // core::compile and Pipeline::run must produce byte-identical graphs
  // for identical options (they share translate::run_stages).
  const auto prog = lang::corpus::running_example();
  const auto opts = full_stack();
  const auto via_compile = core::compile(prog, opts);
  const auto via_pipeline = Pipeline(PipelineOptions(opts)).run(prog);
  EXPECT_EQ(via_compile.graph.to_dot(),
            via_pipeline.translation.graph.to_dot());

  // ... and identical to the translate-layer entry point with no hooks.
  support::DiagnosticEngine diags;
  const auto via_translate = translate::translate(prog, opts, diags);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(via_compile.graph.to_dot(), via_translate.graph.to_dot());
}

TEST(Pipeline, RunFromProgramSkipsParse) {
  const auto r = Pipeline(PipelineOptions(full_stack()))
                     .run(lang::corpus::running_example());
  const auto* p = r.trace.find(Stage::kParse);
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(p->ran);
}

TEST(Pipeline, SequentialModeSkipsLoopTransform) {
  const auto r = Pipeline(PipelineOptions(
                              translate::TranslateOptions::schema1()))
                     .run(lang::corpus::running_example_source());
  EXPECT_FALSE(r.trace.find(Stage::kLoopTransform)->ran);
  EXPECT_FALSE(r.trace.find(Stage::kDse)->ran);
  EXPECT_TRUE(r.trace.find(Stage::kTranslate)->ran);
}

TEST(Pipeline, DumpAfterCapturesStageArtifact) {
  PipelineOptions po(full_stack());
  po.dump_after = Stage::kTranslate;
  const auto r =
      Pipeline(po).run(lang::corpus::running_example_source());
  EXPECT_EQ(r.dump.rfind("digraph dfg", 0), 0u) << r.dump.substr(0, 40);

  // The parse dump is the program itself, pretty-printed.
  po.dump_after = Stage::kParse;
  const auto rp = Pipeline(po).run(lang::corpus::running_example_source());
  EXPECT_NE(rp.dump.find(":="), std::string::npos);

  // A stage that did not run yields no dump.
  PipelineOptions no_dse(translate::TranslateOptions::schema2_optimized());
  no_dse.dump_after = Stage::kDse;
  const auto rd =
      Pipeline(no_dse).run(lang::corpus::running_example_source());
  EXPECT_TRUE(rd.dump.empty());
}

TEST(Pipeline, ConfigureStageByName) {
  PipelineOptions po;
  EXPECT_TRUE(po.configure_stage("dse", true));
  EXPECT_TRUE(po.translate.dead_store_elimination);
  EXPECT_TRUE(po.configure_stage("ssa", true));
  EXPECT_TRUE(po.compute_ssa);
  EXPECT_TRUE(po.configure_stage("optimize", true));
  EXPECT_TRUE(po.configure_stage("post-opt", true));  // legacy alias
  EXPECT_TRUE(po.translate.post_optimize);
  EXPECT_TRUE(po.configure_stage("validate", false));
  EXPECT_FALSE(po.validate);
  EXPECT_TRUE(po.configure_stage("lower", false));
  EXPECT_FALSE(po.lower);
  EXPECT_FALSE(po.configure_stage("cfg-build", false));  // not optional
  EXPECT_FALSE(po.configure_stage("bogus", true));
}

TEST(Pipeline, LowerStageCachesExecProgram) {
  PipelineOptions po(full_stack());
  po.dump_after = Stage::kLower;
  const auto r = Pipeline(po).run(lang::corpus::running_example_source());
  const auto* ls = r.trace.find(Stage::kLower);
  ASSERT_NE(ls, nullptr);
  EXPECT_TRUE(ls->ran);
  EXPECT_GT(ls->nanos, 0);
  EXPECT_EQ(r.exec.num_ops(), r.translation.graph.num_nodes());
  EXPECT_EQ(ls->counter("ops"), static_cast<std::int64_t>(r.exec.num_ops()));
  EXPECT_EQ(r.dump.rfind("exec program", 0), 0u) << r.dump.substr(0, 40);

  // Executing the cached program matches the lower-on-the-fly path.
  const machine::MachineOptions mo;
  const auto via_cached = core::execute(r, mo);
  const auto via_graph = core::execute(r.translation, mo);
  EXPECT_EQ(via_cached.store, via_graph.store);
  EXPECT_EQ(via_cached.stats.cycles, via_graph.stats.cycles);

  // Disabling the stage reports it skipped and leaves exec empty.
  PipelineOptions off(full_stack());
  ASSERT_TRUE(off.configure_stage("lower", false));
  const auto ro = Pipeline(off).run(lang::corpus::running_example_source());
  EXPECT_FALSE(ro.trace.find(Stage::kLower)->ran);
  EXPECT_EQ(ro.exec.num_ops(), 0u);
}

TEST(Pipeline, RunManySharesIdenticalSources) {
  const std::string a = lang::corpus::running_example_source();
  const std::string b = lang::corpus::fig9_source();
  const auto batch =
      Pipeline(PipelineOptions(full_stack())).run_many({a, b, a, a});
  ASSERT_EQ(batch.programs.size(), 4u);
  EXPECT_EQ(batch.cache_hits, 2u);
  // Cached entries are full results, identical to the first compile.
  EXPECT_EQ(batch.programs[0].translation.graph.to_dot(),
            batch.programs[2].translation.graph.to_dot());
  EXPECT_EQ(batch.programs[0].trace.summary(),
            batch.programs[3].trace.summary());
  // The combined trace aggregates all four programs.
  const auto* cb = batch.combined.find(Stage::kCfgBuild);
  ASSERT_NE(cb, nullptr);
  std::int64_t nodes = 0;
  for (const auto& p : batch.programs)
    nodes += p.trace.find(Stage::kCfgBuild)->counter("nodes");
  EXPECT_EQ(cb->counter("nodes"), nodes);
}

TEST(Pipeline, TableRendersSkippedRowsAndTotal) {
  const auto r = Pipeline(PipelineOptions(
                              translate::TranslateOptions::schema2()))
                     .run(lang::corpus::running_example_source());
  const std::string table = r.trace.table();
  EXPECT_NE(table.find("cfg-build"), std::string::npos);
  EXPECT_NE(table.find("fanout"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
}

TEST(Pipeline, ParseErrorsThrowCompileError) {
  EXPECT_THROW(Pipeline().run("this is not a program"),
               support::CompileError);
}

TEST(Pipeline, StageNamesRoundTrip) {
  for (Stage s : translate::all_stages()) {
    const auto back = translate::stage_from_name(translate::to_string(s));
    ASSERT_TRUE(back.has_value()) << translate::to_string(s);
    EXPECT_EQ(*back, s);
  }
  EXPECT_FALSE(translate::stage_from_name("nonsense").has_value());
}

}  // namespace
}  // namespace ctdf
