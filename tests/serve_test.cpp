// `ctdf serve` protocol coverage (serve/serve.hpp): request decoding,
// typed error taxonomy, cache dispositions across repeated requests,
// batch semantics (ordering, worker pools, per-item errors), and the
// golden response key sets downstream clients parse by name.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.hpp"
#include "serve/serve.hpp"

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace ctdf::serve {
namespace {

JsonValue parse_response(const std::string& line) {
  std::string error;
  const auto doc = json_parse(line, &error);
  EXPECT_TRUE(doc.has_value()) << error << "\nin: " << line;
  return doc.value_or(JsonValue{});
}

std::vector<std::string> keys(const JsonValue& obj) {
  std::vector<std::string> out;
  for (const auto& [k, v] : obj.object) out.push_back(k);
  return out;
}

const char* kRunX = R"({"id": 1, "op": "run", "source": "var x;\n  x := 1 + 2;\n"})";

// The frozen response vocabulary. Serve clients (the CI smoke job,
// scripts, external callers) key on these exact names and orders;
// changing them is a protocol break that must update this test.
const std::vector<std::string> kProgramResponseKeys = {
    "id", "op", "ok", "cache", "content_hash", "stage_nanos",
    "exec_nanos", "total_nanos", "stats", "store", "error"};
const std::vector<std::string> kCacheKeys = {
    "disposition", "key", "hits", "disk_hits", "misses",
    "evictions", "disk_rejects", "entries", "blob_bytes"};
const std::vector<std::string> kShortErrorKeys = {"id", "op", "ok", "error"};
const std::vector<std::string> kErrorObjectKeys = {"kind", "message"};
const std::vector<std::string> kBatchResponseKeys = {
    "id", "op", "ok", "batch", "results", "error"};
const std::vector<std::string> kBatchObjectKeys = {"requests", "errors",
                                                   "cache_hits"};

TEST(Serve, RunRespondsWithTheGoldenKeySetAndTheStore) {
  Server server;
  const JsonValue r = parse_response(server.handle_line(kRunX));
  EXPECT_EQ(keys(r), kProgramResponseKeys);
  EXPECT_EQ(keys(*r.find("cache")), kCacheKeys);
  EXPECT_TRUE(r.find("ok")->boolean);
  EXPECT_EQ(r.find("id")->number, 1.0);
  EXPECT_EQ(r.find("cache")->find("disposition")->string, "miss");
  EXPECT_EQ(r.find("store")->find("x")->number, 3.0);
  EXPECT_TRUE(r.find("error")->is_null());
  // A miss ran the pipeline: stage timings are present and non-trivial.
  EXPECT_GT(r.find("stage_nanos")->find("total")->number, 0.0);
  EXPECT_EQ(r.find("content_hash")->string.size(), 16u);
}

TEST(Serve, SecondIdenticalRequestIsAMemoryHit) {
  Server server;
  (void)server.handle_line(kRunX);
  const JsonValue r = parse_response(server.handle_line(kRunX));
  const JsonValue* cache = r.find("cache");
  EXPECT_EQ(cache->find("disposition")->string, "hit-memory");
  EXPECT_EQ(cache->find("hits")->number, 1.0);
  EXPECT_EQ(cache->find("misses")->number, 1.0);
  // Nothing compiled: the stage object carries only the zero total.
  EXPECT_EQ(r.find("stage_nanos")->find("total")->number, 0.0);
  // Same bytes, same answer.
  EXPECT_EQ(r.find("store")->find("x")->number, 3.0);
}

TEST(Serve, DifferentOptionsAreADifferentCacheEntry) {
  Server server;
  (void)server.handle_line(kRunX);
  const std::string with_opts =
      R"({"op": "run", "source": "var x;\n  x := 1 + 2;\n", "options": ["--mem-elim", "--engine=event"]})";
  const JsonValue r = parse_response(server.handle_line(with_opts));
  EXPECT_TRUE(r.find("ok")->boolean);
  EXPECT_EQ(r.find("cache")->find("disposition")->string, "miss");
  EXPECT_EQ(r.find("cache")->find("entries")->number, 2.0);
  EXPECT_EQ(r.find("stats")->find("options")->find("engine")->string,
            "event");
}

TEST(Serve, CompileOpSkipsExecution) {
  Server server;
  const JsonValue r = parse_response(server.handle_line(
      R"({"op": "compile", "source": "var x;\n  x := 1 + 2;\n"})"));
  EXPECT_EQ(keys(r), kProgramResponseKeys);
  EXPECT_TRUE(r.find("ok")->boolean);
  EXPECT_TRUE(r.find("stats")->is_null());
  EXPECT_TRUE(r.find("store")->is_null());
  EXPECT_EQ(r.find("exec_nanos")->number, 0.0);
}

TEST(Serve, PrintSelectsNamesAndUnknownNamesRenderNull) {
  Server server;
  const JsonValue r = parse_response(server.handle_line(
      R"({"op": "run", "source": "var x;\n  x := 1 + 2;\n", "print": ["x", "nope"]})"));
  const JsonValue* store = r.find("store");
  EXPECT_EQ(store->find("x")->number, 3.0);
  EXPECT_TRUE(store->find("nope")->is_null());
}

TEST(Serve, ErrorTaxonomyIsTyped) {
  Server server;
  const auto error_kind = [&](const std::string& line) {
    const JsonValue r = parse_response(server.handle_line(line));
    EXPECT_EQ(keys(r), kShortErrorKeys) << line;
    EXPECT_FALSE(r.find("ok")->boolean) << line;
    EXPECT_EQ(keys(*r.find("error")), kErrorObjectKeys) << line;
    return r.find("error")->find("kind")->string;
  };
  EXPECT_EQ(error_kind("{oops"), "protocol");
  EXPECT_EQ(error_kind(R"({"source": "var x;\n  x := 1;\n"})"), "protocol");
  EXPECT_EQ(error_kind(R"({"op": "vaporize"})"), "protocol");
  EXPECT_EQ(error_kind(R"({"op": "run"})"), "protocol");  // missing source
  EXPECT_EQ(error_kind(
                R"({"op": "run", "source": "var x;\n  x := 1;\n", "options": ["--no-such-flag"]})"),
            "options");
  EXPECT_EQ(error_kind(
                R"({"op": "run", "source": "var x;\n  x := 1;\n", "options": ["--engine=quantum"]})"),
            "options");
  EXPECT_EQ(error_kind(R"({"op": "run", "source": "var x;\n  x := ;\n"})"),
            "compile");
}

TEST(Serve, MachineFailuresKeepTheFullResponseShape) {
  Server server;
  const JsonValue r = parse_response(server.handle_line(
      R"({"op": "run", "source": "var x;\n  x := 1 + 2;\n", "options": ["--max-cycles=1"]})"));
  EXPECT_EQ(keys(r), kProgramResponseKeys);  // not the short error form
  EXPECT_FALSE(r.find("ok")->boolean);
  EXPECT_EQ(r.find("error")->find("kind")->string, "machine");
  EXPECT_FALSE(r.find("stats")->is_null());  // diagnostics still attached
  EXPECT_TRUE(r.find("store")->is_null());
}

TEST(Serve, RunBatchKeepsOrderSharesTheCacheAndCountsErrors) {
  Server server;
  const std::string batch = R"({"id": "b1", "op": "run-batch", "requests": [)"
                            R"({"id": 10, "source": "var x;\n  x := 1 + 2;\n"},)"
                            R"({"id": 11, "source": "var x;\n  x := 1 + 2;\n"},)"
                            R"({"id": 12, "source": "var y;\n  y := ;\n"},)"
                            R"({"id": 13, "op": "run-batch"}]})";
  const JsonValue r = parse_response(server.handle_line(batch));
  EXPECT_EQ(keys(r), kBatchResponseKeys);
  EXPECT_TRUE(r.find("ok")->boolean);
  const JsonValue* b = r.find("batch");
  EXPECT_EQ(keys(*b), kBatchObjectKeys);
  EXPECT_EQ(b->find("requests")->number, 4.0);
  EXPECT_EQ(b->find("errors")->number, 2.0);      // compile + nested batch
  EXPECT_EQ(b->find("cache_hits")->number, 1.0);  // the repeated source

  const std::vector<JsonValue>& results = r.find("results")->array;
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].find("id")->number, 10.0);
  EXPECT_EQ(results[1].find("id")->number, 11.0);
  EXPECT_EQ(results[2].find("id")->number, 12.0);
  EXPECT_EQ(results[3].find("id")->number, 13.0);
  // Item op defaults to "run" inside a batch.
  EXPECT_EQ(results[0].find("op")->string, "run");
  EXPECT_EQ(results[1].find("cache")->find("disposition")->string,
            "hit-memory");
  EXPECT_EQ(results[2].find("error")->find("kind")->string, "compile");
  EXPECT_EQ(results[3].find("error")->find("kind")->string, "protocol");
}

TEST(Serve, BatchLevelOptionsAreEachItemsBaseline) {
  Server server;
  const std::string batch =
      R"({"op": "run-batch", "options": ["--engine=event"], "requests": [)"
      R"({"source": "var x;\n  x := 1 + 2;\n"},)"
      R"({"source": "var x;\n  x := 1 + 2;\n", "options": ["--engine=scan"]}]})";
  const JsonValue r = parse_response(server.handle_line(batch));
  const std::vector<JsonValue>& results = r.find("results")->array;
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].find("stats")->find("options")->find("engine")->string,
            "event");
  EXPECT_EQ(results[1].find("stats")->find("options")->find("engine")->string,
            "scan");
}

TEST(Serve, WorkerPoolProducesTheSameOrderedResults) {
  ServeOptions opt;
  opt.workers = 4;
  Server server(opt);
  std::string batch = R"({"op": "run-batch", "requests": [)";
  for (int i = 0; i < 8; ++i) {
    if (i) batch += ", ";
    batch += R"({"id": )" + std::to_string(i) +
             R"(, "source": "var x;\n  x := )" + std::to_string(i) +
             R"( + 1;\n"})";
  }
  batch += "]}";
  const JsonValue r = parse_response(server.handle_line(batch));
  EXPECT_TRUE(r.find("ok")->boolean);
  EXPECT_EQ(r.find("batch")->find("errors")->number, 0.0);
  const std::vector<JsonValue>& results = r.find("results")->array;
  ASSERT_EQ(results.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(results[i].find("id")->number, i) << i;
    EXPECT_EQ(results[i].find("store")->find("x")->number, i + 1.0) << i;
  }
}

TEST(Serve, ShutdownAcknowledgesAndStopsTheLoop) {
  Server server;
  bool shutdown = false;
  const JsonValue r = parse_response(
      server.handle_line(R"({"id": 99, "op": "shutdown"})", &shutdown));
  EXPECT_TRUE(shutdown);
  EXPECT_TRUE(r.find("ok")->boolean);
  EXPECT_EQ(r.find("op")->string, "shutdown");

  // Errors must NOT set the flag.
  (void)server.handle_line("{oops", &shutdown);
  EXPECT_FALSE(shutdown);
}

// ---- overload-safe serving -------------------------------------------

const std::vector<std::string> kStatsResponseKeys = {"id", "op", "ok",
                                                     "serve", "error"};
const std::vector<std::string> kServeObjectKeys = {
    "workers", "max_queue", "accepted", "completed", "rejected_overload",
    "rejected_draining", "slow_requests", "client_disconnects",
    "queue_depth", "in_flight", "per_worker"};
const std::vector<std::string> kOverloadedErrorKeys = {"kind", "message",
                                                       "retry_after_ms"};

TEST(Serve, StatsOpEmitsTheGoldenKeySetAndCounts) {
  Server server;
  (void)server.handle_line(kRunX);
  const JsonValue r =
      parse_response(server.handle_line(R"({"id": 7, "op": "stats"})"));
  EXPECT_EQ(keys(r), kStatsResponseKeys);
  EXPECT_TRUE(r.find("ok")->boolean);
  const JsonValue* s = r.find("serve");
  EXPECT_EQ(keys(*s), kServeObjectKeys);
  // The stats request itself was accepted before rendering; the run
  // before it has completed.
  EXPECT_EQ(s->find("accepted")->number, 2.0);
  EXPECT_EQ(s->find("completed")->number, 1.0);
  EXPECT_EQ(s->find("rejected_overload")->number, 0.0);
  EXPECT_EQ(s->find("per_worker")->array.size(), 1u);  // default workers=1
}

TEST(Serve, RequestDeadlineZeroIsATypedMachineError) {
  Server server;
  const JsonValue r = parse_response(server.handle_line(
      R"({"op": "run", "source": "var x;\n  x := 1 + 2;\n", "deadline_ms": 0})"));
  EXPECT_EQ(keys(r), kProgramResponseKeys);  // full shape, not short form
  EXPECT_FALSE(r.find("ok")->boolean);
  EXPECT_EQ(r.find("error")->find("kind")->string, "machine");
  EXPECT_EQ(r.find("stats")->find("error")->find("code")->string,
            "deadline-exceeded");
  EXPECT_TRUE(r.find("store")->is_null());
}

TEST(Serve, GenerousRequestDeadlineChangesNothing) {
  Server server;
  const JsonValue r = parse_response(server.handle_line(
      R"({"op": "run", "source": "var x;\n  x := 1 + 2;\n", "deadline_ms": 600000})"));
  EXPECT_TRUE(r.find("ok")->boolean);
  EXPECT_EQ(r.find("store")->find("x")->number, 3.0);
}

TEST(Serve, BadDeadlineIsAProtocolError) {
  Server server;
  for (const char* line :
       {R"({"op": "run", "source": "x", "deadline_ms": -5})",
        R"({"op": "run", "source": "x", "deadline_ms": 1.5})",
        R"({"op": "run", "source": "x", "deadline_ms": "soon"})"}) {
    const JsonValue r = parse_response(server.handle_line(line));
    EXPECT_FALSE(r.find("ok")->boolean) << line;
    EXPECT_EQ(r.find("error")->find("kind")->string, "protocol") << line;
  }
}

TEST(Serve, BatchItemsInheritTheBatchDeadline) {
  Server server;
  const std::string batch =
      R"({"op": "run-batch", "deadline_ms": 0, "requests": [)"
      R"({"id": 1, "source": "var x;\n  x := 1 + 2;\n"},)"
      R"({"id": 2, "source": "var x;\n  x := 1 + 2;\n", "deadline_ms": 600000}]})";
  const JsonValue r = parse_response(server.handle_line(batch));
  const std::vector<JsonValue>& results = r.find("results")->array;
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].find("ok")->boolean);  // inherited 0 ms budget
  EXPECT_EQ(results[0].find("stats")->find("error")->find("code")->string,
            "deadline-exceeded");
  EXPECT_TRUE(results[1].find("ok")->boolean);  // item override wins
}

#ifndef _WIN32

/// Never terminates on its own; only a budget or deadline stops it.
const char* kSpinWithDeadline =
    R"({"id": 0, "op": "run", "source": "var x, i;\nl:\n  x := x + 1;\n  if i < 1 then goto l else goto end;\n", "deadline_ms": 400})";

/// Drives serve_pipe over real fds: writes every request, closes the
/// input, joins the server, and returns the response lines. A nonzero
/// `first_stagger_ms` pauses after the first request so a worker has
/// demonstrably started it before the rest (and EOF) arrive.
std::vector<std::string> pipe_roundtrip(Server& server,
                                        const std::vector<std::string>& reqs,
                                        int first_stagger_ms = 0) {
  int in_p[2] = {-1, -1};
  int out_p[2] = {-1, -1};
  EXPECT_EQ(::pipe(in_p), 0);
  EXPECT_EQ(::pipe(out_p), 0);
  std::thread t([&] { (void)server.serve_pipe(in_p[0], out_p[1]); });
  const auto send = [&](const std::string& payload) {
    std::size_t off = 0;
    while (off < payload.size()) {
      const ssize_t w =
          ::write(in_p[1], payload.data() + off, payload.size() - off);
      EXPECT_GT(w, 0) << "write to serve_pipe failed";
      if (w <= 0) return;
      off += static_cast<std::size_t>(w);
    }
  };
  std::string all;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (i == 1 && first_stagger_ms > 0) {
      send(all);
      all.clear();
      std::this_thread::sleep_for(std::chrono::milliseconds(first_stagger_ms));
    }
    all += reqs[i] + "\n";
  }
  send(all);
  ::close(in_p[1]);
  t.join();
  ::close(out_p[1]);  // our copy of the write end: EOF for the read below
  std::string buf;
  char chunk[4096];
  ssize_t n;
  while ((n = ::read(out_p[0], chunk, sizeof chunk)) > 0)
    buf.append(chunk, static_cast<std::size_t>(n));
  ::close(in_p[0]);
  ::close(out_p[0]);
  std::vector<std::string> lines;
  std::istringstream is(buf);
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  return lines;
}

TEST(ServePump, FullQueueRejectsWithTypedOverloadAndRetryHint) {
  ServeOptions opt;
  opt.workers = 1;
  opt.max_queue = 1;
  opt.drain_ms = 10'000;  // EOF drain must still run the queued request
  Server server(opt);
  std::vector<std::string> reqs = {kSpinWithDeadline};
  for (int i = 1; i <= 30; ++i)
    reqs.push_back(R"({"id": )" + std::to_string(i) +
                   R"(, "op": "run", "source": "var x;\n  x := 1 + 2;\n"})");
  // Stagger so the worker is pinned on the spinner (queue empty) when
  // the flood arrives: one slot admits, the rest are turned away.
  const std::vector<std::string> lines =
      pipe_roundtrip(server, reqs, /*first_stagger_ms=*/100);
  // Exactly one response per request, in request order.
  ASSERT_EQ(lines.size(), reqs.size());
  const JsonValue spin = parse_response(lines[0]);
  EXPECT_FALSE(spin.find("ok")->boolean);
  EXPECT_EQ(spin.find("error")->find("kind")->string, "machine");

  std::size_t overloaded = 0;
  std::size_t served = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const JsonValue r = parse_response(lines[i]);
    const JsonValue* err = r.find("error");
    if (!err->is_null() && err->find("kind")->string == "overloaded") {
      ++overloaded;
      EXPECT_EQ(keys(*err), kOverloadedErrorKeys) << lines[i];
      EXPECT_GE(err->find("retry_after_ms")->number, 1.0);
      EXPECT_TRUE(r.find("id")->is_null());  // correlate by order
    } else {
      EXPECT_TRUE(r.find("ok")->boolean) << lines[i];
      ++served;
    }
  }
  // The single worker was pinned on the spinner: almost everything
  // behind the one queue slot was turned away, but whatever was
  // admitted ran to completion.
  EXPECT_GE(overloaded, 1u);
  EXPECT_GE(served, 1u);
  EXPECT_EQ(server.stats().rejected_overload.load(), overloaded);
}

TEST(ServePump, ClosedDrainWindowRejectsQueuedRequestsAsDraining) {
  ServeOptions opt;
  opt.workers = 1;
  opt.drain_ms = 0;  // the window closes the instant draining starts
  Server server(opt);
  const std::vector<std::string> lines = pipe_roundtrip(
      server,
      {kSpinWithDeadline,
       R"({"id": 1, "op": "run", "source": "var x;\n  x := 1 + 2;\n"})",
       R"({"id": 2, "op": "run", "source": "var x;\n  x := 1 + 2;\n"})"},
      /*first_stagger_ms=*/100);
  // The spinner was in flight before EOF (staggered write), so it
  // finishes with its typed machine error; the queued two fall outside
  // the zero-width drain window but are still answered.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(parse_response(lines[0]).find("error")->find("kind")->string,
            "machine");
  for (std::size_t i = 1; i < 3; ++i) {
    const JsonValue r = parse_response(lines[i]);
    EXPECT_FALSE(r.find("ok")->boolean);
    EXPECT_EQ(r.find("error")->find("kind")->string, "draining") << lines[i];
    EXPECT_EQ(r.find("id")->number, static_cast<double>(i));  // id echoed
  }
  EXPECT_EQ(server.stats().rejected_draining.load(), 2u);
}

TEST(ServePump, ShutdownOpDrainsAndExitsThePipeLoop) {
  ServeOptions opt;
  opt.workers = 2;
  Server server(opt);
  const std::vector<std::string> lines = pipe_roundtrip(
      server, {kRunX, R"({"id": 9, "op": "shutdown"})"});
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(parse_response(lines[0]).find("ok")->boolean);
  const JsonValue ack = parse_response(lines[1]);
  EXPECT_TRUE(ack.find("ok")->boolean);
  EXPECT_EQ(ack.find("op")->string, "shutdown");
}

int connect_unix(const std::string& path) {
  for (int attempt = 0; attempt < 300; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", path.c_str());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0)
      return fd;
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

bool send_all(int fd, const std::string& s) {
  std::size_t off = 0;
  while (off < s.size()) {
    const ssize_t w = ::write(fd, s.data() + off, s.size() - off);
    if (w <= 0) return false;
    off += static_cast<std::size_t>(w);
  }
  return true;
}

std::string recv_line(int fd) {
  std::string line;
  char c;
  while (::read(fd, &c, 1) == 1) {
    if (c == '\n') return line;
    line.push_back(c);
  }
  return line;
}

TEST(ServePump, SocketClientDisconnectMidBatchDoesNotKillTheServer) {
  ServeOptions opt;
  opt.workers = 2;
  Server server(opt);
  const std::string path =
      ::testing::TempDir() + "/ctdf_serve_disc_" +
      std::to_string(static_cast<long>(::getpid())) + ".sock";
  std::thread t([&] { (void)server.serve_socket(path); });

  // Client 1: a batch of real work, then hang up without reading the
  // response. The server's write must fail quietly (EPIPE is ignored),
  // be counted, and leave the listener accepting.
  {
    const int c1 = connect_unix(path);
    ASSERT_GE(c1, 0);
    std::string batch = R"({"op": "run-batch", "requests": [)";
    for (int i = 0; i < 6; ++i) {
      if (i) batch += ", ";
      batch += R"({"id": )" + std::to_string(i) +
               R"(, "source": "var x;\n  x := )" + std::to_string(i) +
               R"( + 1;\n"})";
    }
    batch += "]}\n";
    ASSERT_TRUE(send_all(c1, batch));
    ::close(c1);  // gone before the response exists
  }

  // Client 2: the server must still answer.
  const int c2 = connect_unix(path);
  ASSERT_GE(c2, 0);
  ASSERT_TRUE(send_all(c2, std::string(kRunX) + "\n"));
  const JsonValue r = parse_response(recv_line(c2));
  EXPECT_TRUE(r.find("ok")->boolean);
  EXPECT_EQ(r.find("store")->find("x")->number, 3.0);

  // The hangup was observed and counted (the batch may still be
  // computing: wait for the failed write, bounded).
  for (int i = 0; i < 200 && server.stats().client_disconnects.load() == 0;
       ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(server.stats().client_disconnects.load(), 1u);

  ASSERT_TRUE(send_all(c2, "{\"op\": \"shutdown\"}\n"));
  const JsonValue ack = parse_response(recv_line(c2));
  EXPECT_TRUE(ack.find("ok")->boolean);
  ::close(c2);
  t.join();
  // Clean exit unlinks the socket file.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

#endif  // !_WIN32

TEST(Serve, StreamLoopEmitsOneLinePerRequestAndStopsOnShutdown) {
  Server server;
  std::istringstream in(std::string(kRunX) + "\n\n" +  // blank lines skipped
                        kRunX + "\n" +
                        R"({"op": "shutdown"})" + "\n" +
                        kRunX + "\n");  // never reached
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 0);

  std::istringstream lines(out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    const JsonValue r = parse_response(line);  // every line parses clean
    EXPECT_TRUE(r.find("ok")->boolean);
  }
  EXPECT_EQ(count, 3u);  // run, run, shutdown ack
}

}  // namespace
}  // namespace ctdf::serve
