// `ctdf serve` protocol coverage (serve/serve.hpp): request decoding,
// typed error taxonomy, cache dispositions across repeated requests,
// batch semantics (ordering, worker pools, per-item errors), and the
// golden response key sets downstream clients parse by name.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "serve/json.hpp"
#include "serve/serve.hpp"

namespace ctdf::serve {
namespace {

JsonValue parse_response(const std::string& line) {
  std::string error;
  const auto doc = json_parse(line, &error);
  EXPECT_TRUE(doc.has_value()) << error << "\nin: " << line;
  return doc.value_or(JsonValue{});
}

std::vector<std::string> keys(const JsonValue& obj) {
  std::vector<std::string> out;
  for (const auto& [k, v] : obj.object) out.push_back(k);
  return out;
}

const char* kRunX = R"({"id": 1, "op": "run", "source": "var x;\n  x := 1 + 2;\n"})";

// The frozen response vocabulary. Serve clients (the CI smoke job,
// scripts, external callers) key on these exact names and orders;
// changing them is a protocol break that must update this test.
const std::vector<std::string> kProgramResponseKeys = {
    "id", "op", "ok", "cache", "content_hash", "stage_nanos",
    "exec_nanos", "total_nanos", "stats", "store", "error"};
const std::vector<std::string> kCacheKeys = {
    "disposition", "key", "hits", "disk_hits", "misses",
    "evictions", "disk_rejects", "entries", "blob_bytes"};
const std::vector<std::string> kShortErrorKeys = {"id", "op", "ok", "error"};
const std::vector<std::string> kErrorObjectKeys = {"kind", "message"};
const std::vector<std::string> kBatchResponseKeys = {
    "id", "op", "ok", "batch", "results", "error"};
const std::vector<std::string> kBatchObjectKeys = {"requests", "errors",
                                                   "cache_hits"};

TEST(Serve, RunRespondsWithTheGoldenKeySetAndTheStore) {
  Server server;
  const JsonValue r = parse_response(server.handle_line(kRunX));
  EXPECT_EQ(keys(r), kProgramResponseKeys);
  EXPECT_EQ(keys(*r.find("cache")), kCacheKeys);
  EXPECT_TRUE(r.find("ok")->boolean);
  EXPECT_EQ(r.find("id")->number, 1.0);
  EXPECT_EQ(r.find("cache")->find("disposition")->string, "miss");
  EXPECT_EQ(r.find("store")->find("x")->number, 3.0);
  EXPECT_TRUE(r.find("error")->is_null());
  // A miss ran the pipeline: stage timings are present and non-trivial.
  EXPECT_GT(r.find("stage_nanos")->find("total")->number, 0.0);
  EXPECT_EQ(r.find("content_hash")->string.size(), 16u);
}

TEST(Serve, SecondIdenticalRequestIsAMemoryHit) {
  Server server;
  (void)server.handle_line(kRunX);
  const JsonValue r = parse_response(server.handle_line(kRunX));
  const JsonValue* cache = r.find("cache");
  EXPECT_EQ(cache->find("disposition")->string, "hit-memory");
  EXPECT_EQ(cache->find("hits")->number, 1.0);
  EXPECT_EQ(cache->find("misses")->number, 1.0);
  // Nothing compiled: the stage object carries only the zero total.
  EXPECT_EQ(r.find("stage_nanos")->find("total")->number, 0.0);
  // Same bytes, same answer.
  EXPECT_EQ(r.find("store")->find("x")->number, 3.0);
}

TEST(Serve, DifferentOptionsAreADifferentCacheEntry) {
  Server server;
  (void)server.handle_line(kRunX);
  const std::string with_opts =
      R"({"op": "run", "source": "var x;\n  x := 1 + 2;\n", "options": ["--mem-elim", "--engine=event"]})";
  const JsonValue r = parse_response(server.handle_line(with_opts));
  EXPECT_TRUE(r.find("ok")->boolean);
  EXPECT_EQ(r.find("cache")->find("disposition")->string, "miss");
  EXPECT_EQ(r.find("cache")->find("entries")->number, 2.0);
  EXPECT_EQ(r.find("stats")->find("options")->find("engine")->string,
            "event");
}

TEST(Serve, CompileOpSkipsExecution) {
  Server server;
  const JsonValue r = parse_response(server.handle_line(
      R"({"op": "compile", "source": "var x;\n  x := 1 + 2;\n"})"));
  EXPECT_EQ(keys(r), kProgramResponseKeys);
  EXPECT_TRUE(r.find("ok")->boolean);
  EXPECT_TRUE(r.find("stats")->is_null());
  EXPECT_TRUE(r.find("store")->is_null());
  EXPECT_EQ(r.find("exec_nanos")->number, 0.0);
}

TEST(Serve, PrintSelectsNamesAndUnknownNamesRenderNull) {
  Server server;
  const JsonValue r = parse_response(server.handle_line(
      R"({"op": "run", "source": "var x;\n  x := 1 + 2;\n", "print": ["x", "nope"]})"));
  const JsonValue* store = r.find("store");
  EXPECT_EQ(store->find("x")->number, 3.0);
  EXPECT_TRUE(store->find("nope")->is_null());
}

TEST(Serve, ErrorTaxonomyIsTyped) {
  Server server;
  const auto error_kind = [&](const std::string& line) {
    const JsonValue r = parse_response(server.handle_line(line));
    EXPECT_EQ(keys(r), kShortErrorKeys) << line;
    EXPECT_FALSE(r.find("ok")->boolean) << line;
    EXPECT_EQ(keys(*r.find("error")), kErrorObjectKeys) << line;
    return r.find("error")->find("kind")->string;
  };
  EXPECT_EQ(error_kind("{oops"), "protocol");
  EXPECT_EQ(error_kind(R"({"source": "var x;\n  x := 1;\n"})"), "protocol");
  EXPECT_EQ(error_kind(R"({"op": "vaporize"})"), "protocol");
  EXPECT_EQ(error_kind(R"({"op": "run"})"), "protocol");  // missing source
  EXPECT_EQ(error_kind(
                R"({"op": "run", "source": "var x;\n  x := 1;\n", "options": ["--no-such-flag"]})"),
            "options");
  EXPECT_EQ(error_kind(
                R"({"op": "run", "source": "var x;\n  x := 1;\n", "options": ["--engine=quantum"]})"),
            "options");
  EXPECT_EQ(error_kind(R"({"op": "run", "source": "var x;\n  x := ;\n"})"),
            "compile");
}

TEST(Serve, MachineFailuresKeepTheFullResponseShape) {
  Server server;
  const JsonValue r = parse_response(server.handle_line(
      R"({"op": "run", "source": "var x;\n  x := 1 + 2;\n", "options": ["--max-cycles=1"]})"));
  EXPECT_EQ(keys(r), kProgramResponseKeys);  // not the short error form
  EXPECT_FALSE(r.find("ok")->boolean);
  EXPECT_EQ(r.find("error")->find("kind")->string, "machine");
  EXPECT_FALSE(r.find("stats")->is_null());  // diagnostics still attached
  EXPECT_TRUE(r.find("store")->is_null());
}

TEST(Serve, RunBatchKeepsOrderSharesTheCacheAndCountsErrors) {
  Server server;
  const std::string batch = R"({"id": "b1", "op": "run-batch", "requests": [)"
                            R"({"id": 10, "source": "var x;\n  x := 1 + 2;\n"},)"
                            R"({"id": 11, "source": "var x;\n  x := 1 + 2;\n"},)"
                            R"({"id": 12, "source": "var y;\n  y := ;\n"},)"
                            R"({"id": 13, "op": "run-batch"}]})";
  const JsonValue r = parse_response(server.handle_line(batch));
  EXPECT_EQ(keys(r), kBatchResponseKeys);
  EXPECT_TRUE(r.find("ok")->boolean);
  const JsonValue* b = r.find("batch");
  EXPECT_EQ(keys(*b), kBatchObjectKeys);
  EXPECT_EQ(b->find("requests")->number, 4.0);
  EXPECT_EQ(b->find("errors")->number, 2.0);      // compile + nested batch
  EXPECT_EQ(b->find("cache_hits")->number, 1.0);  // the repeated source

  const std::vector<JsonValue>& results = r.find("results")->array;
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].find("id")->number, 10.0);
  EXPECT_EQ(results[1].find("id")->number, 11.0);
  EXPECT_EQ(results[2].find("id")->number, 12.0);
  EXPECT_EQ(results[3].find("id")->number, 13.0);
  // Item op defaults to "run" inside a batch.
  EXPECT_EQ(results[0].find("op")->string, "run");
  EXPECT_EQ(results[1].find("cache")->find("disposition")->string,
            "hit-memory");
  EXPECT_EQ(results[2].find("error")->find("kind")->string, "compile");
  EXPECT_EQ(results[3].find("error")->find("kind")->string, "protocol");
}

TEST(Serve, BatchLevelOptionsAreEachItemsBaseline) {
  Server server;
  const std::string batch =
      R"({"op": "run-batch", "options": ["--engine=event"], "requests": [)"
      R"({"source": "var x;\n  x := 1 + 2;\n"},)"
      R"({"source": "var x;\n  x := 1 + 2;\n", "options": ["--engine=scan"]}]})";
  const JsonValue r = parse_response(server.handle_line(batch));
  const std::vector<JsonValue>& results = r.find("results")->array;
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].find("stats")->find("options")->find("engine")->string,
            "event");
  EXPECT_EQ(results[1].find("stats")->find("options")->find("engine")->string,
            "scan");
}

TEST(Serve, WorkerPoolProducesTheSameOrderedResults) {
  ServeOptions opt;
  opt.workers = 4;
  Server server(opt);
  std::string batch = R"({"op": "run-batch", "requests": [)";
  for (int i = 0; i < 8; ++i) {
    if (i) batch += ", ";
    batch += R"({"id": )" + std::to_string(i) +
             R"(, "source": "var x;\n  x := )" + std::to_string(i) +
             R"( + 1;\n"})";
  }
  batch += "]}";
  const JsonValue r = parse_response(server.handle_line(batch));
  EXPECT_TRUE(r.find("ok")->boolean);
  EXPECT_EQ(r.find("batch")->find("errors")->number, 0.0);
  const std::vector<JsonValue>& results = r.find("results")->array;
  ASSERT_EQ(results.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(results[i].find("id")->number, i) << i;
    EXPECT_EQ(results[i].find("store")->find("x")->number, i + 1.0) << i;
  }
}

TEST(Serve, ShutdownAcknowledgesAndStopsTheLoop) {
  Server server;
  bool shutdown = false;
  const JsonValue r = parse_response(
      server.handle_line(R"({"id": 99, "op": "shutdown"})", &shutdown));
  EXPECT_TRUE(shutdown);
  EXPECT_TRUE(r.find("ok")->boolean);
  EXPECT_EQ(r.find("op")->string, "shutdown");

  // Errors must NOT set the flag.
  (void)server.handle_line("{oops", &shutdown);
  EXPECT_FALSE(shutdown);
}

TEST(Serve, StreamLoopEmitsOneLinePerRequestAndStopsOnShutdown) {
  Server server;
  std::istringstream in(std::string(kRunX) + "\n\n" +  // blank lines skipped
                        kRunX + "\n" +
                        R"({"op": "shutdown"})" + "\n" +
                        kRunX + "\n");  // never reached
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 0);

  std::istringstream lines(out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    const JsonValue r = parse_response(line);  // every line parses clean
    EXPECT_TRUE(r.find("ok")->boolean);
  }
  EXPECT_EQ(count, 3u);  // run, run, shutdown ack
}

}  // namespace
}  // namespace ctdf::serve
