// Differential harness for the event engine: for every swept
// configuration, a run with engine=event (calendar queue + frame
// recycling) must be bit-identical to the scan engine — every RunStats
// counter, every per-node first-fire cycle, the per-cycle profile, the
// error text, and the final store. Both engines instantiate one
// SerialEngine template (engine_serial.hpp), so this suite guards the
// pending-queue policies (and the recycling they enable) against
// drift rather than establishing equivalence from scratch.
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "dfg/graph.hpp"
#include "lang/corpus.hpp"
#include "lang/generator.hpp"
#include "lang/parser.hpp"
#include "machine/machine.hpp"

namespace ctdf::machine {
namespace {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;

void expect_identical(const RunResult& scan, const RunResult& event,
                      const std::string& context) {
  EXPECT_EQ(scan.stats.completed, event.stats.completed) << context;
  EXPECT_EQ(scan.stats.error, event.stats.error) << context;
  EXPECT_EQ(scan.stats.cycles, event.stats.cycles) << context;
  EXPECT_EQ(scan.stats.ops_fired, event.stats.ops_fired) << context;
  EXPECT_EQ(scan.stats.tokens_sent, event.stats.tokens_sent) << context;
  EXPECT_EQ(scan.stats.matches, event.stats.matches) << context;
  EXPECT_EQ(scan.stats.contexts_allocated, event.stats.contexts_allocated)
      << context;
  EXPECT_EQ(scan.stats.mem_reads, event.stats.mem_reads) << context;
  EXPECT_EQ(scan.stats.mem_writes, event.stats.mem_writes) << context;
  EXPECT_EQ(scan.stats.peak_live_contexts, event.stats.peak_live_contexts)
      << context;
  EXPECT_EQ(scan.stats.throttle_stalls, event.stats.throttle_stalls)
      << context;
  EXPECT_EQ(scan.stats.deferred_reads, event.stats.deferred_reads) << context;
  EXPECT_EQ(scan.stats.peak_ready, event.stats.peak_ready) << context;
  EXPECT_EQ(scan.stats.leftover_tokens, event.stats.leftover_tokens)
      << context;
  EXPECT_EQ(scan.stats.fired_by_kind, event.stats.fired_by_kind) << context;
  EXPECT_EQ(scan.stats.first_fire_cycle, event.stats.first_fire_cycle)
      << context;
  EXPECT_EQ(scan.stats.profile, event.stats.profile) << context;
  EXPECT_EQ(scan.store.cells, event.store.cells) << context;
}

/// Runs `tx` under the scan and event engines, demanding identity. The
/// scan result is returned for callers' own sanity assertions.
RunResult check_event(const translate::Translation& tx, MachineOptions mopt,
                      const std::string& context) {
  mopt.engine = EngineKind::kScan;
  mopt.host_threads = 0;
  const RunResult scan = core::execute(tx, mopt);
  mopt.engine = EngineKind::kEvent;
  const RunResult event = core::execute(tx, mopt);
  expect_identical(scan, event, context + " engine=event");
  return scan;
}

void sweep_program(const lang::Program& prog,
                   const translate::TranslateOptions& topt,
                   const std::string& context) {
  const auto tx = core::compile(prog, topt);
  for (const auto loop_mode : {LoopMode::kBarrier, LoopMode::kPipelined}) {
    for (const std::uint64_t seed : {0ull, 7ull, 99ull}) {
      for (const unsigned width : {0u, 2u}) {
        MachineOptions mopt;
        mopt.loop_mode = loop_mode;
        mopt.scheduler_seed = seed;
        mopt.width = width;
        mopt.mem_latency = seed % 2 ? 1 : 9;
        mopt.record_profile = true;
        const auto res = check_event(
            tx, mopt,
            context + " loop=" + to_string(loop_mode) +
                " seed=" + std::to_string(seed) +
                " width=" + std::to_string(width));
        EXPECT_TRUE(res.stats.completed) << context << ": " << res.stats.error;
      }
    }
  }
}

TEST(EventEquiv, CorpusUnderOptimizedSchema) {
  for (const auto& np : lang::corpus::all())
    sweep_program(lang::parse_or_throw(np.source),
                  translate::TranslateOptions::schema2_optimized(), np.name);
}

TEST(EventEquiv, CorpusUnderMemoryElimination) {
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  topt.parallel_reads = true;
  for (const auto& np : lang::corpus::all())
    sweep_program(lang::parse_or_throw(np.source), topt, np.name + "/elim");
}

TEST(EventEquiv, IStructuresAndDeferredReads) {
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.istructure_arrays = {"x"};
  sweep_program(lang::corpus::array_loop(10), topt, "array_loop_istruct");
}

TEST(EventEquiv, MultiPePlacementsAndNetworkLatency) {
  // The wheel horizon must absorb the cross-PE hop surcharge.
  const auto tx =
      core::compile(lang::corpus::nested_loops_source(4, 5),
                    translate::TranslateOptions::schema2_optimized());
  for (const auto placement : {Placement::kByNode, Placement::kByContext}) {
    for (const unsigned processors : {1u, 3u, 16u}) {
      for (const unsigned net : {0u, 2u, 5u}) {
        MachineOptions mopt;
        mopt.loop_mode = LoopMode::kPipelined;
        mopt.processors = processors;
        mopt.placement = placement;
        mopt.network_latency = net;
        mopt.record_profile = true;
        const auto res = check_event(
            tx, mopt,
            std::string("nested_loops pe=") + std::to_string(processors) +
                " placement=" + to_string(placement) +
                " net=" + std::to_string(net));
        EXPECT_TRUE(res.stats.completed) << res.stats.error;
      }
    }
  }
}

TEST(EventEquiv, KBoundedLoops) {
  // Stall re-delivery lands at cycle + 1 — the wheel's shortest slot.
  const auto tx = core::compile(
      lang::corpus::array_loop(16),
      translate::TranslateOptions::schema2_optimized());
  for (const unsigned k : {1u, 2u, 4u}) {
    for (const std::uint64_t seed : {0ull, 5ull}) {
      MachineOptions mopt;
      mopt.loop_mode = LoopMode::kPipelined;
      mopt.loop_bound = k;
      mopt.scheduler_seed = seed;
      const auto res = check_event(tx, mopt,
                                   "array_loop k=" + std::to_string(k) +
                                       " seed=" + std::to_string(seed));
      EXPECT_TRUE(res.stats.completed) << res.stats.error;
      if (k == 1) {
        EXPECT_GT(res.stats.throttle_stalls, 0u);
      }
    }
  }
}

TEST(EventEquiv, RandomPrograms) {
  for (std::uint64_t gseed = 0; gseed < 6; ++gseed) {
    lang::GeneratorOptions gopt;
    gopt.allow_unstructured = true;
    gopt.allow_aliasing = true;
    gopt.num_arrays = 1;
    gopt.max_toplevel_stmts = 8;
    const auto prog = lang::generate_program(gopt, gseed);
    auto topt = translate::TranslateOptions::schema2_optimized();
    topt.parallel_reads = true;
    const auto tx = core::compile(prog, topt);
    for (const std::uint64_t seed : {0ull, 3ull}) {
      MachineOptions mopt;
      mopt.loop_mode = LoopMode::kPipelined;
      mopt.scheduler_seed = seed;
      mopt.width = 3;
      check_event(tx, mopt,
                  "gen seed=" + std::to_string(gseed) +
                      " sched=" + std::to_string(seed));
    }
  }
}

TEST(EventEquiv, ThreeWayWithParallelEngine) {
  // One three-way row: scan-serial, scan-parallel, and event must all
  // agree on the corpus at defaults (the full thread ladder lives in
  // machine_parallel_equiv_test.cpp).
  for (const auto& np : lang::corpus::all()) {
    const auto tx =
        core::compile(lang::parse_or_throw(np.source),
                      translate::TranslateOptions::schema2_optimized());
    MachineOptions mopt;
    mopt.loop_mode = LoopMode::kPipelined;
    mopt.record_profile = true;
    const RunResult scan = core::execute(tx, mopt);
    mopt.host_threads = 4;
    const RunResult parallel = core::execute(tx, mopt);
    mopt.host_threads = 0;
    mopt.engine = EngineKind::kEvent;
    const RunResult event = core::execute(tx, mopt);
    expect_identical(scan, parallel, np.name + " 3way/parallel");
    expect_identical(scan, event, np.name + " 3way/event");
  }
}

TEST(EventEquiv, EventEngineIgnoresHostThreads) {
  const auto tx =
      core::compile(lang::corpus::running_example(),
                    translate::TranslateOptions::schema2_optimized());
  MachineOptions mopt;
  mopt.engine = EngineKind::kEvent;
  const RunResult a = core::execute(tx, mopt);
  mopt.host_threads = 8;
  const RunResult b = core::execute(tx, mopt);
  expect_identical(a, b, "event host_threads=8");
}

TEST(EventEquiv, AbsurdLatencyFallsBackToScan) {
  // A horizon at or past CalendarQueue::kMaxHorizon must transparently
  // take the scan path — same results, no degenerate wheel.
  const auto tx =
      core::compile(lang::corpus::running_example(),
                    translate::TranslateOptions::schema2_optimized());
  MachineOptions mopt;
  mopt.mem_latency = 1u << 21;
  const RunResult scan = core::execute(tx, mopt);
  mopt.engine = EngineKind::kEvent;
  const RunResult event = core::execute(tx, mopt);
  expect_identical(scan, event, "huge-latency fallback");
  EXPECT_TRUE(scan.stats.completed) << scan.stats.error;
}

// ---- error-path identity: diagnostics (including their text, which
// depends on leftover-token iteration order) must not depend on the
// engine.

NodeId add_start(Graph& g, std::vector<std::int64_t> values) {
  Node s;
  s.kind = OpKind::kStart;
  s.num_outputs = static_cast<std::uint16_t>(values.size());
  s.start_values = std::move(values);
  const NodeId n = g.add(std::move(s));
  g.set_start(n);
  return n;
}

NodeId add_end(Graph& g, std::uint16_t inputs) {
  Node e;
  e.kind = OpKind::kEnd;
  e.num_inputs = inputs;
  const NodeId n = g.add(std::move(e));
  g.set_end(n);
  return n;
}

void check_graph_event(const Graph& g, std::size_t cells, MachineOptions mopt,
                       const std::vector<IStructureRegion>& is,
                       const std::string& context) {
  mopt.engine = EngineKind::kScan;
  const RunResult scan = run(g, cells, mopt, is);
  mopt.engine = EngineKind::kEvent;
  const RunResult event = run(g, cells, mopt, is);
  expect_identical(scan, event, context + " engine=event");
}

TEST(EventEquiv, DeadlockReportIsIdentical) {
  Graph g;
  const NodeId s = add_start(g, {0});
  const NodeId sy = g.add_synch(2, "starved");
  g.connect({s, 0}, {sy, 0}, true);
  const NodeId gate = g.add_gate("never");
  g.bind_literal({gate, 0}, 0);
  g.connect({sy, 0}, {gate, 1}, true);
  g.connect({gate, 0}, {sy, 1}, true);
  const NodeId e = add_end(g, 1);
  g.connect({sy, 0}, {e, 0}, true);
  check_graph_event(g, 0, {}, {}, "deadlock");
}

TEST(EventEquiv, CollisionReportIsIdentical) {
  Graph g;
  const NodeId s = add_start(g, {1, 2});
  const NodeId sy = g.add_synch(2, "victim");
  g.connect({s, 0}, {sy, 0}, true);
  g.connect({s, 1}, {sy, 0}, true);
  const NodeId e = add_end(g, 1);
  g.connect({sy, 0}, {e, 0}, true);
  const NodeId gate = g.add_gate("idle");
  g.bind_literal({gate, 0}, 0);
  g.connect({sy, 0}, {gate, 1}, true);
  g.connect({gate, 0}, {sy, 1}, true);
  check_graph_event(g, 0, {}, {}, "collision");
}

TEST(EventEquiv, DoubleWriteReportIsIdentical) {
  Graph g;
  const NodeId s = add_start(g, {0, 0});
  for (std::uint16_t i = 0; i < 2; ++i) {
    const NodeId istore = g.add_istore(0, 4, "w");
    g.bind_literal({istore, 0}, 9);
    g.bind_literal({istore, 1}, 1);
    g.connect({s, i}, {istore, 2}, true);
    if (i == 0) {
      const NodeId e = add_end(g, 1);
      g.connect({istore, 0}, {e, 0}, true);
    }
  }
  check_graph_event(g, 4, {}, {{0, 4}}, "double-write");
}

TEST(EventEquiv, UnfiredStoreReportIsIdentical) {
  Graph g;
  const NodeId s = add_start(g, {0, 0});
  const NodeId st = g.add_store(0, "uncollected");
  g.bind_literal({st, 0}, 9);
  g.connect({s, 1}, {st, 1}, true);
  const NodeId sink = g.add_merge("sink");
  g.connect({st, 0}, {sink, 0}, true);
  const NodeId e = add_end(g, 1);
  g.connect({s, 0}, {e, 0}, true);
  check_graph_event(g, 1, {}, {}, "unfired-store");
}

TEST(EventEquiv, CycleCapReportIsIdentical) {
  Graph g;
  const NodeId s = add_start(g, {0});
  const NodeId m = g.add_merge("spin");
  g.connect({s, 0}, {m, 0}, true);
  g.connect({m, 0}, {m, 0}, true);
  const NodeId never = g.add_gate("never");
  g.bind_literal({never, 0}, 0);
  g.connect({never, 0}, {never, 1}, true);
  const NodeId e = add_end(g, 1);
  g.connect({never, 0}, {e, 0}, true);
  MachineOptions o;
  o.budget.max_cycles = 500;
  o.record_profile = true;
  check_graph_event(g, 0, o, {}, "cycle-cap");
}

// ---- token-drain accounting after End: tokens legally still in flight
// when End fires (dead value chains) must be counted as leftovers, and
// the operators they were bound for must NOT count as firings — in
// either engine, whether the token was sitting in the ready pool or
// still in the pending queue.

TEST(EventEquiv, DrainedReadyTokenDoesNotCountAsFiring) {
  // start.0 → end fires first; start.1 → gate is ready but never fires.
  Graph g;
  const NodeId s = add_start(g, {0, 0});
  const NodeId e = add_end(g, 1);
  g.connect({s, 0}, {e, 0}, true);
  const NodeId gate = g.add_gate("slow");
  g.bind_literal({gate, 0}, 1);
  g.connect({s, 1}, {gate, 1}, true);
  const NodeId sink = g.add_merge("sink");
  g.connect({gate, 0}, {sink, 0}, false);

  MachineOptions o;
  o.engine = EngineKind::kScan;
  const RunResult scan = run(g, 0, o);
  o.engine = EngineKind::kEvent;
  const RunResult event = run(g, 0, o);
  expect_identical(scan, event, "ready-drain");
  ASSERT_TRUE(scan.stats.completed) << scan.stats.error;
  // Only start and end fired; the gate's token drained unfired.
  EXPECT_EQ(scan.stats.ops_fired, 2u);
  EXPECT_EQ(scan.stats.leftover_tokens, 1u);
  EXPECT_EQ(scan.stats.fired_by_kind[static_cast<std::size_t>(OpKind::kGate)],
            0u);
}

TEST(EventEquiv, DrainedPendingTokenDoesNotCountAsFiring) {
  // The gate fires before End does, so its output token is deep in the
  // pending queue when the run completes: the leftover count must find
  // it there (the wheel's ring scan vs the scan engine's map walk).
  Graph g;
  const NodeId s = add_start(g, {0, 0});
  const NodeId gate = g.add_gate("fires");
  g.bind_literal({gate, 0}, 1);
  g.connect({s, 0}, {gate, 1}, true);
  const NodeId sink = g.add_merge("sink");
  g.connect({gate, 0}, {sink, 0}, false);
  const NodeId e = add_end(g, 1);
  g.connect({s, 1}, {e, 0}, true);

  MachineOptions o;
  o.alu_latency = 7;
  o.engine = EngineKind::kScan;
  const RunResult scan = run(g, 0, o);
  o.engine = EngineKind::kEvent;
  const RunResult event = run(g, 0, o);
  expect_identical(scan, event, "pending-drain");
  ASSERT_TRUE(scan.stats.completed) << scan.stats.error;
  // start, gate, and end fired; the sink merge's token is still seven
  // cycles out when End fires and must not become a merge firing.
  EXPECT_EQ(scan.stats.ops_fired, 3u);
  EXPECT_EQ(scan.stats.leftover_tokens, 1u);
  EXPECT_EQ(scan.stats.fired_by_kind[static_cast<std::size_t>(OpKind::kMerge)],
            0u);
}

}  // namespace
}  // namespace ctdf::machine
