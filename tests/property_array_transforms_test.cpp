// Property family for the Section 6.3 transforms: randomized array
// fill/reduce loop nests (random trip counts, strides, offsets, array
// sizes, machine shapes) under fig14 and I-structure translation must
// match the interpreter.
#include <gtest/gtest.h>

#include <sstream>

#include "core/compiler.hpp"
#include "support/rng.hpp"

namespace ctdf::testing {
namespace {

struct Family {
  std::string source;
  bool write_once = true;  ///< eligible for --istructure
};

/// A random produce/consume nest:
///   for i in 0..trips:  a[c*i + d] := <expr(i)>
///   for j in 0..trips:  s := s + a[c*j + d]
/// With |c·trips + d| within the array bounds, the program is
/// write-once and every store hits a distinct cell.
Family make_family(support::SplitMix64& rng) {
  const std::int64_t trips = rng.next_in(1, 24);
  const std::int64_t stride = rng.chance(1, 2) ? 1 : rng.next_in(2, 3);
  const std::int64_t offset = rng.next_in(0, 3);
  const std::int64_t size = stride * (trips + 1) + offset + 1;

  std::ostringstream os;
  os << "var i, j, s;\narray a[" << size << "];\n";
  os << "fill: i := i + 1;\n";
  os << "  a[" << stride << " * i + " << offset << "] := i * "
     << rng.next_in(1, 5) << " + " << rng.next_in(-3, 3) << ";\n";
  os << "  if i < " << trips << " then goto fill else goto reduce;\n";
  os << "reduce: j := j + 1;\n";
  os << "  s := s + a[" << stride << " * j + " << offset << "];\n";
  os << "  if j < " << trips << " then goto reduce else goto end;\n";
  return {os.str(), true};
}

class ArrayTransforms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArrayTransforms, Fig14AndIStructuresMatchInterpreter) {
  support::SplitMix64 rng(GetParam() * 1000003 + 17);
  const Family fam = make_family(rng);
  const auto prog = core::parse(fam.source);
  const auto ref = lang::interpret(prog, 2'000'000);
  ASSERT_TRUE(ref.completed);

  for (const bool memelim : {false, true}) {
    for (const int variant : {0, 1, 2}) {  // 0 base, 1 fig14, 2 istruct
      auto topt = translate::TranslateOptions::schema2_optimized();
      topt.eliminate_memory = memelim;
      if (variant == 1) topt.parallel_store_arrays = {"a"};
      if (variant == 2) topt.istructure_arrays = {"a"};
      for (const auto mode :
           {machine::LoopMode::kBarrier, machine::LoopMode::kPipelined}) {
        machine::MachineOptions mopt;
        mopt.loop_mode = mode;
        mopt.mem_latency = static_cast<unsigned>(rng.next_in(1, 20));
        mopt.width = rng.chance(1, 2) ? 0 : 2;
        const auto tx = core::compile(prog, topt);
        const auto res = core::execute(tx, mopt);
        ASSERT_TRUE(res.stats.completed)
            << topt.describe() << " " << to_string(mode) << ": "
            << res.stats.error << "\n" << fam.source;
        EXPECT_EQ(res.store.cells, ref.store.cells)
            << topt.describe() << " " << to_string(mode) << "\n"
            << fam.source;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArrayTransforms,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(ArrayTransformsEdge, StrideLargerThanOne) {
  const auto prog = core::parse(R"(
var i; array a[64];
l: i := i + 1; a[3 * i] := i; if i < 20 then goto l else goto end;
)");
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.parallel_store_arrays = {"a"};
  const auto tx = core::compile(prog, topt);
  EXPECT_EQ(tx.loops_store_parallelized, 1u);
  const auto ref = lang::interpret(prog);
  const auto res = core::execute(tx, {});
  ASSERT_TRUE(res.stats.completed) << res.stats.error;
  EXPECT_EQ(res.store.cells, ref.store.cells);
}

TEST(ArrayTransformsEdge, TwoArraysOneMarked) {
  const auto prog = core::parse(R"(
var i; array a[16], b[16];
l: i := i + 1; a[i] := i; b[i] := a[i] * 0 + i + 1;
if i < 12 then goto l else goto end;
)");
  // a is read in the loop (by b's rhs), so only b qualifies.
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.parallel_store_arrays = {"a", "b"};
  const auto tx = core::compile(prog, topt);
  EXPECT_EQ(tx.loops_store_parallelized, 1u);
  const auto ref = lang::interpret(prog);
  const auto res = core::execute(tx, {});
  ASSERT_TRUE(res.stats.completed) << res.stats.error;
  EXPECT_EQ(res.store.cells, ref.store.cells);
}

}  // namespace
}  // namespace ctdf::testing
