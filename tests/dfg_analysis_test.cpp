// Unit tests for the loop-nest and dominance analysis
// (dfg/analysis.hpp) on hand-built dataflow graphs, where every
// dominator and loop depth can be stated by inspection.
#include <gtest/gtest.h>

#include "dfg/analysis.hpp"
#include "dfg/graph.hpp"

namespace ctdf::dfg {
namespace {

NodeId add_start(Graph& g, std::uint16_t outs = 1) {
  Node s;
  s.kind = OpKind::kStart;
  s.num_outputs = outs;
  s.start_values.assign(outs, 0);
  const NodeId n = g.add(std::move(s));
  g.set_start(n);
  return n;
}

NodeId add_end(Graph& g, std::uint16_t ins = 1) {
  Node e;
  e.kind = OpKind::kEnd;
  e.num_inputs = ins;
  const NodeId n = g.add(std::move(e));
  g.set_end(n);
  return n;
}

/// 1-in/1-out pass-through — the generic "basic block" of these shape
/// tests (merge ports tolerate any fan-in).
NodeId block(Graph& g, const char* label) { return g.add_merge(label); }

void wire(Graph& g, NodeId src, NodeId dst, std::uint16_t dst_port = 0) {
  g.connect({src, 0}, {dst, dst_port}, false);
}

TEST(Analysis, StraightLineHasChainDominatorsAndDepthZero) {
  Graph g;
  const NodeId s = add_start(g);
  const NodeId a = block(g, "a");
  const NodeId b = block(g, "b");
  const NodeId e = add_end(g);
  wire(g, s, a);
  wire(g, a, b);
  wire(g, b, e);

  const Analysis an = analyze(g);
  EXPECT_EQ(an.preorder.size(), 4u);
  EXPECT_EQ(an.postorder.size(), 4u);
  EXPECT_EQ(an.idom[a.index()], s);
  EXPECT_EQ(an.idom[b.index()], a);
  EXPECT_EQ(an.idom[e.index()], b);
  for (const NodeId n : {s, a, b, e}) {
    EXPECT_TRUE(an.reachable(n));
    EXPECT_EQ(an.loop_depth[n.index()], 0u);
    EXPECT_FALSE(an.loop_header[n.index()].valid());
  }
}

TEST(Analysis, DiamondJoinIsDominatedByTheForkOnly) {
  Graph g;
  const NodeId s = add_start(g);
  const NodeId fork = block(g, "fork");
  const NodeId left = block(g, "left");
  const NodeId right = block(g, "right");
  const NodeId join = block(g, "join");
  const NodeId e = add_end(g);
  wire(g, s, fork);
  wire(g, fork, left);
  wire(g, fork, right);
  wire(g, left, join);
  wire(g, right, join);
  wire(g, join, e);

  const Analysis an = analyze(g);
  EXPECT_EQ(an.idom[join.index()], fork);
  EXPECT_TRUE(an.dominates(fork, join));
  EXPECT_TRUE(an.dominates(s, join));
  EXPECT_FALSE(an.dominates(left, join));
  EXPECT_FALSE(an.dominates(right, join));
  EXPECT_TRUE(an.dominates(join, join));  // reflexive
  EXPECT_EQ(an.max_loop_depth(), 0u);
}

TEST(Analysis, SelfLoopIsItsOwnHeaderAtDepthOne) {
  Graph g;
  const NodeId s = add_start(g);
  const NodeId a = block(g, "a");
  const NodeId e = add_end(g);
  wire(g, s, a);
  wire(g, a, a);  // back arc: a dominates a
  wire(g, a, e);

  const Analysis an = analyze(g);
  EXPECT_EQ(an.loop_depth[a.index()], 1u);
  EXPECT_EQ(an.loop_header[a.index()], a);
  EXPECT_EQ(an.loop_depth[s.index()], 0u);
  EXPECT_EQ(an.loop_depth[e.index()], 0u);
  EXPECT_EQ(an.max_loop_depth(), 1u);
}

TEST(Analysis, SimpleLoopBodySharesTheHeader) {
  Graph g;
  const NodeId s = add_start(g);
  const NodeId h = block(g, "head");
  const NodeId b = block(g, "body");
  const NodeId e = add_end(g);
  wire(g, s, h);
  wire(g, h, b);
  wire(g, b, h);  // back arc: h dominates b
  wire(g, b, e);

  const Analysis an = analyze(g);
  EXPECT_EQ(an.idom[b.index()], h);
  EXPECT_EQ(an.loop_depth[h.index()], 1u);
  EXPECT_EQ(an.loop_depth[b.index()], 1u);
  EXPECT_EQ(an.loop_header[h.index()], h);
  EXPECT_EQ(an.loop_header[b.index()], h);
  EXPECT_EQ(an.loop_depth[e.index()], 0u);
}

TEST(Analysis, NestedLoopsStackDepths) {
  // start → h1 → h2 → b → (h2 back) ; b → x → (h1 back) ; x → end
  Graph g;
  const NodeId s = add_start(g);
  const NodeId h1 = block(g, "h1");
  const NodeId h2 = block(g, "h2");
  const NodeId b = block(g, "b");
  const NodeId x = block(g, "x");
  const NodeId e = add_end(g);
  wire(g, s, h1);
  wire(g, h1, h2);
  wire(g, h2, b);
  wire(g, b, h2);  // inner back arc
  wire(g, b, x);
  wire(g, x, h1);  // outer back arc
  wire(g, x, e);

  const Analysis an = analyze(g);
  EXPECT_EQ(an.loop_depth[h1.index()], 1u);
  EXPECT_EQ(an.loop_depth[x.index()], 1u);
  EXPECT_EQ(an.loop_depth[h2.index()], 2u);
  EXPECT_EQ(an.loop_depth[b.index()], 2u);
  EXPECT_EQ(an.loop_header[b.index()], h2);
  EXPECT_EQ(an.loop_header[x.index()], h1);
  EXPECT_EQ(an.max_loop_depth(), 2u);
  // The inner header's innermost loop is its own.
  EXPECT_EQ(an.loop_header[h2.index()], h2);
}

TEST(Analysis, UnreachableNodesHaveNoOrderDominatorOrDepth) {
  Graph g;
  const NodeId s = add_start(g);
  const NodeId a = block(g, "a");
  const NodeId orphan = block(g, "orphan");  // never wired from start
  const NodeId e = add_end(g);
  wire(g, s, a);
  wire(g, a, e);
  wire(g, orphan, e);

  const Analysis an = analyze(g);
  EXPECT_FALSE(an.reachable(orphan));
  EXPECT_EQ(an.preorder_index[orphan.index()], Analysis::kUnreachable);
  EXPECT_FALSE(an.idom[orphan.index()].valid());
  EXPECT_EQ(an.loop_depth[orphan.index()], 0u);
  EXPECT_FALSE(an.dominates(s, orphan));
  EXPECT_FALSE(an.dominates(orphan, e));
  // Reachable nodes are unaffected by the orphan.
  EXPECT_TRUE(an.dominates(a, e));
}

}  // namespace
}  // namespace ctdf::dfg
