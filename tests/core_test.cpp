// Tests of the public facade: the exact surface a downstream user
// programs against.
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "lang/corpus.hpp"

namespace ctdf::core {
namespace {

TEST(Core, ParseCompileExecuteRoundTrip) {
  const auto prog = parse(lang::corpus::running_example_source());
  const auto tx =
      compile(prog, translate::TranslateOptions::schema2_optimized());
  const auto res = execute(tx, {});
  ASSERT_TRUE(res.stats.completed) << res.stats.error;
  EXPECT_EQ(read_scalar(prog, res.store, "x"), 5);
  EXPECT_EQ(read_scalar(prog, res.store, "y"), 5);
}

TEST(Core, CompileFromSourceDirectly) {
  const auto tx = compile("var x; x := 41 + 1;",
                          translate::TranslateOptions::schema2());
  const auto res = execute(tx, {});
  ASSERT_TRUE(res.stats.completed);
  EXPECT_EQ(res.store.cells.at(0), 42);
}

TEST(Core, ParseErrorsThrow) {
  EXPECT_THROW((void)parse("var x; x := ;"), support::CompileError);
  EXPECT_THROW((void)parse("x := 1;"), support::CompileError);  // undeclared
}

TEST(Core, InfiniteLoopRejectedAtCompile) {
  const auto prog = parse("var x; l: x := x + 1; goto l;");
  EXPECT_THROW(
      (void)compile(prog, translate::TranslateOptions::schema2()),
      support::CompileError);
}

TEST(Core, ReadHelpersValidateNames) {
  const auto prog = parse("var x; array a[4]; x := 7; a[2] := 9;");
  const auto res =
      execute(compile(prog, translate::TranslateOptions::schema2()), {});
  ASSERT_TRUE(res.stats.completed);
  EXPECT_EQ(read_scalar(prog, res.store, "x"), 7);
  EXPECT_EQ(read_element(prog, res.store, "a", 2), 9);
  EXPECT_EQ(read_element(prog, res.store, "a", 6), 9);  // wraps
  EXPECT_THROW((void)read_scalar(prog, res.store, "nope"),
               support::CompileError);
  EXPECT_THROW((void)read_element(prog, res.store, "nope", 0),
               support::CompileError);
}

TEST(Core, TranslationStatsArePopulated) {
  const auto tx = compile(lang::corpus::running_example(),
                          translate::TranslateOptions::schema2_optimized());
  EXPECT_GT(tx.cfg_nodes, 0u);
  EXPECT_GT(tx.cfg_edges, 0u);
  EXPECT_EQ(tx.num_resources, 2u);
  EXPECT_EQ(tx.loops, 1u);
  EXPECT_GT(tx.switches_placed, 0u);
  EXPECT_EQ(tx.memory_cells, 2u);
  EXPECT_TRUE(tx.istructures.empty());
}

TEST(Core, IStructureRegionsFlowThroughExecute) {
  auto o = translate::TranslateOptions::schema2_optimized();
  o.istructure_arrays = {"x"};
  const auto tx = compile(lang::corpus::array_loop(5), o);
  ASSERT_EQ(tx.istructures.size(), 1u);
  const auto res = execute(tx, {});
  ASSERT_TRUE(res.stats.completed) << res.stats.error;
  const auto prog = lang::corpus::array_loop(5);
  for (int i = 1; i <= 5; ++i)
    EXPECT_EQ(read_element(prog, res.store, "x", i), 1);
}

TEST(Core, DescribeStringsAreStable) {
  EXPECT_EQ(translate::TranslateOptions::schema1().describe(),
            "schema1(sequential)");
  EXPECT_EQ(translate::TranslateOptions::schema2().describe(),
            "schema2(cover=singleton)");
  EXPECT_EQ(translate::TranslateOptions::schema2_optimized().describe(),
            "schema2(cover=singleton)+opt-switches");
  auto o = translate::TranslateOptions::schema3(
      translate::CoverStrategy::kComponent);
  o.eliminate_memory = true;
  EXPECT_EQ(o.describe(), "schema3(cover=component)+mem-elim");
}

}  // namespace
}  // namespace ctdf::core
