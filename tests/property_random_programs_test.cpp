// Large-scale schema-equivalence fuzzing: random programs across every
// language feature combination, every schema configuration (including
// the --check=integrity configurations, so the whole corpus doubles as
// the checker's violation-free gauntlet). The sweep size is
// CTDF_FUZZ_SEEDS (default 40); the dedicated CI fuzz job runs ~10×.
#include <gtest/gtest.h>

#include "lang/generator.hpp"
#include "support/env.hpp"
#include "support/equivalence.hpp"

namespace ctdf::testing {
namespace {

struct Flavor {
  const char* name;
  lang::GeneratorOptions opt;
};

std::vector<Flavor> flavors() {
  std::vector<Flavor> out;
  {
    Flavor f{"structured", {}};
    out.push_back(f);
  }
  {
    Flavor f{"unstructured", {}};
    f.opt.allow_unstructured = true;
    out.push_back(f);
  }
  {
    Flavor f{"irreducible", {}};
    f.opt.allow_unstructured = true;
    f.opt.allow_irreducible = true;
    out.push_back(f);
  }
  {
    Flavor f{"aliased", {}};
    f.opt.allow_aliasing = true;
    f.opt.allow_unstructured = true;
    out.push_back(f);
  }
  {
    Flavor f{"arrays", {}};
    f.opt.num_arrays = 2;
    f.opt.allow_unstructured = true;
    out.push_back(f);
  }
  {
    Flavor f{"everything", {}};
    f.opt.allow_unstructured = true;
    f.opt.allow_irreducible = true;
    f.opt.allow_aliasing = true;
    f.opt.num_arrays = 2;
    f.opt.max_toplevel_stmts = 16;
    out.push_back(f);
  }
  return out;
}

class RandomPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPrograms, AllSchemasMatchInterpreter) {
  for (const Flavor& f : flavors()) {
    const auto prog = lang::generate_program(f.opt, GetParam());
    const std::string err = check_all_configs(prog);
    EXPECT_EQ(err, "") << "flavor=" << f.name << " seed=" << GetParam();
  }
}

std::vector<std::uint64_t> fuzz_seeds() {
  std::vector<std::uint64_t> seeds(support::fuzz_seeds_from_env(40));
  for (std::size_t i = 0; i < seeds.size(); ++i) seeds[i] = i;
  return seeds;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::ValuesIn(fuzz_seeds()));

}  // namespace
}  // namespace ctdf::testing
