// Round-trip tests for the dataflow assembly format.
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "dfg/asmfmt.hpp"
#include "lang/corpus.hpp"

namespace ctdf::dfg {
namespace {

Module module_for(const lang::Program& prog,
                  const translate::TranslateOptions& topt) {
  auto tx = core::compile(prog, topt);
  Module m;
  m.graph = std::move(tx.graph);
  m.memory_cells = tx.memory_cells;
  for (const auto& r : tx.istructures)
    m.istructures.emplace_back(r.base, r.extent);
  return m;
}

machine::RunResult run_module(const Module& m,
                              const machine::MachineOptions& opts = {}) {
  std::vector<machine::IStructureRegion> regions;
  for (const auto& [b, e] : m.istructures) regions.push_back({b, e});
  return machine::run(m.graph, m.memory_cells, opts, regions);
}

TEST(Asm, TextualRoundTripIsExact) {
  for (const auto& np : lang::corpus::all()) {
    const auto prog = lang::parse_or_throw(np.source);
    const Module m = module_for(
        prog, translate::TranslateOptions::schema2_optimized());
    const std::string text = write_asm(m);
    const Module m2 = parse_asm_or_throw(text);
    EXPECT_EQ(write_asm(m2), text) << np.name;
    EXPECT_TRUE(m2.graph.validate().empty()) << np.name;
  }
}

TEST(Asm, ParsedModuleExecutesIdentically) {
  for (const auto& np : lang::corpus::all()) {
    const auto prog = lang::parse_or_throw(np.source);
    auto topt = translate::TranslateOptions::schema2_optimized();
    topt.eliminate_memory = true;
    const Module m = module_for(prog, topt);
    const Module m2 = parse_asm_or_throw(write_asm(m));
    const auto r1 = run_module(m);
    const auto r2 = run_module(m2);
    ASSERT_TRUE(r1.stats.completed) << np.name << ": " << r1.stats.error;
    ASSERT_TRUE(r2.stats.completed) << np.name << ": " << r2.stats.error;
    EXPECT_EQ(r1.store.cells, r2.store.cells) << np.name;
    EXPECT_EQ(r1.stats.cycles, r2.stats.cycles) << np.name;
    EXPECT_EQ(r1.stats.ops_fired, r2.stats.ops_fired) << np.name;
  }
}

TEST(Asm, IStructureRegionsSurvive) {
  const auto prog = lang::corpus::array_loop(6);
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.istructure_arrays = {"x"};
  const Module m = module_for(prog, topt);
  ASSERT_EQ(m.istructures.size(), 1u);
  const Module m2 = parse_asm_or_throw(write_asm(m));
  EXPECT_EQ(m2.istructures, m.istructures);
  const auto r = run_module(m2);
  EXPECT_TRUE(r.stats.completed) << r.stats.error;
}

TEST(Asm, LabelsWithSpacesAndQuotesSurvive) {
  Graph g;
  Node s;
  s.kind = OpKind::kStart;
  s.num_outputs = 1;
  s.start_values = {7};
  s.label = "has \"quotes\" and spaces";
  const NodeId sn = g.add(std::move(s));
  g.set_start(sn);
  Node e;
  e.kind = OpKind::kEnd;
  e.num_inputs = 1;
  e.label = "the end";
  const NodeId en = g.add(std::move(e));
  g.set_end(en);
  g.connect({sn, 0}, {en, 0}, true);
  Module m;
  m.graph = std::move(g);
  m.memory_cells = 0;

  const Module m2 = parse_asm_or_throw(write_asm(m));
  EXPECT_EQ(m2.graph.node(m2.graph.start()).label,
            "has \"quotes\" and spaces");
  EXPECT_EQ(m2.graph.node(m2.graph.end()).label, "the end");
  EXPECT_EQ(write_asm(m2), write_asm(m));
}

TEST(Asm, AllOperatorKindsRoundTrip) {
  Graph g;
  Node s;
  s.kind = OpKind::kStart;
  s.num_outputs = 1;
  s.start_values = {0};
  g.set_start(g.add(std::move(s)));
  (void)g.add_binop(lang::BinOp::kGe, "cmp");
  (void)g.add_unop(lang::UnOp::kNot, "not");
  (void)g.add_load(3);
  (void)g.add_load_idx(4, 8);
  (void)g.add_store(5);
  (void)g.add_store_idx(6, 9);
  (void)g.add_switch();
  (void)g.add_merge();
  (void)g.add_synch(4);
  (void)g.add_loop_entry(cfg::LoopId{2u}, 3);
  (void)g.add_loop_exit(cfg::LoopId{2u}, 3);
  (void)g.add_istore(7, 2);
  (void)g.add_ifetch(7, 2);
  (void)g.add_gate();
  Node e;
  e.kind = OpKind::kEnd;
  e.num_inputs = 1;
  g.set_end(g.add(std::move(e)));
  Module m;
  m.graph = std::move(g);
  m.memory_cells = 16;

  const std::string text = write_asm(m);
  const Module m2 = parse_asm_or_throw(text);
  EXPECT_EQ(write_asm(m2), text);
  ASSERT_EQ(m2.graph.num_nodes(), m.graph.num_nodes());
  for (NodeId n : m.graph.all_nodes()) {
    EXPECT_EQ(m2.graph.node(n).kind, m.graph.node(n).kind);
    EXPECT_EQ(m2.graph.node(n).num_inputs, m.graph.node(n).num_inputs);
    EXPECT_EQ(m2.graph.node(n).num_outputs, m.graph.node(n).num_outputs);
    EXPECT_EQ(m2.graph.node(n).mem_base, m.graph.node(n).mem_base);
    EXPECT_EQ(m2.graph.node(n).mem_extent, m.graph.node(n).mem_extent);
  }
}

TEST(Asm, ParserReportsErrors) {
  for (const char* bad :
       {"node n0 bogus-kind", "arc n0.0 -> n1.0", "memory lots",
        "frobnicate 7", "node x0 start outs=1 values=[0]"}) {
    support::DiagnosticEngine d;
    (void)parse_asm(bad, d);
    EXPECT_TRUE(d.has_errors()) << bad;
  }
}

TEST(Asm, CommentsAndBlankLinesIgnored)
{
  const Module m = parse_asm_or_throw(R"(; a comment
memory 1

node n0 start outs=1 values=[0] ; trailing comment
node n1 end ins=1
arc n0.0 -> n1.0 dummy
start n0
end n1
)");
  EXPECT_TRUE(m.graph.validate().empty());
  EXPECT_EQ(m.memory_cells, 1u);
}

}  // namespace
}  // namespace ctdf::dfg
