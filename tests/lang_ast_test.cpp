// Direct unit tests of the AST layer: total arithmetic semantics
// (shared bit-for-bit by interpreter, constant folder, and machine
// ALU), expression cloning, and variable collection.
#include <gtest/gtest.h>

#include "lang/ast.hpp"
#include "lang/parser.hpp"

namespace ctdf::lang {
namespace {

TEST(EvalBinop, WrappingArithmetic) {
  EXPECT_EQ(eval_binop(BinOp::kAdd, INT64_MAX, 1), INT64_MIN);
  EXPECT_EQ(eval_binop(BinOp::kSub, INT64_MIN, 1), INT64_MAX);
  EXPECT_EQ(eval_binop(BinOp::kMul, INT64_MIN, -1), INT64_MIN);  // wraps
  EXPECT_EQ(eval_binop(BinOp::kAdd, -3, 5), 2);
}

TEST(EvalBinop, TotalDivision) {
  EXPECT_EQ(eval_binop(BinOp::kDiv, 7, 2), 3);
  EXPECT_EQ(eval_binop(BinOp::kDiv, -7, 2), -3);
  EXPECT_EQ(eval_binop(BinOp::kDiv, 5, 0), 0);
  EXPECT_EQ(eval_binop(BinOp::kMod, 5, 0), 0);
  EXPECT_EQ(eval_binop(BinOp::kDiv, INT64_MIN, -1), INT64_MIN);
  EXPECT_EQ(eval_binop(BinOp::kMod, INT64_MIN, -1), 0);
  EXPECT_EQ(eval_binop(BinOp::kMod, -7, 3), -1);  // C-style remainder
}

TEST(EvalBinop, ComparisonsAndLogic) {
  EXPECT_EQ(eval_binop(BinOp::kLt, -1, 0), 1);
  EXPECT_EQ(eval_binop(BinOp::kGe, 3, 3), 1);
  EXPECT_EQ(eval_binop(BinOp::kNe, 2, 2), 0);
  EXPECT_EQ(eval_binop(BinOp::kAnd, 5, -2), 1);  // any non-zero is true
  EXPECT_EQ(eval_binop(BinOp::kAnd, 5, 0), 0);
  EXPECT_EQ(eval_binop(BinOp::kOr, 0, 0), 0);
  EXPECT_EQ(eval_binop(BinOp::kOr, 0, 9), 1);
}

TEST(EvalUnop, NegAndNot) {
  EXPECT_EQ(eval_unop(UnOp::kNeg, 5), -5);
  EXPECT_EQ(eval_unop(UnOp::kNeg, INT64_MIN), INT64_MIN);  // wraps
  EXPECT_EQ(eval_unop(UnOp::kNot, 0), 1);
  EXPECT_EQ(eval_unop(UnOp::kNot, -7), 0);
}

TEST(Expr, CloneIsDeep) {
  const Program p = parse_or_throw("var x; array a[4]; x := a[x + 1] * 2;");
  const Expr& original = *p.body.front()->expr;
  const ExprPtr copy = original.clone();
  EXPECT_EQ(copy->to_string(p.symbols), original.to_string(p.symbols));
  // Mutating the copy must not affect the original. Root is the `*`;
  // lhs is the array ref, whose index (stored in lhs) is `x + 1`.
  copy->lhs->lhs->rhs->value = 99;  // the literal 1 inside a[x + 1]
  EXPECT_NE(copy->to_string(p.symbols), original.to_string(p.symbols));
}

TEST(Expr, CollectVarsDeduplicatesAndFindsIndexVars) {
  const Program p =
      parse_or_throw("var x, y; array a[4]; x := x + a[y] + x * y;");
  std::vector<VarId> vars;
  p.body.front()->expr->collect_vars(vars);
  EXPECT_EQ(vars.size(), 3u);  // x, a, y — each once
}

TEST(Expr, ToStringParenthesizesStructure) {
  const Program p = parse_or_throw("var x; x := (x + 1) * 2;");
  EXPECT_EQ(p.body.front()->expr->to_string(p.symbols), "((x + 1) * 2)");
}

TEST(LValue, CloneAndPrint) {
  const Program p = parse_or_throw("var i; array a[4]; a[i + 1] := 0;");
  const LValue& lv = p.body.front()->lhs;
  EXPECT_TRUE(lv.is_array_elem());
  const LValue copy = lv.clone();
  EXPECT_EQ(copy.to_string(p.symbols), "a[(i + 1)]");
}

TEST(Stmt, FactoriesProduceExpectedKinds) {
  EXPECT_EQ(Stmt::skip()->kind, Stmt::Kind::kSkip);
  EXPECT_EQ(Stmt::goto_stmt("l")->kind, Stmt::Kind::kGoto);
  auto cg = Stmt::cond_goto(Expr::constant(1), "a", "b");
  EXPECT_EQ(cg->kind, Stmt::Kind::kCondGoto);
  EXPECT_EQ(cg->target_true, "a");
  EXPECT_EQ(cg->target_false, "b");
}

}  // namespace
}  // namespace ctdf::lang
