#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "lang/builder.hpp"
#include "lang/interp.hpp"
#include "lang/parser.hpp"

namespace ctdf::lang {
namespace {

TEST(Builder, StraightLineProgram) {
  ProgramBuilder b;
  const VarId x = b.scalar("x");
  const VarId y = b.scalar("y");
  b.assign(x, b.lit(3));
  b.assign(y, b.mul(b.var(x), b.lit(7)));
  const Program p = std::move(b).finish();
  const auto r = interpret(p);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(load_var(p, r.store, y), 21);
}

TEST(Builder, StructuredControlFlow) {
  ProgramBuilder b;
  const VarId i = b.scalar("i");
  const VarId s = b.scalar("s");
  b.while_loop(b.lt(b.var(i), b.lit(5)), [&](ProgramBuilder& body) {
    body.if_then_else(
        body.eq(body.bin(BinOp::kMod, body.var(i), body.lit(2)),
                body.lit(0)),
        [&](ProgramBuilder& t) { t.assign(s, t.add(t.var(s), t.var(i))); },
        [&](ProgramBuilder& e) { e.skip(); });
    body.assign(i, body.add(body.var(i), body.lit(1)));
  });
  const Program p = std::move(b).finish();
  const auto r = interpret(p);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(load_var(p, r.store, s), 0 + 2 + 4);
}

TEST(Builder, ArraysAndAliasing) {
  ProgramBuilder b;
  const VarId i = b.scalar("i");
  const VarId a = b.array("a", 8);
  const VarId p1 = b.scalar("p");
  const VarId q = b.scalar("q");
  b.alias(p1, q);
  b.bind(p1, q);
  b.assign(p1, b.lit(4));
  b.assign(q, b.add(b.var(q), b.lit(1)));  // same storage: 5
  b.while_loop(b.lt(b.var(i), b.lit(8)), [&](ProgramBuilder& body) {
    body.assign_elem(a, body.var(i), body.mul(body.var(i), body.var(p1)));
    body.assign(i, body.add(body.var(i), body.lit(1)));
  });
  const Program p = std::move(b).finish();
  const auto r = interpret(p);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(load_var(p, r.store, q), 5);
  EXPECT_EQ(load_var(p, r.store, a, 3), 15);
}

TEST(Builder, BuiltProgramsCompileAndRunOnTheMachine) {
  ProgramBuilder b;
  const VarId x = b.scalar("x");
  const VarId y = b.scalar("y");
  b.while_loop(b.lt(b.var(x), b.lit(5)), [&](ProgramBuilder& body) {
    body.assign(y, body.add(body.var(x), body.lit(1)));
    body.assign(x, body.add(body.var(x), body.lit(1)));
  });
  const Program p = std::move(b).finish();
  const auto ref = interpret(p);
  const auto tx =
      core::compile(p, translate::TranslateOptions::schema2_optimized());
  const auto res = core::execute(tx, {});
  ASSERT_TRUE(res.stats.completed) << res.stats.error;
  EXPECT_EQ(res.store.cells, ref.store.cells);
  EXPECT_EQ(core::read_scalar(p, res.store, "x"), 5);
}

TEST(Builder, PrintedFormReparses) {
  ProgramBuilder b;
  const VarId x = b.scalar("x");
  b.if_then(b.logical_not(b.var(x)),
            [&](ProgramBuilder& t) { t.assign(x, t.neg(t.lit(9))); });
  const Program p = std::move(b).finish();
  const Program p2 = parse_or_throw(p.to_string());
  EXPECT_EQ(p.to_string(), p2.to_string());
}

TEST(Builder, ErrorsAreReported) {
  ProgramBuilder b;
  const VarId x = b.scalar("x");
  EXPECT_THROW((void)b.scalar("x"), support::CompileError);
  EXPECT_THROW((void)b.array("bad", 0), support::CompileError);
  const VarId a = b.array("a", 4);
  EXPECT_THROW(b.assign(a, b.lit(1)), support::CompileError);
  EXPECT_THROW(b.assign_elem(x, b.lit(0), b.lit(1)),
               support::CompileError);
  EXPECT_THROW(b.bind(x, a), support::CompileError);
}

}  // namespace
}  // namespace ctdf::lang
