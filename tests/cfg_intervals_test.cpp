#include <gtest/gtest.h>

#include <algorithm>

#include "cfg/build.hpp"
#include "cfg/dominance.hpp"
#include "cfg/intervals.hpp"
#include "lang/corpus.hpp"
#include "lang/generator.hpp"
#include "lang/parser.hpp"

namespace ctdf::cfg {
namespace {

struct Transformed {
  Graph g;
  LoopInfo info;

  explicit Transformed(const lang::Program& p) : g(build_cfg_or_throw(p)) {
    support::DiagnosticEngine d;
    info = transform_loops(g, d);
    EXPECT_FALSE(d.has_errors()) << d.to_string();
  }
};

TEST(LoopTransform, AcyclicProgramHasNoLoops) {
  Transformed t(lang::corpus::fig9());
  EXPECT_TRUE(t.info.loops().empty());
  EXPECT_EQ(t.info.nodes_split(), 0);
}

TEST(LoopTransform, RunningExampleHasOneLoop) {
  Transformed t(lang::corpus::running_example());
  ASSERT_EQ(t.info.loops().size(), 1u);
  const Loop& l = t.info.loops().front();
  EXPECT_TRUE(l.entry.valid());
  EXPECT_EQ(l.exits.size(), 1u);
  EXPECT_EQ(t.g.kind(l.entry), NodeKind::kLoopEntry);
  EXPECT_EQ(t.g.kind(l.exits.front()), NodeKind::kLoopExit);
  EXPECT_TRUE(t.g.validate().empty());
}

TEST(LoopTransform, EveryHeaderEdgeGoesThroughEntry) {
  Transformed t(lang::corpus::running_example());
  const Loop& l = t.info.loops().front();
  // The header's only predecessor is the loop-entry node.
  ASSERT_EQ(t.g.preds(l.header).size(), 1u);
  EXPECT_EQ(t.g.preds(l.header).front(), l.entry);
  // The entry has an external pred and a back-edge pred.
  EXPECT_GE(t.g.preds(l.entry).size(), 2u);
  bool has_back = false, has_external = false;
  for (NodeId p : t.g.preds(l.entry)) {
    if (t.info.is_back_edge(p, l.entry))
      has_back = true;
    else
      has_external = true;
  }
  EXPECT_TRUE(has_back);
  EXPECT_TRUE(has_external);
}

TEST(LoopTransform, ExitEdgesLeaveTheLoop) {
  Transformed t(lang::corpus::running_example());
  const Loop& l = t.info.loops().front();
  for (NodeId x : l.exits) {
    // Exit node's pred is in the loop, its successor is not.
    for (NodeId p : t.g.preds(x)) EXPECT_TRUE(t.info.in_loop(p, l.id));
    EXPECT_FALSE(t.info.in_loop(t.g.node(x).succ_true, l.id));
  }
}

TEST(LoopTransform, NestedLoopsNestProperly) {
  Transformed t(lang::parse_or_throw(lang::corpus::nested_loops_source(3, 4)));
  ASSERT_EQ(t.info.loops().size(), 2u);
  const Loop* inner = nullptr;
  const Loop* outer = nullptr;
  for (const Loop& l : t.info.loops())
    (l.depth == 1 ? inner : outer) = &l;
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_FALSE(outer->parent.valid());
  // Inner loop nodes are members of the outer loop too.
  EXPECT_TRUE(t.info.in_loop(inner->entry, outer->id));
  for (NodeId x : inner->exits) EXPECT_TRUE(t.info.in_loop(x, outer->id));
  // Inner membership is a subset of outer membership.
  for (NodeId m : inner->members) EXPECT_TRUE(t.info.in_loop(m, outer->id));
}

TEST(LoopTransform, InnerBackEdgeToOuterHeaderChainsExits) {
  // while (i<2) { while (j<2) { j:=j+1; } i:=i+1; } — inner exit feeds
  // the outer body.
  Transformed t(lang::parse_or_throw(lang::corpus::nested_loops_source(2, 2)));
  EXPECT_TRUE(t.g.validate().empty());
}

TEST(LoopTransform, IrreducibleGraphIsSplit) {
  Transformed t(lang::parse_or_throw(lang::corpus::irreducible_source()));
  EXPECT_GT(t.info.nodes_split(), 0);
  EXPECT_FALSE(t.info.loops().empty());
  EXPECT_TRUE(t.g.validate().empty());
  // After splitting, every loop has a unique header entered only via
  // its loop-entry node.
  for (const Loop& l : t.info.loops()) {
    ASSERT_EQ(t.g.preds(l.header).size(), 1u);
    EXPECT_EQ(t.g.preds(l.header).front(), l.entry);
  }
}

TEST(LoopTransform, SelfLoop) {
  Transformed t(lang::parse_or_throw(
      "var x; l: x := x + 1; if x >= 3 then goto end else goto l;"));
  // The cycle may include the join/fork nodes; there must be exactly
  // one loop and the graph must stay valid.
  EXPECT_EQ(t.info.loops().size(), 1u);
  EXPECT_TRUE(t.g.validate().empty());
}

TEST(LoopTransform, UsedVarsOfLoop) {
  Transformed t(lang::corpus::running_example());
  const Loop& l = t.info.loops().front();
  const auto used = t.info.used_vars(t.g, l.id);
  EXPECT_EQ(used.size(), 2u);  // x and y
}

TEST(LoopTransform, MembershipAfterTransformIsCyclic) {
  // Every loop member can reach the loop entry within the loop (via the
  // back edge) — spot check: entry reaches header.
  Transformed t(lang::corpus::running_example());
  const Loop& l = t.info.loops().front();
  EXPECT_EQ(t.g.node(l.entry).succ_true, l.header);
}

class LoopTransformProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(LoopTransformProperty, TransformedGraphsValidate) {
  lang::GeneratorOptions opt;
  opt.allow_unstructured = true;
  opt.allow_irreducible = true;
  opt.num_arrays = 1;
  const auto prog = lang::generate_program(opt, GetParam());
  Transformed t(prog);
  EXPECT_TRUE(t.g.validate().empty());

  // All cycles pass through a loop-entry node: removing every loop
  // entry must make the graph acyclic (checked via RPO property: every
  // remaining edge goes forward).
  std::vector<bool> removed(t.g.size(), false);
  for (const Loop& l : t.info.loops()) removed[l.entry.index()] = true;
  // Kahn-style: repeatedly strip nodes with no unremoved preds.
  std::vector<int> indeg(t.g.size(), 0);
  for (NodeId n : t.g.all_nodes()) {
    if (removed[n.index()]) continue;
    for (NodeId s : t.g.succs(n))
      if (!removed[s.index()]) ++indeg[s.index()];
  }
  std::vector<NodeId> q;
  std::size_t alive = 0;
  for (NodeId n : t.g.all_nodes()) {
    if (removed[n.index()]) continue;
    ++alive;
    if (indeg[n.index()] == 0) q.push_back(n);
  }
  std::size_t stripped = 0;
  while (!q.empty()) {
    const NodeId n = q.back();
    q.pop_back();
    ++stripped;
    for (NodeId s : t.g.succs(n)) {
      if (removed[s.index()]) continue;
      if (--indeg[s.index()] == 0) q.push_back(s);
    }
  }
  EXPECT_EQ(stripped, alive)
      << "cycle not broken by loop entries, seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoopTransformProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace ctdf::cfg
