// The central soundness suite: every schema, executed on the simulated
// dataflow machine, must produce exactly the reference interpreter's
// final store — for the paper's example programs and for targeted
// feature programs.
#include <gtest/gtest.h>

#include "lang/corpus.hpp"
#include "lang/parser.hpp"
#include "support/equivalence.hpp"

namespace ctdf::testing {
namespace {

struct Case {
  std::string program_name;
  std::string source;
  SchemaConfig config;
};

std::vector<Case> all_cases() {
  std::vector<Case> out;
  for (const auto& np : lang::corpus::all())
    for (const auto& cfg : standard_configs())
      out.push_back({np.name, np.source, cfg});
  return out;
}

class SchemaEquivalence : public ::testing::TestWithParam<Case> {};

TEST_P(SchemaEquivalence, FinalStoreMatchesInterpreter) {
  const Case& c = GetParam();
  const auto prog = lang::parse_or_throw(c.source);
  EXPECT_EQ(check_equivalence(prog, c.config), "");
}

INSTANTIATE_TEST_SUITE_P(
    CorpusTimesConfigs, SchemaEquivalence, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name =
          info.param.program_name + "_" + info.param.config.name;
      for (char& ch : name)
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      return name;
    });

TEST(SchemaEquivalenceExtra, WhileLoopWithDataDependentExit) {
  const auto prog = lang::parse_or_throw(R"(
var x, n;
n := 20;
while x * x < n { x := x + 1; }
)");
  EXPECT_EQ(check_all_configs(prog), "");
}

TEST(SchemaEquivalenceExtra, MultiExitLoop) {
  const auto prog = lang::parse_or_throw(R"(
var i, s;
l: i := i + 1;
s := s + i;
if s > 12 then goto out else goto next;
next:
if i < 10 then goto l else goto out;
out: s := s * 2;
)");
  EXPECT_EQ(check_all_configs(prog), "");
}

TEST(SchemaEquivalenceExtra, LoopInvariantVariableBypassesLoop) {
  const auto prog = lang::parse_or_throw(R"(
var a, i, s;
a := 7;
l: i := i + 1; s := s + i;
if i < 5 then goto l else goto done;
done: a := a + s;
)");
  EXPECT_EQ(check_all_configs(prog), "");
}

TEST(SchemaEquivalenceExtra, ConditionalInsideLoop) {
  const auto prog = lang::parse_or_throw(R"(
var i, odd, even;
while i < 9 {
  if i % 2 { odd := odd + i; } else { even := even + i; }
  i := i + 1;
}
)");
  EXPECT_EQ(check_all_configs(prog), "");
}

TEST(SchemaEquivalenceExtra, BranchIntoSharedTail) {
  const auto prog = lang::parse_or_throw(R"(
var x, y, w;
w := 3;
if w < 2 then goto a else goto b;
a: x := 1; goto tail;
b: x := 2; goto tail;
tail: y := x * 10;
)");
  EXPECT_EQ(check_all_configs(prog), "");
}

TEST(SchemaEquivalenceExtra, AliasedScalarsThroughBind) {
  const auto prog = lang::parse_or_throw(R"(
var x, y, z;
alias x z; alias y z; bind y z;
x := 3;
z := x + 4;
y := y + z;
x := y - 1;
)");
  EXPECT_EQ(check_all_configs(prog), "");
}

TEST(SchemaEquivalenceExtra, ArraysWithComputedIndices) {
  const auto prog = lang::parse_or_throw(R"(
var i; array a[8], b[8];
while i < 8 { a[i] := i * i; i := i + 1; }
i := 0;
while i < 8 { b[7 - i] := a[i] + 1; i := i + 1; }
)");
  EXPECT_EQ(check_all_configs(prog), "");
}

TEST(SchemaEquivalenceExtra, AliasedArrays) {
  const auto prog = lang::parse_or_throw(R"(
var i; array a[6], b[6];
alias a b; bind a b;
a[2] := 5;
i := b[2] + 1;
b[3] := i;
i := a[3] * 2;
)");
  EXPECT_EQ(check_all_configs(prog), "");
}

TEST(SchemaEquivalenceExtra, EmptyProgram) {
  const auto prog = lang::parse_or_throw("var x, y;");
  EXPECT_EQ(check_all_configs(prog), "");
}

TEST(SchemaEquivalenceExtra, LoopNeverExecuted) {
  const auto prog = lang::parse_or_throw(R"(
var i, s;
i := 10;
while i < 5 { s := s + 1; i := i + 1; }
s := s + 100;
)");
  EXPECT_EQ(check_all_configs(prog), "");
}

TEST(SchemaEquivalenceExtra, DeepNesting) {
  const auto prog = lang::parse_or_throw(R"(
var i, j, k, s;
while i < 3 {
  j := 0;
  while j < 3 {
    k := 0;
    while k < 3 {
      if (i + j + k) % 2 { s := s + 1; }
      k := k + 1;
    }
    j := j + 1;
  }
  i := i + 1;
}
)");
  EXPECT_EQ(check_all_configs(prog), "");
}

TEST(SchemaEquivalenceExtra, SelfLoopSingleNode) {
  const auto prog = lang::parse_or_throw(R"(
var x;
l: x := x + 1; if x >= 4 then goto end else goto l;
)");
  EXPECT_EQ(check_all_configs(prog), "");
}

TEST(SchemaEquivalenceExtra, ConstantPredicates) {
  const auto prog = lang::parse_or_throw(R"(
var x, y;
if 1 { x := 5; } else { x := 6; }
if 0 { y := 7; } else { y := 8; }
)");
  EXPECT_EQ(check_all_configs(prog), "");
}

TEST(SchemaEquivalenceExtra, DivisionByZeroTotalSemantics) {
  const auto prog = lang::parse_or_throw(R"(
var x, y, z;
x := 5 / z;
y := 5 % z;
z := x + y;
)");
  EXPECT_EQ(check_all_configs(prog), "");
}

}  // namespace
}  // namespace ctdf::testing
