// The mutation gauntlet behind --check=integrity: each test seeds one
// translator defect into a lowered program (machine/mutate.hpp) and
// asserts a checked run fails with the matching typed error code, on
// every engine. This is the proof the checker is not vacuous — the
// unmutated programs run checked and violation-free in the same file,
// so each mutation is exactly one invariant away from a clean
// certificate.
#include <gtest/gtest.h>

#include <string>

#include "core/compiler.hpp"
#include "machine/exec.hpp"
#include "machine/machine.hpp"
#include "machine/mutate.hpp"

namespace ctdf::machine {
namespace {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;

/// The one simulator configuration axis the checker must be blind to.
struct EngineVariant {
  const char* name;
  EngineKind engine;
  unsigned host_threads;
  unsigned processors;
};

constexpr EngineVariant kEngines[] = {
    {"scan", EngineKind::kScan, 0, 0},
    {"event", EngineKind::kEvent, 0, 0},
    {"parallel", EngineKind::kScan, 3, 2},
};

MachineOptions checked_options(const EngineVariant& v) {
  MachineOptions o;
  o.check = CheckMode::kIntegrity;
  o.engine = v.engine;
  o.host_threads = v.host_threads;
  o.processors = v.processors;
  return o;
}

/// A loop whose mem-elim translation exercises every generic mutation
/// site: gates (the constant assignments), a two-token-input binop
/// (x + i), and multi-arc fan-outs.
const char* kLoopSource = R"(var i, x;
  x := 0;
  i := 0;
loop:
  x := x + i;
  i := i + 1;
  if i < 4 then goto loop else goto done;
done:
  x := 7;
)";

struct Compiled {
  ExecProgram exec;
  std::size_t cells = 0;
};

Compiled compile_loop() {
  translate::TranslateOptions topt =
      translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  const translate::Translation tx = core::compile(kLoopSource, topt);
  return {lower(tx.graph), tx.memory_cells};
}

/// Applies `m` to a fresh lowering of the loop program and runs it
/// checked under every engine, asserting the expected failure code
/// (and, engine-blindness, that all engines agree).
void expect_mutation_caught(Mutation m, ErrorCode expected) {
  Compiled c = compile_loop();
  ASSERT_TRUE(apply_mutation(c.exec, m)) << to_string(m) << ": no site";
  for (const EngineVariant& v : kEngines) {
    const RunResult r = run(c.exec, c.cells, checked_options(v), {});
    EXPECT_FALSE(r.stats.completed) << v.name << ": " << to_string(m);
    EXPECT_EQ(r.stats.error_detail.code, expected)
        << v.name << ": " << to_string(m) << " reported ["
        << code_slug(r.stats.error_detail.code) << "] " << r.stats.error;
  }
}

TEST(IntegrityMutation, UnmutatedLoopRunsViolationFree) {
  const Compiled c = compile_loop();
  std::uint64_t checks = 0;
  for (const EngineVariant& v : kEngines) {
    const RunResult r = run(c.exec, c.cells, checked_options(v), {});
    ASSERT_TRUE(r.stats.completed) << v.name << ": " << r.stats.error;
    EXPECT_GT(r.stats.integrity_checks, 0u) << v.name;
    // The certificate is engine-independent: every engine performs the
    // same checks because they share the firing core.
    if (checks == 0)
      checks = r.stats.integrity_checks;
    else
      EXPECT_EQ(r.stats.integrity_checks, checks) << v.name;
  }
}

TEST(IntegrityMutation, DuplicatedFanoutArcIsDoubleWrite) {
  expect_mutation_caught(Mutation::kDupFanoutArc,
                         ErrorCode::kIntegrityDoubleWrite);
}

TEST(IntegrityMutation, MiswiredFanoutPortIsDoubleWrite) {
  expect_mutation_caught(Mutation::kMiswireFanoutPort,
                         ErrorCode::kIntegrityDoubleWrite);
}

TEST(IntegrityMutation, DroppedGateArcIsDeadlock) {
  expect_mutation_caught(Mutation::kDropGateArc, ErrorCode::kDeadlock);
}

TEST(IntegrityMutation, UndercountedArityIsReadEmpty) {
  expect_mutation_caught(Mutation::kUndercountArity,
                         ErrorCode::kIntegrityReadEmpty);
}

TEST(IntegrityMutation, DoubleWriteDiagnosisNamesTheSlot) {
  Compiled c = compile_loop();
  ASSERT_TRUE(apply_mutation(c.exec, Mutation::kDupFanoutArc));
  MachineOptions o = checked_options(kEngines[0]);
  const RunResult r = run(c.exec, c.cells, o, {});
  ASSERT_FALSE(r.stats.completed);
  EXPECT_NE(r.stats.error.find("double write to matching slot"),
            std::string::npos)
      << r.stats.error;
  EXPECT_NE(r.stats.error_detail.diagnosis.find("single-assignment"),
            std::string::npos)
      << r.stats.error_detail.diagnosis;
  // Checking off, the same defect is still caught, but only as the
  // generic matching-slot collision: the tag check runs first and
  // upgrades the report to the integrity taxonomy.
  o.check = CheckMode::kOff;
  const RunResult off = run(c.exec, c.cells, o, {});
  ASSERT_FALSE(off.stats.completed);
  EXPECT_EQ(off.stats.error_detail.code, ErrorCode::kSlotCollision)
      << off.stats.error;
}

// ---------------------------------------------------------------------
// Hand-built graphs for the memory-discipline mutations: the defects
// need a specific store/synch/load shape the translator (correctly)
// never emits.

NodeId add_start(Graph& g, std::vector<std::int64_t> values) {
  Node s;
  s.kind = OpKind::kStart;
  s.num_outputs = static_cast<std::uint16_t>(values.size());
  s.start_values = std::move(values);
  const NodeId n = g.add(std::move(s));
  g.set_start(n);
  return n;
}

NodeId add_end(Graph& g, std::uint16_t inputs) {
  Node e;
  e.kind = OpKind::kEnd;
  e.num_inputs = inputs;
  const NodeId n = g.add(std::move(e));
  g.set_end(n);
  return n;
}

/// store(cell0) → ack → synch → load(cell0) → store(cell1): the synch
/// is the ordering edge that keeps the read a full memory round trip
/// behind the write.
Graph synch_ordered_graph() {
  Graph g;
  const NodeId s = add_start(g, {1});

  const NodeId st0 = g.add_store(0, "write");
  g.bind_literal({st0, 0}, 5);
  g.connect({s, 0}, {st0, 1}, true);

  const NodeId sy = g.add_synch(2, "order");
  g.connect({s, 0}, {sy, 0}, true);
  g.connect({st0, 0}, {sy, 1}, true);  // the ack edge skip-synch removes

  const NodeId ld = g.add_load(0, "read");
  g.connect({sy, 0}, {ld, 0}, true);

  const NodeId st1 = g.add_store(1, "out");
  g.connect({ld, 0}, {st1, 0}, false);
  g.connect({ld, 0}, {st1, 1}, false);

  const NodeId e = add_end(g, 1);
  g.connect({st1, 0}, {e, 0}, true);
  return g;
}

TEST(IntegrityMutation, SkippedSynchIsMemRace) {
  const Graph g = synch_ordered_graph();
  for (const EngineVariant& v : kEngines) {
    MachineOptions o = checked_options(v);
    o.mem_latency = 8;

    const RunResult clean = run(g, 2, o, {});
    ASSERT_TRUE(clean.stats.completed) << v.name << ": " << clean.stats.error;
    EXPECT_EQ(clean.store.cells[1], 5) << v.name;

    ExecProgram ep = lower(g);
    ASSERT_TRUE(apply_mutation(ep, Mutation::kSkipSynch)) << v.name;
    const RunResult r = run(ep, 2, o, {});
    EXPECT_FALSE(r.stats.completed) << v.name;
    EXPECT_EQ(r.stats.error_detail.code, ErrorCode::kIntegrityMemRace)
        << v.name << ": [" << code_slug(r.stats.error_detail.code) << "] "
        << r.stats.error;
  }
}

/// Two independent I-structure writes to distinct cells of one
/// write-once region.
Graph two_istore_graph() {
  Graph g;
  const NodeId s = add_start(g, {1, 1});
  const NodeId e = add_end(g, 2);
  for (std::uint16_t i = 0; i < 2; ++i) {
    const NodeId st = g.add_istore(i, 1, i == 0 ? "first" : "second");
    g.bind_literal({st, 0}, 40 + i);  // value
    g.bind_literal({st, 1}, 0);       // index
    g.connect({s, i}, {st, 2}, true);
    g.connect({st, 0}, {e, i}, true);
  }
  return g;
}

TEST(IntegrityMutation, AliasedIStoreBaseIsDoubleWrite) {
  const Graph g = two_istore_graph();
  for (const EngineVariant& v : kEngines) {
    const MachineOptions o = checked_options(v);

    const RunResult clean = run(g, 2, o, {{0, 2}});
    ASSERT_TRUE(clean.stats.completed) << v.name << ": " << clean.stats.error;
    EXPECT_EQ(clean.store.cells[0], 40) << v.name;
    EXPECT_EQ(clean.store.cells[1], 41) << v.name;

    ExecProgram ep = lower(g);
    ASSERT_TRUE(apply_mutation(ep, Mutation::kAliasIStoreBase)) << v.name;
    const RunResult r = run(ep, 2, o, {{0, 2}});
    EXPECT_FALSE(r.stats.completed) << v.name;
    EXPECT_EQ(r.stats.error_detail.code, ErrorCode::kIStoreDoubleWrite)
        << v.name << ": [" << code_slug(r.stats.error_detail.code) << "] "
        << r.stats.error;
  }
}

/// A deferred I-structure read resolved by a delayed write (the shape
/// of machine_istructure_test.cpp's final-drain case).
Graph deferred_read_graph() {
  Graph g;
  const NodeId s = add_start(g, {0, 1});

  const NodeId fetch = g.add_ifetch(0, 1, "early-read");
  g.bind_literal({fetch, 0}, 0);
  g.connect({s, 0}, {fetch, 1}, true);
  const NodeId st = g.add_store(1, "result");
  g.connect({fetch, 0}, {st, 0}, false);
  g.connect({fetch, 0}, {st, 1}, false);

  const NodeId gate = g.add_gate("delay");
  g.bind_literal({gate, 0}, 1);
  g.connect({s, 1}, {gate, 1}, true);
  const NodeId istore = g.add_istore(0, 1, "late-write");
  g.bind_literal({istore, 0}, 42);
  g.bind_literal({istore, 1}, 0);
  g.connect({gate, 0}, {istore, 2}, true);

  const NodeId e = add_end(g, 2);
  g.connect({st, 0}, {e, 0}, true);
  g.connect({istore, 0}, {e, 1}, true);
  return g;
}

TEST(IntegrityMutation, DuplicatedMemResponseIsOrphan) {
  const Graph g = deferred_read_graph();
  // This mutation is an options hook (the defect lives in the memory
  // subsystem, not the program), so apply_mutation declines it.
  ExecProgram ep = lower(g);
  EXPECT_FALSE(apply_mutation(ep, Mutation::kDupMemResponse));

  for (const EngineVariant& v : kEngines) {
    MachineOptions o = checked_options(v);

    const RunResult clean = run(g, 2, o, {{0, 1}});
    ASSERT_TRUE(clean.stats.completed) << v.name << ": " << clean.stats.error;
    EXPECT_EQ(clean.stats.deferred_reads, 1u) << v.name;

    o.test_dup_response = true;
    const RunResult r = run(g, 2, o, {{0, 1}});
    EXPECT_FALSE(r.stats.completed) << v.name;
    EXPECT_EQ(r.stats.error_detail.code, ErrorCode::kIntegrityOrphanResponse)
        << v.name << ": [" << code_slug(r.stats.error_detail.code) << "] "
        << r.stats.error;
  }
}

TEST(IntegrityMutation, MutationsDeclineWhenNoSiteExists) {
  // The loop program has no I-structure stores and no synchs; the
  // two-istore graph has no gates.
  Compiled c = compile_loop();
  EXPECT_FALSE(apply_mutation(c.exec, Mutation::kAliasIStoreBase));
  EXPECT_FALSE(apply_mutation(c.exec, Mutation::kSkipSynch));
  ExecProgram is = lower(two_istore_graph());
  EXPECT_FALSE(apply_mutation(is, Mutation::kDropGateArc));
}

TEST(IntegrityMutation, MutationNames) {
  EXPECT_STREQ(to_string(Mutation::kDupFanoutArc), "dup-fanout-arc");
  EXPECT_STREQ(to_string(Mutation::kMiswireFanoutPort),
               "miswire-fanout-port");
  EXPECT_STREQ(to_string(Mutation::kDropGateArc), "drop-gate-arc");
  EXPECT_STREQ(to_string(Mutation::kUndercountArity), "undercount-arity");
  EXPECT_STREQ(to_string(Mutation::kSkipSynch), "skip-synch");
  EXPECT_STREQ(to_string(Mutation::kAliasIStoreBase), "alias-istore-base");
  EXPECT_STREQ(to_string(Mutation::kDupMemResponse), "dup-mem-response");
}

}  // namespace
}  // namespace ctdf::machine
