#include <gtest/gtest.h>

#include "lang/symbols.hpp"

namespace ctdf::lang {
namespace {

TEST(Symbols, DeclareAndLookup) {
  SymbolTable t;
  const auto x = t.declare_scalar("x");
  ASSERT_TRUE(x.has_value());
  const auto a = t.declare_array("a", 5);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(t.lookup("x"), x);
  EXPECT_EQ(t.lookup("a"), a);
  EXPECT_FALSE(t.lookup("nope").has_value());
  EXPECT_FALSE(t.declare_scalar("x").has_value());  // duplicate
  EXPECT_FALSE(t.declare_array("a", 3).has_value());
  EXPECT_TRUE(t.is_array(*a));
  EXPECT_FALSE(t.is_array(*x));
  EXPECT_EQ(t.info(*a).array_size, 5);
}

TEST(Symbols, AliasIsReflexiveSymmetricNotTransitive) {
  SymbolTable t;
  const auto x = *t.declare_scalar("x");
  const auto y = *t.declare_scalar("y");
  const auto z = *t.declare_scalar("z");
  t.add_alias(x, z);
  t.add_alias(z, y);  // declared in the other order
  EXPECT_TRUE(t.may_alias(x, x));  // reflexive
  EXPECT_TRUE(t.may_alias(x, z));
  EXPECT_TRUE(t.may_alias(z, x));  // symmetric
  EXPECT_TRUE(t.may_alias(y, z));
  EXPECT_FALSE(t.may_alias(x, y));  // NOT transitive (paper Def. 6)
  EXPECT_TRUE(t.has_aliasing());
}

TEST(Symbols, AliasClassesMatchPaperExample) {
  SymbolTable t;
  const auto x = *t.declare_scalar("x");
  const auto y = *t.declare_scalar("y");
  const auto z = *t.declare_scalar("z");
  t.add_alias(x, z);
  t.add_alias(y, z);
  EXPECT_EQ(t.alias_class(x), (std::vector<VarId>{x, z}));
  EXPECT_EQ(t.alias_class(y), (std::vector<VarId>{y, z}));
  EXPECT_EQ(t.alias_class(z), (std::vector<VarId>{x, y, z}));
}

TEST(Symbols, BindIsEquivalenceAndImpliesAlias) {
  SymbolTable t;
  const auto a = *t.declare_scalar("a");
  const auto b = *t.declare_scalar("b");
  const auto c = *t.declare_scalar("c");
  EXPECT_TRUE(t.bind(a, b));
  EXPECT_TRUE(t.bind(b, c));
  EXPECT_TRUE(t.same_storage(a, c));  // transitive
  EXPECT_TRUE(t.may_alias(a, b));
  EXPECT_EQ(t.bind_root(a), t.bind_root(c));
}

TEST(Symbols, BindRejectsKindMismatch) {
  SymbolTable t;
  const auto x = *t.declare_scalar("x");
  const auto a = *t.declare_array("a", 4);
  const auto b = *t.declare_array("b", 8);
  EXPECT_FALSE(t.bind(x, a));
  EXPECT_FALSE(t.bind(a, b));  // different sizes
  const auto c = *t.declare_array("c", 4);
  EXPECT_TRUE(t.bind(a, c));
}

TEST(StorageLayout, ScalarsAndArraysGetDistinctCells) {
  SymbolTable t;
  const auto x = *t.declare_scalar("x");
  const auto a = *t.declare_array("a", 4);
  const auto y = *t.declare_scalar("y");
  const StorageLayout layout(t);
  EXPECT_EQ(layout.total_cells(), 6u);
  EXPECT_EQ(layout.extent(x), 1u);
  EXPECT_EQ(layout.extent(a), 4u);
  // All ranges disjoint.
  EXPECT_NE(layout.base(x), layout.base(y));
  EXPECT_TRUE(layout.base(a) + 4 <= layout.base(y) ||
              layout.base(y) < layout.base(a));
}

TEST(StorageLayout, BoundVariablesShareCells) {
  SymbolTable t;
  const auto x = *t.declare_scalar("x");
  const auto y = *t.declare_scalar("y");
  const auto z = *t.declare_scalar("z");
  t.bind(x, z);
  const StorageLayout layout(t);
  EXPECT_EQ(layout.total_cells(), 2u);
  EXPECT_EQ(layout.base(x), layout.base(z));
  EXPECT_NE(layout.base(x), layout.base(y));
}

TEST(StorageLayout, AliasWithoutBindDoesNotShare) {
  SymbolTable t;
  const auto x = *t.declare_scalar("x");
  const auto y = *t.declare_scalar("y");
  t.add_alias(x, y);
  const StorageLayout layout(t);
  EXPECT_NE(layout.base(x), layout.base(y));
  EXPECT_EQ(layout.total_cells(), 2u);
}

TEST(StorageLayout, BoundArraysOverlay) {
  SymbolTable t;
  const auto a = *t.declare_array("a", 6);
  const auto b = *t.declare_array("b", 6);
  t.bind(a, b);
  const StorageLayout layout(t);
  EXPECT_EQ(layout.total_cells(), 6u);
  EXPECT_EQ(layout.base(a), layout.base(b));
}

}  // namespace
}  // namespace ctdf::lang
