// Program-cache behavior (core/progcache.hpp): key sensitivity, LRU
// accounting, the disk tier's typed-rejection fallback, and the
// run_many batch overload. Correctness bar throughout: a cache-served
// program must execute exactly like a freshly compiled one, and a
// damaged cache may cost a recompile but never an answer.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "core/pipeline.hpp"
#include "core/progcache.hpp"
#include "lang/corpus.hpp"
#include "machine/blob.hpp"
#include "support/diagnostics.hpp"

namespace ctdf::core {
namespace {

namespace fs = std::filesystem;

std::string scalar_source(int value) {
  return "var x;\n  x := " + std::to_string(value) + " + 1;\n";
}

PipelineOptions default_po() {
  return PipelineOptions(translate::TranslateOptions::schema2_optimized());
}

/// XORs one byte of a file in place (simulated bit rot).
void flip_byte(const std::string& path, std::size_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  const int b = f.get();
  ASSERT_NE(b, EOF);
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(b ^ 0x40));
}

/// A fresh, empty directory under the test temp root.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/progcache_" + name;
  fs::remove_all(dir);
  return dir;
}

TEST(ProgramCacheKey, StableAndSensitiveToWhatShapesTheImage) {
  const std::string src = lang::corpus::running_example_source();
  const PipelineOptions po = default_po();
  EXPECT_EQ(program_cache_key(src, po), program_cache_key(src, po));
  EXPECT_NE(program_cache_key(src, po),
            program_cache_key(src + " ", po));

  PipelineOptions mem = po;
  mem.translate.eliminate_memory = true;
  EXPECT_NE(program_cache_key(src, po), program_cache_key(src, mem));

  PipelineOptions fuse = po;
  fuse.translate.fuse_limit = 5;
  EXPECT_NE(program_cache_key(src, po), program_cache_key(src, fuse));

  PipelineOptions istr = po;
  istr.translate.istructure_arrays = {"x"};
  EXPECT_NE(program_cache_key(src, po), program_cache_key(src, istr));

  // Trace-only toggles do not change the image, so they must not
  // change the address: a --stage-stats run and a plain run share one
  // cache entry.
  PipelineOptions traced = po;
  traced.compute_ssa = true;
  traced.validate = false;
  traced.dump_after = Stage::kTranslate;
  EXPECT_EQ(program_cache_key(src, po), program_cache_key(src, traced));
}

TEST(ProgramCache, MissThenMemoryHitSharesTheEntry) {
  ProgramCache cache;
  const std::string src = lang::corpus::running_example_source();
  const auto first = cache.get(src, default_po());
  EXPECT_EQ(first.disposition, CacheDisposition::kMiss);
  ASSERT_NE(first.entry, nullptr);
  EXPECT_GT(first.entry->blob_bytes, 0u);
  EXPECT_NE(first.entry->content_hash, 0u);
  EXPECT_FALSE(first.trace.stages.empty());  // the compile ran

  const auto second = cache.get(src, default_po());
  EXPECT_EQ(second.disposition, CacheDisposition::kHitMemory);
  EXPECT_EQ(second.entry.get(), first.entry.get());
  EXPECT_TRUE(second.trace.stages.empty());  // nothing ran

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.blob_bytes, first.entry->blob_bytes);
}

TEST(ProgramCache, CacheServedProgramsExecuteIdentically) {
  ProgramCache cache;
  const std::string src = lang::corpus::fig9_source();
  (void)cache.get(src, default_po());
  const auto hit = cache.get(src, default_po());
  ASSERT_EQ(hit.disposition, CacheDisposition::kHitMemory);

  const auto fresh = core::make_program_image(
      Pipeline(default_po()).run(src));
  const machine::MachineOptions mopt;
  const auto a = execute(hit.entry->image, mopt);
  const auto b = execute(fresh, mopt);
  ASSERT_TRUE(a.stats.completed) << a.stats.error;
  EXPECT_EQ(a.store, b.store);
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
  EXPECT_EQ(a.stats.ops_fired, b.stats.ops_fired);
}

TEST(ProgramCache, LruEvictsTheLeastRecentlyTouchedEntry) {
  ProgramCache::Config cfg;
  cfg.capacity = 2;
  ProgramCache cache(cfg);
  const PipelineOptions po = default_po();

  (void)cache.get(scalar_source(1), po);
  (void)cache.get(scalar_source(2), po);
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_EQ(cache.get(scalar_source(1), po).disposition,
            CacheDisposition::kHitMemory);
  (void)cache.get(scalar_source(3), po);

  CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evictions, 1u);

  // 1 survived (recently used), 2 was evicted and recompiles.
  EXPECT_EQ(cache.get(scalar_source(1), po).disposition,
            CacheDisposition::kHitMemory);
  EXPECT_EQ(cache.get(scalar_source(2), po).disposition,
            CacheDisposition::kMiss);

  // blob_bytes tracks exactly the resident entries.
  s = cache.stats();
  const auto e1 = cache.get(scalar_source(1), po);
  const auto e2 = cache.get(scalar_source(2), po);
  EXPECT_EQ(cache.stats().blob_bytes,
            e1.entry->blob_bytes + e2.entry->blob_bytes);
}

TEST(ProgramCache, ZeroCapacityIsClampedToOne) {
  ProgramCache::Config cfg;
  cfg.capacity = 0;
  ProgramCache cache(cfg);
  (void)cache.get(scalar_source(1), default_po());
  EXPECT_EQ(cache.stats().entries, 1u);
  (void)cache.get(scalar_source(2), default_po());
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ProgramCache, DiskTierServesANewProcess) {
  const std::string dir = fresh_dir("disk_tier");
  ProgramCache::Config cfg;
  cfg.dir = dir;
  const std::string src = lang::corpus::running_example_source();

  std::uint64_t content_hash = 0;
  {
    ProgramCache cold(cfg);
    const auto out = cold.get(src, default_po());
    EXPECT_EQ(out.disposition, CacheDisposition::kMiss);
    content_hash = out.entry->content_hash;
  }
  // The blob landed under the key-derived name.
  char name[32];
  std::snprintf(name, sizeof name, "%016llx",
                static_cast<unsigned long long>(
                    program_cache_key(src, default_po())));
  const std::string path = dir + "/" + std::string(name) + ".ctdfblob";
  ASSERT_TRUE(fs::exists(path)) << path;

  // A second cache (a "new process") decodes instead of compiling.
  ProgramCache warm(cfg);
  const auto out = warm.get(src, default_po());
  EXPECT_EQ(out.disposition, CacheDisposition::kHitDisk);
  EXPECT_EQ(out.entry->content_hash, content_hash);
  EXPECT_TRUE(out.trace.stages.empty());
  const CacheStats s = warm.stats();
  EXPECT_EQ(s.disk_hits, 1u);
  EXPECT_EQ(s.misses, 0u);

  const auto ran = execute(out.entry->image, machine::MachineOptions{});
  EXPECT_TRUE(ran.stats.completed) << ran.stats.error;
}

TEST(ProgramCache, CorruptDiskBlobIsRejectedRecompiledAndRewritten) {
  const std::string dir = fresh_dir("corrupt");
  ProgramCache::Config cfg;
  cfg.dir = dir;
  const std::string src = lang::corpus::running_example_source();
  { ProgramCache seed(cfg); (void)seed.get(src, default_po()); }

  // Flip one payload byte in the only blob on disk.
  std::string path;
  for (const auto& e : fs::directory_iterator(dir)) path = e.path();
  ASSERT_FALSE(path.empty());
  flip_byte(path, machine::kBlobHeaderSize + 3);

  ProgramCache burned(cfg);
  const auto out = burned.get(src, default_po());
  EXPECT_EQ(out.disposition, CacheDisposition::kMiss);  // recompiled
  EXPECT_EQ(burned.stats().disk_rejects, 1u);
  const auto ran = execute(out.entry->image, machine::MachineOptions{});
  EXPECT_TRUE(ran.stats.completed) << ran.stats.error;

  // The rewrite healed the file: the next process gets a disk hit.
  ProgramCache healed(cfg);
  EXPECT_EQ(healed.get(src, default_po()).disposition,
            CacheDisposition::kHitDisk);
}

TEST(ProgramCache, StaleFormatGenerationOnDiskIsADiskReject) {
  const std::string dir = fresh_dir("stale");
  ProgramCache::Config cfg;
  cfg.dir = dir;
  const std::string src = scalar_source(7);
  { ProgramCache seed(cfg); (void)seed.get(src, default_po()); }

  std::string path;
  for (const auto& e : fs::directory_iterator(dir)) path = e.path();
  {
    // Pretend the blob came from a newer format generation.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(machine::kBlobMagicSize));
    f.put(static_cast<char>(machine::kBlobVersion + 1));
  }
  ProgramCache c(cfg);
  EXPECT_EQ(c.get(src, default_po()).disposition, CacheDisposition::kMiss);
  EXPECT_EQ(c.stats().disk_rejects, 1u);
}

TEST(ProgramCache, DiskCapacityCapsTheFileCount) {
  const std::string dir = fresh_dir("disk_cap");
  ProgramCache::Config cfg;
  cfg.dir = dir;
  cfg.disk_capacity = 2;
  ProgramCache cache(cfg);
  for (int i = 1; i <= 4; ++i)
    (void)cache.get(scalar_source(i), default_po());

  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.path().extension() == ".ctdfblob") ++files;
  EXPECT_LE(files, 2u);
}

TEST(ProgramCache, CompileErrorsAreNotCached) {
  ProgramCache cache;
  const std::string bad = "var x;\n  x := ;\n";
  EXPECT_THROW((void)cache.get(bad, default_po()), support::CompileError);
  EXPECT_THROW((void)cache.get(bad, default_po()), support::CompileError);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.hits, 0u);
}

TEST(PipelineRunMany, CacheOverloadDeduplicatesAcrossAndWithinBatches) {
  ProgramCache cache;
  const Pipeline pipeline(default_po());
  const std::string a = lang::corpus::running_example_source();
  const std::string b = scalar_source(9);

  const BatchResult first = pipeline.run_many({a, a, b}, cache);
  ASSERT_EQ(first.programs.size(), 3u);
  EXPECT_EQ(first.cache_hits, 1u);        // the repeated `a`
  EXPECT_EQ(first.lowerings_reused, 1u);  // served with its ExecProgram
  EXPECT_GT(first.cache_blob_bytes, 0u);

  // Every program in the batch carries a runnable lowered image.
  for (const CompileResult& cr : first.programs) {
    EXPECT_GT(cr.exec.num_ops(), 0u);
    EXPECT_FALSE(cr.names.empty());
    const auto ran = execute(cr, machine::MachineOptions{});
    EXPECT_TRUE(ran.stats.completed) << ran.stats.error;
  }

  // A later batch reuses everything — no pipeline stage runs at all.
  const BatchResult second = pipeline.run_many({a, b}, cache);
  EXPECT_EQ(second.cache_hits, 2u);
  EXPECT_EQ(second.lowerings_reused, 2u);

  // Cache-served results execute exactly like freshly compiled ones.
  const auto fresh = core::make_program_image(pipeline.run(a));
  EXPECT_EQ(execute(second.programs[0], machine::MachineOptions{}).store,
            execute(fresh, machine::MachineOptions{}).store);
}

}  // namespace
}  // namespace ctdf::core
