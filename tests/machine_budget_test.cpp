// Run-budget coverage: the cooperative deadline and token ceilings
// (machine/budget.hpp) must produce the same typed error, with the same
// message text, on every engine — scan, event, cycle-synchronous
// parallel, and both async disciplines — and an armed-but-generous
// budget must not perturb a run at all.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "machine/budget.hpp"
#include "machine/report.hpp"

namespace ctdf::machine {
namespace {

/// Never terminates: i stays 0, so the backedge is taken forever. The
/// only way out is a budget (deadline, token, or cycle ceiling).
constexpr const char* kSpinSource = R"(var x, i;
l:
  x := x + 1;
  if i < 1 then goto l else goto end;
)";

constexpr const char* kFiniteSource = R"(var x, y;
l:
  y := x + 1;
  x := x + 1;
  if x < 5 then goto l else goto end;
)";

struct EngineConfig {
  const char* name;
  MachineOptions mopt;
};

/// One configuration per engine/discipline the budget must cover.
std::vector<EngineConfig> all_engines() {
  std::vector<EngineConfig> out;
  out.push_back({"scan", {}});
  out.push_back({"event", {}});
  out.back().mopt.engine = EngineKind::kEvent;
  out.push_back({"sync", {}});
  out.back().mopt.host_threads = 2;
  out.push_back({"async-det", {}});
  out.back().mopt.parallel = ParallelMode::kAsync;
  out.back().mopt.host_threads = 3;
  out.push_back({"async-free", {}});
  out.back().mopt.parallel = ParallelMode::kAsync;
  out.back().mopt.host_threads = 3;
  out.back().mopt.deterministic = false;
  return out;
}

RunResult run_source(const char* source, const MachineOptions& mopt) {
  const auto tx = core::compile(
      source, translate::TranslateOptions::schema2_optimized());
  return core::execute(tx, mopt);
}

TEST(MachineBudget, DeadlineExpiryIsTypedAndIdenticalOnEveryEngine) {
  std::vector<std::string> messages;
  for (const EngineConfig& cfg : all_engines()) {
    MachineOptions mopt = cfg.mopt;
    mopt.budget.deadline_ms = 30;
    const RunResult r = run_source(kSpinSource, mopt);
    EXPECT_FALSE(r.stats.completed) << cfg.name;
    EXPECT_EQ(r.stats.error_detail.code, ErrorCode::kDeadlineExceeded)
        << cfg.name << ": " << r.stats.error;
    // Partial stats survive the expiry: the run did real work first.
    EXPECT_GT(r.stats.cycles, 0u) << cfg.name;
    EXPECT_GT(r.stats.ops_fired, 0u) << cfg.name;
    // The failed run still renders schema-complete JSON.
    const std::string json = render_stats_json(r.stats, mopt);
    EXPECT_NE(json.find("\"code\": \"deadline-exceeded\""), std::string::npos)
        << cfg.name << ":\n" << json;
    EXPECT_NE(json.find("\"completed\": false"), std::string::npos);
    messages.push_back(r.stats.error);
  }
  for (std::size_t i = 1; i < messages.size(); ++i)
    EXPECT_EQ(messages[i], messages[0]) << "engine #" << i;
}

TEST(MachineBudget, TokenCeilingIsTypedAndIdenticalOnEveryEngine) {
  std::vector<std::string> messages;
  for (const EngineConfig& cfg : all_engines()) {
    MachineOptions mopt = cfg.mopt;
    mopt.budget.max_tokens = 1000;
    const RunResult r = run_source(kSpinSource, mopt);
    EXPECT_FALSE(r.stats.completed) << cfg.name;
    EXPECT_EQ(r.stats.error_detail.code, ErrorCode::kTokenBudget)
        << cfg.name << ": " << r.stats.error;
    EXPECT_GT(r.stats.tokens_sent, 1000u) << cfg.name;
    messages.push_back(r.stats.error);
  }
  for (std::size_t i = 1; i < messages.size(); ++i)
    EXPECT_EQ(messages[i], messages[0]) << "engine #" << i;
  EXPECT_EQ(messages[0],
            "token budget exceeded: more than 1000 token(s) sent "
            "(max-tokens)");
}

TEST(MachineBudget, ZeroDeadlineRejectsUpFrontOnEveryEngine) {
  for (const EngineConfig& cfg : all_engines()) {
    MachineOptions mopt = cfg.mopt;
    mopt.budget.deadline_ms = 0;
    const RunResult r = run_source(kFiniteSource, mopt);
    EXPECT_FALSE(r.stats.completed) << cfg.name;
    EXPECT_EQ(r.stats.error_detail.code, ErrorCode::kDeadlineExceeded)
        << cfg.name;
    // Rejected before a single cycle: nothing fired, store untouched.
    EXPECT_EQ(r.stats.cycles, 0u) << cfg.name;
    EXPECT_EQ(r.stats.ops_fired, 0u) << cfg.name;
    EXPECT_EQ(r.stats.error,
              "deadline exceeded: the 0 ms wall-clock budget was spent "
              "before the program completed")
        << cfg.name;
  }
}

TEST(MachineBudget, GenerousBudgetIsByteIdenticalToNoBudget) {
  for (const EngineConfig& cfg : all_engines()) {
    const RunResult bare = run_source(kFiniteSource, cfg.mopt);
    ASSERT_TRUE(bare.stats.completed) << cfg.name << ": " << bare.stats.error;

    MachineOptions armed = cfg.mopt;
    armed.budget.deadline_ms = 600'000;
    armed.budget.max_tokens = 1ull << 60;
    const RunResult r = run_source(kFiniteSource, armed);
    ASSERT_TRUE(r.stats.completed) << cfg.name << ": " << r.stats.error;
    EXPECT_TRUE(r.store == bare.store) << cfg.name;
    // The async free discipline's counters vary run to run by design;
    // everywhere else the human report must match byte for byte.
    if (std::string(cfg.name) != "async-free") {
      EXPECT_EQ(render_report(r.stats), render_report(bare.stats))
          << cfg.name;
    }
  }
}

TEST(MachineBudget, CycleCapStillTripsThroughTheBudget) {
  MachineOptions mopt;
  mopt.budget.max_cycles = 500;
  const RunResult r = run_source(kSpinSource, mopt);
  EXPECT_FALSE(r.stats.completed);
  EXPECT_EQ(r.stats.error_detail.code, ErrorCode::kCycleCap);
}

}  // namespace
}  // namespace ctdf::machine
