#include <gtest/gtest.h>

#include "cfg/build.hpp"
#include "cfg/intervals.hpp"
#include "lang/parser.hpp"
#include "translate/subscript.hpp"
#include "translate/translator.hpp"

namespace ctdf::translate {
namespace {

/// Parses a program whose first statement is `probe := <expr>;` and
/// returns that expression for affine matching.
const lang::Expr& expr_of(const lang::Program& p) {
  return *p.body.front()->expr;
}

lang::Program parse_expr(const std::string& e) {
  return lang::parse_or_throw("var probe, i, j; " + std::string("probe := ") +
                              e + ";");
}

TEST(Affine, MatchesSimpleForms) {
  struct Case {
    const char* expr;
    std::int64_t coeff;
    std::int64_t offset;
  };
  for (const Case& c : {Case{"i", 1, 0},
                        Case{"i + 3", 1, 3},
                        Case{"i - 5", 1, -5},
                        Case{"3 + i", 1, 3},
                        Case{"2 * i", 2, 0},
                        Case{"i * 2", 2, 0},
                        Case{"2 * i + 7", 2, 7},
                        Case{"7 - i", -1, 7},
                        Case{"-i", -1, 0},
                        Case{"-(2 * i - 1)", -2, 1},
                        Case{"i + i", 2, 0},
                        Case{"3 * (i + 1) - i", 2, 3}}) {
    const auto p = parse_expr(c.expr);
    const auto m = match_affine(expr_of(p));
    ASSERT_TRUE(m.has_value()) << c.expr;
    EXPECT_EQ(m->coeff, c.coeff) << c.expr;
    EXPECT_EQ(m->offset, c.offset) << c.expr;
    EXPECT_EQ(m->var, *p.symbols.lookup("i")) << c.expr;
  }
}

TEST(Affine, RejectsNonAffineForms) {
  for (const char* e : {"i * i", "i * j", "i + j", "i / 2", "i % 3", "5",
                        "i - i", "0 * i + 4", "i < 3", "!(i)"}) {
    const auto p = parse_expr(e);
    EXPECT_FALSE(match_affine(expr_of(p)).has_value()) << e;
  }
}

struct LoopFixture {
  lang::Program prog;
  cfg::Graph g;
  cfg::LoopInfo info;

  explicit LoopFixture(const std::string& src)
      : prog(lang::parse_or_throw(src)), g(cfg::build_cfg_or_throw(prog)) {
    support::DiagnosticEngine d;
    info = cfg::transform_loops(g, d);
    EXPECT_FALSE(d.has_errors());
    EXPECT_FALSE(info.loops().empty());
  }

  const cfg::Loop& loop() const { return info.loops().front(); }
  lang::VarId var(const char* n) const { return *prog.symbols.lookup(n); }
};

TEST(Induction, DetectsSimpleSteps) {
  LoopFixture f(R"(
var i; array x[8];
l: i := i + 2; x[i] := 1; if i < 6 then goto l else goto end;
)");
  const auto step = induction_step(f.g, f.loop(), f.var("i"), f.prog.symbols);
  ASSERT_TRUE(step.has_value());
  EXPECT_EQ(*step, 2);
}

TEST(Induction, DetectsNegativeStep) {
  LoopFixture f(R"(
var i; array x[8];
i := 7;
l: i := i - 1; x[i] := 1; if i > 0 then goto l else goto end;
)");
  const auto step = induction_step(f.g, f.loop(), f.var("i"), f.prog.symbols);
  ASSERT_TRUE(step.has_value());
  EXPECT_EQ(*step, -1);
}

TEST(Induction, RejectsMultipleAssignments) {
  LoopFixture f(R"(
var i; array x[8];
l: i := i + 1; i := i + 1; x[i] := 1; if i < 6 then goto l else goto end;
)");
  EXPECT_FALSE(
      induction_step(f.g, f.loop(), f.var("i"), f.prog.symbols).has_value());
}

TEST(Induction, RejectsNonInductionUpdate) {
  LoopFixture f(R"(
var i; array x[8];
l: i := i * 2 + 1; x[i] := 1; if i < 6 then goto l else goto end;
)");
  EXPECT_FALSE(
      induction_step(f.g, f.loop(), f.var("i"), f.prog.symbols).has_value());
}

TEST(Induction, RejectsAliasedVariable) {
  LoopFixture f(R"(
var i, k; array x[8];
alias i k;
l: i := i + 1; x[i] := 1; if i < 6 then goto l else goto end;
)");
  EXPECT_FALSE(
      induction_step(f.g, f.loop(), f.var("i"), f.prog.symbols).has_value());
}

TEST(StoresParallelizable, AcceptsAffineInductionStores) {
  LoopFixture f(R"(
var i; array x[32];
l: i := i + 1; x[2 * i + 1] := i; if i < 10 then goto l else goto end;
)");
  EXPECT_TRUE(
      stores_parallelizable(f.g, f.loop(), f.var("x"), f.prog.symbols));
}

TEST(StoresParallelizable, RejectsLoopsThatReadTheArray) {
  LoopFixture f(R"(
var i; array x[16];
l: i := i + 1; x[i] := x[i - 1]; if i < 10 then goto l else goto end;
)");
  EXPECT_FALSE(
      stores_parallelizable(f.g, f.loop(), f.var("x"), f.prog.symbols));
}

TEST(StoresParallelizable, RejectsArrayReadInPredicate) {
  LoopFixture f(R"(
var i; array x[16];
l: i := i + 1; x[i] := 1; if x[0] + i < 10 then goto l else goto end;
)");
  EXPECT_FALSE(
      stores_parallelizable(f.g, f.loop(), f.var("x"), f.prog.symbols));
}

TEST(StoresParallelizable, RejectsNonAffineSubscript) {
  LoopFixture f(R"(
var i; array x[16];
l: i := i + 1; x[i * i] := 1; if i < 10 then goto l else goto end;
)");
  EXPECT_FALSE(
      stores_parallelizable(f.g, f.loop(), f.var("x"), f.prog.symbols));
}

TEST(StoresParallelizable, RejectsLoopWithNoStores) {
  LoopFixture f(R"(
var i, s; array x[16];
l: i := i + 1; s := s + i; if i < 10 then goto l else goto end;
)");
  EXPECT_FALSE(
      stores_parallelizable(f.g, f.loop(), f.var("x"), f.prog.symbols));
}

TEST(Fig14EndToEnd, GeneralAffineSubscriptNowQualifies) {
  // The generalized matcher accepts stride-2 subscripts end to end.
  const auto prog = lang::parse_or_throw(R"(
var i; array x[64];
l: i := i + 1; x[2 * i] := i; if i < 20 then goto l else goto end;
)");
  auto o = TranslateOptions::schema2_optimized();
  o.parallel_store_arrays = {"x"};
  support::DiagnosticEngine d;
  const auto tx = ctdf::translate::translate(prog, o, d);
  EXPECT_FALSE(d.has_errors());
  EXPECT_EQ(tx.loops_store_parallelized, 1u);
}

}  // namespace
}  // namespace ctdf::translate
