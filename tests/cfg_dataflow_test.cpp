#include <gtest/gtest.h>

#include <algorithm>

#include "cfg/build.hpp"
#include "cfg/dataflow.hpp"
#include "core/compiler.hpp"
#include "lang/corpus.hpp"
#include "lang/generator.hpp"
#include "lang/parser.hpp"

namespace ctdf::cfg {
namespace {

struct Fixture {
  lang::Program prog;
  Graph g;

  explicit Fixture(std::string_view src)
      : prog(lang::parse_or_throw(src)), g(build_cfg_or_throw(prog)) {}

  lang::VarId var(const char* n) const { return *prog.symbols.lookup(n); }

  NodeId assign_to(const char* n, int which = 0) const {
    const lang::VarId v = var(n);
    int seen = 0;
    for (NodeId node : g.all_nodes()) {
      if (g.kind(node) == NodeKind::kAssign && g.node(node).lhs.var == v) {
        if (seen++ == which) return node;
      }
    }
    return NodeId::invalid();
  }
};

/// Oracle: v is live at entry of n iff some path from n reaches a use
/// of v (or `end`) without first passing a strong definition of v.
/// (A node's own uses happen before its own definition.)
bool naive_live_in(const Fixture& f, NodeId start, lang::VarId v) {
  const UseDef ud(f.g, f.prog.symbols);
  std::vector<bool> seen(f.g.size(), false);
  std::vector<NodeId> stack{start};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (seen[n.index()]) continue;
    seen[n.index()] = true;
    if (ud.use[n].test(v.index())) return true;
    if (n == f.g.end()) return true;  // the final store is observable
    if (ud.def[n].test(v.index())) continue;  // strongly killed
    for (NodeId s : f.g.succs(n)) stack.push_back(s);
  }
  return false;
}

TEST(Liveness, EverythingLiveAtEnd) {
  Fixture f("var a, b; a := 1;");
  const Liveness live(f.g, f.prog.symbols);
  for (auto v : f.prog.symbols.all_vars())
    EXPECT_TRUE(live.live_in(f.g.end()).test(v.index()));
}

TEST(Liveness, OverwrittenValueIsDeadBetweenStores) {
  Fixture f("var x, y; x := 1; y := 2; x := 3;");
  const Liveness live(f.g, f.prog.symbols);
  const NodeId first_x = f.assign_to("x", 0);
  // x is not live out of its first assignment (rewritten before any
  // read and before end).
  EXPECT_FALSE(live.live_out(first_x).test(f.var("x").index()));
  // y IS live out of its assignment (end observes it).
  EXPECT_TRUE(live.live_out(f.assign_to("y")).test(f.var("y").index()));
}

TEST(Liveness, ReadInOneBranchKeepsValueLive) {
  Fixture f("var x, w, s; x := 1; if w { s := x; } x := 2;");
  const Liveness live(f.g, f.prog.symbols);
  EXPECT_TRUE(live.live_out(f.assign_to("x", 0)).test(f.var("x").index()));
}

TEST(Liveness, AliasedWritesAreWeak) {
  // x ~ y: the second write may go to a different location, so the
  // first x value stays live (reachable through y... conservatively).
  Fixture f("var x, y; alias x y; x := 1; x := 2;");
  const Liveness live(f.g, f.prog.symbols);
  EXPECT_TRUE(live.live_out(f.assign_to("x", 0)).test(f.var("x").index()));
}

TEST(Liveness, MatchesOracleOnRandomPrograms) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    lang::GeneratorOptions opt;
    opt.allow_unstructured = true;
    opt.max_toplevel_stmts = 8;
    const auto prog = lang::generate_program(opt, seed);
    Fixture f(prog.to_string());
    const Liveness live(f.g, f.prog.symbols);
    for (NodeId n : f.g.all_nodes()) {
      for (auto v : f.prog.symbols.all_vars()) {
        EXPECT_EQ(live.live_in(n).test(v.index()), naive_live_in(f, n, v))
            << "seed " << seed << " node " << n.value() << " var "
            << f.prog.symbols.name(v);
      }
    }
  }
}

TEST(ReachingDefs, StartReachesUnassignedUses) {
  Fixture f("var x, y; y := x;");
  const ReachingDefs rd(f.g, f.prog.symbols);
  const NodeId use = f.assign_to("y");
  const auto defs = rd.defs_reaching(use, f.var("x"));
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs.front(), f.g.start());
}

TEST(ReachingDefs, StrongDefKillsPrior) {
  Fixture f("var x, y; x := 1; x := 2; y := x;");
  const ReachingDefs rd(f.g, f.prog.symbols);
  const auto defs = rd.defs_reaching(f.assign_to("y"), f.var("x"));
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs.front(), f.assign_to("x", 1));
}

TEST(ReachingDefs, BothBranchDefsReachTheJoin) {
  Fixture f("var x, y, w; if w { x := 1; } else { x := 2; } y := x;");
  const ReachingDefs rd(f.g, f.prog.symbols);
  const auto defs = rd.defs_reaching(f.assign_to("y"), f.var("x"));
  EXPECT_EQ(defs.size(), 2u);
}

TEST(ReachingDefs, LoopCarriedDefReachesLoopTop) {
  Fixture f(lang::corpus::running_example_source());
  const ReachingDefs rd(f.g, f.prog.symbols);
  const NodeId y_assign = f.assign_to("y");
  const auto defs = rd.defs_reaching(y_assign, f.var("x"));
  // Initial (start) and loop-carried x := x + 1 both reach y := x + 1.
  EXPECT_EQ(defs.size(), 2u);
  EXPECT_TRUE(std::any_of(defs.begin(), defs.end(),
                          [&](NodeId d) { return d == f.g.start(); }));
}

TEST(DeadStoreElim, RemovesOverwrittenStores) {
  Fixture f("var x, y; x := 1; y := 2; x := 3;");
  const std::size_t removed = eliminate_dead_stores(f.g, f.prog.symbols);
  EXPECT_EQ(removed, 1u);
  EXPECT_TRUE(f.g.validate().empty());
}

TEST(DeadStoreElim, CascadesThroughChains) {
  Fixture f("var x; x := 1; x := 2; x := 3;");
  EXPECT_EQ(eliminate_dead_stores(f.g, f.prog.symbols), 2u);
}

TEST(DeadStoreElim, KeepsObservableAndBranchReadStores) {
  Fixture f("var x, w, s; x := 1; if w { s := x; } x := 2;");
  EXPECT_EQ(eliminate_dead_stores(f.g, f.prog.symbols), 0u);
}

TEST(DeadStoreElim, NeverTouchesAliasedOrArrayStores) {
  Fixture f(R"(
var x, y; array a[4];
alias x y;
x := 1; x := 2;
a[0] := 1; a[0] := 2;
)");
  EXPECT_EQ(eliminate_dead_stores(f.g, f.prog.symbols), 0u);
}

TEST(DeadStoreElim, EndToEndSemanticsPreserved) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    lang::GeneratorOptions gopt;
    gopt.allow_unstructured = true;
    gopt.num_arrays = 1;
    const auto prog = lang::generate_program(gopt, seed);
    const auto ref = lang::interpret(prog, 1'000'000);
    ASSERT_TRUE(ref.completed);
    auto topt = translate::TranslateOptions::schema2_optimized();
    topt.dead_store_elimination = true;
    const auto tx = core::compile(prog, topt);
    const auto res = core::execute(tx, {});
    ASSERT_TRUE(res.stats.completed) << "seed " << seed << ": "
                                     << res.stats.error;
    EXPECT_EQ(res.store.cells, ref.store.cells) << "seed " << seed;
  }
}

TEST(DeadStoreElim, ShrinksTheDataflowGraph) {
  const auto prog = lang::parse_or_throw(
      "var x, y; x := 7; x := x * 0 + 1; y := 2; y := 3; y := y + x;");
  auto base = translate::TranslateOptions::schema2_optimized();
  auto dse = base;
  dse.dead_store_elimination = true;
  const auto t0 = core::compile(prog, base);
  const auto t1 = core::compile(prog, dse);
  EXPECT_GT(t1.dead_stores_removed, 0u);
  EXPECT_LT(t1.graph.num_nodes(), t0.graph.num_nodes());
}

}  // namespace
}  // namespace ctdf::cfg
