// Differential harness for the parallel engine: for every swept
// configuration, a run with host_threads ∈ {2, 4, 8} must be
// bit-identical to the serial engine — every RunStats counter, every
// per-node first-fire cycle, the per-cycle profile, the error text, and
// the final store. This is the enforceable form of the determinism
// guarantee documented on MachineOptions::host_threads (WaveCert-style
// translation validation, applied to the executor instead of the
// compiler).
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "dfg/graph.hpp"
#include "lang/corpus.hpp"
#include "lang/generator.hpp"
#include "lang/parser.hpp"
#include "machine/machine.hpp"

namespace ctdf::machine {
namespace {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;

constexpr unsigned kThreadSweep[] = {2, 4, 8};

void expect_identical(const RunResult& serial, const RunResult& parallel,
                      const std::string& context) {
  EXPECT_EQ(serial.stats.completed, parallel.stats.completed) << context;
  EXPECT_EQ(serial.stats.error, parallel.stats.error) << context;
  EXPECT_EQ(serial.stats.cycles, parallel.stats.cycles) << context;
  EXPECT_EQ(serial.stats.ops_fired, parallel.stats.ops_fired) << context;
  EXPECT_EQ(serial.stats.tokens_sent, parallel.stats.tokens_sent) << context;
  EXPECT_EQ(serial.stats.matches, parallel.stats.matches) << context;
  EXPECT_EQ(serial.stats.contexts_allocated, parallel.stats.contexts_allocated)
      << context;
  EXPECT_EQ(serial.stats.mem_reads, parallel.stats.mem_reads) << context;
  EXPECT_EQ(serial.stats.mem_writes, parallel.stats.mem_writes) << context;
  EXPECT_EQ(serial.stats.peak_live_contexts, parallel.stats.peak_live_contexts)
      << context;
  EXPECT_EQ(serial.stats.throttle_stalls, parallel.stats.throttle_stalls)
      << context;
  EXPECT_EQ(serial.stats.deferred_reads, parallel.stats.deferred_reads)
      << context;
  EXPECT_EQ(serial.stats.peak_ready, parallel.stats.peak_ready) << context;
  EXPECT_EQ(serial.stats.leftover_tokens, parallel.stats.leftover_tokens)
      << context;
  EXPECT_EQ(serial.stats.fired_by_kind, parallel.stats.fired_by_kind)
      << context;
  EXPECT_EQ(serial.stats.first_fire_cycle, parallel.stats.first_fire_cycle)
      << context;
  EXPECT_EQ(serial.stats.profile, parallel.stats.profile) << context;
  EXPECT_EQ(serial.store.cells, parallel.store.cells) << context;
}

/// Runs `tx` serially and at each swept thread count, demanding
/// identity. The serial result is returned so callers can add their own
/// sanity assertions on top.
RunResult check_equivalent(const translate::Translation& tx,
                           MachineOptions mopt, const std::string& context) {
  mopt.host_threads = 0;
  const RunResult serial = core::execute(tx, mopt);
  for (const unsigned threads : kThreadSweep) {
    mopt.host_threads = threads;
    const RunResult parallel = core::execute(tx, mopt);
    expect_identical(serial, parallel,
                     context + " host_threads=" + std::to_string(threads));
  }
  return serial;
}

void sweep_program(const lang::Program& prog,
                   const translate::TranslateOptions& topt,
                   const std::string& context) {
  const auto tx = core::compile(prog, topt);
  for (const auto loop_mode :
       {LoopMode::kBarrier, LoopMode::kPipelined}) {
    for (const std::uint64_t seed : {0ull, 7ull, 99ull}) {
      for (const unsigned width : {0u, 2u}) {
        MachineOptions mopt;
        mopt.loop_mode = loop_mode;
        mopt.scheduler_seed = seed;
        mopt.width = width;
        mopt.mem_latency = seed % 2 ? 1 : 9;
        mopt.record_profile = true;
        const auto res = check_equivalent(
            tx, mopt,
            context + " loop=" + to_string(loop_mode) +
                " seed=" + std::to_string(seed) +
                " width=" + std::to_string(width));
        EXPECT_TRUE(res.stats.completed) << context << ": " << res.stats.error;
      }
    }
  }
}

TEST(ParallelEquiv, CorpusUnderOptimizedSchema) {
  for (const auto& np : lang::corpus::all())
    sweep_program(lang::parse_or_throw(np.source),
                  translate::TranslateOptions::schema2_optimized(), np.name);
}

TEST(ParallelEquiv, CorpusUnderMemoryElimination) {
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  topt.parallel_reads = true;
  for (const auto& np : lang::corpus::all())
    sweep_program(lang::parse_or_throw(np.source), topt, np.name + "/elim");
}

TEST(ParallelEquiv, IStructuresAndDeferredReads) {
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.istructure_arrays = {"x"};
  sweep_program(lang::corpus::array_loop(10), topt, "array_loop_istruct");
}

TEST(ParallelEquiv, ParallelStoreArrays) {
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.parallel_store_arrays = {"x"};
  sweep_program(lang::corpus::array_loop(10), topt, "array_loop_parstore");
}

TEST(ParallelEquiv, MultiPePlacementsAndNetworkLatency) {
  const auto tx =
      core::compile(lang::corpus::nested_loops_source(4, 5),
                    translate::TranslateOptions::schema2_optimized());
  for (const auto placement : {Placement::kByNode, Placement::kByContext}) {
    for (const unsigned processors : {1u, 3u, 16u}) {
      for (const unsigned net : {0u, 2u, 5u}) {
        MachineOptions mopt;
        mopt.loop_mode = LoopMode::kPipelined;
        mopt.processors = processors;
        mopt.placement = placement;
        mopt.network_latency = net;
        mopt.record_profile = true;
        const auto res = check_equivalent(
            tx, mopt,
            std::string("nested_loops pe=") + std::to_string(processors) +
                " placement=" + to_string(placement) +
                " net=" + std::to_string(net));
        EXPECT_TRUE(res.stats.completed) << res.stats.error;
      }
    }
  }
}

TEST(ParallelEquiv, KBoundedLoops) {
  const auto tx =
      core::compile(lang::corpus::array_loop(16),
                    translate::TranslateOptions::schema2_optimized());
  for (const unsigned k : {1u, 2u, 4u}) {
    for (const std::uint64_t seed : {0ull, 5ull}) {
      MachineOptions mopt;
      mopt.loop_mode = LoopMode::kPipelined;
      mopt.loop_bound = k;
      mopt.scheduler_seed = seed;
      const auto res = check_equivalent(
          tx, mopt,
          "array_loop k=" + std::to_string(k) +
              " seed=" + std::to_string(seed));
      EXPECT_TRUE(res.stats.completed) << res.stats.error;
      if (k == 1) {
        EXPECT_GT(res.stats.throttle_stalls, 0u);
      }
    }
  }
}

TEST(ParallelEquiv, RandomPrograms) {
  for (std::uint64_t gseed = 0; gseed < 6; ++gseed) {
    lang::GeneratorOptions gopt;
    gopt.allow_unstructured = true;
    gopt.allow_aliasing = true;
    gopt.num_arrays = 1;
    gopt.max_toplevel_stmts = 8;
    const auto prog = lang::generate_program(gopt, gseed);
    auto topt = translate::TranslateOptions::schema2_optimized();
    topt.parallel_reads = true;
    const auto tx = core::compile(prog, topt);
    for (const std::uint64_t seed : {0ull, 3ull}) {
      MachineOptions mopt;
      mopt.loop_mode = LoopMode::kPipelined;
      mopt.scheduler_seed = seed;
      mopt.width = 3;
      check_equivalent(tx, mopt,
                       "gen seed=" + std::to_string(gseed) +
                           " sched=" + std::to_string(seed));
    }
  }
}

// ---- error-path identity: the parallel entry point must reproduce the
// serial engine's diagnostics exactly (it does so by delegating any
// failing run to a serial rerun; the cycle cap is produced directly).

NodeId add_start(Graph& g, std::vector<std::int64_t> values) {
  Node s;
  s.kind = OpKind::kStart;
  s.num_outputs = static_cast<std::uint16_t>(values.size());
  s.start_values = std::move(values);
  const NodeId n = g.add(std::move(s));
  g.set_start(n);
  return n;
}

NodeId add_end(Graph& g, std::uint16_t inputs) {
  Node e;
  e.kind = OpKind::kEnd;
  e.num_inputs = inputs;
  const NodeId n = g.add(std::move(e));
  g.set_end(n);
  return n;
}

void check_graph_equivalent(const Graph& g, std::size_t cells,
                            MachineOptions mopt,
                            const std::vector<IStructureRegion>& is,
                            const std::string& context) {
  mopt.host_threads = 0;
  const RunResult serial = run(g, cells, mopt, is);
  for (const unsigned threads : kThreadSweep) {
    mopt.host_threads = threads;
    const RunResult parallel = run(g, cells, mopt, is);
    expect_identical(serial, parallel,
                     context + " host_threads=" + std::to_string(threads));
  }
}

TEST(ParallelEquiv, DeadlockReportIsIdentical) {
  Graph g;
  const NodeId s = add_start(g, {0});
  const NodeId sy = g.add_synch(2, "starved");
  g.connect({s, 0}, {sy, 0}, true);
  const NodeId gate = g.add_gate("never");
  g.bind_literal({gate, 0}, 0);
  g.connect({sy, 0}, {gate, 1}, true);
  g.connect({gate, 0}, {sy, 1}, true);
  const NodeId e = add_end(g, 1);
  g.connect({sy, 0}, {e, 0}, true);
  check_graph_equivalent(g, 0, {}, {}, "deadlock");
}

TEST(ParallelEquiv, CollisionReportIsIdentical) {
  Graph g;
  const NodeId s = add_start(g, {1, 2});
  const NodeId sy = g.add_synch(2, "victim");
  g.connect({s, 0}, {sy, 0}, true);
  g.connect({s, 1}, {sy, 0}, true);
  const NodeId e = add_end(g, 1);
  g.connect({sy, 0}, {e, 0}, true);
  const NodeId gate = g.add_gate("idle");
  g.bind_literal({gate, 0}, 0);
  g.connect({sy, 0}, {gate, 1}, true);
  g.connect({gate, 0}, {sy, 1}, true);
  check_graph_equivalent(g, 0, {}, {}, "collision");
}

TEST(ParallelEquiv, DoubleWriteReportIsIdentical) {
  Graph g;
  const NodeId s = add_start(g, {0, 0});
  for (std::uint16_t i = 0; i < 2; ++i) {
    const NodeId istore = g.add_istore(0, 4, "w");
    g.bind_literal({istore, 0}, 9);
    g.bind_literal({istore, 1}, 1);
    g.connect({s, i}, {istore, 2}, true);
    if (i == 0) {
      const NodeId e = add_end(g, 1);
      g.connect({istore, 0}, {e, 0}, true);
    }
  }
  check_graph_equivalent(g, 4, {}, {{0, 4}}, "double-write");
}

TEST(ParallelEquiv, UnfiredStoreReportIsIdentical) {
  Graph g;
  const NodeId s = add_start(g, {0, 0});
  const NodeId st = g.add_store(0, "uncollected");
  g.bind_literal({st, 0}, 9);
  g.connect({s, 1}, {st, 1}, true);
  const NodeId sink = g.add_merge("sink");
  g.connect({st, 0}, {sink, 0}, true);
  const NodeId e = add_end(g, 1);
  g.connect({s, 0}, {e, 0}, true);
  check_graph_equivalent(g, 1, {}, {}, "unfired-store");
}

TEST(ParallelEquiv, CycleCapReportIsIdentical) {
  Graph g;
  const NodeId s = add_start(g, {0});
  const NodeId m = g.add_merge("spin");
  g.connect({s, 0}, {m, 0}, true);
  g.connect({m, 0}, {m, 0}, true);
  const NodeId never = g.add_gate("never");
  g.bind_literal({never, 0}, 0);
  g.connect({never, 0}, {never, 1}, true);
  const NodeId e = add_end(g, 1);
  g.connect({never, 0}, {e, 0}, true);
  MachineOptions o;
  o.max_cycles = 500;
  o.record_profile = true;
  check_graph_equivalent(g, 0, o, {}, "cycle-cap");
}

TEST(ParallelEquiv, BenignLeftoverTokensAreIdentical) {
  Graph g;
  const NodeId s = add_start(g, {0, 0});
  const NodeId slow = g.add_gate("slow");
  g.bind_literal({slow, 0}, 1);
  g.connect({s, 1}, {slow, 1}, true);
  const NodeId sink = g.add_merge("sink");
  g.connect({slow, 0}, {sink, 0}, false);
  const NodeId e = add_end(g, 1);
  g.connect({s, 0}, {e, 0}, true);
  check_graph_equivalent(g, 0, {}, {}, "benign-leftover");
}

TEST(ParallelEquiv, HostThreadsOneUsesSerialPath) {
  // host_threads == 1 must behave exactly like 0 (serial legacy path).
  const auto tx = core::compile(lang::corpus::running_example(),
                                translate::TranslateOptions::schema2_optimized());
  MachineOptions mopt;
  mopt.host_threads = 0;
  const auto a = core::execute(tx, mopt);
  mopt.host_threads = 1;
  const auto b = core::execute(tx, mopt);
  expect_identical(a, b, "host_threads=1");
}

}  // namespace
}  // namespace ctdf::machine
