// Differential harness for the parallel engine: for every swept
// configuration, a run with host_threads ∈ {2, 4, 8} must be
// bit-identical to the serial engine — every RunStats counter, every
// per-node first-fire cycle, the per-cycle profile, the error text, and
// the final store. This is the enforceable form of the determinism
// guarantee documented on MachineOptions::host_threads (WaveCert-style
// translation validation, applied to the executor instead of the
// compiler).
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "dfg/graph.hpp"
#include "lang/corpus.hpp"
#include "lang/generator.hpp"
#include "lang/parser.hpp"
#include "machine/machine.hpp"
#include "machine/report.hpp"

namespace ctdf::machine {
namespace {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;

constexpr unsigned kThreadSweep[] = {2, 4, 8};

void expect_identical(const RunResult& serial, const RunResult& parallel,
                      const std::string& context) {
  EXPECT_EQ(serial.stats.completed, parallel.stats.completed) << context;
  EXPECT_EQ(serial.stats.error, parallel.stats.error) << context;
  EXPECT_EQ(serial.stats.cycles, parallel.stats.cycles) << context;
  EXPECT_EQ(serial.stats.ops_fired, parallel.stats.ops_fired) << context;
  EXPECT_EQ(serial.stats.tokens_sent, parallel.stats.tokens_sent) << context;
  EXPECT_EQ(serial.stats.matches, parallel.stats.matches) << context;
  EXPECT_EQ(serial.stats.contexts_allocated, parallel.stats.contexts_allocated)
      << context;
  EXPECT_EQ(serial.stats.mem_reads, parallel.stats.mem_reads) << context;
  EXPECT_EQ(serial.stats.mem_writes, parallel.stats.mem_writes) << context;
  EXPECT_EQ(serial.stats.peak_live_contexts, parallel.stats.peak_live_contexts)
      << context;
  EXPECT_EQ(serial.stats.throttle_stalls, parallel.stats.throttle_stalls)
      << context;
  EXPECT_EQ(serial.stats.deferred_reads, parallel.stats.deferred_reads)
      << context;
  EXPECT_EQ(serial.stats.peak_ready, parallel.stats.peak_ready) << context;
  EXPECT_EQ(serial.stats.leftover_tokens, parallel.stats.leftover_tokens)
      << context;
  EXPECT_EQ(serial.stats.fired_by_kind, parallel.stats.fired_by_kind)
      << context;
  EXPECT_EQ(serial.stats.first_fire_cycle, parallel.stats.first_fire_cycle)
      << context;
  EXPECT_EQ(serial.stats.profile, parallel.stats.profile) << context;
  EXPECT_EQ(serial.store.cells, parallel.store.cells) << context;
}

/// Runs `tx` serially and at each swept thread count, demanding
/// identity. The serial result is returned so callers can add their own
/// sanity assertions on top.
RunResult check_equivalent(const translate::Translation& tx,
                           MachineOptions mopt, const std::string& context) {
  mopt.host_threads = 0;
  const RunResult serial = core::execute(tx, mopt);
  for (const unsigned threads : kThreadSweep) {
    mopt.host_threads = threads;
    const RunResult parallel = core::execute(tx, mopt);
    expect_identical(serial, parallel,
                     context + " host_threads=" + std::to_string(threads));
  }
  return serial;
}

void sweep_program(const lang::Program& prog,
                   const translate::TranslateOptions& topt,
                   const std::string& context) {
  const auto tx = core::compile(prog, topt);
  for (const auto loop_mode :
       {LoopMode::kBarrier, LoopMode::kPipelined}) {
    for (const std::uint64_t seed : {0ull, 7ull, 99ull}) {
      for (const unsigned width : {0u, 2u}) {
        MachineOptions mopt;
        mopt.loop_mode = loop_mode;
        mopt.scheduler_seed = seed;
        mopt.width = width;
        mopt.mem_latency = seed % 2 ? 1 : 9;
        mopt.record_profile = true;
        const auto res = check_equivalent(
            tx, mopt,
            context + " loop=" + to_string(loop_mode) +
                " seed=" + std::to_string(seed) +
                " width=" + std::to_string(width));
        EXPECT_TRUE(res.stats.completed) << context << ": " << res.stats.error;
      }
    }
  }
}

TEST(ParallelEquiv, CorpusUnderOptimizedSchema) {
  for (const auto& np : lang::corpus::all())
    sweep_program(lang::parse_or_throw(np.source),
                  translate::TranslateOptions::schema2_optimized(), np.name);
}

TEST(ParallelEquiv, CorpusUnderMemoryElimination) {
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  topt.parallel_reads = true;
  for (const auto& np : lang::corpus::all())
    sweep_program(lang::parse_or_throw(np.source), topt, np.name + "/elim");
}

TEST(ParallelEquiv, IStructuresAndDeferredReads) {
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.istructure_arrays = {"x"};
  sweep_program(lang::corpus::array_loop(10), topt, "array_loop_istruct");
}

TEST(ParallelEquiv, ParallelStoreArrays) {
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.parallel_store_arrays = {"x"};
  sweep_program(lang::corpus::array_loop(10), topt, "array_loop_parstore");
}

TEST(ParallelEquiv, MultiPePlacementsAndNetworkLatency) {
  const auto tx =
      core::compile(lang::corpus::nested_loops_source(4, 5),
                    translate::TranslateOptions::schema2_optimized());
  for (const auto placement : {Placement::kByNode, Placement::kByContext}) {
    for (const unsigned processors : {1u, 3u, 16u}) {
      for (const unsigned net : {0u, 2u, 5u}) {
        MachineOptions mopt;
        mopt.loop_mode = LoopMode::kPipelined;
        mopt.processors = processors;
        mopt.placement = placement;
        mopt.network_latency = net;
        mopt.record_profile = true;
        const auto res = check_equivalent(
            tx, mopt,
            std::string("nested_loops pe=") + std::to_string(processors) +
                " placement=" + to_string(placement) +
                " net=" + std::to_string(net));
        EXPECT_TRUE(res.stats.completed) << res.stats.error;
      }
    }
  }
}

TEST(ParallelEquiv, KBoundedLoops) {
  const auto tx =
      core::compile(lang::corpus::array_loop(16),
                    translate::TranslateOptions::schema2_optimized());
  for (const unsigned k : {1u, 2u, 4u}) {
    for (const std::uint64_t seed : {0ull, 5ull}) {
      MachineOptions mopt;
      mopt.loop_mode = LoopMode::kPipelined;
      mopt.loop_bound = k;
      mopt.scheduler_seed = seed;
      const auto res = check_equivalent(
          tx, mopt,
          "array_loop k=" + std::to_string(k) +
              " seed=" + std::to_string(seed));
      EXPECT_TRUE(res.stats.completed) << res.stats.error;
      if (k == 1) {
        EXPECT_GT(res.stats.throttle_stalls, 0u);
      }
    }
  }
}

TEST(ParallelEquiv, RandomPrograms) {
  for (std::uint64_t gseed = 0; gseed < 6; ++gseed) {
    lang::GeneratorOptions gopt;
    gopt.allow_unstructured = true;
    gopt.allow_aliasing = true;
    gopt.num_arrays = 1;
    gopt.max_toplevel_stmts = 8;
    const auto prog = lang::generate_program(gopt, gseed);
    auto topt = translate::TranslateOptions::schema2_optimized();
    topt.parallel_reads = true;
    const auto tx = core::compile(prog, topt);
    for (const std::uint64_t seed : {0ull, 3ull}) {
      MachineOptions mopt;
      mopt.loop_mode = LoopMode::kPipelined;
      mopt.scheduler_seed = seed;
      mopt.width = 3;
      check_equivalent(tx, mopt,
                       "gen seed=" + std::to_string(gseed) +
                           " sched=" + std::to_string(seed));
    }
  }
}

// ---- error-path identity: the parallel entry point must reproduce the
// serial engine's diagnostics exactly (it does so by delegating any
// failing run to a serial rerun; the cycle cap is produced directly).

NodeId add_start(Graph& g, std::vector<std::int64_t> values) {
  Node s;
  s.kind = OpKind::kStart;
  s.num_outputs = static_cast<std::uint16_t>(values.size());
  s.start_values = std::move(values);
  const NodeId n = g.add(std::move(s));
  g.set_start(n);
  return n;
}

NodeId add_end(Graph& g, std::uint16_t inputs) {
  Node e;
  e.kind = OpKind::kEnd;
  e.num_inputs = inputs;
  const NodeId n = g.add(std::move(e));
  g.set_end(n);
  return n;
}

void check_graph_equivalent(const Graph& g, std::size_t cells,
                            MachineOptions mopt,
                            const std::vector<IStructureRegion>& is,
                            const std::string& context) {
  mopt.host_threads = 0;
  const RunResult serial = run(g, cells, mopt, is);
  for (const unsigned threads : kThreadSweep) {
    mopt.host_threads = threads;
    const RunResult parallel = run(g, cells, mopt, is);
    expect_identical(serial, parallel,
                     context + " host_threads=" + std::to_string(threads));
  }
}

TEST(ParallelEquiv, DeadlockReportIsIdentical) {
  Graph g;
  const NodeId s = add_start(g, {0});
  const NodeId sy = g.add_synch(2, "starved");
  g.connect({s, 0}, {sy, 0}, true);
  const NodeId gate = g.add_gate("never");
  g.bind_literal({gate, 0}, 0);
  g.connect({sy, 0}, {gate, 1}, true);
  g.connect({gate, 0}, {sy, 1}, true);
  const NodeId e = add_end(g, 1);
  g.connect({sy, 0}, {e, 0}, true);
  check_graph_equivalent(g, 0, {}, {}, "deadlock");
}

TEST(ParallelEquiv, CollisionReportIsIdentical) {
  Graph g;
  const NodeId s = add_start(g, {1, 2});
  const NodeId sy = g.add_synch(2, "victim");
  g.connect({s, 0}, {sy, 0}, true);
  g.connect({s, 1}, {sy, 0}, true);
  const NodeId e = add_end(g, 1);
  g.connect({sy, 0}, {e, 0}, true);
  const NodeId gate = g.add_gate("idle");
  g.bind_literal({gate, 0}, 0);
  g.connect({sy, 0}, {gate, 1}, true);
  g.connect({gate, 0}, {sy, 1}, true);
  check_graph_equivalent(g, 0, {}, {}, "collision");
}

TEST(ParallelEquiv, DoubleWriteReportIsIdentical) {
  Graph g;
  const NodeId s = add_start(g, {0, 0});
  for (std::uint16_t i = 0; i < 2; ++i) {
    const NodeId istore = g.add_istore(0, 4, "w");
    g.bind_literal({istore, 0}, 9);
    g.bind_literal({istore, 1}, 1);
    g.connect({s, i}, {istore, 2}, true);
    if (i == 0) {
      const NodeId e = add_end(g, 1);
      g.connect({istore, 0}, {e, 0}, true);
    }
  }
  check_graph_equivalent(g, 4, {}, {{0, 4}}, "double-write");
}

TEST(ParallelEquiv, UnfiredStoreReportIsIdentical) {
  Graph g;
  const NodeId s = add_start(g, {0, 0});
  const NodeId st = g.add_store(0, "uncollected");
  g.bind_literal({st, 0}, 9);
  g.connect({s, 1}, {st, 1}, true);
  const NodeId sink = g.add_merge("sink");
  g.connect({st, 0}, {sink, 0}, true);
  const NodeId e = add_end(g, 1);
  g.connect({s, 0}, {e, 0}, true);
  check_graph_equivalent(g, 1, {}, {}, "unfired-store");
}

TEST(ParallelEquiv, CycleCapReportIsIdentical) {
  Graph g;
  const NodeId s = add_start(g, {0});
  const NodeId m = g.add_merge("spin");
  g.connect({s, 0}, {m, 0}, true);
  g.connect({m, 0}, {m, 0}, true);
  const NodeId never = g.add_gate("never");
  g.bind_literal({never, 0}, 0);
  g.connect({never, 0}, {never, 1}, true);
  const NodeId e = add_end(g, 1);
  g.connect({never, 0}, {e, 0}, true);
  MachineOptions o;
  o.budget.max_cycles = 500;
  o.record_profile = true;
  check_graph_equivalent(g, 0, o, {}, "cycle-cap");
}

TEST(ParallelEquiv, BenignLeftoverTokensAreIdentical) {
  Graph g;
  const NodeId s = add_start(g, {0, 0});
  const NodeId slow = g.add_gate("slow");
  g.bind_literal({slow, 0}, 1);
  g.connect({s, 1}, {slow, 1}, true);
  const NodeId sink = g.add_merge("sink");
  g.connect({slow, 0}, {sink, 0}, false);
  const NodeId e = add_end(g, 1);
  g.connect({s, 0}, {e, 0}, true);
  check_graph_equivalent(g, 0, {}, {}, "benign-leftover");
}

// ---- async work-stealing engine -------------------------------------
//
// The async engine's contract is weaker than the sync engine's
// bit-identity: final stores and the semantic counters (matches,
// contexts, memory traffic, integrity checks) match the serial engine,
// but schedule-derived metrics (cycles, peak_ready, first_fire_cycle,
// profile, stall counts) are its own. Two further carve-outs:
//
//  * When the serial run ends with leftover in-flight tokens, the async
//    engine — which drains to quiescence after End instead of stopping
//    at an instant — delivers (and may fire) dead chains the serial
//    engine never saw, so only the store is comparable.
//  * Under k-bounded pipelining or finite frame capacity the *number of
//    re-attempts* of a throttled forwarding is schedule-dependent, so
//    ops_fired / tokens_sent / fired_by_kind are excluded there too.

bool async_schedule_decoupled(const MachineOptions& m) {
  return (m.loop_bound > 0 && m.loop_mode == LoopMode::kPipelined) ||
         m.frame_capacity > 0;
}

void expect_async_equivalent(const RunResult& serial, const RunResult& as,
                             const MachineOptions& mopt,
                             const std::string& context) {
  if (!serial.stats.completed) {
    // A fault-free async error path delegates to a serial rerun, so the
    // whole result — diagnostics included — is identical.
    expect_identical(serial, as, context);
    return;
  }
  ASSERT_TRUE(as.stats.completed) << context << ": " << as.stats.error;
  EXPECT_EQ(serial.store.cells, as.store.cells) << context;
  if (serial.stats.leftover_tokens != 0) return;  // store-only
  EXPECT_EQ(serial.stats.matches, as.stats.matches) << context;
  EXPECT_EQ(serial.stats.contexts_allocated, as.stats.contexts_allocated)
      << context;
  EXPECT_EQ(serial.stats.mem_reads, as.stats.mem_reads) << context;
  EXPECT_EQ(serial.stats.mem_writes, as.stats.mem_writes) << context;
  EXPECT_EQ(serial.stats.integrity_checks, as.stats.integrity_checks)
      << context;
  if (!async_schedule_decoupled(mopt)) {
    EXPECT_EQ(serial.stats.ops_fired, as.stats.ops_fired) << context;
    EXPECT_EQ(serial.stats.tokens_sent, as.stats.tokens_sent) << context;
    EXPECT_EQ(serial.stats.fired_by_kind, as.stats.fired_by_kind) << context;
  }
}

/// Runs `tx` serially, then async at each swept thread count in both
/// disciplines, demanding the async contract above.
RunResult check_async_equivalent(const translate::Translation& tx,
                                 MachineOptions mopt,
                                 const std::string& context) {
  mopt.parallel = ParallelMode::kSync;
  mopt.host_threads = 0;
  const RunResult serial = core::execute(tx, mopt);
  mopt.parallel = ParallelMode::kAsync;
  for (const unsigned threads : kThreadSweep) {
    for (const bool det : {true, false}) {
      mopt.host_threads = threads;
      mopt.deterministic = det;
      const RunResult as = core::execute(tx, mopt);
      expect_async_equivalent(serial, as, mopt,
                              context + " async threads=" +
                                  std::to_string(threads) +
                                  (det ? " det" : " free"));
    }
  }
  return serial;
}

void async_sweep_program(const lang::Program& prog,
                         const translate::TranslateOptions& topt,
                         const std::string& context) {
  const auto tx = core::compile(prog, topt);
  for (const auto loop_mode : {LoopMode::kBarrier, LoopMode::kPipelined}) {
    for (const unsigned slack : {0u, 1u, 8u}) {
      MachineOptions mopt;
      mopt.loop_mode = loop_mode;
      mopt.slack = slack;
      mopt.mem_latency = slack == 1 ? 9 : 5;
      const auto res = check_async_equivalent(
          tx, mopt,
          context + " loop=" + to_string(loop_mode) +
              " slack=" + std::to_string(slack));
      EXPECT_TRUE(res.stats.completed) << context << ": " << res.stats.error;
    }
  }
}

TEST(AsyncEquiv, CorpusUnderOptimizedSchema) {
  for (const auto& np : lang::corpus::all())
    async_sweep_program(lang::parse_or_throw(np.source),
                        translate::TranslateOptions::schema2_optimized(),
                        np.name);
}

TEST(AsyncEquiv, CorpusUnderMemoryElimination) {
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  topt.parallel_reads = true;
  for (const auto& np : lang::corpus::all())
    async_sweep_program(lang::parse_or_throw(np.source), topt,
                        np.name + "/elim");
}

TEST(AsyncEquiv, IStructuresAndDeferredReads) {
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.istructure_arrays = {"x"};
  async_sweep_program(lang::corpus::array_loop(10), topt,
                      "array_loop_istruct");
}

TEST(AsyncEquiv, MultiPePlacementsAndNetworkLatency) {
  const auto tx =
      core::compile(lang::corpus::nested_loops_source(4, 5),
                    translate::TranslateOptions::schema2_optimized());
  for (const auto placement : {Placement::kByNode, Placement::kByContext}) {
    for (const unsigned processors : {1u, 3u, 16u}) {
      MachineOptions mopt;
      mopt.loop_mode = LoopMode::kPipelined;
      mopt.processors = processors;
      mopt.placement = placement;
      const auto res = check_async_equivalent(
          tx, mopt,
          std::string("async nested_loops pe=") + std::to_string(processors) +
              " placement=" + to_string(placement));
      EXPECT_TRUE(res.stats.completed) << res.stats.error;
    }
  }
}

TEST(AsyncEquiv, KBoundedLoopsAndFrameCapacity) {
  const auto tx =
      core::compile(lang::corpus::array_loop(16),
                    translate::TranslateOptions::schema2_optimized());
  for (const unsigned k : {1u, 2u, 4u}) {
    MachineOptions mopt;
    mopt.loop_mode = LoopMode::kPipelined;
    mopt.loop_bound = k;
    const auto res = check_async_equivalent(
        tx, mopt, "async array_loop k=" + std::to_string(k));
    EXPECT_TRUE(res.stats.completed) << res.stats.error;
  }
  for (const std::uint64_t cap : {2ull, 5ull}) {
    MachineOptions mopt;
    mopt.loop_mode = LoopMode::kPipelined;
    mopt.frame_capacity = cap;
    const auto res = check_async_equivalent(
        tx, mopt, "async array_loop cap=" + std::to_string(cap));
    EXPECT_TRUE(res.stats.completed) << res.stats.error;
  }
}

TEST(AsyncEquiv, IntegrityCheckedRuns) {
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  topt.parallel_reads = true;
  for (const auto& np : lang::corpus::all()) {
    const auto tx = core::compile(lang::parse_or_throw(np.source), topt);
    MachineOptions mopt;
    mopt.loop_mode = LoopMode::kPipelined;
    mopt.check = CheckMode::kIntegrity;
    const auto res =
        check_async_equivalent(tx, mopt, np.name + "/async-integrity");
    EXPECT_TRUE(res.stats.completed) << np.name << ": " << res.stats.error;
  }
}

TEST(AsyncEquiv, FaultedRunsConvergeToSerialStore) {
  // With fault injection the async engine reports directly (no serial
  // rerun) and recovery must still converge: when both engines
  // complete, the stores agree. Fault *decisions* key off different id
  // streams, so counters are not comparable.
  const auto tx =
      core::compile(lang::corpus::nested_loops_source(3, 4),
                    translate::TranslateOptions::schema2_optimized());
  for (const std::uint64_t fseed : {1ull, 2ull, 3ull}) {
    MachineOptions mopt;
    mopt.loop_mode = LoopMode::kPipelined;
    mopt.processors = 4;
    mopt.network_latency = 2;
    mopt.faults.seed = fseed;
    mopt.faults.drop = 0.05;
    mopt.faults.dup = 0.05;
    mopt.faults.jitter = 0.1;
    mopt.faults.nack = 0.05;
    mopt.host_threads = 0;
    const RunResult serial = core::execute(tx, mopt);
    mopt.parallel = ParallelMode::kAsync;
    for (const unsigned threads : kThreadSweep) {
      for (const bool det : {true, false}) {
        mopt.host_threads = threads;
        mopt.deterministic = det;
        const RunResult as = core::execute(tx, mopt);
        const std::string context = "faulted fseed=" + std::to_string(fseed) +
                                    " threads=" + std::to_string(threads) +
                                    (det ? " det" : " free");
        if (serial.stats.completed && as.stats.completed) {
          EXPECT_EQ(serial.store.cells, as.store.cells) << context;
        }
        if (as.stats.completed) {
          EXPECT_GT(as.stats.faults_injected, 0u) << context;
        }
      }
    }
  }
}

TEST(AsyncEquiv, DeterministicModeIsByteIdentical) {
  // Two runs with identical options must agree byte-for-byte on the
  // stats JSON (every counter, including the schedule-derived ones) and
  // the final store. Swept over thread counts and slack windows, with
  // faults and integrity checking engaged to cover the racy paths.
  const auto tx =
      core::compile(lang::corpus::nested_loops_source(4, 5),
                    translate::TranslateOptions::schema2_optimized());
  for (const unsigned threads : kThreadSweep) {
    for (const unsigned slack : {0u, 2u}) {
      MachineOptions mopt;
      mopt.loop_mode = LoopMode::kPipelined;
      mopt.parallel = ParallelMode::kAsync;
      mopt.host_threads = threads;
      mopt.slack = slack;
      mopt.processors = 4;
      mopt.check = CheckMode::kIntegrity;
      mopt.faults.seed = 7;
      mopt.faults.drop = 0.05;
      mopt.faults.jitter = 0.1;
      const RunResult a = core::execute(tx, mopt);
      const RunResult b = core::execute(tx, mopt);
      const std::string context = "det threads=" + std::to_string(threads) +
                                  " slack=" + std::to_string(slack);
      EXPECT_EQ(render_stats_json(a.stats, mopt),
                render_stats_json(b.stats, mopt))
          << context;
      EXPECT_EQ(a.store.cells, b.store.cells) << context;
    }
  }
}

TEST(AsyncEquiv, PerPeCountersAreCoherent) {
  const auto tx =
      core::compile(lang::corpus::nested_loops_source(4, 5),
                    translate::TranslateOptions::schema2_optimized());
  MachineOptions mopt;
  mopt.loop_mode = LoopMode::kPipelined;
  mopt.parallel = ParallelMode::kAsync;
  mopt.host_threads = 4;
  const RunResult r = core::execute(tx, mopt);
  ASSERT_TRUE(r.stats.completed) << r.stats.error;
  ASSERT_EQ(r.stats.per_pe.size(), 4u);
  std::uint64_t steals = 0, epochs = 0, idle = 0, exchanged = 0;
  for (const auto& pe : r.stats.per_pe) {
    steals += pe.steals;
    epochs += pe.epochs;
    idle += pe.idle_waits;
    exchanged += pe.tokens_exchanged;
  }
  EXPECT_EQ(steals, r.stats.steals);
  EXPECT_EQ(epochs, r.stats.epochs);
  EXPECT_EQ(idle, r.stats.idle_waits);
  EXPECT_EQ(exchanged, r.stats.tokens_exchanged);
  EXPECT_GT(r.stats.epochs, 0u);
  // Deterministic mode never steals (shards are pinned).
  EXPECT_EQ(r.stats.steals, 0u);
}

TEST(ParallelEquiv, HostThreadsOneUsesSerialPath) {
  // host_threads == 1 must behave exactly like 0 (serial legacy path).
  const auto tx = core::compile(lang::corpus::running_example(),
                                translate::TranslateOptions::schema2_optimized());
  MachineOptions mopt;
  mopt.host_threads = 0;
  const auto a = core::execute(tx, mopt);
  mopt.host_threads = 1;
  const auto b = core::execute(tx, mopt);
  expect_identical(a, b, "host_threads=1");
}

}  // namespace
}  // namespace ctdf::machine
