#include <gtest/gtest.h>

#include "cfg/build.hpp"
#include "cfg/dominance.hpp"
#include "lang/corpus.hpp"
#include "lang/generator.hpp"
#include "lang/parser.hpp"
#include "support/oracles.hpp"

namespace ctdf::cfg {
namespace {

Graph build(std::string_view src) {
  return build_cfg_or_throw(lang::parse_or_throw(src));
}

TEST(Postdominators, RootIsEnd) {
  const Graph g = build("var x; x := 1;");
  const DomTree pdom(g, DomDirection::kPostdom);
  EXPECT_EQ(pdom.root(), g.end());
  EXPECT_FALSE(pdom.idom(g.end()).valid());
}

TEST(Postdominators, EndPostdominatesEverything) {
  const Graph g = build_cfg_or_throw(lang::corpus::fig9());
  const DomTree pdom(g, DomDirection::kPostdom);
  for (NodeId n : g.all_nodes()) EXPECT_TRUE(pdom.dominates(g.end(), n));
}

TEST(Postdominators, ReflexiveAndAntisymmetric) {
  const Graph g = build_cfg_or_throw(lang::corpus::fig9());
  const DomTree pdom(g, DomDirection::kPostdom);
  for (NodeId a : g.all_nodes()) {
    EXPECT_TRUE(pdom.dominates(a, a));
    for (NodeId b : g.all_nodes()) {
      if (a != b && pdom.dominates(a, b)) {
        EXPECT_FALSE(pdom.dominates(b, a));
      }
    }
  }
}

TEST(Postdominators, DiamondJoinPostdominatesFork) {
  const Graph g = build("var x, w; if w { x := 1; } else { x := 2; }");
  const DomTree pdom(g, DomDirection::kPostdom);
  for (NodeId n : g.all_nodes()) {
    if (g.kind(n) != NodeKind::kFork) continue;
    const NodeId p = pdom.idom(n);
    // The fork's branches rejoin at its immediate postdominator.
    EXPECT_TRUE(g.kind(p) == NodeKind::kJoin || p == g.end());
  }
}

TEST(Dominators, StartDominatesEverything) {
  const Graph g = build_cfg_or_throw(lang::corpus::running_example());
  const DomTree dom(g, DomDirection::kForward);
  for (NodeId n : g.all_nodes()) EXPECT_TRUE(dom.dominates(g.start(), n));
}

TEST(Dominators, LoopHeaderDominatesBody) {
  const Graph g = build("var x; while x < 3 { x := x + 1; }");
  const DomTree dom(g, DomDirection::kForward);
  // Find the back edge u→v; v must dominate u.
  bool found = false;
  for (NodeId u : g.all_nodes()) {
    for (NodeId v : g.succs(u)) {
      if (dom.dominates(v, u) && v != u) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DomTree, BottomUpOrderIsChildrenFirst) {
  const Graph g = build_cfg_or_throw(lang::corpus::fig9());
  const DomTree pdom(g, DomDirection::kPostdom);
  std::vector<bool> seen(g.size(), false);
  for (NodeId n : pdom.bottom_up_order()) {
    for (NodeId c : pdom.children(n)) EXPECT_TRUE(seen[c.index()]);
    seen[n.index()] = true;
  }
  EXPECT_EQ(pdom.bottom_up_order().size(), g.size());
}

// Property: the efficient postdominator computation agrees with the
// brute-force removal-based oracle on random programs.
class PostdomOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PostdomOracle, MatchesNaive) {
  lang::GeneratorOptions opt;
  opt.allow_unstructured = true;
  opt.allow_irreducible = true;
  opt.max_toplevel_stmts = 8;
  const auto prog = lang::generate_program(opt, GetParam());
  const Graph g = build_cfg_or_throw(prog);
  const DomTree pdom(g, DomDirection::kPostdom);
  for (NodeId a : g.all_nodes()) {
    for (NodeId b : g.all_nodes()) {
      EXPECT_EQ(pdom.dominates(a, b), testing::naive_postdominates(g, a, b))
          << "pdom(" << a.value() << "," << b.value() << ") seed "
          << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PostdomOracle,
                         ::testing::Range<std::uint64_t>(0, 12));

// The immediate postdominator is the *closest* strict postdominator.
class IpdomMinimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IpdomMinimality, IpdomIsClosestStrictPostdominator) {
  lang::GeneratorOptions opt;
  opt.allow_unstructured = true;
  opt.max_toplevel_stmts = 8;
  const auto prog = lang::generate_program(opt, GetParam());
  const Graph g = build_cfg_or_throw(prog);
  const DomTree pdom(g, DomDirection::kPostdom);
  for (NodeId n : g.all_nodes()) {
    if (n == g.end()) continue;
    const NodeId ip = pdom.idom(n);
    EXPECT_TRUE(pdom.strictly_dominates(ip, n));
    // Every other strict postdominator of n also postdominates ip.
    for (NodeId m : g.all_nodes()) {
      if (m != n && pdom.strictly_dominates(m, n)) {
        EXPECT_TRUE(pdom.dominates(m, ip));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IpdomMinimality,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace ctdf::cfg
