#include <gtest/gtest.h>

#include "lang/corpus.hpp"
#include "lang/parser.hpp"

namespace ctdf::lang {
namespace {

Program ok(std::string_view src) {
  support::DiagnosticEngine d;
  Program p = parse(src, d);
  EXPECT_FALSE(d.has_errors()) << d.to_string();
  return p;
}

void expect_error(std::string_view src, std::string_view needle) {
  support::DiagnosticEngine d;
  (void)parse(src, d);
  ASSERT_TRUE(d.has_errors()) << "expected an error for: " << src;
  EXPECT_NE(d.to_string().find(needle), std::string::npos)
      << "diagnostics were: " << d.to_string();
}

TEST(Parser, Declarations) {
  const Program p = ok("var x, y; array a[10], b[3]; alias x y; bind x y;");
  EXPECT_EQ(p.symbols.size(), 4u);
  EXPECT_TRUE(p.symbols.is_array(*p.symbols.lookup("a")));
  EXPECT_EQ(p.symbols.info(*p.symbols.lookup("a")).array_size, 10);
  EXPECT_TRUE(p.symbols.may_alias(*p.symbols.lookup("x"),
                                  *p.symbols.lookup("y")));
  EXPECT_TRUE(p.symbols.same_storage(*p.symbols.lookup("x"),
                                     *p.symbols.lookup("y")));
}

TEST(Parser, ExpressionPrecedence) {
  const Program p = ok("var x, y; x := 1 + 2 * 3 < 4 && y == 5;");
  // ((1 + (2*3)) < 4) && (y == 5)
  const Stmt& s = *p.body.front();
  ASSERT_EQ(s.expr->kind, Expr::Kind::kBinary);
  EXPECT_EQ(s.expr->bop, BinOp::kAnd);
  EXPECT_EQ(s.expr->lhs->bop, BinOp::kLt);
  EXPECT_EQ(s.expr->lhs->lhs->bop, BinOp::kAdd);
  EXPECT_EQ(s.expr->lhs->lhs->rhs->bop, BinOp::kMul);
}

TEST(Parser, LeftAssociativity) {
  const Program p = ok("var x; x := 10 - 3 - 2;");
  const Expr& e = *p.body.front()->expr;
  // (10 - 3) - 2
  EXPECT_EQ(e.bop, BinOp::kSub);
  EXPECT_EQ(e.rhs->value, 2);
  EXPECT_EQ(e.lhs->bop, BinOp::kSub);
}

TEST(Parser, UnaryOperators) {
  const Program p = ok("var x; x := -x + !(x - 1);");
  EXPECT_EQ(p.body.front()->expr->lhs->kind, Expr::Kind::kUnary);
  EXPECT_EQ(p.body.front()->expr->lhs->uop, UnOp::kNeg);
  EXPECT_EQ(p.body.front()->expr->rhs->uop, UnOp::kNot);
}

TEST(Parser, StructuredStatements) {
  const Program p = ok(R"(
var x, w;
if w == 0 { x := 1; } else { x := 2; while x < 5 { x := x + 1; } }
)");
  ASSERT_EQ(p.body.size(), 1u);
  const Stmt& s = *p.body.front();
  EXPECT_EQ(s.kind, Stmt::Kind::kIf);
  EXPECT_EQ(s.then_body.size(), 1u);
  ASSERT_EQ(s.else_body.size(), 2u);
  EXPECT_EQ(s.else_body[1]->kind, Stmt::Kind::kWhile);
}

TEST(Parser, UnstructuredFlow) {
  const Program p = ok(R"(
var x;
l: x := x + 1;
if x < 5 then goto l else goto end;
)");
  EXPECT_EQ(p.body[0]->labels, std::vector<std::string>{"l"});
  EXPECT_EQ(p.body[1]->kind, Stmt::Kind::kCondGoto);
  EXPECT_EQ(p.body[1]->target_false, "end");
}

TEST(Parser, RejectsUndeclaredVariable) {
  expect_error("var x; x := y;", "undeclared variable 'y'");
}

TEST(Parser, RejectsRedeclaration) {
  expect_error("var x; var x;", "redeclaration");
}

TEST(Parser, RejectsUndefinedLabel) {
  expect_error("var x; goto nowhere;", "undefined label");
}

TEST(Parser, RejectsDuplicateLabel) {
  expect_error("var x; l: x := 1; l: x := 2;", "duplicate label");
}

TEST(Parser, RejectsReservedLabels) {
  expect_error("var x; end: x := 1;", "reserved");
}

TEST(Parser, RejectsNestedLabels) {
  expect_error("var x, w; if w { l: x := 1; }", "top level");
}

TEST(Parser, RejectsNestedGoto) {
  expect_error("var x, w; l: x := 1; if w { goto l; }", "top level");
}

TEST(Parser, RejectsArrayWithoutSubscript) {
  expect_error("array a[4]; var x; x := a;", "needs a subscript");
  expect_error("array a[4]; a := 1;", "needs a subscript");
}

TEST(Parser, RejectsSubscriptOnScalar) {
  expect_error("var x, y; x := y[0];", "not an array");
}

TEST(Parser, RejectsZeroSizeArray) {
  expect_error("array a[0];", "positive");
}

TEST(Parser, RejectsBindOfMismatchedKinds) {
  expect_error("var x; array a[3]; bind x a;", "different kind");
}

TEST(Parser, CorpusProgramsParse) {
  for (const auto& np : corpus::all()) {
    support::DiagnosticEngine d;
    (void)parse(np.source, d);
    EXPECT_FALSE(d.has_errors()) << np.name << ": " << d.to_string();
  }
}

TEST(Parser, PrettyPrintRoundTrip) {
  for (const auto& np : corpus::all()) {
    const Program p1 = ok(np.source);
    const std::string printed = p1.to_string();
    support::DiagnosticEngine d;
    const Program p2 = parse(printed, d);
    EXPECT_FALSE(d.has_errors())
        << np.name << " failed to reparse:\n" << printed << d.to_string();
    EXPECT_EQ(printed, p2.to_string()) << np.name;
  }
}

}  // namespace
}  // namespace ctdf::lang
