#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "dfg/passes.hpp"
#include "lang/corpus.hpp"

namespace ctdf::dfg {
namespace {

translate::Translation compile(std::string_view src,
                               bool post_optimize = false) {
  auto o = translate::TranslateOptions::schema2_optimized();
  o.post_optimize = post_optimize;
  return core::compile(lang::parse_or_throw(std::string(src)), o);
}

TEST(Passes, ConstantSwitchIsFolded) {
  const char* src = "var x; if 1 { x := 5; } else { x := 6; }";
  auto tx = compile(src);
  const auto before = compute_stats(tx.graph);
  ASSERT_GT(before.switches, 0u);
  const PassStats stats = optimize_graph(tx.graph);
  EXPECT_GT(stats.switches_folded, 0u);
  EXPECT_EQ(compute_stats(tx.graph).switches, 0u);
  EXPECT_TRUE(tx.graph.validate().empty());
}

TEST(Passes, UntakenBranchIsRemoved) {
  const char* src = "var x; if 0 { x := 5; } else { x := 6; }";
  auto tx = compile(src);
  const auto before = compute_stats(tx.graph);
  const PassStats stats = optimize_graph(tx.graph);
  // The then-branch store can never fire after folding and is removed.
  EXPECT_GT(stats.unfireable_removed, 0u);
  EXPECT_LT(compute_stats(tx.graph).stores, before.stores);
  EXPECT_TRUE(tx.graph.validate().empty());
}

TEST(Passes, FoldedProgramStillComputesCorrectly) {
  for (const char* src :
       {"var x; if 1 { x := 5; } else { x := 6; }",
        "var x; if 0 { x := 5; } else { x := 6; }",
        "var x, y; if 1 { if 0 { y := 1; } else { y := 2; } } x := y * 10;"}) {
    const auto prog = lang::parse_or_throw(src);
    const auto ref = lang::interpret(prog);
    auto o = translate::TranslateOptions::schema2_optimized();
    o.post_optimize = true;
    const auto tx = core::compile(prog, o);
    const auto res = core::execute(tx, {});
    ASSERT_TRUE(res.stats.completed) << src << ": " << res.stats.error;
    EXPECT_EQ(res.store.cells, ref.store.cells) << src;
  }
}

TEST(Passes, IdempotentOnCleanGraphs) {
  auto tx = compile(lang::corpus::running_example_source());
  (void)optimize_graph(tx.graph);
  const auto once = compute_stats(tx.graph);
  const PassStats again = optimize_graph(tx.graph);
  EXPECT_EQ(again.total_removed(), 0u);
  const auto twice = compute_stats(tx.graph);
  EXPECT_EQ(once.nodes, twice.nodes);
  EXPECT_EQ(once.arcs, twice.arcs);
}

TEST(Passes, PreservesValidityOnCorpus) {
  for (const auto& np : lang::corpus::all()) {
    for (const bool mem_elim : {false, true}) {
      auto o = translate::TranslateOptions::schema2_optimized();
      o.eliminate_memory = mem_elim;
      auto tx = core::compile(lang::parse_or_throw(np.source), o);
      (void)optimize_graph(tx.graph);
      EXPECT_TRUE(tx.graph.validate().empty()) << np.name;

      const auto prog = lang::parse_or_throw(np.source);
      const auto ref = lang::interpret(prog);
      const auto res = core::execute(tx, {});
      ASSERT_TRUE(res.stats.completed) << np.name << ": " << res.stats.error;
      EXPECT_EQ(res.store.cells, ref.store.cells) << np.name;
    }
  }
}

TEST(Passes, DeadValueChainsShrinkDrainTraffic) {
  // Under memory elimination the loop's dead y-value chain leaves
  // tokens draining at End; the passes cannot remove live loop wiring,
  // but they must never make things worse.
  auto o = translate::TranslateOptions::schema2_optimized();
  o.eliminate_memory = true;
  auto tx = core::compile(lang::corpus::running_example(), o);
  const auto before = compute_stats(tx.graph).nodes;
  (void)optimize_graph(tx.graph);
  EXPECT_LE(compute_stats(tx.graph).nodes, before);
  EXPECT_TRUE(tx.graph.validate().empty());
}

TEST(Compact, RemapsArcsAndEndpoints) {
  auto tx = compile("var x; x := 1; x := x + 1;");
  const std::size_t n = tx.graph.num_nodes();
  std::vector<bool> keep(n, true);
  const Graph g2 = compact(tx.graph, keep);
  EXPECT_EQ(g2.num_nodes(), n);
  EXPECT_EQ(g2.num_arcs(), tx.graph.num_arcs());
  EXPECT_TRUE(g2.validate().empty());
}

TEST(Passes, ConstantLoopExitPredicateFoldsTheDeadExit) {
  // Regression: a constant-predicate fork inside a loop makes one loop
  // exit unreachable; folding must remove the orphaned loop-exit node
  // (and its dead downstream) rather than leave unwired ports behind.
  const char* src = R"(
var s, k;
l: s := s + 1;
if 1 then goto cont else goto out;   // the 'out' exit is dead
cont:
k := k + 1;
if k < 4 then goto l else goto out;
out: s := s * 2;
)";
  const auto prog = lang::parse_or_throw(src);
  const auto ref = lang::interpret(prog);
  auto o = translate::TranslateOptions::schema2_optimized();
  o.post_optimize = true;
  const auto tx = core::compile(prog, o);
  EXPECT_TRUE(tx.graph.validate().empty());
  for (const auto mode :
       {machine::LoopMode::kBarrier, machine::LoopMode::kPipelined}) {
    machine::MachineOptions m;
    m.loop_mode = mode;
    const auto res = core::execute(tx, m);
    ASSERT_TRUE(res.stats.completed) << res.stats.error;
    EXPECT_EQ(res.store.cells, ref.store.cells);
  }
}

TEST(FanoutLowering, BoundsEveryOutPort) {
  auto o = translate::TranslateOptions::schema2_optimized();
  o.eliminate_memory = true;
  auto tx = core::compile(
      lang::parse_or_throw(lang::corpus::read_heavy_source(16)), o);
  ASSERT_GT(max_fanout(tx.graph), 2u);  // wide broadcasts exist
  const std::size_t inserted = lower_fanout(tx.graph, 2);
  EXPECT_GT(inserted, 0u);
  EXPECT_LE(max_fanout(tx.graph), 2u);
  EXPECT_TRUE(tx.graph.validate().empty());
}

TEST(FanoutLowering, NoOpWhenAlreadyBounded) {
  auto tx = compile("var x; x := 1;");
  const std::size_t before = tx.graph.num_nodes();
  const std::size_t cap = std::max<std::size_t>(2, max_fanout(tx.graph));
  EXPECT_EQ(lower_fanout(tx.graph, cap), 0u);
  EXPECT_EQ(tx.graph.num_nodes(), before);
}

TEST(FanoutLowering, LoweredGraphStillComputesCorrectly) {
  for (const auto& np : lang::corpus::all()) {
    const auto prog = lang::parse_or_throw(np.source);
    const auto ref = lang::interpret(prog);
    auto o = translate::TranslateOptions::schema2_optimized();
    o.max_fanout = 2;
    const auto tx = core::compile(prog, o);
    EXPECT_LE(max_fanout(tx.graph), 2u) << np.name;
    EXPECT_TRUE(tx.graph.validate().empty()) << np.name;
    const auto res = core::execute(tx, {});
    ASSERT_TRUE(res.stats.completed) << np.name << ": " << res.stats.error;
    EXPECT_EQ(res.store.cells, ref.store.cells) << np.name;
  }
}

TEST(PostOptimizeOption, ReportedInTranslation) {
  const char* src = "var x; if 1 { x := 5; } else { x := 6; }";
  const auto plain = compile(src, false);
  const auto opt = compile(src, true);
  EXPECT_EQ(plain.post_opt_removed, 0u);
  EXPECT_GT(opt.post_opt_removed, 0u);
  EXPECT_LT(opt.graph.num_nodes(), plain.graph.num_nodes());
}

}  // namespace
}  // namespace ctdf::dfg
