// Golden key-set regression for --stats-json: downstream consumers
// (scripts/bench_machine.py, CI parsers) key on exact field names, so
// adding, renaming, or reordering a field must be a deliberate act that
// updates this test. The keys are asserted in emission order for the
// options object, the typed error object, and the top level, on both a
// successful and a failing run.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "core/pipeline.hpp"
#include "core/progcache.hpp"
#include "lang/corpus.hpp"
#include "machine/report.hpp"

namespace ctdf::machine {
namespace {

/// Keys of a flat JSON object rendering, in order of appearance:
/// every `"name":` found between `from` and the object's closing
/// brace, skipping nested objects' contents when `top_level_only`.
std::vector<std::string> keys_of(const std::string& json, std::size_t from,
                                 bool top_level_only) {
  std::vector<std::string> keys;
  int depth = 0;
  for (std::size_t i = from; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth == 0) break;
    } else if (c == '"' && (depth == 1 || !top_level_only)) {
      const std::size_t end = json.find('"', i + 1);
      if (end == std::string::npos) break;
      if (json.compare(end + 1, 1, ":") == 0)
        keys.push_back(json.substr(i + 1, end - i - 1));
      i = end;
      // Skip the value: a string value would otherwise read as a key.
      std::size_t v = end + 2;
      while (v < json.size() && json[v] == ' ') ++v;
      if (v < json.size() && json[v] == '"') {
        i = json.find('"', v + 1);
        if (i == std::string::npos) break;
      } else if (top_level_only && v < json.size() && json[v] == '{') {
        int d = 0;
        for (; v < json.size(); ++v) {
          if (json[v] == '{') ++d;
          if (json[v] == '}' && --d == 0) break;
        }
        i = v;
      }
    }
  }
  return keys;
}

std::vector<std::string> object_keys(const std::string& json,
                                     const std::string& name) {
  const std::size_t at = json.find("\"" + name + "\": {");
  EXPECT_NE(at, std::string::npos) << name << " missing in:\n" << json;
  if (at == std::string::npos) return {};
  return keys_of(json, json.find('{', at), false);
}

const std::vector<std::string> kTopLevelKeys = {
    "options", "completed", "error", "error_string", "cycles", "ops_fired",
    "tokens_sent", "matches", "contexts_allocated", "mem_reads",
    "mem_writes", "peak_live_contexts", "throttle_stalls", "deferred_reads",
    "peak_ready", "leftover_tokens", "faults_injected", "retries",
    "nacks_seen", "duplicates_dropped", "watchdog_triggers",
    "backpressure_stalls", "integrity_checks", "steals", "epochs",
    "idle_waits", "tokens_exchanged", "per_pe", "avg_parallelism",
    "fired_by_kind"};

const std::vector<std::string> kOptionsKeys = {
    "engine", "check", "loop_mode", "width", "loop_bound", "processors",
    "placement", "network_latency", "alu_latency", "mem_latency",
    "host_threads", "parallel", "slack", "deterministic", "scheduler_seed",
    "frame_capacity", "max_cycles", "deadline_ms", "max_tokens",
    "fault_seed", "fault_drop", "fault_dup", "fault_jitter", "fault_nack"};

const std::vector<std::string> kErrorKeys = {"code", "message", "diagnosis"};

TEST(StatsJsonSchema, SuccessfulRunEmitsTheGoldenKeySet) {
  const auto tx = core::compile(
      lang::corpus::running_example_source(),
      translate::TranslateOptions::schema2_optimized());
  MachineOptions opt;
  opt.check = CheckMode::kIntegrity;
  const RunResult r = core::execute(tx, opt);
  ASSERT_TRUE(r.stats.completed) << r.stats.error;

  const std::string json = render_stats_json(r.stats, opt);
  EXPECT_EQ(keys_of(json, 0, true), kTopLevelKeys) << json;
  EXPECT_EQ(object_keys(json, "options"), kOptionsKeys) << json;
  EXPECT_EQ(object_keys(json, "error"), kErrorKeys) << json;
  EXPECT_NE(json.find("\"check\": \"integrity\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"code\": \"none\""), std::string::npos) << json;
}

TEST(StatsJsonSchema, FailedRunEmitsTheSameKeySetWithATypedError) {
  const auto tx = core::compile(
      lang::corpus::running_example_source(),
      translate::TranslateOptions::schema2_optimized());
  MachineOptions opt;
  opt.budget.max_cycles = 3;  // forces the cycle-cap failure
  const RunResult r = core::execute(tx, opt);
  ASSERT_FALSE(r.stats.completed);

  const std::string json = render_stats_json(r.stats, opt);
  EXPECT_EQ(keys_of(json, 0, true), kTopLevelKeys) << json;
  EXPECT_EQ(object_keys(json, "options"), kOptionsKeys) << json;
  EXPECT_EQ(object_keys(json, "error"), kErrorKeys) << json;
  EXPECT_NE(json.find("\"completed\": false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"code\": \"cycle-cap\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"check\": \"off\""), std::string::npos) << json;
}

TEST(StatsJsonSchema, AsyncRunEmitsTheSameKeySetWithPerPeCounters) {
  const auto tx = core::compile(
      lang::corpus::running_example_source(),
      translate::TranslateOptions::schema2_optimized());
  MachineOptions opt;
  opt.parallel = ParallelMode::kAsync;
  opt.host_threads = 2;
  const RunResult r = core::execute(tx, opt);
  ASSERT_TRUE(r.stats.completed) << r.stats.error;

  const std::string json = render_stats_json(r.stats, opt);
  EXPECT_EQ(keys_of(json, 0, true), kTopLevelKeys) << json;
  EXPECT_EQ(object_keys(json, "options"), kOptionsKeys) << json;
  EXPECT_NE(json.find("\"parallel\": \"async\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"deterministic\": true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"per_pe\": [{"), std::string::npos) << json;
}

/// The optimize stage's counters flow verbatim into `--stats-json`'s
/// pipeline object and into `--stage-stats`, so their names and order
/// are golden too. The fusion counters appear only when the fuse pass
/// is enabled, keeping cleanup-only traces stable.
TEST(StatsJsonSchema, OptimizeStageCountersAreTheGoldenSet) {
  const std::vector<std::string> kCleanupKeys = {
      "removed", "switches-folded", "merges-collapsed", "dead",
      "unfireable", "const-folded", "switch-elim", "synch-narrowed",
      "iterations", "max-loop-depth"};
  const std::vector<std::string> kFusionKeys = {
      "chains-fused", "fused-ops", "fused-len-2", "fused-len-3",
      "fused-len-4", "fused-len-5", "fused-len-6", "fused-len-7",
      "fused-len-8plus"};

  const auto counters_with = [](translate::TranslateOptions t) {
    t.post_optimize = true;
    const auto cr =
        core::Pipeline(core::PipelineOptions(t))
            .run(lang::corpus::running_example_source());
    std::vector<std::string> names;
    for (const auto& r : cr.trace.stages) {
      if (r.stage != translate::Stage::kOptimize) continue;
      for (const auto& [name, value] : r.counters) names.push_back(name);
    }
    return names;
  };

  EXPECT_EQ(counters_with(translate::TranslateOptions::schema2_optimized()),
            kCleanupKeys);

  auto fused = translate::TranslateOptions::schema2_optimized();
  fused.opt_passes = dfg::PassSet::all();
  std::vector<std::string> expected = kCleanupKeys;
  expected.insert(expected.end(), kFusionKeys.begin(), kFusionKeys.end());
  EXPECT_EQ(counters_with(fused), expected);
}

/// The cache object (`--stats-json`'s "cache" member and the serve
/// responses' "cache" member) is parsed by the same downstream
/// consumers, so its key set is golden too.
TEST(StatsJsonSchema, CacheObjectEmitsTheGoldenKeySet) {
  const std::vector<std::string> kCacheKeys = {
      "disposition", "key", "hits", "disk_hits", "misses",
      "evictions", "disk_rejects", "entries", "blob_bytes"};
  core::CacheStats stats;
  stats.hits = 2;
  stats.misses = 1;
  stats.entries = 1;
  stats.blob_bytes = 4096;
  const std::string json = core::render_cache_json(
      stats, core::CacheDisposition::kHitMemory, 0xabcdef0123456789ull);
  EXPECT_EQ(keys_of(json, 0, true), kCacheKeys) << json;
  EXPECT_NE(json.find("\"disposition\": \"hit-memory\""), std::string::npos);
  // Keys render as fixed-width hex: they double as disk blob filenames.
  EXPECT_NE(json.find("\"key\": \"abcdef0123456789\""), std::string::npos);
}

TEST(StatsJsonSchema, CacheDispositionSlugsAreGolden) {
  EXPECT_STREQ(core::to_string(core::CacheDisposition::kMiss), "miss");
  EXPECT_STREQ(core::to_string(core::CacheDisposition::kHitMemory),
               "hit-memory");
  EXPECT_STREQ(core::to_string(core::CacheDisposition::kHitDisk),
               "hit-disk");
}

TEST(StatsJsonSchema, BudgetCodesHaveStableSlugs) {
  EXPECT_STREQ(code_slug(ErrorCode::kDeadlineExceeded), "deadline-exceeded");
  EXPECT_STREQ(code_slug(ErrorCode::kTokenBudget), "token-budget");
}

TEST(StatsJsonSchema, EveryIntegrityCodeHasAStableSlug) {
  EXPECT_STREQ(code_slug(ErrorCode::kIntegrityDoubleWrite),
               "integrity/double-write");
  EXPECT_STREQ(code_slug(ErrorCode::kIntegrityReadEmpty),
               "integrity/read-empty");
  EXPECT_STREQ(code_slug(ErrorCode::kIntegrityMemRace),
               "integrity/mem-race");
  EXPECT_STREQ(code_slug(ErrorCode::kIntegrityOrphanResponse),
               "integrity/orphan-response");
}

}  // namespace
}  // namespace ctdf::machine
