// Properties of the random program generator itself: determinism,
// guaranteed termination, and printable/reparseable output.
#include <gtest/gtest.h>

#include "lang/generator.hpp"
#include "lang/interp.hpp"
#include "lang/parser.hpp"

namespace ctdf::lang {
namespace {

struct GenCase {
  const char* name;
  GeneratorOptions opt;
};

GeneratorOptions structured() { return {}; }
GeneratorOptions unstructured() {
  GeneratorOptions o;
  o.allow_unstructured = true;
  return o;
}
GeneratorOptions everything() {
  GeneratorOptions o;
  o.allow_unstructured = true;
  o.allow_irreducible = true;
  o.allow_aliasing = true;
  o.num_arrays = 2;
  return o;
}

class GeneratorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorProperty, TerminatesAndRoundTrips) {
  for (const GenCase& c : {GenCase{"structured", structured()},
                           GenCase{"unstructured", unstructured()},
                           GenCase{"everything", everything()}}) {
    const Program p = generate_program(c.opt, GetParam());
    const InterpResult r = interpret(p, 500'000);
    ASSERT_TRUE(r.completed)
        << c.name << " seed " << GetParam() << " did not terminate:\n"
        << p.to_string();

    // Printed form reparses to an equivalent program.
    const std::string src = p.to_string();
    support::DiagnosticEngine d;
    const Program p2 = parse(src, d);
    ASSERT_FALSE(d.has_errors()) << c.name << "\n" << src << d.to_string();
    const InterpResult r2 = interpret(p2, 500'000);
    ASSERT_TRUE(r2.completed);
    EXPECT_EQ(r.store.cells, r2.store.cells)
        << c.name << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty,
                         ::testing::Range<std::uint64_t>(0, 40));

TEST(Generator, DeterministicInSeed) {
  const GeneratorOptions o = everything();
  const Program a = generate_program(o, 1234);
  const Program b = generate_program(o, 1234);
  EXPECT_EQ(a.to_string(), b.to_string());
}

TEST(Generator, DifferentSeedsDiffer) {
  const GeneratorOptions o = everything();
  const Program a = generate_program(o, 1);
  const Program b = generate_program(o, 2);
  EXPECT_NE(a.to_string(), b.to_string());
}

TEST(Generator, RespectsFeatureFlags) {
  GeneratorOptions o;  // defaults: structured only, no arrays, no aliasing
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Program p = generate_program(o, seed);
    const std::string src = p.to_string();
    EXPECT_EQ(src.find("goto"), std::string::npos) << src;
    EXPECT_EQ(src.find("array"), std::string::npos) << src;
    EXPECT_EQ(src.find("alias"), std::string::npos) << src;
  }
}

TEST(Generator, AliasingActuallyAppears) {
  GeneratorOptions o;
  o.allow_aliasing = true;
  int with_alias = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const Program p = generate_program(o, seed);
    if (p.symbols.has_aliasing()) ++with_alias;
  }
  EXPECT_GT(with_alias, 5);
}

}  // namespace
}  // namespace ctdf::lang
