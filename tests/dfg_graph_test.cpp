#include <gtest/gtest.h>

#include "dfg/graph.hpp"

namespace ctdf::dfg {
namespace {

/// A minimal valid graph: start --(value)--> store --> end.
Graph tiny() {
  Graph g;
  Node s;
  s.kind = OpKind::kStart;
  s.num_outputs = 1;
  s.start_values = {0};
  const NodeId sn = g.add(std::move(s));
  g.set_start(sn);

  const NodeId st = g.add_store(0, "x");
  g.bind_literal({st, 0}, 42);
  g.connect({sn, 0}, {st, 1}, true);

  Node e;
  e.kind = OpKind::kEnd;
  e.num_inputs = 1;
  const NodeId en = g.add(std::move(e));
  g.set_end(en);
  g.connect({st, 0}, {en, 0}, true);
  return g;
}

TEST(DfgGraph, TinyGraphValidates) {
  const Graph g = tiny();
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_arcs(), 2u);
}

TEST(DfgGraph, ValidateCatchesUnwiredInput) {
  Graph g = tiny();
  (void)g.add_binop(lang::BinOp::kAdd, "dangling");
  const auto problems = g.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("unwired"), std::string::npos);
}

TEST(DfgGraph, ValidateCatchesMissingStart) {
  Graph g;
  Node e;
  e.kind = OpKind::kEnd;
  g.set_end(g.add(std::move(e)));
  EXPECT_FALSE(g.validate().empty());
}

TEST(DfgGraph, ValidateCatchesStartValueMismatch) {
  Graph g = tiny();
  g.node(g.start()).start_values.clear();
  EXPECT_FALSE(g.validate().empty());
}

TEST(DfgGraph, LiteralPortsNeedNoArc) {
  const Graph g = tiny();  // store value port is literal-bound
  EXPECT_TRUE(g.validate().empty());
}

TEST(DfgGraph, OperatorArities) {
  Graph g;
  EXPECT_EQ(g.node(g.add_switch()).num_inputs, 2);
  EXPECT_EQ(g.node(g.add_switch()).num_outputs, 2);
  EXPECT_EQ(g.node(g.add_merge()).num_inputs, 1);
  EXPECT_EQ(g.node(g.add_synch(5)).num_inputs, 5);
  EXPECT_EQ(g.node(g.add_load(0)).num_outputs, 2);
  EXPECT_EQ(g.node(g.add_store(0)).num_inputs, 2);
  EXPECT_EQ(g.node(g.add_store_idx(0, 4)).num_inputs, 3);
  EXPECT_EQ(g.node(g.add_istore(0, 4)).num_inputs, 3);
  EXPECT_EQ(g.node(g.add_ifetch(0, 4)).num_inputs, 2);
  EXPECT_EQ(g.node(g.add_gate()).num_inputs, 2);
  EXPECT_EQ(g.node(g.add_loop_entry(cfg::LoopId{0u}, 3)).num_inputs, 3);
  EXPECT_EQ(g.node(g.add_loop_entry(cfg::LoopId{0u}, 3)).num_outputs, 3);
}

TEST(DfgGraph, FanInCount) {
  Graph g = tiny();
  const NodeId m = g.add_merge();
  g.connect({g.start(), 0}, {m, 0}, true);
  g.connect({g.start(), 0}, {m, 0}, true);
  EXPECT_EQ(g.fan_in({m, 0}), 2u);
}

TEST(DfgGraph, StatsCountKinds) {
  Graph g = tiny();
  (void)g.add_switch();
  (void)g.add_switch();
  (void)g.add_merge();
  (void)g.add_synch(2);
  (void)g.add_load(0);
  const GraphStats s = compute_stats(g);
  EXPECT_EQ(s.switches, 2u);
  EXPECT_EQ(s.merges, 1u);
  EXPECT_EQ(s.synchs, 1u);
  EXPECT_EQ(s.loads, 1u);
  EXPECT_EQ(s.stores, 1u);
  EXPECT_EQ(s.dummy_arcs, 2u);
}

TEST(DfgGraph, DotRendersDummyArcsDotted) {
  const Graph g = tiny();
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("style=dotted"), std::string::npos);
  EXPECT_NE(dot.find("digraph dfg"), std::string::npos);
}

}  // namespace
}  // namespace ctdf::dfg
