// Behavioral tests for the Section 6 transformations: they must both
// preserve semantics AND deliver their promised performance effect on
// the simulated machine.
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "lang/corpus.hpp"
#include "lang/parser.hpp"

namespace ctdf::translate {
namespace {

struct Exec {
  machine::RunStats stats;
  lang::Store store;
};

Exec exec(const lang::Program& prog, const TranslateOptions& topt,
        machine::MachineOptions mopt = {}) {
  const auto tx = core::compile(prog, topt);
  auto res = core::execute(tx, mopt);
  EXPECT_TRUE(res.stats.completed) << topt.describe() << ": "
                                   << res.stats.error;
  return {std::move(res.stats), std::move(res.store)};
}

machine::MachineOptions slow_memory() {
  machine::MachineOptions m;
  m.mem_latency = 20;
  return m;
}

TEST(MemElim, RemovesAllScalarMemoryTraffic) {
  const auto prog = lang::corpus::running_example();
  auto topt = TranslateOptions::schema2_optimized();
  const Exec base = exec(prog, topt, slow_memory());
  topt.eliminate_memory = true;
  const Exec elim = exec(prog, topt, slow_memory());

  // Loop iterations no longer round-trip through split-phase memory:
  // only the two final writebacks remain.
  EXPECT_EQ(elim.stats.mem_writes, 2u);
  EXPECT_EQ(elim.stats.mem_reads, 0u);
  EXPECT_GT(base.stats.mem_reads, 5u);
  EXPECT_LT(elim.stats.cycles, base.stats.cycles / 2);
  EXPECT_EQ(elim.store.cells, base.store.cells);
}

TEST(MemElim, AliasedVariablesKeepTheirMemoryOps) {
  const auto prog = lang::corpus::fortran_alias();
  auto topt = TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  const Exec r = exec(prog, topt);
  // x, y, z are all aliased — nothing is eliminable.
  EXPECT_GT(r.stats.mem_reads, 0u);
  EXPECT_GT(r.stats.mem_writes, 3u);
}

TEST(ParallelReads, OverlapsLoadsSharingAnAccessToken) {
  // The transform targets reads that contend for the SAME access token.
  // Under the unified cover one statement reading 12 scalars chains 12
  // load round-trips; replicate-and-collect pays ~1.
  const auto prog =
      lang::parse_or_throw(lang::corpus::read_heavy_source(12));
  auto topt = TranslateOptions::schema3(CoverStrategy::kUnified);
  const Exec chained = exec(prog, topt, slow_memory());
  topt.parallel_reads = true;
  const Exec parallel = exec(prog, topt, slow_memory());
  EXPECT_EQ(parallel.store.cells, chained.store.cells);
  // The 12 initializing stores still serialize under the unified cover;
  // the read phase collapses from 12 round-trips to ~1 — at least 8
  // round-trips (of 20 cycles each) must disappear.
  EXPECT_LT(parallel.stats.cycles + 8 * 20, chained.stats.cycles);
}

TEST(ParallelReads, AliasedScalarReadsOverlapToo) {
  // Section 6.2's point: reads commute even for potentially aliased
  // variables — their access sets overlap on z, yet loads may all
  // proceed at once.
  const auto prog = lang::parse_or_throw(R"(
var x, y, z, s;
alias x z; alias y z;
x := 3; y := 4; z := 5;
s := x + y + z;
)");
  auto topt = TranslateOptions::schema3(CoverStrategy::kSingleton);
  const Exec chained = exec(prog, topt, slow_memory());
  topt.parallel_reads = true;
  const Exec parallel = exec(prog, topt, slow_memory());
  EXPECT_EQ(parallel.store.cells, chained.store.cells);
  EXPECT_LT(parallel.stats.cycles, chained.stats.cycles);
}

TEST(ParallelReads, NoEffectWithoutSharedResources) {
  // Reads of distinct unaliased variables already proceed in parallel
  // under Schema 2 — the transform must not slow anything down.
  const auto prog = lang::parse_or_throw(
      "var a, b, c, s; a := 1; b := 2; c := 3; s := a + b + c;");
  auto topt = TranslateOptions::schema2();
  const Exec base = exec(prog, topt, slow_memory());
  topt.parallel_reads = true;
  const Exec par = exec(prog, topt, slow_memory());
  EXPECT_EQ(par.store.cells, base.store.cells);
  EXPECT_LE(par.stats.cycles, base.stats.cycles + 2);
}

TEST(Fig14, OverlapsLoopStores) {
  const auto prog = lang::corpus::array_loop(16);
  machine::MachineOptions m = slow_memory();
  m.loop_mode = machine::LoopMode::kPipelined;

  auto topt = TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;  // isolate the array-store effect
  const Exec base = exec(prog, topt, m);
  topt.parallel_store_arrays = {"x"};
  const Exec fig14 = exec(prog, topt, m);

  EXPECT_EQ(fig14.store.cells, base.store.cells);
  // Stores overlap across iterations: the store latency is paid once
  // (pipelined), not once per iteration.
  EXPECT_LT(fig14.stats.cycles + 3 * 20, base.stats.cycles);
}

TEST(Fig14, BarrierLoopControlNeutralizesTheTransform) {
  // A finding this reproduction surfaces: under *barrier* loop control
  // the loop entry collects the completion chain before starting the
  // next iteration, re-serializing exactly what Fig. 14 decouples. The
  // transform is sound but performance-neutral there; it needs
  // pipelined loop entry to pay off (previous test).
  const auto prog = lang::corpus::array_loop(16);
  auto topt = TranslateOptions::schema2_optimized();
  const Exec base = exec(prog, topt, slow_memory());
  topt.parallel_store_arrays = {"x"};
  const Exec fig14 = exec(prog, topt, slow_memory());
  EXPECT_EQ(fig14.store.cells, base.store.cells);
  // Within a couple of cycles either way.
  EXPECT_LT(fig14.stats.cycles, base.stats.cycles + 8);
  EXPECT_GT(fig14.stats.cycles + 8, base.stats.cycles);
}

TEST(IStructures, ProducerConsumerOverlaps) {
  // A write loop followed by a read loop: with I-structures the reads
  // can defer instead of waiting for the full access-token handoff.
  const auto prog = lang::parse_or_throw(R"(
var i, j, s;
array a[24];
l1: i := i + 1; a[i] := i * 3; if i < 20 then goto l1 else goto l2;
l2: j := j + 1; s := s + a[j]; if j < 20 then goto l2 else goto end;
)");
  machine::MachineOptions m = slow_memory();
  m.loop_mode = machine::LoopMode::kPipelined;

  auto topt = TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  const Exec base = exec(prog, topt, m);
  topt.istructure_arrays = {"a"};
  const Exec istr = exec(prog, topt, m);
  EXPECT_EQ(istr.store.cells, base.store.cells);
  EXPECT_LT(istr.stats.cycles, base.stats.cycles);
}

TEST(IStructures, WrongWriteOnceAssertionIsTrapped) {
  // The array is written twice at the same index — the machine must
  // trap rather than silently miscompute.
  const auto prog = lang::parse_or_throw(
      "var i; array a[4]; a[1] := 5; a[1] := 6;");
  auto topt = TranslateOptions::schema2_optimized();
  topt.istructure_arrays = {"a"};
  const auto tx = core::compile(prog, topt);
  const auto res = core::execute(tx, {});
  EXPECT_FALSE(res.stats.completed);
  EXPECT_NE(res.stats.error.find("double write"), std::string::npos);
}

TEST(Transforms, ComposeAllTogether) {
  const auto prog = lang::corpus::array_loop(12);
  const auto ref = lang::interpret(prog);
  ASSERT_TRUE(ref.completed);
  auto topt = TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  topt.parallel_reads = true;
  topt.parallel_store_arrays = {"x"};
  machine::MachineOptions m;
  m.loop_mode = machine::LoopMode::kPipelined;
  const Exec r = exec(prog, topt, m);
  EXPECT_EQ(r.store.cells, ref.store.cells);
}

TEST(LoopModes, PipelinedNeverSlowerOnLoops) {
  for (const auto& np : lang::corpus::all()) {
    const auto prog = lang::parse_or_throw(np.source);
    auto topt = TranslateOptions::schema2_optimized();
    machine::MachineOptions mb, mp;
    mb.loop_mode = machine::LoopMode::kBarrier;
    mp.loop_mode = machine::LoopMode::kPipelined;
    const Exec b = exec(prog, topt, mb);
    const Exec p = exec(prog, topt, mp);
    EXPECT_EQ(b.store.cells, p.store.cells) << np.name;
    EXPECT_LE(p.stats.cycles, b.stats.cycles + 2) << np.name;
  }
}

}  // namespace
}  // namespace ctdf::translate
