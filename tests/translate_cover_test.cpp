#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "translate/cover.hpp"

namespace ctdf::translate {
namespace {

// The paper's Section 5 example: SUBROUTINE F(X,Y,Z) called as F(A,B,A)
// and F(C,D,D): [X]={X,Z}, [Y]={Y,Z}, [Z]={X,Y,Z}.
lang::Program paper_aliases() {
  return lang::parse_or_throw("var x, y, z; alias x z; alias y z;");
}

TEST(Cover, AliasClassesMatchPaperExample) {
  const auto p = paper_aliases();
  const auto x = *p.symbols.lookup("x");
  const auto y = *p.symbols.lookup("y");
  const auto z = *p.symbols.lookup("z");
  EXPECT_EQ(p.symbols.alias_class(x).size(), 2u);
  EXPECT_EQ(p.symbols.alias_class(y).size(), 2u);
  EXPECT_EQ(p.symbols.alias_class(z).size(), 3u);
  EXPECT_TRUE(p.symbols.may_alias(x, z));
  EXPECT_TRUE(p.symbols.may_alias(y, z));
  // The relation is NOT transitive: x and y are not aliased.
  EXPECT_FALSE(p.symbols.may_alias(x, y));
}

TEST(Cover, SingletonAccessSetsCollectAliasClasses) {
  const auto p = paper_aliases();
  const Cover c = Cover::make(p.symbols, CoverStrategy::kSingleton);
  ASSERT_EQ(c.size(), 3u);
  // Ops on x collect {x,z}'s tokens (2), on y collect 2, on z collect 3
  // — exactly the paper's counts.
  EXPECT_EQ(c.access_set(*p.symbols.lookup("x")).size(), 2u);
  EXPECT_EQ(c.access_set(*p.symbols.lookup("y")).size(), 2u);
  EXPECT_EQ(c.access_set(*p.symbols.lookup("z")).size(), 3u);
}

TEST(Cover, UnifiedHasOneElementAndOneTokenPerOp) {
  const auto p = paper_aliases();
  const Cover c = Cover::make(p.symbols, CoverStrategy::kUnified);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.element(0).size(), 3u);
  for (auto v : p.symbols.all_vars())
    EXPECT_EQ(c.access_set(v).size(), 1u);
}

TEST(Cover, AliasClassCoverDeduplicates) {
  const auto p = paper_aliases();
  const Cover c = Cover::make(p.symbols, CoverStrategy::kAliasClass);
  // Classes: {x,z}, {y,z}, {x,y,z} — all distinct here.
  EXPECT_EQ(c.size(), 3u);
  const auto p2 = lang::parse_or_throw("var a, b; alias a b;");
  const Cover c2 = Cover::make(p2.symbols, CoverStrategy::kAliasClass);
  // [a] == [b] == {a,b}: one element.
  EXPECT_EQ(c2.size(), 1u);
}

TEST(Cover, NoAliasingSingletonIsIdentity) {
  const auto p = lang::parse_or_throw("var a, b, c;");
  const Cover c = Cover::make(p.symbols, CoverStrategy::kSingleton);
  EXPECT_EQ(c.size(), 3u);
  for (auto v : p.symbols.all_vars()) {
    ASSERT_EQ(c.access_set(v).size(), 1u);
    EXPECT_EQ(c.singleton_var(c.access_set(v).front()), v);
  }
}

TEST(Cover, EliminabilityRequiresUnaliasedSingletonScalar) {
  const auto p =
      lang::parse_or_throw("var a, b, c; array d[4]; alias a b;");
  const Cover c = Cover::make(p.symbols, CoverStrategy::kSingleton);
  const auto res_of = [&](const char* n) {
    return c.access_set(*p.symbols.lookup(n)).front();
  };
  EXPECT_FALSE(c.eliminable(res_of("a"), p.symbols));  // aliased
  EXPECT_FALSE(c.eliminable(res_of("b"), p.symbols));  // aliased
  EXPECT_TRUE(c.eliminable(res_of("c"), p.symbols));
  EXPECT_FALSE(c.eliminable(res_of("d"), p.symbols));  // array
}

TEST(Cover, AccessSetUnion) {
  const auto p = paper_aliases();
  const Cover c = Cover::make(p.symbols, CoverStrategy::kSingleton);
  const auto u = c.access_set_union(
      {*p.symbols.lookup("x"), *p.symbols.lookup("y")});
  EXPECT_EQ(u.size(), 3u);  // {x,z} ∪ {y,z}
}

TEST(Cover, ComponentCoverHasSingletonAccessSets) {
  // {x,z},{y,z} form one component; u is alone. No access-set synch
  // trees are ever needed under the component cover.
  const auto p = lang::parse_or_throw(
      "var x, y, z, u; alias x z; alias y z;");
  const Cover c = Cover::make(p.symbols, CoverStrategy::kComponent);
  ASSERT_EQ(c.size(), 2u);
  for (auto v : p.symbols.all_vars())
    EXPECT_EQ(c.access_set(v).size(), 1u) << p.symbols.name(v);
  // u's element is just {u}; the aliased trio shares one element.
  EXPECT_EQ(c.access_set(*p.symbols.lookup("x")),
            c.access_set(*p.symbols.lookup("y")));
  EXPECT_NE(c.access_set(*p.symbols.lookup("u")),
            c.access_set(*p.symbols.lookup("x")));
}

TEST(Cover, ComponentEqualsSingletonWithoutAliasing) {
  const auto p = lang::parse_or_throw("var a, b, c;");
  const Cover c = Cover::make(p.symbols, CoverStrategy::kComponent);
  EXPECT_EQ(c.size(), 3u);
}

TEST(Cover, EveryVariableIsCovered) {
  const auto p = lang::parse_or_throw(
      "var a, b, c, d; alias a b; alias b c; bind a b;");
  for (const auto strat : {CoverStrategy::kSingleton,
                           CoverStrategy::kAliasClass,
                           CoverStrategy::kComponent,
                           CoverStrategy::kUnified}) {
    const Cover c = Cover::make(p.symbols, strat);
    for (auto v : p.symbols.all_vars())
      EXPECT_FALSE(c.access_set(v).empty()) << to_string(strat);
  }
}

TEST(Cover, NamesAreReadable) {
  const auto p = paper_aliases();
  const Cover c = Cover::make(p.symbols, CoverStrategy::kUnified);
  EXPECT_EQ(c.name(0, p.symbols), "{x,y,z}");
}

}  // namespace
}  // namespace ctdf::translate
