// Direct machine tests on hand-built dataflow graphs: operator
// semantics, split-phase timing, deadlock/collision detection,
// I-structures, and loop-context mechanics.
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "dfg/graph.hpp"
#include "lang/corpus.hpp"
#include "machine/machine.hpp"
#include "machine/report.hpp"

namespace ctdf::machine {
namespace {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;

NodeId add_start(Graph& g, std::vector<std::int64_t> values) {
  Node s;
  s.kind = OpKind::kStart;
  s.num_outputs = static_cast<std::uint16_t>(values.size());
  s.start_values = std::move(values);
  const NodeId n = g.add(std::move(s));
  g.set_start(n);
  return n;
}

NodeId add_end(Graph& g, std::uint16_t inputs) {
  Node e;
  e.kind = OpKind::kEnd;
  e.num_inputs = inputs;
  const NodeId n = g.add(std::move(e));
  g.set_end(n);
  return n;
}

TEST(Machine, StoreThenLoad) {
  Graph g;
  const NodeId s = add_start(g, {0});
  const NodeId st = g.add_store(3, "st");
  g.bind_literal({st, 0}, 77);
  g.connect({s, 0}, {st, 1}, true);
  const NodeId ld = g.add_load(3, "ld");
  g.connect({st, 0}, {ld, 0}, true);
  const NodeId st2 = g.add_store(4, "st2");
  g.connect({ld, dfg::port::kLoadValue}, {st2, 0}, false);
  g.connect({ld, dfg::port::kLoadAck}, {st2, 1}, true);
  const NodeId e = add_end(g, 1);
  g.connect({st2, 0}, {e, 0}, true);
  ASSERT_TRUE(g.validate().empty());

  const RunResult r = run(g, 5, {});
  ASSERT_TRUE(r.stats.completed) << r.stats.error;
  EXPECT_EQ(r.store.cells[3], 77);
  EXPECT_EQ(r.store.cells[4], 77);
  EXPECT_EQ(r.stats.mem_reads, 1u);
  EXPECT_EQ(r.stats.mem_writes, 2u);
}

TEST(Machine, AluEvaluation) {
  Graph g;
  const NodeId s = add_start(g, {5});
  const NodeId mul = g.add_binop(lang::BinOp::kMul);
  g.connect({s, 0}, {mul, 0}, false);
  g.bind_literal({mul, 1}, 6);
  const NodeId neg = g.add_unop(lang::UnOp::kNeg);
  g.connect({mul, 0}, {neg, 0}, false);
  const NodeId st = g.add_store(0, "out");
  g.connect({neg, 0}, {st, 0}, false);
  g.connect({neg, 0}, {st, 1}, false);
  const NodeId e = add_end(g, 1);
  g.connect({st, 0}, {e, 0}, true);

  const RunResult r = run(g, 1, {});
  ASSERT_TRUE(r.stats.completed) << r.stats.error;
  EXPECT_EQ(r.store.cells[0], -30);
}

TEST(Machine, SwitchRoutesByPredicate) {
  for (const std::int64_t pred : {0, 1}) {
    Graph g;
    const NodeId s = add_start(g, {9});
    const NodeId sw = g.add_switch();
    g.connect({s, 0}, {sw, dfg::port::kSwitchData}, false);
    g.bind_literal({sw, dfg::port::kSwitchPred}, pred);
    const NodeId st_t = g.add_store(0, "t");
    const NodeId st_f = g.add_store(1, "f");
    g.connect({sw, dfg::port::kSwitchTrue}, {st_t, 0}, false);
    g.connect({sw, dfg::port::kSwitchTrue}, {st_t, 1}, false);
    g.connect({sw, dfg::port::kSwitchFalse}, {st_f, 0}, false);
    g.connect({sw, dfg::port::kSwitchFalse}, {st_f, 1}, false);
    const NodeId e = add_end(g, 1);
    g.connect({st_t, 0}, {e, 0}, true);
    g.connect({st_f, 0}, {e, 0}, true);

    const RunResult r = run(g, 2, {});
    ASSERT_TRUE(r.stats.completed) << r.stats.error;
    EXPECT_EQ(r.store.cells[pred ? 0 : 1], 9);
    EXPECT_EQ(r.store.cells[pred ? 1 : 0], 0);
  }
}

TEST(Machine, SynchWaitsForAllInputs) {
  Graph g;
  const NodeId s = add_start(g, {0, 0, 0});
  const NodeId sy = g.add_synch(3);
  for (std::uint16_t i = 0; i < 3; ++i) g.connect({s, i}, {sy, i}, true);
  const NodeId e = add_end(g, 1);
  g.connect({sy, 0}, {e, 0}, true);
  const RunResult r = run(g, 0, {});
  ASSERT_TRUE(r.stats.completed);
  // 3 tokens rendezvous at the synch, plus its output matching at end.
  EXPECT_EQ(r.stats.matches, 4u);
  // The synch fired exactly once.
  EXPECT_EQ(r.stats.fired_by_kind[static_cast<std::size_t>(OpKind::kSynch)],
            1u);
}

TEST(Machine, GatePassesValueOnTrigger) {
  Graph g;
  const NodeId s = add_start(g, {0});
  const NodeId gate = g.add_gate();
  g.bind_literal({gate, 0}, 123);
  g.connect({s, 0}, {gate, 1}, true);
  const NodeId st = g.add_store(0, "x");
  g.connect({gate, 0}, {st, 0}, false);
  g.connect({gate, 0}, {st, 1}, false);
  const NodeId e = add_end(g, 1);
  g.connect({st, 0}, {e, 0}, true);
  const RunResult r = run(g, 1, {});
  ASSERT_TRUE(r.stats.completed);
  EXPECT_EQ(r.store.cells[0], 123);
}

TEST(Machine, MemLatencyShapesCycleCount) {
  const auto cycles_with = [](unsigned lat) {
    Graph g;
    const NodeId s = add_start(g, {0});
    const NodeId st = g.add_store(0, "x");
    g.bind_literal({st, 0}, 1);
    g.connect({s, 0}, {st, 1}, true);
    const NodeId e = add_end(g, 1);
    g.connect({st, 0}, {e, 0}, true);
    MachineOptions o;
    o.mem_latency = lat;
    const RunResult r = run(g, 1, o);
    EXPECT_TRUE(r.stats.completed);
    return r.stats.cycles;
  };
  EXPECT_GT(cycles_with(50), cycles_with(1) + 40);
}

TEST(Machine, WidthOneSerializesIndependentOps) {
  const auto run_width = [](unsigned width) {
    Graph g;
    const NodeId s = add_start(g, {0, 0, 0, 0});
    const NodeId sy = g.add_synch(4);
    for (std::uint16_t i = 0; i < 4; ++i) {
      const NodeId st = g.add_store(i, "st");
      g.bind_literal({st, 0}, i + 1);
      g.connect({s, i}, {st, 1}, true);
      g.connect({st, 0}, {sy, i}, true);
    }
    const NodeId e = add_end(g, 1);
    g.connect({sy, 0}, {e, 0}, true);
    MachineOptions o;
    o.width = width;
    const RunResult r = run(g, 4, o);
    EXPECT_TRUE(r.stats.completed);
    return r.stats.cycles;
  };
  EXPECT_GT(run_width(1), run_width(0));
}

TEST(Machine, DeadlockDetected) {
  Graph g;
  const NodeId s = add_start(g, {0});
  const NodeId sy = g.add_synch(2, "starved");
  g.connect({s, 0}, {sy, 0}, true);  // port 1 never receives a token
  // Port 1 needs an arc to pass validation, but its producer (a gate
  // whose trigger never fires) stays silent.
  const NodeId gate = g.add_gate("never");
  g.bind_literal({gate, 0}, 0);
  g.connect({sy, 0}, {gate, 1}, true);  // circular wait
  g.connect({gate, 0}, {sy, 1}, true);
  const NodeId e = add_end(g, 1);
  g.connect({sy, 0}, {e, 0}, true);
  const RunResult r = run(g, 0, {});
  EXPECT_FALSE(r.stats.completed);
  EXPECT_NE(r.stats.error.find("deadlock"), std::string::npos);
  EXPECT_NE(r.stats.error.find("starved"), std::string::npos);
}

TEST(Machine, TokenCollisionDetected) {
  Graph g;
  const NodeId s = add_start(g, {1, 2});
  const NodeId sy = g.add_synch(2, "victim");
  g.connect({s, 0}, {sy, 0}, true);
  g.connect({s, 1}, {sy, 0}, true);  // both tokens hit port 0
  const NodeId e = add_end(g, 1);
  g.connect({sy, 0}, {e, 0}, true);
  // Wire port 1 so validation would pass, though nothing ever arrives.
  const NodeId gate = g.add_gate("idle");
  g.bind_literal({gate, 0}, 0);
  g.connect({sy, 0}, {gate, 1}, true);
  g.connect({gate, 0}, {sy, 1}, true);
  const RunResult r = run(g, 0, {});
  EXPECT_FALSE(r.stats.completed);
  EXPECT_NE(r.stats.error.find("collision"), std::string::npos);
}

TEST(Machine, IStructureDeferredReadIsSatisfied) {
  Graph g;
  const NodeId s = add_start(g, {0, 0});
  // Reader fires first (index literal), writer is delayed behind a
  // long chain of gates.
  const NodeId fetch = g.add_ifetch(0, 4, "read");
  g.bind_literal({fetch, 0}, 2);
  g.connect({s, 0}, {fetch, 1}, true);

  dfg::PortRef delay{s, 1};
  for (int i = 0; i < 10; ++i) {
    const NodeId gate = g.add_gate();
    g.bind_literal({gate, 0}, 0);
    g.connect(delay, {gate, 1}, true);
    delay = {gate, 0};
  }
  const NodeId istore = g.add_istore(0, 4, "write");
  g.bind_literal({istore, 0}, 55);
  g.bind_literal({istore, 1}, 2);
  g.connect(delay, {istore, 2}, true);

  const NodeId st = g.add_store(4, "out");
  g.connect({fetch, 0}, {st, 0}, false);
  g.connect({fetch, 0}, {st, 1}, false);
  const NodeId sy = g.add_synch(2);
  g.connect({st, 0}, {sy, 0}, true);
  g.connect({istore, 0}, {sy, 1}, true);
  const NodeId e = add_end(g, 1);
  g.connect({sy, 0}, {e, 0}, true);

  const RunResult r = run(g, 5, {}, {{0, 4}});
  ASSERT_TRUE(r.stats.completed) << r.stats.error;
  EXPECT_EQ(r.store.cells[4], 55);
  EXPECT_EQ(r.stats.deferred_reads, 1u);
}

TEST(Machine, IStructureDoubleWriteTrapped) {
  Graph g;
  const NodeId s = add_start(g, {0, 0});
  for (std::uint16_t i = 0; i < 2; ++i) {
    const NodeId istore = g.add_istore(0, 4, "w");
    g.bind_literal({istore, 0}, 9);
    g.bind_literal({istore, 1}, 1);
    g.connect({s, i}, {istore, 2}, true);
    if (i == 0) {
      const NodeId e = add_end(g, 1);
      g.connect({istore, 0}, {e, 0}, true);
    }
  }
  const RunResult r = run(g, 4, {}, {{0, 4}});
  EXPECT_FALSE(r.stats.completed);
  EXPECT_NE(r.stats.error.find("double write"), std::string::npos);
}

TEST(Machine, CycleCapReported) {
  // Self-sustaining token loop (merge feeding itself) never terminates,
  // and End's token never arrives (its producer waits on port 1 forever).
  Graph g;
  const NodeId s = add_start(g, {0});
  const NodeId m = g.add_merge("spin");
  g.connect({s, 0}, {m, 0}, true);
  g.connect({m, 0}, {m, 0}, true);
  const NodeId never = g.add_gate("never");  // self-triggered: silent
  g.bind_literal({never, 0}, 0);
  g.connect({never, 0}, {never, 1}, true);
  const NodeId e = add_end(g, 1);
  g.connect({never, 0}, {e, 0}, true);
  MachineOptions o;
  o.budget.max_cycles = 500;
  const RunResult r = run(g, 0, o);
  EXPECT_FALSE(r.stats.completed);
  EXPECT_FALSE(r.stats.error.empty());
}

TEST(Machine, BenignLeftoverTokensAreCountedNotFatal) {
  // A value token with no consumer chain to End is legal drain traffic.
  Graph g;
  const NodeId s = add_start(g, {0, 0});
  const NodeId slow = g.add_gate("slow");  // fires after end's path
  g.bind_literal({slow, 0}, 1);
  g.connect({s, 1}, {slow, 1}, true);
  const NodeId sink = g.add_merge("sink");  // output unused
  g.connect({slow, 0}, {sink, 0}, false);
  const NodeId e = add_end(g, 1);
  g.connect({s, 0}, {e, 0}, true);
  const RunResult r = run(g, 0, {});
  EXPECT_TRUE(r.stats.completed) << r.stats.error;
  EXPECT_GT(r.stats.leftover_tokens, 0u);
}

TEST(Machine, UnfiredStoreAtEndIsFatal) {
  // A store that has not executed when End fires means memory is not
  // final — must be reported. (Start emits ports in order, so End's
  // token is scheduled and fired before the store's permission is
  // consumed.)
  Graph g;
  const NodeId s = add_start(g, {0, 0});
  const NodeId st = g.add_store(0, "uncollected");
  g.bind_literal({st, 0}, 9);
  g.connect({s, 1}, {st, 1}, true);
  const NodeId sink = g.add_merge("sink");
  g.connect({st, 0}, {sink, 0}, true);
  const NodeId e = add_end(g, 1);
  g.connect({s, 0}, {e, 0}, true);
  const RunResult r = run(g, 1, {});
  EXPECT_FALSE(r.stats.completed);
  EXPECT_NE(r.stats.error.find("uncollected"), std::string::npos);
}

TEST(Machine, CycleCapReportsCapAsCycleCount) {
  // Same spin graph as CycleCapReported, but pin down the report: the
  // run must stop exactly at the cap, with the canonical message, and
  // the statistics accumulated up to that point must survive.
  Graph g;
  const NodeId s = add_start(g, {0});
  const NodeId m = g.add_merge("spin");
  g.connect({s, 0}, {m, 0}, true);
  g.connect({m, 0}, {m, 0}, true);
  const NodeId never = g.add_gate("never");
  g.bind_literal({never, 0}, 0);
  g.connect({never, 0}, {never, 1}, true);
  const NodeId e = add_end(g, 1);
  g.connect({never, 0}, {e, 0}, true);
  MachineOptions o;
  o.budget.max_cycles = 500;
  const RunResult r = run(g, 0, o);
  EXPECT_FALSE(r.stats.completed);
  EXPECT_EQ(r.stats.error,
            "cycle cap exceeded (possible livelock or "
            "non-terminating program)");
  EXPECT_EQ(r.stats.cycles, 500u);
  // The merge fires once per cycle (alu latency 1), so essentially
  // every capped cycle fired one operator.
  EXPECT_GE(r.stats.ops_fired, 499u);
  EXPECT_EQ(r.stats.fired_by_kind[static_cast<std::size_t>(OpKind::kEnd)],
            0u);
}

TEST(Machine, DeadlockReportListsStarvedSlots) {
  // Same circular wait as DeadlockDetected; check the diagnostic lists
  // the starved slot with its missing-input count.
  Graph g;
  const NodeId s = add_start(g, {0});
  const NodeId sy = g.add_synch(2, "starved");
  g.connect({s, 0}, {sy, 0}, true);
  const NodeId gate = g.add_gate("never");
  g.bind_literal({gate, 0}, 0);
  g.connect({sy, 0}, {gate, 1}, true);
  g.connect({gate, 0}, {sy, 1}, true);
  const NodeId e = add_end(g, 1);
  g.connect({sy, 0}, {e, 0}, true);
  const RunResult r = run(g, 0, {});
  EXPECT_FALSE(r.stats.completed);
  EXPECT_NE(r.stats.error.find("matching slot(s) still waiting"),
            std::string::npos)
      << r.stats.error;
  EXPECT_NE(r.stats.error.find("missing 1 input(s)"), std::string::npos)
      << r.stats.error;
  // The report carries the per-loop live/throttled breakdown (and the
  // typed code) even outside loops — the headline line is always there.
  EXPECT_NE(r.stats.error.find("loop state:"), std::string::npos)
      << r.stats.error;
  EXPECT_NE(r.stats.error.find("live iteration context(s)"),
            std::string::npos)
      << r.stats.error;
  EXPECT_NE(r.stats.error.find("k-bound throttle stall(s)"),
            std::string::npos)
      << r.stats.error;
  EXPECT_EQ(r.stats.error_detail.code, ErrorCode::kDeadlock);
}

TEST(Machine, DeadlockReportIncludesDeferredReaders) {
  // An I-structure read of a cell nobody ever writes leaves a deferred
  // reader and no pending events: deadlock, and the report must point
  // at the deferred read (the usual culprit in write-once programs).
  Graph g;
  const NodeId s = add_start(g, {0});
  const NodeId fetch = g.add_ifetch(0, 4, "orphan-read");
  g.bind_literal({fetch, 0}, 2);
  g.connect({s, 0}, {fetch, 1}, true);
  const NodeId e = add_end(g, 1);
  g.connect({fetch, 0}, {e, 0}, true);
  const RunResult r = run(g, 4, {}, {{0, 4}});
  EXPECT_FALSE(r.stats.completed);
  EXPECT_NE(r.stats.error.find("deadlock"), std::string::npos);
  EXPECT_NE(r.stats.error.find("I-structure cell(s) with deferred readers"),
            std::string::npos)
      << r.stats.error;
  EXPECT_EQ(r.stats.deferred_reads, 1u);
}

TEST(Machine, KBoundOneRunsLoopSerially) {
  // k = 1 is the throttle's corner: pipelined loop control degenerates
  // to one iteration in flight. Results must still match the
  // interpreter, with the frame footprint pinned at the bound.
  const auto prog = lang::corpus::array_loop(16);
  const auto ref = lang::interpret(prog);
  ASSERT_TRUE(ref.completed);
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  topt.parallel_store_arrays = {"x"};
  const auto tx = core::compile(prog, topt);

  MachineOptions mopt;
  mopt.loop_mode = LoopMode::kPipelined;
  mopt.mem_latency = 60;  // stretch iteration lifetimes
  const auto unbounded = core::execute(tx, mopt);
  ASSERT_TRUE(unbounded.stats.completed) << unbounded.stats.error;

  mopt.loop_bound = 1;
  const auto k1 = core::execute(tx, mopt);
  ASSERT_TRUE(k1.stats.completed) << k1.stats.error;
  EXPECT_EQ(k1.store.cells, ref.store.cells);
  // One iteration in flight (the bound is exact for a flat loop), so
  // nearly every forwarding had to stall at the entry at least once.
  EXPECT_LE(k1.stats.peak_live_contexts, 2u);
  EXPECT_GT(unbounded.stats.peak_live_contexts,
            k1.stats.peak_live_contexts);
  EXPECT_GT(k1.stats.throttle_stalls, 0u);
  EXPECT_GT(k1.stats.cycles, unbounded.stats.cycles);
}

TEST(Machine, ReportRendersHeadlinesAndKinds) {
  Graph g;
  const NodeId s = add_start(g, {0});
  const NodeId st = g.add_store(0, "x");
  g.bind_literal({st, 0}, 5);
  g.connect({s, 0}, {st, 1}, true);
  const NodeId e = add_end(g, 1);
  g.connect({st, 0}, {e, 0}, true);
  MachineOptions o;
  o.record_profile = true;
  const RunResult r = run(g, 1, o);
  const std::string report = render_report(r.stats);
  EXPECT_NE(report.find("cycles"), std::string::npos);
  EXPECT_NE(report.find("store=1"), std::string::npos);
  EXPECT_NE(report.find("parallelism timeline"), std::string::npos);
}

TEST(Machine, ReportShowsFailures) {
  RunStats s;
  s.completed = false;
  s.error = "synthetic failure";
  EXPECT_NE(render_report(s).find("synthetic failure"), std::string::npos);
}

TEST(Machine, ProfileRecordsFiring) {
  Graph g;
  const NodeId s = add_start(g, {0});
  const NodeId st = g.add_store(0, "x");
  g.bind_literal({st, 0}, 5);
  g.connect({s, 0}, {st, 1}, true);
  const NodeId e = add_end(g, 1);
  g.connect({st, 0}, {e, 0}, true);
  MachineOptions o;
  o.record_profile = true;
  const RunResult r = run(g, 1, o);
  ASSERT_TRUE(r.stats.completed);
  std::uint64_t total = 0;
  for (const auto c : r.stats.profile) total += c;
  // start is fired at boot (not inside a profiled cycle); store and end
  // fire within cycles.
  EXPECT_EQ(total + 1, r.stats.ops_fired);
}

}  // namespace
}  // namespace ctdf::machine
