// Blob round-trip and adversarial-input coverage (machine/blob.hpp).
//
// The round-trip property: for any program, any option ladder, and any
// engine, lowering → serialize → deserialize → run produces the same
// final store and the same rendered --stats-json as running the
// in-memory image directly. The deterministic async engine is included
// on purpose — a deserialized program must be byte-equal in behavior
// on every engine, not just the reference one.
//
// The adversarial half feeds the reader every way a blob goes bad in
// the wild — truncation at each header boundary, bit rot in each
// header field and in the payload, format-generation skew, hash-valid
// but structurally inconsistent payloads — and asserts the *typed*
// rejection, because core/progcache.hpp's disk tier switches on it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/compiler.hpp"
#include "core/pipeline.hpp"
#include "lang/corpus.hpp"
#include "lang/generator.hpp"
#include "machine/blob.hpp"
#include "machine/report.hpp"
#include "support/hash.hpp"

namespace ctdf::machine {
namespace {

struct EngineConfig {
  const char* name;
  MachineOptions mopt;
};

std::vector<EngineConfig> all_engines() {
  EngineConfig scan{"scan", {}};
  EngineConfig event{"event", {}};
  event.mopt.engine = EngineKind::kEvent;
  EngineConfig async{"parallel-async", {}};
  async.mopt.host_threads = 2;
  async.mopt.parallel = ParallelMode::kAsync;  // deterministic by default
  return {scan, event, async};
}

struct Ladder {
  const char* name;
  core::PipelineOptions po;
};

std::vector<Ladder> option_ladder() {
  std::vector<Ladder> rungs;
  rungs.push_back({"schema1", translate::TranslateOptions::schema1()});
  rungs.push_back({"schema2", translate::TranslateOptions::schema2()});
  rungs.push_back(
      {"schema2-opt", translate::TranslateOptions::schema2_optimized()});
  auto mem = translate::TranslateOptions::schema2_optimized();
  mem.eliminate_memory = true;
  rungs.push_back({"mem-elim", mem});
  auto fused = translate::TranslateOptions::schema2_optimized();
  fused.eliminate_memory = true;
  fused.post_optimize = true;
  fused.opt_passes = dfg::PassSet::all();
  rungs.push_back({"opt-all", fused});
  return rungs;
}

/// Lowers `prog` once, pushes the image through serialize →
/// deserialize, and runs original vs. decoded on every engine,
/// requiring identical stores and identical rendered stats JSON.
void expect_roundtrip(const lang::Program& prog, core::PipelineOptions po,
                      const std::string& label) {
  po.lower = true;
  const ProgramImage original =
      core::make_program_image(core::Pipeline(po).run(prog));

  const std::vector<std::uint8_t> blob = serialize(original);
  const BlobReadResult read = deserialize(blob);
  ASSERT_TRUE(read.ok()) << label << ": " << read.message;
  EXPECT_EQ(read.blob_bytes, blob.size()) << label;
  EXPECT_EQ(read.content_hash, blob_content_hash(blob)) << label;

  // The memory image must survive verbatim — regions and names drive
  // execution and store rendering respectively.
  EXPECT_EQ(read.image.memory_cells, original.memory_cells) << label;
  ASSERT_EQ(read.image.names.size(), original.names.size()) << label;
  for (std::size_t i = 0; i < original.names.size(); ++i) {
    EXPECT_EQ(read.image.names[i].name, original.names[i].name) << label;
    EXPECT_EQ(read.image.names[i].base, original.names[i].base) << label;
    EXPECT_EQ(read.image.names[i].extent, original.names[i].extent) << label;
  }

  // Serialization is deterministic: same image, same bytes. This is
  // what makes the content hash a usable identity.
  EXPECT_EQ(serialize(read.image), blob) << label;

  for (const EngineConfig& eng : all_engines()) {
    const RunResult fresh = core::execute(original, eng.mopt);
    const RunResult decoded = core::execute(read.image, eng.mopt);
    const std::string where = label + " on " + eng.name;
    ASSERT_TRUE(fresh.stats.completed) << where << ": " << fresh.stats.error;
    EXPECT_EQ(render_stats_json(decoded.stats, eng.mopt),
              render_stats_json(fresh.stats, eng.mopt))
        << where;
    EXPECT_EQ(decoded.store, fresh.store) << where;
  }
}

TEST(BlobRoundTrip, CorpusProgramsAcrossTheOptionLadderAndEveryEngine) {
  const std::vector<std::pair<const char*, std::string>> corpus = {
      {"running-example", lang::corpus::running_example_source()},
      {"fig9", lang::corpus::fig9_source()},
      {"fortran-alias", lang::corpus::fortran_alias_source()},
      {"array-loop", lang::corpus::array_loop_source(6)},
      {"nested-loops", lang::corpus::nested_loops_source(2, 3)},
  };
  for (const auto& [name, source] : corpus) {
    const lang::Program prog = lang::parse_or_throw(source);
    for (const Ladder& rung : option_ladder())
      expect_roundtrip(prog, rung.po,
                       std::string(name) + " / " + rung.name);
  }
}

TEST(BlobRoundTrip, IStructureArraysSurviveSerialization) {
  const lang::Program prog =
      lang::parse_or_throw(lang::corpus::array_loop_source(6));
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.istructure_arrays = {"x"};
  core::PipelineOptions po(topt);
  const ProgramImage image =
      core::make_program_image(core::Pipeline(po).run(prog));
  ASSERT_FALSE(image.istructures.empty());
  expect_roundtrip(prog, po, "array-loop / istructure");
}

TEST(BlobRoundTrip, RandomProgramsHoldTheProperty) {
  lang::GeneratorOptions gen;
  gen.num_arrays = 1;
  gen.allow_unstructured = true;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const lang::Program prog = lang::generate_program(gen, seed);
    auto mem = translate::TranslateOptions::schema2_optimized();
    mem.eliminate_memory = true;
    expect_roundtrip(prog, translate::TranslateOptions::schema2_optimized(),
                     "random seed " + std::to_string(seed));
    expect_roundtrip(prog, mem,
                     "random seed " + std::to_string(seed) + " mem-elim");
  }
}

class BlobAdversarial : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto cr =
        core::Pipeline(core::PipelineOptions(
                           translate::TranslateOptions::schema2_optimized()))
            .run(lang::corpus::running_example_source());
    blob_ = serialize(core::make_program_image(cr));
    ASSERT_GT(blob_.size(), kBlobHeaderSize);
  }

  std::vector<std::uint8_t> blob_;
};

TEST_F(BlobAdversarial, TruncationAtEveryHeaderBoundaryIsTyped) {
  // Any prefix shorter than the fixed header — including the empty
  // input and cuts inside magic/version/size/hash — is kTruncated; no
  // field is interpreted before the header is complete.
  for (std::size_t len = 0; len <= kBlobHeaderSize; ++len) {
    const BlobReadResult r = deserialize(
        std::span<const std::uint8_t>(blob_.data(), len));
    if (len < kBlobHeaderSize) {
      EXPECT_EQ(r.error, BlobError::kTruncated) << "prefix " << len;
    } else {
      // A bare header: complete, but the declared payload is missing.
      EXPECT_EQ(r.error, BlobError::kTruncated) << "bare header";
      EXPECT_NE(r.message.find("payload truncated"), std::string::npos);
    }
  }
}

TEST_F(BlobAdversarial, TruncationInsideThePayloadIsTyped) {
  const std::size_t cuts[] = {kBlobHeaderSize + 1,
                              kBlobHeaderSize + (blob_.size() - kBlobHeaderSize) / 2,
                              blob_.size() - 1};
  for (const std::size_t len : cuts) {
    const BlobReadResult r = deserialize(
        std::span<const std::uint8_t>(blob_.data(), len));
    EXPECT_EQ(r.error, BlobError::kTruncated) << "prefix " << len;
  }
}

TEST_F(BlobAdversarial, EverySingleBytePayloadCorruptionIsCaughtByTheHash) {
  for (std::size_t at = kBlobHeaderSize; at < blob_.size(); ++at) {
    std::vector<std::uint8_t> bad = blob_;
    bad[at] ^= 0x5a;
    const BlobReadResult r = deserialize(bad);
    ASSERT_EQ(r.error, BlobError::kHashMismatch) << "byte " << at;
  }
}

TEST_F(BlobAdversarial, MagicCorruptionAtEachByteIsBadMagic) {
  for (std::size_t at = 0; at < kBlobMagicSize; ++at) {
    std::vector<std::uint8_t> bad = blob_;
    bad[at] ^= 0xff;
    EXPECT_EQ(deserialize(bad).error, BlobError::kBadMagic) << "byte " << at;
  }
}

TEST_F(BlobAdversarial, WrongFormatGenerationIsRejectedBeforeTheHash) {
  std::vector<std::uint8_t> bad = blob_;
  bad[kBlobMagicSize] = static_cast<std::uint8_t>(kBlobVersion + 1);
  const BlobReadResult r = deserialize(bad);
  EXPECT_EQ(r.error, BlobError::kBadVersion);
  EXPECT_NE(r.message.find("version " +
                           std::to_string(kBlobVersion + 1)),
            std::string::npos)
      << r.message;
  // The future-version blob was rejected on the version field alone —
  // its (hypothetically reorganized) payload was never hashed.
  EXPECT_EQ(r.content_hash, 0u);
}

TEST_F(BlobAdversarial, ReservedHeaderBytesAreIgnored) {
  // The reserved word exists so version 1 readers tolerate a future
  // flags field; scribbling on it must not invalidate the blob.
  std::vector<std::uint8_t> bent = blob_;
  for (std::size_t at = 12; at < 16; ++at) bent[at] = 0xee;
  EXPECT_TRUE(deserialize(bent).ok());
}

TEST_F(BlobAdversarial, PayloadSizeSkewIsTyped) {
  // Declared size one past the available bytes: truncation.
  std::vector<std::uint8_t> grown = blob_;
  grown[16] += 1;  // low byte of the little-endian size field
  EXPECT_EQ(deserialize(grown).error, BlobError::kTruncated);
  // Declared size one short: the hash, computed over the declared
  // extent, no longer matches.
  std::vector<std::uint8_t> shrunk = blob_;
  shrunk[16] -= 1;
  EXPECT_EQ(deserialize(shrunk).error, BlobError::kHashMismatch);
}

TEST_F(BlobAdversarial, HashFieldCorruptionIsHashMismatch) {
  std::vector<std::uint8_t> bad = blob_;
  bad[24] ^= 0x01;
  EXPECT_EQ(deserialize(bad).error, BlobError::kHashMismatch);
}

TEST_F(BlobAdversarial, HashValidTrailingGarbageIsMalformed) {
  // An adversarial writer can append bytes to the payload and re-hash,
  // so the integrity header passes; the structural decoder must still
  // notice the image does not consume the whole payload.
  std::vector<std::uint8_t> payload(blob_.begin() + kBlobHeaderSize,
                                    blob_.end());
  payload.push_back(0);
  std::vector<std::uint8_t> forged(blob_.begin(),
                                   blob_.begin() + kBlobHeaderSize);
  const std::uint64_t size = payload.size();
  const std::uint64_t hash =
      support::content_hash64(payload.data(), payload.size());
  for (int i = 0; i < 8; ++i) {
    forged[16 + i] = static_cast<std::uint8_t>(size >> (8 * i));
    forged[24 + i] = static_cast<std::uint8_t>(hash >> (8 * i));
  }
  forged.insert(forged.end(), payload.begin(), payload.end());
  const BlobReadResult r = deserialize(forged);
  EXPECT_EQ(r.error, BlobError::kMalformed);
  EXPECT_NE(r.message.find("trailing bytes"), std::string::npos) << r.message;
}

TEST_F(BlobAdversarial, NotABlobAtAllIsBadMagic) {
  const std::string junk(64, 'x');
  const BlobReadResult r = deserialize(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(junk.data()), junk.size()));
  EXPECT_EQ(r.error, BlobError::kBadMagic);
}

TEST(BlobFiles, MissingFileIsUnreadableNotTruncated) {
  const BlobReadResult r =
      read_blob_file("/nonexistent/ctdf-blob-test/none.ctdfblob");
  EXPECT_EQ(r.error, BlobError::kUnreadable);
}

TEST(BlobFiles, WriteThenReadRoundTrips) {
  const auto cr =
      core::Pipeline(core::PipelineOptions(
                         translate::TranslateOptions::schema2_optimized()))
          .run(lang::corpus::running_example_source());
  const std::vector<std::uint8_t> blob =
      serialize(core::make_program_image(cr));
  const std::string path =
      ::testing::TempDir() + "/ctdf_blob_roundtrip.ctdfblob";
  ASSERT_TRUE(write_blob_file(path, blob));
  const BlobReadResult r = read_blob_file(path);
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_EQ(serialize(r.image), blob);
}

/// write_blob_file publishes via write-to-tmp + rename, so a reader
/// racing two writers of the same path must always see one complete
/// blob — old bytes or new bytes, never a torn mix (which would
/// surface as a truncated/hash-mismatch read).
TEST(BlobFiles, ConcurrentWritersNeverExposeATornBlob) {
  const auto blob_of = [](const std::string& source) {
    const auto cr =
        core::Pipeline(core::PipelineOptions(
                           translate::TranslateOptions::schema2_optimized()))
            .run(source);
    return serialize(core::make_program_image(cr));
  };
  const std::vector<std::uint8_t> a =
      blob_of(lang::corpus::running_example_source());
  const std::vector<std::uint8_t> b = blob_of(lang::corpus::fig9_source());
  ASSERT_NE(a, b);

  const std::string path = ::testing::TempDir() + "/ctdf_blob_torn.ctdfblob";
  ASSERT_TRUE(write_blob_file(path, a));

  std::atomic<bool> stop{false};
  const auto writer = [&](const std::vector<std::uint8_t>& first,
                          const std::vector<std::uint8_t>& second) {
    for (int i = 0; i < 200 && !stop.load(); ++i)
      EXPECT_TRUE(write_blob_file(path, (i & 1) ? second : first));
  };
  std::thread w1(writer, std::cref(a), std::cref(b));
  std::thread w2(writer, std::cref(b), std::cref(a));
  int reads = 0;
  for (; reads < 500; ++reads) {
    const BlobReadResult r = read_blob_file(path);
    if (!r.ok()) {
      ADD_FAILURE() << "torn read after " << reads
                    << " good ones: " << to_string(r.error) << ": "
                    << r.message;
      stop.store(true);
      break;
    }
    const std::vector<std::uint8_t> seen = serialize(r.image);
    EXPECT_TRUE(seen == a || seen == b) << "read a blob neither writer wrote";
  }
  w1.join();
  w2.join();
  std::remove(path.c_str());
}

TEST(BlobErrors, SlugsAreGolden) {
  // scripts and CLI tests grep these exact strings ("blob error [...]").
  EXPECT_STREQ(to_string(BlobError::kNone), "none");
  EXPECT_STREQ(to_string(BlobError::kUnreadable), "unreadable");
  EXPECT_STREQ(to_string(BlobError::kBadMagic), "bad-magic");
  EXPECT_STREQ(to_string(BlobError::kBadVersion), "version-mismatch");
  EXPECT_STREQ(to_string(BlobError::kTruncated), "truncated");
  EXPECT_STREQ(to_string(BlobError::kHashMismatch), "hash-mismatch");
  EXPECT_STREQ(to_string(BlobError::kMalformed), "malformed");
}

}  // namespace
}  // namespace ctdf::machine
