// Unit tests for the optimization pass manager (dfg/pass_manager.hpp):
// macro-op fusion on hand-built chains, the new cleanup passes, the
// replicate-tree regression, and the fused-vs-unfused differential
// over the corpus.
#include <gtest/gtest.h>

#include <string>

#include "core/compiler.hpp"
#include "dfg/asmfmt.hpp"
#include "dfg/pass_manager.hpp"
#include "dfg/passes.hpp"
#include "lang/corpus.hpp"
#include "machine/exec.hpp"
#include "machine/machine.hpp"

namespace ctdf::dfg {
namespace {

NodeId add_start(Graph& g, std::vector<std::int64_t> values) {
  Node s;
  s.kind = OpKind::kStart;
  s.num_outputs = static_cast<std::uint16_t>(values.size());
  s.start_values = std::move(values);
  const NodeId n = g.add(std::move(s));
  g.set_start(n);
  return n;
}

NodeId add_end(Graph& g, std::uint16_t inputs) {
  Node e;
  e.kind = OpKind::kEnd;
  e.num_inputs = inputs;
  const NodeId n = g.add(std::move(e));
  g.set_end(n);
  return n;
}

PassSet only(PassId p) {
  PassSet s;
  s.enable(p);
  return s;
}

std::size_t count_kind(const Graph& g, OpKind k) {
  std::size_t n = 0;
  for (const NodeId id : g.all_nodes())
    if (g.node(id).kind == k) ++n;
  return n;
}

/// start(seed) → add+1 → neg → (20 − v) → store[0] → end. Three pure
/// ops, every non-chain input literal, single consumers throughout.
Graph chain_graph(std::int64_t seed) {
  Graph g;
  const NodeId s = add_start(g, {seed});
  const NodeId b1 = g.add_binop(lang::BinOp::kAdd, "b1");
  g.connect({s, 0}, {b1, 0}, false);
  g.bind_literal({b1, 1}, 1);
  const NodeId b2 = g.add_unop(lang::UnOp::kNeg, "b2");
  g.connect({b1, 0}, {b2, 0}, false);
  const NodeId b3 = g.add_binop(lang::BinOp::kSub, "b3");
  g.bind_literal({b3, 0}, 20);  // literal on the *left*: tests value_port=1
  g.connect({b2, 0}, {b3, 1}, false);
  const NodeId st = g.add_store(0, "out");
  g.connect({b3, 0}, {st, 0}, false);
  g.connect({b3, 0}, {st, 1}, false);
  const NodeId e = add_end(g, 1);
  g.connect({st, 0}, {e, 0}, true);
  return g;
}

TEST(Fusion, CollapsesALinearChainIntoOneMacro) {
  Graph g = chain_graph(5);
  ASSERT_TRUE(g.validate().empty());
  const std::size_t before = g.num_nodes();

  const OptStats stats = run_passes(g, only(PassId::kFuse));
  EXPECT_EQ(stats.chains_fused, 1u);
  EXPECT_EQ(stats.ops_fused, 2u);
  EXPECT_EQ(stats.fused_len_hist[1], 1u);  // one chain of 3 ops
  EXPECT_EQ(stats.nodes_removed, 2u);
  EXPECT_EQ(g.num_nodes(), before - 2);
  EXPECT_EQ(count_kind(g, OpKind::kMacro), 1u);
  ASSERT_TRUE(g.validate().empty());

  // ((5 + 1) negated) = -6; 20 - (-6) = 26.
  const auto r = machine::run(g, 1, {});
  ASSERT_TRUE(r.stats.completed) << r.stats.error;
  EXPECT_EQ(r.store.cells[0], 26);
}

TEST(Fusion, FuseLimitSegmentsLongChains) {
  Graph g;
  const NodeId s = add_start(g, {5});
  NodeId prev = s;
  for (int i = 0; i < 6; ++i) {
    const NodeId b = g.add_binop(lang::BinOp::kAdd);
    g.connect({prev, 0}, {b, 0}, false);
    g.bind_literal({b, 1}, 1);
    prev = b;
  }
  const NodeId st = g.add_store(0, "out");
  g.connect({prev, 0}, {st, 0}, false);
  g.connect({prev, 0}, {st, 1}, false);
  const NodeId e = add_end(g, 1);
  g.connect({st, 0}, {e, 0}, true);
  ASSERT_TRUE(g.validate().empty());

  const OptStats stats = run_passes(g, only(PassId::kFuse), /*fuse_limit=*/3);
  EXPECT_EQ(stats.chains_fused, 2u);  // 6 ops split into two macros of 3
  EXPECT_EQ(stats.ops_fused, 4u);
  EXPECT_EQ(count_kind(g, OpKind::kMacro), 2u);
  EXPECT_EQ(count_kind(g, OpKind::kBinOp), 0u);
  ASSERT_TRUE(g.validate().empty());

  const auto r = machine::run(g, 1, {});
  ASSERT_TRUE(r.stats.completed) << r.stats.error;
  EXPECT_EQ(r.store.cells[0], 11);
}

TEST(Fusion, MacroNodesSurviveAsmRoundTripAndLowering) {
  Graph g = chain_graph(5);
  (void)run_passes(g, only(PassId::kFuse));
  ASSERT_EQ(count_kind(g, OpKind::kMacro), 1u);

  Module m;
  m.graph = std::move(g);
  m.memory_cells = 1;
  const std::string text = write_asm(m);
  EXPECT_NE(text.find("macro"), std::string::npos);

  const Module back = parse_asm_or_throw(text);
  ASSERT_TRUE(back.graph.validate().empty());
  EXPECT_EQ(count_kind(back.graph, OpKind::kMacro), 1u);

  // The lowered op table exposes the head kind and step count.
  const std::string rendered = machine::render(machine::lower(back.graph));
  EXPECT_NE(rendered.find("head="), std::string::npos);
  EXPECT_NE(rendered.find("steps=2"), std::string::npos);

  const auto r = machine::run(back.graph, back.memory_cells, {});
  ASSERT_TRUE(r.stats.completed) << r.stats.error;
  EXPECT_EQ(r.store.cells[0], 26);
}

TEST(ConstFold, IdentityOperatorsAreBypassed) {
  Graph g;
  const NodeId s = add_start(g, {7});
  const NodeId b = g.add_binop(lang::BinOp::kAdd, "x+0");
  g.connect({s, 0}, {b, 0}, false);
  g.bind_literal({b, 1}, 0);
  const NodeId st = g.add_store(0, "out");
  g.connect({b, 0}, {st, 0}, false);
  g.connect({b, 0}, {st, 1}, false);
  const NodeId e = add_end(g, 1);
  g.connect({st, 0}, {e, 0}, true);
  const std::size_t before = g.num_nodes();

  const OptStats stats = run_passes(g, only(PassId::kConstFold));
  EXPECT_EQ(stats.consts_folded, 1u);
  EXPECT_EQ(g.num_nodes(), before - 1);
  ASSERT_TRUE(g.validate().empty());

  const auto r = machine::run(g, 1, {});
  ASSERT_TRUE(r.stats.completed) << r.stats.error;
  EXPECT_EQ(r.store.cells[0], 7);
}

TEST(ConstFold, AbsorbersStillConsumeTheLiveToken) {
  // x * 0 rewrites to a Gate materializing 0 — the x token must still
  // be consumed (it may carry an ordering obligation), so the node
  // stays, just cheaper.
  Graph g;
  const NodeId s = add_start(g, {7});
  const NodeId b = g.add_binop(lang::BinOp::kMul, "x*0");
  g.connect({s, 0}, {b, 0}, false);
  g.bind_literal({b, 1}, 0);
  const NodeId st = g.add_store(0, "out");
  g.connect({b, 0}, {st, 0}, false);
  g.connect({b, 0}, {st, 1}, false);
  const NodeId e = add_end(g, 1);
  g.connect({st, 0}, {e, 0}, true);
  const std::size_t before = g.num_nodes();

  const OptStats stats = run_passes(g, only(PassId::kConstFold));
  EXPECT_EQ(stats.consts_folded, 1u);
  EXPECT_EQ(g.num_nodes(), before);  // rewritten in place, not removed
  EXPECT_EQ(count_kind(g, OpKind::kGate), 1u);
  ASSERT_TRUE(g.validate().empty());

  const auto r = machine::run(g, 1, {});
  ASSERT_TRUE(r.stats.completed) << r.stats.error;
  EXPECT_EQ(r.store.cells[0], 0);
}

TEST(SynchNarrow, SynchFeedingOnlyASynchMergesIntoIt) {
  Graph g;
  const NodeId s = add_start(g, {1, 2});
  const NodeId a = g.add_synch(2, "a");
  g.connect({s, 0}, {a, 0}, true);
  g.bind_literal({a, 1}, 5);  // literal operand: dropped by narrowing
  const NodeId b = g.add_synch(2, "b");
  g.connect({a, 0}, {b, 0}, true);
  g.connect({s, 1}, {b, 1}, true);
  const NodeId e = add_end(g, 1);
  g.connect({b, 0}, {e, 0}, true);
  ASSERT_TRUE(g.validate().empty());

  const OptStats stats = run_passes(g, only(PassId::kSynchNarrow));
  EXPECT_GE(stats.synchs_narrowed, 2u);  // literal drop + tree merge
  EXPECT_EQ(count_kind(g, OpKind::kSynch), 1u);
  ASSERT_TRUE(g.validate().empty());

  const auto r = machine::run(g, 0, {});
  ASSERT_TRUE(r.stats.completed) << r.stats.error;
}

TEST(PassManager, ReplicateTreesAreNeverRecollapsed) {
  // Regression for the pass-ordering hazard: lower_fanout's replication
  // trees are single-source merges by construction; running the cleanup
  // passes afterwards must not collapse them back into unbounded
  // fan-out.
  auto o = translate::TranslateOptions::schema2_optimized();
  o.eliminate_memory = true;
  auto tx = core::compile(
      lang::parse_or_throw(lang::corpus::read_heavy_source(16)), o);
  ASSERT_GT(max_fanout(tx.graph), 2u);
  ASSERT_GT(lower_fanout(tx.graph, 2), 0u);
  ASSERT_LE(max_fanout(tx.graph), 2u);

  const OptStats stats = run_passes(tx.graph, PassSet::cleanup());
  EXPECT_LE(max_fanout(tx.graph), 2u)
      << "collapse-merge folded a replicate tree (" << stats.merges_collapsed
      << " merges collapsed)";
  ASSERT_TRUE(tx.graph.validate().empty());

  const auto prog = lang::parse_or_throw(lang::corpus::read_heavy_source(16));
  const auto ref = lang::interpret(prog);
  const auto res = core::execute(tx, {});
  ASSERT_TRUE(res.stats.completed) << res.stats.error;
  EXPECT_EQ(res.store.cells, ref.store.cells);
}

TEST(PassManager, PerPassCountersAttributeTheWork) {
  auto tx = core::compile(
      lang::parse_or_throw("var x; if 1 { x := 5; } else { x := 6; }"),
      translate::TranslateOptions::schema2_optimized());
  const OptStats stats = run_passes(tx.graph, PassSet::all());
  EXPECT_GT(stats.switches_folded, 0u);
  EXPECT_GT(stats.nodes_removed, 0u);
  EXPECT_GE(stats.iterations, 1u);
  ASSERT_TRUE(tx.graph.validate().empty());
}

TEST(PassManager, LoopDepthIsReportedForLoopPrograms) {
  auto tx = core::compile(lang::corpus::running_example(),
                          translate::TranslateOptions::schema2_optimized());
  const OptStats stats = run_passes(tx.graph, PassSet::cleanup());
  EXPECT_GE(stats.max_loop_depth, 1u);
}

TEST(PassManager, FusedAndUnfusedStoresAreByteIdentical) {
  for (const auto& np : lang::corpus::all()) {
    const auto prog = lang::parse_or_throw(np.source);
    const auto ref = lang::interpret(prog);
    for (const bool mem_elim : {false, true}) {
      auto off = translate::TranslateOptions::schema2_optimized();
      off.eliminate_memory = mem_elim;
      auto on = off;
      on.post_optimize = true;
      on.opt_passes = PassSet::all();
      const auto tx_off = core::compile(prog, off);
      const auto tx_on = core::compile(prog, on);
      ASSERT_TRUE(tx_on.graph.validate().empty()) << np.name;
      const auto r_off = core::execute(tx_off, {});
      const auto r_on = core::execute(tx_on, {});
      ASSERT_TRUE(r_off.stats.completed) << np.name << ": "
                                         << r_off.stats.error;
      ASSERT_TRUE(r_on.stats.completed) << np.name << ": "
                                        << r_on.stats.error;
      EXPECT_EQ(r_on.store.cells, r_off.store.cells) << np.name;
      EXPECT_EQ(r_on.store.cells, ref.store.cells) << np.name;
    }
  }
}

TEST(PassManager, PassNamesRoundTrip) {
  for (std::size_t i = 0; i < kNumPasses; ++i) {
    const auto p = static_cast<PassId>(i);
    const auto back = pass_from_name(to_string(p));
    ASSERT_TRUE(back.has_value()) << to_string(p);
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(pass_from_name("frobnicate").has_value());
  EXPECT_FALSE(pass_from_name("").has_value());
}

}  // namespace
}  // namespace ctdf::dfg
