#include <gtest/gtest.h>

#include "lang/lexer.hpp"

namespace ctdf::lang {
namespace {

std::vector<Token> lex_ok(std::string_view src) {
  support::DiagnosticEngine d;
  auto toks = lex(src, d);
  EXPECT_FALSE(d.has_errors()) << d.to_string();
  return toks;
}

std::vector<TokKind> kinds(const std::vector<Token>& ts) {
  std::vector<TokKind> out;
  for (const auto& t : ts) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInput) {
  const auto ts = lex_ok("");
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].kind, TokKind::kEof);
}

TEST(Lexer, KeywordsVsIdentifiers) {
  const auto ts = lex_ok("var variable while whilex goto");
  EXPECT_EQ(kinds(ts),
            (std::vector<TokKind>{TokKind::kVar, TokKind::kIdent,
                                  TokKind::kWhile, TokKind::kIdent,
                                  TokKind::kGoto, TokKind::kEof}));
}

TEST(Lexer, IntegerValues) {
  const auto ts = lex_ok("0 42 9223372036854775807");
  EXPECT_EQ(ts[0].int_value, 0);
  EXPECT_EQ(ts[1].int_value, 42);
  EXPECT_EQ(ts[2].int_value, INT64_MAX);
}

TEST(Lexer, IntegerOverflowReported) {
  support::DiagnosticEngine d;
  (void)lex("9223372036854775808", d);
  EXPECT_TRUE(d.has_errors());
}

TEST(Lexer, CompositeOperators) {
  const auto ts = lex_ok(":= == != <= >= && || < > ! : ==");
  EXPECT_EQ(ts[0].kind, TokKind::kAssign);
  EXPECT_EQ(ts[1].kind, TokKind::kEqEq);
  EXPECT_EQ(ts[2].kind, TokKind::kNe);
  EXPECT_EQ(ts[3].kind, TokKind::kLe);
  EXPECT_EQ(ts[4].kind, TokKind::kGe);
  EXPECT_EQ(ts[5].kind, TokKind::kAndAnd);
  EXPECT_EQ(ts[6].kind, TokKind::kOrOr);
  EXPECT_EQ(ts[7].kind, TokKind::kLt);
  EXPECT_EQ(ts[8].kind, TokKind::kGt);
  EXPECT_EQ(ts[9].kind, TokKind::kBang);
  EXPECT_EQ(ts[10].kind, TokKind::kColon);
}

TEST(Lexer, CommentsSkipped) {
  const auto ts = lex_ok("x // comment := 1\n# another\ny");
  EXPECT_EQ(kinds(ts), (std::vector<TokKind>{TokKind::kIdent, TokKind::kIdent,
                                             TokKind::kEof}));
}

TEST(Lexer, LineAndColumnTracking) {
  const auto ts = lex_ok("a\n  b");
  EXPECT_EQ(ts[0].loc.line, 1u);
  EXPECT_EQ(ts[0].loc.column, 1u);
  EXPECT_EQ(ts[1].loc.line, 2u);
  EXPECT_EQ(ts[1].loc.column, 3u);
}

TEST(Lexer, StrayCharactersReported) {
  support::DiagnosticEngine d;
  const auto ts = lex("a $ b = c & d | e", d);
  EXPECT_GE(d.error_count(), 4u);  // $, =, &, |
  // Lexing continues past errors.
  EXPECT_EQ(ts.back().kind, TokKind::kEof);
}

TEST(Lexer, UnderscoreIdentifiers) {
  const auto ts = lex_ok("_x x_1 __");
  EXPECT_EQ(ts[0].text, "_x");
  EXPECT_EQ(ts[1].text, "x_1");
  EXPECT_EQ(ts[2].text, "__");
}

}  // namespace
}  // namespace ctdf::lang
