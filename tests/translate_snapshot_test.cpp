// Golden snapshots of translator output shapes for the corpus: exact
// operator counts per (program, schema). These lock the construction
// down against silent regressions — a change that adds or removes
// operators must be a conscious decision (update the table, explain
// why), not an accident.
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "lang/corpus.hpp"

namespace ctdf::translate {
namespace {

struct Shape {
  std::size_t nodes;
  std::size_t switches;
  std::size_t merges;
  std::size_t loads;
  std::size_t stores;
};

Shape shape_of(const std::string& source, const TranslateOptions& o) {
  const auto tx = core::compile(lang::parse_or_throw(source), o);
  const auto s = compute_stats(tx.graph);
  return {s.nodes, s.switches, s.merges, s.loads, s.stores};
}

void expect_shape(const char* program_name, const std::string& source,
                  const TranslateOptions& o, const Shape& want) {
  const Shape got = shape_of(source, o);
  EXPECT_EQ(got.nodes, want.nodes) << program_name << " nodes";
  EXPECT_EQ(got.switches, want.switches) << program_name << " switches";
  EXPECT_EQ(got.merges, want.merges) << program_name << " merges";
  EXPECT_EQ(got.loads, want.loads) << program_name << " loads";
  EXPECT_EQ(got.stores, want.stores) << program_name << " stores";
}

TEST(Snapshot, RunningExample) {
  const auto src = lang::corpus::running_example_source();
  // Schema 1: single access token, no loop-control nodes; the header
  // join is the one merge; 3 loads (x at each of the three statements)
  // and 2 stores.
  expect_shape("running/schema1", src, TranslateOptions::schema1(),
               {12, 1, 1, 3, 2});
  expect_shape("running/schema2", src, TranslateOptions::schema2(),
               {14, 2, 0, 3, 2});
  expect_shape("running/schema2opt", src,
               TranslateOptions::schema2_optimized(), {14, 2, 0, 3, 2});
  auto elim = TranslateOptions::schema2_optimized();
  elim.eliminate_memory = true;
  expect_shape("running/memelim", src, elim, {11, 2, 0, 0, 2});
}

TEST(Snapshot, Fig9) {
  const auto src = lang::corpus::fig9_source();
  expect_shape("fig9/schema2", src, TranslateOptions::schema2(),
               {16, 3, 3, 2, 4});
  // Optimization: only y is switched; x and w tokens bypass; two joins
  // collapse to one real merge.
  expect_shape("fig9/schema2opt", src, TranslateOptions::schema2_optimized(),
               {12, 1, 1, 2, 4});
}

TEST(Snapshot, FortranAliasCoverSensitivity) {
  const auto src = lang::corpus::fortran_alias_source();
  const auto singleton = shape_of(
      src, TranslateOptions::schema3(CoverStrategy::kSingleton));
  const auto unified =
      shape_of(src, TranslateOptions::schema3(CoverStrategy::kUnified));
  const auto component =
      shape_of(src, TranslateOptions::schema3(CoverStrategy::kComponent));
  // Loads/stores are cover-independent (same statements).
  EXPECT_EQ(singleton.loads, unified.loads);
  EXPECT_EQ(singleton.stores, unified.stores);
  EXPECT_EQ(component.loads, unified.loads);
  // The singleton cover pays synch trees; unified/component do not, so
  // their graphs are strictly smaller here.
  EXPECT_GT(singleton.nodes, component.nodes);
  EXPECT_GE(component.nodes, unified.nodes);
}

TEST(Snapshot, ArrayLoop) {
  const auto src = lang::corpus::array_loop_source(10);
  expect_shape("array/schema2opt", src,
               TranslateOptions::schema2_optimized(), {13, 2, 0, 3, 2});
  auto fig14 = TranslateOptions::schema2_optimized();
  fig14.parallel_store_arrays = {"x"};
  const auto s = shape_of(src, fig14);
  // The transform adds the completion-chain synch and one more switch
  // (the chain token is switched too).
  EXPECT_GT(s.switches, 2u);
  EXPECT_EQ(s.loads, 3u);
}

TEST(Snapshot, SwitchCountsScaleAsDocumented) {
  // nested_bypass: naive = 3 switches/level (x, y, w); optimized =
  // 2/level minus the one predicate-only level (y and w only).
  for (const int depth : {2, 6}) {
    const auto src = lang::corpus::nested_bypass_source(depth);
    const auto naive = shape_of(src, TranslateOptions::schema2());
    const auto opt = shape_of(src, TranslateOptions::schema2_optimized());
    EXPECT_EQ(naive.switches, static_cast<std::size_t>(3 * depth));
    EXPECT_EQ(opt.switches, static_cast<std::size_t>(2 * depth - 1));
  }
}

}  // namespace
}  // namespace ctdf::translate
