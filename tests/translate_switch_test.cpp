// Switch placement (Fig. 10) against the paper's characterization
// (Definitions 1-3 via Theorem 1's "between" formulation).
#include <gtest/gtest.h>

#include <algorithm>

#include "cfg/build.hpp"
#include "cfg/control_dep.hpp"
#include "cfg/dominance.hpp"
#include "lang/corpus.hpp"
#include "lang/parser.hpp"
#include "support/oracles.hpp"
#include "translate/switch_place.hpp"

namespace ctdf::translate {
namespace {

struct Placed {
  lang::Program prog;
  cfg::Graph g;
  cfg::DomTree pdom;
  cfg::ControlDeps cd;
  Cover cover;
  support::IndexMap<cfg::NodeId, std::vector<Resource>> uses;

  explicit Placed(std::string_view src)
      : prog(lang::parse_or_throw(src)),
        g(cfg::build_cfg_or_throw(prog)),
        pdom(g, cfg::DomDirection::kPostdom),
        cd(g, pdom),
        cover(Cover::make(prog.symbols, CoverStrategy::kSingleton)) {
    uses.resize(g.size());
    for (cfg::NodeId n : g.all_nodes())
      uses[n] = cover.access_set_union(g.refs(n));
  }

  SwitchPlacement place(bool optimize) const {
    return SwitchPlacement{g, cd, uses, cover.size(), optimize};
  }

  Resource res(const char* name) const {
    return cover.access_set(*prog.symbols.lookup(name)).front();
  }

  cfg::NodeId only_fork() const {
    cfg::NodeId f;
    for (cfg::NodeId n : g.all_nodes())
      if (g.kind(n) == cfg::NodeKind::kFork) f = n;
    return f;
  }
};

TEST(SwitchPlacement, Fig9SwitchForXIsRedundant) {
  // Fig. 9: x is not referenced inside the conditional, so the fork
  // needs no switch for access_x under the optimized placement — that
  // is exactly the redundant switch the paper eliminates.
  Placed p(lang::corpus::fig9_source());
  const auto placement = p.place(/*optimize=*/true);
  const cfg::NodeId fork = p.only_fork();
  EXPECT_FALSE(placement.needs_switch(fork, p.res("x")));
  EXPECT_TRUE(placement.needs_switch(fork, p.res("y")));
  // w is only read by the predicate itself (before the branch) — no
  // node strictly between the fork and its postdominator references it.
  EXPECT_FALSE(placement.needs_switch(fork, p.res("w")));
}

TEST(SwitchPlacement, UnoptimizedSwitchesEverything) {
  Placed p(lang::corpus::fig9_source());
  const auto placement = p.place(/*optimize=*/false);
  const cfg::NodeId fork = p.only_fork();
  for (Resource r = 0; r < p.cover.size(); ++r)
    EXPECT_TRUE(placement.needs_switch(fork, r));
  EXPECT_EQ(placement.total(), p.cover.size());
}

TEST(SwitchPlacement, OptimizedIsSubsetOfUnoptimized) {
  for (const auto& np : lang::corpus::all()) {
    Placed p(np.source);
    const auto opt = p.place(true);
    const auto base = p.place(false);
    EXPECT_LE(opt.total(), base.total()) << np.name;
    for (cfg::NodeId n : p.g.all_nodes())
      for (Resource r = 0; r < p.cover.size(); ++r)
        if (opt.needs_switch(n, r)) {
          EXPECT_TRUE(base.needs_switch(n, r)) << np.name;
        }
  }
}

TEST(SwitchPlacement, NestedBypassPlacesNoSwitchForX) {
  Placed p(lang::corpus::nested_bypass_source(5));
  const auto placement = p.place(true);
  const Resource x = p.res("x");
  for (cfg::NodeId n : p.g.all_nodes()) {
    if (p.g.kind(n) != cfg::NodeKind::kFork) continue;
    EXPECT_FALSE(placement.needs_switch(n, x))
        << "fork " << n.value() << " switches x needlessly";
  }
}

TEST(SwitchPlacement, StartNeverGetsRuntimeSwitches) {
  Placed p(lang::corpus::fig9_source());
  for (const bool optimize : {false, true}) {
    const auto placement = p.place(optimize);
    for (Resource r = 0; r < p.cover.size(); ++r)
      EXPECT_FALSE(placement.needs_switch(p.g.start(), r));
  }
}

// Definition 3 cross-check: optimized placement marks F for access_x
// iff some node referencing x lies between F and ipostdom(F)
// (Definition 1 checked by brute-force path search).
TEST(SwitchPlacement, MatchesBetweenCharacterization) {
  for (const auto& np : lang::corpus::all()) {
    Placed p(np.source);
    const auto placement = p.place(true);
    for (cfg::NodeId f : p.g.all_nodes()) {
      if (p.g.kind(f) != cfg::NodeKind::kFork) continue;
      const cfg::NodeId ip = p.pdom.idom(f);
      for (Resource r = 0; r < p.cover.size(); ++r) {
        bool expected = false;
        for (cfg::NodeId n : p.g.all_nodes()) {
          const auto& u = p.uses[n];
          if (std::find(u.begin(), u.end(), r) == u.end()) continue;
          if (testing::naive_between(p.g, f, ip, n)) {
            expected = true;
            break;
          }
        }
        EXPECT_EQ(placement.needs_switch(f, r), expected)
            << np.name << " fork " << f.value() << " resource " << r;
      }
    }
  }
}

}  // namespace
}  // namespace ctdf::translate
