#include <gtest/gtest.h>

#include <algorithm>

#include "cfg/build.hpp"
#include "cfg/control_dep.hpp"
#include "cfg/dominance.hpp"
#include "lang/corpus.hpp"
#include "lang/generator.hpp"
#include "lang/parser.hpp"
#include "support/oracles.hpp"

namespace ctdf::cfg {
namespace {

struct Analysis {
  Graph g;
  DomTree pdom;
  ControlDeps cd;

  explicit Analysis(const lang::Program& p)
      : g(build_cfg_or_throw(p)),
        pdom(g, DomDirection::kPostdom),
        cd(g, pdom) {}
};

TEST(ControlDeps, StraightLineHasOnlyStartDependences) {
  Analysis a(lang::parse_or_throw("var x, y; x := 1; y := 2;"));
  for (NodeId n : a.g.all_nodes()) {
    for (const ControlDep& d : a.cd.deps(n)) {
      EXPECT_EQ(d.fork, a.g.start());
      EXPECT_TRUE(d.direction);  // everything hangs off start's true edge
    }
  }
}

TEST(ControlDeps, BranchBodiesDependOnFork) {
  Analysis a(lang::parse_or_throw(
      "var x, w; if w { x := 1; } else { x := 2; }"));
  NodeId fork;
  for (NodeId n : a.g.all_nodes())
    if (a.g.kind(n) == NodeKind::kFork) fork = n;
  ASSERT_TRUE(fork.valid());

  int dependents = 0;
  bool saw_true = false, saw_false = false;
  for (NodeId n : a.g.all_nodes()) {
    for (const ControlDep& d : a.cd.deps(n)) {
      if (d.fork != fork) continue;
      ++dependents;
      (d.direction ? saw_true : saw_false) = true;
      EXPECT_EQ(a.g.kind(n), NodeKind::kAssign);
    }
  }
  EXPECT_EQ(dependents, 2);
  EXPECT_TRUE(saw_true);
  EXPECT_TRUE(saw_false);
}

TEST(ControlDeps, LoopBodyDependsOnLoopFork) {
  Analysis a(lang::corpus::running_example());
  NodeId fork;
  for (NodeId n : a.g.all_nodes())
    if (a.g.kind(n) == NodeKind::kFork && n != a.g.start()) fork = n;
  ASSERT_TRUE(fork.valid());
  // The loop fork controls the body (including itself: it is on its own
  // cyclic path).
  const auto cd_plus = a.cd.iterated(fork);
  EXPECT_TRUE(cd_plus.test(fork.index()));
}

TEST(ControlDeps, IteratedClosureContainsDirectDeps) {
  Analysis a(lang::parse_or_throw(lang::corpus::nested_bypass_source(3)));
  for (NodeId n : a.g.all_nodes()) {
    const auto closure = a.cd.iterated(n);
    for (const ControlDep& d : a.cd.deps(n))
      EXPECT_TRUE(closure.test(d.fork.index()));
  }
}

TEST(ControlDeps, NestedConditionalsChainInClosure) {
  // x := ...; if a { if b { y := 1 } }: y's CD⁺ contains both forks.
  Analysis an(lang::parse_or_throw(
      "var y, a, b; if a != 0 { if b != 0 { y := 1; } }"));
  NodeId inner_assign;
  for (NodeId n : an.g.all_nodes())
    if (an.g.kind(n) == NodeKind::kAssign) inner_assign = n;
  ASSERT_TRUE(inner_assign.valid());
  const auto closure = an.cd.iterated(inner_assign);
  std::size_t forks_in_closure = 0;
  for (NodeId n : an.g.all_nodes())
    if (an.g.kind(n) == NodeKind::kFork && closure.test(n.index()))
      ++forks_in_closure;
  EXPECT_EQ(forks_in_closure, 2u);
}

// Direct CD against the definitional oracle.
class CdOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CdOracle, MatchesDefinition4) {
  lang::GeneratorOptions opt;
  opt.allow_unstructured = true;
  opt.allow_irreducible = true;
  opt.max_toplevel_stmts = 7;
  Analysis a(lang::generate_program(opt, GetParam()));
  for (NodeId n : a.g.all_nodes()) {
    for (NodeId f : a.g.all_nodes()) {
      if (a.g.succs(f).size() < 2) continue;
      const bool expected = testing::naive_control_dependent(a.g, n, f);
      const auto& deps = a.cd.deps(n);
      const bool actual =
          std::any_of(deps.begin(), deps.end(),
                      [&](const ControlDep& d) { return d.fork == f; });
      EXPECT_EQ(actual, expected)
          << "CD(" << n.value() << " on " << f.value() << ") seed "
          << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdOracle,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace ctdf::cfg
