// Structural properties of the translated dataflow graphs: the shapes
// the paper's figures promise (Schema 1 vs 2 vs optimized vs covers).
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "lang/corpus.hpp"

namespace ctdf::translate {
namespace {

Translation tx(std::string_view src, const TranslateOptions& o) {
  return core::compile(lang::parse_or_throw(std::string(src)), o);
}

TEST(Structure, AllTranslationsValidate) {
  for (const auto& np : lang::corpus::all()) {
    for (const auto& o :
         {TranslateOptions::schema1(), TranslateOptions::schema2(),
          TranslateOptions::schema2_optimized(),
          TranslateOptions::schema3(CoverStrategy::kAliasClass),
          TranslateOptions::schema3(CoverStrategy::kUnified)}) {
      const Translation t = tx(np.source, o);
      EXPECT_TRUE(t.graph.validate().empty())
          << np.name << " under " << o.describe();
    }
  }
}

TEST(Structure, Schema1HasSingleResource) {
  const Translation t =
      tx(lang::corpus::running_example_source(), TranslateOptions::schema1());
  EXPECT_EQ(t.num_resources, 1u);
  // The single token is switched at the one fork.
  EXPECT_EQ(compute_stats(t.graph).switches, 1u);
}

TEST(Structure, Schema2HasPerVariableResources) {
  const Translation t =
      tx(lang::corpus::running_example_source(), TranslateOptions::schema2());
  EXPECT_EQ(t.num_resources, 2u);  // x and y
  // Both tokens switched at the fork (Fig. 8).
  EXPECT_EQ(compute_stats(t.graph).switches, 2u);
}

TEST(Structure, Fig9OptimizationRemovesTheRedundantSwitch) {
  const Translation base =
      tx(lang::corpus::fig9_source(), TranslateOptions::schema2());
  const Translation opt = tx(lang::corpus::fig9_source(),
                             TranslateOptions::schema2_optimized());
  const auto sb = compute_stats(base.graph);
  const auto so = compute_stats(opt.graph);
  // Naive: 3 variables switched at the fork. Optimized: only y.
  EXPECT_EQ(sb.switches, 3u);
  EXPECT_EQ(so.switches, 1u);
  EXPECT_LT(so.merges, sb.merges);
}

TEST(Structure, NestedBypassSwitchCountIndependentOfDepth) {
  // Under Schema 2 the x-token crosses every nested conditional; the
  // optimized construction bypasses all of them, so its switch count
  // stays flat while the naive count grows with depth.
  std::size_t prev_base = 0;
  for (const int depth : {1, 4, 8}) {
    const auto src = lang::corpus::nested_bypass_source(depth);
    const auto base = compute_stats(
        tx(src, TranslateOptions::schema2()).graph);
    const auto opt = compute_stats(
        tx(src, TranslateOptions::schema2_optimized()).graph);
    EXPECT_GT(base.switches, prev_base);
    prev_base = base.switches;
    // Optimized: only y and w are ever switched; x never.
    EXPECT_LE(opt.switches, static_cast<std::size_t>(2 * depth));
    EXPECT_LT(opt.switches, base.switches);
  }
}

TEST(Structure, GraphSizeIsEdgesTimesVariablesUnderSchema2) {
  // Section 3: |arcs| = O(E · V). Doubling the variable count under the
  // naive schema roughly doubles the dummy-arc count.
  const auto arcs_for = [&](int vars) {
    const auto src = lang::corpus::independent_chains_source(vars, 2);
    return compute_stats(tx(src, TranslateOptions::schema2()).graph)
        .dummy_arcs;
  };
  const auto a4 = arcs_for(4);
  const auto a8 = arcs_for(8);
  EXPECT_GT(a8, a4 * 3 / 2);
}

TEST(Structure, UnifiedCoverCollectsOneTokenPerOp) {
  // Under the unified cover every op collects exactly one access token,
  // so no access-set synch trees are needed for scalar code.
  const Translation t =
      tx(lang::corpus::fortran_alias_source(),
         TranslateOptions::schema3(CoverStrategy::kUnified));
  EXPECT_EQ(t.num_resources, 1u);
}

TEST(Structure, SingletonCoverUnderAliasingBuildsAccessSetSynchs) {
  // [z] = {x,y,z}: an op on z collects three tokens → synch trees appear.
  const Translation t =
      tx(lang::corpus::fortran_alias_source(),
         TranslateOptions::schema3(CoverStrategy::kSingleton));
  EXPECT_EQ(t.num_resources, 5u);  // x, y, z, u, v
  EXPECT_GT(compute_stats(t.graph).synchs, 0u);
}

TEST(Structure, MemoryEliminationRemovesScalarTraffic) {
  auto o = TranslateOptions::schema2_optimized();
  o.eliminate_memory = true;
  const Translation base = tx(lang::corpus::running_example_source(),
                              TranslateOptions::schema2_optimized());
  const Translation elim = tx(lang::corpus::running_example_source(), o);
  const auto sb = compute_stats(base.graph);
  const auto se = compute_stats(elim.graph);
  EXPECT_EQ(se.loads, 0u);
  // Only the end-of-program writeback stores remain (one per variable).
  EXPECT_EQ(se.stores, 2u);
  EXPECT_GT(sb.loads, 0u);
}

TEST(Structure, LoopTransformStatsExposed) {
  const Translation t = tx(lang::corpus::running_example_source(),
                           TranslateOptions::schema2());
  EXPECT_EQ(t.loops, 1u);
  EXPECT_EQ(t.nodes_split, 0);
  const Translation irr = tx(lang::corpus::irreducible_source(),
                             TranslateOptions::schema2());
  EXPECT_GT(irr.nodes_split, 0);
}

TEST(Structure, SequentialSkipsLoopTransform) {
  const Translation t = tx(lang::corpus::running_example_source(),
                           TranslateOptions::schema1());
  EXPECT_EQ(t.loops, 0u);
  for (dfg::NodeId n : t.graph.all_nodes()) {
    EXPECT_NE(t.graph.node(n).kind, dfg::OpKind::kLoopEntry);
    EXPECT_NE(t.graph.node(n).kind, dfg::OpKind::kLoopExit);
  }
}

TEST(Structure, Fig14MarksQualifyingLoop) {
  auto o = TranslateOptions::schema2_optimized();
  o.parallel_store_arrays = {"x"};
  const Translation t = tx(lang::corpus::array_loop_source(10), o);
  EXPECT_EQ(t.loops_store_parallelized, 1u);
}

TEST(Structure, Fig14RejectsLoopThatReadsTheArray) {
  auto o = TranslateOptions::schema2_optimized();
  o.parallel_store_arrays = {"x"};
  const Translation t = tx(R"(
var i; array x[12];
l: i := i + 1; x[i] := x[i - 1] + 1;
if i < 10 then goto l else goto end;
)",
                           o);
  EXPECT_EQ(t.loops_store_parallelized, 0u);
}

TEST(Structure, Fig14RejectsNonInductionSubscript) {
  auto o = TranslateOptions::schema2_optimized();
  o.parallel_store_arrays = {"x"};
  const Translation t = tx(R"(
var i, j; array x[12];
l: i := i + 1; j := i * i; x[j] := 1;
if i < 10 then goto l else goto end;
)",
                           o);
  EXPECT_EQ(t.loops_store_parallelized, 0u);
}

TEST(Structure, IStructureRegionsExported) {
  auto o = TranslateOptions::schema2_optimized();
  o.istructure_arrays = {"x"};
  const Translation t = tx(lang::corpus::array_loop_source(10), o);
  ASSERT_EQ(t.istructures.size(), 1u);
  EXPECT_EQ(t.istructures.front().extent, 11u);
  const auto stats = compute_stats(t.graph);
  EXPECT_GT(stats.stores, 0u);
}

TEST(Structure, AliasedArrayCannotBeIStructure) {
  auto o = TranslateOptions::schema2_optimized();
  o.istructure_arrays = {"x"};
  support::DiagnosticEngine d;
  const auto p = lang::parse_or_throw(
      "var i; array x[4], y[4]; alias x y; x[i] := 1;");
  const Translation t = translate(p, o, d);
  EXPECT_TRUE(t.istructures.empty());
  EXPECT_FALSE(d.has_errors());  // warning, not error
}

}  // namespace
}  // namespace ctdf::translate
