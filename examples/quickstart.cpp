// Quickstart: compile the paper's running example (Fig. 1) under
// Schema 1, Schema 2, and the optimized Section-4 construction, run
// each on the simulated dataflow machine, and compare.
//
//   $ ./quickstart [--dot]
//
// With --dot, the Schema 2 dataflow graph is printed as Graphviz (the
// dotted arcs are the access tokens, exactly as drawn in the paper's
// figures).
#include <cstdio>
#include <cstring>

#include "core/compiler.hpp"
#include "lang/corpus.hpp"

using namespace ctdf;

int main(int argc, char** argv) {
  const bool want_dot = argc > 1 && std::strcmp(argv[1], "--dot") == 0;

  // The paper's running example:
  //   l: y := x + 1; x := x + 1; if x < 5 then goto l else goto end
  const lang::Program prog = lang::corpus::running_example();
  std::printf("source program:\n%s\n", prog.to_string().c_str());

  struct Variant {
    const char* name;
    translate::TranslateOptions options;
  };
  const Variant variants[] = {
      {"Schema 1 (sequential)", translate::TranslateOptions::schema1()},
      {"Schema 2 (per-variable tokens)",
       translate::TranslateOptions::schema2()},
      {"Schema 2 + switch optimization (Sec. 4)",
       translate::TranslateOptions::schema2_optimized()},
      {"+ memory elimination (Sec. 6.1)", [] {
         auto o = translate::TranslateOptions::schema2_optimized();
         o.eliminate_memory = true;
         return o;
       }()},
  };

  std::printf("%-42s %8s %8s %8s %10s\n", "variant", "nodes", "switches",
              "cycles", "ops/cycle");
  for (const Variant& v : variants) {
    const auto tx = core::compile(prog, v.options);
    machine::MachineOptions mopt;  // unlimited width: the dataflow limit
    const auto result = core::execute(tx, mopt);
    if (!result.stats.completed) {
      std::printf("%-42s FAILED: %s\n", v.name, result.stats.error.c_str());
      return 1;
    }
    const auto stats = dfg::compute_stats(tx.graph);
    std::printf("%-42s %8zu %8zu %8llu %10.2f\n", v.name, stats.nodes,
                stats.switches,
                static_cast<unsigned long long>(result.stats.cycles),
                result.stats.avg_parallelism());

    const std::int64_t x = core::read_scalar(prog, result.store, "x");
    const std::int64_t y = core::read_scalar(prog, result.store, "y");
    if (x != 5 || y != 5) {
      std::printf("unexpected result x=%lld y=%lld\n",
                  static_cast<long long>(x), static_cast<long long>(y));
      return 1;
    }
  }
  std::printf("\nall variants computed x = 5, y = 5 "
              "(matching sequential semantics)\n");

  if (want_dot) {
    const auto tx =
        core::compile(prog, translate::TranslateOptions::schema2());
    std::printf("\n%s", tx.graph.to_dot().c_str());
  }
  return 0;
}
