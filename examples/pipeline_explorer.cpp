// Machine-shape explorer: run one program across the machine parameter
// space (width × memory latency × loop mode) and print the cycle grid.
//
//   $ ./pipeline_explorer [source-file]
//
// Without an argument it uses a doubly nested loop workload. This is
// the "measuring how much parallelism the compiler exposed" use case
// the paper's introduction motivates: an abstract machine whose
// processor count and memory behavior are knobs.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/compiler.hpp"
#include "lang/corpus.hpp"

using namespace ctdf;

int main(int argc, char** argv) {
  std::string source;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  } else {
    source = lang::corpus::nested_loops_source(6, 8);
  }

  lang::Program prog = core::parse(source);
  const auto interp = lang::interpret(prog);
  if (!interp.completed) {
    std::fprintf(stderr, "program does not terminate within fuel\n");
    return 1;
  }

  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  const auto tx = core::compile(prog, topt);
  const auto gstats = dfg::compute_stats(tx.graph);
  std::printf("dataflow graph: %zu operators, %zu arcs, %zu switches\n\n",
              gstats.nodes, gstats.arcs, gstats.switches);

  for (const auto mode :
       {machine::LoopMode::kBarrier, machine::LoopMode::kPipelined}) {
    std::printf("loop mode: %s\n", to_string(mode));
    std::printf("%10s", "width\\lat");
    for (const unsigned lat : {1u, 4u, 16u}) std::printf(" %10u", lat);
    std::printf("\n");
    for (const unsigned width : {1u, 2u, 4u, 8u, 0u}) {
      std::printf(width ? "%10u" : "  infinite", width);
      for (const unsigned lat : {1u, 4u, 16u}) {
        machine::MachineOptions mopt;
        mopt.loop_mode = mode;
        mopt.width = width;
        mopt.mem_latency = lat;
        const auto res = core::execute(tx, mopt);
        if (!res.stats.completed || !(res.store == interp.store)) {
          std::printf(" %10s", "FAIL");
        } else {
          std::printf(" %10llu",
                      static_cast<unsigned long long>(res.stats.cycles));
        }
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("(cycles to completion; smaller is better. The width=infinite "
              "row is the\n pure-dataflow critical path.)\n");
  return 0;
}
