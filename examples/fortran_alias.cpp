// Aliasing and covers (paper Section 5).
//
// Reproduces the FORTRAN example: SUBROUTINE F(X, Y, Z) called as
// F(A, B, A) and F(C, D, D), giving the alias structure
//   [X] = {X, Z},  [Y] = {Y, Z},  [Z] = {X, Y, Z},
// then translates one body under the three cover strategies and shows
// the parallelism/synchronization tradeoff the paper describes: the
// singleton cover maximizes parallelism but operations on Z collect
// three access tokens; the unified cover needs one token per operation
// but serializes everything.
#include <cstdio>

#include "core/compiler.hpp"
#include "lang/corpus.hpp"

using namespace ctdf;

int main() {
  const lang::Program prog = lang::corpus::fortran_alias();
  std::printf("source (first call site, where X and Z share storage):\n%s\n",
              prog.to_string().c_str());

  const auto x = *prog.symbols.lookup("x");
  const auto y = *prog.symbols.lookup("y");
  const auto z = *prog.symbols.lookup("z");
  std::printf("alias classes: [x]={x,z} -> %zu, [y]={y,z} -> %zu, "
              "[z]={x,y,z} -> %zu\n\n",
              prog.symbols.alias_class(x).size(),
              prog.symbols.alias_class(y).size(),
              prog.symbols.alias_class(z).size());

  const auto interp = lang::interpret(prog);

  std::printf("%-14s %9s %10s %8s %8s %10s\n", "cover", "tokens",
              "synch-ops", "cycles", "ops", "ops/cycle");
  for (const auto strategy : {translate::CoverStrategy::kSingleton,
                              translate::CoverStrategy::kAliasClass,
                              translate::CoverStrategy::kComponent,
                              translate::CoverStrategy::kUnified}) {
    auto options = translate::TranslateOptions::schema3(strategy);
    options.optimize_switches = true;
    const auto tx = core::compile(prog, options);
    machine::MachineOptions mopt;
    mopt.mem_latency = 8;
    const auto res = core::execute(tx, mopt);
    if (!res.stats.completed) {
      std::printf("%-14s FAILED: %s\n", to_string(strategy),
                  res.stats.error.c_str());
      return 1;
    }
    if (!(res.store == interp.store)) {
      std::printf("%-14s WRONG RESULT\n", to_string(strategy));
      return 1;
    }
    const auto stats = dfg::compute_stats(tx.graph);
    std::printf("%-14s %9zu %10zu %8llu %8llu %10.2f\n", to_string(strategy),
                tx.num_resources, stats.synchs,
                static_cast<unsigned long long>(res.stats.cycles),
                static_cast<unsigned long long>(res.stats.ops_fired),
                res.stats.avg_parallelism());
  }

  std::printf("\nfinal store agrees with the sequential interpreter for "
              "every cover; x = %lld\n",
              static_cast<long long>(
                  core::read_scalar(prog, interp.store, "x")));
  return 0;
}
