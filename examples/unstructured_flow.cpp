// Unstructured control flow: gotos, a multi-exit loop, and an
// irreducible region (a branch into the middle of a loop).
//
// Demonstrates the full Section 3/4 pipeline on flow graphs that
// structured-language translators (like Veen & van den Born's, which
// the paper contrasts itself with) cannot handle: interval
// decomposition with node splitting ("code copying"), loop entry/exit
// insertion, and control-dependence-based switch placement.
#include <cstdio>

#include "core/compiler.hpp"
#include "lang/corpus.hpp"

using namespace ctdf;

namespace {

void show(const char* name, const lang::Program& prog) {
  std::printf("=== %s ===\n%s\n", name, prog.to_string().c_str());

  const auto interp = lang::interpret(prog);
  for (const auto& [schema, options] :
       {std::pair{"schema2", translate::TranslateOptions::schema2()},
        std::pair{"schema2+opt",
                  translate::TranslateOptions::schema2_optimized()}}) {
    const auto tx = core::compile(prog, options);
    const auto res = core::execute(tx, {});
    if (!res.stats.completed) {
      std::printf("  %-12s FAILED: %s\n", schema, res.stats.error.c_str());
      continue;
    }
    const bool matches = res.store == interp.store;
    std::printf("  %-12s loops=%zu nodes-split=%d switches=%zu cycles=%llu "
                "iterations(ctx)=%llu  %s\n",
                schema, tx.loops, tx.nodes_split,
                dfg::compute_stats(tx.graph).switches,
                static_cast<unsigned long long>(res.stats.cycles),
                static_cast<unsigned long long>(res.stats.contexts_allocated),
                matches ? "== interpreter" : "MISMATCH!");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // A loop with two exits: control can leave from the middle or from
  // the bottom test.
  show("multi-exit loop", core::parse(R"(
var i, s;
l: i := i + 1;
s := s + i;
if s > 12 then goto out else goto next;
next:
if i < 10 then goto l else goto out;
out: s := s * 2;
)"));

  // The paper's Fig. 9 shape: a conditional x bypasses entirely.
  show("fig9 bypass", lang::corpus::fig9());

  // An irreducible region: the first branch jumps into the *middle* of
  // the loop, so interval decomposition must copy code first.
  show("irreducible two-entry loop",
       core::parse(lang::corpus::irreducible_source()));

  return 0;
}
