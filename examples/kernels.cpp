// Numeric loop kernels (Livermore-loop style) across the schema ladder.
//
// The paper's motivation is FORTRAN-style scientific code; this example
// runs five classic kernel shapes — streaming map, reduction, serial
// recurrence, first difference, prefix sum — under Schema 1, optimized
// Schema 2, and the full Section 6 transform stack, and reports how
// much parallelism each translation exposes per kernel. The shapes
// matter: data-parallel kernels speed up dramatically, the serial
// recurrence barely moves (its critical path IS the recurrence).
#include <cstdio>
#include <string>

#include "core/compiler.hpp"

using namespace ctdf;

namespace {

struct Kernel {
  const char* name;
  std::string source;
  const char* result_var;
};

std::string header_decls(int n) {
  return "var k, q, r, t, acc;\narray x[" + std::to_string(n) +
         "], y[" + std::to_string(n) + "], z[" + std::to_string(n + 16) +
         "];\n" +
         // Deterministic input data.
         "k := 0;\n"
         "init: y[k] := k * 3 + 1; z[k] := k * 7 + 2;\n"
         "k := k + 1; if k < " + std::to_string(n) +
         " then goto init else goto zt;\n"
         "zt: z[k] := k + 5; k := k + 1; if k < " + std::to_string(n + 16) +
         " then goto zt else goto main;\nmain: k := 0;\n";
}

std::vector<Kernel> kernels(int n) {
  const std::string N = std::to_string(n);
  std::vector<Kernel> out;
  out.push_back({"hydro fragment",
                 header_decls(n) +
                     "q := 9; r := 3; t := 2;\n"
                     "l: x[k] := q + y[k] * (r * z[k + 10] + t * z[k + 11]);\n"
                     "k := k + 1; if k < " + N +
                     " then goto l else goto done;\n"
                     "done: acc := x[" + std::to_string(n - 1) + "];\n",
                 "acc"});
  out.push_back({"inner product",
                 header_decls(n) +
                     "l: acc := acc + z[k] * y[k];\n"
                     "k := k + 1; if k < " + N +
                     " then goto l else goto end;\n",
                 "acc"});
  out.push_back({"tridiag recurrence",
                 header_decls(n) +
                     "x[0] := 1;\nk := 1;\n"
                     "l: x[k] := z[k] % 7 * (y[k] - x[k - 1]) % 100;\n"
                     "k := k + 1; if k < " + N +
                     " then goto l else goto done;\n"
                     "done: acc := x[" + std::to_string(n - 1) + "];\n",
                 "acc"});
  out.push_back({"first difference",
                 header_decls(n) +
                     "l: x[k] := y[k + 1] - y[k];\n"
                     "k := k + 1; if k < " + std::to_string(n - 1) +
                     " then goto l else goto done;\n"
                     "done: acc := x[0] + x[" + std::to_string(n - 2) +
                     "];\n",
                 "acc"});
  out.push_back({"prefix sum",
                 header_decls(n) +
                     "l: acc := acc + y[k]; x[k] := acc;\n"
                     "k := k + 1; if k < " + N +
                     " then goto l else goto end;\n",
                 "acc"});
  return out;
}

}  // namespace

int main() {
  const int n = 24;
  machine::MachineOptions mopt;
  mopt.mem_latency = 8;
  mopt.loop_mode = machine::LoopMode::kPipelined;

  auto schema1 = translate::TranslateOptions::schema1();
  auto opt = translate::TranslateOptions::schema2_optimized();
  auto full = opt;
  full.eliminate_memory = true;
  full.parallel_reads = true;
  full.parallel_store_arrays = {"x"};

  std::printf("%-20s | %10s %10s %10s | %18s\n", "kernel (n=24)", "schema1",
              "schema2+opt", "full-stack", "speedup (1 -> full)");
  for (const Kernel& kern : kernels(n)) {
    const lang::Program prog = core::parse(kern.source);
    const auto ref = lang::interpret(prog, 10'000'000);
    if (!ref.completed) {
      std::printf("%-20s INTERP FAILED\n", kern.name);
      return 1;
    }
    std::uint64_t cycles[3] = {0, 0, 0};
    int i = 0;
    for (const auto& topt : {schema1, opt, full}) {
      const auto tx = core::compile(prog, topt);
      const auto res = core::execute(tx, mopt);
      if (!res.stats.completed || !(res.store == ref.store)) {
        std::printf("%-20s FAILED under %s: %s\n", kern.name,
                    topt.describe().c_str(), res.stats.error.c_str());
        return 1;
      }
      cycles[i++] = res.stats.cycles;
    }
    std::printf("%-20s | %10llu %10llu %10llu | %17.1fx\n", kern.name,
                static_cast<unsigned long long>(cycles[0]),
                static_cast<unsigned long long>(cycles[1]),
                static_cast<unsigned long long>(cycles[2]),
                static_cast<double>(cycles[0]) /
                    static_cast<double>(cycles[2]));
    std::printf("%-20s   result %s = %lld (all translations agree)\n", "",
                kern.result_var,
                static_cast<long long>(core::read_scalar(
                    prog, ref.store, kern.result_var)));
  }
  std::printf("\nnote the shape: streaming kernels gain the most; the "
              "tridiagonal recurrence is\nbound by its loop-carried "
              "dependence and resists parallelization, as it should.\n");
  return 0;
}
