// Array parallelization (paper Section 6.3, Fig. 14).
//
// A producer loop fills an array, a consumer loop reduces it. Four
// translations of the same program:
//   1. naive        — every array op serializes on access_a
//   2. fig14        — stores in the producer loop are parallelized by
//                     token duplication + a completion chain
//   3. I-structures — the array is write-once: reads defer in memory,
//                     producer and consumer loops overlap
//   4. everything   — fig14 + I-structures + memory elimination
#include <cstdio>
#include <string>

#include "core/compiler.hpp"

using namespace ctdf;

namespace {

std::string stencil_source(int n) {
  std::string src = "var i, j, s;\narray a[" + std::to_string(n + 2) + "];\n";
  src += "produce: i := i + 1; a[i] := i * i; if i < " + std::to_string(n) +
         " then goto produce else goto consume;\n";
  src += "consume: j := j + 1; s := s + a[j]; if j < " + std::to_string(n) +
         " then goto consume else goto end;\n";
  return src;
}

}  // namespace

int main() {
  const int n = 24;
  const lang::Program prog = core::parse(stencil_source(n));
  const auto interp = lang::interpret(prog);

  machine::MachineOptions mopt;
  mopt.mem_latency = 16;  // make the split-phase memory visible
  mopt.loop_mode = machine::LoopMode::kPipelined;

  struct Variant {
    const char* name;
    translate::TranslateOptions options;
  };
  // Scalar memory traffic (i, j, s) dominates unless eliminated, so the
  // array transforms are shown on top of Sec. 6.1 memory elimination.
  auto naive = translate::TranslateOptions::schema2_optimized();
  auto base = naive;
  base.eliminate_memory = true;
  auto fig14 = base;
  fig14.parallel_store_arrays = {"a"};
  auto istruct = base;
  istruct.istructure_arrays = {"a"};

  std::printf("producer/consumer over a[%d], mem latency %u cycles, "
              "pipelined loops\n\n", n, mopt.mem_latency);
  std::printf("%-16s %8s %8s %10s %12s\n", "variant", "cycles", "ops",
              "ops/cycle", "deferred-rd");
  for (const Variant& v :
       {Variant{"naive", naive}, Variant{"+mem-elim", base},
        Variant{"+fig14", fig14}, Variant{"+istructures", istruct}}) {
    const auto tx = core::compile(prog, v.options);
    const auto res = core::execute(tx, mopt);
    if (!res.stats.completed) {
      std::printf("%-16s FAILED: %s\n", v.name, res.stats.error.c_str());
      return 1;
    }
    if (!(res.store == interp.store)) {
      std::printf("%-16s WRONG RESULT\n", v.name);
      return 1;
    }
    std::printf("%-16s %8llu %8llu %10.2f %12llu\n", v.name,
                static_cast<unsigned long long>(res.stats.cycles),
                static_cast<unsigned long long>(res.stats.ops_fired),
                res.stats.avg_parallelism(),
                static_cast<unsigned long long>(res.stats.deferred_reads));
  }

  std::printf("\ns = %lld (all variants agree with the interpreter)\n",
              static_cast<long long>(
                  core::read_scalar(prog, interp.store, "s")));
  return 0;
}
