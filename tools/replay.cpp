// Chaos-replay harness for the ctdf serve front-end.
//
// Drives a live `ctdf serve` process with thousands of seeded mixed
// requests — well-formed runs, compiles, batches, malformed lines,
// fault-injected and cycle-capped programs, deadline-doomed requests,
// stats probes — over either the stdin/stdout pipe or the Unix-socket
// transport, and checks the overload-safety invariants end to end:
//
//   * the server never dies while clients are connected;
//   * every request line gets exactly one typed response line, in
//     request order (overload rejections included);
//   * the process exits cleanly after drain (pipe: EOF after a
//     trailing `shutdown`; socket: SIGTERM with nothing outstanding).
//
// The summary is one JSON object on stdout: request/response counts,
// the server's exit status, p50/p95/p99 latency in microseconds, and a
// census of response kinds. Exit status: 0 when every invariant held,
// 1 on a violation, 2 on usage or setup errors.
//
//   replay --server=PATH [--mode=pipe|socket] [--requests=N]
//          [--seed=S] [--workers=K] [--max-queue=Q] [--drain-ms=D]
//          [--socket=PATH] [--timeout-s=T]
//
// Latency is measured per request from the moment the line is written
// to the moment its (order-correlated) response arrives, so under a
// pipelined flood it reflects queueing plus service time — exactly the
// number a client sees under overload.

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.hpp"

#ifdef _WIN32
int main() {
  std::fprintf(stderr, "replay: POSIX-only (needs fork/exec + sockets)\n");
  return 2;
}
#else

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

namespace {

using Clock = std::chrono::steady_clock;

long long now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string value_of(const std::string& arg) {
  const auto eq = arg.find('=');
  return eq == std::string::npos ? "" : arg.substr(eq + 1);
}

bool parse_unsigned(const std::string& v, unsigned long long& out) {
  if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos)
    return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(v.c_str(), &end, 10);
  return errno == 0 && end == v.c_str() + v.size();
}

/// JSON string literal with the escapes the serve parser understands.
std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

// ---------------------------------------------------------------------------
// Request generation
// ---------------------------------------------------------------------------

// Small program pool. Variants of the straight-line program differ in
// one constant so repeats hit the program cache while the pool still
// exercises distinct compilations.
const char* kRunning =
    "var x, y;\n"
    "l:\n"
    "  y := x + 1;\n"
    "  x := x + 1;\n"
    "  if x < 5 then goto l else goto end;\n";

const char* kFib =
    "var i, a, b, t, sum;\n"
    "array f[16];\n"
    "  f[0] := 0;\n"
    "  f[1] := 1;\n"
    "  a := 0;\n"
    "  b := 1;\n"
    "  i := 2;\n"
    "fill:\n"
    "  t := a + b;\n"
    "  f[i] := t;\n"
    "  a := b;\n"
    "  b := t;\n"
    "  i := i + 1;\n"
    "  if i < 16 then goto fill else goto reduce;\n"
    "reduce:\n"
    "  i := 0;\n"
    "loop:\n"
    "  sum := sum + f[i];\n"
    "  i := i + 1;\n"
    "  if i < 16 then goto loop else goto end;\n";

const char* kSpin =
    "var x, i;\n"
    "l:\n"
    "  x := x + 1;\n"
    "  if i < 1 then goto l else goto end;\n";

const char* kBadSyntax = "var x;\n  x := ;\n";

std::string simple_variant(unsigned k) {
  return "var x, y;\n  x := " + std::to_string(k % 8) +
         " + 3;\n  y := x * x;\n";
}

std::string pick_source(std::mt19937_64& rng) {
  switch (rng() % 5) {
    case 0: return kRunning;
    case 1: return kFib;
    default: return simple_variant(static_cast<unsigned>(rng() % 8));
  }
}

std::string options_field(std::mt19937_64& rng) {
  switch (rng() % 4) {
    case 0: return ", \"options\": [\"--mem-elim\"]";
    case 1: return ", \"options\": [\"--engine=event\"]";
    default: return "";
  }
}

/// One seeded request line (no trailing newline). `id` doubles as the
/// correlation hint; malformed lines sometimes drop it on purpose.
std::string generate_request(std::mt19937_64& rng, std::size_t id) {
  const std::string idf = "\"id\": " + std::to_string(id);
  const unsigned long long r = rng() % 100;
  if (r < 55) {  // plain run
    std::string line = "{" + idf + ", \"op\": \"run\", \"source\": " +
                       quoted(pick_source(rng)) + options_field(rng);
    if (rng() % 3 == 0) line += ", \"print\": [\"x\"]";
    return line + "}";
  }
  if (r < 65)  // compile only
    return "{" + idf + ", \"op\": \"compile\", \"source\": " +
           quoted(pick_source(rng)) + options_field(rng) + "}";
  if (r < 75) {  // batch of 2..4 items, op inherited
    std::string line = "{" + idf + ", \"op\": \"run-batch\"";
    if (rng() % 4 == 0) line += ", \"deadline_ms\": 600000";
    line += ", \"requests\": [";
    const unsigned n = 2 + static_cast<unsigned>(rng() % 3);
    for (unsigned i = 0; i < n; ++i) {
      if (i) line += ", ";
      line += "{\"id\": " + std::to_string(i) + ", \"source\": " +
              quoted(simple_variant(static_cast<unsigned>(rng() % 8))) + "}";
    }
    return line + "]}";
  }
  if (r < 83) {  // malformed: parser, shape, and field-type errors
    switch (rng() % 7) {
      case 0: return "{\"op\": \"run\", \"source\": \"var";  // truncated JSON
      case 1: return "[1, 2, 3]";                            // not an object
      case 2: return "{" + idf + "}";                        // missing op
      case 3: return "{" + idf + ", \"op\": \"frobnicate\"}";
      case 4: return "{" + idf + ", \"op\": \"run\"}";  // missing source
      case 5: return "{" + idf + ", \"op\": \"run\", \"source\": 7}";
      default:
        return "{" + idf + ", \"op\": \"run\", \"deadline_ms\": -5, "
               "\"source\": " + quoted(simple_variant(0)) + "}";
    }
  }
  if (r < 90) {  // doomed: typed machine/options/compile errors
    switch (rng() % 4) {
      case 0:
        return "{" + idf + ", \"op\": \"run\", \"options\": "
               "[\"--max-cycles=5\", \"--mem-elim\"], \"source\": " +
               quoted(kFib) + "}";
      case 1:
        return "{" + idf + ", \"op\": \"run\", \"options\": "
               "[\"--faults=drop=1\", \"--processors=2\", \"--mem-elim\"], "
               "\"source\": " + quoted(kFib) + "}";
      case 2:
        return "{" + idf + ", \"op\": \"run\", \"options\": "
               "[\"--engine=wheelie\"], \"source\": " + quoted(kRunning) + "}";
      default:
        return "{" + idf + ", \"op\": \"run\", \"source\": " +
               quoted(kBadSyntax) + "}";
    }
  }
  if (r < 95) {  // deadline-doomed: mostly pre-expired, sometimes live
    const bool live = rng() % 8 == 0;
    return "{" + idf + ", \"op\": \"run\", \"deadline_ms\": " +
           (live ? "5" : "0") + ", \"source\": " + quoted(kSpin) + "}";
  }
  return "{" + idf + ", \"op\": \"stats\"}";
}

// ---------------------------------------------------------------------------
// Server process control
// ---------------------------------------------------------------------------

struct ServerProc {
  pid_t pid = -1;
  int to_server = -1;    // we write requests here
  int from_server = -1;  // we read responses here
};

/// fork/exec `server serve <args>`; pipe mode wires stdin/stdout,
/// socket mode leaves them alone (the caller connects separately).
bool spawn_server(const std::string& server, std::vector<std::string> args,
                  bool pipe_mode, ServerProc& proc) {
  int in_pipe[2] = {-1, -1};   // parent -> child stdin
  int out_pipe[2] = {-1, -1};  // child stdout -> parent
  if (pipe_mode && (pipe(in_pipe) != 0 || pipe(out_pipe) != 0)) {
    std::perror("replay: pipe");
    return false;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("replay: fork");
    return false;
  }
  if (pid == 0) {
    if (pipe_mode) {
      dup2(in_pipe[0], 0);
      dup2(out_pipe[1], 1);
      close(in_pipe[0]);
      close(in_pipe[1]);
      close(out_pipe[0]);
      close(out_pipe[1]);
    }
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(server.c_str()));
    std::string serve_cmd = "serve";
    argv.push_back(serve_cmd.data());
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    execv(server.c_str(), argv.data());
    std::perror("replay: execv");
    _exit(127);
  }
  proc.pid = pid;
  if (pipe_mode) {
    close(in_pipe[0]);
    close(out_pipe[1]);
    proc.to_server = in_pipe[1];
    proc.from_server = out_pipe[0];
  }
  return true;
}

int connect_unix(const std::string& path, int attempts) {
  for (int i = 0; i < attempts; ++i) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0)
      return fd;
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return -1;
}

/// Reap the server, escalating to SIGKILL if it ignores SIGTERM — a
/// kill here is itself an invariant failure (reported as exit -9).
int await_exit(pid_t pid, int timeout_ms) {
  int status = 0;
  for (int waited = 0; waited < timeout_ms; waited += 20) {
    const pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid)
      return WIFEXITED(status) ? WEXITSTATUS(status)
                               : -WTERMSIG(status);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  kill(pid, SIGKILL);
  waitpid(pid, &status, 0);
  return -SIGKILL;
}

// ---------------------------------------------------------------------------
// Drive loop
// ---------------------------------------------------------------------------

struct Config {
  std::string server;
  std::string mode = "pipe";
  std::string socket_path;
  std::size_t requests = 1000;
  unsigned long long seed = 1;
  std::size_t workers = 2;
  std::size_t max_queue = 64;
  std::size_t drain_ms = 20000;
  long long timeout_s = 120;
};

struct Outcome {
  std::size_t sent = 0;
  std::size_t received = 0;
  int server_exit = -1;
  std::vector<long long> latencies_us;
  std::map<std::string, std::size_t> census;
  std::vector<std::string> violations;
};

/// Writes every line (stamping its send time), then in pipe mode the
/// trailing shutdown, then closes the fd. Runs on its own thread so
/// the reader can drain responses concurrently — otherwise a full
/// pipe would deadlock the flood.
void writer_main(int fd, const std::vector<std::string>* lines,
                 std::atomic<long long>* sent_at, std::atomic<bool>* failed) {
  for (std::size_t i = 0; i < lines->size(); ++i) {
    std::string line = (*lines)[i] + "\n";
    sent_at[i].store(now_us(), std::memory_order_relaxed);
    const char* p = line.data();
    std::size_t left = line.size();
    while (left > 0) {
      const ssize_t n = ::write(fd, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        failed->store(true, std::memory_order_relaxed);
        ::close(fd);
        return;
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    // A breather every ~hundred lines lets the queue drain a little so
    // the run exercises both the overloaded and the steady regime.
    if (i % 97 == 96)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ::close(fd);
}

/// Classify one response line into the census; returns false when the
/// line violates the "every response is a typed JSON object" invariant.
bool classify(const std::string& line, std::map<std::string, std::size_t>& c) {
  using ctdf::serve::JsonValue;
  const auto doc = ctdf::serve::json_parse(line);
  if (!doc || !doc->is_object()) {
    ++c["unparseable"];
    return false;
  }
  const JsonValue* ok = doc->find("ok");
  if (!ok || ok->kind != JsonValue::Kind::kBool) {
    ++c["unparseable"];
    return false;
  }
  if (ok->boolean) {
    ++c["ok"];
    return true;
  }
  const JsonValue* err = doc->find("error");
  const JsonValue* kind = err ? err->find("kind") : nullptr;
  if (!kind || !kind->is_string()) {
    ++c["unparseable"];
    return false;
  }
  ++c[kind->string];
  return true;
}

/// Read NDJSON responses until `expected` lines arrive or the stream
/// ends; stamps receive times and feeds the census.
void read_responses(int fd, std::size_t expected,
                    const std::atomic<long long>* sent_at, long long deadline_us,
                    Outcome& out) {
  std::string buf;
  char chunk[4096];
  while (out.received < expected) {
    const long long left_ms = (deadline_us - now_us()) / 1000;
    if (left_ms <= 0) {
      out.violations.push_back("timed out waiting for responses");
      return;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(std::min(left_ms,
                                                             1000LL)));
    if (pr < 0 && errno != EINTR) return;
    if (pr <= 0) continue;
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (n == 0) return;  // EOF
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buf.find('\n', start); nl != std::string::npos;
         nl = buf.find('\n', start)) {
      const std::string line = buf.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      const long long t = now_us();
      if (out.received < expected) {
        const long long sent =
            sent_at[out.received].load(std::memory_order_relaxed);
        out.latencies_us.push_back(t - sent);
      }
      ++out.received;
      if (!classify(line, out.census))
        out.violations.push_back("malformed response: " + line.substr(0, 120));
    }
    buf.erase(0, start);
  }
}

long long percentile(std::vector<long long>& v, double p) {
  if (v.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

int run_replay(const Config& cfg) {
  // A dead server must surface as a failed write, not a SIGPIPE death
  // of the harness itself.
  signal(SIGPIPE, SIG_IGN);

  std::mt19937_64 rng(cfg.seed);
  std::vector<std::string> lines;
  lines.reserve(cfg.requests + 1);
  for (std::size_t i = 0; i < cfg.requests; ++i)
    lines.push_back(generate_request(rng, i));
  const bool pipe_mode = cfg.mode == "pipe";
  if (pipe_mode)
    lines.push_back("{\"id\": \"bye\", \"op\": \"shutdown\"}");

  std::vector<std::string> args = {
      "--workers=" + std::to_string(cfg.workers),
      "--max-queue=" + std::to_string(cfg.max_queue),
      "--drain-ms=" + std::to_string(cfg.drain_ms),
  };
  std::string socket_path = cfg.socket_path;
  if (!pipe_mode) {
    if (socket_path.empty())
      socket_path = "replay_" + std::to_string(getpid()) + ".sock";
    args.push_back("--socket=" + socket_path);
  }

  ServerProc proc;
  if (!spawn_server(cfg.server, args, pipe_mode, proc)) return 2;

  int wfd = proc.to_server;
  int rfd = proc.from_server;
  if (!pipe_mode) {
    const int fd = connect_unix(socket_path, /*attempts=*/100);
    if (fd < 0) {
      std::fprintf(stderr, "replay: cannot connect to %s\n",
                   socket_path.c_str());
      kill(proc.pid, SIGKILL);
      waitpid(proc.pid, nullptr, 0);
      return 2;
    }
    wfd = fd;
    rfd = fd;
  }

  Outcome out;
  out.sent = lines.size();
  auto sent_at = std::make_unique<std::atomic<long long>[]>(lines.size());
  std::atomic<bool> write_failed{false};
  const long long deadline_us = now_us() + cfg.timeout_s * 1'000'000;

  // Socket mode reads and writes one fd; closing it in the writer
  // would yank the reader, so the writer gets a dup and only that dies.
  const int writer_fd = pipe_mode ? wfd : ::dup(wfd);
  std::thread writer(writer_main, writer_fd, &lines, sent_at.get(),
                     &write_failed);
  read_responses(rfd, lines.size(), sent_at.get(), deadline_us, out);
  writer.join();
  if (write_failed.load())
    out.violations.push_back("write to server failed (server died?)");

  if (pipe_mode) {
    // EOF + drain already happened; the process should be gone.
    out.server_exit = await_exit(proc.pid, 30000);
    ::close(rfd);
  } else {
    // Everything answered: a SIGTERM now must drain cleanly.
    kill(proc.pid, SIGTERM);
    ::close(wfd);
    out.server_exit = await_exit(proc.pid, 30000);
  }

  if (out.received != out.sent)
    out.violations.push_back(
        "dropped responses: sent " + std::to_string(out.sent) + ", received " +
        std::to_string(out.received));
  if (out.server_exit != 0)
    out.violations.push_back("server exit status " +
                             std::to_string(out.server_exit));

  const long long p50 = percentile(out.latencies_us, 0.50);
  const long long p95 = percentile(out.latencies_us, 0.95);
  const long long p99 = percentile(out.latencies_us, 0.99);

  std::string census = "{";
  bool first = true;
  for (const auto& [k, v] : out.census) {
    if (!first) census += ", ";
    first = false;
    census += quoted(k) + ": " + std::to_string(v);
  }
  census += "}";
  std::printf(
      "{\"mode\": %s, \"requests\": %zu, \"responses\": %zu, "
      "\"server_exit\": %d, \"p50_us\": %lld, \"p95_us\": %lld, "
      "\"p99_us\": %lld, \"census\": %s, \"violations\": %zu}\n",
      quoted(cfg.mode).c_str(), out.sent, out.received, out.server_exit, p50,
      p95, p99, census.c_str(), out.violations.size());
  for (const std::string& v : out.violations)
    std::fprintf(stderr, "replay: INVARIANT VIOLATED: %s\n", v.c_str());
  return out.violations.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    unsigned long long v = 0;
    if (starts_with(a, "--server=")) {
      cfg.server = value_of(a);
    } else if (starts_with(a, "--mode=")) {
      cfg.mode = value_of(a);
    } else if (starts_with(a, "--socket=")) {
      cfg.socket_path = value_of(a);
    } else if (starts_with(a, "--requests=")) {
      if (!parse_unsigned(value_of(a), v) || v == 0 || v > (1ull << 24)) {
        std::fprintf(stderr, "replay: bad %s\n", a.c_str());
        return 2;
      }
      cfg.requests = static_cast<std::size_t>(v);
    } else if (starts_with(a, "--seed=")) {
      if (!parse_unsigned(value_of(a), cfg.seed)) return 2;
    } else if (starts_with(a, "--workers=")) {
      if (!parse_unsigned(value_of(a), v) || v == 0) return 2;
      cfg.workers = static_cast<std::size_t>(v);
    } else if (starts_with(a, "--max-queue=")) {
      if (!parse_unsigned(value_of(a), v) || v == 0) return 2;
      cfg.max_queue = static_cast<std::size_t>(v);
    } else if (starts_with(a, "--drain-ms=")) {
      if (!parse_unsigned(value_of(a), v)) return 2;
      cfg.drain_ms = static_cast<std::size_t>(v);
    } else if (starts_with(a, "--timeout-s=")) {
      if (!parse_unsigned(value_of(a), v) || v == 0) return 2;
      cfg.timeout_s = static_cast<long long>(v);
    } else {
      std::fprintf(stderr, "replay: unknown flag %s\n", a.c_str());
      return 2;
    }
  }
  if (cfg.server.empty()) {
    std::fprintf(stderr,
                 "usage: replay --server=PATH [--mode=pipe|socket] "
                 "[--requests=N] [--seed=S] [--workers=K] [--max-queue=Q] "
                 "[--drain-ms=D] [--socket=PATH] [--timeout-s=T]\n");
    return 2;
  }
  if (cfg.mode != "pipe" && cfg.mode != "socket") {
    std::fprintf(stderr, "replay: --mode must be pipe or socket\n");
    return 2;
  }
  return run_replay(cfg);
}

#endif  // _WIN32
