// ctdf — command-line driver for the control-flow → dataflow compiler.
//
//   ctdf run <file> [options]       compile + execute on the simulator
//   ctdf interp <file>              reference sequential interpreter
//   ctdf dot <file> [options]       emit the dataflow graph (Graphviz)
//   ctdf dot-cfg <file>             emit the control-flow graph
//   ctdf explain <file> [options]   compilation report (loops, switches)
//   ctdf compare <file> [options]   schema ladder comparison table
//   ctdf asm <file> [options]       emit dataflow assembly (.dfa)
//   ctdf exec <file.dfa> [machine options]   execute dataflow assembly
//   ctdf serve [options]            NDJSON request loop (stdin or
//                                   --socket=PATH); see src/serve/serve.hpp
//                                   for the request/response protocol
//
// Schema options:
//   --schema1               Schema 1 (single access token, sequential)
//   --cover=singleton|alias-class|component|unified  (default singleton)
//   --no-opt                disable Sec. 4 switch optimization
//   --mem-elim              Sec. 6.1 memory elimination
//   --dse                   liveness-based dead-store elimination
//   --post-opt              dataflow-graph cleanup passes
//   --opt=LIST              select optimizer passes: `none`, `all`
//                           (cleanup + fusion), or a comma list from
//                           fold-switch, collapse-merge, dce,
//                           const-fold, switch-elim, synch-narrow, fuse
//   --fuse-limit=N          max ops per fused macro chain (default 8,
//                           minimum 2; only meaningful with `fuse`)
//   --max-fanout=N          bound destination lists (Monsoon: 2;
//                           0 = unlimited, 1 is rejected)
//   --par-reads             Sec. 6.2 read parallelization
//   --fig14=a,b             Sec. 6.3 store parallelization for arrays
//   --istructure=a,b        Sec. 6.3 write-once arrays on I-structures
//
// Pipeline options:
//   --stage-stats           print the per-stage pipeline table (time,
//                           artifact sizes, counters); run/explain
//   --dump-after=STAGE      print the named stage's artifact instead of
//                           the final graph (dot command), e.g.
//                           `ctdf dot f.ctdf --post-opt
//                            --dump-after=translate` shows the graph
//                           before the cleanup passes. Stages: parse,
//                           cfg-build, dse, loop-transform, cover, ssa,
//                           dominance, control-dep, switch-place,
//                           translate, optimize, fanout, validate,
//                           lower (old names post-opt / fanout-lower
//                           are accepted as aliases)
//   --ssa                   run the stats-only SSA stage (φ placement,
//                           visible via --stage-stats / --dump-after)
//   --dump-exec             print the lowered ExecProgram op table
//                           (frame slots, fan-out, literals); accepted
//                           by run, dot, explain, and exec
//
// Machine options:
//   --engine=scan|event     pending-token engine (default scan): event
//                           uses a calendar queue + frame recycling;
//                           results are byte-identical either way
//   --check=off|integrity   tagged dataflow-integrity checking (default
//                           off): validates single-assignment slot tags,
//                           I-structure write-once cells, split-phase
//                           response accounting on every delivery;
//                           violations fail the run with a typed
//                           integrity/* error code
//   --width=N               operators fired per cycle (0 = unlimited)
//   --mem-latency=N         split-phase memory round trip (default 4)
//   --barrier               barrier loop control (default: pipelined)
//   --loop-bound=K          at most K iterations in flight (0 = unbounded)
//   --processors=N          N PEs, one op/cycle each (0 = abstract pool)
//   --network-latency=N     cross-PE token charge (default 2)
//   --place-by-node         hash instructions to PEs (default: frames)
//   --sched-seed=N          randomized scheduling (0 = FIFO)
//   --max-cycles=N          abort with a cycle-cap error after N cycles
//   --faults=SPEC           deterministic fault injection (comma list:
//                           drop=P,dup=P,jitter=P,nack=P rates in [0,1];
//                           attempts=N, backoff=N, cap=N retry ladder;
//                           watchdog=N no-progress steps). Recovery is
//                           built in; within-budget plans preserve the
//                           final store and semantic counters.
//   --fault-seed=N          fault stream seed (default 0)
//   --frame-capacity=N      finite frame store: at most N live iteration
//                           contexts, loop entries stall (back-pressure)
//                           at the bound (0 = unbounded)
//   --host-threads=N        simulator worker threads (N ≥ 1; 1 = serial;
//                           env fallback CTDF_HOST_THREADS; sync results
//                           are bit-identical at any count)
//   --parallel=sync|async   host-parallel discipline at N > 1 threads
//                           (default sync): sync is the cycle-
//                           synchronous barrier engine, async the
//                           work-stealing engine with epoch-based token
//                           exchange (stores and semantic counters match
//                           serial; cycle metrics are its own)
//   --slack=N               async: self-delivery sub-rounds per epoch
//                           before a fence (0 = auto from the latency
//                           ladder)
//   --deterministic[=0|1]   async: pin shards, fence loop boundaries,
//                           and disable stealing so equal options give
//                           byte-identical runs (default on; =0
//                           free-runs for throughput)
//   --trace                 print every operator firing
//   --print=x,y             print named variables from the final store
//   --stats-json            (run) emit RunStats + machine options +
//                           pipeline-stage counters as a JSON object on
//                           stdout instead of the usual summary/store
//
// Blob / cache options (run):
//   --dump-blob=PATH        write the compiled program as a versioned
//                           binary blob (machine/blob.hpp) after
//                           compilation, then run normally
//   --load-blob=PATH        execute a blob instead of compiling; the
//                           positional <file> is ignored (use `-`).
//                           Typed errors: unreadable / bad-magic /
//                           version-mismatch / truncated / hash-mismatch
//                           / malformed, exit code 2
//   --cache-dir=DIR         route compilation through the content-
//                           addressed program cache with a disk tier in
//                           DIR (core/progcache.hpp); adds a "cache"
//                           object to --stats-json and a cache line to
//                           --stage-stats
//   --cache-capacity=N      in-memory LRU entries (default 64)
//   --disk-capacity=N       disk-tier blob files (default 256)
//
// Serve options (serve; also accepts --cache-dir/--cache-capacity/
// --disk-capacity):
//   --socket=PATH           listen on a Unix stream socket instead of
//                           stdin/stdout
//   --workers=N             executor threads: the request pump's pool
//                           and run-batch fan-out (default 1)
//   --max-queue=N           admission bound; requests beyond N queued
//                           get a typed "overloaded" rejection with a
//                           retry_after_ms hint (default 256)
//   --drain-ms=N            graceful-drain window after shutdown /
//                           SIGTERM / EOF: queued requests still run
//                           until it closes, then are rejected as
//                           "draining" (default 2000)
//   --slow-ms=N             requests slower than N ms bump the
//                           slow_requests counter in the "stats" op
//                           (default 1000)
//   --default-deadline-ms=N wall-clock budget applied to requests that
//                           carry no "deadline_ms" of their own
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cfg/build.hpp"
#include "core/compiler.hpp"
#include "core/pipeline.hpp"
#include "core/progcache.hpp"
#include "dfg/asmfmt.hpp"
#include "lang/subroutines.hpp"
#include "machine/blob.hpp"
#include "machine/exec.hpp"
#include "machine/flags.hpp"
#include "machine/report.hpp"
#include "serve/serve.hpp"
#include "support/env.hpp"

using namespace ctdf;

namespace {

using translate::split_csv;

struct Cli {
  std::string command;
  std::string file;
  translate::TranslateOptions topt = translate::TranslateOptions::schema2_optimized();
  machine::MachineOptions mopt;
  std::vector<std::string> print_vars;
  bool report = false;
  bool stats_json = false;
  bool stage_stats = false;
  bool compute_ssa = false;
  bool dump_exec = false;
  std::optional<core::Stage> dump_after;
  std::string dump_blob;
  std::string load_blob;
  std::string cache_dir;
  std::size_t cache_capacity = 64;
  std::size_t disk_capacity = 256;
  std::string socket_path;       // serve
  std::size_t serve_workers = 1;  // serve
  std::size_t serve_max_queue = 256;         // serve admission bound
  std::size_t serve_drain_ms = 2000;         // serve drain window
  std::size_t serve_slow_ms = 1000;          // serve slow-request mark
  std::int64_t serve_default_deadline = -1;  // serve per-request default
  bool ok = true;
};

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string value_of(const std::string& arg) {
  const auto eq = arg.find('=');
  return eq == std::string::npos ? "" : arg.substr(eq + 1);
}

/// Strict unsigned parse for flag values: rejects empty strings, signs
/// (std::stoul silently wraps "-1"), embedded junk ("8x"), and
/// overflow, so a typo is a CLI error instead of a silent
/// misconfiguration.
bool parse_unsigned(const std::string& v, unsigned long long& out) {
  if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos)
    return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(v.c_str(), &end, 10);
  return errno == 0 && end == v.c_str() + v.size();
}

Cli parse_cli(int argc, char** argv) {
  Cli cli;
  cli.mopt = machine::default_cli_machine_options();
  if (argc < 2) {
    cli.ok = false;
    return cli;
  }
  cli.command = argv[1];
  // `serve` reads programs off the protocol, not a positional file.
  int first_option = 3;
  if (cli.command == "serve") {
    first_option = 2;
  } else if (argc < 3) {
    cli.ok = false;
    return cli;
  } else {
    cli.file = argv[2];
  }
  for (int i = first_option; i < argc; ++i) {
    const std::string a = argv[i];
    // Schema-selection flags share one parser with the bench harnesses,
    // machine flags one with the serve front-end.
    switch (translate::apply_schema_flag(cli.topt, a)) {
      case translate::SchemaFlagParse::kApplied:
        continue;
      case translate::SchemaFlagParse::kBadValue:
        std::fprintf(stderr, "bad value: %s\n", a.c_str());
        cli.ok = false;
        continue;
      case translate::SchemaFlagParse::kNotSchemaFlag:
        break;
    }
    {
      std::string detail;
      const auto parsed = machine::apply_machine_flag(cli.mopt, a, &detail);
      if (parsed == machine::MachineFlagParse::kApplied) continue;
      if (parsed == machine::MachineFlagParse::kBadValue) {
        if (detail.empty())
          std::fprintf(stderr, "bad value: %s\n", a.c_str());
        else
          std::fprintf(stderr, "bad value: %s (%s)\n", a.c_str(),
                       detail.c_str());
        cli.ok = false;
        continue;
      }
    }
    if (a == "--stage-stats") {
      cli.stage_stats = true;
    } else if (a == "--dump-exec") {
      cli.dump_exec = true;
    } else if (a == "--ssa") {
      cli.compute_ssa = true;
    } else if (starts_with(a, "--dump-after=")) {
      cli.dump_after = translate::stage_from_name(value_of(a));
      if (!cli.dump_after) {
        std::fprintf(stderr, "unknown stage: %s\n", value_of(a).c_str());
        cli.ok = false;
      }
    } else if (starts_with(a, "--dump-blob=")) {
      cli.dump_blob = value_of(a);
      if (cli.dump_blob.empty()) {
        std::fprintf(stderr, "bad value: %s\n", a.c_str());
        cli.ok = false;
      }
    } else if (starts_with(a, "--load-blob=")) {
      cli.load_blob = value_of(a);
      if (cli.load_blob.empty()) {
        std::fprintf(stderr, "bad value: %s\n", a.c_str());
        cli.ok = false;
      }
    } else if (starts_with(a, "--cache-dir=")) {
      cli.cache_dir = value_of(a);
      if (cli.cache_dir.empty()) {
        std::fprintf(stderr, "bad value: %s\n", a.c_str());
        cli.ok = false;
      }
    } else if (starts_with(a, "--cache-capacity=")) {
      unsigned long long v = 0;
      if (!parse_unsigned(value_of(a), v) || v == 0) {
        std::fprintf(stderr, "bad value: %s\n", a.c_str());
        cli.ok = false;
      } else {
        cli.cache_capacity = static_cast<std::size_t>(v);
      }
    } else if (starts_with(a, "--disk-capacity=")) {
      unsigned long long v = 0;
      if (!parse_unsigned(value_of(a), v) || v == 0) {
        std::fprintf(stderr, "bad value: %s\n", a.c_str());
        cli.ok = false;
      } else {
        cli.disk_capacity = static_cast<std::size_t>(v);
      }
    } else if (starts_with(a, "--socket=")) {
      cli.socket_path = value_of(a);
      if (cli.socket_path.empty()) {
        std::fprintf(stderr, "bad value: %s\n", a.c_str());
        cli.ok = false;
      }
    } else if (starts_with(a, "--workers=")) {
      unsigned long long v = 0;
      if (!parse_unsigned(value_of(a), v) || v == 0 || v > 1u << 10) {
        std::fprintf(stderr, "bad value: %s\n", a.c_str());
        cli.ok = false;
      } else {
        cli.serve_workers = static_cast<std::size_t>(v);
      }
    } else if (starts_with(a, "--max-queue=")) {
      unsigned long long v = 0;
      if (!parse_unsigned(value_of(a), v) || v == 0 || v > 1u << 20) {
        std::fprintf(stderr, "bad value: %s\n", a.c_str());
        cli.ok = false;
      } else {
        cli.serve_max_queue = static_cast<std::size_t>(v);
      }
    } else if (starts_with(a, "--drain-ms=")) {
      unsigned long long v = 0;
      if (!parse_unsigned(value_of(a), v) || v > 1u << 24) {
        std::fprintf(stderr, "bad value: %s\n", a.c_str());
        cli.ok = false;
      } else {
        cli.serve_drain_ms = static_cast<std::size_t>(v);
      }
    } else if (starts_with(a, "--slow-ms=")) {
      unsigned long long v = 0;
      if (!parse_unsigned(value_of(a), v) || v > 1u << 24) {
        std::fprintf(stderr, "bad value: %s\n", a.c_str());
        cli.ok = false;
      } else {
        cli.serve_slow_ms = static_cast<std::size_t>(v);
      }
    } else if (starts_with(a, "--default-deadline-ms=")) {
      unsigned long long v = 0;
      if (!parse_unsigned(value_of(a), v) || v > 1ull << 40) {
        std::fprintf(stderr, "bad value: %s\n", a.c_str());
        cli.ok = false;
      } else {
        cli.serve_default_deadline = static_cast<std::int64_t>(v);
      }
    } else if (a == "--report") {
      cli.report = true;
      cli.mopt.record_profile = true;
    } else if (a == "--stats-json") {
      cli.stats_json = true;
    } else if (starts_with(a, "--print=")) {
      cli.print_vars = split_csv(value_of(a));
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      cli.ok = false;
    }
  }
  return cli;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw support::CompileError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void print_store(const Cli& cli, const lang::Program& prog,
                 const lang::Store& store) {
  if (!cli.print_vars.empty()) {
    for (const auto& name : cli.print_vars) {
      const auto v = prog.symbols.lookup(name);
      if (!v) {
        std::printf("%s = <undeclared>\n", name.c_str());
        continue;
      }
      if (prog.symbols.is_array(*v)) {
        std::printf("%s = [", name.c_str());
        const auto n = prog.symbols.info(*v).array_size;
        for (std::int64_t i = 0; i < n; ++i)
          std::printf("%s%lld", i ? ", " : "",
                      static_cast<long long>(
                          lang::load_var(prog, store, *v, i)));
        std::printf("]\n");
      } else {
        std::printf("%s = %lld\n", name.c_str(),
                    static_cast<long long>(lang::load_var(prog, store, *v)));
      }
    }
    return;
  }
  for (lang::VarId v : prog.symbols.all_vars()) {
    if (prog.symbols.is_array(v)) continue;
    std::printf("%s = %lld\n", prog.symbols.name(v).c_str(),
                static_cast<long long>(lang::load_var(prog, store, v)));
  }
}

/// Store rendering for blob-loaded programs: same output conventions
/// as print_store, but driven by the blob's name→cell table instead of
/// the (absent) source symbol table.
void print_store_image(const Cli& cli, const machine::ProgramImage& image,
                       const lang::Store& store) {
  const auto cell = [&](std::uint64_t idx) -> long long {
    return idx < store.cells.size()
               ? static_cast<long long>(store.cells[idx])
               : 0;
  };
  const auto print_cell = [&](const machine::NamedCell& c) {
    if (c.extent == 0) {
      std::printf("%s = %lld\n", c.name.c_str(), cell(c.base));
      return;
    }
    std::printf("%s = [", c.name.c_str());
    for (std::int64_t i = 0; i < c.extent; ++i)
      std::printf("%s%lld", i ? ", " : "",
                  cell(c.base + static_cast<std::uint64_t>(i)));
    std::printf("]\n");
  };
  if (!cli.print_vars.empty()) {
    for (const auto& name : cli.print_vars) {
      const machine::NamedCell* found = nullptr;
      for (const auto& c : image.names)
        if (c.name == name) {
          found = &c;
          break;
        }
      if (found)
        print_cell(*found);
      else
        std::printf("%s = <undeclared>\n", name.c_str());
    }
    return;
  }
  for (const auto& c : image.names)
    if (c.extent == 0) print_cell(c);
}

/// `ctdf run - --load-blob=p.blob`: execute a serialized program image;
/// no source text, no compilation. Typed blob errors exit with code 2.
int cmd_run_blob(const Cli& cli) {
  const machine::BlobReadResult read =
      machine::read_blob_file(cli.load_blob);
  if (!read.ok()) {
    std::fprintf(stderr, "blob error [%s]: %s\n",
                 machine::to_string(read.error), read.message.c_str());
    return 2;
  }
  if (cli.dump_exec) {
    std::fputs(machine::render(read.image.exec).c_str(), stdout);
    return 0;
  }
  const auto res = core::execute(read.image, cli.mopt);
  if (cli.stats_json) {
    std::printf("{\n  \"machine\": %s,\n  \"blob\": {\"path\": \"%s\", "
                "\"blob_bytes\": %llu, \"content_hash\": \"%016llx\"}\n}\n",
                machine::render_stats_json(res.stats, cli.mopt).c_str(),
                machine::json_escape(cli.load_blob).c_str(),
                static_cast<unsigned long long>(read.blob_bytes),
                static_cast<unsigned long long>(read.content_hash));
    if (!res.stats.completed) {
      std::fprintf(stderr, "machine error: %s\n", res.stats.error.c_str());
      return 1;
    }
    return 0;
  }
  if (!res.stats.completed) {
    std::fprintf(stderr, "machine error: %s\n", res.stats.error.c_str());
    return 1;
  }
  std::printf("# blob %s | %llu bytes, hash %016llx | %s loop control\n",
              cli.load_blob.c_str(),
              static_cast<unsigned long long>(read.blob_bytes),
              static_cast<unsigned long long>(read.content_hash),
              to_string(cli.mopt.loop_mode));
  std::printf("# cycles=%llu ops=%llu ops/cycle=%.2f\n",
              static_cast<unsigned long long>(res.stats.cycles),
              static_cast<unsigned long long>(res.stats.ops_fired),
              res.stats.avg_parallelism());
  if (cli.report) std::fputs(machine::render_report(res.stats).c_str(), stdout);
  print_store_image(cli, read.image, res.store);
  return 0;
}

int cmd_serve(const Cli& cli) {
  serve::ServeOptions so;
  so.workers = cli.serve_workers;
  so.max_queue = cli.serve_max_queue;
  so.drain_ms = static_cast<std::int64_t>(cli.serve_drain_ms);
  so.slow_ms = static_cast<std::int64_t>(cli.serve_slow_ms);
  so.default_deadline_ms = cli.serve_default_deadline;
  so.cache.capacity = cli.cache_capacity;
  so.cache.dir = cli.cache_dir;
  so.cache.disk_capacity = cli.disk_capacity;
  serve::Server server(so);
  if (!cli.socket_path.empty()) return server.serve_socket(cli.socket_path);
  // stdin mode runs the same overload-safe pump as the socket loop:
  // bounded admission, ordered responses, signal-aware drain.
  return server.serve_pipe(0, 1);
}

int cmd_interp(const Cli& cli, const lang::Program& prog) {
  const auto r = lang::interpret(prog, 100'000'000);
  if (!r.completed) {
    std::fprintf(stderr, "interpreter: fuel exhausted\n");
    return 1;
  }
  std::printf("completed in %llu statement steps\n",
              static_cast<unsigned long long>(r.steps));
  print_store(cli, prog, r.store);
  return 0;
}

core::Pipeline make_pipeline(const Cli& cli) {
  core::PipelineOptions po(cli.topt);
  po.compute_ssa = cli.compute_ssa;
  po.dump_after = cli.dump_after;
  return core::Pipeline(po);
}

void print_stage_stats(const Cli& cli, const translate::PipelineTrace& trace,
                       const std::string& cache_line = "") {
  if (!cli.stage_stats) return;
  std::printf("pipeline stages (%s):\n%s", cli.topt.describe().c_str(),
              trace.table().c_str());
  if (!cache_line.empty()) std::printf("%s\n", cache_line.c_str());
}

void maybe_print_stage_stats(const Cli& cli, const core::CompileResult& cr) {
  print_stage_stats(cli, cr.trace);
}

void maybe_dump_exec(const Cli& cli, const core::CompileResult& cr) {
  if (!cli.dump_exec) return;
  std::fputs(machine::render(cr.exec).c_str(), stdout);
}

/// Pipeline-stage records (times, artifact sizes, counters) as a JSON
/// object — the compilation half of `ctdf run --stats-json`.
std::string pipeline_json(const translate::PipelineTrace& trace) {
  std::ostringstream os;
  os << "{\n    \"total_nanos\": " << trace.total_nanos()
     << ",\n    \"stages\": [";
  bool first = true;
  for (const auto& r : trace.stages) {
    if (!first) os << ',';
    first = false;
    os << "\n      {\"stage\": \"" << translate::to_string(r.stage)
       << "\", \"ran\": " << (r.ran ? "true" : "false")
       << ", \"nanos\": " << r.nanos << ", \"size_in\": " << r.size_in
       << ", \"size_out\": " << r.size_out << ", \"counters\": {";
    bool first_counter = true;
    for (const auto& [name, value] : r.counters) {
      if (!first_counter) os << ", ";
      first_counter = false;
      os << '"' << machine::json_escape(name) << "\": " << value;
    }
    os << "}}";
  }
  os << "\n    ]\n  }";
  return os.str();
}

int cmd_run(const Cli& cli, const lang::Program& prog,
            const std::string& source) {
  machine::ProgramImage image;
  translate::PipelineTrace trace;
  std::string cache_json;  // rendered "cache" object; empty = cache off
  std::string cache_line;  // --stage-stats one-liner
  if (!cli.cache_dir.empty()) {
    core::ProgramCache::Config cfg;
    cfg.capacity = cli.cache_capacity;
    cfg.dir = cli.cache_dir;
    cfg.disk_capacity = cli.disk_capacity;
    core::ProgramCache cache(cfg);
    core::PipelineOptions po(cli.topt);
    po.compute_ssa = cli.compute_ssa;
    po.dump_after = cli.dump_after;
    const auto out = cache.get(source, po);
    image = out.entry->image;
    trace = out.trace;
    cache_json =
        core::render_cache_json(cache.stats(), out.disposition,
                                out.entry->key);
    char line[160];
    std::snprintf(line, sizeof line,
                  "cache: %s (key %016llx, blob %llu bytes)",
                  core::to_string(out.disposition),
                  static_cast<unsigned long long>(out.entry->key),
                  static_cast<unsigned long long>(out.entry->blob_bytes));
    cache_line = line;
  } else {
    auto cr = make_pipeline(cli).run(prog);
    trace = std::move(cr.trace);
    image = core::make_program_image(std::move(cr));
  }
  print_stage_stats(cli, trace, cache_line);
  if (cli.dump_exec) std::fputs(machine::render(image.exec).c_str(), stdout);
  if (!cli.dump_blob.empty()) {
    const auto blob = machine::serialize(image);
    if (!machine::write_blob_file(cli.dump_blob, blob)) {
      std::fprintf(stderr, "blob error [unwritable]: cannot write %s\n",
                   cli.dump_blob.c_str());
      return 2;
    }
  }
  const auto res = core::execute(image, cli.mopt);
  if (cli.stats_json) {
    // Error runs still get a full, valid JSON document (with the typed
    // error object populated) — only the exit code differs.
    if (cache_json.empty()) {
      std::printf("{\n  \"machine\": %s,\n  \"pipeline\": %s\n}\n",
                  machine::render_stats_json(res.stats, cli.mopt).c_str(),
                  pipeline_json(trace).c_str());
    } else {
      std::printf("{\n  \"machine\": %s,\n  \"pipeline\": %s,\n"
                  "  \"cache\": %s\n}\n",
                  machine::render_stats_json(res.stats, cli.mopt).c_str(),
                  pipeline_json(trace).c_str(), cache_json.c_str());
    }
    if (!res.stats.completed) {
      std::fprintf(stderr, "machine error: %s\n", res.stats.error.c_str());
      return 1;
    }
    return 0;
  }
  if (!res.stats.completed) {
    std::fprintf(stderr, "machine error: %s\n", res.stats.error.c_str());
    return 1;
  }
  std::printf("# %s | %s loop control, width %u, mem latency %u\n",
              cli.topt.describe().c_str(), to_string(cli.mopt.loop_mode),
              cli.mopt.width, cli.mopt.mem_latency);
  std::printf("# cycles=%llu ops=%llu ops/cycle=%.2f contexts=%llu "
              "reads=%llu writes=%llu\n",
              static_cast<unsigned long long>(res.stats.cycles),
              static_cast<unsigned long long>(res.stats.ops_fired),
              res.stats.avg_parallelism(),
              static_cast<unsigned long long>(res.stats.contexts_allocated),
              static_cast<unsigned long long>(res.stats.mem_reads),
              static_cast<unsigned long long>(res.stats.mem_writes));
  if (cli.report) std::fputs(machine::render_report(res.stats).c_str(), stdout);
  print_store(cli, prog, res.store);
  return 0;
}

int cmd_dot(const Cli& cli, const lang::Program& prog) {
  const auto cr = make_pipeline(cli).run(prog);
  if (cli.dump_exec) {
    maybe_dump_exec(cli, cr);
    return 0;
  }
  if (cli.dump_after) {
    if (cr.dump.empty()) {
      std::fprintf(stderr,
                   "stage '%s' did not run under these options "
                   "(see --stage-stats)\n",
                   translate::to_string(*cli.dump_after));
      return 1;
    }
    std::fputs(cr.dump.c_str(), stdout);
    return 0;
  }
  std::fputs(cr.translation.graph.to_dot().c_str(), stdout);
  return 0;
}

int cmd_asm(const Cli& cli, const lang::Program& prog) {
  auto tx = core::compile(prog, cli.topt);
  dfg::Module m;
  m.graph = std::move(tx.graph);
  m.memory_cells = tx.memory_cells;
  for (const auto& r : tx.istructures)
    m.istructures.emplace_back(r.base, r.extent);
  std::fputs(dfg::write_asm(m).c_str(), stdout);
  return 0;
}

int cmd_exec(const Cli& cli) {
  const auto m = dfg::parse_asm_or_throw(read_file(cli.file));
  if (auto problems = m.graph.validate(); !problems.empty()) {
    for (const auto& p : problems)
      std::fprintf(stderr, "invalid module: %s\n", p.c_str());
    return 1;
  }
  if (cli.dump_exec) {
    std::fputs(machine::render(machine::lower(m.graph)).c_str(), stdout);
    return 0;
  }
  std::vector<machine::IStructureRegion> regions;
  for (const auto& [b, e] : m.istructures) regions.push_back({b, e});
  const auto res = machine::run(m.graph, m.memory_cells, cli.mopt, regions);
  if (!res.stats.completed) {
    std::fprintf(stderr, "machine error: %s\n", res.stats.error.c_str());
    return 1;
  }
  std::printf("# cycles=%llu ops=%llu ops/cycle=%.2f\n",
              static_cast<unsigned long long>(res.stats.cycles),
              static_cast<unsigned long long>(res.stats.ops_fired),
              res.stats.avg_parallelism());
  if (cli.report) std::fputs(machine::render_report(res.stats).c_str(), stdout);
  for (std::size_t c = 0; c < res.store.cells.size(); ++c)
    std::printf("cell[%zu] = %lld\n", c,
                static_cast<long long>(res.store.cells[c]));
  return 0;
}

int cmd_dot_cfg(const Cli&, const lang::Program& prog) {
  const auto g = cfg::build_cfg_or_throw(prog);
  std::fputs(g.to_dot(prog.symbols).c_str(), stdout);
  return 0;
}

int cmd_compare(const Cli& cli, const lang::Program& prog) {
  const auto interp = lang::interpret(prog, 100'000'000);
  if (!interp.completed) {
    std::fprintf(stderr, "program does not terminate within fuel\n");
    return 1;
  }
  struct Variant {
    const char* name;
    translate::TranslateOptions topt;
  };
  std::vector<Variant> variants;
  variants.push_back({"schema1", translate::TranslateOptions::schema1()});
  variants.push_back({"schema2", translate::TranslateOptions::schema2()});
  variants.push_back(
      {"schema2+opt", translate::TranslateOptions::schema2_optimized()});
  {
    auto t = translate::TranslateOptions::schema2_optimized();
    t.dead_store_elimination = true;
    t.eliminate_memory = true;
    t.parallel_reads = true;
    t.post_optimize = true;
    variants.push_back({"full-stack", t});
  }
  // Any array transforms the user asked for become one more rung.
  if (!cli.topt.parallel_store_arrays.empty() ||
      !cli.topt.istructure_arrays.empty()) {
    auto t = variants.back().topt;
    t.parallel_store_arrays = cli.topt.parallel_store_arrays;
    t.istructure_arrays = cli.topt.istructure_arrays;
    variants.push_back({"full+arrays", t});
  }

  std::printf("%-14s %8s %8s %8s %8s %8s %10s\n", "variant", "ops",
              "switches", "mem-rw", "cycles", "ctxs", "ops/cycle");
  for (const Variant& v : variants) {
    const auto tx = core::compile(prog, v.topt);
    const auto res = core::execute(tx, cli.mopt);
    if (!res.stats.completed) {
      std::printf("%-14s FAILED: %s\n", v.name, res.stats.error.c_str());
      return 1;
    }
    if (!(res.store == interp.store)) {
      std::printf("%-14s WRONG RESULT (bug!)\n", v.name);
      return 1;
    }
    const auto g = dfg::compute_stats(tx.graph);
    std::printf("%-14s %8zu %8zu %8llu %8llu %8llu %10.2f\n", v.name,
                g.nodes, g.switches,
                static_cast<unsigned long long>(res.stats.mem_reads +
                                                res.stats.mem_writes),
                static_cast<unsigned long long>(res.stats.cycles),
                static_cast<unsigned long long>(res.stats.contexts_allocated),
                res.stats.avg_parallelism());
  }
  std::printf("(all variants verified against the sequential interpreter)\n");
  return 0;
}

int cmd_explain(const Cli& cli, const lang::Program& prog) {
  const auto cr = make_pipeline(cli).run(prog);
  maybe_print_stage_stats(cli, cr);
  maybe_dump_exec(cli, cr);
  const auto& tx = cr.translation;
  const auto stats = dfg::compute_stats(tx.graph);
  std::printf("translation: %s\n", cli.topt.describe().c_str());
  std::printf("  CFG: %zu nodes, %zu edges\n", tx.cfg_nodes, tx.cfg_edges);
  std::printf("  loops: %zu (nodes split for reducibility: %d)\n", tx.loops,
              tx.nodes_split);
  std::printf("  resources (access tokens): %zu\n", tx.num_resources);
  std::printf("  switch placement: %zu needed\n", tx.switches_placed);
  std::printf("  fig14 store-parallelized loops: %zu\n",
              tx.loops_store_parallelized);
  if (cli.topt.dead_store_elimination)
    std::printf("  dead stores removed: %zu\n", tx.dead_stores_removed);
  if (cli.topt.post_optimize)
    std::printf("  post-pass ops removed: %zu\n", tx.post_opt_removed);
  if (cli.topt.max_fanout >= 2)
    std::printf("  replicate nodes inserted: %zu\n", tx.replicates_inserted);
  std::printf("dataflow graph:\n");
  std::printf("  %zu operators, %zu arcs (%zu access-token arcs)\n",
              stats.nodes, stats.arcs, stats.dummy_arcs);
  std::printf("  switches=%zu merges=%zu synchs=%zu loads=%zu stores=%zu "
              "alu=%zu loop-nodes=%zu\n",
              stats.switches, stats.merges, stats.synchs, stats.loads,
              stats.stores, stats.alu_ops, stats.loop_nodes);
  std::printf("memory image: %zu cells, %zu I-structure regions\n",
              tx.memory_cells, tx.istructures.size());

  // Dataflow limit: one run at unlimited width.
  machine::MachineOptions wide = cli.mopt;
  wide.width = 0;
  const auto res = core::execute(tx, wide);
  if (res.stats.completed) {
    std::printf("dataflow limit: %llu cycles, %.2f ops/cycle, %llu "
                "iteration contexts\n",
                static_cast<unsigned long long>(res.stats.cycles),
                res.stats.avg_parallelism(),
                static_cast<unsigned long long>(res.stats.contexts_allocated));
  } else {
    std::printf("execution failed: %s\n", res.stats.error.c_str());
  }
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: ctdf <run|interp|dot|dot-cfg|explain|compare|asm|exec>"
               " <file> [options]\n"
               "       ctdf serve [options]\n"
               "(see the header of tools/ctdf.cpp for the full "
               "option list)\n");
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli = parse_cli(argc, argv);
  if (!cli.ok) {
    usage();
    return 2;
  }
  try {
    if (cli.command == "serve") return cmd_serve(cli);
    if (cli.command == "exec") return cmd_exec(cli);  // dataflow assembly
    // A blob is a compiled artifact: no source is read or parsed (the
    // positional <file> is conventionally `-`).
    if (cli.command == "run" && !cli.load_blob.empty())
      return cmd_run_blob(cli);
    // Expand FORTRAN-style `sub`/`call` constructs first (identity for
    // programs without them).
    const auto expanded =
        lang::expand_subroutines_or_throw(read_file(cli.file));
    const lang::Program prog = core::parse(expanded.source);
    if (cli.command == "run") return cmd_run(cli, prog, expanded.source);
    if (cli.command == "interp") return cmd_interp(cli, prog);
    if (cli.command == "dot") return cmd_dot(cli, prog);
    if (cli.command == "dot-cfg") return cmd_dot_cfg(cli, prog);
    if (cli.command == "explain") return cmd_explain(cli, prog);
    if (cli.command == "compare") return cmd_compare(cli, prog);
    if (cli.command == "asm") return cmd_asm(cli, prog);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
