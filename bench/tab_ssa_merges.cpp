// T-SSA — Section 6.1's SSA connection, quantified.
//
// "It is similar in effect to classical transformations like renaming,
// live range splitting and conversion to static single assignment
// form... the exception is static single assignment form which uses
// φ-functions for this purpose. In our representation, the joining of
// values to produce a single value is implicit in the model."
//
// We build pruned SSA (φ-placement by iterated dominance frontiers,
// filtered by liveness) for each program and compare φ counts against
// the join operators the memory-eliminated dataflow translation emits
// for eliminable scalars: the explicit merges PLUS the loop-entry ports
// (the loop-header φs live there — at a loop header every φ is a
// loop-entry port, not a merge node). The correspondence is exact on
// structured code and near-exact with unstructured flow (where a merge
// can also stand in for a multi-way join the CFG models as a chain).
#include "cfg/build.hpp"
#include "cfg/ssa.hpp"
#include "common.hpp"
#include "lang/corpus.hpp"
#include "lang/generator.hpp"

using namespace ctdf;
using namespace ctdf::bench;

namespace {

struct Row {
  std::size_t phis_minimal = 0;
  std::size_t phis_pruned = 0;
  std::size_t merges = 0;
  std::size_t loop_ports = 0;
};

Row analyze(const lang::Program& prog) {
  Row row;
  const auto g = cfg::build_cfg_or_throw(prog);
  // Count φs only for token-carried (unaliased scalar) variables, and
  // not at the synthetic end join — its second predecessor is the
  // conventional start→end analysis edge, which never carries a value.
  const auto count = [&](const cfg::PhiPlacement& p) {
    std::size_t total = 0;
    for (cfg::NodeId n : g.all_nodes()) {
      if (n == g.end()) continue;
      for (lang::VarId v : p.phis[n]) {
        if (!prog.symbols.is_array(v) &&
            prog.symbols.alias_class(v).size() == 1)
          ++total;
      }
    }
    return total;
  };
  row.phis_minimal = count(cfg::place_phis(g, prog.symbols, false));
  row.phis_pruned = count(cfg::place_phis(g, prog.symbols, true));

  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  const auto tx = core::compile(prog, topt);
  for (dfg::NodeId n : tx.graph.all_nodes()) {
    const dfg::Node& node = tx.graph.node(n);
    if (node.kind == dfg::OpKind::kMerge) ++row.merges;
    if (node.kind == dfg::OpKind::kLoopEntry) row.loop_ports += node.num_inputs;
  }
  return row;
}

}  // namespace

int main() {
  header("tab_ssa_merges — dataflow merges are implicit φ-functions (Sec. 6.1)",
         "after memory elimination 'the joining of values ... is implicit in "
         "the model' — the\nmerge/loop-entry structure of the token graph "
         "matches pruned SSA's φ placement");

  std::printf("%-26s %10s %10s | %8s %11s %14s\n", "program", "phi(min)",
              "phi(pruned)", "merges", "loop-ports", "merges+ports");
  for (const auto& np : lang::corpus::all()) {
    const auto prog = core::parse(np.source);
    const Row r = analyze(prog);
    std::printf("%-26s %10zu %10zu | %8zu %11zu %14zu\n", np.name.c_str(),
                r.phis_minimal, r.phis_pruned, r.merges, r.loop_ports,
                r.merges + r.loop_ports);
  }

  std::printf("\nrandom structured programs (30 seeds, aggregated):\n");
  Row acc;
  int programs = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    lang::GeneratorOptions gopt;
    gopt.num_scalars = 4;
    const auto prog = lang::generate_program(gopt, seed);
    const Row r = analyze(prog);
    acc.phis_minimal += r.phis_minimal;
    acc.phis_pruned += r.phis_pruned;
    acc.merges += r.merges;
    acc.loop_ports += r.loop_ports;
    ++programs;
  }
  std::printf("%-26s %10zu %10zu | %8zu %11zu %14zu\n",
              "TOTAL (30 programs)", acc.phis_minimal, acc.phis_pruned,
              acc.merges, acc.loop_ports, acc.merges + acc.loop_ports);

  footer("pruned φ counts track the translation's merge+loop-port counts "
         "closely (loop-header\nφs appear as loop-entry ports, branch-join "
         "φs as merges); minimal SSA over-places\nrelative to what the token "
         "graph needs — the dataflow construction is 'pruned' by "
         "design.");
  return 0;
}
