// F14 — Fig. 14 and Section 6.3: parallelizing array stores across
// loop iterations, plus the write-once / I-structure variant.
//
// Workload: the paper's own loop `i := i + 1; x[i] := 1` with the trip
// count swept. Baseline: every store serializes on access_x (cycles
// grow with trip × store latency). Fig. 14: the access token is
// duplicated so iteration k+1's store issues without waiting for
// iteration k's ack; a completion chain collects acks. I-structures:
// additionally reads never block writes.
#include "common.hpp"
#include "lang/corpus.hpp"

using namespace ctdf;
using namespace ctdf::bench;

int main() {
  header("fig14_array_parallel — duplicated access tokens for loop stores",
         "'The duplication of the token ensures that there is no dependence "
         "between stores in\nsuccessive iterations, and the synchronization "
         "ensures that the token is not generated\nat the end of the loop "
         "until all stores have completed' (Sec. 6.3)");

  machine::MachineOptions mopt;
  mopt.mem_latency = 16;
  mopt.loop_mode = machine::LoopMode::kPipelined;

  auto base = translate::TranslateOptions::schema2_optimized();
  base.eliminate_memory = true;  // isolate the array effect from scalars
  auto fig14 = base;
  fig14.parallel_store_arrays = {"x"};
  auto istruct = base;
  istruct.istructure_arrays = {"x"};

  std::printf("pipelined loops, store latency %u cycles\n", mopt.mem_latency);
  std::printf("%6s | %10s | %10s %8s | %10s %8s\n", "trips", "serialized",
              "fig14", "speedup", "istruct", "speedup");
  for (const int trips : {4, 8, 16, 32, 64}) {
    const auto prog = lang::corpus::array_loop(trips);
    const auto b = measure(prog, base, mopt);
    const auto f = measure(prog, fig14, mopt);
    const auto i = measure(prog, istruct, mopt);
    std::printf("%6d | %10llu | %10llu %7.2fx | %10llu %7.2fx\n", trips,
                static_cast<unsigned long long>(b.run.cycles),
                static_cast<unsigned long long>(f.run.cycles),
                static_cast<double>(b.run.cycles) / f.run.cycles,
                static_cast<unsigned long long>(i.run.cycles),
                static_cast<double>(b.run.cycles) / i.run.cycles);
  }

  std::printf("\nbarrier loop control (iterations separated at loop entry):\n");
  mopt.loop_mode = machine::LoopMode::kBarrier;
  std::printf("%6s | %10s | %10s %8s\n", "trips", "serialized", "fig14",
              "speedup");
  for (const int trips : {8, 32}) {
    const auto prog = lang::corpus::array_loop(trips);
    const auto b = measure(prog, base, mopt);
    const auto f = measure(prog, fig14, mopt);
    std::printf("%6d | %10llu | %10llu %7.2fx\n", trips,
                static_cast<unsigned long long>(b.run.cycles),
                static_cast<unsigned long long>(f.run.cycles),
                static_cast<double>(b.run.cycles) / f.run.cycles);
  }

  footer("with serialized access_x each iteration pays the full store "
         "round-trip; with Fig. 14\nstores overlap and the speedup grows "
         "toward the latency bound as trips increase.\nI-structures match "
         "fig14 on this store-only loop (their win is read/write overlap).\n"
         "Under BARRIER loop control the transform is neutral (~0.95-1x): "
         "the loop entry waits\nfor the completion chain anyway — Fig. 14 "
         "needs pipelined loop control to pay off,\na dependence the paper "
         "leaves implicit.");
  return 0;
}
