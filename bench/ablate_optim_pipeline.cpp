// A-PIPE — the cumulative optimization ladder: starting from naive
// Schema 2 and adding each technique of the paper (plus the repo's
// extra cleanup passes) one at a time, on a mixed workload suite.
// Shows where each rung's win comes from.
#include "common.hpp"
#include "lang/corpus.hpp"

using namespace ctdf;
using namespace ctdf::bench;

int main() {
  header("ablate_optim_pipeline — the cumulative optimization ladder",
         "each rung composes the previous ones: Schema 2 → Sec. 4 switches "
         "→ DSE → Sec. 6.1\nmemory elimination → Sec. 6.2 reads → graph "
         "post-passes");

  struct Rung {
    const char* name;
    translate::TranslateOptions topt;
  };
  std::vector<Rung> rungs;
  {
    auto t = translate::TranslateOptions::schema2();
    rungs.push_back({"schema2 (naive)", t});
    t.optimize_switches = true;
    rungs.push_back({"+switch opt (Sec.4)", t});
    t.dead_store_elimination = true;
    rungs.push_back({"+dead stores", t});
    t.eliminate_memory = true;
    rungs.push_back({"+mem elim (6.1)", t});
    t.parallel_reads = true;
    rungs.push_back({"+par reads (6.2)", t});
    t.post_optimize = true;
    rungs.push_back({"+graph passes", t});
  }

  const struct {
    const char* name;
    lang::Program prog;
  } workloads[] = {
      {"running example", lang::corpus::running_example()},
      {"nested loops 4x6",
       core::parse(lang::corpus::nested_loops_source(4, 6))},
      {"read heavy 12", core::parse(lang::corpus::read_heavy_source(12))},
      {"redundant stores", core::parse(R"(
var a, b, c;
a := 1; a := 2; a := 3;
b := a * 2; b := a * 3;
c := a + b;
)")},
  };

  machine::MachineOptions mopt;
  mopt.mem_latency = 8;
  mopt.loop_mode = machine::LoopMode::kPipelined;

  for (const auto& w : workloads) {
    std::printf("%s:\n", w.name);
    std::printf("  %-22s %7s %8s %8s %8s %10s\n", "rung", "ops", "switch",
                "mem-rw", "cycles", "ops/cycle");
    for (const Rung& r : rungs) {
      const auto m = measure(w.prog, r.topt, mopt);
      std::printf("  %-22s %7zu %8zu %8llu %8llu %10.2f\n", r.name,
                  m.graph.nodes, m.graph.switches,
                  static_cast<unsigned long long>(m.run.mem_reads +
                                                  m.run.mem_writes),
                  static_cast<unsigned long long>(m.run.cycles),
                  m.run.avg_parallelism());
    }
    std::printf("\n");
  }

  footer("switch optimization shrinks the graph, DSE removes dead writes, "
         "memory elimination\nremoves the split-phase round-trips (the "
         "biggest cycle win), read parallelization\nhelps read-heavy "
         "statements, and the graph passes tidy the remainder.");
  return 0;
}
