// T-READPAR — Section 6.2: "Parallel access to memory can be allowed
// among any set of reads, even to potentially aliased variables ... By
// parallelizing maximal sequences of load operations, read parallelism
// is maximized."
//
// Workload: one wide expression reading N variables that share an
// access token (unified cover — the worst case for chained reads), with
// and without read parallelization.
#include "common.hpp"
#include "lang/corpus.hpp"

using namespace ctdf;
using namespace ctdf::bench;

int main() {
  header("tab_read_parallel — replicate-and-collect for reads (Sec. 6.2)",
         "'The predecessor of the first load can safely replicate access and "
         "pass it to every\noperation in the sequence' — reads of one "
         "location class need not serialize");

  machine::MachineOptions mopt;
  mopt.mem_latency = 12;

  std::printf("unified cover (one access token; reads would chain):\n");
  std::printf("%8s | %14s | %14s | %8s\n", "reads", "chained cycles",
              "parallel cycles", "speedup");
  for (const int reads : {2, 4, 8, 16, 32}) {
    const auto prog = core::parse(lang::corpus::read_heavy_source(reads));
    auto chained = translate::TranslateOptions::schema3(
        translate::CoverStrategy::kUnified);
    auto parallel = chained;
    parallel.parallel_reads = true;
    const auto c = measure(prog, chained, mopt);
    const auto p = measure(prog, parallel, mopt);
    std::printf("%8d | %14llu | %14llu | %7.2fx\n", reads,
                static_cast<unsigned long long>(c.run.cycles),
                static_cast<unsigned long long>(p.run.cycles),
                static_cast<double>(c.run.cycles) / p.run.cycles);
  }

  std::printf("\naliased scalars under singleton cover (access sets overlap "
              "on z):\n");
  const auto aliased = core::parse(R"(
var x, y, z, s;
alias x z; alias y z;
x := 3; y := 4; z := 5;
s := x + y + z + x * y + y * z + x * z;
)");
  auto chained = translate::TranslateOptions::schema3(
      translate::CoverStrategy::kSingleton);
  auto parallel = chained;
  parallel.parallel_reads = true;
  const auto c = measure(aliased, chained, mopt);
  const auto p = measure(aliased, parallel, mopt);
  std::printf("  chained: %llu cycles   parallel: %llu cycles\n",
              static_cast<unsigned long long>(c.run.cycles),
              static_cast<unsigned long long>(p.run.cycles));

  footer("chained read latency grows linearly with the read count; "
         "replicate-and-collect holds it\nnear one memory round-trip — reads "
         "commute, even for potentially aliased variables.");
  return 0;
}
