// T-MEMELIM — Section 6.1: "in the absence of aliasing, memory
// operations on scalars can be eliminated completely and all values
// can be carried on tokens".
//
// We report loads/stores before and after, and machine cycles across a
// memory-latency sweep — once values ride on tokens the program becomes
// insensitive to memory latency (only the final writebacks remain).
#include "common.hpp"
#include "lang/corpus.hpp"

using namespace ctdf;
using namespace ctdf::bench;

int main() {
  header("tab_mem_elim — passing values on tokens (Sec. 6.1, SSA-like)",
         "'Load and store operations are deleted from the graph, and values "
         "are passed on tokens\nfrom definitions to uses' — the "
         "transformation that makes the program single-assignment");

  const struct {
    const char* name;
    lang::Program prog;
  } workloads[] = {
      {"running example", lang::corpus::running_example()},
      {"nested loops 4x6",
       core::parse(lang::corpus::nested_loops_source(4, 6))},
      {"read heavy 12", core::parse(lang::corpus::read_heavy_source(12))},
      {"aliased (not eliminable)", lang::corpus::fortran_alias()},
  };

  auto base = translate::TranslateOptions::schema2_optimized();
  auto elim = base;
  elim.eliminate_memory = true;

  std::printf("%-26s | %6s %6s | %6s %6s | %16s %16s\n", "workload", "ld",
              "st", "ld'", "st'", "cycles lat=4", "cycles lat=32");
  for (const auto& w : workloads) {
    machine::MachineOptions fast, slow;
    fast.mem_latency = 4;
    slow.mem_latency = 32;
    const auto b_fast = measure(w.prog, base, fast);
    const auto e_fast = measure(w.prog, elim, fast);
    const auto e_slow = measure(w.prog, elim, slow);
    const auto b_slow = measure(w.prog, base, slow);
    std::printf("%-26s | %6llu %6llu | %6llu %6llu | %7llu->%-7llu %7llu->%-7llu\n",
                w.name,
                static_cast<unsigned long long>(b_fast.run.mem_reads),
                static_cast<unsigned long long>(b_fast.run.mem_writes),
                static_cast<unsigned long long>(e_fast.run.mem_reads),
                static_cast<unsigned long long>(e_fast.run.mem_writes),
                static_cast<unsigned long long>(b_fast.run.cycles),
                static_cast<unsigned long long>(e_fast.run.cycles),
                static_cast<unsigned long long>(b_slow.run.cycles),
                static_cast<unsigned long long>(e_slow.run.cycles));
  }

  footer("unaliased scalar programs drop to zero loads (stores = one final "
         "writeback per variable)\nand their cycle counts barely move when "
         "memory latency is 8x worse; the aliased workload\nkeeps its memory "
         "ops — exactly the Section 6.1 boundary.");
  return 0;
}
