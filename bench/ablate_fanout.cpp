// A-FANOUT — Monsoon fidelity ablation. The abstract dataflow IR lets
// one operator output feed any number of consumers; a real explicit-
// token-store instruction (Monsoon) names at most two destinations, so
// wide fan-out costs replicate instructions and latency. This harness
// measures how much of the paper's exposed parallelism survives that
// constraint.
#include "common.hpp"
#include "dfg/passes.hpp"
#include "lang/corpus.hpp"

using namespace ctdf;
using namespace ctdf::bench;

int main() {
  header("ablate_fanout — bounded destination lists (Monsoon has 2)",
         "the paper's graphs assume free fan-out (e.g. one predicate value "
         "driving every switch);\nreal ETS instructions replicate tokens "
         "through extra operators");

  const struct {
    const char* name;
    lang::Program prog;
  } workloads[] = {
      {"independent chains 8x4",
       core::parse(lang::corpus::independent_chains_source(8, 4))},
      {"read heavy 16", core::parse(lang::corpus::read_heavy_source(16))},
      {"nested loops 4x6",
       core::parse(lang::corpus::nested_loops_source(4, 6))},
  };

  std::printf("%-24s %8s | %7s %7s %9s | %9s\n", "workload", "fanout",
              "ops", "reps", "max-out", "cycles");
  for (const auto& w : workloads) {
    for (const std::size_t cap : {0ul, 2ul, 4ul}) {
      auto topt = translate::TranslateOptions::schema2_optimized();
      topt.eliminate_memory = true;
      topt.max_fanout = cap;
      machine::MachineOptions mopt;
      mopt.loop_mode = machine::LoopMode::kPipelined;
      const auto m = measure(w.prog, topt, mopt);
      // Re-derive graph shape for the fan-out column.
      const auto tx = core::compile(w.prog, topt);
      std::printf("%-24s %8s | %7zu %7zu %9zu | %9llu\n", w.name,
                  cap == 0 ? "inf" : std::to_string(cap).c_str(),
                  m.graph.nodes, tx.replicates_inserted,
                  dfg::max_fanout(tx.graph),
                  static_cast<unsigned long long>(m.run.cycles));
    }
    std::printf("\n");
  }

  footer("bounding fan-out to Monsoon's 2 inserts replicate trees (extra "
         "operators and a\nlog-depth latency per wide broadcast) but leaves "
         "the overall parallelism shape intact —\nthe paper's results do not "
         "hinge on free fan-out.");
  return 0;
}
