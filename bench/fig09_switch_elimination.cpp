// F9 — Fig. 9: redundant switches impose needless ordering.
//
// Workload: x := x + 1; w := <slow chain>; <depth nested conditionals
// that never touch x>; x := 0. Under plain Schema 2 the access_x token
// crosses a switch per conditional level, so the second assignment to x
// waits for the predicate value w. The optimized construction sends
// access_x straight from the first assignment to the last; we measure
// the cycle at which `x := 0` actually fires — the direct form of the
// paper's "no order imposed between the calculation of the predicate
// and the second assignment to x".
#include "common.hpp"
#include "lang/corpus.hpp"

using namespace ctdf;
using namespace ctdf::bench;

namespace {

struct XStoreResult {
  std::size_t switches = 0;
  std::uint64_t x_store_cycle = 0;
  std::uint64_t total_cycles = 0;
};

XStoreResult run_one(const lang::Program& prog,
                     const translate::TranslateOptions& topt) {
  const auto tx = core::compile(prog, topt);
  machine::MachineOptions mopt;
  mopt.mem_latency = 12;
  const auto res = core::execute(tx, mopt);
  if (!res.stats.completed) {
    std::fprintf(stderr, "failed: %s\n", res.stats.error.c_str());
    std::abort();
  }
  XStoreResult out;
  out.switches = compute_stats(tx.graph).switches;
  out.total_cycles = res.stats.cycles;
  // The second store to x is the highest-numbered store labeled "x".
  for (dfg::NodeId n : tx.graph.all_nodes()) {
    const dfg::Node& node = tx.graph.node(n);
    if (node.kind == dfg::OpKind::kStore && node.label == "x" &&
        res.stats.first_fire_cycle[n.index()] != UINT64_MAX)
      out.x_store_cycle = res.stats.first_fire_cycle[n.index()];
  }
  return out;
}

}  // namespace

int main() {
  header("fig09_switch_elimination — bypassing conditionals (Sec. 4)",
         "'Eliminating this switch ... results in a more parallel program "
         "with no order imposed\nbetween the calculation of the predicate "
         "and the second assignment to x' (Fig. 9)");

  std::printf("'x := 0 fires at' — the cycle the second x-assignment "
              "executes (w ready ~cycle 50):\n");
  std::printf("%6s | %22s | %22s\n", "", "Schema 2 (naive)",
              "Schema 2 + Sec. 4 opt");
  std::printf("%6s | %9s %12s | %9s %12s\n", "depth", "switches",
              "x:=0 fires", "switches", "x:=0 fires");
  for (const int depth : {1, 2, 4, 8, 16, 32}) {
    const auto prog = core::parse(lang::corpus::nested_bypass_source(depth));
    const auto naive = run_one(prog, translate::TranslateOptions::schema2());
    const auto opt =
        run_one(prog, translate::TranslateOptions::schema2_optimized());
    std::printf("%6d | %9zu %12llu | %9zu %12llu\n", depth, naive.switches,
                static_cast<unsigned long long>(naive.x_store_cycle),
                opt.switches,
                static_cast<unsigned long long>(opt.x_store_cycle));
  }

  footer("under the naive schema `x := 0` fires only after the predicate "
         "chain (and later the\ndeeper the nesting); the optimized "
         "construction fires it at a constant early cycle,\nindependent of "
         "the conditionals — access_x bypasses the region entirely. Naive\n"
         "switch count grows ~3 per level, optimized ~2 (y and w only; "
         "never x).");
  return 0;
}
