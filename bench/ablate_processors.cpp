// A-PE — multi-processor ablation: putting the processors back.
//
// The paper's model abstracts away "the number of processors,
// communication network topology, distribution of data structures".
// This harness makes them concrete: N processing elements firing one
// operator per cycle each, with a network charge on every token that
// crosses PEs, under the two classic placements — instructions hashed
// to PEs (static-dataflow style) vs frames hashed to PEs (Monsoon
// style, iteration-local execution).
#include "common.hpp"
#include "lang/corpus.hpp"

using namespace ctdf;
using namespace ctdf::bench;

int main() {
  header("ablate_processors — PE count, placement, and network latency",
         "'details such as the number of processors, communication network "
         "topology ... are\nabstracted away' (intro) — here they are, put "
         "back");

  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;

  const struct {
    const char* name;
    lang::Program prog;
  } workloads[] = {
      {"independent chains 16x4",
       core::parse(lang::corpus::independent_chains_source(16, 4))},
      {"nested loops 6x8",
       core::parse(lang::corpus::nested_loops_source(6, 8))},
      {"running example (serial)", lang::corpus::running_example()},
  };

  for (const auto& w : workloads) {
    std::printf("%s (network latency 2):\n", w.name);
    std::printf("  %6s | %12s | %12s\n", "PEs", "by-node", "by-context");
    for (const unsigned pes : {1u, 2u, 4u, 8u, 16u}) {
      std::printf("  %6u |", pes);
      for (const auto placement :
           {machine::Placement::kByNode, machine::Placement::kByContext}) {
        machine::MachineOptions mopt;
        mopt.loop_mode = machine::LoopMode::kPipelined;
        mopt.processors = pes;
        mopt.placement = placement;
        mopt.network_latency = 2;
        const auto m = measure(w.prog, topt, mopt);
        std::printf(" %12llu",
                    static_cast<unsigned long long>(m.run.cycles));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  std::printf("network-latency sensitivity (nested loops 6x8, 8 PEs):\n");
  std::printf("  %8s | %12s | %12s\n", "net-lat", "by-node", "by-context");
  const auto prog = core::parse(lang::corpus::nested_loops_source(6, 8));
  for (const unsigned net : {0u, 2u, 8u, 24u}) {
    std::printf("  %8u |", net);
    for (const auto placement :
         {machine::Placement::kByNode, machine::Placement::kByContext}) {
      machine::MachineOptions mopt;
      mopt.loop_mode = machine::LoopMode::kPipelined;
      mopt.processors = 8;
      mopt.placement = placement;
      mopt.network_latency = net;
      const auto m = measure(prog, topt, mopt);
      std::printf(" %12llu", static_cast<unsigned long long>(m.run.cycles));
    }
    std::printf("\n");
  }

  footer("the two placements expose different parallelism: by-node scales "
         "straight-line code\n(independent chains: 84 -> 23 cycles) but "
         "pays the network on every producer-consumer\nhop inside a loop "
         "iteration; by-context runs whole iterations locally — it cannot "
         "spread\nsingle-frame straight-line code at all, yet degrades far "
         "more slowly as the network\ngets expensive (5803 vs 2107 cycles "
         "at latency 24). Monsoon's frame-based distribution\nis exactly "
         "the second bet.");
  return 0;
}
