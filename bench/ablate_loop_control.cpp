// A-LOOP — ablation of the loop-control policy, which the paper leaves
// open ("there are many other possible approaches to dataflow loop
// control"): barrier frame allocation (the paper's Monsoon suggestion)
// versus pipelined tagged-token iteration entry.
#include "common.hpp"
#include "lang/corpus.hpp"

using namespace ctdf;
using namespace ctdf::bench;

int main() {
  header("ablate_loop_control — barrier vs pipelined loop entry (Sec. 3)",
         "the paper treats loop control as a black box; this ablation "
         "quantifies the choice");

  const struct {
    const char* name;
    lang::Program prog;
  } workloads[] = {
      {"running example (serial dep)", lang::corpus::running_example()},
      {"array fill x[i]:=1 (32 trips)", lang::corpus::array_loop(32)},
      {"nested loops 4x8",
       core::parse(lang::corpus::nested_loops_source(4, 8))},
      {"reduction s+=i*i", core::parse(R"(
var i, s;
l: i := i + 1; s := s + i * i;
if i < 32 then goto l else goto end;
)")},
  };

  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  topt.parallel_store_arrays = {"x"};

  std::printf("%-30s | %10s | %10s | %8s | %12s\n", "workload", "barrier",
              "pipelined", "speedup", "contexts");
  for (const auto& w : workloads) {
    machine::MachineOptions mb, mp;
    mb.loop_mode = machine::LoopMode::kBarrier;
    mp.loop_mode = machine::LoopMode::kPipelined;
    mb.mem_latency = mp.mem_latency = 8;
    const auto b = measure(w.prog, topt, mb);
    const auto p = measure(w.prog, topt, mp);
    std::printf("%-30s | %10llu | %10llu | %7.2fx | %12llu\n", w.name,
                static_cast<unsigned long long>(b.run.cycles),
                static_cast<unsigned long long>(p.run.cycles),
                static_cast<double>(b.run.cycles) / p.run.cycles,
                static_cast<unsigned long long>(p.run.contexts_allocated));
  }

  footer("loop-carried serial dependences see little difference (the "
         "recurrence is the critical\npath), while loops with per-iteration "
         "parallelism (array fills, wide bodies) gain\nsubstantially from "
         "pipelined entry — the loop-control choice matters exactly when\n"
         "iterations are independent.");
  return 0;
}
