// F12/F13 — Figs. 12–13 and Section 5: alias covers trade parallelism
// against synchronization.
//
// Workload 1: the paper's SUBROUTINE F(X,Y,Z) alias structure.
// Workload 2: an alias-density sweep — n scalars with k alias pairs —
// translated under each cover strategy. We report circulating tokens,
// synch operators emitted (access-set collection), machine cycles and
// parallelism.
#include <sstream>

#include "common.hpp"
#include "lang/corpus.hpp"

using namespace ctdf;
using namespace ctdf::bench;

namespace {

std::string alias_sweep_source(int vars, int alias_pairs) {
  std::ostringstream os;
  os << "var";
  for (int i = 0; i < vars; ++i) os << (i ? ", v" : " v") << i;
  os << ";\n";
  for (int i = 0; i < alias_pairs; ++i)
    os << "alias v" << (i % vars) << " v" << ((i * 3 + 1) % vars) << ";\n";
  // Independent updates — parallel if the cover permits.
  for (int round = 0; round < 3; ++round)
    for (int i = 0; i < vars; ++i)
      os << "  v" << i << " := v" << i << " + " << (round + i + 1) << ";\n";
  return os.str();
}

/// `groups` fully-aliased cliques of `size` variables each: alias
/// classes coincide, so the alias-class cover has `groups` elements and
/// every operation collects exactly one token — while the singleton
/// cover collects `size` tokens per operation.
std::string clique_source(int groups, int size) {
  std::ostringstream os;
  os << "var";
  for (int i = 0; i < groups * size; ++i) os << (i ? ", v" : " v") << i;
  os << ";\n";
  for (int g = 0; g < groups; ++g)
    for (int a = 0; a < size; ++a)
      for (int b = a + 1; b < size; ++b)
        os << "alias v" << (g * size + a) << " v" << (g * size + b) << ";\n";
  for (int round = 0; round < 3; ++round)
    for (int g = 0; g < groups; ++g)
      os << "  v" << (g * size + round) << " := v" << (g * size + round)
         << " + " << (round + g + 1) << ";\n";
  return os.str();
}

void row(const char* label, const lang::Program& prog,
         translate::CoverStrategy strategy) {
  auto topt = translate::TranslateOptions::schema3(strategy);
  topt.optimize_switches = true;
  machine::MachineOptions mopt;
  mopt.mem_latency = 6;
  const auto m = measure(prog, topt, mopt);
  std::printf("%-24s %-12s %7zu %9zu %8llu %10.2f\n", label,
              to_string(strategy), m.num_resources, m.graph.synchs,
              static_cast<unsigned long long>(m.run.cycles),
              m.run.avg_parallelism());
}

}  // namespace

int main() {
  header("fig12_alias_covers — Schema 3 cover tradeoff (Sec. 5)",
         "'In choosing a cover ... there are two concerns: maximizing "
         "parallelism and minimizing\nsynchronization ... in general there "
         "will be no one cover that achieves both'");

  std::printf("%-24s %-12s %7s %9s %8s %10s\n", "workload", "cover", "tokens",
              "synchs", "cycles", "ops/cycle");

  const auto paper = lang::corpus::fortran_alias();
  for (const auto s : {translate::CoverStrategy::kSingleton,
                       translate::CoverStrategy::kAliasClass,
                       translate::CoverStrategy::kComponent,
                       translate::CoverStrategy::kUnified})
    row("SUBROUTINE F(X,Y,Z)", paper, s);
  std::printf("\n");

  for (const auto& [vars, pairs] :
       {std::pair{8, 0}, std::pair{8, 4}, std::pair{8, 12}}) {
    const auto prog = core::parse(alias_sweep_source(vars, pairs));
    char label[64];
    std::snprintf(label, sizeof label, "%d vars, %d alias pairs", vars,
                  pairs);
    for (const auto s : {translate::CoverStrategy::kSingleton,
                         translate::CoverStrategy::kAliasClass,
                         translate::CoverStrategy::kComponent,
                         translate::CoverStrategy::kUnified})
      row(label, prog, s);
    std::printf("\n");
  }

  // Fully-aliased cliques: here the alias-class cover dominates the
  // singleton cover — same parallelism across groups, but one token per
  // operation instead of |clique|.
  for (const auto& [groups, size] : {std::pair{4, 4}, std::pair{2, 8}}) {
    const auto prog = core::parse(clique_source(groups, size));
    char label[64];
    std::snprintf(label, sizeof label, "%d cliques of %d", groups, size);
    for (const auto s : {translate::CoverStrategy::kSingleton,
                         translate::CoverStrategy::kAliasClass,
                         translate::CoverStrategy::kComponent,
                         translate::CoverStrategy::kUnified})
      row(label, prog, s);
    std::printf("\n");
  }

  footer("singleton covers give the most tokens and best cycles but emit "
         "synch trees as aliasing\ngrows (collecting access sets); the "
         "unified cover needs no synchs but serializes all\nmemory traffic — "
         "the paper's parallelism-vs-synchronization tradeoff, quantified.");
  return 0;
}
