// T-SIZE — Section 3's size claim: "if E is the number of edges in the
// control-flow graph and V is the number of variables, then the size of
// the dataflow graph is O(E · V)."
//
// We sweep E (statements) and V (variables) independently under plain
// Schema 2 and report dummy-arc counts, plus the optimized
// construction's counts, which grow only with actual references.
#include "common.hpp"
#include "lang/corpus.hpp"

using namespace ctdf;
using namespace ctdf::bench;

namespace {

/// `stmts` updates cycling over the first `touched` of `vars` declared
/// variables: E grows with stmts, V with vars, references with touched.
std::string workload(int vars, int touched, int stmts) {
  std::string src = "var";
  for (int v = 0; v < vars; ++v)
    src += (v ? ", v" : " v") + std::to_string(v);
  src += ";\n";
  for (int s = 0; s < stmts; ++s) {
    const int v = s % touched;
    src += "  v" + std::to_string(v) + " := v" + std::to_string(v) + " + 1;\n";
    if (s % 4 == 3)  // add forks so edges, not just nodes, grow
      src += "  if v" + std::to_string(v) + " > " + std::to_string(s) +
             " { v" + std::to_string(v) + " := 0; }\n";
  }
  return src;
}

std::size_t arcs(const std::string& src,
                 const translate::TranslateOptions& topt,
                 std::size_t* cfg_edges = nullptr) {
  const auto tx = core::compile(core::parse(src), topt);
  if (cfg_edges) *cfg_edges = tx.cfg_edges;
  return compute_stats(tx.graph).dummy_arcs;
}

}  // namespace

int main() {
  header("tab_graph_size — Schema 2 graphs are O(E · V) (Sec. 3)",
         "'corresponding to every edge in the control-flow graph there is "
         "one edge in the dataflow\ngraph for each variable in the program'");

  std::printf("sweep V (E fixed at 32 statements, 8 referenced vars):\n");
  std::printf("%8s %10s %18s %18s %14s\n", "V", "E(cfg)", "schema2 arcs",
              "optimized arcs", "arcs/(E*V)");
  for (const int vars : {8, 16, 32, 64}) {
    std::size_t e = 0;
    const auto src = workload(vars, 8, 32);
    const auto naive = arcs(src, translate::TranslateOptions::schema2(), &e);
    const auto opt =
        arcs(src, translate::TranslateOptions::schema2_optimized());
    std::printf("%8d %10zu %18zu %18zu %14.2f\n", vars, e, naive, opt,
                static_cast<double>(naive) / (static_cast<double>(e) * vars));
  }

  std::printf("\nsweep E (V fixed at 16 variables, all referenced):\n");
  std::printf("%8s %10s %18s %18s %14s\n", "stmts", "E(cfg)", "schema2 arcs",
              "optimized arcs", "arcs/(E*V)");
  for (const int stmts : {8, 16, 32, 64, 128}) {
    std::size_t e = 0;
    const auto src = workload(16, 16, stmts);
    const auto naive = arcs(src, translate::TranslateOptions::schema2(), &e);
    const auto opt =
        arcs(src, translate::TranslateOptions::schema2_optimized());
    std::printf("%8d %10zu %18zu %18zu %14.2f\n", stmts, e, naive, opt,
                static_cast<double>(naive) / (static_cast<double>(e) * 16));
  }

  footer("schema2 dummy arcs track E·V with a near-constant factor across "
         "both sweeps (the paper's\nbound); the optimized construction's "
         "size follows actual references instead — unreferenced\nvariables "
         "cost nothing.");
  return 0;
}
