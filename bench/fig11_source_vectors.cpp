// F11 — Fig. 11: the source-vector construction. The direct
// construction wires tokens producer→consumer without redundant
// switches or single-source merges; we measure how many merge/switch
// operators it emits versus the naive Schema 2 wiring, and the
// end-to-end construction time.
#include <chrono>

#include "common.hpp"
#include "lang/generator.hpp"

using namespace ctdf;
using namespace ctdf::bench;

int main() {
  header("fig11_source_vectors — direct construction from source vectors",
         "'The dataflow graph so constructed exhibits all of the data "
         "parallelism of Schema 2,\nand gains additional parallelism through "
         "the suppression of redundant switches' (Sec. 4.2);\n'a join with a "
         "single source is equivalent to no operator'");

  std::printf("%8s | %9s %8s %8s | %9s %8s %8s | %10s\n", "stmts",
              "nodes", "switch", "merge", "nodes", "switch", "merge",
              "build-us");
  std::printf("%8s | %27s | %27s |\n", "", "naive Schema 2",
              "Fig. 10+11 optimized");

  for (const int stmts : {8, 16, 32, 64, 128}) {
    lang::GeneratorOptions gopt;
    gopt.allow_unstructured = true;
    gopt.num_scalars = 6;
    gopt.max_toplevel_stmts = stmts;
    dfg::GraphStats naive{}, opt{};
    double micros = 0;
    const int kSeeds = 5;
    const auto acc = [](dfg::GraphStats& into, const dfg::GraphStats& s) {
      into.nodes += s.nodes;
      into.switches += s.switches;
      into.merges += s.merges;
    };
    for (std::uint64_t s = 0; s < kSeeds; ++s) {
      const auto prog = lang::generate_program(gopt, 1000 + s);
      acc(naive, dfg::compute_stats(
                     core::compile(prog, translate::TranslateOptions::schema2())
                         .graph));
      const auto t0 = std::chrono::steady_clock::now();
      const auto tx = core::compile(
          prog, translate::TranslateOptions::schema2_optimized());
      const auto t1 = std::chrono::steady_clock::now();
      micros += std::chrono::duration<double, std::micro>(t1 - t0).count();
      acc(opt, dfg::compute_stats(tx.graph));
    }
    std::printf("%8d | %9zu %8zu %8zu | %9zu %8zu %8zu | %10.1f\n", stmts,
                naive.nodes / kSeeds, naive.switches / kSeeds,
                naive.merges / kSeeds, opt.nodes / kSeeds,
                opt.switches / kSeeds, opt.merges / kSeeds, micros / kSeeds);
  }

  footer("the direct construction emits a fraction of the naive switch and "
         "merge count\n(single-source joins become wires), with construction "
         "time scaling near-linearly.");
  return 0;
}
