// Shared helpers for the figure/table harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/compiler.hpp"

namespace ctdf::bench {

struct Measurement {
  dfg::GraphStats graph;
  machine::RunStats run;
  std::size_t switches_placed = 0;
  std::size_t num_resources = 0;
};

/// Host-parallelism override for every harness in bench/: set
/// CTDF_HOST_THREADS=N to advance the simulator with N worker threads.
/// Results are bit-identical either way (enforced by
/// machine_parallel_equiv_test), so the knob only changes wall-clock.
inline unsigned host_threads_from_env() {
  const char* v = std::getenv("CTDF_HOST_THREADS");
  if (!v || !*v) return 0;
  const long n = std::strtol(v, nullptr, 10);
  return n > 0 ? static_cast<unsigned>(n) : 0;
}

/// Compiles and runs; verifies the result against the interpreter and
/// aborts loudly on any disagreement (a benchmark over a wrong program
/// is worse than no benchmark).
inline Measurement measure(const lang::Program& prog,
                           const translate::TranslateOptions& topt,
                           machine::MachineOptions mopt) {
  const auto interp = lang::interpret(prog, 10'000'000);
  if (!interp.completed) {
    std::fprintf(stderr, "benchmark program did not terminate\n");
    std::abort();
  }
  const auto tx = core::compile(prog, topt);
  if (mopt.host_threads == 0) mopt.host_threads = host_threads_from_env();
  auto res = core::execute(tx, mopt);
  if (!res.stats.completed) {
    std::fprintf(stderr, "machine failed under %s: %s\n",
                 topt.describe().c_str(), res.stats.error.c_str());
    std::abort();
  }
  if (!(res.store == interp.store)) {
    std::fprintf(stderr, "WRONG RESULT under %s\n", topt.describe().c_str());
    std::abort();
  }
  Measurement m;
  m.graph = dfg::compute_stats(tx.graph);
  m.run = res.stats;
  m.switches_placed = tx.switches_placed;
  m.num_resources = tx.num_resources;
  return m;
}

inline void header(const char* title, const char* claim) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", title);
  std::printf("paper claim: %s\n", claim);
  std::printf("---------------------------------------------------------------"
              "-----------------\n");
}

inline void footer(const char* observed) {
  std::printf("---------------------------------------------------------------"
              "-----------------\n");
  std::printf("observed: %s\n\n", observed);
}

}  // namespace ctdf::bench
