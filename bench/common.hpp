// Shared helpers for the figure/table harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/compiler.hpp"
#include "core/pipeline.hpp"
#include "support/env.hpp"

namespace ctdf::bench {

// Env knobs (CTDF_HOST_THREADS, CTDF_STAGE_STATS) are shared with the
// CLI; see support/env.hpp.
using support::host_threads_from_env;
using support::stage_stats_from_env;

struct Measurement {
  dfg::GraphStats graph;
  machine::RunStats run;
  std::size_t switches_placed = 0;
  std::size_t num_resources = 0;
  /// Per-stage compile-time breakdown of this measurement's compile.
  core::PipelineTrace compile_trace;
};

namespace detail {

/// On a verification failure the raw "WRONG RESULT" is useless for
/// debugging a generated program nobody has seen: print the options,
/// the program itself, and the first differing variables.
inline void explain_mismatch(const lang::Program& prog,
                             const translate::TranslateOptions& topt,
                             const lang::Store& expected,
                             const lang::Store& actual) {
  std::fprintf(stderr, "WRONG RESULT under %s\n", topt.describe().c_str());
  std::fprintf(stderr, "--- program ---\n%s--- store diff ---\n",
               prog.to_string().c_str());
  int shown = 0;
  for (lang::VarId v : prog.symbols.all_vars()) {
    if (shown >= 8) {
      std::fprintf(stderr, "  ... (further differences suppressed)\n");
      break;
    }
    const auto& name = prog.symbols.name(v);
    if (prog.symbols.is_array(v)) {
      const auto n = prog.symbols.info(v).array_size;
      for (std::int64_t i = 0; i < n; ++i) {
        const auto want = lang::load_var(prog, expected, v, i);
        const auto got = lang::load_var(prog, actual, v, i);
        if (want != got) {
          std::fprintf(stderr, "  %s[%lld]: expected %lld, got %lld\n",
                       name.c_str(), static_cast<long long>(i),
                       static_cast<long long>(want),
                       static_cast<long long>(got));
          if (++shown >= 8) break;
        }
      }
    } else {
      const auto want = lang::load_var(prog, expected, v);
      const auto got = lang::load_var(prog, actual, v);
      if (want != got) {
        std::fprintf(stderr, "  %s: expected %lld, got %lld\n", name.c_str(),
                     static_cast<long long>(want),
                     static_cast<long long>(got));
        ++shown;
      }
    }
  }
}

}  // namespace detail

/// Compiles and runs; verifies the result against the interpreter and
/// aborts loudly on any disagreement (a benchmark over a wrong program
/// is worse than no benchmark). Set CTDF_STAGE_STATS=1 to print each
/// compile's pipeline table to stderr.
inline Measurement measure(const lang::Program& prog,
                           const translate::TranslateOptions& topt,
                           machine::MachineOptions mopt) {
  const auto interp = lang::interpret(prog, 10'000'000);
  if (!interp.completed) {
    std::fprintf(stderr,
                 "benchmark program did not terminate\n--- program ---\n%s",
                 prog.to_string().c_str());
    std::abort();
  }
  const auto compiled = core::Pipeline(core::PipelineOptions(topt)).run(prog);
  const auto& tx = compiled.translation;
  if (stage_stats_from_env())
    std::fprintf(stderr, "pipeline stages (%s):\n%s",
                 topt.describe().c_str(), compiled.trace.table().c_str());
  if (mopt.host_threads == 0) mopt.host_threads = host_threads_from_env();
  auto res = core::execute(tx, mopt);
  if (!res.stats.completed) {
    std::fprintf(stderr, "machine failed under %s: %s\n--- program ---\n%s",
                 topt.describe().c_str(), res.stats.error.c_str(),
                 prog.to_string().c_str());
    std::abort();
  }
  if (!(res.store == interp.store)) {
    detail::explain_mismatch(prog, topt, interp.store, res.store);
    std::abort();
  }
  Measurement m;
  m.graph = dfg::compute_stats(tx.graph);
  m.run = res.stats;
  m.switches_placed = tx.switches_placed;
  m.num_resources = tx.num_resources;
  m.compile_trace = compiled.trace;
  return m;
}

inline void header(const char* title, const char* claim) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", title);
  std::printf("paper claim: %s\n", claim);
  std::printf("---------------------------------------------------------------"
              "-----------------\n");
}

inline void footer(const char* observed) {
  std::printf("---------------------------------------------------------------"
              "-----------------\n");
  std::printf("observed: %s\n\n", observed);
}

}  // namespace ctdf::bench
