// A-KBOUND — k-bounded loops: unbounded pipelined loop entry lets every
// iteration of a parallel loop be in flight at once, which is fast but
// needs a frame per iteration. Throttling to k live iterations (the
// classic dataflow loop-bounding mechanism) trades cycles for frame-
// store footprint; this table maps the tradeoff curve.
#include "common.hpp"
#include "lang/corpus.hpp"

using namespace ctdf;
using namespace ctdf::bench;

int main() {
  header("ablate_loop_bound — throttled (k-bounded) loop pipelining",
         "per-iteration frames are the resource unbounded dynamic dataflow "
         "consumes; bounding\niterations in flight caps the footprint at a "
         "parallelism cost");

  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  topt.parallel_store_arrays = {"x"};

  const struct {
    const char* name;
    lang::Program prog;
  } workloads[] = {
      {"array fill, 64 trips", lang::corpus::array_loop(64)},
      {"nested loops 6x8",
       core::parse(lang::corpus::nested_loops_source(6, 8))},
      {"serial recurrence", core::parse(R"(
var i, s;
l: i := i + 1; s := s + i * i;
if i < 48 then goto l else goto end;
)")},
  };

  for (const auto& w : workloads) {
    std::printf("%s (store latency 16, pipelined):\n", w.name);
    std::printf("  %10s %10s %16s %10s\n", "k", "cycles", "peak-contexts",
                "stalls");
    for (const unsigned k : {1u, 2u, 4u, 8u, 16u, 0u}) {
      machine::MachineOptions mopt;
      mopt.loop_mode = machine::LoopMode::kPipelined;
      mopt.mem_latency = 16;
      mopt.loop_bound = k;
      const auto m = measure(w.prog, topt, mopt);
      std::printf("  %10s %10llu %16llu %10llu\n",
                  k == 0 ? "unbounded" : std::to_string(k).c_str(),
                  static_cast<unsigned long long>(m.run.cycles),
                  static_cast<unsigned long long>(m.run.peak_live_contexts),
                  static_cast<unsigned long long>(m.run.throttle_stalls));
    }
    std::printf("\n");
  }

  footer("parallel loops: cycles fall and footprint grows with k until the "
         "loop's own\nparallelism saturates (small k already captures most "
         "of the win); the serial\nrecurrence is insensitive — one live "
         "iteration is all its dependence chain can use.");
  return 0;
}
