// F10 — Fig. 10: the switch-placement algorithm (iterated control
// dependence), measured for (a) placement quality on random CFGs and
// (b) wall-clock scaling of the analysis itself.
#include <chrono>

#include "cfg/build.hpp"
#include "cfg/control_dep.hpp"
#include "cfg/dominance.hpp"
#include "common.hpp"
#include "lang/generator.hpp"
#include "translate/switch_place.hpp"

using namespace ctdf;
using namespace ctdf::bench;

namespace {

struct PlacementStats {
  std::size_t cfg_nodes = 0;
  std::size_t naive = 0;
  std::size_t optimized = 0;
  double micros = 0;
};

PlacementStats place_for(std::uint64_t seed, int stmts) {
  lang::GeneratorOptions gopt;
  gopt.allow_unstructured = true;
  gopt.num_scalars = 6;
  gopt.max_toplevel_stmts = stmts;
  const auto prog = lang::generate_program(gopt, seed);
  const auto g = cfg::build_cfg_or_throw(prog);
  const cfg::DomTree pdom(g, cfg::DomDirection::kPostdom);
  const cfg::ControlDeps cd(g, pdom);
  const auto cover =
      translate::Cover::make(prog.symbols, translate::CoverStrategy::kSingleton);
  support::IndexMap<cfg::NodeId, std::vector<translate::Resource>> uses(
      g.size());
  for (cfg::NodeId n : g.all_nodes())
    uses[n] = cover.access_set_union(g.refs(n));

  PlacementStats out;
  out.cfg_nodes = g.size();
  const translate::SwitchPlacement naive(g, cd, uses, cover.size(), false);
  const auto t0 = std::chrono::steady_clock::now();
  const translate::SwitchPlacement opt(g, cd, uses, cover.size(), true);
  const auto t1 = std::chrono::steady_clock::now();
  out.naive = naive.total();
  out.optimized = opt.total();
  out.micros =
      std::chrono::duration<double, std::micro>(t1 - t0).count();
  return out;
}

}  // namespace

int main() {
  header("fig10_switch_placement — CD+-based placement (Fig. 10 / Thm. 1)",
         "switch needed at F for access_x iff F is in CD+(N) for some N "
         "referencing x;\ncomputable efficiently from the postdominator tree");

  std::printf("%10s %10s %14s %16s %14s %10s\n", "stmts", "CFG-nodes",
              "naive-switches", "placed-switches", "eliminated", "algo-us");
  for (const int stmts : {8, 16, 32, 64, 128, 256}) {
    // Average over a few seeds for stability.
    PlacementStats acc;
    const int kSeeds = 5;
    for (std::uint64_t s = 0; s < kSeeds; ++s) {
      const auto p = place_for(s * 97 + 13, stmts);
      acc.cfg_nodes += p.cfg_nodes;
      acc.naive += p.naive;
      acc.optimized += p.optimized;
      acc.micros += p.micros;
    }
    std::printf("%10d %10zu %14zu %16zu %13.1f%% %10.1f\n", stmts,
                acc.cfg_nodes / kSeeds, acc.naive / kSeeds,
                acc.optimized / kSeeds,
                100.0 * (1.0 - static_cast<double>(acc.optimized) /
                                   static_cast<double>(acc.naive)),
                acc.micros / kSeeds);
  }

  footer("placed switches are a strict subset of the naive everything-"
         "everywhere placement\n(typically well under half), and analysis "
         "time scales near-linearly with CFG size.");
  return 0;
}
