// MICRO — google-benchmark microbenchmarks of the library's hot
// components: frontend, CFG analyses, translation, and the simulator's
// token-matching engine.
#include <benchmark/benchmark.h>

#include <thread>

#include "cfg/build.hpp"
#include "cfg/control_dep.hpp"
#include "cfg/dominance.hpp"
#include "cfg/intervals.hpp"
#include "core/compiler.hpp"
#include "dfg/pass_manager.hpp"
#include "lang/corpus.hpp"
#include "lang/generator.hpp"
#include "machine/exec.hpp"
#include "machine/report.hpp"
#include "serve/serve.hpp"

using namespace ctdf;

namespace {

lang::Program gen(int stmts, std::uint64_t seed = 42) {
  lang::GeneratorOptions o;
  o.allow_unstructured = true;
  o.num_scalars = 6;
  o.max_toplevel_stmts = stmts;
  return lang::generate_program(o, seed);
}

void BM_Parse(benchmark::State& state) {
  const auto src = gen(static_cast<int>(state.range(0))).to_string();
  for (auto _ : state)
    benchmark::DoNotOptimize(lang::parse_or_throw(src));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Parse)->Range(8, 256)->Complexity(benchmark::oN);

void BM_BuildCfg(benchmark::State& state) {
  const auto prog = gen(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(cfg::build_cfg_or_throw(prog));
}
BENCHMARK(BM_BuildCfg)->Range(8, 256);

void BM_Postdominators(benchmark::State& state) {
  const auto prog = gen(static_cast<int>(state.range(0)));
  const auto g = cfg::build_cfg_or_throw(prog);
  for (auto _ : state)
    benchmark::DoNotOptimize(cfg::DomTree(g, cfg::DomDirection::kPostdom));
  state.SetComplexityN(static_cast<std::int64_t>(g.size()));
}
BENCHMARK(BM_Postdominators)->Range(8, 256)->Complexity(benchmark::oN);

void BM_ControlDeps(benchmark::State& state) {
  const auto prog = gen(static_cast<int>(state.range(0)));
  const auto g = cfg::build_cfg_or_throw(prog);
  const cfg::DomTree pdom(g, cfg::DomDirection::kPostdom);
  for (auto _ : state)
    benchmark::DoNotOptimize(cfg::ControlDeps(g, pdom));
}
BENCHMARK(BM_ControlDeps)->Range(8, 256);

void BM_LoopTransform(benchmark::State& state) {
  const auto prog = gen(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto g = cfg::build_cfg_or_throw(prog);
    support::DiagnosticEngine d;
    benchmark::DoNotOptimize(cfg::transform_loops(g, d));
  }
}
BENCHMARK(BM_LoopTransform)->Range(8, 128);

void BM_TranslateSchema2(benchmark::State& state) {
  const auto prog = gen(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::compile(prog, translate::TranslateOptions::schema2()));
}
BENCHMARK(BM_TranslateSchema2)->Range(8, 128);

void BM_TranslateOptimized(benchmark::State& state) {
  const auto prog = gen(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(core::compile(
        prog, translate::TranslateOptions::schema2_optimized()));
}
BENCHMARK(BM_TranslateOptimized)->Range(8, 128);

void BM_MachineTokenThroughput(benchmark::State& state) {
  // Simulated-operator throughput on a loop-heavy workload; reports
  // operator firings per second of host time.
  const auto prog = core::parse(lang::corpus::nested_loops_source(
      static_cast<int>(state.range(0)), 8));
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  const auto tx = core::compile(prog, topt);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    machine::MachineOptions mopt;
    mopt.loop_mode = machine::LoopMode::kPipelined;
    const auto res = core::execute(tx, mopt);
    ops += res.stats.ops_fired;
    benchmark::DoNotOptimize(res.stats.cycles);
  }
  state.counters["ops/s"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineTokenThroughput)->Range(2, 16);

void BM_LowerExecProgram(benchmark::State& state) {
  // Graph → ExecProgram lowering cost (the pipeline's `lower` stage):
  // one-time per compilation, amortized over every machine run.
  const auto prog = gen(static_cast<int>(state.range(0)));
  const auto tx =
      core::compile(prog, translate::TranslateOptions::schema2_optimized());
  for (auto _ : state)
    benchmark::DoNotOptimize(machine::lower(tx.graph));
  state.counters["nodes"] =
      static_cast<double>(tx.graph.num_nodes());
  state.SetComplexityN(static_cast<std::int64_t>(tx.graph.num_nodes()));
}
BENCHMARK(BM_LowerExecProgram)->Range(8, 128)->Complexity(benchmark::oN);

void BM_MachineMatchThroughput(benchmark::State& state) {
  // Steady-state token-matching rate of the ETS frame store: tokens
  // landing in frame slots per second of host time (serial engine,
  // program lowered once outside the loop).
  const auto prog = core::parse(lang::corpus::nested_loops_source(
      static_cast<int>(state.range(0)), 8));
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  const auto tx = core::compile(prog, topt);
  const auto ep = machine::lower(tx.graph);
  std::uint64_t matches = 0;
  for (auto _ : state) {
    machine::MachineOptions mopt;
    mopt.loop_mode = machine::LoopMode::kPipelined;
    const auto res = machine::run(ep, tx.memory_cells, mopt);
    matches += res.stats.matches;
    benchmark::DoNotOptimize(res.stats.cycles);
  }
  state.counters["matches/s"] = benchmark::Counter(
      static_cast<double>(matches), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineMatchThroughput)->Range(2, 16);

void BM_MachineIdleCycles(benchmark::State& state) {
  // Latency-bound regime: barrier loops over high-latency split-phase
  // memory serialize the iterations, so most simulated cycles deliver
  // only a handful of tokens and the run is dominated by the pending-
  // queue bookkeeping (map-node churn in the scan engine vs bucket
  // reuse + bitmap jumps in the event engine). Arg: 0 = scan engine,
  // 1 = event engine; same results either way, only host time differs.
  const auto prog = core::parse(lang::corpus::nested_loops_source(12, 12));
  const auto tx =
      core::compile(prog, translate::TranslateOptions::schema2_optimized());
  std::uint64_t ops = 0;
  for (auto _ : state) {
    machine::MachineOptions mopt;
    mopt.loop_mode = machine::LoopMode::kBarrier;
    mopt.mem_latency = 16;
    mopt.engine = state.range(0) ? machine::EngineKind::kEvent
                                 : machine::EngineKind::kScan;
    const auto res = core::execute(tx, mopt);
    ops += res.stats.ops_fired;
    benchmark::DoNotOptimize(res.stats.cycles);
  }
  state.counters["ops/s"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineIdleCycles)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_FrameAlloc(benchmark::State& state) {
  // Context-churn regime: deep pipelined nested loops allocate and
  // retire an iteration frame per trip. The scan engine pays a heap
  // allocation per context for the life of the run; the event engine
  // hands retired frames back to the arena freelist. Arg: 0 = scan,
  // 1 = event. Reports iteration contexts started per second.
  const auto prog = core::parse(lang::corpus::nested_loops_source(16, 16));
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  const auto tx = core::compile(prog, topt);
  std::uint64_t ctxs = 0;
  for (auto _ : state) {
    machine::MachineOptions mopt;
    mopt.loop_mode = machine::LoopMode::kPipelined;
    mopt.engine = state.range(0) ? machine::EngineKind::kEvent
                                 : machine::EngineKind::kScan;
    const auto res = core::execute(tx, mopt);
    ctxs += res.stats.contexts_allocated;
    benchmark::DoNotOptimize(res.stats.cycles);
  }
  state.counters["ctxs/s"] = benchmark::Counter(
      static_cast<double>(ctxs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FrameAlloc)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_MachineHostThreads(benchmark::State& state) {
  // Wall-clock scaling of the parallel cycle-synchronous engine over
  // host worker threads (arg 0 = serial legacy path) on a token-heavy
  // workload. Results are bit-identical at every thread count — only
  // host time may change — so this measures pure simulator speedup.
  // Wide pipelined nested loops keep many operators firing per cycle,
  // which is the shape the sharded engine parallelizes.
  const auto prog =
      core::parse(lang::corpus::nested_loops_source(16, 16));
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  const auto tx = core::compile(prog, topt);
  const unsigned cores = std::thread::hardware_concurrency();
  state.counters["host-cores"] = static_cast<double>(cores);
  if (cores <= 1 && state.range(0) > 1) {
    // Multi-worker rows on a single-core host measure only scheduling
    // overhead, not speedup; skip them instead of reporting noise.
    state.SkipWithError("single host core: no parallel speedup measurable");
    return;
  }
  std::uint64_t ops = 0;
  for (auto _ : state) {
    machine::MachineOptions mopt;
    mopt.loop_mode = machine::LoopMode::kPipelined;
    mopt.host_threads = static_cast<unsigned>(state.range(0));
    const auto res = core::execute(tx, mopt);
    ops += res.stats.ops_fired;
    benchmark::DoNotOptimize(res.stats.cycles);
  }
  state.counters["ops/s"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineHostThreads)
    ->Arg(0)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_MachineAsyncThreads(benchmark::State& state) {
  // Wall-clock scaling of the asynchronous work-stealing engine (arg 0
  // = serial baseline). Free-running discipline: this is the engine's
  // throughput configuration — no epoch fences, stealing on — and its
  // schedule-derived metrics are allowed to vary, so only the store
  // and semantic counters anchor correctness (checked by the AsyncEquiv
  // suite, not here). The same nested-loop shape as
  // BM_MachineHostThreads makes sync-vs-async speedup directly
  // comparable row by row; scripts/bench_machine.py gates the ≥4-thread
  // rows against --async-speedup-floor.
  const auto prog =
      core::parse(lang::corpus::nested_loops_source(16, 16));
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  const auto tx = core::compile(prog, topt);
  const unsigned cores = std::thread::hardware_concurrency();
  state.counters["host-cores"] = static_cast<double>(cores);
  if (cores <= 1 && state.range(0) > 1) {
    state.SkipWithError("single host core: no parallel speedup measurable");
    return;
  }
  std::uint64_t ops = 0;
  for (auto _ : state) {
    machine::MachineOptions mopt;
    mopt.loop_mode = machine::LoopMode::kPipelined;
    mopt.host_threads = static_cast<unsigned>(state.range(0));
    mopt.parallel = machine::ParallelMode::kAsync;
    mopt.deterministic = false;
    const auto res = core::execute(tx, mopt);
    ops += res.stats.ops_fired;
    benchmark::DoNotOptimize(res.stats.cycles);
  }
  state.counters["ops/s"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineAsyncThreads)
    ->Arg(0)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_MachineFaultsOff(benchmark::State& state) {
  // Fault-machinery overhead gate on a token-heavy two-PE workload.
  // Arg 0: inert FaultPlan — the engines must take their legacy
  // fault-free paths unchanged. Arg 1: the fault-aware path engaged
  // (a frame capacity far above the program's footprint activates the
  // machinery) but with every rate zero, so no fault ever fires and
  // the delta against arg 0 is pure bookkeeping overhead. The bench
  // gate holds that delta to a few percent (scripts/bench_machine.py,
  // --faults-overhead-floor).
  const auto prog = core::parse(lang::corpus::nested_loops_source(8, 8));
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  const auto tx = core::compile(prog, topt);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    machine::MachineOptions mopt;
    mopt.loop_mode = machine::LoopMode::kPipelined;
    mopt.processors = 2;
    if (state.range(0)) mopt.frame_capacity = 1u << 20;
    const auto res = core::execute(tx, mopt);
    ops += res.stats.ops_fired;
    benchmark::DoNotOptimize(res.stats.cycles);
  }
  state.counters["ops/s"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}
// The 0-vs-1 ratio gates a few-percent budget, so single-run noise
// matters: report the median of five interleaved repetitions.
BENCHMARK(BM_MachineFaultsOff)
    ->Arg(0)
    ->Arg(1)
    ->Repetitions(5)
    ->ReportAggregatesOnly(true);

void BM_MachineBudgetOverhead(benchmark::State& state) {
  // Run-budget overhead gate on the token-throughput workload. Arg 0:
  // no budget — the firing loop takes its pre-budget path. Arg 1: an
  // armed-but-unreachable budget (a ten-minute deadline plus a token
  // ceiling far above the program's footprint), so the strided clock
  // poll and the token compare both run on every firing but never
  // trip. The delta against arg 0 is the price every deadline-carrying
  // serve request pays; the bench gate holds it to a few percent
  // (scripts/bench_machine.py, --budget-overhead-floor).
  const auto prog = core::parse(lang::corpus::nested_loops_source(8, 8));
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  const auto tx = core::compile(prog, topt);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    machine::MachineOptions mopt;
    mopt.loop_mode = machine::LoopMode::kPipelined;
    if (state.range(0)) {
      mopt.budget.deadline_ms = 600'000;
      mopt.budget.max_tokens = 1ull << 60;
    }
    const auto res = core::execute(tx, mopt);
    ops += res.stats.ops_fired;
    benchmark::DoNotOptimize(res.stats.cycles);
  }
  state.counters["ops/s"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}
// Median-of-five like the other few-percent overhead gates.
BENCHMARK(BM_MachineBudgetOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Repetitions(5)
    ->ReportAggregatesOnly(true);

void BM_MachineIntegrityOverhead(benchmark::State& state) {
  // Tagged dataflow-integrity checking overhead gate, on a workload
  // that keeps real memory traffic (no mem-elim, so the race check and
  // split-phase accounting are exercised, not just the slot tags).
  // Arg 0: --check=off — by construction a no-op (the shadow tag rows
  // are never allocated, the per-delivery branch tests one bool), so
  // this row must track the pre-checking baseline exactly. Arg 1:
  // --check=integrity — the documented-multiplier row the bench gate
  // holds (scripts/bench_machine.py, --integrity-overhead-floor).
  const auto prog = core::parse(lang::corpus::nested_loops_source(8, 8));
  const auto tx =
      core::compile(prog, translate::TranslateOptions::schema2_optimized());
  std::uint64_t ops = 0, checks = 0;
  for (auto _ : state) {
    machine::MachineOptions mopt;
    mopt.loop_mode = machine::LoopMode::kPipelined;
    mopt.processors = 2;
    if (state.range(0)) mopt.check = machine::CheckMode::kIntegrity;
    const auto res = core::execute(tx, mopt);
    ops += res.stats.ops_fired;
    checks += res.stats.integrity_checks;
    benchmark::DoNotOptimize(res.stats.cycles);
  }
  state.counters["ops/s"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
  state.counters["checks/run"] = benchmark::Counter(
      static_cast<double>(checks), benchmark::Counter::kAvgIterations);
}
// Same median-of-five discipline as the faults-off gate: the off row
// gates at ~0%, so single-run noise would swamp the signal.
BENCHMARK(BM_MachineIntegrityOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Repetitions(5)
    ->ReportAggregatesOnly(true);

void BM_MachineFusedChains(benchmark::State& state) {
  // Macro-op fusion speedup gate on the fusion-friendly workload: a
  // deep loop whose body is one long dependent chain of literal-operand
  // arithmetic. Arg 0: cleanup passes only. Arg 1: --opt=all — the
  // chain collapses into macro ops, so each iteration is one token
  // match plus N ALU steps instead of N matches. Host time per
  // simulated run is the metric; the bench gate holds the 1-vs-0 ratio
  // above a floor (scripts/bench_machine.py, --fusion-speedup-floor).
  const auto prog = core::parse(lang::corpus::chain_loop_source(400, 24));
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  topt.post_optimize = true;
  if (state.range(0)) topt.opt_passes = dfg::PassSet::all();
  const auto tx = core::compile(prog, topt);
  std::uint64_t runs = 0, ops = 0;
  for (auto _ : state) {
    machine::MachineOptions mopt;
    mopt.loop_mode = machine::LoopMode::kPipelined;
    const auto res = core::execute(tx, mopt);
    ++runs;
    ops += res.stats.ops_fired;
    benchmark::DoNotOptimize(res.stats.cycles);
  }
  state.counters["runs/s"] = benchmark::Counter(
      static_cast<double>(runs), benchmark::Counter::kIsRate);
  state.counters["ops/run"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kAvgIterations);
}
// The 1-vs-0 ratio gates a speedup floor: median-of-five interleaved
// repetitions, like the other ratio gates.
BENCHMARK(BM_MachineFusedChains)
    ->Arg(0)
    ->Arg(1)
    ->Repetitions(5)
    ->ReportAggregatesOnly(true);

void BM_MachineFaultRecovery(benchmark::State& state) {
  // Simulated cost of fault recovery: cycles to completion under a
  // seeded plan, against the zero-rate rows as reference. Args:
  // {loop mode (0 = barrier, 1 = pipelined), per-event fault rate in
  // permille applied to drop/dup/jitter/nack alike}. Two simulated
  // PEs so the network faults engage. Every decision is a pure
  // function of the seed, so cycles/run is exact and host-independent
  // — the recorded baseline doubles as a determinism check.
  const auto prog = core::parse(lang::corpus::nested_loops_source(6, 6));
  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;
  const auto tx = core::compile(prog, topt);
  std::uint64_t cycles = 0, faults = 0;
  for (auto _ : state) {
    machine::MachineOptions mopt;
    mopt.loop_mode = state.range(0) ? machine::LoopMode::kPipelined
                                    : machine::LoopMode::kBarrier;
    mopt.processors = 2;
    const double rate = static_cast<double>(state.range(1)) / 1000.0;
    mopt.faults.seed = 7;
    mopt.faults.drop = mopt.faults.dup = rate;
    mopt.faults.jitter = mopt.faults.nack = rate;
    const auto res = core::execute(tx, mopt);
    cycles += res.stats.cycles;
    faults += res.stats.faults_injected;
    benchmark::DoNotOptimize(res.stats.ops_fired);
  }
  state.counters["cycles/run"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kAvgIterations);
  state.counters["faults/run"] = benchmark::Counter(
      static_cast<double>(faults), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_MachineFaultRecovery)
    ->Args({0, 0})
    ->Args({0, 10})
    ->Args({0, 50})
    ->Args({1, 0})
    ->Args({1, 10})
    ->Args({1, 50});

void BM_ServeWarmVsCold(benchmark::State& state) {
  // The compile-once economics of `ctdf serve`, measured end to end
  // through the request path: arg 0 serves every request from a cold
  // server (each one pays parse → 13 stages → lower), arg 1 serves the
  // same request from a primed server (each one pays a cache hit plus
  // execution). scripts/bench_machine.py gates warm/cold at
  // --serve-warm-speedup-floor; both rows come from one run, so the
  // ratio is host-independent.
  const std::string source = lang::corpus::independent_chains_source(6, 8);
  const std::string request =
      "{\"op\": \"run\", \"source\": \"" + machine::json_escape(source) +
      "\"}";
  const bool warm = state.range(0) == 1;
  serve::Server shared;
  if (warm) {
    const std::string primed = shared.handle_line(request);
    benchmark::DoNotOptimize(primed);
  }
  std::uint64_t requests = 0;
  for (auto _ : state) {
    if (warm) {
      const std::string response = shared.handle_line(request);
      benchmark::DoNotOptimize(response);
    } else {
      serve::Server cold;
      const std::string response = cold.handle_line(request);
      benchmark::DoNotOptimize(response);
    }
    ++requests;
  }
  state.counters["req/s"] = benchmark::Counter(
      static_cast<double>(requests), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeWarmVsCold)->Arg(0)->Arg(1);

void BM_EndToEnd(benchmark::State& state) {
  // Full pipeline: parse → CFG → loop transform → analyses → DFG →
  // simulate, on the paper's running example.
  const auto src = lang::corpus::running_example_source();
  for (auto _ : state) {
    const auto prog = lang::parse_or_throw(src);
    const auto tx = core::compile(
        prog, translate::TranslateOptions::schema2_optimized());
    benchmark::DoNotOptimize(core::execute(tx, {}));
  }
}
BENCHMARK(BM_EndToEnd);

}  // namespace

BENCHMARK_MAIN();
