// F6–F8 — Figs. 6–8: Schema 2 with one access token per variable.
//
// Independent variables' memory chains now overlap: on the same
// independent-chains workload, cycles stay (nearly) flat as variables
// are added while Schema 1 grows linearly; on the running example the
// x- and y-chains of each iteration overlap.
#include "common.hpp"
#include "lang/corpus.hpp"

using namespace ctdf;
using namespace ctdf::bench;

int main() {
  header("fig08_schema2_parallel — per-variable access tokens (Schema 2)",
         "'By allowing independent memory operations to proceed in parallel, "
         "we are exploiting\nfine-grain parallelism across statements' "
         "(Sec. 3); loops need the loop-control nodes of Fig. 8");

  machine::MachineOptions mopt;
  mopt.mem_latency = 4;

  std::printf("independent chains (4 updates each), unlimited width:\n");
  std::printf("%8s | %18s | %18s | %8s\n", "vars", "schema1 cycles",
              "schema2 cycles", "speedup");
  for (const int vars : {1, 2, 4, 8, 16}) {
    const auto prog =
        core::parse(lang::corpus::independent_chains_source(vars, 4));
    const auto s1 = measure(prog, translate::TranslateOptions::schema1(), mopt);
    const auto s2 = measure(prog, translate::TranslateOptions::schema2(), mopt);
    std::printf("%8d | %18llu | %18llu | %7.2fx\n", vars,
                static_cast<unsigned long long>(s1.run.cycles),
                static_cast<unsigned long long>(s2.run.cycles),
                static_cast<double>(s1.run.cycles) /
                    static_cast<double>(s2.run.cycles));
  }

  std::printf("\nrunning example (Fig. 8), per-iteration contexts via loop "
              "control:\n");
  const auto re = lang::corpus::running_example();
  const auto s1 = measure(re, translate::TranslateOptions::schema1(), mopt);
  const auto s2 = measure(re, translate::TranslateOptions::schema2(), mopt);
  std::printf("  schema1: cycles=%-6llu ops/cycle=%.2f\n",
              static_cast<unsigned long long>(s1.run.cycles),
              s1.run.avg_parallelism());
  std::printf("  schema2: cycles=%-6llu ops/cycle=%.2f contexts=%llu "
              "(one per iteration)\n",
              static_cast<unsigned long long>(s2.run.cycles),
              s2.run.avg_parallelism(),
              static_cast<unsigned long long>(s2.run.contexts_allocated));

  footer("Schema 2 cycles stay flat as independent variables are added "
         "(Schema 1 grows ~linearly);\nspeedup grows with the number of "
         "independent chains — cross-statement parallelism is real.");
  return 0;
}
