// F1/F5 — Figs. 1 and 5: the running example under Schema 1.
//
// Schema 1 implements sequential semantics: a single access token
// visits statements one at a time; only expression evaluation within a
// statement overlaps. We show that the average parallelism stays near
// the expression-width floor regardless of how many independent
// variables the program has (statements simply queue), and that cycles
// grow linearly with statement count.
#include "common.hpp"
#include "lang/corpus.hpp"

using namespace ctdf;
using namespace ctdf::bench;

int main() {
  header("fig05_schema1_sequential — running example & scaling under Schema 1",
         "Schema 1 'correctly implements the sequential semantics ... "
         "statements are executed one at a time' (Sec. 2.3)");

  machine::MachineOptions mopt;  // unlimited width: any serialization we
                                 // see comes from the graph, not the machine
  mopt.mem_latency = 4;

  const auto run_ex = lang::corpus::running_example();
  const auto m = measure(run_ex, translate::TranslateOptions::schema1(), mopt);
  std::printf("running example (Fig. 1): cycles=%llu ops=%llu ops/cycle=%.2f "
              "(single access token)\n\n",
              static_cast<unsigned long long>(m.run.cycles),
              static_cast<unsigned long long>(m.run.ops_fired),
              m.run.avg_parallelism());

  std::printf("%28s %10s %10s %10s %10s\n",
              "workload (vars x updates)", "stmts", "cycles", "ops",
              "ops/cycle");
  for (const int vars : {1, 2, 4, 8}) {
    const int updates = 4;
    const auto prog = core::parse(
        lang::corpus::independent_chains_source(vars, updates));
    const auto r = measure(prog, translate::TranslateOptions::schema1(), mopt);
    std::printf("%22dx%-5d %10d %10llu %10llu %10.2f\n", vars, updates,
                vars * updates,
                static_cast<unsigned long long>(r.run.cycles),
                static_cast<unsigned long long>(r.run.ops_fired),
                r.run.avg_parallelism());
  }

  footer("cycles grow linearly with statement count even though the "
         "statements are independent;\nops/cycle stays near 1 — Schema 1 "
         "exposes no cross-statement parallelism, as claimed.");
  return 0;
}
