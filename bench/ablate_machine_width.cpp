// A-WIDTH — machine-shape sensitivity: the same optimized dataflow
// graph executed at widths 1..∞ and memory latencies 1..32. The paper's
// point 2 (introduction): the dataflow model abstracts processor count
// away — this table shows how exposed parallelism turns into speedup as
// the machine widens, and where each workload saturates.
#include "common.hpp"
#include "lang/corpus.hpp"

using namespace ctdf;
using namespace ctdf::bench;

int main() {
  header("ablate_machine_width — exposed parallelism vs machine width",
         "'a parallel model of execution ... in which details such as the "
         "number of processors ...\nare abstracted away' — here we put the "
         "processors back and watch saturation");

  const struct {
    const char* name;
    lang::Program prog;
  } workloads[] = {
      {"independent chains 8x4",
       core::parse(lang::corpus::independent_chains_source(8, 4))},
      {"running example", lang::corpus::running_example()},
      {"nested loops 6x6",
       core::parse(lang::corpus::nested_loops_source(6, 6))},
  };

  auto topt = translate::TranslateOptions::schema2_optimized();
  topt.eliminate_memory = true;

  for (const auto& w : workloads) {
    std::printf("%s:\n", w.name);
    std::printf("  %10s", "width\\lat");
    for (const unsigned lat : {1u, 8u, 32u}) std::printf(" %9u", lat);
    std::printf("\n");
    for (const unsigned width : {1u, 2u, 4u, 8u, 16u, 0u}) {
      std::printf(width ? "  %10u" : "    infinite", width);
      for (const unsigned lat : {1u, 8u, 32u}) {
        machine::MachineOptions mopt;
        mopt.width = width;
        mopt.mem_latency = lat;
        mopt.loop_mode = machine::LoopMode::kPipelined;
        const auto m = measure(w.prog, topt, mopt);
        std::printf(" %9llu", static_cast<unsigned long long>(m.run.cycles));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  footer("parallel workloads speed up with width until the graph's critical "
         "path is reached\n(the infinite row); serial recurrences saturate at "
         "width 1-2. Memory latency matters\nonly where access tokens "
         "serialize round-trips.");
  return 0;
}
