#!/usr/bin/env python3
"""Chaos-replay gate for the ctdf serve front-end.

Drives the tools/replay.cpp harness through a small matrix of
transports and overload regimes — the stdin/stdout pipe with a
comfortable queue, the Unix socket with the same, and a deliberately
starved single-worker/tiny-queue pipe — at --requests seeded mixed
requests per cell (default 1000, so the default matrix is 3000+
requests), and enforces the overload-safety invariants the harness
already checks per run:

  * the server never dies while clients are connected;
  * every request line gets exactly one typed JSON response;
  * the process exits 0 after graceful drain (EOF + shutdown on the
    pipe, SIGTERM on the socket);
  * the response census adds up — no response is unaccounted for.

On success it prints one row per cell (mode, requests, p50/p95/p99
latency in microseconds, census) in the format EXPERIMENTS.md records,
and exits 0. Any violated invariant, non-zero harness exit, or
unparseable summary exits 1.

Usage:
  scripts/replay_gate.py --replay build/tools/ctdf_replay \
      --server build/tools/ctdf [--requests 1000]
"""

import argparse
import json
import subprocess
import sys

# (label, mode, seed, workers, max_queue): two healthy cells, one
# starved cell that forces admission control to do real work.
MATRIX = [
    ("pipe", "pipe", 7, 2, 64),
    ("socket", "socket", 11, 2, 64),
    ("pipe-starved", "pipe", 13, 1, 8),
]


def run_cell(args, label, mode, seed, workers, max_queue):
    cmd = [
        args.replay,
        f"--server={args.server}",
        f"--mode={mode}",
        f"--requests={args.requests}",
        f"--seed={seed}",
        f"--workers={workers}",
        f"--max-queue={max_queue}",
        f"--timeout-s={args.timeout_s}",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.stderr:
        sys.stderr.write(proc.stderr)
    failures = []
    if proc.returncode != 0:
        failures.append(f"{label}: harness exit {proc.returncode}")
    try:
        summary = json.loads(proc.stdout.strip().splitlines()[-1])
    except (ValueError, IndexError):
        failures.append(f"{label}: unparseable summary: {proc.stdout!r}")
        return None, failures
    if summary.get("violations", 1) != 0:
        failures.append(f"{label}: {summary['violations']} invariant "
                        "violation(s)")
    if summary.get("responses") != summary.get("requests"):
        failures.append(f"{label}: {summary.get('requests')} requests but "
                        f"{summary.get('responses')} responses")
    if summary.get("server_exit") != 0:
        failures.append(f"{label}: server exit {summary.get('server_exit')}")
    census = summary.get("census", {})
    if sum(census.values()) != summary.get("responses"):
        failures.append(f"{label}: census sums to {sum(census.values())}, "
                        f"not {summary.get('responses')}")
    if census.get("unparseable", 0) != 0:
        failures.append(f"{label}: {census['unparseable']} unparseable "
                        "response(s)")
    return summary, failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--replay", required=True,
                    help="path to the ctdf_replay binary")
    ap.add_argument("--server", required=True,
                    help="path to the ctdf binary")
    ap.add_argument("--requests", type=int, default=1000,
                    help="seeded requests per matrix cell (default 1000)")
    ap.add_argument("--timeout-s", type=int, default=300,
                    help="per-cell harness timeout in seconds")
    args = ap.parse_args()

    failures = []
    total = 0
    print(f"{'cell':<14} {'requests':>8} {'p50_us':>8} {'p95_us':>8} "
          f"{'p99_us':>8}  census")
    for label, mode, seed, workers, max_queue in MATRIX:
        summary, cell_failures = run_cell(args, label, mode, seed, workers,
                                          max_queue)
        failures.extend(cell_failures)
        if summary is None:
            continue
        total += summary.get("requests", 0)
        census = ", ".join(f"{k}={v}" for k, v in
                           sorted(summary.get("census", {}).items()))
        print(f"{label:<14} {summary.get('requests', 0):>8} "
              f"{summary.get('p50_us', 0):>8} {summary.get('p95_us', 0):>8} "
              f"{summary.get('p99_us', 0):>8}  {census}")

    print(f"total requests: {total}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("all replay invariants held: no server deaths, no dropped "
          "responses, clean drains")
    return 0


if __name__ == "__main__":
    sys.exit(main())
