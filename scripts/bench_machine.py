#!/usr/bin/env python3
"""Machine-simulator benchmark gate.

Runs the micro_components google-benchmark harness, extracts the
simulator's operator throughput (BM_MachineTokenThroughput), the
frame-store matching rate (BM_MachineMatchThroughput), and the graph →
ExecProgram lowering time (BM_LowerExecProgram), and writes them to a
JSON summary (BENCH_machine.json).

With --check BASELINE it additionally compares against a committed
baseline and exits non-zero on a regression beyond --tolerance
(default 25%): throughput/match rates lower, or lowering time higher.

Usage:
  scripts/bench_machine.py --bench build/bench/micro_components \
      --out BENCH_machine.json [--check BENCH_machine.json]
"""

import argparse
import json
import subprocess
import sys

FILTER = "|".join(
    [
        "BM_MachineTokenThroughput",
        "BM_MachineMatchThroughput",
        "BM_LowerExecProgram/",  # skip the _BigO/_RMS aggregate rows
    ]
)


def run_bench(bench_path):
    cmd = [
        bench_path,
        f"--benchmark_filter={FILTER}",
        "--benchmark_format=json",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark run failed ({proc.returncode})")
    return json.loads(proc.stdout)


def summarize(report):
    out = {"machine_ops_per_s": {}, "matches_per_s": {}, "lowering_ns": {}}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"].replace("/real_time", "")
        if "BM_MachineTokenThroughput" in name and "ops/s" in b:
            out["machine_ops_per_s"][name] = b["ops/s"]
        elif "BM_MachineMatchThroughput" in name and "matches/s" in b:
            out["matches_per_s"][name] = b["matches/s"]
        elif "BM_LowerExecProgram" in name:
            out["lowering_ns"][name] = b["real_time"]
    return out


def check(current, baseline, tolerance):
    failures = []

    def compare(section, regressed, direction):
        for name, base in baseline.get(section, {}).items():
            now = current.get(section, {}).get(name)
            if now is None or base <= 0:
                continue
            ratio = now / base
            flag = "REGRESSION" if regressed(ratio) else "ok"
            print(f"  {name}: {base:.3g} -> {now:.3g} "
                  f"({ratio:.1%} of baseline, {direction}) {flag}")
            if regressed(ratio):
                failures.append(name)

    print("throughput (higher is better):")
    compare("machine_ops_per_s", lambda r: r < 1.0 - tolerance, "ops/s")
    compare("matches_per_s", lambda r: r < 1.0 - tolerance, "matches/s")
    print("lowering time (lower is better):")
    compare("lowering_ns", lambda r: r > 1.0 + tolerance, "ns")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", required=True,
                    help="path to the micro_components binary")
    ap.add_argument("--out", default="BENCH_machine.json",
                    help="summary JSON to write")
    ap.add_argument("--check", metavar="BASELINE",
                    help="baseline JSON to compare against")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative regression (default 0.25)")
    args = ap.parse_args()

    summary = summarize(run_bench(args.bench))
    with open(args.out, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}")

    if args.check:
        with open(args.check) as f:
            baseline = json.load(f)
        failures = check(summary, baseline, args.tolerance)
        if failures:
            print(f"FAIL: {len(failures)} benchmark(s) regressed beyond "
                  f"{args.tolerance:.0%}: {', '.join(failures)}")
            return 1
        print("all benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
