#!/usr/bin/env python3
"""Machine-simulator benchmark gate.

Runs the micro_components google-benchmark harness, extracts the
simulator's operator throughput (BM_MachineTokenThroughput), the
frame-store matching rate (BM_MachineMatchThroughput), the graph →
ExecProgram lowering time (BM_LowerExecProgram), the latency-bound
engine comparison (BM_MachineIdleCycles, arg 0 = scan / 1 = event),
the context-churn comparison (BM_FrameAlloc), the fault-machinery
overhead pair (BM_MachineFaultsOff, arg 0 = legacy path / 1 = fault
path engaged with zero rates), the run-budget cost pair
(BM_MachineBudgetOverhead, arg 0 = no budget / 1 = armed but
unreachable deadline + token ceiling), the integrity-checker cost pair
(BM_MachineIntegrityOverhead, arg 0 = --check=off / 1 =
--check=integrity), the macro-op fusion pair (BM_MachineFusedChains,
arg 0 = cleanup passes only / 1 = --opt=all), the deterministic
recovery cost (BM_MachineFaultRecovery, cycles per run), and the
async work-stealing engine's thread scaling (BM_MachineAsyncThreads,
arg 0 = serial baseline / N = free-running async at N host threads),
and the serve front-end's compile-once economics (BM_ServeWarmVsCold,
arg 0 = a cold server per request / 1 = a primed program cache; the
warm path must beat the cold path by --serve-warm-speedup-floor, a
within-run ratio, so it is host-independent), and writes them to a
JSON summary (BENCH_machine.json).

With --check BASELINE it additionally compares against a committed
baseline and exits non-zero on a regression beyond --tolerance
(default 25%, or a per-section override): throughput/match/context
rates lower, or lowering time / recovery cycles higher. It also
requires the event engine to beat the scan engine on the latency-bound
workload by at least --event-speedup-floor, holds the engaged-but-
faultless path to within --faults-overhead-floor of the legacy path,
holds the armed-but-unreachable run budget to within
--budget-overhead-floor of the unbudgeted path,
and holds --check=integrity to within --integrity-overhead-floor of
the unchecked path (the ratios are measured within one run, so they
are host-independent). Macro-op fusion must *speed up* the chain-heavy
workload by at least --fusion-speedup-floor: the fused row simulates
the same program in fewer token matches, so falling under the floor
means the fusion pass or the macro firing path lost its advantage.
On multi-core hosts the async engine must beat its own serial
baseline by at least --async-speedup-floor at >= 4 threads; on
single-core hosts the multi-thread rows skip themselves and the gate
is vacuous (speedup is not measurable there). The checking-off row of the integrity pair is
also gated against the baseline, which pins "off costs nothing": any
tax the checker imposed on unchecked runs would show up there.

Usage:
  scripts/bench_machine.py --bench build/bench/micro_components \
      --out BENCH_machine.json [--check BENCH_machine.json]

Regenerating the committed baseline (after an intentional perf change,
on a quiet machine, from a Release build):

  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j --target micro_components
  scripts/bench_machine.py --bench build/bench/micro_components --record

--record rewrites BENCH_machine.json in place (keys sorted, trailing
newline — byte-stable for a given set of numbers) and skips the
regression check; commit the result together with the change that
motivated it.
"""

import argparse
import json
import re
import subprocess
import sys

FILTER = "|".join(
    [
        "BM_MachineTokenThroughput",
        "BM_MachineMatchThroughput",
        "BM_MachineIdleCycles",
        "BM_MachineFaultsOff",
        "BM_MachineBudgetOverhead",
        "BM_MachineIntegrityOverhead",
        "BM_MachineFusedChains",
        "BM_MachineFaultRecovery",
        "BM_MachineAsyncThreads",
        "BM_FrameAlloc",
        "BM_ServeWarmVsCold",
        "BM_LowerExecProgram/",  # skip the _BigO/_RMS aggregate rows
    ]
)

# section -> (benchmark prefix, counter key, higher_is_better
#             [, tolerance override])
# BM_MachineFaultRecovery reports *simulated* cycles — a deterministic
# function of the fault seed, so any baseline drift there is a real
# semantic change, not noise; gate it tightly.
SECTIONS = {
    "machine_ops_per_s": ("BM_MachineTokenThroughput", "ops/s", True),
    "matches_per_s": ("BM_MachineMatchThroughput", "matches/s", True),
    "idle_ops_per_s": ("BM_MachineIdleCycles", "ops/s", True),
    "faults_off_ops_per_s": ("BM_MachineFaultsOff", "ops/s", True),
    "budget_ops_per_s": ("BM_MachineBudgetOverhead", "ops/s", True),
    "integrity_ops_per_s": ("BM_MachineIntegrityOverhead", "ops/s", True),
    "fused_runs_per_s": ("BM_MachineFusedChains", "runs/s", True),
    "fault_recovery_cycles": ("BM_MachineFaultRecovery", "cycles/run",
                              False, 0.05),
    "async_ops_per_s": ("BM_MachineAsyncThreads", "ops/s", True),
    "serve_req_per_s": ("BM_ServeWarmVsCold", "req/s", True),
    "frame_ctxs_per_s": ("BM_FrameAlloc", "ctxs/s", True),
    "lowering_ns": ("BM_LowerExecProgram", "real_time", False),
}


def run_bench(bench_path):
    cmd = [
        bench_path,
        f"--benchmark_filter={FILTER}",
        "--benchmark_format=json",
        # Shuffle repeated benchmarks (BM_MachineFaultsOff) so frequency
        # drift doesn't land entirely on one side of the overhead ratio.
        "--benchmark_enable_random_interleaving=true",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark run failed ({proc.returncode})")
    return json.loads(proc.stdout)


def summarize(report):
    out = {section: {} for section in SECTIONS}
    for b in report.get("benchmarks", []):
        # Repeated benchmarks report aggregates only; keep the median
        # row under the plain benchmark name.
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") != "median":
                continue
        name = re.sub(r"/repeats:\d+|_median", "",
                      b["name"].replace("/real_time", ""))
        for section, spec in SECTIONS.items():
            prefix, key = spec[0], spec[1]
            if name.startswith(prefix) and key in b:
                out[section][name] = b[key]
                break
    return out


def event_speedup(summary):
    """Event-over-scan throughput ratio on the latency-bound workload,
    or None when either row is missing."""
    rows = summary.get("idle_ops_per_s", {})
    scan = rows.get("BM_MachineIdleCycles/0")
    event = rows.get("BM_MachineIdleCycles/1")
    if not scan or not event:
        return None
    return event / scan


def faults_overhead(summary):
    """Engaged-but-faultless over legacy-path throughput ratio on
    BM_MachineFaultsOff, or None when either row is missing. Both rows
    come from the same run, so the ratio is host-independent."""
    rows = summary.get("faults_off_ops_per_s", {})
    legacy = rows.get("BM_MachineFaultsOff/0")
    engaged = rows.get("BM_MachineFaultsOff/1")
    if not legacy or not engaged:
        return None
    return engaged / legacy


def budget_overhead(summary):
    """Armed-but-unreachable budget over no-budget throughput ratio on
    BM_MachineBudgetOverhead, or None when either row is missing. Both
    rows come from the same run, so the ratio is host-independent. The
    arg-1 row pays the strided deadline poll plus the per-firing token
    compare without ever tripping — the cost every deadline-carrying
    serve request bears."""
    rows = summary.get("budget_ops_per_s", {})
    plain = rows.get("BM_MachineBudgetOverhead/0")
    armed = rows.get("BM_MachineBudgetOverhead/1")
    if not plain or not armed:
        return None
    return armed / plain


def integrity_overhead(summary):
    """--check=integrity over --check=off throughput ratio on
    BM_MachineIntegrityOverhead, or None when either row is missing.
    Measured within one run, so host-independent. The arg-0 (checking
    off) row is separately gated against the baseline, which is what
    pins the "off costs nothing" half of the contract."""
    rows = summary.get("integrity_ops_per_s", {})
    off = rows.get("BM_MachineIntegrityOverhead/0")
    on = rows.get("BM_MachineIntegrityOverhead/1")
    if not off or not on:
        return None
    return on / off


def fusion_speedup(summary):
    """Fused over unfused simulated-run rate on BM_MachineFusedChains,
    or None when either row is missing. Both rows simulate the same
    program from the same compile options modulo the fuse pass, within
    one benchmark run, so the ratio is host-independent."""
    rows = summary.get("fused_runs_per_s", {})
    unfused = rows.get("BM_MachineFusedChains/0")
    fused = rows.get("BM_MachineFusedChains/1")
    if not unfused or not fused:
        return None
    return fused / unfused


def async_speedup(summary):
    """Best async-over-serial throughput ratio on BM_MachineAsyncThreads
    among the >= 4-thread rows, or None when the rows are missing (the
    multi-thread rows skip themselves on single-core hosts, where no
    speedup is measurable). Both sides come from the same run, so the
    ratio is host-independent."""
    rows = summary.get("async_ops_per_s", {})
    serial = rows.get("BM_MachineAsyncThreads/0")
    threaded = [v for k, v in rows.items()
                if k != "BM_MachineAsyncThreads/0"
                and int(k.rsplit("/", 1)[1]) >= 4]
    if not serial or not threaded:
        return None
    return max(threaded) / serial


def serve_warm_speedup(summary):
    """Warm-over-cold request rate on BM_ServeWarmVsCold, or None when
    either row is missing. Cold pays a full compile per request, warm a
    program-cache hit plus execution; both rows come from the same run,
    so the ratio is host-independent."""
    rows = summary.get("serve_req_per_s", {})
    cold = rows.get("BM_ServeWarmVsCold/0")
    warm = rows.get("BM_ServeWarmVsCold/1")
    if not cold or not warm:
        return None
    return warm / cold


def check(current, baseline, tolerance, speedup_floor, overhead_floor,
          budget_floor, integrity_floor, fusion_floor, async_floor,
          serve_floor):
    failures = []

    def compare(section, spec):
        key, higher = spec[1], spec[2]
        tol = spec[3] if len(spec) > 3 else tolerance
        for name, base in baseline.get(section, {}).items():
            now = current.get(section, {}).get(name)
            if now is None or base <= 0:
                continue
            ratio = now / base
            bad = ratio < 1.0 - tol if higher else ratio > 1.0 + tol
            flag = "REGRESSION" if bad else "ok"
            print(f"  {name}: {base:.3g} -> {now:.3g} "
                  f"({ratio:.1%} of baseline, {key}, "
                  f"tol {tol:.0%}) {flag}")
            if bad:
                failures.append(name)

    print("throughput (higher is better):")
    for section, spec in SECTIONS.items():
        if spec[2]:
            compare(section, spec)
    print("time / simulated cycles (lower is better):")
    for section, spec in SECTIONS.items():
        if not spec[2]:
            compare(section, spec)

    speedup = event_speedup(current)
    if speedup is not None:
        flag = "ok" if speedup >= speedup_floor else "REGRESSION"
        print(f"event-engine speedup on BM_MachineIdleCycles: "
              f"{speedup:.2f}x (floor {speedup_floor:.2f}x) {flag}")
        if speedup < speedup_floor:
            failures.append("event-speedup")

    overhead = faults_overhead(current)
    if overhead is not None:
        flag = "ok" if overhead >= overhead_floor else "REGRESSION"
        print(f"fault-path overhead on BM_MachineFaultsOff: "
              f"{overhead:.1%} of legacy throughput "
              f"(floor {overhead_floor:.0%}) {flag}")
        if overhead < overhead_floor:
            failures.append("faults-off-overhead")

    budget = budget_overhead(current)
    if budget is not None:
        flag = "ok" if budget >= budget_floor else "REGRESSION"
        print(f"armed-budget overhead on BM_MachineBudgetOverhead: "
              f"{budget:.1%} of unbudgeted throughput "
              f"(floor {budget_floor:.0%}) {flag}")
        if budget < budget_floor:
            failures.append("budget-overhead")

    integ = integrity_overhead(current)
    if integ is not None:
        flag = "ok" if integ >= integrity_floor else "REGRESSION"
        print(f"integrity-checking overhead on BM_MachineIntegrityOverhead: "
              f"{integ:.1%} of unchecked throughput "
              f"(floor {integrity_floor:.0%}) {flag}")
        if integ < integrity_floor:
            failures.append("integrity-overhead")

    fusion = fusion_speedup(current)
    if fusion is not None:
        flag = "ok" if fusion >= fusion_floor else "REGRESSION"
        print(f"macro-op fusion speedup on BM_MachineFusedChains: "
              f"{fusion:.2f}x (floor {fusion_floor:.2f}x) {flag}")
        if fusion < fusion_floor:
            failures.append("fusion-speedup")

    asyn = async_speedup(current)
    if asyn is not None:
        flag = "ok" if asyn >= async_floor else "REGRESSION"
        print(f"async-engine speedup on BM_MachineAsyncThreads: "
              f"{asyn:.2f}x (floor {async_floor:.2f}x) {flag}")
        if asyn < async_floor:
            failures.append("async-speedup")
    else:
        print("async-engine speedup on BM_MachineAsyncThreads: "
              "not measurable on this host (multi-thread rows skipped)")

    serve = serve_warm_speedup(current)
    if serve is not None:
        flag = "ok" if serve >= serve_floor else "REGRESSION"
        print(f"serve warm-over-cold speedup on BM_ServeWarmVsCold: "
              f"{serve:.2f}x (floor {serve_floor:.2f}x) {flag}")
        if serve < serve_floor:
            failures.append("serve-warm-speedup")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", required=True,
                    help="path to the micro_components binary")
    ap.add_argument("--out", default="BENCH_machine.json",
                    help="summary JSON to write")
    ap.add_argument("--check", metavar="BASELINE",
                    help="baseline JSON to compare against")
    ap.add_argument("--record", action="store_true",
                    help="rewrite the baseline (--out) in place and skip "
                         "the regression check; see the module docstring "
                         "for the full regeneration workflow")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative regression (default 0.25)")
    ap.add_argument("--event-speedup-floor", type=float, default=1.2,
                    help="required event/scan throughput ratio on the "
                         "latency-bound workload (default 1.2)")
    ap.add_argument("--faults-overhead-floor", type=float, default=0.95,
                    help="required engaged-but-faultless/legacy "
                         "throughput ratio on BM_MachineFaultsOff "
                         "(default 0.95, i.e. at most 5%% overhead)")
    ap.add_argument("--budget-overhead-floor", type=float, default=0.95,
                    help="required armed-but-unreachable-budget/no-budget "
                         "throughput ratio on BM_MachineBudgetOverhead "
                         "(default 0.95, i.e. at most 5%% overhead for "
                         "the strided deadline poll + token compare)")
    ap.add_argument("--integrity-overhead-floor", type=float, default=0.75,
                    help="required --check=integrity/--check=off "
                         "throughput ratio on BM_MachineIntegrityOverhead "
                         "(default 0.75, i.e. at most a 1.33x slowdown "
                         "with checking on; measured ~0.90)")
    ap.add_argument("--fusion-speedup-floor", type=float, default=1.15,
                    help="required fused/unfused run-rate ratio on the "
                         "chain-heavy workload BM_MachineFusedChains "
                         "(default 1.15)")
    ap.add_argument("--async-speedup-floor", type=float, default=1.15,
                    help="required async/serial throughput ratio on "
                         "BM_MachineAsyncThreads at >= 4 threads "
                         "(default 1.15); vacuous on single-core hosts "
                         "where the threaded rows skip themselves")
    ap.add_argument("--serve-warm-speedup-floor", type=float, default=5.0,
                    help="required warm/cold request-rate ratio on "
                         "BM_ServeWarmVsCold (default 5.0): a cached "
                         "serve request skips the whole compile, so the "
                         "warm path must be at least this much faster")
    args = ap.parse_args()

    summary = summarize(run_bench(args.bench))
    with open(args.out, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}")

    if args.record:
        speedup = event_speedup(summary)
        if speedup is not None:
            print(f"event-engine speedup on BM_MachineIdleCycles: "
                  f"{speedup:.2f}x")
        overhead = faults_overhead(summary)
        if overhead is not None:
            print(f"fault-path overhead on BM_MachineFaultsOff: "
                  f"{overhead:.1%} of legacy throughput")
        budget = budget_overhead(summary)
        if budget is not None:
            print(f"armed-budget overhead on BM_MachineBudgetOverhead: "
                  f"{budget:.1%} of unbudgeted throughput")
        integ = integrity_overhead(summary)
        if integ is not None:
            print(f"integrity-checking overhead on "
                  f"BM_MachineIntegrityOverhead: {integ:.1%} of "
                  f"unchecked throughput")
        fusion = fusion_speedup(summary)
        if fusion is not None:
            print(f"macro-op fusion speedup on BM_MachineFusedChains: "
                  f"{fusion:.2f}x")
        asyn = async_speedup(summary)
        if asyn is not None:
            print(f"async-engine speedup on BM_MachineAsyncThreads: "
                  f"{asyn:.2f}x")
        serve = serve_warm_speedup(summary)
        if serve is not None:
            print(f"serve warm-over-cold speedup on BM_ServeWarmVsCold: "
                  f"{serve:.2f}x")
        print("baseline recorded; commit it with the change that "
              "motivated the new numbers")
        return 0

    if args.check:
        with open(args.check) as f:
            baseline = json.load(f)
        failures = check(summary, baseline, args.tolerance,
                         args.event_speedup_floor,
                         args.faults_overhead_floor,
                         args.budget_overhead_floor,
                         args.integrity_overhead_floor,
                         args.fusion_speedup_floor,
                         args.async_speedup_floor,
                         args.serve_warm_speedup_floor)
        if failures:
            print(f"FAIL: {len(failures)} benchmark(s) regressed beyond "
                  f"{args.tolerance:.0%}: {', '.join(failures)}")
            return 1
        print("all benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
