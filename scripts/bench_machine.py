#!/usr/bin/env python3
"""Machine-simulator benchmark gate.

Runs the micro_components google-benchmark harness, extracts the
simulator's operator throughput (BM_MachineTokenThroughput), the
frame-store matching rate (BM_MachineMatchThroughput), the graph →
ExecProgram lowering time (BM_LowerExecProgram), the latency-bound
engine comparison (BM_MachineIdleCycles, arg 0 = scan / 1 = event), and
the context-churn comparison (BM_FrameAlloc), and writes them to a JSON
summary (BENCH_machine.json).

With --check BASELINE it additionally compares against a committed
baseline and exits non-zero on a regression beyond --tolerance
(default 25%): throughput/match/context rates lower, or lowering time
higher. It also requires the event engine to beat the scan engine on
the latency-bound workload by at least --event-speedup-floor.

Usage:
  scripts/bench_machine.py --bench build/bench/micro_components \
      --out BENCH_machine.json [--check BENCH_machine.json]

Regenerating the committed baseline (after an intentional perf change,
on a quiet machine, from a Release build):

  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j --target micro_components
  scripts/bench_machine.py --bench build/bench/micro_components --record

--record rewrites BENCH_machine.json in place (keys sorted, trailing
newline — byte-stable for a given set of numbers) and skips the
regression check; commit the result together with the change that
motivated it.
"""

import argparse
import json
import subprocess
import sys

FILTER = "|".join(
    [
        "BM_MachineTokenThroughput",
        "BM_MachineMatchThroughput",
        "BM_MachineIdleCycles",
        "BM_FrameAlloc",
        "BM_LowerExecProgram/",  # skip the _BigO/_RMS aggregate rows
    ]
)

# section -> (benchmark prefix, counter key, higher_is_better)
SECTIONS = {
    "machine_ops_per_s": ("BM_MachineTokenThroughput", "ops/s", True),
    "matches_per_s": ("BM_MachineMatchThroughput", "matches/s", True),
    "idle_ops_per_s": ("BM_MachineIdleCycles", "ops/s", True),
    "frame_ctxs_per_s": ("BM_FrameAlloc", "ctxs/s", True),
    "lowering_ns": ("BM_LowerExecProgram", "real_time", False),
}


def run_bench(bench_path):
    cmd = [
        bench_path,
        f"--benchmark_filter={FILTER}",
        "--benchmark_format=json",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark run failed ({proc.returncode})")
    return json.loads(proc.stdout)


def summarize(report):
    out = {section: {} for section in SECTIONS}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"].replace("/real_time", "")
        for section, (prefix, key, _) in SECTIONS.items():
            if name.startswith(prefix) and key in b:
                out[section][name] = b[key]
                break
    return out


def event_speedup(summary):
    """Event-over-scan throughput ratio on the latency-bound workload,
    or None when either row is missing."""
    rows = summary.get("idle_ops_per_s", {})
    scan = rows.get("BM_MachineIdleCycles/0")
    event = rows.get("BM_MachineIdleCycles/1")
    if not scan or not event:
        return None
    return event / scan


def check(current, baseline, tolerance, speedup_floor):
    failures = []

    def compare(section, regressed, direction):
        for name, base in baseline.get(section, {}).items():
            now = current.get(section, {}).get(name)
            if now is None or base <= 0:
                continue
            ratio = now / base
            flag = "REGRESSION" if regressed(ratio) else "ok"
            print(f"  {name}: {base:.3g} -> {now:.3g} "
                  f"({ratio:.1%} of baseline, {direction}) {flag}")
            if regressed(ratio):
                failures.append(name)

    print("throughput (higher is better):")
    for section, (_, key, higher) in SECTIONS.items():
        if not higher:
            continue
        compare(section, lambda r: r < 1.0 - tolerance, key)
    print("lowering time (lower is better):")
    compare("lowering_ns", lambda r: r > 1.0 + tolerance, "ns")

    speedup = event_speedup(current)
    if speedup is not None:
        flag = "ok" if speedup >= speedup_floor else "REGRESSION"
        print(f"event-engine speedup on BM_MachineIdleCycles: "
              f"{speedup:.2f}x (floor {speedup_floor:.2f}x) {flag}")
        if speedup < speedup_floor:
            failures.append("event-speedup")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", required=True,
                    help="path to the micro_components binary")
    ap.add_argument("--out", default="BENCH_machine.json",
                    help="summary JSON to write")
    ap.add_argument("--check", metavar="BASELINE",
                    help="baseline JSON to compare against")
    ap.add_argument("--record", action="store_true",
                    help="rewrite the baseline (--out) in place and skip "
                         "the regression check; see the module docstring "
                         "for the full regeneration workflow")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative regression (default 0.25)")
    ap.add_argument("--event-speedup-floor", type=float, default=1.2,
                    help="required event/scan throughput ratio on the "
                         "latency-bound workload (default 1.2)")
    args = ap.parse_args()

    summary = summarize(run_bench(args.bench))
    with open(args.out, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}")

    if args.record:
        speedup = event_speedup(summary)
        if speedup is not None:
            print(f"event-engine speedup on BM_MachineIdleCycles: "
                  f"{speedup:.2f}x")
        print("baseline recorded; commit it with the change that "
              "motivated the new numbers")
        return 0

    if args.check:
        with open(args.check) as f:
            baseline = json.load(f)
        failures = check(summary, baseline, args.tolerance,
                         args.event_speedup_floor)
        if failures:
            print(f"FAIL: {len(failures)} benchmark(s) regressed beyond "
                  f"{args.tolerance:.0%}: {', '.join(failures)}")
            return 1
        print("all benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
