#include "machine/engine_event.hpp"

#include <algorithm>

#include "machine/calendar.hpp"
#include "machine/engine_serial.hpp"

namespace ctdf::machine::detail {

namespace {

/// Calendar-queue pending policy: O(1) push/drain, bitmap idle jump,
/// and arena frames recycled when their iteration context retires.
struct WheelPending {
  static constexpr bool kRecycleFrames = true;

  explicit WheelPending(const MachineOptions& opt) : q_(event_horizon(opt)) {}

  void push(std::uint64_t due, const Token& t) { q_.push(due, t); }

  template <class F>
  void drain(std::uint64_t cycle, F&& f) {
    q_.drain(cycle, static_cast<F&&>(f));
  }

  [[nodiscard]] bool empty() const { return q_.empty(); }

  [[nodiscard]] std::uint64_t next_due(std::uint64_t cycle) const {
    return q_.next_due(cycle);
  }

  template <class F>
  void for_each_pending(std::uint64_t cycle, F&& f) const {
    q_.for_each_pending(cycle, static_cast<F&&>(f));
  }

  CalendarQueue q_;
};

}  // namespace

std::uint64_t event_horizon(const MachineOptions& opt) {
  // Firings schedule at cycle + alu or mem latency, plus one network
  // hop when producer and consumer land on different PEs; k-bound
  // stalls re-deliver at cycle + 1. Fault injection can add at most
  // max_fault_delay (the full retry/backoff ladder plus jitter and
  // duplicate spread) to any single delivery.
  std::uint64_t h = std::max<std::uint64_t>(opt.alu_latency, opt.mem_latency);
  if (opt.processors > 0) h += opt.network_latency;
  h += max_fault_delay(opt.faults);
  return h;
}

RunResult run_event(const ExecProgram& program, std::size_t memory_cells,
                    const MachineOptions& options,
                    const std::vector<IStructureRegion>& istructures,
                    const std::vector<SharedRegion>& shared) {
  return SerialEngine<WheelPending>{program, memory_cells, options,
                                    istructures, shared}
      .run();
}

}  // namespace ctdf::machine::detail
