// The serial execution engine, parameterized over its pending-token
// queue. machine.cpp instantiates it with MapPending (the legacy
// "scan" engine: ordered map keyed by delivery cycle, frames never
// freed); engine_event.cpp instantiates it with a calendar-queue
// policy that also recycles retired contexts' frames. Every
// semantics-bearing line — delivery, matching, firing, token
// accounting, error reporting — is this one template, which is what
// makes the two engines byte-identical by construction; the
// differential suite in tests/machine_event_equiv_test.cpp guards the
// policies themselves against drift.
//
// A PendingQueue policy provides:
//   static constexpr bool kRecycleFrames;     // recycle frames on
//                                             // context retirement
//   explicit PendingQueue(const MachineOptions&);
//   void push(uint64_t due, const Token&);    // FIFO per due cycle
//   template <class F> void drain(uint64_t cycle, F&&);  // then clears
//   bool empty() const;
//   uint64_t next_due(uint64_t cycle) const;  // requires !empty()
//   template <class F> void for_each_pending(uint64_t cycle, F&&) const;
//                                             // ascending due order
#pragma once

#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "machine/exec.hpp"
#include "machine/fire.hpp"
#include "machine/frames.hpp"
#include "machine/machine.hpp"
#include "machine/options.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace ctdf::machine::detail {

struct ReadyEntry {
  std::uint32_t ctx = 0;
  dfg::NodeId node;
  /// Non-strict firings carry their single token inline.
  bool immediate = false;
  bool requeued = false;  ///< see Token::requeued
  std::uint16_t port = 0;
  std::int64_t value = 0;
};

/// The scan engine's pending queue: an ordered map of delivery cycle →
/// token FIFO. The reference policy.
struct MapPending {
  static constexpr bool kRecycleFrames = false;

  explicit MapPending(const MachineOptions&) {}

  void push(std::uint64_t due, const Token& t) { m_[due].push_back(t); }

  template <class F>
  void drain(std::uint64_t cycle, F&& f) {
    const auto it = m_.find(cycle);
    if (it == m_.end()) return;
    for (const Token& t : it->second) f(t);
    m_.erase(it);
  }

  [[nodiscard]] bool empty() const { return m_.empty(); }

  [[nodiscard]] std::uint64_t next_due(std::uint64_t) const {
    return m_.begin()->first;
  }

  template <class F>
  void for_each_pending(std::uint64_t, F&& f) const {
    for (const auto& [due, v] : m_)
      for (const Token& t : v) f(t);
  }

  std::map<std::uint64_t, std::vector<Token>> m_;
};

template <class PendingQueue>
class SerialEngine {
 public:
  SerialEngine(const ExecProgram& ep, std::size_t memory_cells,
               const MachineOptions& opt,
               const std::vector<IStructureRegion>& istructures)
      : ep_(ep),
        opt_(opt),
        rng_(opt.scheduler_seed),
        frames_(ep),
        pending_(opt) {
    CTDF_ASSERT_MSG(opt_.alu_latency >= 1 && opt_.mem_latency >= 1,
                    "latencies must be at least one cycle");
    mem_.init(memory_cells, istructures);
    stats_.fired_by_kind.assign(dfg::kNumOpKinds, 0);
    stats_.first_fire_cycle.assign(ep.num_ops(), UINT64_MAX);
  }

  RunResult run() {
    boot();
    std::uint64_t cycle = 0;
    while (!completed_ && stats_.error.empty()) {
      if (cycle >= opt_.max_cycles) {
        stats_.cycles = cycle;
        stats_.error = "cycle cap exceeded (possible livelock or "
                       "non-terminating program)";
        break;
      }
      // 1. Deliver tokens due this cycle.
      pending_.drain(cycle, [&](const Token& t) { deliver(t, cycle); });
      stats_.peak_ready = std::max<std::uint64_t>(
          stats_.peak_ready, ready_.size() - ready_head_);

      // 2. Fire ready operators: either the abstract pool bounded by
      // `width`, or one operator per processing element per cycle.
      std::uint32_t fired = 0;
      if (opt_.processors == 0) {
        const std::uint64_t budget =
            opt_.width == 0 ? UINT64_MAX : opt_.width;
        while (ready_head_ < ready_.size() && fired < budget && !completed_ &&
               stats_.error.empty()) {
          fire(pop_ready(), cycle);
          ++fired;
        }
      } else {
        fired = fire_multi_pe(cycle);
      }
      if (opt_.record_profile && profile_ok(cycle))
        stats_.profile[cycle] = fired;

      // 3. Advance time: next cycle if work remains ready, else jump to
      // the next scheduled delivery.
      if (completed_ || !stats_.error.empty()) {
        stats_.cycles = cycle + 1;
        break;
      }
      if (ready_head_ < ready_.size()) {
        ++cycle;
      } else if (!pending_.empty()) {
        cycle = pending_.next_due(cycle);
      } else {
        stats_.cycles = cycle + 1;
        stats_.error = deadlock_report();
        break;
      }
    }
    stats_.completed = completed_ && stats_.error.empty();
    if (stats_.completed) {
      // Tokens may legally still be draining when End fires (dead value
      // chains — e.g. a loop value overwritten before use — produce
      // tokens End does not transitively wait for). That is recorded.
      // A *store* still in flight, however, means memory is not final
      // and the translation failed to collect its acknowledgement.
      const auto is_write = [&](dfg::NodeId n) {
        return (ep_.op(n).flags & kExecWrite) != 0;
      };
      dfg::NodeId pending_write;
      for (std::size_t i = ready_head_; i < ready_.size(); ++i) {
        ++stats_.leftover_tokens;
        if (is_write(ready_[i].node)) pending_write = ready_[i].node;
      }
      pending_.for_each_pending(cycle, [&](const Token& t) {
        ++stats_.leftover_tokens;
        if (is_write(t.node)) pending_write = t.node;
      });
      frames_.for_each_live(
          [&](std::uint32_t, std::uint32_t op_idx, std::uint16_t) {
            if (ep_.op(op_idx).flags & kExecWrite)
              pending_write = dfg::NodeId{op_idx};
          });
      if (pending_write.valid()) {
        stats_.completed = false;
        stats_.error =
            "end fired while store '" + ep_.label(pending_write.index()) +
            "' was still in flight — its acknowledgement is not collected";
      }
    }
    return RunResult{std::move(stats_), std::move(mem_.store)};
  }

 private:
  bool profile_ok(std::uint64_t cycle) {
    if (cycle >= (1u << 22)) return false;
    if (stats_.profile.size() <= cycle) stats_.profile.resize(cycle + 1, 0);
    return true;
  }

  void boot() {
    const dfg::NodeId s = ep_.start();
    const ExecOp& start = ep_.op(s);
    ++stats_.ops_fired;
    ++stats_.fired_by_kind[static_cast<std::size_t>(start.kind)];
    for (std::uint16_t p = 0; p < start.num_outputs; ++p)
      emit(0, s, p, ep_.start_values()[p], /*cycle=*/0, /*latency=*/0);
  }

  void deliver(const Token& t, std::uint64_t cycle) {
    ++stats_.tokens_sent;
    const ExecOp& op = ep_.op(t.node);
    if (non_strict(op, opt_.loop_mode)) {
      ready_.push_back({t.ctx, t.node, true, t.requeued, t.port, t.value});
      return;
    }
    switch (frames_.deliver(t.ctx, op, t.port, t.value)) {
      case FrameStore::Deliver::kCollision:
        stats_.error = "token collision at node " +
                       std::to_string(t.node.value()) + " (" +
                       to_string(op.kind) + " '" + ep_.label(t.node.index()) +
                       "') port " + std::to_string(t.port) + " in context " +
                       std::to_string(t.ctx) + " at cycle " +
                       std::to_string(cycle);
        return;
      case FrameStore::Deliver::kCompleted:
        ++stats_.matches;
        ready_.push_back({t.ctx, t.node, false, false, 0, 0});
        break;
      case FrameStore::Deliver::kStored:
        ++stats_.matches;
        break;
    }
  }

  [[nodiscard]] unsigned pe_of(std::uint32_t ctx, dfg::NodeId node) const {
    if (opt_.processors == 0) return 0;
    const std::uint64_t key =
        opt_.placement == Placement::kByNode ? node.value() : ctx;
    return static_cast<unsigned>(
        ((key * 0x9e3779b97f4a7c15ULL) >> 33) % opt_.processors);
  }

  /// One cycle of multi-PE issue: each PE fires at most one ready
  /// operator (FIFO per PE); the rest wait.
  std::uint32_t fire_multi_pe(std::uint64_t cycle) {
    std::vector<std::uint8_t> busy(opt_.processors, 0);
    std::vector<ReadyEntry> kept;
    std::uint32_t fired = 0;
    std::size_t i = ready_head_;
    for (; i < ready_.size() && !completed_ && stats_.error.empty(); ++i) {
      const unsigned pe = pe_of(ready_[i].ctx, ready_[i].node);
      if (busy[pe]) {
        kept.push_back(ready_[i]);
        continue;
      }
      busy[pe] = 1;
      fire(ready_[i], cycle);
      ++fired;
    }
    for (; i < ready_.size(); ++i) kept.push_back(ready_[i]);
    ready_ = std::move(kept);
    ready_head_ = 0;
    return fired;
  }

  ReadyEntry pop_ready() {
    if (opt_.scheduler_seed != 0) {
      const std::size_t span = ready_.size() - ready_head_;
      const std::size_t pick = ready_head_ + rng_.next_below(span);
      std::swap(ready_[ready_head_], ready_[pick]);
    }
    ReadyEntry e = ready_[ready_head_++];
    if (ready_head_ > 4096 && ready_head_ * 2 > ready_.size()) {
      ready_.erase(ready_.begin(),
                   ready_.begin() + static_cast<std::ptrdiff_t>(ready_head_));
      ready_head_ = 0;
    }
    return e;
  }

  /// Schedules value onto every arc out of (node, port), counting each
  /// token as live in its context until a firing consumes it.
  void emit(std::uint32_t ctx, dfg::NodeId node, std::uint16_t port,
            std::int64_t value, std::uint64_t cycle, std::uint64_t latency) {
    const unsigned from_pe = pe_of(fire_ctx_, node);
    for (const ExecDest& d : ep_.dests(node, port)) {
      std::uint64_t hop = 0;
      if (opt_.processors > 0 && pe_of(ctx, d.node) != from_pe)
        hop = opt_.network_latency;
      pending_.push(cycle + latency + hop, Token{ctx, d.node, d.port, value});
      cs_.add_live(ctx);
    }
  }

  void consume(std::uint32_t ctx, std::uint64_t cycle, std::uint32_t n = 1) {
    const bool retired =
        cs_.consume(ctx, n, [&](std::vector<Token>&& stalled) {
          // Re-deliver the stalled forwardings to the loop entry; they
          // are still counted live in their source contexts, so push
          // them without re-counting.
          for (Token& t : stalled) pending_.push(cycle + 1, t);
        });
    if constexpr (PendingQueue::kRecycleFrames) {
      // The retiring context's last token just died, so its frame holds
      // no created slot — hand it back for the next iteration.
      if (retired) frames_.recycle(ctx);
    }
  }

  void fire(const ReadyEntry& e, std::uint64_t cycle) {
    const ExecOp& op = ep_.op(e.node);
    fire_ctx_ = e.ctx;
    ++stats_.ops_fired;
    ++stats_.fired_by_kind[static_cast<std::size_t>(op.kind)];
    if (stats_.first_fire_cycle[e.node.index()] == UINT64_MAX)
      stats_.first_fire_cycle[e.node.index()] = cycle;
    if (opt_.trace)
      std::fprintf(stderr, "[%8llu] fire %-10s '%s' ctx=%u\n",
                   static_cast<unsigned long long>(cycle), to_string(op.kind),
                   ep_.label(e.node.index()).c_str(), e.ctx);
    const std::uint64_t alu = opt_.alu_latency;
    const std::uint64_t mem = opt_.mem_latency;

    // Non-strict firings: one token in, forwarded.
    if (e.immediate) {
      switch (op.kind) {
        case dfg::OpKind::kMerge:
          emit(e.ctx, e.node, 0, e.value, cycle, alu);
          consume(e.ctx, cycle);
          return;
        case dfg::OpKind::kLoopExit: {
          const CtxInfo& cur = cs_.info(e.ctx);
          CTDF_ASSERT_MSG(cur.loop.valid(),
                          "loop exit fired outside an iteration context");
          emit(cur.invocation, e.node, e.port, e.value, cycle, alu);
          consume(e.ctx, cycle);
          return;
        }
        case dfg::OpKind::kLoopEntry: {
          // k-bounded loops: stall the forwarding (token stays live in
          // its source context) if starting the target iteration would
          // exceed the bound.
          if (auto* inst = cs_.bound_block(op.loop, e.ctx, opt_.loop_bound)) {
            // Buffer the forwarding in the loop entry: consumed from its
            // source context now (so that context can retire and release
            // a credit), re-fired on retirement.
            inst->stalled.push_back(
                Token{e.ctx, e.node, e.port, e.value, true});
            ++stats_.throttle_stalls;
            if (!e.requeued) consume(e.ctx, cycle);
            return;
          }
          const std::uint32_t next =
              cs_.context_for_iteration(op.loop, e.ctx, stats_);
          emit(next, e.node, e.port, e.value, cycle, alu);
          if (!e.requeued) consume(e.ctx, cycle);
          return;
        }
        default:
          CTDF_UNREACHABLE("bad non-strict op");
      }
    }

    // Strict firings: consume the frame-slot range — copy the matched
    // inputs out and release it before executing, so the op is
    // re-creatable even while its own emissions are being produced.
    CTDF_ASSERT(frames_.has(e.ctx, op) && frames_.remaining(e.ctx, op) == 0);
    const std::int64_t* slots = frames_.inputs(e.ctx, op);
    in_buf_.assign(slots, slots + op.num_inputs);
    frames_.release(e.ctx, op);
    const std::int64_t* in = in_buf_.data();
    // The consume() itself runs after the outputs are emitted so a
    // context never transiently retires while its own successor tokens
    // are being produced.

    if (op.flags & kExecMem) {
      if (op.flags & kExecWrite)
        ++stats_.mem_writes;
      else
        ++stats_.mem_reads;
      const MemAccess a = resolve_mem(op, in, mem_.store.cells.size());
      const bool ok = apply_mem(
          op, e.ctx, e.node, a, mem_, deferred_,
          [&](std::uint16_t port, std::int64_t value) {
            emit(e.ctx, e.node, port, value, cycle, mem);
          },
          [&](std::uint32_t dctx, dfg::NodeId dnode, std::int64_t value) {
            emit(dctx, dnode, 0, value, cycle, mem);
          },
          [&] { ++stats_.deferred_reads; });
      if (!ok) {
        stats_.error = "I-structure double write to cell " +
                       std::to_string(a.cell) + " by node '" +
                       ep_.label(e.node.index()) + "'";
        return;
      }
    } else {
      switch (op.kind) {
        case dfg::OpKind::kLoopEntry: {
          // Barrier mode: the full circulating set starts the next
          // iteration in a freshly allocated context.
          const std::uint32_t next =
              cs_.context_for_iteration(op.loop, e.ctx, stats_);
          for (std::uint16_t p = 0; p < op.num_inputs; ++p)
            emit(next, e.node, p, in[p], cycle, alu);
          break;
        }
        case dfg::OpKind::kEnd:
          completed_ = true;
          break;
        default:
          fire_pure(op, in, [&](std::uint16_t port, std::int64_t value) {
            emit(e.ctx, e.node, port, value, cycle, alu);
          });
      }
    }
    consume(e.ctx, cycle, op.consumed_inputs);
  }

  std::string deadlock_report() const {
    std::string msg = "deadlock: no events pending, end never fired; " +
                      std::to_string(frames_.live_slots()) +
                      " matching slot(s) still waiting";
    int listed = 0;
    frames_.for_each_live([&](std::uint32_t ctx, std::uint32_t op_idx,
                              std::uint16_t remaining) {
      if (listed++ >= 5) return;
      msg += "\n  waiting: node " + std::to_string(op_idx) + " (" +
             to_string(ep_.op(op_idx).kind) + " '" + ep_.label(op_idx) +
             "') ctx " + std::to_string(ctx) + " missing " +
             std::to_string(remaining) + " input(s)";
    });
    if (!deferred_.empty())
      msg += "\n  plus " + std::to_string(deferred_.size()) +
             " I-structure cell(s) with deferred readers";
    const std::size_t stalled = cs_.stalled_total();
    if (stalled > 0)
      msg += "\n  plus " + std::to_string(stalled) +
             " forwarding(s) stalled by the loop bound";
    return msg;
  }

  const ExecProgram& ep_;
  MachineOptions opt_;
  support::SplitMix64 rng_;

  MemoryState mem_;
  DeferredMap deferred_;

  ContextState<Token> cs_;
  FrameStore frames_;

  PendingQueue pending_;
  std::vector<ReadyEntry> ready_;
  std::size_t ready_head_ = 0;
  std::uint32_t fire_ctx_ = 0;  ///< context of the firing in progress
  std::vector<std::int64_t> in_buf_;  ///< matched inputs of the firing

  RunStats stats_;
  bool completed_ = false;
};

}  // namespace ctdf::machine::detail
