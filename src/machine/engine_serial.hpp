// The serial execution engine, parameterized over its pending-token
// queue. machine.cpp instantiates it with MapPending (the legacy
// "scan" engine: ordered map keyed by delivery cycle, frames never
// freed); engine_event.cpp instantiates it with a calendar-queue
// policy that also recycles retired contexts' frames. Every
// semantics-bearing line — delivery, matching, firing, token
// accounting, error reporting — is this one template, which is what
// makes the two engines byte-identical by construction; the
// differential suite in tests/machine_event_equiv_test.cpp guards the
// policies themselves against drift.
//
// A PendingQueue policy provides:
//   static constexpr bool kRecycleFrames;     // recycle frames on
//                                             // context retirement
//   explicit PendingQueue(const MachineOptions&);
//   void push(uint64_t due, const Token&);    // FIFO per due cycle
//   template <class F> void drain(uint64_t cycle, F&&);  // then clears
//   bool empty() const;
//   uint64_t next_due(uint64_t cycle) const;  // requires !empty()
//   template <class F> void for_each_pending(uint64_t cycle, F&&) const;
//                                             // ascending due order
#pragma once

#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "machine/budget.hpp"
#include "machine/exec.hpp"
#include "machine/faults.hpp"
#include "machine/fire.hpp"
#include "machine/integrity.hpp"
#include "machine/frames.hpp"
#include "machine/machine.hpp"
#include "machine/options.hpp"
#include "support/assert.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"

namespace ctdf::machine::detail {

struct ReadyEntry {
  std::uint32_t ctx = 0;
  dfg::NodeId node;
  /// Non-strict firings carry their single token inline.
  bool immediate = false;
  bool requeued = false;  ///< see Token::requeued
  std::uint16_t port = 0;
  std::int64_t value = 0;
  bool refire = false;  ///< see Token::refire
};

/// The scan engine's pending queue: an ordered map of delivery cycle →
/// token FIFO. The reference policy.
struct MapPending {
  static constexpr bool kRecycleFrames = false;

  explicit MapPending(const MachineOptions&) {}

  void push(std::uint64_t due, const Token& t) { m_[due].push_back(t); }

  template <class F>
  void drain(std::uint64_t cycle, F&& f) {
    const auto it = m_.find(cycle);
    if (it == m_.end()) return;
    for (const Token& t : it->second) f(t);
    m_.erase(it);
  }

  [[nodiscard]] bool empty() const { return m_.empty(); }

  [[nodiscard]] std::uint64_t next_due(std::uint64_t) const {
    return m_.begin()->first;
  }

  template <class F>
  void for_each_pending(std::uint64_t, F&& f) const {
    for (const auto& [due, v] : m_)
      for (const Token& t : v) f(t);
  }

  std::map<std::uint64_t, std::vector<Token>> m_;
};

template <class PendingQueue>
class SerialEngine {
 public:
  SerialEngine(const ExecProgram& ep, std::size_t memory_cells,
               const MachineOptions& opt,
               const std::vector<IStructureRegion>& istructures,
               const std::vector<SharedRegion>& shared = {})
      : ep_(ep),
        opt_(opt),
        rng_(opt.scheduler_seed),
        frames_(ep),
        pending_(opt) {
    CTDF_ASSERT_MSG(opt_.alu_latency >= 1 && opt_.mem_latency >= 1,
                    "latencies must be at least one cycle");
    // The fault machinery engages only when the plan can actually bite;
    // otherwise every fault branch below is one dead `if (fault_)` and
    // the engine is byte-identical to its fault-free self.
    if (fault_active(opt)) fault_.emplace(opt.faults);
    // And again for the run budget: a deadline or token ceiling engages
    // the per-firing poll; without one, firings pay one dead branch.
    if (opt.budget.armed()) budget_.emplace(opt.budget);
    mem_.init(memory_cells, istructures);
    // Same bargain for integrity checking: off means every checking
    // branch is one dead `if (check_)` / null `integ` and the hot path
    // is the legacy one.
    if (opt.check == CheckMode::kIntegrity) {
      check_ = true;
      frames_.enable_checking();
      integ_.emplace();
      integ_->init(mem_.store.cells.size(), opt.mem_latency,
                   opt.test_dup_response, shared);
    }
    stats_.fired_by_kind.assign(dfg::kNumOpKinds, 0);
    stats_.first_fire_cycle.assign(ep.num_ops(), UINT64_MAX);
  }

  RunResult run() {
    boot();
    std::uint64_t cycle = 0;
    while (!completed_ && stats_.error.empty()) {
      if (cycle >= opt_.budget.max_cycles) {
        stats_.cycles = cycle;
        stats_.fail(ErrorCode::kCycleCap,
                    "cycle cap exceeded (possible livelock or "
                    "non-terminating program)",
                    fault_ ? progress_diagnosis(cycle) : std::string{});
        break;
      }
      // 1. Deliver tokens due this cycle.
      pending_.drain(cycle, [&](const Token& t) { deliver(t, cycle); });
      stats_.peak_ready = std::max<std::uint64_t>(
          stats_.peak_ready, ready_.size() - ready_head_);

      // 2. Fire ready operators: either the abstract pool bounded by
      // `width`, or one operator per processing element per cycle.
      std::uint32_t fired = 0;
      if (opt_.processors == 0) {
        const std::uint64_t budget =
            opt_.width == 0 ? UINT64_MAX : opt_.width;
        while (ready_head_ < ready_.size() && fired < budget && !completed_ &&
               stats_.error.empty()) {
          fire(pop_ready(), cycle);
          ++fired;
        }
      } else {
        fired = fire_multi_pe(cycle);
      }
      if (opt_.record_profile && profile_ok(cycle))
        stats_.profile[cycle] = fired;

      // No-progress watchdog (faulted runs only): scheduler steps can
      // legally fire nothing while operands trickle in, but an unbroken
      // run of them means the recovery machinery is spinning.
      if (fault_ && completed_ == false && stats_.error.empty()) {
        if (fired == 0) {
          if (++no_fire_steps_ >= fault_->watchdog_limit()) {
            ++stats_.watchdog_triggers;
            stats_.fail(ErrorCode::kDeadlock,
                        "watchdog: no operator fired for " +
                            std::to_string(no_fire_steps_) +
                            " scheduler step(s) — livelock or stalled "
                            "recovery",
                        progress_diagnosis(cycle));
          }
        } else {
          no_fire_steps_ = 0;
        }
      }

      // 3. Advance time: next cycle if work remains ready, else jump to
      // the next scheduled delivery.
      if (completed_ || !stats_.error.empty()) {
        stats_.cycles = cycle + 1;
        break;
      }
      if (ready_head_ < ready_.size()) {
        ++cycle;
      } else if (!pending_.empty()) {
        cycle = pending_.next_due(cycle);
      } else {
        stats_.cycles = cycle + 1;
        stats_.fail(deadlock_error());
        break;
      }
    }
    stats_.completed = completed_ && stats_.error.empty();
    if (stats_.completed) {
      // Tokens may legally still be draining when End fires (dead value
      // chains — e.g. a loop value overwritten before use — produce
      // tokens End does not transitively wait for). That is recorded.
      // A *store* still in flight, however, means memory is not final
      // and the translation failed to collect its acknowledgement.
      const auto is_write = [&](dfg::NodeId n) {
        return (ep_.op(n).flags & kExecWrite) != 0;
      };
      dfg::NodeId pending_write;
      for (std::size_t i = ready_head_; i < ready_.size(); ++i) {
        ++stats_.leftover_tokens;
        if (is_write(ready_[i].node)) pending_write = ready_[i].node;
      }
      pending_.for_each_pending(cycle, [&](const Token& t) {
        ++stats_.leftover_tokens;
        if (is_write(t.node)) pending_write = t.node;
      });
      frames_.for_each_live(
          [&](std::uint32_t, std::uint32_t op_idx, std::uint16_t) {
            if (ep_.op(op_idx).flags & kExecWrite)
              pending_write = dfg::NodeId{op_idx};
          });
      if (pending_write.valid()) {
        stats_.completed = false;
        stats_.fail(
            ErrorCode::kStoreInFlight,
            "end fired while store '" + ep_.label(pending_write.index()) +
                "' was still in flight — its acknowledgement is not collected");
      }
    }
    return RunResult{std::move(stats_), std::move(mem_.store)};
  }

 private:
  bool profile_ok(std::uint64_t cycle) {
    if (cycle >= (1u << 22)) return false;
    if (stats_.profile.size() <= cycle) stats_.profile.resize(cycle + 1, 0);
    return true;
  }

  void boot() {
    const dfg::NodeId s = ep_.start();
    const ExecOp& start = ep_.op(s);
    ++stats_.ops_fired;
    ++stats_.fired_by_kind[static_cast<std::size_t>(start.kind)];
    // Boot emissions model program loading, not network traffic: they
    // are exempt from fault injection.
    booting_ = true;
    for (std::uint16_t p = 0; p < start.num_outputs; ++p)
      emit(0, s, p, ep_.start_values()[p], /*cycle=*/0, /*latency=*/0);
    booting_ = false;
  }

  void deliver(const Token& t, std::uint64_t cycle) {
    if (fault_) {
      if (t.refire) {
        // A NACKed memory firing (or a capacity-stalled barrier entry)
        // re-entering the ready queue: its operands are still matched
        // in the frame, so re-ready the op without filing a slot.
        ready_.push_back({t.ctx, t.node, false, false, 0, 0, true});
        return;
      }
      if (t.seq != 0 && !dedup_accept(t.seq)) {
        ++stats_.duplicates_dropped;
        return;
      }
    }
    ++stats_.tokens_sent;
    const ExecOp& op = ep_.op(t.node);
    if (non_strict(op, opt_.loop_mode)) {
      ready_.push_back({t.ctx, t.node, true, t.requeued, t.port, t.value});
      return;
    }
    if (check_) ++stats_.integrity_checks;
    switch (frames_.deliver(t.ctx, op, t.port, t.value)) {
      case FrameStore::Deliver::kTagOccupied:
        stats_.fail(
            integrity_double_write_error(ep_, t.node, t.port, t.ctx, cycle));
        return;
      case FrameStore::Deliver::kTagOverrun:
        // The activation completed without this token, so the pending
        // firing consumes this port's slot empty.
        stats_.fail(
            integrity_read_empty_error(ep_, t.node, t.port, t.ctx, cycle));
        return;
      case FrameStore::Deliver::kCollision:
        stats_.fail(ErrorCode::kSlotCollision,
                    "token collision at node " +
                        std::to_string(t.node.value()) + " (" +
                        to_string(op.kind) + " '" +
                        ep_.label(t.node.index()) + "') port " +
                        std::to_string(t.port) + " in context " +
                        std::to_string(t.ctx) + " at cycle " +
                        std::to_string(cycle));
        return;
      case FrameStore::Deliver::kCompleted:
        ++stats_.matches;
        ready_.push_back({t.ctx, t.node, false, false, 0, 0});
        break;
      case FrameStore::Deliver::kStored:
        ++stats_.matches;
        break;
    }
  }

  [[nodiscard]] unsigned pe_of(std::uint32_t ctx, dfg::NodeId node) const {
    if (opt_.processors == 0) return 0;
    const std::uint64_t key =
        opt_.placement == Placement::kByNode ? node.value() : ctx;
    return support::golden_bucket(key, opt_.processors);
  }

  /// One cycle of multi-PE issue: each PE fires at most one ready
  /// operator (FIFO per PE); the rest wait.
  std::uint32_t fire_multi_pe(std::uint64_t cycle) {
    std::vector<std::uint8_t> busy(opt_.processors, 0);
    std::vector<ReadyEntry> kept;
    std::uint32_t fired = 0;
    std::size_t i = ready_head_;
    for (; i < ready_.size() && !completed_ && stats_.error.empty(); ++i) {
      const unsigned pe = pe_of(ready_[i].ctx, ready_[i].node);
      if (busy[pe]) {
        kept.push_back(ready_[i]);
        continue;
      }
      busy[pe] = 1;
      fire(ready_[i], cycle);
      ++fired;
    }
    for (; i < ready_.size(); ++i) kept.push_back(ready_[i]);
    ready_ = std::move(kept);
    ready_head_ = 0;
    return fired;
  }

  ReadyEntry pop_ready() {
    if (opt_.scheduler_seed != 0) {
      const std::size_t span = ready_.size() - ready_head_;
      const std::size_t pick = ready_head_ + rng_.next_below(span);
      std::swap(ready_[ready_head_], ready_[pick]);
    }
    ReadyEntry e = ready_[ready_head_++];
    if (ready_head_ > 4096 && ready_head_ * 2 > ready_.size()) {
      ready_.erase(ready_.begin(),
                   ready_.begin() + static_cast<std::ptrdiff_t>(ready_head_));
      ready_head_ = 0;
    }
    return e;
  }

  /// Schedules value onto every arc out of (node, port), counting each
  /// token as live in its context until a firing consumes it.
  void emit(std::uint32_t ctx, dfg::NodeId node, std::uint16_t port,
            std::int64_t value, std::uint64_t cycle, std::uint64_t latency) {
    const unsigned from_pe = pe_of(fire_ctx_, node);
    for (const ExecDest& d : ep_.dests(node, port)) {
      std::uint64_t hop = 0;
      if (opt_.processors > 0 && pe_of(ctx, d.node) != from_pe)
        hop = opt_.network_latency;
      Token t{ctx, d.node, d.port, value};
      std::uint64_t due = cycle + latency + hop;
      if (fault_ && hop > 0 && !booting_) {
        // Network fault injection (cross-PE transmissions only). A drop
        // is modeled as its own recovery: the retransmission ladder is
        // rolled up front and the token is scheduled once with the total
        // backoff delay — same arrival cycle, no token ever in limbo.
        const FaultState::Transit f = fault_->transit(fault_->next_id());
        if (f.exhausted) {
          ++stats_.watchdog_triggers;
          if (stats_.error.empty())
            stats_.fail(ErrorCode::kRetryExhausted,
                        "retry budget exhausted: token for node '" +
                            ep_.label(d.node.index()) + "' dropped " +
                            std::to_string(opt_.faults.max_attempts) +
                            " time(s) in the network",
                        progress_diagnosis(cycle));
        }
        stats_.faults_injected += f.drops + f.jitters + (f.duplicated ? 1 : 0);
        stats_.retries += f.drops;
        due += f.delay;
        if (f.duplicated) {
          // Both copies share one sequence number; the receiver delivers
          // whichever lands first and drops the other, so the logical
          // token is counted live exactly once.
          t.seq = fault_->next_seq();
          pending_.push(cycle + latency + hop + f.dup_delay, t);
        }
      }
      pending_.push(due, t);
      cs_.add_live(ctx);
    }
  }

  void consume(std::uint32_t ctx, std::uint64_t cycle, std::uint32_t n = 1) {
    const bool retired =
        cs_.consume(ctx, n, [&](std::vector<Token>&& stalled) {
          // Re-deliver the stalled forwardings to the loop entry; they
          // are still counted live in their source contexts, so push
          // them without re-counting.
          for (Token& t : stalled) pending_.push(cycle + 1, t);
        });
    if constexpr (PendingQueue::kRecycleFrames) {
      // The retiring context's last token just died, so its frame holds
      // no created slot — hand it back for the next iteration.
      if (retired) frames_.recycle(ctx);
    }
    if (retired && !cap_stalled_.empty()) {
      // A frame was freed: wake everything blocked on capacity. The
      // first to re-fire claims it; the rest re-stall.
      for (Token& t : cap_stalled_) pending_.push(cycle + 1, t);
      cap_stalled_.clear();
    }
  }

  /// Finite frame store: true (and buffers the work) when firing this
  /// loop entry would allocate an iteration context beyond
  /// frame_capacity. Back-pressure, not a firing — no counters advance
  /// beyond the stall count, so the semantic counters of a degraded run
  /// match the unconstrained one.
  bool capacity_stall(const ReadyEntry& e, const ExecOp& op,
                      std::uint64_t cycle) {
    if (!cs_.would_allocate(op.loop, e.ctx) ||
        cs_.live_contexts() < opt_.frame_capacity)
      return false;
    ++stats_.backpressure_stalls;
    if (e.immediate) {
      // Pipelined forwarding: buffer it, consumed from its source
      // context now so that context can retire and free its own frame.
      cap_stalled_.push_back(Token{e.ctx, e.node, e.port, e.value, true});
      if (!e.requeued) consume(e.ctx, cycle);
    } else {
      // Barrier entry: the circulating set stays matched in the frame;
      // re-ready the whole firing once a retirement frees capacity.
      Token t{e.ctx, e.node, 0, 0};
      t.refire = true;
      cap_stalled_.push_back(t);
    }
    return true;
  }

  void fire(const ReadyEntry& e, std::uint64_t cycle) {
    // The budget poll lives on the shared firing path — the one line
    // every engine variant executes — so scan and event honor the
    // ceilings at identical points. Both firing loops (abstract pool
    // and multi-PE) already stop on stats_.error.
    if (budget_) {
      if (budget_->tokens_exceeded(stats_.tokens_sent)) {
        stats_.fail(budget_->token_error());
        return;
      }
      if (budget_->deadline_exceeded_strided()) {
        stats_.fail(budget_->deadline_error());
        return;
      }
    }
    const ExecOp& op = ep_.op(e.node);
    if (fault_) {
      if ((op.flags & kExecMem) && !e.refire) {
        // Split-phase memory NACK: the memory rejects the request and
        // the firing retries after capped exponential backoff, operands
        // still matched in the frame. A rejected attempt is not a
        // firing — no counters advance.
        const FaultState::Nack n = fault_->nack(fault_->next_id());
        if (n.exhausted) {
          ++stats_.watchdog_triggers;
          stats_.fail(ErrorCode::kRetryExhausted,
                      "retry budget exhausted: memory NACKed node '" +
                          ep_.label(e.node.index()) + "' " +
                          std::to_string(opt_.faults.max_attempts) +
                          " time(s)",
                      progress_diagnosis(cycle));
          return;
        }
        if (n.nacks > 0) {
          stats_.nacks_seen += n.nacks;
          stats_.retries += n.nacks;
          stats_.faults_injected += n.nacks;
          Token retry{e.ctx, e.node, 0, 0};
          retry.refire = true;
          pending_.push(cycle + n.delay, retry);
          return;
        }
      }
      if (opt_.frame_capacity > 0 && op.kind == dfg::OpKind::kLoopEntry &&
          capacity_stall(e, op, cycle))
        return;
    }
    fire_ctx_ = e.ctx;
    ++stats_.ops_fired;
    ++stats_.fired_by_kind[static_cast<std::size_t>(op.kind)];
    if (stats_.first_fire_cycle[e.node.index()] == UINT64_MAX)
      stats_.first_fire_cycle[e.node.index()] = cycle;
    if (opt_.trace)
      std::fprintf(stderr, "[%8llu] fire %-10s '%s' ctx=%u\n",
                   static_cast<unsigned long long>(cycle), to_string(op.kind),
                   ep_.label(e.node.index()).c_str(), e.ctx);
    const std::uint64_t alu = opt_.alu_latency;
    const std::uint64_t mem = opt_.mem_latency;

    // Non-strict firings: one token in, forwarded.
    if (e.immediate) {
      switch (op.kind) {
        case dfg::OpKind::kMerge:
          emit(e.ctx, e.node, 0, e.value, cycle, alu);
          consume(e.ctx, cycle);
          return;
        case dfg::OpKind::kLoopExit: {
          const CtxInfo& cur = cs_.info(e.ctx);
          CTDF_ASSERT_MSG(cur.loop.valid(),
                          "loop exit fired outside an iteration context");
          emit(cur.invocation, e.node, e.port, e.value, cycle, alu);
          consume(e.ctx, cycle);
          return;
        }
        case dfg::OpKind::kLoopEntry: {
          // k-bounded loops: stall the forwarding (token stays live in
          // its source context) if starting the target iteration would
          // exceed the bound.
          if (auto* inst = cs_.bound_block(op.loop, e.ctx, opt_.loop_bound)) {
            // Buffer the forwarding in the loop entry: consumed from its
            // source context now (so that context can retire and release
            // a credit), re-fired on retirement.
            inst->stalled.push_back(
                Token{e.ctx, e.node, e.port, e.value, true});
            ++stats_.throttle_stalls;
            if (!e.requeued) consume(e.ctx, cycle);
            return;
          }
          const std::uint32_t next =
              cs_.context_for_iteration(op.loop, e.ctx, stats_);
          emit(next, e.node, e.port, e.value, cycle, alu);
          if (!e.requeued) consume(e.ctx, cycle);
          return;
        }
        default:
          CTDF_UNREACHABLE("bad non-strict op");
      }
    }

    // Strict firings: consume the frame-slot range — copy the matched
    // inputs out and release it before executing, so the op is
    // re-creatable even while its own emissions are being produced.
    CTDF_ASSERT(frames_.has(e.ctx, op) && frames_.remaining(e.ctx, op) == 0);
    const std::int64_t* slots = frames_.inputs(e.ctx, op);
    in_buf_.assign(slots, slots + op.num_inputs);
    const int missing = frames_.release(e.ctx, op);
    if (check_) {
      ++stats_.integrity_checks;
      if (missing >= 0) {
        stats_.fail(
            integrity_read_empty_error(ep_, e.node, missing, e.ctx, cycle));
        return;
      }
    }
    const std::int64_t* in = in_buf_.data();
    // The consume() itself runs after the outputs are emitted so a
    // context never transiently retires while its own successor tokens
    // are being produced.

    if (op.flags & kExecMem) {
      if (op.flags & kExecWrite)
        ++stats_.mem_writes;
      else
        ++stats_.mem_reads;
      const MemAccess a = resolve_mem(op, in, mem_.store.cells.size());
      if (check_) ++stats_.integrity_checks;
      const MemCheck mc = apply_mem(
          op, e.ctx, e.node, a, mem_, deferred_,
          integ_ ? &*integ_ : nullptr, cycle,
          [&](std::uint16_t port, std::int64_t value) {
            emit(e.ctx, e.node, port, value, cycle, mem);
          },
          [&](std::uint32_t dctx, dfg::NodeId dnode, std::int64_t value) {
            emit(dctx, dnode, 0, value, cycle, mem);
          },
          [&] { ++stats_.deferred_reads; });
      switch (mc.kind) {
        case MemCheck::Kind::kOk:
          break;
        case MemCheck::Kind::kIStoreDoubleWrite:
          stats_.fail(ErrorCode::kIStoreDoubleWrite,
                      "I-structure double write to cell " +
                          std::to_string(a.cell) + " by node '" +
                          ep_.label(e.node.index()) + "'");
          return;
        case MemCheck::Kind::kMemRace:
          stats_.fail(integrity_mem_race_error(ep_, e.node, mc, cycle,
                                               opt_.mem_latency));
          return;
        case MemCheck::Kind::kOrphanResponse:
          stats_.fail(integrity_orphan_error(ep_, mc));
          return;
      }
    } else {
      switch (op.kind) {
        case dfg::OpKind::kLoopEntry: {
          // Barrier mode: the full circulating set starts the next
          // iteration in a freshly allocated context.
          const std::uint32_t next =
              cs_.context_for_iteration(op.loop, e.ctx, stats_);
          for (std::uint16_t p = 0; p < op.num_inputs; ++p)
            emit(next, e.node, p, in[p], cycle, alu);
          break;
        }
        case dfg::OpKind::kEnd:
          completed_ = true;
          break;
        default:
          fire_pure(ep_, op, in, [&](std::uint16_t port, std::int64_t value) {
            emit(e.ctx, e.node, port, value, cycle, alu);
          });
      }
    }
    consume(e.ctx, cycle, op.consumed_inputs);
  }

  /// The per-loop live/throttled breakdown shared by the deadlock
  /// report and the watchdog diagnosis: distinguishes k-bound- or
  /// capacity-induced stalls from translation bugs.
  std::string loop_breakdown() const {
    std::string msg =
        "  loop state: " + std::to_string(cs_.live_contexts()) +
        " live iteration context(s), " +
        std::to_string(stats_.throttle_stalls) +
        " k-bound throttle stall(s), " +
        std::to_string(cap_stalled_.size()) +
        " forwarding(s) blocked on frame capacity";
    cs_.for_each_instance([&](std::uint32_t loop, std::uint32_t invocation,
                              unsigned in_flight, std::size_t stalled) {
      msg += "\n  loop " + std::to_string(loop) + " invocation ctx " +
             std::to_string(invocation) + ": " + std::to_string(in_flight) +
             " iteration(s) in flight, " + std::to_string(stalled) +
             " stalled forwarding(s)";
    });
    return msg;
  }

  /// Structured no-progress diagnosis (watchdog, retry exhaustion,
  /// fault-mode cycle cap): what is blocked and what is oldest in
  /// flight.
  std::string progress_diagnosis(std::uint64_t cycle) const {
    std::string msg = "  blocked: " + std::to_string(frames_.live_slots()) +
                      " matching slot(s) still waiting";
    bool first = true;
    pending_.for_each_pending(cycle, [&](const Token& t) {
      if (!first) return;
      first = false;
      msg += "\n  oldest pending token: node " +
             std::to_string(t.node.value()) + " ('" +
             ep_.label(t.node.index()) + "') port " + std::to_string(t.port) +
             " ctx " + std::to_string(t.ctx);
    });
    return msg + "\n" + loop_breakdown();
  }

  RunError deadlock_error() const {
    RunError err;
    std::string detail;
    int listed = 0;
    frames_.for_each_live([&](std::uint32_t ctx, std::uint32_t op_idx,
                              std::uint16_t remaining) {
      if (listed++ >= 5) return;
      detail += "  waiting: node " + std::to_string(op_idx) + " (" +
                to_string(ep_.op(op_idx).kind) + " '" + ep_.label(op_idx) +
                "') ctx " + std::to_string(ctx) + " missing " +
                std::to_string(remaining) + " input(s)\n";
    });
    if (!deferred_.empty())
      detail += "  plus " + std::to_string(deferred_.size()) +
                " I-structure cell(s) with deferred readers\n";
    const std::size_t stalled = cs_.stalled_total();
    if (stalled > 0)
      detail += "  plus " + std::to_string(stalled) +
                " forwarding(s) stalled by the loop bound\n";
    detail += loop_breakdown();
    if (!cap_stalled_.empty()) {
      // Every queue is empty yet forwardings are still blocked on frame
      // capacity: the finite frame store can never free a frame — that
      // is resource exhaustion, not a translation bug.
      err.code = ErrorCode::kFrameExhausted;
      err.message = "frame store exhausted: " +
                    std::to_string(cap_stalled_.size()) +
                    " loop forwarding(s) blocked on frame capacity " +
                    std::to_string(opt_.frame_capacity) +
                    " with no context able to retire";
    } else {
      err.code = ErrorCode::kDeadlock;
      err.message = "deadlock: no events pending, end never fired; " +
                    std::to_string(frames_.live_slots()) +
                    " matching slot(s) still waiting";
    }
    err.diagnosis = std::move(detail);
    return err;
  }

  const ExecProgram& ep_;
  MachineOptions opt_;
  support::SplitMix64 rng_;

  MemoryState mem_;
  DeferredMap deferred_;

  ContextState<Token> cs_;
  FrameStore frames_;

  PendingQueue pending_;
  std::vector<ReadyEntry> ready_;
  std::size_t ready_head_ = 0;
  std::uint32_t fire_ctx_ = 0;  ///< context of the firing in progress
  std::vector<std::int64_t> in_buf_;  ///< matched inputs of the firing

  /// First arrival of a seq wins; the second is dropped and the entry
  /// forgotten (a seq is used by exactly two copies, so the set stays
  /// bounded by the duplicates currently in flight).
  bool dedup_accept(std::uint64_t seq) {
    const auto [it, inserted] = dedup_seen_.insert(seq);
    if (!inserted) dedup_seen_.erase(it);
    return inserted;
  }

  std::optional<FaultState> fault_;  ///< engaged iff fault_active(opt_)
  std::optional<BudgetState> budget_;  ///< engaged iff opt_.budget.armed()
  bool check_ = false;  ///< opt_.check == CheckMode::kIntegrity
  std::optional<IntegrityState> integ_;  ///< engaged iff check_
  bool booting_ = false;
  /// Loop-entry work blocked by frame_capacity, engine-global: any
  /// retirement may free the frame a blocked forwarding needs, whatever
  /// loop it belongs to.
  std::vector<Token> cap_stalled_;
  std::unordered_set<std::uint64_t> dedup_seen_;
  std::uint64_t no_fire_steps_ = 0;

  RunStats stats_;
  bool completed_ = false;
};

}  // namespace ctdf::machine::detail
