// Internal interface of the parallel cycle-synchronous engine (see
// engine_parallel.cpp). Not part of the public machine API: callers go
// through machine::run(), which dispatches on
// MachineOptions::host_threads.
#pragma once

#include <optional>

#include "machine/exec.hpp"
#include "machine/machine.hpp"

namespace ctdf::machine::detail {

/// Runs a lowered program on the sharded host-parallel engine. Returns
/// the result for error-free executions — bit-identical to the serial
/// engine's, by construction (plus the cycle-cap error, whose report is
/// deterministic). Returns nullopt when the run hits any other error
/// path (deadlock, token collision, I-structure double write, store in
/// flight at End): the caller must re-run on the serial engine, whose
/// diagnostics (which include the frame-scan order) are the reference.
[[nodiscard]] std::optional<RunResult> run_parallel(
    const ExecProgram& program, std::size_t memory_cells,
    const MachineOptions& options,
    const std::vector<IStructureRegion>& istructures,
    const std::vector<SharedRegion>& shared);

}  // namespace ctdf::machine::detail
