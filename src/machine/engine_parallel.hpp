// Internal interface of the parallel cycle-synchronous engine (see
// engine_parallel.cpp). Not part of the public machine API: callers go
// through machine::run(), which dispatches on
// MachineOptions::host_threads.
#pragma once

#include <optional>

#include "machine/exec.hpp"
#include "machine/machine.hpp"

namespace ctdf::machine::detail {

/// Runs a lowered program on the sharded host-parallel engine. Returns
/// the result for error-free executions — bit-identical to the serial
/// engine's, by construction (plus the cycle-cap error, whose report is
/// deterministic). Returns nullopt when the run hits any other error
/// path (deadlock, token collision, I-structure double write, store in
/// flight at End): the caller must re-run on the serial engine, whose
/// diagnostics (which include the frame-scan order) are the reference.
[[nodiscard]] std::optional<RunResult> run_parallel(
    const ExecProgram& program, std::size_t memory_cells,
    const MachineOptions& options,
    const std::vector<IStructureRegion>& istructures,
    const std::vector<SharedRegion>& shared);

/// Runs a lowered program on the asynchronous work-stealing engine
/// (parallel/engine_async.cpp): per-PE local clocks with epoch-fenced
/// token exchange under --deterministic, free-running work stealing
/// otherwise. Stores and semantic counters match the serial engine;
/// schedule-derived metrics (cycles, peak_ready, first_fire_cycle,
/// avg_parallelism) do not. Without fault injection every error path —
/// including the cycle cap, since async epochs are not serial cycles —
/// returns nullopt and the caller re-runs serially for the reference
/// diagnostics; with faults enabled the engine reports directly.
[[nodiscard]] std::optional<RunResult> run_parallel_async(
    const ExecProgram& program, std::size_t memory_cells,
    const MachineOptions& options,
    const std::vector<IStructureRegion>& istructures,
    const std::vector<SharedRegion>& shared);

}  // namespace ctdf::machine::detail
