// Human-readable execution reports: operator mix, parallelism profile,
// memory behavior. Used by the `ctdf run --report` CLI and available
// as a library utility.
#pragma once

#include <string>

#include "machine/machine.hpp"

namespace ctdf::machine {

/// Multi-line summary of a run: headline numbers, firings by operator
/// kind, memory traffic, and (when the profile was recorded) a coarse
/// ops-per-cycle timeline rendered as a text sparkline.
[[nodiscard]] std::string render_report(const RunStats& stats);

}  // namespace ctdf::machine
