// Human-readable execution reports: operator mix, parallelism profile,
// memory behavior. Used by the `ctdf run --report` CLI and available
// as a library utility.
#pragma once

#include <string>

#include "machine/machine.hpp"

namespace ctdf::machine {

/// Multi-line summary of a run: headline numbers, firings by operator
/// kind, memory traffic, and (when the profile was recorded) a coarse
/// ops-per-cycle timeline rendered as a text sparkline.
[[nodiscard]] std::string render_report(const RunStats& stats);

/// Escapes a string for embedding in a JSON string literal.
[[nodiscard]] std::string json_escape(const std::string& s);

/// One JSON object covering the machine configuration and every
/// RunStats counter (fired_by_kind keyed by op-kind name; the per-node
/// and per-cycle vectors are summarized, not dumped). Keys are emitted
/// in a fixed order so the output is deterministic for a given run.
/// `ctdf run --stats-json` wraps this together with the pipeline-stage
/// counters.
[[nodiscard]] std::string render_stats_json(const RunStats& stats,
                                            const MachineOptions& opt);

}  // namespace ctdf::machine
