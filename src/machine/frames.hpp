// Shared machine-state types of the two simulation engines: the token,
// the dense explicit-token-store frames that replace hash-map matching
// slots, and the context / loop-instance bookkeeping (iteration
// contexts, k-bound credits, retirement). machine.cpp and
// engine_parallel.cpp both build on these — each type is defined here
// and nowhere else, so the differential suite compares two engines that
// share one set of semantics-bearing definitions.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "machine/exec.hpp"
#include "machine/machine.hpp"
#include "support/assert.hpp"
#include "support/bitset.hpp"

namespace ctdf::machine {

/// A token: (context, instruction, port, value).
struct Token {
  std::uint32_t ctx = 0;
  dfg::NodeId node;
  std::uint16_t port = 0;
  std::int64_t value = 0;
  /// True for a loop-entry forwarding re-delivered after a k-bound
  /// stall: it was already consumed from its source context when it
  /// was buffered, so a successful re-fire must not consume it again.
  bool requeued = false;
};

/// An iteration context — the role Monsoon frames play.
struct CtxInfo {
  cfg::LoopId loop;              ///< invalid for the root context
  std::uint32_t invocation = 0;  ///< context the loop was entered from
  std::uint32_t iter = 0;
};

struct CtxKey {
  std::uint32_t loop;
  std::uint32_t invocation;
  std::uint32_t iter;
  bool operator==(const CtxKey&) const = default;
};

struct CtxKeyHash {
  std::size_t operator()(const CtxKey& k) const {
    std::uint64_t h = k.loop;
    h = h * 0x9e3779b97f4a7c15ULL + k.invocation;
    h = h * 0x9e3779b97f4a7c15ULL + k.iter;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

/// One loop invocation's k-bound state. TokenT is the engine's in-
/// flight token type (the parallel engine's carries a delivery rank).
template <class TokenT>
struct LoopInstance {
  unsigned in_flight = 0;      ///< allocated, not yet retired iterations
  std::vector<TokenT> stalled;  ///< forwardings blocked by the k-bound
};

/// Deferred I-structure readers per cell: (context, fetch node).
using DeferredMap =
    std::unordered_map<std::uint64_t,
                       std::vector<std::pair<std::uint32_t, dfg::NodeId>>>;

/// Dense per-context matching frames (the explicit token store). Each
/// context owns one frame: a value slot plus presence bit per strict
/// input port (laid out by ExecProgram), and a per-framed-op state word
/// that is kNotCreated until the first token arrives and counts the
/// missing inputs afterwards. A slot range is (re-)initialized on
/// creation — literal ports pre-filled — and released when the op
/// fires, mirroring the try_emplace/erase lifecycle the hash-map store
/// had.
///
/// Frames are allocated lazily and never freed: retired contexts can
/// transiently revive (an inner loop exiting later re-injects tokens),
/// and the parallel engine shards frame ownership by context, so the
/// pointer table may only grow between parallel phases
/// (ensure_contexts, coordinator-only).
class FrameStore {
 public:
  explicit FrameStore(const ExecProgram& ep) : ep_(&ep) {}

  enum class Deliver : std::uint8_t { kStored, kCompleted, kCollision };

  /// Grows the frame pointer table; call before any phase that may
  /// deliver to a context (the parallel engine's workers must never
  /// resize it concurrently).
  void ensure_contexts(std::size_t n) {
    if (frames_.size() < n) frames_.resize(n);
  }

  /// Files one token into (ctx, op)'s slot range.
  Deliver deliver(std::uint32_t ctx, const ExecOp& op, std::uint16_t port,
                  std::int64_t value) {
    Frame& f = frame(ctx);
    std::uint16_t& state = f.state[op.strict_index];
    if (state == kNotCreated) {
      for (std::uint16_t p = 0; p < op.num_inputs; ++p) {
        const std::uint32_t slot = op.frame_base + p;
        if (ep_->literal_at(op, p)) {
          f.values[slot] = ep_->literal_value(op, p);
          f.filled.set(slot);
        } else {
          f.filled.reset(slot);
        }
      }
      state = op.consumed_inputs;
    }
    const std::uint32_t slot = op.frame_base + port;
    if (f.filled.test(slot)) return Deliver::kCollision;
    f.values[slot] = value;
    f.filled.set(slot);
    return --state == 0 ? Deliver::kCompleted : Deliver::kStored;
  }

  [[nodiscard]] bool has(std::uint32_t ctx, const ExecOp& op) const {
    return ctx < frames_.size() && frames_[ctx] &&
           frames_[ctx]->state[op.strict_index] != kNotCreated;
  }

  [[nodiscard]] std::uint16_t remaining(std::uint32_t ctx,
                                        const ExecOp& op) const {
    return frames_[ctx]->state[op.strict_index];
  }

  /// The matched input values; valid until release().
  [[nodiscard]] const std::int64_t* inputs(std::uint32_t ctx,
                                           const ExecOp& op) const {
    return frames_[ctx]->values.data() + op.frame_base;
  }

  /// The op fired: its slot range becomes re-creatable.
  void release(std::uint32_t ctx, const ExecOp& op) {
    frames_[ctx]->state[op.strict_index] = kNotCreated;
  }

  /// Live (created, not yet fired) slots, for diagnostics.
  [[nodiscard]] std::size_t live_slots() const {
    std::size_t n = 0;
    for_each_live([&](std::uint32_t, std::uint32_t, std::uint16_t) { ++n; });
    return n;
  }

  /// f(ctx, op index, missing inputs) per live slot, context-major
  /// ascending — the deterministic scan order of the deadlock report
  /// and the end-of-run pending-store check.
  template <class F>
  void for_each_live(F&& f) const {
    for (std::uint32_t ctx = 0; ctx < frames_.size(); ++ctx) {
      if (!frames_[ctx]) continue;
      const Frame& fr = *frames_[ctx];
      for (std::uint32_t i = 0; i < ep_->num_ops(); ++i) {
        const ExecOp& op = ep_->op(i);
        if (!op.framed()) continue;
        if (fr.state[op.strict_index] != kNotCreated)
          f(ctx, i, fr.state[op.strict_index]);
      }
    }
  }

 private:
  static constexpr std::uint16_t kNotCreated = 0xFFFF;

  struct Frame {
    explicit Frame(const ExecProgram& ep)
        : values(ep.frame_slots(), 0),
          filled(ep.frame_slots()),
          state(ep.num_framed_ops(), kNotCreated) {}
    std::vector<std::int64_t> values;
    support::Bitset filled;
    std::vector<std::uint16_t> state;
  };

  Frame& frame(std::uint32_t ctx) {
    if (ctx >= frames_.size()) frames_.resize(ctx + 1);
    if (!frames_[ctx]) frames_[ctx] = std::make_unique<Frame>(*ep_);
    return *frames_[ctx];
  }

  const ExecProgram* ep_;
  std::vector<std::unique_ptr<Frame>> frames_;
};

/// Context allocation, token-liveness accounting, and k-bound credits —
/// identical in both engines; the engine supplies only what happens to
/// forwardings released from a stall (serial: next-cycle pending push;
/// parallel: re-rank into the coordinator outbox).
template <class TokenT>
class ContextState {
 public:
  ContextState() {
    contexts_.push_back(CtxInfo{});  // root context 0
    live_tokens_.push_back(0);
    retired_.push_back(false);
  }

  [[nodiscard]] std::size_t size() const { return contexts_.size(); }
  [[nodiscard]] const CtxInfo& info(std::uint32_t ctx) const {
    return contexts_[ctx];
  }

  void add_live(std::uint32_t ctx, std::uint32_t n = 1) {
    live_tokens_[ctx] += n;
  }

  [[nodiscard]] static std::uint64_t instance_key(cfg::LoopId loop,
                                                  std::uint32_t invocation) {
    return (static_cast<std::uint64_t>(loop.value()) << 32) | invocation;
  }

  [[nodiscard]] CtxKey iteration_key(cfg::LoopId loop,
                                     std::uint32_t from) const {
    const CtxInfo& cur = contexts_[from];
    CtxKey key{};
    key.loop = loop.value();
    if (cur.loop == loop) {
      key.invocation = cur.invocation;
      key.iter = cur.iter + 1;
    } else {
      key.invocation = from;
      key.iter = 0;
    }
    return key;
  }

  /// k-bounded loops: if starting the iteration (loop ← from) would
  /// exceed `bound`, returns the instance the forwarding must stall in;
  /// nullptr when it may proceed. bound 0 = unbounded.
  [[nodiscard]] LoopInstance<TokenT>* bound_block(cfg::LoopId loop,
                                                  std::uint32_t from,
                                                  unsigned bound) {
    if (bound == 0) return nullptr;
    const CtxKey key = iteration_key(loop, from);
    if (ctx_table_.contains(key)) return nullptr;
    LoopInstance<TokenT>& inst =
        instances_[instance_key(loop, key.invocation)];
    return inst.in_flight >= bound ? &inst : nullptr;
  }

  /// The context of iteration (loop ← from), allocating it (and a
  /// k-bound credit) on first use.
  std::uint32_t context_for_iteration(cfg::LoopId loop, std::uint32_t from,
                                      RunStats& stats) {
    const CtxKey key = iteration_key(loop, from);
    const auto [it, inserted] = ctx_table_.try_emplace(
        key, static_cast<std::uint32_t>(contexts_.size()));
    if (inserted) {
      contexts_.push_back(CtxInfo{loop, key.invocation, key.iter});
      live_tokens_.push_back(0);
      retired_.push_back(false);
      ++stats.contexts_allocated;
      ++instances_[instance_key(loop, key.invocation)].in_flight;
      ++live_contexts_;
      stats.peak_live_contexts =
          std::max<std::uint64_t>(stats.peak_live_contexts, live_contexts_);
    }
    return it->second;
  }

  /// n tokens of `ctx` were consumed; retire the context when its last
  /// token dies, releasing a k-bound credit and handing any stalled
  /// forwardings to on_stalled(std::vector<TokenT>&&). Contexts can
  /// transiently hit zero and come back (an inner loop exiting later
  /// re-injects tokens), so retirement is once-only and the bound is
  /// approximate across nested-loop boundaries.
  template <class OnStalled>
  void consume(std::uint32_t ctx, std::uint32_t n, OnStalled&& on_stalled) {
    CTDF_ASSERT(live_tokens_[ctx] >= n);
    live_tokens_[ctx] -= n;
    if (live_tokens_[ctx] != 0 || ctx == 0 || retired_[ctx]) return;
    retired_[ctx] = true;
    --live_contexts_;
    const CtxInfo& info = contexts_[ctx];
    const auto it = instances_.find(instance_key(info.loop, info.invocation));
    if (it == instances_.end()) return;
    LoopInstance<TokenT>& instance = it->second;
    if (instance.in_flight > 0) --instance.in_flight;
    if (!instance.stalled.empty()) {
      auto stalled = std::move(instance.stalled);
      instance.stalled.clear();
      on_stalled(std::move(stalled));
    }
  }

  /// Forwardings currently buffered by the k-bound (deadlock report).
  [[nodiscard]] std::size_t stalled_total() const {
    std::size_t n = 0;
    for (const auto& [k, inst] : instances_) n += inst.stalled.size();
    return n;
  }

 private:
  std::vector<CtxInfo> contexts_;
  std::vector<std::uint32_t> live_tokens_;
  std::vector<bool> retired_;
  std::uint64_t live_contexts_ = 0;
  std::unordered_map<std::uint64_t, LoopInstance<TokenT>> instances_;
  std::unordered_map<CtxKey, std::uint32_t, CtxKeyHash> ctx_table_;
};

}  // namespace ctdf::machine
