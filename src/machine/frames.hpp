// Shared machine-state types of the two simulation engines: the token,
// the dense explicit-token-store frames that replace hash-map matching
// slots, and the context / loop-instance bookkeeping (iteration
// contexts, k-bound credits, retirement). machine.cpp and
// engine_parallel.cpp both build on these — each type is defined here
// and nowhere else, so the differential suite compares two engines that
// share one set of semantics-bearing definitions.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "machine/exec.hpp"
#include "machine/machine.hpp"
#include "support/assert.hpp"
#include "support/hash.hpp"

namespace ctdf::machine {

/// A token: (context, instruction, port, value).
struct Token {
  std::uint32_t ctx = 0;
  dfg::NodeId node;
  std::uint16_t port = 0;
  std::int64_t value = 0;
  /// True for a loop-entry forwarding re-delivered after a k-bound
  /// stall: it was already consumed from its source context when it
  /// was buffered, so a successful re-fire must not consume it again.
  bool requeued = false;
  /// Fault recovery (machine/faults.hpp): a NACKed memory firing
  /// re-entering the ready queue — its operands are still matched in
  /// the frame, so delivery must re-ready the op without filing a slot.
  bool refire = false;
  /// Nonzero for a token the network duplicated: both copies carry the
  /// same sequence number and the receiver delivers exactly one.
  std::uint64_t seq = 0;
};

/// An iteration context — the role Monsoon frames play.
struct CtxInfo {
  cfg::LoopId loop;              ///< invalid for the root context
  std::uint32_t invocation = 0;  ///< context the loop was entered from
  std::uint32_t iter = 0;
};

struct CtxKey {
  std::uint32_t loop;
  std::uint32_t invocation;
  std::uint32_t iter;
  bool operator==(const CtxKey&) const = default;
};

struct CtxKeyHash {
  std::size_t operator()(const CtxKey& k) const {
    std::uint64_t h = k.loop;
    h = h * support::kGoldenGamma + k.invocation;
    h = h * support::kGoldenGamma + k.iter;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

/// One loop invocation's k-bound state. TokenT is the engine's in-
/// flight token type (the parallel engine's carries a delivery rank).
template <class TokenT>
struct LoopInstance {
  unsigned in_flight = 0;      ///< allocated, not yet retired iterations
  std::vector<TokenT> stalled;  ///< forwardings blocked by the k-bound
};

/// Deferred I-structure readers per cell: (context, fetch node).
using DeferredMap =
    std::unordered_map<std::uint64_t,
                       std::vector<std::pair<std::uint32_t, dfg::NodeId>>>;

/// Dense per-context matching frames (the explicit token store). Each
/// context owns one frame: a value slot plus presence bit per strict
/// input port (laid out by ExecProgram), and a per-framed-op state word
/// that is kNotCreated until the first token arrives and counts the
/// missing inputs afterwards. A slot range is (re-)initialized on
/// creation — literal ports pre-filled — and released when the op
/// fires, mirroring the try_emplace/erase lifecycle the hash-map store
/// had.
///
/// Storage is a slab arena: frames are fixed-size records (values,
/// presence words, state words — geometry fixed by the ExecProgram)
/// carved out of large chunks, so creating an iteration context costs a
/// bump-pointer step instead of three vector allocations. A frame whose
/// context retires can be handed back via recycle(); the freelist
/// re-issues it to the next iteration without re-initialization (a
/// retiring context has zero live tokens, hence zero created slots, so
/// a recycled frame is already in the all-kNotCreated state a fresh one
/// starts in). Retired contexts can transiently revive (an inner loop
/// exiting later re-injects tokens); a revived context simply draws a
/// fresh frame.
///
/// The serial engines allocate lazily on first delivery. The parallel
/// engine shards frame *ownership* by context while the pointer table
/// and the arena are only ever grown by the coordinator
/// (materialize_contexts, between phases); it never recycles, because
/// slot releases are deferred to the exchange phase and could land
/// after the owning context retired.
class FrameStore {
 public:
  explicit FrameStore(const ExecProgram& ep)
      : ep_(&ep),
        slots_(ep.frame_slots()),
        words_((ep.frame_slots() + 63) / 64),
        nstates_(ep.num_framed_ops()) {
    const std::size_t bytes = slots_ * sizeof(std::int64_t) +
                              words_ * sizeof(std::uint64_t) +
                              nstates_ * sizeof(std::uint16_t);
    stride_ = std::max<std::size_t>((bytes + 7) & ~std::size_t{7}, 8);
    frames_per_chunk_ = std::max<std::size_t>(1, kChunkBytes / stride_);
  }

  enum class Deliver : std::uint8_t {
    kStored,
    kCompleted,
    kCollision,
    /// Checking mode only: the slot's permission tag was already
    /// written — two tokens on one arc (integrity/double-write).
    kTagOccupied,
    /// Checking mode only: a token arrived for an activation whose
    /// matching count is already satisfied but which has not fired —
    /// the op's recorded arity undercounts its arcs, so the pending
    /// firing would consume an empty slot (integrity/read-empty seen
    /// from the delivery side).
    kTagOverrun,
  };

  /// Engages the shadow permission tags (--check=integrity): one tag
  /// byte per value slot, cycling empty → written → (released back to)
  /// empty, kept outside the slab so the off-mode frame layout is
  /// untouched. Call before the first delivery.
  void enable_checking() { checking_ = true; }

  /// Grows the frame pointer table *and* materializes a frame for every
  /// context below n. The parallel engine calls this from the
  /// coordinator each cycle so its workers touch the arena
  /// allocation-free (and the pointer table is never resized
  /// concurrently); with checking on the tag rows are pre-grown here
  /// for the same reason.
  void materialize_contexts(std::size_t n) {
    if (frames_.size() < n) frames_.resize(n, nullptr);
    for (std::size_t c = 0; c < n; ++c)
      if (!frames_[c]) frames_[c] = alloc_frame();
    if (checking_)
      for (std::size_t c = 0; c < n; ++c) tag_row(static_cast<std::uint32_t>(c));
  }

  /// Files one token into (ctx, op)'s slot range.
  Deliver deliver(std::uint32_t ctx, const ExecOp& op, std::uint16_t port,
                  std::int64_t value) {
    std::byte* f = frame(ctx);
    std::uint16_t& state = states(f)[op.strict_index];
    if (state == kNotCreated) {
      for (std::uint16_t p = 0; p < op.num_inputs; ++p) {
        const std::uint32_t slot = op.frame_base + p;
        if (ep_->literal_at(op, p)) {
          values(f)[slot] = ep_->literal_value(op, p);
          bit_set(f, slot);
        } else {
          bit_reset(f, slot);
        }
      }
      state = op.consumed_inputs;
      if (checking_) {
        std::uint8_t* tags = tag_row(ctx);
        for (std::uint16_t p = 0; p < op.num_inputs; ++p)
          tags[op.frame_base + p] =
              ep_->literal_at(op, p) ? kTagWritten : kTagEmpty;
      }
    }
    const std::uint32_t slot = op.frame_base + port;
    if (checking_) {
      // Tag check first: with checking on, a second token on one arc is
      // diagnosed as the integrity violation it is, not the engine-level
      // slot collision it would degenerate into.
      std::uint8_t& tag = tag_row(ctx)[slot];
      if (tag == kTagWritten) return Deliver::kTagOccupied;
      if (state == 0) return Deliver::kTagOverrun;
      tag = kTagWritten;
    }
    if (bit_test(f, slot)) return Deliver::kCollision;
    values(f)[slot] = value;
    bit_set(f, slot);
    return --state == 0 ? Deliver::kCompleted : Deliver::kStored;
  }

  [[nodiscard]] bool has(std::uint32_t ctx, const ExecOp& op) const {
    return ctx < frames_.size() && frames_[ctx] &&
           states(frames_[ctx])[op.strict_index] != kNotCreated;
  }

  [[nodiscard]] std::uint16_t remaining(std::uint32_t ctx,
                                        const ExecOp& op) const {
    return states(frames_[ctx])[op.strict_index];
  }

  /// The matched input values; valid until release().
  [[nodiscard]] const std::int64_t* inputs(std::uint32_t ctx,
                                           const ExecOp& op) const {
    return values(frames_[ctx]) + op.frame_base;
  }

  /// The op fired: its slot range becomes re-creatable. With checking
  /// on, first sweeps the range's permission tags — every port must be
  /// written (a token arrived, or a literal was pre-filled) before the
  /// firing may consume it. Returns the first port whose tag is still
  /// empty (integrity/read-empty), or -1 when the sweep passes; always
  /// -1 with checking off. The tags return to empty either way.
  int release(std::uint32_t ctx, const ExecOp& op) {
    states(frames_[ctx])[op.strict_index] = kNotCreated;
    if (!checking_) return -1;
    std::uint8_t* tags = tag_row(ctx);
    int missing = -1;
    for (std::uint16_t p = 0; p < op.num_inputs; ++p) {
      const std::uint32_t slot = op.frame_base + p;
      if (missing < 0 && tags[slot] != kTagWritten)
        missing = static_cast<int>(p);
      tags[slot] = kTagEmpty;
    }
    return missing;
  }

  /// The context retired: hand its frame back to the freelist (serial
  /// engines only; see class comment). Safe on contexts that never
  /// received a strict token.
  void recycle(std::uint32_t ctx) {
    if (ctx >= frames_.size() || !frames_[ctx]) return;
    free_.push_back(frames_[ctx]);
    frames_[ctx] = nullptr;
    ++recycled_;
  }

  /// Frames handed back by recycle() over the run (engine-internal
  /// telemetry; never part of RunStats).
  [[nodiscard]] std::uint64_t recycled() const { return recycled_; }

  /// Live (created, not yet fired) slots, for diagnostics.
  [[nodiscard]] std::size_t live_slots() const {
    std::size_t n = 0;
    for_each_live([&](std::uint32_t, std::uint32_t, std::uint16_t) { ++n; });
    return n;
  }

  /// f(ctx, op index, missing inputs) per live slot, context-major
  /// ascending — the deterministic scan order of the deadlock report
  /// and the end-of-run pending-store check.
  template <class F>
  void for_each_live(F&& f) const {
    for (std::uint32_t ctx = 0; ctx < frames_.size(); ++ctx) {
      if (!frames_[ctx]) continue;
      const std::uint16_t* st = states(frames_[ctx]);
      for (std::uint32_t i = 0; i < ep_->num_ops(); ++i) {
        const ExecOp& op = ep_->op(i);
        if (!op.framed()) continue;
        if (st[op.strict_index] != kNotCreated)
          f(ctx, i, st[op.strict_index]);
      }
    }
  }

 private:
  static constexpr std::uint16_t kNotCreated = 0xFFFF;
  static constexpr std::uint8_t kTagEmpty = 0, kTagWritten = 1;
  /// Arena chunk size; amortizes to ~one allocation per kChunkBytes of
  /// frame traffic (with recycling, usually a handful per run).
  static constexpr std::size_t kChunkBytes = 64 * 1024;

  // Frame record layout at p: values | presence words | state words.
  [[nodiscard]] std::int64_t* values(std::byte* p) const {
    return reinterpret_cast<std::int64_t*>(p);
  }
  [[nodiscard]] const std::int64_t* values(const std::byte* p) const {
    return reinterpret_cast<const std::int64_t*>(p);
  }
  [[nodiscard]] std::uint64_t* bits(std::byte* p) const {
    return reinterpret_cast<std::uint64_t*>(p + slots_ * sizeof(std::int64_t));
  }
  [[nodiscard]] std::uint16_t* states(std::byte* p) const {
    return reinterpret_cast<std::uint16_t*>(p + slots_ * sizeof(std::int64_t) +
                                            words_ * sizeof(std::uint64_t));
  }
  [[nodiscard]] const std::uint16_t* states(const std::byte* p) const {
    return reinterpret_cast<const std::uint16_t*>(
        p + slots_ * sizeof(std::int64_t) + words_ * sizeof(std::uint64_t));
  }

  void bit_set(std::byte* p, std::uint32_t i) {
    bits(p)[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  void bit_reset(std::byte* p, std::uint32_t i) {
    bits(p)[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  [[nodiscard]] bool bit_test(std::byte* p, std::uint32_t i) const {
    return (bits(p)[i >> 6] >> (i & 63)) & 1;
  }

  std::byte* alloc_frame() {
    if (!free_.empty()) {
      // Recycled frames are clean (all states kNotCreated) — a context
      // only retires once its last token is consumed, and every created
      // slot holds at least one live token.
      std::byte* p = free_.back();
      free_.pop_back();
      return p;
    }
    if (chunks_.empty() || next_in_chunk_ == frames_per_chunk_) {
      chunks_.push_back(std::make_unique<std::byte[]>(
          stride_ * frames_per_chunk_));
      next_in_chunk_ = 0;
    }
    std::byte* p = chunks_.back().get() + next_in_chunk_++ * stride_;
    std::uint16_t* st = states(p);
    for (std::size_t i = 0; i < nstates_; ++i) st[i] = kNotCreated;
    return p;
  }

  std::byte* frame(std::uint32_t ctx) {
    if (ctx >= frames_.size()) frames_.resize(ctx + 1, nullptr);
    if (!frames_[ctx]) frames_[ctx] = alloc_frame();
    return frames_[ctx];
  }

  /// The context's shadow tag row (checking mode), created zeroed (all
  /// empty) on first use. Rows stay with their context across frame
  /// recycling: a retiring context has zero live tokens, hence all-empty
  /// tags, so a revived context finds its row in the fresh state.
  std::uint8_t* tag_row(std::uint32_t ctx) {
    if (tags_.size() <= ctx) tags_.resize(ctx + 1);
    auto& row = tags_[ctx];
    if (!row) row = std::make_unique<std::uint8_t[]>(slots_);
    return row.get();
  }

  const ExecProgram* ep_;
  std::size_t slots_;
  std::size_t words_;
  std::size_t nstates_;
  std::size_t stride_ = 0;
  std::size_t frames_per_chunk_ = 0;
  std::size_t next_in_chunk_ = 0;
  std::uint64_t recycled_ = 0;
  std::vector<std::byte*> frames_;  ///< per-context frame, null = none
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::vector<std::byte*> free_;
  bool checking_ = false;
  std::vector<std::unique_ptr<std::uint8_t[]>> tags_;  ///< per-context tags
};

/// Context allocation, token-liveness accounting, and k-bound credits —
/// identical in both engines; the engine supplies only what happens to
/// forwardings released from a stall (serial: next-cycle pending push;
/// parallel: re-rank into the coordinator outbox).
template <class TokenT>
class ContextState {
 public:
  ContextState() {
    contexts_.push_back(CtxInfo{});  // root context 0
    live_tokens_.push_back(0);
    retired_.push_back(false);
  }

  [[nodiscard]] std::size_t size() const { return contexts_.size(); }
  [[nodiscard]] const CtxInfo& info(std::uint32_t ctx) const {
    return contexts_[ctx];
  }

  /// Switches context-id assignment from dense arrival order to a
  /// key-derived arena: iteration (loop ← from) is owned by shard
  /// hash(key) % shards and receives id = owner + shards * slot, so
  /// `ctx % shards` recovers the owning shard without a lookup and the
  /// id does not depend on allocation order. Used by the async parallel
  /// engine (lock-free token routing; deterministic ids regardless of
  /// which worker allocates first). The id space becomes sparse; the
  /// bookkeeping vectors grow with default-initialized holes. Must be
  /// called before any allocation; the pre-created root context 0 maps
  /// to shard 0 (0 % shards == 0).
  void enable_arena(std::uint32_t shards) {
    CTDF_ASSERT(contexts_.size() == 1);
    arena_shards_ = shards;
    arena_next_.assign(shards, 0);
    arena_next_[0] = 1;  // root context occupies shard 0, slot 0
  }

  void add_live(std::uint32_t ctx, std::uint32_t n = 1) {
    live_tokens_[ctx] += n;
  }

  [[nodiscard]] static std::uint64_t instance_key(cfg::LoopId loop,
                                                  std::uint32_t invocation) {
    return (static_cast<std::uint64_t>(loop.value()) << 32) | invocation;
  }

  [[nodiscard]] CtxKey iteration_key(cfg::LoopId loop,
                                     std::uint32_t from) const {
    const CtxInfo& cur = contexts_[from];
    CtxKey key{};
    key.loop = loop.value();
    if (cur.loop == loop) {
      key.invocation = cur.invocation;
      key.iter = cur.iter + 1;
    } else {
      key.invocation = from;
      key.iter = 0;
    }
    return key;
  }

  /// k-bounded loops: if starting the iteration (loop ← from) would
  /// exceed `bound`, returns the instance the forwarding must stall in;
  /// nullptr when it may proceed. bound 0 = unbounded.
  [[nodiscard]] LoopInstance<TokenT>* bound_block(cfg::LoopId loop,
                                                  std::uint32_t from,
                                                  unsigned bound) {
    if (bound == 0) return nullptr;
    const CtxKey key = iteration_key(loop, from);
    if (ctx_table_.contains(key)) return nullptr;
    LoopInstance<TokenT>& inst =
        instances_[instance_key(loop, key.invocation)];
    return inst.in_flight >= bound ? &inst : nullptr;
  }

  /// The context of iteration (loop ← from), allocating it (and a
  /// k-bound credit) on first use.
  std::uint32_t context_for_iteration(cfg::LoopId loop, std::uint32_t from,
                                      RunStats& stats) {
    const CtxKey key = iteration_key(loop, from);
    const auto [it, inserted] = ctx_table_.try_emplace(key, 0u);
    if (inserted) {
      std::uint32_t id;
      if (arena_shards_ == 0) {
        id = static_cast<std::uint32_t>(contexts_.size());
        contexts_.push_back(CtxInfo{loop, key.invocation, key.iter});
        live_tokens_.push_back(0);
        retired_.push_back(false);
      } else {
        const std::uint32_t owner = static_cast<std::uint32_t>(
            CtxKeyHash{}(key) % arena_shards_);
        id = owner + arena_shards_ * arena_next_[owner]++;
        if (contexts_.size() <= id) {
          contexts_.resize(id + 1);
          live_tokens_.resize(id + 1, 0);
          retired_.resize(id + 1, false);
        }
        contexts_[id] = CtxInfo{loop, key.invocation, key.iter};
      }
      it->second = id;
      ++stats.contexts_allocated;
      ++instances_[instance_key(loop, key.invocation)].in_flight;
      ++live_contexts_;
      stats.peak_live_contexts =
          std::max<std::uint64_t>(stats.peak_live_contexts, live_contexts_);
    }
    return it->second;
  }

  /// n tokens of `ctx` were consumed; retire the context when its last
  /// token dies, releasing a k-bound credit and handing any stalled
  /// forwardings to on_stalled(std::vector<TokenT>&&). Contexts can
  /// transiently hit zero and come back (an inner loop exiting later
  /// re-injects tokens), so retirement is once-only and the bound is
  /// approximate across nested-loop boundaries. Returns true iff this
  /// call retired the context (the event engine recycles its frame on
  /// that edge).
  template <class OnStalled>
  bool consume(std::uint32_t ctx, std::uint32_t n, OnStalled&& on_stalled) {
    CTDF_ASSERT(live_tokens_[ctx] >= n);
    live_tokens_[ctx] -= n;
    if (live_tokens_[ctx] != 0 || ctx == 0 || retired_[ctx]) return false;
    retired_[ctx] = true;
    --live_contexts_;
    const CtxInfo& info = contexts_[ctx];
    const auto it = instances_.find(instance_key(info.loop, info.invocation));
    if (it == instances_.end()) return true;
    LoopInstance<TokenT>& instance = it->second;
    if (instance.in_flight > 0) --instance.in_flight;
    if (!instance.stalled.empty()) {
      auto stalled = std::move(instance.stalled);
      instance.stalled.clear();
      on_stalled(std::move(stalled));
    }
    return true;
  }

  /// Forwardings currently buffered by the k-bound (deadlock report).
  [[nodiscard]] std::size_t stalled_total() const {
    std::size_t n = 0;
    for (const auto& [k, inst] : instances_) n += inst.stalled.size();
    return n;
  }

  /// Iteration contexts currently live (allocated, not retired) — the
  /// population a finite frame_capacity caps.
  [[nodiscard]] std::uint64_t live_contexts() const { return live_contexts_; }

  /// Would starting iteration (loop ← from) allocate a fresh context
  /// (i.e. draw down frame capacity), or does the iteration's context
  /// already exist?
  [[nodiscard]] bool would_allocate(cfg::LoopId loop,
                                    std::uint32_t from) const {
    return !ctx_table_.contains(iteration_key(loop, from));
  }

  /// f(loop id, invocation ctx, iterations in flight, stalled
  /// forwardings) per loop instance, in (loop, invocation) order — the
  /// per-loop breakdown of the deadlock / watchdog diagnosis.
  template <class F>
  void for_each_instance(F&& f) const {
    std::vector<std::uint64_t> keys;
    keys.reserve(instances_.size());
    for (const auto& [k, inst] : instances_) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    for (const std::uint64_t k : keys) {
      const LoopInstance<TokenT>& inst = instances_.at(k);
      f(static_cast<std::uint32_t>(k >> 32),
        static_cast<std::uint32_t>(k & 0xFFFFFFFFu), inst.in_flight,
        inst.stalled.size());
    }
  }

 private:
  std::vector<CtxInfo> contexts_;
  std::vector<std::uint32_t> live_tokens_;
  std::vector<bool> retired_;
  std::uint32_t arena_shards_ = 0;           ///< 0 = dense arrival-order ids
  std::vector<std::uint32_t> arena_next_;    ///< next free slot per shard
  std::uint64_t live_contexts_ = 0;
  std::unordered_map<std::uint64_t, LoopInstance<TokenT>> instances_;
  std::unordered_map<CtxKey, std::uint32_t, CtxKeyHash> ctx_table_;
};

}  // namespace ctdf::machine
