// Calendar queue (timing wheel) for in-flight tokens, the event
// engine's replacement for the scan engine's std::map<cycle, vector>.
//
// Every token's delivery cycle lies within a small, statically known
// horizon of the current cycle: firings schedule at cycle + latency
// (alu or mem) plus at most one network hop, and k-bound stalls
// re-deliver at cycle + 1. A power-of-two ring of buckets indexed by
// `due & mask` therefore never aliases two distinct live cycles, so
//  * push is an append into the due bucket — O(1), no tree rebalance,
//    no per-cycle map node allocation;
//  * draining a cycle clears its bucket in place, retaining capacity —
//    the bucket vectors become a self-recycling token pool as the
//    wheel wraps;
//  * finding the next non-empty cycle (the idle jump) is a find-first-
//    set over an occupancy bitmap instead of a tree descent.
//
// Ordering contract (what byte-identity with the scan engine rests
// on): tokens with equal due cycles are delivered in push order, and
// cross-cycle iteration (`for_each_pending`, used by the end-of-run
// drain accounting) visits buckets in ascending due order — exactly
// the std::map iteration the scan engine performs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "machine/frames.hpp"
#include "support/assert.hpp"

namespace ctdf::machine {

class CalendarQueue {
 public:
  /// Largest supported horizon (exclusive); run() falls back to the
  /// scan engine above this rather than allocating a degenerate wheel.
  static constexpr std::uint64_t kMaxHorizon = 1u << 20;

  /// `horizon` = the maximum distance between the current cycle and any
  /// schedulable delivery cycle (max latency + max hop).
  explicit CalendarQueue(std::uint64_t horizon) {
    std::uint64_t size = 2;
    while (size < horizon + 2) size <<= 1;
    buckets_.resize(size);
    occupied_.assign((size + 63) / 64, 0);
    mask_ = size - 1;
  }

  void push(std::uint64_t due, const Token& t) {
    const std::uint64_t b = due & mask_;
    buckets_[b].push_back(t);
    occupied_[b >> 6] |= std::uint64_t{1} << (b & 63);
    ++count_;
  }

  /// Visits every token due at `cycle` in push order, then clears the
  /// bucket (capacity retained). `f` may push tokens for later cycles.
  template <class F>
  void drain(std::uint64_t cycle, F&& f) {
    const std::uint64_t b = cycle & mask_;
    std::vector<Token>& bucket = buckets_[b];
    if (bucket.empty()) return;
    // Firings only ever schedule at least one cycle out, so the bucket
    // cannot grow under this loop; assert the invariant cheaply.
    const std::size_t n = bucket.size();
    for (std::size_t i = 0; i < n; ++i) f(bucket[i]);
    CTDF_ASSERT_MSG(bucket.size() == n, "token scheduled for the live cycle");
    count_ -= n;
    bucket.clear();
    occupied_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
  }

  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// The next cycle after `cycle` with a pending delivery. Requires
  /// !empty(); every pending due lies in (cycle, cycle + horizon].
  [[nodiscard]] std::uint64_t next_due(std::uint64_t cycle) const {
    std::uint64_t off = 1;
    while (off <= mask_) {
      const std::uint64_t b = (cycle + off) & mask_;
      // Remaining occupancy bits of b's word, starting at b itself.
      // Bits past the ring top are never set, so a small wheel's single
      // word needs no masking.
      const std::uint64_t word = occupied_[b >> 6] >> (b & 63);
      if (word)
        return cycle + off + static_cast<std::uint64_t>(__builtin_ctzll(word));
      // Skip to the next word boundary — or to the ring top if that is
      // nearer, so the scan wraps instead of overshooting the ring.
      off += std::min<std::uint64_t>(64 - (b & 63), mask_ + 1 - b);
    }
    CTDF_UNREACHABLE("next_due on an empty calendar queue");
  }

  /// Visits every pending token in ascending due order (push order
  /// within a cycle), starting the scan at `cycle` — the wheel holds
  /// nothing older than the last drained cycle.
  template <class F>
  void for_each_pending(std::uint64_t cycle, F&& f) const {
    for (std::uint64_t off = 0; off <= mask_; ++off) {
      const std::vector<Token>& bucket = buckets_[(cycle + off) & mask_];
      for (const Token& t : bucket) f(t);
    }
  }

 private:
  std::vector<std::vector<Token>> buckets_;
  std::vector<std::uint64_t> occupied_;  ///< per-bucket non-empty bits
  std::uint64_t mask_ = 0;
  std::size_t count_ = 0;
};

}  // namespace ctdf::machine
