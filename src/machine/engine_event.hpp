// Event-driven serial engine: SerialEngine over a calendar-queue
// pending policy, with frame recycling on context retirement. See
// calendar.hpp for the queue and engine_serial.hpp for the shared
// engine body.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/exec.hpp"
#include "machine/machine.hpp"
#include "machine/options.hpp"

namespace ctdf::machine::detail {

/// The farthest ahead of the current cycle any delivery can be
/// scheduled under `opt`: the wheel must span at least this. run()
/// falls back to the scan engine when this reaches
/// CalendarQueue::kMaxHorizon (absurd latency configurations).
[[nodiscard]] std::uint64_t event_horizon(const MachineOptions& opt);

RunResult run_event(const ExecProgram& program, std::size_t memory_cells,
                    const MachineOptions& options,
                    const std::vector<IStructureRegion>& istructures,
                    const std::vector<SharedRegion>& shared);

}  // namespace ctdf::machine::detail
