#include "machine/faults.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/hash.hpp"

namespace ctdf::machine {
namespace {

// Salts separating the independent decision streams drawn from one id.
constexpr std::uint32_t kDropSalt = 0x1000;    // + attempt number
constexpr std::uint32_t kNackSalt = 0x2000;    // + attempt number
constexpr std::uint32_t kJitterSalt = 0x3001;
constexpr std::uint32_t kJitterAmount = 0x3002;
constexpr std::uint32_t kDupSalt = 0x3003;
constexpr std::uint32_t kDupSpread = 0x3004;
constexpr std::uint32_t kSeqSalt = 0x3005;

}  // namespace

const char* code_slug(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kDeadlock: return "deadlock";
    case ErrorCode::kSlotCollision: return "slot-collision";
    case ErrorCode::kCycleCap: return "cycle-cap";
    case ErrorCode::kFrameExhausted: return "frame-exhausted";
    case ErrorCode::kRetryExhausted: return "retry-exhausted";
    case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::kTokenBudget: return "token-budget";
    case ErrorCode::kIStoreDoubleWrite: return "istore-double-write";
    case ErrorCode::kStoreInFlight: return "store-in-flight";
    case ErrorCode::kIntegrityDoubleWrite: return "integrity/double-write";
    case ErrorCode::kIntegrityReadEmpty: return "integrity/read-empty";
    case ErrorCode::kIntegrityMemRace: return "integrity/mem-race";
    case ErrorCode::kIntegrityOrphanResponse:
      return "integrity/orphan-response";
  }
  return "none";
}

std::uint64_t backoff_delay(const FaultPlan& plan, unsigned attempt) {
  const unsigned shift = std::min(attempt > 0 ? attempt - 1 : 0u, 30u);
  const std::uint64_t raw = std::uint64_t{std::max(plan.backoff_base, 1u)}
                            << shift;
  return std::max<std::uint64_t>(
      std::min<std::uint64_t>(raw, std::max(plan.backoff_cap, 1u)), 1);
}

std::uint64_t max_fault_delay(const FaultPlan& plan) {
  if (!plan.enabled()) return 0;
  std::uint64_t ladder = 0;
  for (unsigned a = 1; a < std::max(plan.max_attempts, 1u); ++a)
    ladder += backoff_delay(plan, a);
  // + max jitter (1..4) + max duplicate spread over the original (1..3).
  return ladder + 4 + 3;
}

std::string parse_fault_spec(const std::string& spec, FaultPlan& plan) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      return "fault spec item '" + item + "' is not key=value";
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    char* end = nullptr;
    if (key == "drop" || key == "dup" || key == "jitter" || key == "nack") {
      const double rate = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || rate < 0.0 || rate > 1.0)
        return "fault rate '" + key + "=" + value + "' must be in [0,1]";
      if (key == "drop") plan.drop = rate;
      else if (key == "dup") plan.dup = rate;
      else if (key == "jitter") plan.jitter = rate;
      else plan.nack = rate;
    } else if (key == "attempts" || key == "backoff" || key == "cap" ||
               key == "watchdog") {
      const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0')
        return "fault knob '" + key + "=" + value +
               "' must be a non-negative integer";
      if (key == "attempts") {
        if (n == 0) return "fault knob 'attempts' must be at least 1";
        plan.max_attempts = static_cast<unsigned>(std::min(n, 64ull));
      } else if (key == "backoff") {
        plan.backoff_base = static_cast<unsigned>(std::min(n, 1ull << 16));
      } else if (key == "cap") {
        plan.backoff_cap = static_cast<unsigned>(std::min(n, 1ull << 20));
      } else {
        plan.watchdog_steps = n;
      }
    } else {
      return "unknown fault spec key '" + key +
             "' (expected drop/dup/jitter/nack/attempts/backoff/cap/"
             "watchdog)";
    }
  }
  if (plan.backoff_cap < plan.backoff_base)
    return "fault spec: cap must be >= backoff";
  return {};
}

std::uint64_t FaultState::mix(std::uint64_t id, std::uint32_t salt) const {
  // SplitMix64 finalizer over (seed, id, salt): a full-period avalanche
  // keeps the decision streams independent across salts and ids.
  const std::uint64_t z = plan_.seed ^ (id * support::kGoldenGamma) ^
                          (std::uint64_t{salt} << 32);
  return support::splitmix64_mix(z + support::kGoldenGamma);
}

bool FaultState::roll(std::uint64_t id, std::uint32_t salt,
                      double rate) const {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  const double u =
      static_cast<double>(mix(id, salt) >> 11) * 0x1.0p-53;
  return u < rate;
}

FaultState::Transit FaultState::transit(std::uint64_t id) const {
  Transit t;
  for (unsigned attempt = 1; roll(id, kDropSalt + attempt, plan_.drop);
       ++attempt) {
    if (attempt >= plan_.max_attempts) {
      t.exhausted = true;
      return t;
    }
    t.delay += backoff_delay(plan_, attempt);
    ++t.drops;
  }
  if (roll(id, kJitterSalt, plan_.jitter)) {
    t.delay += 1 + mix(id, kJitterAmount) % 4;
    t.jitters = 1;
  }
  if (roll(id, kDupSalt, plan_.dup)) {
    t.duplicated = true;
    t.dup_delay = t.delay + 1 + mix(id, kDupSpread) % 3;
  }
  return t;
}

FaultState::Nack FaultState::nack(std::uint64_t id) const {
  Nack n;
  for (unsigned attempt = 1; roll(id, kNackSalt + attempt, plan_.nack);
       ++attempt) {
    if (attempt >= plan_.max_attempts) {
      n.exhausted = true;
      return n;
    }
    n.delay += backoff_delay(plan_, attempt);
    ++n.nacks;
  }
  return n;
}

std::uint64_t FaultState::seq_for(std::uint64_t id) const {
  return mix(id, kSeqSalt) | 1;
}

}  // namespace ctdf::machine
