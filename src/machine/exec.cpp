#include "machine/exec.hpp"

#include <sstream>

#include "support/assert.hpp"

namespace ctdf::machine {

ExecProgram lower(const dfg::Graph& g) {
  ExecProgram p;
  const std::size_t n = g.num_nodes();
  p.ops_.resize(n);
  p.labels_.resize(n);
  p.start_ = g.start();
  p.end_ = g.end();

  // Pass 1: op table rows, operand tables, frame-slot layout.
  std::uint32_t operand_cursor = 0;
  std::uint32_t port_cursor = 0;
  std::uint32_t frame_cursor = 0;
  std::uint32_t strict_cursor = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const dfg::Node& node = g.node(dfg::NodeId{i});
    ExecOp& op = p.ops_[i];
    op.kind = node.kind;
    op.num_inputs = node.num_inputs;
    op.num_outputs = node.num_outputs;
    op.bop = node.bop;
    op.uop = node.uop;
    op.mem_base = node.mem_base;
    op.mem_extent = node.mem_extent;
    op.loop = node.loop;
    if (dfg::is_non_strict_base(node.kind)) op.flags |= kExecNonStrict;
    if (node.kind == dfg::OpKind::kLoopEntry) op.flags |= kExecLoopEntry;
    if (dfg::is_memory_op(node.kind)) op.flags |= kExecMem;
    if (dfg::is_write_op(node.kind)) op.flags |= kExecWrite;

    op.first_operand = operand_cursor;
    CTDF_ASSERT(node.operands.size() == node.num_inputs);
    for (std::uint16_t in = 0; in < node.num_inputs; ++in) {
      const dfg::Operand& o = node.operands[in];
      p.operand_is_literal_.push_back(o.is_literal ? 1 : 0);
      p.operand_literal_.push_back(o.literal);
      if (!o.is_literal) ++op.consumed_inputs;
    }
    operand_cursor += node.num_inputs;

    op.first_port = port_cursor;
    port_cursor += node.num_outputs;

    // Start never receives tokens and Merge/LoopExit forward each token
    // immediately; everything else rendezvouses in a frame-slot range.
    // (LoopEntry keeps its range even though pipelined mode bypasses
    // it: strictness there is a machine-mode decision, not a graph one.)
    if (node.kind != dfg::OpKind::kStart &&
        !dfg::is_non_strict_base(node.kind)) {
      op.frame_base = frame_cursor;
      frame_cursor += node.num_inputs;
      op.strict_index = strict_cursor++;
    }

    if (node.kind == dfg::OpKind::kMacro) {
      op.macro_head = node.head_kind;
      op.first_step = static_cast<std::uint32_t>(p.macro_steps_.size());
      op.num_steps = static_cast<std::uint16_t>(node.steps.size());
      p.macro_steps_.insert(p.macro_steps_.end(), node.steps.begin(),
                            node.steps.end());
    }

    if (node.kind == dfg::OpKind::kStart)
      p.start_values_ = node.start_values;
    p.labels_[i] = node.label;
  }
  p.frame_slots_ = frame_cursor;
  p.num_framed_ = strict_cursor;

  // Pass 2: fan-out destinations, grouped per (op, out-port). Within a
  // port, graph-arc order is preserved — the engines' emission order
  // (and hence ready-queue order and RunStats) depends on it.
  p.fanout_begin_.assign(port_cursor + 1, 0);
  for (const dfg::Arc& a : g.arcs())
    ++p.fanout_begin_[p.ops_[a.src.index()].first_port + a.src_port + 1];
  for (std::size_t i = 1; i < p.fanout_begin_.size(); ++i)
    p.fanout_begin_[i] += p.fanout_begin_[i - 1];
  p.fanout_.resize(g.num_arcs());
  {
    std::vector<std::uint32_t> cursor(
        p.fanout_begin_.begin(), p.fanout_begin_.end() - 1);
    for (const dfg::Arc& a : g.arcs())
      p.fanout_[cursor[p.ops_[a.src.index()].first_port + a.src_port]++] =
          ExecDest{a.dst, a.dst_port};
  }
  return p;
}

std::string render(const ExecProgram& p) {
  std::ostringstream os;
  os << "exec program: " << p.num_ops() << " ops, " << p.num_dests()
     << " dests, " << p.frame_slots() << " frame slots ("
     << p.num_framed_ops() << " framed ops), " << p.num_literals()
     << " literal operands\n";
  for (std::uint32_t i = 0; i < p.num_ops(); ++i) {
    const ExecOp& op = p.op(i);
    os << "  [" << i << "] " << to_string(op.kind);
    if (!p.label(i).empty()) os << " '" << p.label(i) << "'";
    os << " in=" << op.num_inputs << " out=" << op.num_outputs;
    if (op.framed())
      os << " frame=" << op.frame_base << ".."
         << op.frame_base + op.num_inputs;
    else
      os << " frame=-";
    if (op.flags & kExecNonStrict) os << " non-strict";
    if (op.flags & kExecLoopEntry) os << " loop=" << op.loop.value();
    if (op.kind == dfg::OpKind::kLoopExit) os << " loop=" << op.loop.value();
    if (op.flags & kExecMem)
      os << " mem=" << op.mem_base << "+" << op.mem_extent;
    if (op.kind == dfg::OpKind::kMacro)
      os << " head=" << to_string(op.macro_head) << " steps=" << op.num_steps;
    for (std::uint16_t in = 0; in < op.num_inputs; ++in)
      if (p.literal_at(op, in))
        os << " lit[" << in << "]=" << p.literal_value(op, in);
    for (std::uint16_t out = 0; out < op.num_outputs; ++out) {
      os << " p" << out << "->{";
      bool first = true;
      for (const ExecDest& d : p.dests(op, out)) {
        os << (first ? "" : " ") << d.node.value() << ":" << d.port;
        first = false;
      }
      os << "}";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace ctdf::machine
