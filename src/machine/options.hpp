// Machine configuration.
#pragma once

#include <cstdint>

namespace ctdf::machine {

/// Loop-control policy (the paper's Section 3 leaves loop control
/// unspecified — "there are many other possible approaches"; we
/// implement the two natural ones and benchmark them against each
/// other).
enum class LoopMode : std::uint8_t {
  /// The Monsoon-style suggestion from the paper: the loop-entry
  /// operator collects the complete set of circulating tokens, then
  /// allocates a frame (context) for the next iteration. Iterations are
  /// separated by a barrier at the loop entry.
  kBarrier,
  /// Tagged-token style: each circulating token independently enters
  /// the next iteration's context as soon as it arrives, so successive
  /// iterations overlap (software pipelining in the dataflow graph).
  kPipelined,
};

[[nodiscard]] inline const char* to_string(LoopMode m) {
  return m == LoopMode::kBarrier ? "barrier" : "pipelined";
}

/// How work is distributed over processing elements in multi-PE mode.
enum class Placement : std::uint8_t {
  /// Instructions hashed to PEs (static dataflow style): one node
  /// always fires on the same PE, iterations of a loop share PEs.
  kByNode,
  /// Contexts (frames) hashed to PEs (Monsoon style): an iteration's
  /// work stays local to one PE, different iterations spread out.
  kByContext,
};

[[nodiscard]] inline const char* to_string(Placement p) {
  return p == Placement::kByNode ? "by-node" : "by-context";
}

/// Which execution engine advances simulated time.
enum class EngineKind : std::uint8_t {
  /// The legacy serial engine: in-flight tokens live in an ordered
  /// map keyed by delivery cycle, frames are allocated per context and
  /// never freed. Reference semantics; `host_threads` > 1 shards its
  /// cycles across workers.
  kScan,
  /// Event-driven serial engine: a calendar (timing-wheel) queue keyed
  /// by cycle timestamp replaces the per-cycle map walk, with recycled
  /// token buckets and arena frames returned to a freelist when their
  /// iteration context retires. Produces byte-identical RunStats,
  /// stores, and error reports (enforced by
  /// tests/machine_event_equiv_test.cpp); `host_threads` is ignored.
  kEvent,
};

[[nodiscard]] inline const char* to_string(EngineKind e) {
  return e == EngineKind::kScan ? "scan" : "event";
}

/// Opt-in run-time integrity checking: the machine carries cheap
/// permission tags on frame slots (empty → written-once → consumed,
/// the HDFI ldchk/sdset idiom) and request/response accounting on the
/// split-phase memory, and validates the tagged-token rules on every
/// delivery and firing. A clean run is a certificate that the
/// translation obeyed single-assignment, presence-bit discipline, and
/// memory ordering; a violation fails the run with a typed
/// `integrity/*` error (see machine/integrity.hpp).
enum class CheckMode : std::uint8_t {
  kOff,
  kIntegrity,
};

[[nodiscard]] inline const char* to_string(CheckMode c) {
  return c == CheckMode::kOff ? "off" : "integrity";
}

/// Host-parallel execution discipline (effective when host_threads > 1).
enum class ParallelMode : std::uint8_t {
  /// Cycle-synchronous barrier engine: every worker advances one
  /// simulated cycle in lock step (deliver/fire/exchange phases joined
  /// by barriers). Bit-identical to the serial engine by construction.
  kSync,
  /// Asynchronous work-stealing engine: each PE runs its shard set on a
  /// local clock, exchanging tokens through per-shard mailboxes, with
  /// epoch fences only at loop boundaries (deterministic mode) or no
  /// global synchronization at all (free-running mode). Final stores
  /// and semantic counters match the serial engine; the schedule (and
  /// schedule-derived metrics such as cycles) may differ.
  kAsync,
};

[[nodiscard]] inline const char* to_string(ParallelMode p) {
  return p == ParallelMode::kSync ? "sync" : "async";
}

/// Deterministic fault-injection plan (see machine/faults.hpp for the
/// model and the recovery machinery). All rates are per-event
/// probabilities in [0,1]; every decision is a pure function of `seed`
/// and the event's identity, so faulted runs are exactly reproducible.
/// With every rate zero the plan is inert and the engines run their
/// fault-free code paths unchanged.
struct FaultPlan {
  std::uint64_t seed = 0;

  /// Per-transmission probability that a cross-PE token is dropped and
  /// must be retransmitted after backoff (multi-processor mode only —
  /// the abstract pool has no network to lose tokens in).
  double drop = 0.0;
  /// Probability that a cross-PE token is duplicated in the network;
  /// the receiver drops the second copy by sequence number.
  double dup = 0.0;
  /// Probability of 1-4 cycles of extra network delay on a cross-PE
  /// token.
  double jitter = 0.0;
  /// Per-firing probability that the split-phase memory NACKs a
  /// request; the firing retries after backoff.
  double nack = 0.0;

  /// Transmission attempts (first try + retries) before the retry
  /// budget is exhausted and the run fails with kRetryExhausted.
  unsigned max_attempts = 6;
  /// Exponential backoff before retry k: base << (k-1) cycles ...
  unsigned backoff_base = 2;
  /// ... capped at this many cycles.
  unsigned backoff_cap = 64;
  /// Scheduler steps without a single firing before the no-progress
  /// watchdog declares livelock; 0 = a generous default (1M steps).
  std::uint64_t watchdog_steps = 0;

  [[nodiscard]] bool enabled() const {
    return drop > 0.0 || dup > 0.0 || jitter > 0.0 || nack > 0.0;
  }
};

/// Cooperative run budget: every way a single run may consume resources
/// has a ceiling here, checked on the shared firing path so all engines
/// honor it identically (machine/budget.hpp). The Monsoon discipline of
/// bounding frames/tokens/loop unfolding, extended to wall-clock time:
/// a serving layer can hand the machine a deadline and know the run
/// comes back — completed or with a typed `deadline-exceeded` /
/// `token-budget` error and partial RunStats — instead of occupying a
/// worker forever.
struct RunBudget {
  /// Wall-clock allowance in milliseconds. Negative = no deadline.
  /// 0 = already expired: the run is rejected up front (0 cycles,
  /// 0 firings) with the same typed error a mid-run expiry produces.
  std::int64_t deadline_ms = -1;

  /// Abort knob for runaway graphs (simulated cycles / async epochs).
  std::uint64_t max_cycles = 50'000'000;

  /// Ceiling on tokens sent; 0 = unlimited. Unlike the deadline this is
  /// deterministic on the serial engines: two runs trip at the same
  /// firing.
  std::uint64_t max_tokens = 0;

  /// True when the per-firing budget poll must be engaged (the
  /// max_cycles ceiling rides the existing per-cycle check and needs no
  /// polling). When false the engines run their legacy hot path behind
  /// one dead branch — the fault/integrity bargain.
  [[nodiscard]] bool armed() const {
    return deadline_ms >= 0 || max_tokens > 0;
  }
};

struct MachineOptions {
  /// Execution engine (see EngineKind; results never depend on this).
  EngineKind engine = EngineKind::kScan;

  LoopMode loop_mode = LoopMode::kBarrier;

  /// Operators fired per cycle across the machine; 0 = unlimited
  /// (pure-dataflow limit — cycles then measure the critical path).
  unsigned width = 0;

  /// k-bounded loops (Culler-style throttling): with pipelined loop
  /// control, at most this many iterations of one loop invocation may
  /// be in flight; tokens bound for iteration i+k stall at the loop
  /// entry until iteration i retires (its last token is consumed).
  /// 0 = unbounded. Bounds the frame-store footprint that unbounded
  /// pipelining would otherwise need — the classic dataflow resource-
  /// management tradeoff. Ignored in barrier mode (which is k = 1 by
  /// construction).
  unsigned loop_bound = 0;

  /// Explicit multi-processor mode: number of processing elements, each
  /// firing at most one operator per cycle, with `network_latency`
  /// added to every token that crosses PEs. 0 = the abstract single
  /// pool governed by `width` alone (the model the paper reasons in).
  unsigned processors = 0;

  /// Work distribution across PEs (multi-processor mode only).
  Placement placement = Placement::kByContext;

  /// Extra cycles for a token whose producer and consumer live on
  /// different PEs (multi-processor mode only).
  unsigned network_latency = 2;

  /// Latency of non-memory operators, cycles.
  unsigned alu_latency = 1;

  /// Split-phase memory round-trip latency, cycles.
  unsigned mem_latency = 4;

  /// Host-side execution parallelism of the *simulator itself* (not a
  /// property of the simulated machine): number of worker threads that
  /// cooperatively advance one simulated cycle. 0 or 1 = the serial
  /// legacy engine. Any value produces results bit-identical to the
  /// serial engine — RunStats, final store, and reports never depend on
  /// host_threads (see doc/IMPLEMENTATION-NOTES.md, "Parallel engine &
  /// determinism model").
  unsigned host_threads = 0;

  /// Which host-parallel engine host_threads > 1 selects (CLI
  /// `--parallel=sync|async`). Sync is the barrier engine; async is the
  /// work-stealing engine with epoch-based token exchange.
  ParallelMode parallel = ParallelMode::kSync;

  /// Async engine only (CLI `--slack=N`): bounded-slack window — how
  /// many self-delivery sub-rounds a PE may run between epoch fences
  /// before forwarding leftovers to the next epoch. 0 = auto (derived
  /// from the latency ladder: alu_latency + mem_latency).
  unsigned slack = 0;

  /// Async engine only (CLI `--deterministic[=0]`): serialize shard→
  /// worker placement, disable stealing, and fence loop-entry firings
  /// so two runs with the same options are byte-identical (stats JSON
  /// and final store). Default on — tests rely on it; turn off to
  /// free-run for throughput.
  bool deterministic = true;

  /// Cooperative deadline / cycle / token ceilings (CLI
  /// `--max-cycles=`, `--deadline-ms=`, `--max-tokens=`).
  RunBudget budget;

  /// Finite frame store: at most this many iteration contexts may be
  /// live at once. A loop entry that would allocate beyond the capacity
  /// back-pressures (the forwarding waits for a context to retire)
  /// instead of aborting — graceful degradation, like an adaptive
  /// k-bound. 0 = unbounded (today's behavior).
  std::uint64_t frame_capacity = 0;

  /// Deterministic fault injection (inert by default).
  FaultPlan faults;

  /// 0 = deterministic FIFO scheduling. Non-zero seeds randomize the
  /// choice of which ready operator fires next — used by the
  /// confluence property tests (the final store must not change).
  std::uint64_t scheduler_seed = 0;

  /// Run-time integrity checking (CLI `--check=integrity`). Off by
  /// default: the engines then run their legacy code paths and the tag
  /// machinery costs nothing.
  CheckMode check = CheckMode::kOff;

  /// Mutation-harness hook (tests only, effective only with
  /// check == kIntegrity): the split-phase memory delivers every
  /// deferred I-structure response twice, seeding the orphan-response
  /// defect the checker must catch.
  bool test_dup_response = false;

  /// Record the ops-fired-per-cycle profile (memory proportional to
  /// cycles; off by default).
  bool record_profile = false;

  /// Print every firing to stderr (debug).
  bool trace = false;
};

}  // namespace ctdf::machine
