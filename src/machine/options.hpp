// Machine configuration.
#pragma once

#include <cstdint>

namespace ctdf::machine {

/// Loop-control policy (the paper's Section 3 leaves loop control
/// unspecified — "there are many other possible approaches"; we
/// implement the two natural ones and benchmark them against each
/// other).
enum class LoopMode : std::uint8_t {
  /// The Monsoon-style suggestion from the paper: the loop-entry
  /// operator collects the complete set of circulating tokens, then
  /// allocates a frame (context) for the next iteration. Iterations are
  /// separated by a barrier at the loop entry.
  kBarrier,
  /// Tagged-token style: each circulating token independently enters
  /// the next iteration's context as soon as it arrives, so successive
  /// iterations overlap (software pipelining in the dataflow graph).
  kPipelined,
};

[[nodiscard]] inline const char* to_string(LoopMode m) {
  return m == LoopMode::kBarrier ? "barrier" : "pipelined";
}

/// How work is distributed over processing elements in multi-PE mode.
enum class Placement : std::uint8_t {
  /// Instructions hashed to PEs (static dataflow style): one node
  /// always fires on the same PE, iterations of a loop share PEs.
  kByNode,
  /// Contexts (frames) hashed to PEs (Monsoon style): an iteration's
  /// work stays local to one PE, different iterations spread out.
  kByContext,
};

[[nodiscard]] inline const char* to_string(Placement p) {
  return p == Placement::kByNode ? "by-node" : "by-context";
}

/// Which execution engine advances simulated time.
enum class EngineKind : std::uint8_t {
  /// The legacy serial engine: in-flight tokens live in an ordered
  /// map keyed by delivery cycle, frames are allocated per context and
  /// never freed. Reference semantics; `host_threads` > 1 shards its
  /// cycles across workers.
  kScan,
  /// Event-driven serial engine: a calendar (timing-wheel) queue keyed
  /// by cycle timestamp replaces the per-cycle map walk, with recycled
  /// token buckets and arena frames returned to a freelist when their
  /// iteration context retires. Produces byte-identical RunStats,
  /// stores, and error reports (enforced by
  /// tests/machine_event_equiv_test.cpp); `host_threads` is ignored.
  kEvent,
};

[[nodiscard]] inline const char* to_string(EngineKind e) {
  return e == EngineKind::kScan ? "scan" : "event";
}

struct MachineOptions {
  /// Execution engine (see EngineKind; results never depend on this).
  EngineKind engine = EngineKind::kScan;

  LoopMode loop_mode = LoopMode::kBarrier;

  /// Operators fired per cycle across the machine; 0 = unlimited
  /// (pure-dataflow limit — cycles then measure the critical path).
  unsigned width = 0;

  /// k-bounded loops (Culler-style throttling): with pipelined loop
  /// control, at most this many iterations of one loop invocation may
  /// be in flight; tokens bound for iteration i+k stall at the loop
  /// entry until iteration i retires (its last token is consumed).
  /// 0 = unbounded. Bounds the frame-store footprint that unbounded
  /// pipelining would otherwise need — the classic dataflow resource-
  /// management tradeoff. Ignored in barrier mode (which is k = 1 by
  /// construction).
  unsigned loop_bound = 0;

  /// Explicit multi-processor mode: number of processing elements, each
  /// firing at most one operator per cycle, with `network_latency`
  /// added to every token that crosses PEs. 0 = the abstract single
  /// pool governed by `width` alone (the model the paper reasons in).
  unsigned processors = 0;

  /// Work distribution across PEs (multi-processor mode only).
  Placement placement = Placement::kByContext;

  /// Extra cycles for a token whose producer and consumer live on
  /// different PEs (multi-processor mode only).
  unsigned network_latency = 2;

  /// Latency of non-memory operators, cycles.
  unsigned alu_latency = 1;

  /// Split-phase memory round-trip latency, cycles.
  unsigned mem_latency = 4;

  /// Host-side execution parallelism of the *simulator itself* (not a
  /// property of the simulated machine): number of worker threads that
  /// cooperatively advance one simulated cycle. 0 or 1 = the serial
  /// legacy engine. Any value produces results bit-identical to the
  /// serial engine — RunStats, final store, and reports never depend on
  /// host_threads (see doc/IMPLEMENTATION-NOTES.md, "Parallel engine &
  /// determinism model").
  unsigned host_threads = 0;

  /// Abort knob for runaway graphs.
  std::uint64_t max_cycles = 50'000'000;

  /// 0 = deterministic FIFO scheduling. Non-zero seeds randomize the
  /// choice of which ready operator fires next — used by the
  /// confluence property tests (the final store must not change).
  std::uint64_t scheduler_seed = 0;

  /// Record the ops-fired-per-cycle profile (memory proportional to
  /// cycles; off by default).
  bool record_profile = false;

  /// Print every firing to stderr (debug).
  bool trace = false;
};

}  // namespace ctdf::machine
