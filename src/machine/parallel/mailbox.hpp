// Async-engine shard state and mailbox types (parallel/engine_async.cpp).
//
// The async engine partitions iteration contexts over S shards (S a
// multiple of the worker count) with key-derived arena ids
// (ContextState::enable_arena), so `ctx % S` names the owning shard
// without a table lookup. A shard is possessed by exactly one worker
// at a time (it lives in one scheduler deque or is in-hand), so all of
// its state except the inbox is possessor-exclusive and needs no
// locking; the inbox is the only cross-worker channel and carries its
// own mutex. `pending_hint`/`has_ready` are advisory atomics so other
// workers can probe for work without taking the lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "machine/frames.hpp"

namespace ctdf::machine::detail {

/// A mailbox token: the shared Token plus a virtual timestamp (the
/// token's dataflow arrival time — latency-ladder critical path, the
/// serial engine's width=0 clock). vt is maintained only under
/// --check=integrity, where it feeds apply_mem's race-spacing rule so
/// the check behaves as it does serially even though the async engine
/// has no global cycle counter.
struct AToken {
  Token tok;
  std::uint64_t vt = 0;
};

/// A fireable entry on a shard's ready list (the async analogue of the
/// sync engine's QEntry, without the rank — free-running order is
/// possession order, deterministic-mode order is fixed by the epoch
/// discipline).
struct AEntry {
  std::uint32_t ctx = 0;
  dfg::NodeId node;
  bool immediate = false;
  bool requeued = false;
  bool refire = false;
  std::uint16_t port = 0;
  std::int64_t value = 0;
  std::uint64_t vt = 0;
};

/// One cross-shard emission, buffered by the firing path and routed by
/// the mode-specific flush (free: locked inbox push; deterministic:
/// per-shard out buffer merged at the epoch fence).
struct Emission {
  std::uint32_t dst = 0;  ///< destination shard
  AToken at;
};

/// One frame shard: a slice of the context space (ctx % S == id), its
/// own FrameStore indexed by local slot (ctx / S), and everything the
/// possessing worker needs to deliver and fire locally.
struct alignas(64) AsyncShard {
  explicit AsyncShard(const ExecProgram& ep) : frames(ep) {}

  // -- cross-worker mailbox ----------------------------------------------
  std::mutex inbox_mu;
  std::vector<AToken> inbox;                     ///< guarded by inbox_mu
  std::atomic<std::uint64_t> pending_hint{0};    ///< approx. inbox size
  std::atomic<bool> has_ready{false};            ///< leftover ready work

  // -- possessor-exclusive state -----------------------------------------
  FrameStore frames;        ///< local frames, indexed by ctx / S
  std::vector<AEntry> ready;
  /// Max input arrival vt per (local ctx, strict index) — the firing's
  /// vt is the max over its inputs (check mode only).
  std::unordered_map<std::uint64_t, std::uint64_t> slot_vt;
  /// Receiver-side duplicate filter (fault injection): both copies of a
  /// duplicated token hash to this shard (same ctx).
  std::unordered_set<std::uint64_t> dedup_seen;
  /// Per-shard fault-decision nonce stream: id = (shard+1)<<48 | n++.
  /// Deterministic in epoch mode (shard processing order is fixed).
  std::uint64_t nonce = 0;

  // Deterministic mode epoch-local buffers:
  std::vector<AToken> self_next;   ///< self-deliveries, next slack round
  /// Firings deferred to the epoch fence (fired serially by the
  /// coordinator in shard order): loop entries — their k-bound,
  /// frame-capacity, and context-allocation decisions depend on global
  /// order — and I-structure ops, whose fetch-vs-store arrival race
  /// would otherwise make deferred_reads a schedule artifact.
  std::vector<AEntry> fence_defer;
  std::vector<Emission> out;       ///< cross-shard sends, merged at fence

  // Possessor-exclusive counters, merged into RunStats at the end.
  std::uint64_t tokens_sent = 0;
  std::uint64_t matches = 0;
  std::uint64_t integrity_checks = 0;  ///< deliver-side (strict deliveries)
  std::uint64_t deferred_reads = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t retries = 0;
  std::uint64_t nacks_seen = 0;
};

}  // namespace ctdf::machine::detail
