// Token-ordering and firing-record types shared by the host-parallel
// engines (parallel/engine_sync.cpp, parallel/engine_async.cpp).
//
// The rank (batch, seq, intra) — batch = exchange round, seq = firing
// position in the cycle, intra = emission index within the firing —
// totally orders every token exactly as the serial engine's FIFO
// vectors do, which is what makes the sync engine's merge (and the
// async engine's deterministic mode) reproduce serial decisions.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "machine/frames.hpp"

namespace ctdf::machine::detail {

constexpr std::uint32_t kNoInvocation = UINT32_MAX;

/// (batch, seq, intra) — the total order on tokens; see file comment.
struct Rank {
  std::uint64_t batch = 0;
  std::uint32_t seq = 0;
  std::uint32_t intra = 0;

  friend bool operator<(const Rank& a, const Rank& b) {
    if (a.batch != b.batch) return a.batch < b.batch;
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.intra < b.intra;
  }
};

/// An in-flight token plus its delivery schedule.
struct PToken {
  Rank rank;
  std::uint64_t due = 0;  ///< absolute delivery cycle
  Token tok;
};

/// A ready operator, tagged with the rank of the token that completed
/// it so the coordinator can merge shard lists into serial FIFO order.
struct QEntry {
  Rank rank;
  std::uint32_t ctx = 0;
  dfg::NodeId node;
  bool immediate = false;
  bool requeued = false;
  std::uint16_t port = 0;
  std::int64_t value = 0;
  /// For immediate LoopExit entries: the invocation context, captured
  /// at delivery (CtxInfo is immutable after creation).
  std::uint32_t invocation = kNoInvocation;
  bool refire = false;  ///< see Token::refire
};

enum class FiringClass : std::uint8_t { kPure, kMem, kLoop, kEnd, kNack };

struct Firing {
  QEntry e;
  std::uint32_t seq = 0;
  FiringClass klass = FiringClass::kPure;
  // kNack only: NACKs absorbed and the summed backoff before refire.
  std::uint32_t nacks = 0;
  std::uint64_t nack_delay = 0;
  // Filled during parallel execution:
  std::uint32_t emitted = 0;       ///< tokens emitted into `primary`
  std::uint32_t primary = 0;       ///< context the emissions landed in
  std::uint32_t intra_used = 0;    ///< next free intra index
  std::uint64_t cell = 0;          ///< resolved memory cell (kMem)
  std::int64_t store_value = 0;    ///< value operand (stores)
  /// Deferred I-structure reads satisfied by this firing: extra live
  /// tokens per *other* context. Rare; usually empty.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> extra_live;
};

}  // namespace ctdf::machine::detail
