// The asynchronous work-stealing parallel engine (`--parallel=async`).
//
// Where the sync engine advances every worker through one simulated
// cycle in lock step (deliver / fire / exchange phases joined by
// barriers), this engine abandons the global clock. Iteration contexts
// are partitioned over S = 4·W shards by key-derived arena ids
// (ContextState::enable_arena, so `ctx % S` names the owning shard),
// each shard owns its slice of the frame store, and each worker (PE)
// runs a local clock over the shards it possesses, exchanging tokens
// through per-shard mailboxes.
//
// Two disciplines share one firing path:
//
//  * Deterministic mode (--deterministic, the default): shard s is
//    pinned to worker s % W, no stealing. Execution proceeds in
//    epochs: each worker drains its shards' inboxes and fires what
//    becomes ready, feeding shard-local emissions back for up to
//    `slack` sub-rounds (the bounded-slack window; --slack=0 derives
//    it from the latency ladder) and buffering cross-shard emissions.
//    At the epoch fence the coordinator routes the epoch's k-bound /
//    capacity wakes in sorted order, fires the fence-deferred ops —
//    loop entries, whose context-allocation, k-bound, and
//    back-pressure decisions need a global order, and I-structure
//    ops, whose fetch-vs-store arrival race would otherwise leak the
//    schedule into deferred_reads — and merges the out-buffers in
//    fixed shard order. Every cross-worker decision is thereby
//    fence-serialized, so two runs with the same options are
//    byte-identical.
//
//  * Free-running mode (--deterministic=0): no fences. Workers pop
//    shards from their own deque and steal from a victim's when their
//    resident set drains (parallel/scheduler.hpp); quiescence is
//    detected by a global outstanding-token counter incremented
//    before every mailbox push and decremented only after a token is
//    fully absorbed, so zero is stable and means no token is in
//    flight anywhere. The schedule — and the schedule-derived metrics
//    cycles, peak_ready, first_fire_cycle, per-PE counters — diverge;
//    the final store and the semantic counters do not.
//
// Error handling follows the sync engine's contract (see
// engine_parallel.hpp): fault-free error paths return nullopt and the
// caller re-runs serially for the reference diagnostics (here that
// includes the cycle cap — async epochs are not serial cycles); with
// fault injection enabled the engine reports directly. Shared mutable
// state is confined to three lock families — per-shard inbox mutexes,
// the context-state mutex (liveness, allocation, k-bound), and 64
// memory bank stripes (MemoryState / IntegrityState / DeferredMap are
// all cell-indexed, so a bank partition is race-free) — and no two of
// them are ever held together.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "machine/budget.hpp"
#include "machine/engine_parallel.hpp"
#include "machine/faults.hpp"
#include "machine/fire.hpp"
#include "machine/frames.hpp"
#include "machine/integrity.hpp"
#include "machine/machine.hpp"
#include "machine/options.hpp"
#include "machine/parallel/mailbox.hpp"
#include "machine/parallel/pool.hpp"
#include "machine/parallel/scheduler.hpp"
#include "support/assert.hpp"
#include "support/hash.hpp"

namespace ctdf::machine::detail {
namespace {

class AsyncEngine {
 public:
  AsyncEngine(const ExecProgram& ep, std::size_t memory_cells,
              const MachineOptions& opt,
              const std::vector<IStructureRegion>& istructures,
              const std::vector<SharedRegion>& shared)
      : ep_(ep),
        opt_(opt),
        nworkers_(std::min(opt.host_threads, 256u)),
        nshards_(4 * std::min(opt.host_threads, 256u)),
        slack_(opt.slack ? opt.slack : opt.alu_latency + opt.mem_latency),
        det_(opt.deterministic),
        sched_(nworkers_, nshards_),
        workers_(nworkers_) {
    if (fault_active(opt_)) fault_.emplace(opt_.faults);
    if (opt_.budget.armed()) budget_.emplace(opt_.budget);
    mem_.init(memory_cells, istructures);
    deferred_.resize(kBanks);
    if (opt_.check == CheckMode::kIntegrity) {
      check_ = true;
      integ_.emplace();
      integ_->init(mem_.store.cells.size(), opt_.mem_latency,
                   opt_.test_dup_response, shared);
    }
    cs_.enable_arena(nshards_);
    for (unsigned s = 0; s < nshards_; ++s) {
      shards_.emplace_back(ep_);
      if (check_) shards_.back().frames.enable_checking();
    }
    for (unsigned w = 0; w < nworkers_; ++w) workers_[w].id = w;
    stats_.fired_by_kind.assign(dfg::kNumOpKinds, 0);
    stats_.first_fire_cycle.assign(ep_.num_ops(), UINT64_MAX);
  }

  std::optional<RunResult> run() {
    boot();
    if (det_)
      run_det();
    else
      run_free();
    return finalize();
  }

 private:
  static constexpr unsigned kBanks = 64;

  struct Worker {
    unsigned id = 0;
    RunStats::PeCounters pe;
    std::vector<Emission> emit_buf;  ///< staged emissions of one firing
    std::vector<AToken> wake_buf;    ///< k-bound / capacity wake tokens
    /// (ctx, tokens) of deferred-reader emissions pending add_live.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> live_buf;
    std::vector<std::int64_t> in_buf;
    std::uint64_t fired_epoch = 0;  ///< profile accumulator (det mode)
    std::uint64_t peak_batch = 0;   ///< free-mode peak_ready estimate
    std::uint64_t tokens_local = 0;  ///< free-mode budget accumulator
  };

  [[nodiscard]] std::uint32_t shard_of(std::uint32_t ctx) const {
    return ctx % nshards_;
  }
  [[nodiscard]] static unsigned bank_of(std::uint64_t cell) {
    return static_cast<unsigned>((cell >> 3) % kBanks);
  }
  [[nodiscard]] unsigned pe_of(std::uint32_t ctx, dfg::NodeId node) const {
    if (opt_.processors == 0) return 0;
    const std::uint64_t key =
        opt_.placement == Placement::kByNode ? node.value() : ctx;
    return support::golden_bucket(key, opt_.processors);
  }
  /// Per-shard fault-decision id stream: deterministic in epoch mode
  /// because each shard's deliver/fire sequence is fence-serialized.
  [[nodiscard]] static std::uint64_t fault_id(AsyncShard& sh,
                                              std::uint32_t sid) {
    return (static_cast<std::uint64_t>(sid + 1) << 48) | sh.nonce++;
  }
  /// Deterministic error precedence, det mode: (epoch, shard) — within
  /// one shard's serial processing the first error calls first, and the
  /// min key across shards and epochs wins globally. Free mode: first
  /// writer wins.
  [[nodiscard]] std::uint64_t err_key(std::uint32_t sid) const {
    return det_ ? (epoch_ << 32) | sid : 0;
  }

  void record_error(RunError e, std::uint64_t key) {
    {
      std::lock_guard lk(err_mu_);
      if (!has_err_ || key < err_key_) {
        err_ = std::move(e);
        err_key_ = key;
        has_err_ = true;
      }
    }
    // Free mode aborts in place; det mode finishes the epoch — its work
    // set is already fixed, so completing it keeps the counters and the
    // winning error deterministic — and stops at the fence.
    if (!det_) abort_.store(true, std::memory_order_release);
    error_seen_.store(true, std::memory_order_release);
  }

  void boot() {
    const dfg::NodeId s = ep_.start();
    const ExecOp& start = ep_.op(s);
    ++stats_.ops_fired;
    ++stats_.fired_by_kind[static_cast<std::size_t>(start.kind)];
    if (stats_.first_fire_cycle[s.index()] == UINT64_MAX)
      stats_.first_fire_cycle[s.index()] = 0;
    // Boot emissions model program loading, not network traffic: exempt
    // from fault injection (same rule as the serial engine).
    booting_ = true;
    Worker& w = workers_[0];
    std::uint32_t n = 0;
    for (std::uint16_t p = 0; p < start.num_outputs; ++p)
      n += emit(w, shards_[0], 0, /*fire_ctx=*/0, /*dst_ctx=*/0, s, p,
                ep_.start_values()[p], /*vt=*/0, /*latency=*/0);
    booting_ = false;
    cs_.add_live(0, n);
    for (Emission& em : w.emit_buf) {
      outstanding_.fetch_add(1, std::memory_order_relaxed);
      shards_[em.dst].inbox.push_back(std::move(em.at));
      shards_[em.dst].pending_hint.fetch_add(1, std::memory_order_release);
    }
    w.emit_buf.clear();
  }

  // ---------------------------------------------------------------------
  // Delivery: file one mailbox token into its shard. Returns false when
  // the token was absorbed without producing ready work (free mode
  // decrements the outstanding counter for it).
  bool deliver(AsyncShard& sh, std::uint32_t sid, const AToken& at) {
    const Token& t = at.tok;
    if (fault_) {
      if (t.refire) {
        // A NACK-less re-ready is impossible here (async absorbs NACK
        // backoff inline); a refire token is a capacity-stalled barrier
        // entry whose operands are still matched in the frame.
        sh.ready.push_back(
            AEntry{t.ctx, t.node, false, false, true, 0, 0, at.vt});
        return true;
      }
      if (t.seq != 0) {
        const auto [it, inserted] = sh.dedup_seen.insert(t.seq);
        if (!inserted) {
          sh.dedup_seen.erase(it);
          ++sh.duplicates_dropped;
          return false;
        }
      }
    }
    ++sh.tokens_sent;
    const ExecOp& op = ep_.op(t.node);
    if (non_strict(op, opt_.loop_mode)) {
      sh.ready.push_back(AEntry{t.ctx, t.node, true, t.requeued, false,
                                t.port, t.value, at.vt});
      return true;
    }
    if (check_) ++sh.integrity_checks;
    const std::uint32_t local = t.ctx / nshards_;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(local) << 32) | op.strict_index;
    switch (sh.frames.deliver(local, op, t.port, t.value)) {
      case FrameStore::Deliver::kTagOccupied:
        record_error(
            integrity_double_write_error(ep_, t.node, t.port, t.ctx, at.vt),
            err_key(sid));
        return false;
      case FrameStore::Deliver::kTagOverrun:
        record_error(
            integrity_read_empty_error(ep_, t.node, t.port, t.ctx, at.vt),
            err_key(sid));
        return false;
      case FrameStore::Deliver::kCollision:
        record_error(
            RunError{ErrorCode::kSlotCollision,
                     "token collision at node " +
                         std::to_string(t.node.value()) + " (" +
                         to_string(op.kind) + " '" +
                         ep_.label(t.node.index()) + "') port " +
                         std::to_string(t.port) + " in context " +
                         std::to_string(t.ctx) + " at cycle " +
                         std::to_string(at.vt),
                     {}},
            err_key(sid));
        return false;
      case FrameStore::Deliver::kCompleted: {
        ++sh.matches;
        std::uint64_t vt = at.vt;
        if (check_) {
          // The firing's virtual time is the max over its inputs'
          // arrival times (what the serial clock would say).
          if (const auto it = sh.slot_vt.find(key); it != sh.slot_vt.end()) {
            vt = std::max(vt, it->second);
            sh.slot_vt.erase(it);
          }
        }
        sh.ready.push_back(
            AEntry{t.ctx, t.node, false, false, false, 0, 0, vt});
        return true;
      }
      case FrameStore::Deliver::kStored:
        ++sh.matches;
        if (check_) {
          auto& slot = sh.slot_vt[key];
          slot = std::max(slot, at.vt);
        }
        return false;
    }
    return false;
  }

  // ---------------------------------------------------------------------
  // Emission: fan `value` out of (node, port) toward dst_ctx, staged in
  // w.emit_buf for the mode-specific flush. Returns the number of
  // *logical* tokens produced (one per destination arc; a
  // fault-injected duplicate shares its original's liveness and dedup
  // sequence). The caller adds them live before consuming the firing's
  // inputs, mirroring the serial emit-then-consume order.
  std::uint32_t emit(Worker& w, AsyncShard& sh, std::uint32_t sid,
                     std::uint32_t fire_ctx, std::uint32_t dst_ctx,
                     dfg::NodeId node, std::uint16_t port, std::int64_t value,
                     std::uint64_t vt, std::uint64_t latency) {
    const unsigned from_pe = pe_of(fire_ctx, node);
    std::uint32_t n = 0;
    for (const ExecDest& d : ep_.dests(node, port)) {
      std::uint64_t hop = 0;
      if (opt_.processors > 0 && pe_of(dst_ctx, d.node) != from_pe)
        hop = opt_.network_latency;
      AToken at{Token{dst_ctx, d.node, d.port, value}, vt + latency + hop};
      if (fault_ && hop > 0 && !booting_) {
        const FaultState::Transit f = fault_->transit(fault_id(sh, sid));
        if (f.exhausted) {
          watchdog_.fetch_add(1, std::memory_order_relaxed);
          record_error(
              RunError{ErrorCode::kRetryExhausted,
                       "retry budget exhausted: token for node '" +
                           ep_.label(d.node.index()) + "' dropped " +
                           std::to_string(opt_.faults.max_attempts) +
                           " time(s) in the network",
                       {}},
              err_key(sid));
        }
        sh.faults_injected += f.drops + f.jitters + (f.duplicated ? 1 : 0);
        sh.retries += f.drops;
        at.vt += f.delay;
        if (f.duplicated) {
          at.tok.seq = fault_->seq_for(fault_id(sh, sid));
          AToken dup = at;
          dup.vt = vt + latency + hop + f.dup_delay;
          w.emit_buf.push_back(Emission{shard_of(dst_ctx), std::move(dup)});
        }
      }
      w.emit_buf.push_back(Emission{shard_of(dst_ctx), std::move(at)});
      ++n;
    }
    return n;
  }

  /// Firing-side counter block; requires ctx_mu_.
  void count_fire_locked(const ExecOp& op, dfg::NodeId node,
                         std::uint64_t checks) {
    ++stats_.ops_fired;
    ++stats_.fired_by_kind[static_cast<std::size_t>(op.kind)];
    stats_.integrity_checks += checks;
    std::uint64_t& ff = stats_.first_fire_cycle[node.index()];
    if (ff == UINT64_MAX) ff = det_ ? epoch_ : 0;
  }

  /// Token-liveness consume; requires ctx_mu_. Wakes (k-bound stalled
  /// forwardings, capacity-blocked entries) land in w.wake_buf — the
  /// free-running flush pushes them immediately, the deterministic
  /// fence routes them in sorted order.
  void consume_locked(Worker& w, std::uint32_t ctx, std::uint32_t n) {
    const bool retired =
        cs_.consume(ctx, n, [&](std::vector<AToken>&& stalled) {
          for (AToken& t : stalled) w.wake_buf.push_back(std::move(t));
        });
    if (retired && !cap_stalled_.empty()) {
      // A frame was freed: wake everything blocked on capacity. The
      // first to re-fire claims it; the rest re-stall.
      for (AToken& t : cap_stalled_) w.wake_buf.push_back(std::move(t));
      cap_stalled_.clear();
    }
  }

  // ---------------------------------------------------------------------
  // Firing. Mirrors SerialEngine::fire step for step (NACK roll, then
  // capacity back-pressure, then counters / emissions /
  // consume-after-emit). The one structural difference: a NACKed memory
  // firing absorbs its backoff inline — the serial engine parks a
  // refire token instead, but a rejected attempt advances no counters
  // there either, so firing immediately is counter-identical and the
  // backoff surfaces only in the virtual timestamp.
  void fire_entry(Worker& w, AsyncShard& sh, std::uint32_t sid,
                  const AEntry& e) {
    const ExecOp& op = ep_.op(e.node);
    const std::uint64_t alu = opt_.alu_latency;
    const std::uint64_t memlat = opt_.mem_latency;
    std::uint64_t vt = e.vt;
    if (fault_) {
      if ((op.flags & kExecMem) && !e.refire) {
        const FaultState::Nack n = fault_->nack(fault_id(sh, sid));
        if (n.exhausted) {
          watchdog_.fetch_add(1, std::memory_order_relaxed);
          record_error(
              RunError{ErrorCode::kRetryExhausted,
                       "retry budget exhausted: memory NACKed node '" +
                           ep_.label(e.node.index()) + "' " +
                           std::to_string(opt_.faults.max_attempts) +
                           " time(s)",
                       {}},
              err_key(sid));
          return;
        }
        if (n.nacks > 0) {
          sh.nacks_seen += n.nacks;
          sh.retries += n.nacks;
          sh.faults_injected += n.nacks;
          vt += n.delay;
        }
      }
      if (opt_.frame_capacity > 0 && op.kind == dfg::OpKind::kLoopEntry) {
        std::lock_guard lk(ctx_mu_);
        if (cs_.would_allocate(op.loop, e.ctx) &&
            cs_.live_contexts() >= opt_.frame_capacity) {
          // Back-pressure, not a firing — no counters advance beyond
          // the stall count.
          ++stats_.backpressure_stalls;
          if (e.immediate) {
            cap_stalled_.push_back(
                AToken{Token{e.ctx, e.node, e.port, e.value, true}, vt});
            if (!e.requeued) consume_locked(w, e.ctx, 1);
          } else {
            Token t{e.ctx, e.node, 0, 0};
            t.refire = true;
            cap_stalled_.push_back(AToken{t, vt});
          }
          return;
        }
      }
    }

    // Non-strict firings: one token in, forwarded.
    if (e.immediate) {
      switch (op.kind) {
        case dfg::OpKind::kMerge: {
          const std::uint32_t n =
              emit(w, sh, sid, e.ctx, e.ctx, e.node, 0, e.value, vt, alu);
          std::lock_guard lk(ctx_mu_);
          count_fire_locked(op, e.node, 0);
          cs_.add_live(e.ctx, n);
          consume_locked(w, e.ctx, 1);
          return;
        }
        case dfg::OpKind::kLoopExit: {
          std::uint32_t inv;
          {
            // info() returns into a vector the allocator resizes.
            std::lock_guard lk(ctx_mu_);
            const CtxInfo& cur = cs_.info(e.ctx);
            CTDF_ASSERT_MSG(cur.loop.valid(),
                            "loop exit fired outside an iteration context");
            inv = cur.invocation;
          }
          const std::uint32_t n =
              emit(w, sh, sid, e.ctx, inv, e.node, e.port, e.value, vt, alu);
          std::lock_guard lk(ctx_mu_);
          count_fire_locked(op, e.node, 0);
          cs_.add_live(inv, n);
          consume_locked(w, e.ctx, 1);
          return;
        }
        case dfg::OpKind::kLoopEntry: {
          std::uint32_t next;
          {
            std::lock_guard lk(ctx_mu_);
            // The serial engine counts the firing before the k-bound
            // check (a throttled forwarding is a firing; a
            // capacity-stalled one is not).
            count_fire_locked(op, e.node, 0);
            if (auto* inst = cs_.bound_block(op.loop, e.ctx, opt_.loop_bound)) {
              inst->stalled.push_back(
                  AToken{Token{e.ctx, e.node, e.port, e.value, true}, vt});
              ++stats_.throttle_stalls;
              if (!e.requeued) consume_locked(w, e.ctx, 1);
              return;
            }
            next = cs_.context_for_iteration(op.loop, e.ctx, stats_);
          }
          const std::uint32_t n =
              emit(w, sh, sid, e.ctx, next, e.node, e.port, e.value, vt, alu);
          std::lock_guard lk(ctx_mu_);
          cs_.add_live(next, n);
          if (!e.requeued) consume_locked(w, e.ctx, 1);
          return;
        }
        default:
          CTDF_UNREACHABLE("bad non-strict op");
      }
    }

    // Strict firings: consume the local frame-slot range. A refire
    // entry re-enters with its operands still matched.
    const std::uint32_t local = e.ctx / nshards_;
    CTDF_ASSERT(sh.frames.has(local, op) &&
                sh.frames.remaining(local, op) == 0);
    const std::int64_t* slots = sh.frames.inputs(local, op);
    w.in_buf.assign(slots, slots + op.num_inputs);
    const int missing = sh.frames.release(local, op);
    std::uint64_t checks = 0;
    if (check_) {
      ++checks;
      if (missing >= 0) {
        std::lock_guard lk(ctx_mu_);
        count_fire_locked(op, e.node, checks);
        record_error(
            integrity_read_empty_error(ep_, e.node, missing, e.ctx, vt),
            err_key(sid));
        return;
      }
    }
    const std::int64_t* in = w.in_buf.data();

    if (op.flags & kExecMem) {
      const MemAccess a = resolve_mem(op, in, mem_.store.cells.size());
      if (check_) ++checks;
      std::uint32_t n_own = 0;
      w.live_buf.clear();
      MemCheck mc;
      {
        std::lock_guard bank(bank_mu_[bank_of(a.cell)]);
        mc = apply_mem(
            op, e.ctx, e.node, a, mem_, deferred_[bank_of(a.cell)],
            integ_ ? &*integ_ : nullptr, vt,
            [&](std::uint16_t port, std::int64_t value) {
              n_own += emit(w, sh, sid, e.ctx, e.ctx, e.node, port, value, vt,
                            memlat);
            },
            [&](std::uint32_t dctx, dfg::NodeId dnode, std::int64_t value) {
              const std::uint32_t k =
                  emit(w, sh, sid, e.ctx, dctx, dnode, 0, value, vt, memlat);
              w.live_buf.emplace_back(dctx, k);
            },
            [&] { ++sh.deferred_reads; });
      }
      {
        std::lock_guard lk(ctx_mu_);
        count_fire_locked(op, e.node, checks);
        if (op.flags & kExecWrite)
          ++stats_.mem_writes;
        else
          ++stats_.mem_reads;
        cs_.add_live(e.ctx, n_own);
        for (const auto& [dctx, k] : w.live_buf) cs_.add_live(dctx, k);
        consume_locked(w, e.ctx, op.consumed_inputs);
      }
      switch (mc.kind) {
        case MemCheck::Kind::kOk:
          break;
        case MemCheck::Kind::kIStoreDoubleWrite:
          record_error(RunError{ErrorCode::kIStoreDoubleWrite,
                                "I-structure double write to cell " +
                                    std::to_string(a.cell) + " by node '" +
                                    ep_.label(e.node.index()) + "'",
                                {}},
                       err_key(sid));
          break;
        case MemCheck::Kind::kMemRace:
          record_error(
              integrity_mem_race_error(ep_, e.node, mc, vt, opt_.mem_latency),
              err_key(sid));
          break;
        case MemCheck::Kind::kOrphanResponse:
          record_error(integrity_orphan_error(ep_, mc), err_key(sid));
          break;
      }
      return;
    }

    if (op.kind == dfg::OpKind::kLoopEntry) {
      // Barrier mode: the full circulating set starts the next
      // iteration in a freshly allocated context.
      std::uint32_t next;
      {
        std::lock_guard lk(ctx_mu_);
        count_fire_locked(op, e.node, checks);
        next = cs_.context_for_iteration(op.loop, e.ctx, stats_);
      }
      std::uint32_t n = 0;
      for (std::uint16_t p = 0; p < op.num_inputs; ++p)
        n += emit(w, sh, sid, e.ctx, next, e.node, p, in[p], vt, alu);
      std::lock_guard lk(ctx_mu_);
      cs_.add_live(next, n);
      consume_locked(w, e.ctx, op.consumed_inputs);
      return;
    }
    if (op.kind == dfg::OpKind::kEnd) {
      {
        std::lock_guard lk(ctx_mu_);
        count_fire_locked(op, e.node, checks);
        consume_locked(w, e.ctx, op.consumed_inputs);
      }
      completed_.store(true, std::memory_order_release);
      return;
    }
    std::uint32_t n = 0;
    fire_pure(ep_, op, in, [&](std::uint16_t port, std::int64_t value) {
      n += emit(w, sh, sid, e.ctx, e.ctx, e.node, port, value, vt, alu);
    });
    std::lock_guard lk(ctx_mu_);
    count_fire_locked(op, e.node, checks);
    cs_.add_live(e.ctx, n);
    consume_locked(w, e.ctx, op.consumed_inputs);
  }

  // ---------------------------------------------------------------------
  // Deterministic (epoch) mode.

  /// Routes one firing's staged emissions: shard-local ones feed the
  /// next slack sub-round, cross-shard ones wait for the fence.
  void flush_det(Worker& w, AsyncShard& sh, std::uint32_t sid) {
    for (Emission& em : w.emit_buf) {
      if (em.dst == sid) {
        sh.self_next.push_back(std::move(em.at));
      } else {
        ++w.pe.tokens_exchanged;
        sh.out.push_back(std::move(em));
      }
    }
    w.emit_buf.clear();
  }

  bool process_shard_det(Worker& w, std::uint32_t sid) {
    AsyncShard& sh = shards_[sid];
    std::vector<AToken> cur;
    {
      std::lock_guard lk(sh.inbox_mu);
      cur.swap(sh.inbox);
    }
    if (cur.empty() && sh.ready.empty()) return false;
    unsigned round = 0;
    for (;;) {
      for (const AToken& at : cur) deliver(sh, sid, at);
      for (std::size_t i = 0; i < sh.ready.size(); ++i) {
        const AEntry e = sh.ready[i];
        const dfg::OpKind k = ep_.op(e.node).kind;
        if (k == dfg::OpKind::kLoopEntry || k == dfg::OpKind::kIStore ||
            k == dfg::OpKind::kIFetch) {
          sh.fence_defer.push_back(e);
          continue;
        }
        fire_entry(w, sh, sid, e);
        ++w.fired_epoch;
        flush_det(w, sh, sid);
      }
      sh.ready.clear();
      if (++round > slack_ || sh.self_next.empty()) break;
      cur = std::move(sh.self_next);
      sh.self_next.clear();
    }
    // Slack window exhausted: leftovers rejoin through the fence.
    for (AToken& at : sh.self_next)
      sh.out.push_back(Emission{sid, std::move(at)});
    sh.self_next.clear();
    return true;
  }

  void epoch_worker(unsigned wid) {
    Worker& w = workers_[wid];
    bool any = false;
    for (std::uint32_t s = wid; s < nshards_; s += nworkers_)
      any = process_shard_det(w, s) || any;
    ++w.pe.epochs;
    if (!any) ++w.pe.idle_waits;
  }

  /// The epoch fence, run by the coordinator with all workers parked.
  /// Returns true while tokens remain for the next epoch.
  bool fence() {
    Worker& c = workers_[0];
    // 1. Route the epoch's wake tokens in sorted order: *which* worker
    // buffered a wake is a race (a context's retiring consume can run
    // on any worker), but the multiset of wakes per epoch is not.
    std::vector<AToken> wakes;
    for (Worker& w : workers_) {
      wakes.insert(wakes.end(), w.wake_buf.begin(), w.wake_buf.end());
      w.wake_buf.clear();
    }
    std::sort(wakes.begin(), wakes.end(), [](const AToken& a, const AToken& b) {
      const Token& x = a.tok;
      const Token& y = b.tok;
      return std::make_tuple(x.ctx, x.node.value(), x.port, x.value,
                             x.requeued, x.refire, x.seq, a.vt) <
             std::make_tuple(y.ctx, y.node.value(), y.port, y.value,
                             y.requeued, y.refire, y.seq, b.vt);
    });
    for (AToken& t : wakes)
      shards_[shard_of(t.tok.ctx)].inbox.push_back(std::move(t));
    // 2. Fire the fence-deferred ops serially — shard order, FIFO
    // within a shard. Their emissions (and any wakes their consumes
    // trigger) route straight into the next epoch's inboxes.
    for (std::uint32_t s = 0; s < nshards_; ++s) {
      AsyncShard& sh = shards_[s];
      if (sh.fence_defer.empty()) continue;
      std::vector<AEntry> defer = std::move(sh.fence_defer);
      sh.fence_defer.clear();
      for (const AEntry& e : defer) {
        fire_entry(c, sh, s, e);
        ++c.fired_epoch;
        for (Emission& em : c.emit_buf) {
          if (em.dst != s) ++c.pe.tokens_exchanged;
          shards_[em.dst].inbox.push_back(std::move(em.at));
        }
        c.emit_buf.clear();
        for (AToken& t : c.wake_buf)
          shards_[shard_of(t.tok.ctx)].inbox.push_back(std::move(t));
        c.wake_buf.clear();
      }
    }
    // 3. Merge the cross-shard out-buffers in fixed source order.
    for (std::uint32_t s = 0; s < nshards_; ++s) {
      for (Emission& em : shards_[s].out)
        shards_[em.dst].inbox.push_back(std::move(em.at));
      shards_[s].out.clear();
    }
    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s < nshards_; ++s)
      total += shards_[s].inbox.size();
    stats_.peak_ready = std::max(stats_.peak_ready, total);
    std::uint32_t fired = 0;
    for (Worker& w : workers_) {
      fired += static_cast<std::uint32_t>(w.fired_epoch);
      w.fired_epoch = 0;
    }
    if (opt_.record_profile && epoch_ < (1u << 22)) {
      if (stats_.profile.size() <= epoch_)
        stats_.profile.resize(epoch_ + 1, 0);
      stats_.profile[epoch_] = fired;
    }
    return total > 0;
  }

  void run_det() {
    Pool pool(nworkers_);
    for (;;) {
      // Budget poll between epochs: workers are joined at the fence, so
      // shard counters sum race-free. Budget errors are reported here
      // and returned directly from finalize() — a serial rerun would
      // restart with a fresh deadline and could succeed, masking the
      // expiry.
      if (budget_) {
        if (budget_->max_tokens() != 0) {
          std::uint64_t tokens = 0;
          for (const AsyncShard& sh : shards_) tokens += sh.tokens_sent;
          if (budget_->tokens_exceeded(tokens)) {
            record_error(budget_->token_error(), (epoch_ << 32) | nshards_);
            break;
          }
        }
        if (budget_->deadline_exceeded_now()) {
          record_error(budget_->deadline_error(), (epoch_ << 32) | nshards_);
          break;
        }
      }
      if (epoch_ >= opt_.budget.max_cycles) {
        record_error(RunError{ErrorCode::kCycleCap,
                              "epoch cap exceeded (possible livelock or "
                              "non-terminating program)",
                              {}},
                     (epoch_ << 32) | nshards_);
        break;
      }
      pool.run([this](unsigned wid) { epoch_worker(wid); });
      const bool more = fence();
      ++epoch_;
      stats_.cycles = epoch_;
      if (error_seen_.load(std::memory_order_acquire)) break;
      // Quiescent with End fired = success; without = deadlock
      // (finalize sorts it out). The engine keeps draining after End so
      // leftover dead chains deliver — the differential comparator's
      // store-only fallback covers the firing-count divergence.
      if (!more) break;
    }
  }

  // ---------------------------------------------------------------------
  // Free-running mode.

  [[nodiscard]] bool shard_has_work(std::uint32_t s) const {
    return shards_[s].pending_hint.load(std::memory_order_acquire) > 0 ||
           shards_[s].has_ready.load(std::memory_order_acquire);
  }

  /// Pushes one firing's staged emissions and wakes into their shard
  /// inboxes, incrementing the outstanding counter *before* each push
  /// so it can never transiently read zero while a token is in flight.
  void flush_free(Worker& w, std::uint32_t cur_sid) {
    const auto push = [&](std::uint32_t dst, AToken&& at) {
      outstanding_.fetch_add(1, std::memory_order_seq_cst);
      {
        std::lock_guard lk(shards_[dst].inbox_mu);
        shards_[dst].inbox.push_back(std::move(at));
      }
      shards_[dst].pending_hint.fetch_add(1, std::memory_order_release);
      if (dst != cur_sid) ++w.pe.tokens_exchanged;
    };
    for (Emission& em : w.emit_buf) push(em.dst, std::move(em.at));
    w.emit_buf.clear();
    for (AToken& t : w.wake_buf) push(shard_of(t.tok.ctx), std::move(t));
    w.wake_buf.clear();
  }

  /// Returns the number of tokens taken off the shard inbox this batch
  /// (the free-mode budget approximation of tokens sent).
  std::size_t process_shard_free(Worker& w, std::uint32_t sid) {
    AsyncShard& sh = shards_[sid];
    std::vector<AToken> cur;
    {
      std::lock_guard lk(sh.inbox_mu);
      cur.swap(sh.inbox);
    }
    if (!cur.empty())
      sh.pending_hint.fetch_sub(cur.size(), std::memory_order_release);
    w.peak_batch = std::max<std::uint64_t>(w.peak_batch, cur.size());
    std::uint64_t absorbed = 0;
    for (const AToken& at : cur)
      if (!deliver(sh, sid, at)) ++absorbed;
    for (std::size_t i = 0;
         i < sh.ready.size() && !abort_.load(std::memory_order_relaxed); ++i) {
      const AEntry e = sh.ready[i];
      fire_entry(w, sh, sid, e);
      flush_free(w, sid);
      // The fired entry's own outstanding credit dies only after its
      // outputs are pushed: a parked forwarding (k-bound / capacity) is
      // uncounted while parked and re-counted when a retirement's wake
      // pushes it back.
      outstanding_.fetch_sub(1, std::memory_order_seq_cst);
    }
    sh.ready.clear();
    if (absorbed) outstanding_.fetch_sub(absorbed, std::memory_order_seq_cst);
    sh.has_ready.store(false, std::memory_order_release);
    return cur.size();
  }

  void free_worker(unsigned wid) {
    Worker& w = workers_[wid];
    for (;;) {
      if (abort_.load(std::memory_order_acquire)) return;
      bool stole = false;
      const std::uint32_t sid = sched_.acquire(
          wid, [this](std::uint32_t s) { return shard_has_work(s); }, stole);
      if (sid == ShardScheduler::kNoShard) {
        ++w.pe.idle_waits;
        // outstanding_ counts every in-flight (non-parked) token and
        // increments strictly precede mailbox pushes, so zero is
        // stable: no worker holds anything that could create work.
        // Parked tokens need a retirement to wake, which needs an
        // in-flight token — zero with parked work is a genuine deadlock
        // (or, after End, the parked leftovers the serial engine also
        // ignores at completion).
        if (outstanding_.load(std::memory_order_seq_cst) == 0) return;
        std::this_thread::yield();
        continue;
      }
      if (stole) ++w.pe.steals;
      w.tokens_local += process_shard_free(w, sid);
      sched_.release(wid, sid);
      ++w.pe.epochs;
      // Per-batch budget poll, shared-write-free on the token side:
      // the worker drains its local count into tokens_approx_ and
      // checks the total, so the ceiling overshoots by at most one
      // batch per worker. record_error sets abort_, stopping the fleet.
      if (budget_) {
        if (budget_->max_tokens() != 0) {
          if (w.tokens_local != 0) {
            tokens_approx_.fetch_add(w.tokens_local,
                                     std::memory_order_relaxed);
            w.tokens_local = 0;
          }
          if (budget_->tokens_exceeded(
                  tokens_approx_.load(std::memory_order_relaxed))) {
            record_error(budget_->token_error(), 0);
            return;
          }
        }
        if (budget_->deadline_exceeded_now()) {
          record_error(budget_->deadline_error(), 0);
          return;
        }
      }
      if (batches_total_.fetch_add(1, std::memory_order_relaxed) + 1 >
          opt_.budget.max_cycles) {
        record_error(RunError{ErrorCode::kCycleCap,
                              "batch cap exceeded (possible livelock or "
                              "non-terminating program)",
                              {}},
                     0);
        return;
      }
    }
  }

  void run_free() {
    Pool pool(nworkers_);
    pool.run([this](unsigned wid) { free_worker(wid); });
    stats_.cycles = batches_total_.load(std::memory_order_relaxed);
    for (Worker& w : workers_)
      stats_.peak_ready = std::max(stats_.peak_ready, w.peak_batch);
  }

  // ---------------------------------------------------------------------

  std::optional<RunResult> finalize() {
    for (AsyncShard& sh : shards_) {
      stats_.tokens_sent += sh.tokens_sent;
      stats_.matches += sh.matches;
      stats_.integrity_checks += sh.integrity_checks;
      stats_.deferred_reads += sh.deferred_reads;
      stats_.duplicates_dropped += sh.duplicates_dropped;
      stats_.faults_injected += sh.faults_injected;
      stats_.retries += sh.retries;
      stats_.nacks_seen += sh.nacks_seen;
    }
    stats_.per_pe.reserve(nworkers_);
    for (Worker& w : workers_) {
      stats_.steals += w.pe.steals;
      stats_.epochs += w.pe.epochs;
      stats_.idle_waits += w.pe.idle_waits;
      stats_.tokens_exchanged += w.pe.tokens_exchanged;
      stats_.per_pe.push_back(w.pe);
    }
    stats_.watchdog_triggers +=
        watchdog_.load(std::memory_order_relaxed);
    const bool done = completed_.load(std::memory_order_acquire);
    if (has_err_ || !done) {
      // Fault-free error paths — including the cycle cap, whose async
      // epoch count is not the serial cycle count — delegate to the
      // serial rerun for the reference diagnostics. Budget errors never
      // delegate: the rerun would start a fresh deadline (and recount
      // tokens from zero), so it could succeed and silently erase the
      // expiry this run just diagnosed.
      const bool budget_err =
          has_err_ && (err_.code == ErrorCode::kDeadlineExceeded ||
                       err_.code == ErrorCode::kTokenBudget);
      if (!opt_.faults.enabled() && !budget_err) return std::nullopt;
      if (has_err_)
        stats_.fail(std::move(err_));
      else
        stats_.fail(deadlock_error());
      stats_.completed = false;
      return RunResult{std::move(stats_), std::move(mem_.store)};
    }
    // The engine drained to quiescence after End, so every token the
    // serial engine would count as leftover has been delivered (and,
    // where it completed a match, fired): leftover_tokens is
    // structurally zero, and the end-of-run pending-store scan is
    // vacuous for the same reason. The differential comparator falls
    // back to store-only comparison whenever the serial run reports
    // leftovers.
    stats_.completed = true;
    return RunResult{std::move(stats_), std::move(mem_.store)};
  }

  [[nodiscard]] RunError deadlock_error() {
    std::size_t slots = 0;
    for (AsyncShard& sh : shards_) slots += sh.frames.live_slots();
    std::size_t deferred_cells = 0;
    for (const DeferredMap& d : deferred_) deferred_cells += d.size();
    const std::size_t stalled = cs_.stalled_total();
    RunError err;
    std::string detail;
    if (deferred_cells > 0)
      detail += "  plus " + std::to_string(deferred_cells) +
                " I-structure cell(s) with deferred readers\n";
    if (stalled > 0)
      detail += "  plus " + std::to_string(stalled) +
                " forwarding(s) stalled by the loop bound\n";
    detail += "  loop state: " + std::to_string(cs_.live_contexts()) +
              " live iteration context(s), " +
              std::to_string(stats_.throttle_stalls) +
              " k-bound throttle stall(s), " +
              std::to_string(cap_stalled_.size()) +
              " forwarding(s) blocked on frame capacity";
    if (!cap_stalled_.empty()) {
      err.code = ErrorCode::kFrameExhausted;
      err.message = "frame store exhausted: " +
                    std::to_string(cap_stalled_.size()) +
                    " loop forwarding(s) blocked on frame capacity " +
                    std::to_string(opt_.frame_capacity) +
                    " with no context able to retire";
    } else {
      err.code = ErrorCode::kDeadlock;
      err.message = "deadlock: no events pending, end never fired; " +
                    std::to_string(slots) + " matching slot(s) still waiting";
    }
    err.diagnosis = std::move(detail);
    return err;
  }

  const ExecProgram& ep_;
  MachineOptions opt_;
  unsigned nworkers_;
  unsigned nshards_;
  unsigned slack_;
  bool det_;

  MemoryState mem_;
  std::vector<std::mutex> bank_mu_{kBanks};
  std::vector<DeferredMap> deferred_;  ///< per bank, under its stripe

  std::mutex ctx_mu_;
  ContextState<AToken> cs_;          ///< guarded by ctx_mu_
  std::vector<AToken> cap_stalled_;  ///< guarded by ctx_mu_
  RunStats stats_;  ///< firing-side counters: guarded by ctx_mu_ mid-run

  std::deque<AsyncShard> shards_;  ///< deque: AsyncShard is immovable
  ShardScheduler sched_;
  std::vector<Worker> workers_;

  std::optional<FaultState> fault_;  ///< engaged iff fault_active(opt_)
  std::optional<BudgetState> budget_;  ///< engaged iff opt_.budget.armed()
  /// Free mode's shared token total: each worker drains its local count
  /// here once per batch, so the ceiling is enforced within one batch
  /// per worker of slack without any per-token shared write.
  std::atomic<std::uint64_t> tokens_approx_{0};
  std::optional<IntegrityState> integ_;
  bool check_ = false;
  bool booting_ = false;

  std::atomic<bool> completed_{false};
  std::atomic<bool> abort_{false};
  std::atomic<bool> error_seen_{false};
  std::atomic<std::uint64_t> watchdog_{0};
  std::mutex err_mu_;
  RunError err_;
  bool has_err_ = false;
  std::uint64_t err_key_ = 0;

  std::atomic<std::uint64_t> outstanding_{0};    ///< free mode
  std::atomic<std::uint64_t> batches_total_{0};  ///< free mode
  std::uint64_t epoch_ = 0;  ///< det mode; written only between fences
};

}  // namespace

std::optional<RunResult> run_parallel_async(
    const ExecProgram& program, std::size_t memory_cells,
    const MachineOptions& options,
    const std::vector<IStructureRegion>& istructures,
    const std::vector<SharedRegion>& shared) {
  AsyncEngine engine(program, memory_cells, options, istructures, shared);
  return engine.run();
}

}  // namespace ctdf::machine::detail
