// Parallel cycle-synchronous execution engine (`--parallel=sync`).
//
// The simulated machine is inherently cycle-synchronous, so host
// parallelism here comes from sharding one cycle's work, not from
// relaxing the schedule: RunStats, the final store, and execution
// reports are bit-identical to the serial engine for every
// MachineOptions configuration, including seeded (randomized)
// scheduling. The differential suite in
// tests/machine_parallel_equiv_test.cpp enforces this. Operator
// semantics and the ETS frame store are shared with the serial engine
// (machine/fire.hpp, machine/frames.hpp); the ordering types, shard
// state, and worker pool live in parallel/{rank,shard,pool}.hpp
// (shared with the async engine, parallel/engine_async.cpp); this file
// owns only the sharding, phase barriers, and deterministic token
// exchange.
//
// Ownership (W = host_threads workers):
//  * Matching frames: context c's frame belongs to shard shard_of(c).
//    Each shard delivers only its own contexts' tokens and writes only
//    its own frames; the execute phase reads other shards' frames
//    between barriers, when nothing writes them.
//  * Memory: cells are interleaved across banks in cacheline-sized
//    blocks (bank_of = (cell >> 3) % W); bank w applies its loads,
//    stores, and I-structure transitions in global firing order, so
//    same-cycle accesses to one cell resolve exactly as the serial
//    engine resolves them.
//  * Scheduling state (ready queue, RNG, loop contexts, k-bound
//    credits, statistics) lives with the coordinator (worker 0).
//
// One simulated cycle advances in two phases, split into five steps:
//
//   phase 1 — match/fire into thread-local outboxes:
//     [deliver ∥]   each shard drains its inbox bucket for this cycle
//                   in token-rank order, fills its frame slots, and
//                   emits rank-tagged ready entries.
//     [schedule]    the coordinator merges the shards' (sorted) ready
//                   entries into the global queue by rank and replays
//                   the serial selection rule verbatim: FIFO budget,
//                   seeded random pops, or per-PE arbitration.
//     [execute ∥]   selected firings run speculatively: pure operators
//                   are strided across workers; memory operators are
//                   resolved to cells, then applied by bank owners in
//                   firing order. Emissions go to per-worker outboxes
//                   tagged (seq, intra).
//   phase 2 — barriered deterministic exchange:
//     [replay]      the coordinator walks the firing list in order,
//                   applying everything order-sensitive and cheap:
//                   token accounting, context allocation/retirement,
//                   k-bound stalls, statistics, loop-entry firings.
//     [exchange ∥]  each destination shard collects its tokens from
//                   every outbox, sorts them by (seq, intra) — the
//                   fixed tie-break order — and appends them to its
//                   future inbox buckets; fired frame slots are
//                   released.
//
// The rank (batch, seq, intra) — batch = exchange round, seq = firing
// position in the cycle, intra = emission index within the firing —
// totally orders every token exactly as the serial engine's FIFO
// vectors do, which is what makes the merge deterministic.
//
// Error paths (deadlock, collision, I-structure double write, pending
// store at End) abandon the parallel run; machine::run() then re-runs
// on the serial engine so error reports match it byte-for-byte, frame
// scan order included. The cycle-cap report is deterministic and is
// produced directly.
//
// Fault injection (machine/faults.hpp) changes the delegation rule:
// a faulted rerun would draw a *different* deterministic fault stream
// (the serial engine's nonce ids, not this engine's rank-derived ids)
// and could fail differently or not at all — so when faults are
// engaged every error is reported directly instead of via nullopt.
// Fault decisions here are pure functions of (cycle, firing seq, intra
// index), which workers compute race-free from their own firing slots.
#include "machine/engine_parallel.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "machine/budget.hpp"
#include "machine/faults.hpp"
#include "machine/fire.hpp"
#include "machine/frames.hpp"
#include "machine/integrity.hpp"
#include "machine/parallel/pool.hpp"
#include "machine/parallel/rank.hpp"
#include "machine/parallel/shard.hpp"
#include "support/assert.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"

namespace ctdf::machine::detail {

namespace {

using dfg::NodeId;
using dfg::OpKind;

class ParallelEngine {
 public:
  ParallelEngine(const ExecProgram& ep, std::size_t memory_cells,
                 const MachineOptions& opt,
                 const std::vector<IStructureRegion>& istructures,
                 const std::vector<SharedRegion>& shared)
      : ep_(ep),
        opt_(opt),
        workers_(std::min(opt.host_threads, 256u)),
        rng_(opt.scheduler_seed),
        frames_(ep),
        shards_(workers_),
        pool_(workers_) {
    CTDF_ASSERT_MSG(opt_.alu_latency >= 1 && opt_.mem_latency >= 1,
                    "latencies must be at least one cycle");
    if (fault_active(opt)) fault_.emplace(opt.faults);
    if (opt.budget.armed()) budget_.emplace(opt.budget);
    mem_.init(memory_cells, istructures);
    if (opt.check == CheckMode::kIntegrity) {
      // Checking shards cleanly: tag rows are context-partitioned like
      // the frames, and the per-cell checker state is bank-partitioned
      // like memory (pre-sized here, so workers never resize).
      check_ = true;
      frames_.enable_checking();
      integ_.emplace();
      integ_->init(mem_.store.cells.size(), opt.mem_latency,
                   opt.test_dup_response, shared);
    }
    stats_.fired_by_kind.assign(dfg::kNumOpKinds, 0);
    stats_.first_fire_cycle.assign(ep.num_ops(), UINT64_MAX);
  }

  /// nullopt = delegate to the serial engine (see header).
  std::optional<RunResult> run() {
    boot();
    exchange(/*batch=*/0, /*cycle_for_profile=*/0);

    std::uint64_t cycle = 0;
    while (!completed_) {
      // Budget poll at the cycle top: workers are joined here, so the
      // shard counters are quiescent and summable race-free. Budget
      // errors report directly — never the serial-rerun delegation,
      // whose fresh deadline could let the rerun succeed and mask the
      // expiry (fail_result merges the partial counters either way).
      if (budget_) {
        if (budget_->max_tokens() != 0) {
          std::uint64_t tokens = 0;
          for (const Shard& s : shards_) tokens += s.tokens_sent;
          if (budget_->tokens_exceeded(tokens))
            return fail_result(budget_->token_error());
        }
        // One clock read per cycle is noise next to the phase barriers,
        // so the coordinator skips the stride and checks exactly.
        if (budget_->deadline_exceeded_now())
          return fail_result(budget_->deadline_error());
      }
      if (cycle >= opt_.budget.max_cycles) {
        stats_.cycles = cycle;
        stats_.fail(ErrorCode::kCycleCap,
                    "cycle cap exceeded (possible livelock or "
                    "non-terminating program)",
                    fault_ ? progress_diagnosis() : std::string{});
        merge_shard_counters();
        stats_.completed = false;
        RunResult out;
        out.stats = std::move(stats_);
        out.store = std::move(mem_.store);
        return out;
      }
      cycle_ = cycle;
      // Contexts only appear during replay (coordinator), so growing
      // the frame table — and carving their arena frames — here keeps
      // the parallel deliver phase resize- and allocation-free.
      frames_.materialize_contexts(cs_.size());

      pool_.run([this](unsigned w) { deliver_phase(w); });
      for (const Shard& s : shards_)
        if (s.tag_error) {
          if (fault_) return fail_result(tag_error_report());
          return std::nullopt;
        }
      for (const Shard& s : shards_)
        if (s.collision) {
          if (fault_) return fail_result(collision_error());
          return std::nullopt;
        }

      merge_ready();
      stats_.peak_ready = std::max<std::uint64_t>(
          stats_.peak_ready, queue_.size() - head_);

      select();
      if (fatal_) return fail_result(std::move(*fatal_));
      if (!firings_.empty()) {
        pool_.run([this](unsigned w) { exec_phase(w); });
        if (!mem_idx_.empty()) {
          pool_.run([this](unsigned w) { bank_phase(w); });
          for (const Shard& s : shards_)
            if (s.mem_error) {
              if (fault_) return fail_result(mem_error_report());
              return std::nullopt;
            }
        }
        if (fault_) {
          // A worker saw a transmission exhaust its retry budget: pick
          // the lowest-rank one (the first the serial order would hit).
          const Shard* worst = nullptr;
          for (const Shard& s : shards_)
            if (s.retry_exhausted &&
                (!worst || s.fail_rank < worst->fail_rank))
              worst = &s;
          if (worst) {
            ++stats_.watchdog_triggers;
            return fail_result(RunError{
                ErrorCode::kRetryExhausted,
                "retry budget exhausted: token for node '" +
                    ep_.label(worst->fail_node.index()) + "' dropped " +
                    std::to_string(opt_.faults.max_attempts) +
                    " time(s) in the network",
                progress_diagnosis()});
          }
        }
        replay();
        if (fatal_) return fail_result(std::move(*fatal_));
      }
      if (opt_.record_profile && profile_ok(cycle))
        stats_.profile[cycle] =
            static_cast<std::uint32_t>(firings_.size());

      // No-progress watchdog (see the serial engine): an unbroken run
      // of zero-firing cycles means the recovery machinery is spinning.
      if (fault_ && !completed_) {
        if (firings_.empty()) {
          if (++no_fire_steps_ >= fault_->watchdog_limit()) {
            ++stats_.watchdog_triggers;
            return fail_result(RunError{
                ErrorCode::kDeadlock,
                "watchdog: no operator fired for " +
                    std::to_string(no_fire_steps_) +
                    " scheduler step(s) — livelock or stalled recovery",
                progress_diagnosis()});
          }
        } else {
          no_fire_steps_ = 0;
        }
      }

      exchange(/*batch=*/cycle + 1, cycle);
      if (check_)
        for (const Shard& s : shards_)
          if (s.release_error) {
            if (fault_) return fail_result(release_error_report());
            return std::nullopt;
          }

      if (completed_) {
        stats_.cycles = cycle + 1;
        break;
      }
      if (head_ < queue_.size()) {
        ++cycle;
      } else {
        std::uint64_t next = UINT64_MAX;
        for (const Shard& s : shards_)
          if (!s.inbox.empty()) next = std::min(next, s.inbox.begin()->first);
        if (next == UINT64_MAX) {
          if (fault_) return fail_result(deadlock_error());
          return std::nullopt;  // deadlock
        }
        cycle = next;
      }
    }

    return finalize();
  }

 private:
  [[nodiscard]] unsigned shard_of(std::uint32_t ctx) const {
    return support::golden_bucket(ctx, workers_);
  }

  /// Cacheline-block interleave: consecutive 8-cell blocks round-robin
  /// across banks — balances same-cycle array sweeps without false
  /// sharing on the cells vector.
  [[nodiscard]] unsigned bank_of(std::uint64_t cell) const {
    return static_cast<unsigned>((cell >> 3) % workers_);
  }

  [[nodiscard]] unsigned pe_of(std::uint32_t ctx, NodeId node) const {
    if (opt_.processors == 0) return 0;
    const std::uint64_t key =
        opt_.placement == Placement::kByNode ? node.value() : ctx;
    return support::golden_bucket(key, opt_.processors);
  }

  bool profile_ok(std::uint64_t cycle) {
    if (cycle >= (1u << 22)) return false;
    if (stats_.profile.size() <= cycle) stats_.profile.resize(cycle + 1, 0);
    return true;
  }

  // -- boot ---------------------------------------------------------------

  void boot() {
    const NodeId s = ep_.start();
    const ExecOp& start = ep_.op(s);
    ++stats_.ops_fired;
    ++stats_.fired_by_kind[static_cast<std::size_t>(start.kind)];
    const unsigned from_pe = pe_of(0, s);
    std::uint32_t intra = 0;
    for (std::uint16_t p = 0; p < start.num_outputs; ++p) {
      for (const ExecDest& d : ep_.dests(start, p)) {
        std::uint64_t hop = 0;
        if (opt_.processors > 0 && pe_of(0, d.node) != from_pe)
          hop = opt_.network_latency;
        coord_outbox_.push_back(
            PToken{{0, 0, intra++},
                   /*due=*/hop,
                   Token{0, d.node, d.port, ep_.start_values()[p], false}});
        cs_.add_live(0);
      }
    }
  }

  // -- phase 1: deliver (parallel, per shard) -----------------------------

  void deliver_phase(unsigned w) {
    Shard& s = shards_[w];
    s.outbox.clear();
    s.ready.clear();
    const auto it = s.inbox.find(cycle_);
    if (it == s.inbox.end()) return;
    for (const PToken& t : it->second) deliver(s, t);
    s.inbox.erase(it);
  }

  void deliver(Shard& s, const PToken& t) {
    if (fault_) {
      if (t.tok.refire) {
        // NACKed memory firing / capacity-stalled barrier entry
        // re-entering ready: operands still matched in the frame.
        QEntry e{t.rank, t.tok.ctx,    t.tok.node, /*immediate=*/false,
                 false,  0,            0,          kNoInvocation,
                 /*refire=*/true};
        s.ready.push_back(e);
        return;
      }
      if (t.tok.seq != 0) {
        // Both copies of a duplicated token hash to this shard (same
        // ctx), so the seen-set is owner-exclusive.
        const auto [it, inserted] = s.dedup_seen.insert(t.tok.seq);
        if (!inserted) {
          s.dedup_seen.erase(it);
          ++s.duplicates_dropped;
          return;
        }
      }
    }
    ++s.tokens_sent;
    const ExecOp& op = ep_.op(t.tok.node);
    if (non_strict(op, opt_.loop_mode)) {
      QEntry e{t.rank,     t.tok.ctx,  t.tok.node,  /*immediate=*/true,
               t.tok.requeued, t.tok.port, t.tok.value, kNoInvocation};
      if (op.kind == OpKind::kLoopExit && cs_.info(t.tok.ctx).loop.valid())
        e.invocation = cs_.info(t.tok.ctx).invocation;
      s.ready.push_back(e);
      return;
    }
    if (check_) ++s.integrity_checks;
    const FrameStore::Deliver verdict =
        frames_.deliver(t.tok.ctx, op, t.tok.port, t.tok.value);
    switch (verdict) {
      case FrameStore::Deliver::kTagOccupied:
      case FrameStore::Deliver::kTagOverrun:
        // Checking mode's tag verdicts (double write / arity overrun).
        // Fault-free: serial rerun reproduces the identical report.
        // Faulted: lowest rank wins.
        if (fault_ && (!s.tag_error || t.rank < s.tag_rank)) {
          s.tag_rank = t.rank;
          s.tag_tok = t.tok;
          s.tag_kind = verdict;
        }
        s.tag_error = true;
        return;
      case FrameStore::Deliver::kCollision:
        // Fault-free: serial rerun reports the exact diagnostic.
        // Faulted: record the lowest-rank collision for direct report.
        if (fault_ && (!s.collision || t.rank < s.collision_rank)) {
          s.collision_rank = t.rank;
          s.collision_tok = t.tok;
        }
        s.collision = true;
        return;
      case FrameStore::Deliver::kCompleted:
        ++s.matches;
        s.ready.push_back(QEntry{t.rank, t.tok.ctx, t.tok.node,
                                 /*immediate=*/false, false, 0, 0,
                                 kNoInvocation});
        break;
      case FrameStore::Deliver::kStored:
        ++s.matches;
        break;
    }
  }

  // -- schedule (coordinator) ---------------------------------------------

  /// Appends the shards' rank-sorted ready lists to the global queue in
  /// rank order — reproducing the order the serial engine would have
  /// appended them in while draining the one global pending vector.
  void merge_ready() {
    std::vector<std::size_t> cursor(workers_, 0);
    for (;;) {
      int best = -1;
      for (unsigned w = 0; w < workers_; ++w) {
        const Shard& s = shards_[w];
        if (cursor[w] >= s.ready.size()) continue;
        if (best < 0 ||
            s.ready[cursor[w]].rank <
                shards_[static_cast<unsigned>(best)]
                    .ready[cursor[static_cast<unsigned>(best)]]
                    .rank)
          best = static_cast<int>(w);
      }
      if (best < 0) break;
      queue_.push_back(
          shards_[static_cast<unsigned>(best)]
              .ready[cursor[static_cast<unsigned>(best)]++]);
    }
  }

  /// Replays the serial selection rule on the global queue: which ready
  /// operators fire this cycle, in which order. Mirrors Engine::run()'s
  /// abstract-pool loop (FIFO budget + optional seeded swaps, stopping
  /// at End) and Engine::fire_multi_pe (per-PE arbitration, order of
  /// survivors preserved).
  void select() {
    firings_.clear();
    mem_idx_.clear();
    if (opt_.processors == 0) {
      const std::uint64_t budget = opt_.width == 0 ? UINT64_MAX : opt_.width;
      std::uint64_t fired = 0;
      while (head_ < queue_.size() && fired < budget) {
        if (opt_.scheduler_seed != 0) {
          const std::size_t span = queue_.size() - head_;
          const std::size_t pick = head_ + rng_.next_below(span);
          std::swap(queue_[head_], queue_[pick]);
        }
        const bool is_end = push_firing(queue_[head_++]);
        ++fired;
        if (is_end) break;
      }
      if (head_ > 4096 && head_ * 2 > queue_.size()) {
        queue_.erase(queue_.begin(),
                     queue_.begin() + static_cast<std::ptrdiff_t>(head_));
        head_ = 0;
      }
    } else {
      std::vector<std::uint8_t> busy(opt_.processors, 0);
      std::vector<QEntry> kept;
      std::size_t i = head_;
      bool stop = false;
      for (; i < queue_.size() && !stop; ++i) {
        const unsigned pe = pe_of(queue_[i].ctx, queue_[i].node);
        if (busy[pe]) {
          kept.push_back(queue_[i]);
          continue;
        }
        busy[pe] = 1;
        stop = push_firing(queue_[i]);
      }
      for (; i < queue_.size(); ++i) kept.push_back(queue_[i]);
      queue_ = std::move(kept);
      head_ = 0;
    }
  }

  /// Classifies and appends one firing; returns true for End (selection
  /// stops — the serial engine's completed_ check).
  bool push_firing(const QEntry& e) {
    Firing f;
    f.e = e;
    f.seq = static_cast<std::uint32_t>(firings_.size());
    const ExecOp& op = ep_.op(e.node);
    if (op.kind == OpKind::kEnd) {
      f.klass = FiringClass::kEnd;
    } else if (op.kind == OpKind::kLoopEntry) {
      f.klass = FiringClass::kLoop;
    } else if (op.flags & kExecMem) {
      // Split-phase memory NACK, rolled here (coordinator, firing
      // order) so the decision stream is deterministic. A NACKed
      // attempt occupies its selection slot but is not executed.
      if (fault_ && !e.refire) {
        const FaultState::Nack n = fault_->nack(fault_->next_id());
        if (n.exhausted) {
          ++stats_.watchdog_triggers;
          if (!fatal_)
            fatal_ = RunError{ErrorCode::kRetryExhausted,
                              "retry budget exhausted: memory NACKed node '" +
                                  ep_.label(e.node.index()) + "' " +
                                  std::to_string(opt_.faults.max_attempts) +
                                  " time(s)",
                              progress_diagnosis()};
          f.klass = FiringClass::kNack;
          firings_.push_back(std::move(f));
          return false;
        }
        if (n.nacks > 0) {
          f.klass = FiringClass::kNack;
          f.nacks = n.nacks;
          f.nack_delay = n.delay;
          firings_.push_back(std::move(f));
          return false;
        }
      }
      f.klass = FiringClass::kMem;
      mem_idx_.push_back(f.seq);
    } else {
      f.klass = FiringClass::kPure;
    }
    firings_.push_back(std::move(f));
    return firings_.back().klass == FiringClass::kEnd;
  }

  // -- execute (parallel) -------------------------------------------------

  /// Emission helper for the parallel phases: one token per out-arc of
  /// (node, port), tagged (seq, intra) and routed later by the
  /// exchange. Counts the emissions toward f.primary's live tokens
  /// (applied by the replay at f's position in the firing order).
  void emit_exec(Shard& s, Firing& f, std::uint32_t token_ctx, NodeId node,
                 std::uint16_t port, std::int64_t value,
                 std::uint64_t latency, unsigned from_pe) {
    for (const ExecDest& d : ep_.dests(node, port)) {
      std::uint64_t hop = 0;
      if (opt_.processors > 0 && pe_of(token_ctx, d.node) != from_pe)
        hop = opt_.network_latency;
      const std::uint32_t slot = f.intra_used++;
      Token t{token_ctx, d.node, d.port, value, false};
      std::uint64_t due = cycle_ + latency + hop;
      if (fault_ && hop > 0) {
        // Cross-PE network faults, rolled from the emission's rank (a
        // pure function of cycle/seq/intra — race-free on workers). A
        // drop is its own recovery: the retransmission ladder is rolled
        // up front and the token scheduled once with the total backoff.
        const FaultState::Transit tr = fault_->transit(tid(f.seq, slot));
        if (tr.exhausted) {
          const Rank r{0, f.seq, slot};
          if (!s.retry_exhausted || r < s.fail_rank) {
            s.fail_rank = r;
            s.fail_node = d.node;
          }
          s.retry_exhausted = true;
        }
        s.faults_injected += tr.drops + tr.jitters + (tr.duplicated ? 1 : 0);
        s.retries += tr.drops;
        due += tr.delay;
        if (tr.duplicated) {
          // Both copies share one sequence number (receiver dedup); the
          // duplicate takes its own intra slot so ranks stay unique, and
          // is not counted live — the logical token exists once.
          t.seq = fault_->seq_for(tid(f.seq, slot));
          s.outbox.push_back(PToken{{0, f.seq, f.intra_used++},
                                    cycle_ + latency + hop + tr.dup_delay, t});
        }
      }
      s.outbox.push_back(PToken{{0, f.seq, slot}, due, t});
      ++f.emitted;
    }
  }

  /// Pure-operator execution (strided seq % W) plus memory-operand
  /// resolution; no order-sensitive state is touched.
  void exec_phase(unsigned w) {
    Shard& s = shards_[w];
    const std::uint64_t alu = opt_.alu_latency;
    for (std::size_t i = w; i < firings_.size(); i += workers_) {
      Firing& f = firings_[i];
      const QEntry& e = f.e;
      const ExecOp& op = ep_.op(e.node);
      const unsigned from_pe = pe_of(e.ctx, e.node);
      f.primary = e.ctx;
      if (f.klass == FiringClass::kEnd || f.klass == FiringClass::kLoop ||
          f.klass == FiringClass::kNack)
        continue;  // replayed by the coordinator
      if (e.immediate) {
        switch (op.kind) {
          case OpKind::kMerge:
            emit_exec(s, f, e.ctx, e.node, 0, e.value, alu, from_pe);
            break;
          case OpKind::kLoopExit:
            CTDF_ASSERT_MSG(e.invocation != kNoInvocation,
                            "loop exit fired outside an iteration context");
            f.primary = e.invocation;
            emit_exec(s, f, e.invocation, e.node, e.port, e.value, alu,
                      from_pe);
            break;
          default:
            CTDF_UNREACHABLE("bad non-strict op");
        }
        continue;
      }
      // The firing context's frame belongs to another shard, but the
      // deliver barrier has passed and slots are only released at the
      // exchange: reading it here is race-free.
      CTDF_ASSERT(frames_.has(e.ctx, op) && frames_.remaining(e.ctx, op) == 0);
      const std::int64_t* in = frames_.inputs(e.ctx, op);
      if (op.flags & kExecMem) {
        const MemAccess a = resolve_mem(op, in, mem_.store.cells.size());
        f.cell = a.cell;
        f.store_value = a.store_value;
      } else {
        fire_pure(ep_, op, in, [&](std::uint16_t port, std::int64_t value) {
          emit_exec(s, f, e.ctx, e.node, port, value, alu, from_pe);
        });
      }
    }
  }

  /// Split-phase memory, applied by bank owners in firing order — the
  /// serial engine's same-cycle read-after-write and write-after-write
  /// resolutions fall out exactly.
  void bank_phase(unsigned w) {
    Shard& s = shards_[w];
    const std::uint64_t mem = opt_.mem_latency;
    for (const std::uint32_t idx : mem_idx_) {
      Firing& f = firings_[idx];
      if (bank_of(f.cell) != w) continue;
      const QEntry& e = f.e;
      const ExecOp& op = ep_.op(e.node);
      const unsigned from_pe = pe_of(e.ctx, e.node);
      const MemAccess a{f.cell, f.store_value};
      if (check_) ++s.integrity_checks;
      // Per-cell checker state is bank-partitioned like the cells
      // themselves, so the race/response accounting below is
      // owner-exclusive and runs in firing order — matching the serial
      // engine's history exactly.
      const MemCheck mc = apply_mem(
          op, e.ctx, e.node, a, mem_, s.deferred,
          integ_ ? &*integ_ : nullptr, cycle_,
          [&](std::uint16_t port, std::int64_t value) {
            emit_exec(s, f, e.ctx, e.node, port, value, mem, from_pe);
          },
          [&](std::uint32_t dctx, NodeId dnode, std::int64_t value) {
            const std::uint32_t before = f.emitted;
            // The serial engine computes the hop origin from the
            // *storing* firing's context and the reader's node.
            emit_exec(s, f, dctx, dnode, 0, value, mem,
                      pe_of(e.ctx, dnode));
            f.extra_live.emplace_back(dctx, f.emitted - before);
            f.emitted = before;  // not in e.ctx: tracked via extra_live
          },
          [&] { ++s.deferred_reads; });
      if (mc.kind != MemCheck::Kind::kOk) {
        // Fault-free: serial rerun reports it. Faulted: record the
        // details for a direct report (mem_error_report()).
        if (f.seq < s.mem_seq) {
          s.mem_seq = f.seq;
          s.mem_check = mc;
          s.mem_node = e.node;
        }
        s.mem_error = true;
        return;
      }
    }
  }

  // -- phase 2: replay (coordinator) --------------------------------------

  /// Identical to the serial engine's consume(), except that stalled
  /// forwardings re-enter through the coordinator outbox (rank-tagged
  /// after the triggering firing's own emissions) instead of a direct
  /// pending push.
  void consume(Firing& f, std::uint32_t ctx, std::uint32_t n = 1) {
    const bool retired =
        cs_.consume(ctx, n, [&](std::vector<PToken>&& stalled) {
          for (PToken& t : stalled) {
            t.rank = Rank{0, f.seq, f.intra_used++};
            t.due = cycle_ + 1;
            coord_outbox_.push_back(t);
          }
        });
    if (retired && !cap_stalled_.empty()) {
      // A frame was freed: wake everything blocked on capacity. The
      // first to re-fire claims it; the rest re-stall.
      for (PToken& t : cap_stalled_) {
        t.rank = Rank{0, f.seq, f.intra_used++};
        t.due = cycle_ + 1;
        coord_outbox_.push_back(t);
      }
      cap_stalled_.clear();
    }
  }

  /// Parallel analogue of the serial engine's capacity_stall: finite
  /// frame store back-pressure, not a firing — no counters advance
  /// beyond the stall count.
  bool capacity_stall(Firing& f) {
    const QEntry& e = f.e;
    const ExecOp& op = ep_.op(e.node);
    if (!cs_.would_allocate(op.loop, e.ctx) ||
        cs_.live_contexts() < opt_.frame_capacity)
      return false;
    ++stats_.backpressure_stalls;
    if (e.immediate) {
      // Pipelined forwarding: buffer it, consumed from its source
      // context now so that context can retire and free its own frame.
      cap_stalled_.push_back(
          PToken{{0, 0, 0}, 0, Token{e.ctx, e.node, e.port, e.value, true}});
      if (!e.requeued) consume(f, e.ctx);
    } else {
      // Barrier entry: the circulating set stays matched in the frame;
      // re-ready the whole firing once a retirement frees capacity.
      Token t{e.ctx, e.node, 0, 0};
      t.refire = true;
      cap_stalled_.push_back(PToken{{0, 0, 0}, 0, t});
    }
    return true;
  }

  void emit_replay(Firing& f, std::uint32_t token_ctx, NodeId node,
                   std::uint16_t port, std::int64_t value,
                   std::uint64_t latency, unsigned from_pe) {
    for (const ExecDest& d : ep_.dests(node, port)) {
      std::uint64_t hop = 0;
      if (opt_.processors > 0 && pe_of(token_ctx, d.node) != from_pe)
        hop = opt_.network_latency;
      const std::uint32_t slot = f.intra_used++;
      Token t{token_ctx, d.node, d.port, value, false};
      std::uint64_t due = cycle_ + latency + hop;
      if (fault_ && hop > 0) {
        // Coordinator-side emissions (loop entries): same fault model as
        // emit_exec, but counters land in stats_ directly and retry
        // exhaustion is reported through fatal_.
        const FaultState::Transit tr = fault_->transit(tid(f.seq, slot));
        if (tr.exhausted) {
          ++stats_.watchdog_triggers;
          if (!fatal_)
            fatal_ = RunError{ErrorCode::kRetryExhausted,
                              "retry budget exhausted: token for node '" +
                                  ep_.label(d.node.index()) + "' dropped " +
                                  std::to_string(opt_.faults.max_attempts) +
                                  " time(s) in the network",
                              progress_diagnosis()};
        }
        stats_.faults_injected += tr.drops + tr.jitters + (tr.duplicated ? 1 : 0);
        stats_.retries += tr.drops;
        due += tr.delay;
        if (tr.duplicated) {
          t.seq = fault_->seq_for(tid(f.seq, slot));
          coord_outbox_.push_back(
              PToken{{0, f.seq, f.intra_used++},
                     cycle_ + latency + hop + tr.dup_delay, t});
        }
      }
      coord_outbox_.push_back(PToken{{0, f.seq, slot}, due, t});
      cs_.add_live(token_ctx);
    }
  }

  /// Walks the firing list in order applying everything the serial
  /// engine interleaves with execution: statistics, token accounting
  /// (emission counts were gathered by the parallel phases), context
  /// allocation/retirement with k-bound credits, and the loop-entry
  /// operators themselves (their decisions read that very state).
  void replay() {
    for (Firing& f : firings_) {
      const QEntry& e = f.e;
      const ExecOp& op = ep_.op(e.node);
      if (f.klass == FiringClass::kNack) {
        // A rejected memory attempt is not a firing — no counters
        // advance; the op re-readies after the summed backoff with its
        // operands still matched in the frame.
        stats_.nacks_seen += f.nacks;
        stats_.retries += f.nacks;
        stats_.faults_injected += f.nacks;
        Token retry{e.ctx, e.node, 0, 0};
        retry.refire = true;
        coord_outbox_.push_back(PToken{{0, f.seq, f.intra_used++},
                                       cycle_ + f.nack_delay, retry});
        continue;
      }
      if (fault_ && f.klass == FiringClass::kLoop &&
          opt_.frame_capacity > 0 && capacity_stall(f))
        continue;
      ++stats_.ops_fired;
      ++stats_.fired_by_kind[static_cast<std::size_t>(op.kind)];
      if (stats_.first_fire_cycle[e.node.index()] == UINT64_MAX)
        stats_.first_fire_cycle[e.node.index()] = cycle_;
      if (opt_.trace)
        std::fprintf(stderr, "[%8llu] fire %-10s '%s' ctx=%u\n",
                     static_cast<unsigned long long>(cycle_),
                     to_string(op.kind), ep_.label(e.node.index()).c_str(),
                     e.ctx);
      if (op.flags & kExecMem) {
        if (op.flags & kExecWrite)
          ++stats_.mem_writes;
        else
          ++stats_.mem_reads;
      }

      if (f.klass == FiringClass::kEnd) {
        completed_ = true;
        consume(f, e.ctx, op.consumed_inputs);
        schedule_release(e);
        continue;
      }
      if (f.klass == FiringClass::kLoop) {
        replay_loop_entry(f);
        continue;
      }
      cs_.add_live(f.primary, f.emitted);
      for (const auto& [ctx, count] : f.extra_live) cs_.add_live(ctx, count);
      if (e.immediate) {
        if (!e.requeued) consume(f, e.ctx);
      } else {
        consume(f, e.ctx, op.consumed_inputs);
        schedule_release(e);
      }
    }
  }

  void replay_loop_entry(Firing& f) {
    const QEntry& e = f.e;
    const ExecOp& op = ep_.op(e.node);
    const unsigned from_pe = pe_of(e.ctx, e.node);
    const std::uint64_t alu = opt_.alu_latency;
    if (e.immediate) {
      if (auto* inst = cs_.bound_block(op.loop, e.ctx, opt_.loop_bound)) {
        inst->stalled.push_back(
            PToken{{0, 0, 0}, 0, Token{e.ctx, e.node, e.port, e.value, true}});
        ++stats_.throttle_stalls;
        if (!e.requeued) consume(f, e.ctx);
        return;
      }
      const std::uint32_t next =
          cs_.context_for_iteration(op.loop, e.ctx, stats_);
      emit_replay(f, next, e.node, e.port, e.value, alu, from_pe);
      if (!e.requeued) consume(f, e.ctx);
      return;
    }
    // Barrier mode: strict entry forwards the full circulating set into
    // the next iteration's context.
    CTDF_ASSERT(frames_.has(e.ctx, op) && frames_.remaining(e.ctx, op) == 0);
    const std::int64_t* in = frames_.inputs(e.ctx, op);
    const std::uint32_t next = cs_.context_for_iteration(op.loop, e.ctx, stats_);
    for (std::uint16_t p = 0; p < op.num_inputs; ++p)
      emit_replay(f, next, e.node, p, in[p], alu, from_pe);
    consume(f, e.ctx, op.consumed_inputs);
    schedule_release(e);
  }

  void schedule_release(const QEntry& e) {
    shards_[shard_of(e.ctx)].released.emplace_back(e.ctx, e.node);
  }

  // -- phase 2: exchange (parallel, per shard) ----------------------------

  void exchange(std::uint64_t batch, std::uint64_t cycle) {
    batch_ = batch;
    cycle_ = cycle;
    pool_.run([this](unsigned w) { exchange_phase(w); });
    coord_outbox_.clear();
    for (Shard& s : shards_) s.released.clear();
  }

  void exchange_phase(unsigned w) {
    Shard& s = shards_[w];
    for (const auto& [ctx, node] : s.released) {
      // Releases are context-partitioned exactly like deliveries, so
      // the checking-mode tag sweep touches owner-exclusive rows.
      const int missing = frames_.release(ctx, ep_.op(node));
      if (check_) {
        ++s.integrity_checks;
        if (missing >= 0 && !s.release_error) {
          s.release_error = true;
          s.release_ctx = ctx;
          s.release_node = node;
          s.release_port = missing;
        }
      }
    }
    route_.clear();
    const auto take = [&](const std::vector<PToken>& outbox) {
      for (const PToken& t : outbox)
        if (shard_of(t.tok.ctx) == w) route_.push_back(t);
    };
    for (const Shard& src : shards_) take(src.outbox);
    take(coord_outbox_);
    std::sort(route_.begin(), route_.end(),
              [](const PToken& a, const PToken& b) { return a.rank < b.rank; });
    for (PToken& t : route_) {
      t.rank.batch = batch_;
      s.inbox[t.due].push_back(t);
    }
  }

  // -- completion ---------------------------------------------------------

  void merge_shard_counters() {
    for (const Shard& s : shards_) {
      stats_.tokens_sent += s.tokens_sent;
      stats_.matches += s.matches;
      stats_.deferred_reads += s.deferred_reads;
      stats_.integrity_checks += s.integrity_checks;
      stats_.duplicates_dropped += s.duplicates_dropped;
      stats_.faults_injected += s.faults_injected;
      stats_.retries += s.retries;
    }
  }

  std::optional<RunResult> finalize() {
    stats_.completed = true;
    const auto is_write = [&](NodeId n) {
      return (ep_.op(n).flags & kExecWrite) != 0;
    };
    // Fault-free, a pending write delegates to the serial rerun for a
    // byte-identical report; faulted, it is reported directly.
    const auto pending_write = [&](NodeId n) -> std::optional<RunResult> {
      if (!fault_) return std::nullopt;
      return fail_result(RunError{
          ErrorCode::kStoreInFlight,
          "end fired while store '" + ep_.label(n.index()) +
              "' was still in flight — its acknowledgement is not collected",
          {}});
    };
    for (std::size_t i = head_; i < queue_.size(); ++i) {
      ++stats_.leftover_tokens;
      if (is_write(queue_[i].node)) return pending_write(queue_[i].node);
    }
    for (const Shard& s : shards_) {
      for (const auto& [due, tokens] : s.inbox) {
        for (const PToken& t : tokens) {
          ++stats_.leftover_tokens;
          if (is_write(t.tok.node)) return pending_write(t.tok.node);
        }
      }
    }
    NodeId write_waiting;
    frames_.for_each_live(
        [&](std::uint32_t, std::uint32_t op_idx, std::uint16_t) {
          if (ep_.op(op_idx).flags & kExecWrite)
            write_waiting = NodeId{op_idx};
        });
    if (write_waiting.valid()) return pending_write(write_waiting);
    merge_shard_counters();
    RunResult out;
    out.stats = std::move(stats_);
    out.store = std::move(mem_.store);
    return out;
  }

  // -- fault reporting ----------------------------------------------------

  /// Deterministic fault id for the emission at (this cycle, firing
  /// seq, intra slot) — the parallel counterpart of the serial engine's
  /// nonce stream, computable race-free by any worker.
  [[nodiscard]] std::uint64_t tid(std::uint32_t seq,
                                  std::uint32_t intra) const {
    return (cycle_ + 1) * support::kGoldenGamma ^
           (static_cast<std::uint64_t>(seq) << 21) ^ intra;
  }

  /// Direct error report (fault mode only — a faulted serial rerun
  /// would draw a different fault stream, see the file comment).
  RunResult fail_result(RunError err) {
    merge_shard_counters();
    stats_.fail(std::move(err));
    stats_.cycles = cycle_ + 1;
    stats_.completed = false;
    RunResult out;
    out.stats = std::move(stats_);
    out.store = std::move(mem_.store);
    return out;
  }

  RunError collision_error() const {
    const Shard* worst = nullptr;
    for (const Shard& s : shards_)
      if (s.collision && (!worst || s.collision_rank < worst->collision_rank))
        worst = &s;
    CTDF_ASSERT(worst != nullptr);
    const Token& t = worst->collision_tok;
    return RunError{ErrorCode::kSlotCollision,
                    "token collision at node " + std::to_string(t.node.value()) +
                        " (" + to_string(ep_.op(t.node).kind) + " '" +
                        ep_.label(t.node.index()) + "') port " +
                        std::to_string(t.port) + " in context " +
                        std::to_string(t.ctx) + " at cycle " +
                        std::to_string(cycle_),
                    {}};
  }

  RunError mem_error_report() const {
    const Shard* worst = nullptr;
    for (const Shard& s : shards_)
      if (s.mem_error && s.mem_seq != UINT32_MAX &&
          (!worst || s.mem_seq < worst->mem_seq))
        worst = &s;
    CTDF_ASSERT(worst != nullptr);
    const MemCheck& mc = worst->mem_check;
    switch (mc.kind) {
      case MemCheck::Kind::kMemRace:
        return integrity_mem_race_error(ep_, worst->mem_node, mc, cycle_,
                                        opt_.mem_latency);
      case MemCheck::Kind::kOrphanResponse:
        return integrity_orphan_error(ep_, mc);
      default:
        return RunError{ErrorCode::kIStoreDoubleWrite,
                        "I-structure double write to cell " +
                            std::to_string(mc.cell) + " by node '" +
                            ep_.label(worst->mem_node.index()) + "'",
                        {}};
    }
  }

  RunError tag_error_report() const {
    const Shard* worst = nullptr;
    for (const Shard& s : shards_)
      if (s.tag_error && (!worst || s.tag_rank < worst->tag_rank)) worst = &s;
    CTDF_ASSERT(worst != nullptr);
    const Token& t = worst->tag_tok;
    if (worst->tag_kind == FrameStore::Deliver::kTagOverrun)
      return integrity_read_empty_error(ep_, t.node, t.port, t.ctx, cycle_);
    return integrity_double_write_error(ep_, t.node, t.port, t.ctx, cycle_);
  }

  RunError release_error_report() const {
    const Shard* worst = nullptr;
    for (const Shard& s : shards_)
      if (s.release_error &&
          (!worst || s.release_ctx < worst->release_ctx ||
           (s.release_ctx == worst->release_ctx &&
            s.release_node.value() < worst->release_node.value())))
        worst = &s;
    CTDF_ASSERT(worst != nullptr);
    return integrity_read_empty_error(ep_, worst->release_node,
                                      worst->release_port, worst->release_ctx,
                                      cycle_);
  }

  /// Per-loop live/throttled breakdown (see the serial engine).
  std::string loop_breakdown() const {
    std::string msg =
        "  loop state: " + std::to_string(cs_.live_contexts()) +
        " live iteration context(s), " +
        std::to_string(stats_.throttle_stalls) +
        " k-bound throttle stall(s), " +
        std::to_string(cap_stalled_.size()) +
        " forwarding(s) blocked on frame capacity";
    cs_.for_each_instance([&](std::uint32_t loop, std::uint32_t invocation,
                              unsigned in_flight, std::size_t stalled) {
      msg += "\n  loop " + std::to_string(loop) + " invocation ctx " +
             std::to_string(invocation) + ": " + std::to_string(in_flight) +
             " iteration(s) in flight, " + std::to_string(stalled) +
             " stalled forwarding(s)";
    });
    return msg;
  }

  /// Structured no-progress diagnosis (watchdog, retry exhaustion,
  /// fault-mode cycle cap): what is blocked and what is oldest in
  /// flight. The oldest pending token is the minimum (due, rank) over
  /// the shards' first inbox buckets.
  std::string progress_diagnosis() const {
    std::string msg = "  blocked: " + std::to_string(frames_.live_slots()) +
                      " matching slot(s) still waiting";
    const PToken* oldest = nullptr;
    std::uint64_t oldest_due = 0;
    for (const Shard& s : shards_) {
      if (s.inbox.empty()) continue;
      const auto& [due, tokens] = *s.inbox.begin();
      if (tokens.empty()) continue;
      const PToken& t = tokens.front();
      if (!oldest || due < oldest_due ||
          (due == oldest_due && t.rank < oldest->rank)) {
        oldest = &t;
        oldest_due = due;
      }
    }
    if (oldest)
      msg += "\n  oldest pending token: node " +
             std::to_string(oldest->tok.node.value()) + " ('" +
             ep_.label(oldest->tok.node.index()) + "') port " +
             std::to_string(oldest->tok.port) + " ctx " +
             std::to_string(oldest->tok.ctx);
    return msg + "\n" + loop_breakdown();
  }

  RunError deadlock_error() const {
    RunError err;
    std::string detail;
    int listed = 0;
    frames_.for_each_live([&](std::uint32_t ctx, std::uint32_t op_idx,
                              std::uint16_t remaining) {
      if (listed++ >= 5) return;
      detail += "  waiting: node " + std::to_string(op_idx) + " (" +
                to_string(ep_.op(op_idx).kind) + " '" + ep_.label(op_idx) +
                "') ctx " + std::to_string(ctx) + " missing " +
                std::to_string(remaining) + " input(s)\n";
    });
    std::size_t deferred = 0;
    for (const Shard& s : shards_) deferred += s.deferred.size();
    if (deferred > 0)
      detail += "  plus " + std::to_string(deferred) +
                " I-structure cell(s) with deferred readers\n";
    const std::size_t stalled = cs_.stalled_total();
    if (stalled > 0)
      detail += "  plus " + std::to_string(stalled) +
                " forwarding(s) stalled by the loop bound\n";
    detail += loop_breakdown();
    if (!cap_stalled_.empty()) {
      err.code = ErrorCode::kFrameExhausted;
      err.message = "frame store exhausted: " +
                    std::to_string(cap_stalled_.size()) +
                    " loop forwarding(s) blocked on frame capacity " +
                    std::to_string(opt_.frame_capacity) +
                    " with no context able to retire";
    } else {
      err.code = ErrorCode::kDeadlock;
      err.message = "deadlock: no events pending, end never fired; " +
                    std::to_string(frames_.live_slots()) +
                    " matching slot(s) still waiting";
    }
    err.diagnosis = std::move(detail);
    return err;
  }

  // -- state --------------------------------------------------------------

  const ExecProgram& ep_;
  MachineOptions opt_;
  unsigned workers_;
  support::SplitMix64 rng_;

  MemoryState mem_;

  ContextState<PToken> cs_;
  FrameStore frames_;

  std::vector<QEntry> queue_;
  std::size_t head_ = 0;
  std::vector<Firing> firings_;
  std::vector<std::uint32_t> mem_idx_;
  std::vector<PToken> coord_outbox_;

  std::vector<Shard> shards_;
  Pool pool_;

  std::uint64_t cycle_ = 0;
  std::uint64_t batch_ = 0;

  std::optional<FaultState> fault_;  ///< engaged iff fault_active(opt_)
  std::optional<BudgetState> budget_;  ///< engaged iff opt_.budget.armed()
  bool check_ = false;  ///< opt_.check == CheckMode::kIntegrity
  std::optional<IntegrityState> integ_;  ///< engaged iff check_
  std::optional<RunError> fatal_;    ///< first coordinator-side failure
  /// Loop-entry work blocked by frame_capacity, engine-global (see the
  /// serial engine).
  std::vector<PToken> cap_stalled_;
  std::uint64_t no_fire_steps_ = 0;

  RunStats stats_;
  bool completed_ = false;

  /// Per-exchange scratch; thread_local so each worker reuses capacity.
  static thread_local std::vector<PToken> route_;
};

thread_local std::vector<PToken> ParallelEngine::route_;

}  // namespace

std::optional<RunResult> run_parallel(
    const ExecProgram& program, std::size_t memory_cells,
    const MachineOptions& options,
    const std::vector<IStructureRegion>& istructures,
    const std::vector<SharedRegion>& shared) {
  return ParallelEngine{program, memory_cells, options, istructures, shared}
      .run();
}

}  // namespace ctdf::machine::detail
