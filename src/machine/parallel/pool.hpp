// Spin/yield worker pool shared by the host-parallel engines: worker 0
// is the calling (coordinator) thread. Phases are released by an epoch
// increment (release) and collected by an arrival counter (acquire),
// which is all the synchronization the sync engine needs — every
// structure there is either owner-exclusive within a phase or only
// read across phases. The async engine reuses it as a fork/join
// primitive: one run() per epoch in deterministic mode, one long run()
// spanning the whole execution in free-running mode.
#pragma once

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

namespace ctdf::machine::detail {

class Pool {
 public:
  explicit Pool(unsigned workers) : workers_(workers) {
    threads_.reserve(workers_ - 1);
    for (unsigned w = 1; w < workers_; ++w)
      threads_.emplace_back([this, w] { worker_loop(w); });
  }

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  ~Pool() {
    shutdown_.store(true, std::memory_order_release);
    for (auto& t : threads_) t.join();
  }

  /// Runs fn(w) on every worker (coordinator included) and waits.
  void run(const std::function<void(unsigned)>& fn) {
    job_ = &fn;
    remaining_.store(workers_ - 1, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    fn(0);
    while (remaining_.load(std::memory_order_acquire) != 0)
      std::this_thread::yield();
  }

 private:
  void worker_loop(unsigned w) {
    std::uint64_t seen = 0;
    for (;;) {
      while (epoch_.load(std::memory_order_acquire) == seen) {
        if (shutdown_.load(std::memory_order_acquire)) return;
        std::this_thread::yield();
      }
      seen = epoch_.load(std::memory_order_acquire);
      (*job_)(w);
      remaining_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  unsigned workers_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<unsigned> remaining_{0};
  std::atomic<bool> shutdown_{false};
  const std::function<void(unsigned)>* job_ = nullptr;
  std::vector<std::thread> threads_;
};

}  // namespace ctdf::machine::detail
