// Work-stealing shard scheduler of the free-running async engine.
//
// Every shard lives in exactly one place at any moment: some worker's
// deque, or in the hands of the worker currently processing it. A
// worker pops from the front of its own deque (round-robin over its
// resident shards) and, when none of them has actionable work, steals
// from the *back* of a victim's deque — the classic split so owner and
// thief contend on opposite ends. A stolen shard migrates: the thief
// pushes it back onto its own deque, so a load imbalance resolves into
// a new stable placement instead of being re-stolen every round.
//
// Deterministic mode never touches this class (shard s is pinned to
// worker s % W and there is no stealing to schedule).
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>

namespace ctdf::machine::detail {

class ShardScheduler {
 public:
  static constexpr std::uint32_t kNoShard = UINT32_MAX;

  ShardScheduler(unsigned workers, unsigned shards) : qs_(workers) {
    for (std::uint32_t s = 0; s < shards; ++s) qs_[s % workers].q.push_back(s);
  }

  /// Pops a shard for worker `w` to process: the first of its own
  /// shards for which has_work(shard) holds, else one stolen from a
  /// victim (sets `stole`). Returns kNoShard when no deque holds an
  /// actionable shard — the caller idles and retries.
  template <class HasWork>
  std::uint32_t acquire(unsigned w, HasWork&& has_work, bool& stole) {
    stole = false;
    {
      std::lock_guard lk(qs_[w].mu);
      auto& q = qs_[w].q;
      for (std::size_t k = 0, n = q.size(); k < n; ++k) {
        const std::uint32_t s = q.front();
        q.pop_front();
        if (has_work(s)) return s;
        q.push_back(s);
      }
    }
    for (std::size_t v = 1; v < qs_.size(); ++v) {
      auto& vic = qs_[(w + v) % qs_.size()];
      std::lock_guard lk(vic.mu);
      for (auto it = vic.q.rbegin(); it != vic.q.rend(); ++it) {
        if (!has_work(*it)) continue;
        const std::uint32_t s = *it;
        vic.q.erase(std::next(it).base());
        stole = true;
        return s;
      }
    }
    return kNoShard;
  }

  /// Hands a processed shard back to worker `w`'s deque.
  void release(unsigned w, std::uint32_t s) {
    std::lock_guard lk(qs_[w].mu);
    qs_[w].q.push_back(s);
  }

 private:
  struct alignas(64) Queue {
    std::mutex mu;
    std::deque<std::uint32_t> q;
  };
  std::deque<Queue> qs_;  ///< deque: Queue is not movable (mutex)
};

}  // namespace ctdf::machine::detail
