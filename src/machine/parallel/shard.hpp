// The sync (cycle-synchronous) engine's per-worker shard state: one
// worker's exclusive inbox, outbox, ready list, memory-bank deferral
// lists, counters, and first-error capture slots. Owner-exclusive
// within a phase; only read across phase barriers.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "machine/frames.hpp"
#include "machine/integrity.hpp"
#include "machine/parallel/rank.hpp"

namespace ctdf::machine::detail {

/// Everything one worker owns exclusively: its inbox, its outbox, its
/// ready list, and its memory bank's I-structure deferral lists (its
/// frame partition lives in the shared FrameStore, keyed by context).
/// Padded so neighbouring shards don't share lines.
struct alignas(64) Shard {
  std::map<std::uint64_t, std::vector<PToken>> inbox;
  std::vector<PToken> outbox;
  std::vector<QEntry> ready;
  std::vector<std::pair<std::uint32_t, dfg::NodeId>> released;  ///< fired slots
  DeferredMap deferred;
  std::uint64_t tokens_sent = 0;
  std::uint64_t matches = 0;
  std::uint64_t deferred_reads = 0;
  std::uint64_t integrity_checks = 0;
  bool collision = false;
  /// Any memory-discipline violation from apply_mem (I-structure double
  /// write, or with checking on a race / orphan response).
  bool mem_error = false;
  /// Checking mode: a delivery hit a written (unconsumed) slot tag.
  bool tag_error = false;
  /// Checking mode: a release sweep found an empty non-literal slot.
  bool release_error = false;

  // Fault injection (owner-exclusive; merged / resolved by the
  // coordinator between phases).
  std::unordered_set<std::uint64_t> dedup_seen;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t retries = 0;
  bool retry_exhausted = false;
  Rank fail_rank;           ///< lowest-rank exhausted transmission
  dfg::NodeId fail_node;    ///< its destination
  Rank collision_rank;  ///< lowest-rank collision (fault mode reports
  Token collision_tok;  ///< directly instead of delegating)
  std::uint32_t mem_seq = UINT32_MAX;  ///< lowest failing memory firing seq
  MemCheck mem_check;                  ///< its verdict (cell, kind, ...)
  dfg::NodeId mem_node;
  Rank tag_rank;  ///< lowest-rank tag violation (fault-mode direct report)
  Token tag_tok;
  /// Which tag verdict tag_tok carries: kTagOccupied (double write) or
  /// kTagOverrun (arity undercount, reported as read-empty).
  FrameStore::Deliver tag_kind = FrameStore::Deliver::kTagOccupied;
  std::uint32_t release_ctx = 0;  ///< first failing release sweep
  dfg::NodeId release_node;
  int release_port = 0;
};

}  // namespace ctdf::machine::detail
