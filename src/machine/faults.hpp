// Deterministic fault injection and the typed failure taxonomy of the
// machine (the robustness layer over the perfect simulator).
//
// The fault model mirrors what a real explicit-token-store machine
// (Monsoon) can suffer transiently:
//  (a) the inter-PE network drops, duplicates, or delays tokens;
//  (b) the split-phase memory subsystem NACKs a request;
//  (c) the finite frame store runs out of iteration frames.
// Recovery is sequence-numbered idempotent redelivery with capped
// exponential backoff for (a)/(b), and back-pressure (an adaptive
// k-bound at the loop entries) for (c). Every fault decision is a pure
// function of (fault seed, event identity), so a faulted run is exactly
// reproducible and the differential sweep in
// tests/machine_fault_equiv_test.cpp can assert the headline invariant:
// a within-budget fault plan yields the same final store and the same
// semantic counters (ops fired by kind, memory reads/writes) as the
// fault-free run, and an all-zero plan is byte-identical to a run with
// no fault machinery engaged at all.
#pragma once

#include <cstdint>
#include <string>

#include "machine/options.hpp"

namespace ctdf::machine {

/// The failure taxonomy. Every way a run can fail has a code; the
/// legacy string interface (RunStats::error) carries the rendered
/// RunError so existing callers and tests keep working unchanged.
enum class ErrorCode : std::uint8_t {
  kNone = 0,
  kDeadlock,         ///< no events pending, End never fired (incl. livelock watchdog)
  kSlotCollision,    ///< two tokens waiting on one matching-slot port
  kCycleCap,         ///< RunBudget::max_cycles exceeded
  kFrameExhausted,   ///< back-pressured loop entries can never proceed
  kRetryExhausted,   ///< drop/NACK retry budget spent on one event
  kDeadlineExceeded,  ///< RunBudget::deadline_ms spent before completion
  kTokenBudget,       ///< RunBudget::max_tokens exceeded
  kIStoreDoubleWrite,  ///< second write to a write-once cell
  kStoreInFlight,    ///< End fired while a store's ack was uncollected

  // --check=integrity violations (machine/integrity.hpp).
  kIntegrityDoubleWrite,  ///< token for a slot already written, unconsumed
  kIntegrityReadEmpty,    ///< firing consumed a slot no token ever wrote
  kIntegrityMemRace,      ///< unordered same-cell accesses, one a write
  kIntegrityOrphanResponse,  ///< memory response with no outstanding request
};

/// Stable machine-readable slug ("deadlock", "cycle-cap", ...): the
/// `error.code` field of --stats-json.
[[nodiscard]] const char* code_slug(ErrorCode code);

/// Typed run failure: a short one-line message plus an optional
/// multi-line structured diagnosis (the watchdog report). render()
/// produces the backward-compatible string stored in RunStats::error.
struct RunError {
  ErrorCode code = ErrorCode::kNone;
  std::string message;
  std::string diagnosis;

  [[nodiscard]] bool empty() const { return code == ErrorCode::kNone; }
  [[nodiscard]] std::string render() const {
    return diagnosis.empty() ? message : message + "\n" + diagnosis;
  }
};

/// True when any fault machinery must be engaged for `opt` (rates or a
/// finite frame capacity). When false the engines run the exact
/// fault-free code path — byte-identical behavior and hot-path cost.
[[nodiscard]] inline bool fault_active(const MachineOptions& opt) {
  return opt.faults.enabled() || opt.frame_capacity > 0;
}

/// Backoff before retry `attempt` (1-based): base << (attempt-1),
/// capped, never less than one cycle.
[[nodiscard]] std::uint64_t backoff_delay(const FaultPlan& plan,
                                          unsigned attempt);

/// The largest extra delay injection can add to any single scheduled
/// delivery (full drop-retry ladder + jitter + duplicate spread). The
/// event engine widens its calendar horizon by this.
[[nodiscard]] std::uint64_t max_fault_delay(const FaultPlan& plan);

/// Parses a `--faults=` spec: comma-separated key=value with keys
/// drop, dup, jitter, nack (rates in [0,1]), attempts, backoff, cap,
/// watchdog (integers). Returns an empty string on success, else the
/// complaint.
[[nodiscard]] std::string parse_fault_spec(const std::string& spec,
                                           FaultPlan& plan);

/// Per-run fault oracle. Stateless apart from the id/seq counters the
/// serial engines draw from (the parallel engine derives ids from token
/// ranks instead); every decision is hash(seed, id, salt).
class FaultState {
 public:
  explicit FaultState(const FaultPlan& plan) : plan_(plan) {}

  /// The injected fate of one network transmission (one token on one
  /// arc): total extra delay from the drop-retry ladder and jitter,
  /// plus an optional duplicate copy. `exhausted` means every allowed
  /// transmission attempt was dropped — the retry budget is spent.
  struct Transit {
    std::uint64_t delay = 0;      ///< extra cycles before delivery
    std::uint64_t dup_delay = 0;  ///< duplicate copy's extra cycles
    unsigned drops = 0;           ///< retransmissions consumed
    unsigned jitters = 0;         ///< 1 if jitter was injected
    bool duplicated = false;
    bool exhausted = false;
  };
  [[nodiscard]] Transit transit(std::uint64_t id) const;

  /// The injected fate of one memory firing: how many NACKs it absorbs
  /// before the memory accepts it, and the summed backoff delay.
  struct Nack {
    std::uint64_t delay = 0;
    unsigned nacks = 0;
    bool exhausted = false;
  };
  [[nodiscard]] Nack nack(std::uint64_t id) const;

  /// Serial engines' deterministic id stream (one per roll site).
  std::uint64_t next_id() { return ++nonce_; }
  /// Fresh nonzero dedup sequence number for a duplicated token.
  std::uint64_t next_seq() { return ++seq_; }
  /// Rank-derived dedup sequence number (parallel engine): nonzero,
  /// collision-free in practice (64-bit hash).
  [[nodiscard]] std::uint64_t seq_for(std::uint64_t id) const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  /// Scheduler steps without a firing before the no-progress watchdog
  /// trips (FaultPlan::watchdog_steps, 0 = a generous default).
  [[nodiscard]] std::uint64_t watchdog_limit() const {
    return plan_.watchdog_steps ? plan_.watchdog_steps
                                : std::uint64_t{1} << 20;
  }

 private:
  [[nodiscard]] std::uint64_t mix(std::uint64_t id, std::uint32_t salt) const;
  [[nodiscard]] bool roll(std::uint64_t id, std::uint32_t salt,
                          double rate) const;

  FaultPlan plan_;
  std::uint64_t nonce_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace ctdf::machine
