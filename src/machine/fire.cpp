#include "machine/fire.hpp"

namespace ctdf::machine {

void MemoryState::init(std::size_t memory_cells,
                       const std::vector<IStructureRegion>& istructures) {
  store.cells.assign(memory_cells, 0);
  istate.assign(memory_cells, kNormal);
  for (const auto& r : istructures)
    for (std::uint32_t c = r.base; c < r.base + r.extent; ++c)
      istate[c] = kEmpty;
}

MemAccess resolve_mem(const ExecOp& op, const std::int64_t* in,
                      std::size_t num_cells) {
  const auto cell_of = [&](std::int64_t index) {
    const std::int64_t w = lang::wrap_index(index, op.mem_extent);
    const std::uint64_t cell = op.mem_base + static_cast<std::uint64_t>(w);
    CTDF_ASSERT(cell < num_cells);
    return cell;
  };
  MemAccess a{};
  switch (op.kind) {
    case dfg::OpKind::kLoad:
      a.cell = op.mem_base;
      CTDF_ASSERT(a.cell < num_cells);
      break;
    case dfg::OpKind::kLoadIdx:
      a.cell = cell_of(in[0]);
      break;
    case dfg::OpKind::kStore:
      a.cell = op.mem_base;
      CTDF_ASSERT(a.cell < num_cells);
      a.store_value = in[0];
      break;
    case dfg::OpKind::kStoreIdx:
    case dfg::OpKind::kIStore:
      a.cell = cell_of(in[1]);
      a.store_value = in[0];
      break;
    case dfg::OpKind::kIFetch:
      a.cell = cell_of(in[0]);
      break;
    default:
      CTDF_UNREACHABLE("not a memory op");
  }
  return a;
}

}  // namespace ctdf::machine
