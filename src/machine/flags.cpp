#include "machine/flags.hpp"

#include <cerrno>
#include <cstdlib>
#include <string>

#include "machine/faults.hpp"
#include "support/env.hpp"

namespace ctdf::machine {
namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string value_of(const std::string& arg) {
  const auto eq = arg.find('=');
  return eq == std::string::npos ? "" : arg.substr(eq + 1);
}

/// Strict unsigned parse: rejects empty strings, signs (std::stoul
/// silently wraps "-1"), embedded junk ("8x"), and overflow, so a typo
/// is a flag error instead of a silent misconfiguration.
bool parse_unsigned(const std::string& v, unsigned long long& out) {
  if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos)
    return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(v.c_str(), &end, 10);
  return errno == 0 && end == v.c_str() + v.size();
}

/// Value-carrying unsigned flags that need no range restriction beyond
/// fitting the field.
template <typename T>
MachineFlagParse set_unsigned(const std::string& arg, T& field) {
  unsigned long long v = 0;
  if (!parse_unsigned(value_of(arg), v)) return MachineFlagParse::kBadValue;
  field = static_cast<T>(v);
  return MachineFlagParse::kApplied;
}

}  // namespace

MachineFlagParse apply_machine_flag(MachineOptions& o, const std::string& arg,
                                    std::string* detail) {
  if (detail) detail->clear();
  if (starts_with(arg, "--engine=")) {
    const std::string v = value_of(arg);
    if (v == "scan") {
      o.engine = EngineKind::kScan;
    } else if (v == "event") {
      o.engine = EngineKind::kEvent;
    } else {
      return MachineFlagParse::kBadValue;
    }
    return MachineFlagParse::kApplied;
  }
  if (starts_with(arg, "--check=")) {
    const std::string v = value_of(arg);
    if (v == "off") {
      o.check = CheckMode::kOff;
    } else if (v == "integrity") {
      o.check = CheckMode::kIntegrity;
    } else {
      return MachineFlagParse::kBadValue;
    }
    return MachineFlagParse::kApplied;
  }
  if (starts_with(arg, "--width=")) return set_unsigned(arg, o.width);
  if (starts_with(arg, "--mem-latency=")) return set_unsigned(arg, o.mem_latency);
  if (starts_with(arg, "--processors=")) return set_unsigned(arg, o.processors);
  if (starts_with(arg, "--network-latency="))
    return set_unsigned(arg, o.network_latency);
  if (arg == "--place-by-node") {
    o.placement = Placement::kByNode;
    return MachineFlagParse::kApplied;
  }
  if (starts_with(arg, "--loop-bound=")) return set_unsigned(arg, o.loop_bound);
  if (arg == "--barrier") {
    o.loop_mode = LoopMode::kBarrier;
    return MachineFlagParse::kApplied;
  }
  if (starts_with(arg, "--sched-seed="))
    return set_unsigned(arg, o.scheduler_seed);
  if (starts_with(arg, "--max-cycles="))
    return set_unsigned(arg, o.budget.max_cycles);
  if (starts_with(arg, "--max-tokens="))
    return set_unsigned(arg, o.budget.max_tokens);
  if (starts_with(arg, "--deadline-ms=")) {
    // 0 is legal and means "already expired" (up-front rejection);
    // removing a deadline is the flag's absence, not a sentinel value.
    unsigned long long v = 0;
    if (!parse_unsigned(value_of(arg), v) || v > (1ull << 40))
      return MachineFlagParse::kBadValue;
    o.budget.deadline_ms = static_cast<std::int64_t>(v);
    return MachineFlagParse::kApplied;
  }
  if (starts_with(arg, "--frame-capacity="))
    return set_unsigned(arg, o.frame_capacity);
  if (starts_with(arg, "--fault-seed=")) return set_unsigned(arg, o.faults.seed);
  if (starts_with(arg, "--faults=")) {
    const std::string complaint = parse_fault_spec(value_of(arg), o.faults);
    if (!complaint.empty()) {
      if (detail) *detail = complaint;
      return MachineFlagParse::kBadValue;
    }
    return MachineFlagParse::kApplied;
  }
  if (starts_with(arg, "--host-threads=")) {
    // 0 is only meaningful as the *absence* of the flag (env default);
    // asking for zero worker threads explicitly is a mistake.
    unsigned long long v = 0;
    if (!parse_unsigned(value_of(arg), v) || v == 0 || v > 1u << 16)
      return MachineFlagParse::kBadValue;
    o.host_threads = static_cast<unsigned>(v);
    return MachineFlagParse::kApplied;
  }
  if (starts_with(arg, "--parallel=")) {
    const std::string v = value_of(arg);
    if (v == "sync") {
      o.parallel = ParallelMode::kSync;
    } else if (v == "async") {
      o.parallel = ParallelMode::kAsync;
    } else {
      return MachineFlagParse::kBadValue;
    }
    return MachineFlagParse::kApplied;
  }
  if (starts_with(arg, "--slack=")) {
    unsigned long long v = 0;
    if (!parse_unsigned(value_of(arg), v) || v > 1u << 16)
      return MachineFlagParse::kBadValue;
    o.slack = static_cast<unsigned>(v);
    return MachineFlagParse::kApplied;
  }
  if (arg == "--deterministic" || arg == "--deterministic=1") {
    o.deterministic = true;
    return MachineFlagParse::kApplied;
  }
  if (arg == "--deterministic=0") {
    o.deterministic = false;
    return MachineFlagParse::kApplied;
  }
  if (arg == "--trace") {
    o.trace = true;
    return MachineFlagParse::kApplied;
  }
  return MachineFlagParse::kNotMachineFlag;
}

MachineOptions default_cli_machine_options() {
  MachineOptions o;
  o.loop_mode = LoopMode::kPipelined;
  o.host_threads = support::host_threads_from_env();
  return o;
}

}  // namespace ctdf::machine
