// Parallel cycle-synchronous execution engine.
//
// The simulated machine is inherently cycle-synchronous, so host
// parallelism comes from sharding one cycle's work, not from relaxing
// the schedule: RunStats, the final store, and execution reports are
// bit-identical to the serial engine for every MachineOptions
// configuration, including seeded (randomized) scheduling. The
// differential suite in tests/machine_parallel_equiv_test.cpp enforces
// this.
//
// Ownership (W = host_threads workers):
//  * Matching store: slot (ctx, node) belongs to shard
//    shard_of(ctx, node). Each shard delivers only its own tokens and
//    touches only its own slot partition.
//  * Memory: cells are interleaved across banks in cacheline-sized
//    blocks (bank_of = (cell >> 3) % W); bank w applies its loads,
//    stores, and I-structure transitions in global firing order, so
//    same-cycle accesses to one cell resolve exactly as the serial
//    engine resolves them.
//  * Scheduling state (ready queue, RNG, loop contexts, k-bound
//    credits, statistics) lives with the coordinator (worker 0).
//
// One simulated cycle advances in two phases, split into five steps:
//
//   phase 1 — match/fire into thread-local outboxes:
//     [deliver ∥]   each shard drains its inbox bucket for this cycle
//                   in token-rank order, fills matching slots, and
//                   emits rank-tagged ready entries.
//     [schedule]    the coordinator merges the shards' (sorted) ready
//                   entries into the global queue by rank and replays
//                   the serial selection rule verbatim: FIFO budget,
//                   seeded random pops, or per-PE arbitration.
//     [execute ∥]   selected firings run speculatively: pure operators
//                   are strided across workers; memory operators are
//                   resolved to cells, then applied by bank owners in
//                   firing order. Emissions go to per-worker outboxes
//                   tagged (seq, intra).
//   phase 2 — barriered deterministic exchange:
//     [replay]      the coordinator walks the firing list in order,
//                   applying everything order-sensitive and cheap:
//                   token accounting, context allocation/retirement,
//                   k-bound stalls, statistics, loop-entry firings.
//     [exchange ∥]  each destination shard collects its tokens from
//                   every outbox, sorts them by (seq, intra) — the
//                   fixed tie-break order — and appends them to its
//                   future inbox buckets; fired slots are erased.
//
// The rank (batch, seq, intra) — batch = exchange round, seq = firing
// position in the cycle, intra = emission index within the firing —
// totally orders every token exactly as the serial engine's FIFO
// vectors do, which is what makes the merge deterministic.
//
// Error paths (deadlock, collision, I-structure double write, pending
// store at End) abandon the parallel run; machine::run() then re-runs
// on the serial engine so error reports match it byte-for-byte,
// container iteration order included. The cycle-cap report is
// deterministic and is produced directly.
#include "machine/engine_parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <functional>
#include <map>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace ctdf::machine::detail {

namespace {

using dfg::NodeId;
using dfg::OpKind;

constexpr std::uint32_t kNoInvocation = UINT32_MAX;

/// (batch, seq, intra) — the total order on tokens; see file comment.
struct Rank {
  std::uint64_t batch = 0;
  std::uint32_t seq = 0;
  std::uint32_t intra = 0;

  friend bool operator<(const Rank& a, const Rank& b) {
    if (a.batch != b.batch) return a.batch < b.batch;
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.intra < b.intra;
  }
};

struct PToken {
  Rank rank;
  std::uint64_t due = 0;  ///< absolute delivery cycle
  std::uint32_t ctx = 0;
  NodeId node;
  std::uint16_t port = 0;
  bool requeued = false;  ///< see the serial engine's Token::requeued
  std::int64_t value = 0;
};

/// Matching slot; same lifecycle as the serial engine's (created by the
/// first arriving token, erased when the operator fires).
struct Slot {
  std::vector<std::int64_t> values;
  std::vector<bool> filled;
  std::uint16_t remaining = 0;
};

/// A ready operator, tagged with the rank of the token that completed
/// it so the coordinator can merge shard lists into serial FIFO order.
struct QEntry {
  Rank rank;
  std::uint32_t ctx = 0;
  NodeId node;
  bool immediate = false;
  bool requeued = false;
  std::uint16_t port = 0;
  std::int64_t value = 0;
  /// For immediate LoopExit entries: the invocation context, captured
  /// at delivery (CtxInfo is immutable after creation).
  std::uint32_t invocation = kNoInvocation;
};

enum class FiringClass : std::uint8_t { kPure, kMem, kLoop, kEnd };

struct Firing {
  QEntry e;
  std::uint32_t seq = 0;
  FiringClass klass = FiringClass::kPure;
  // Filled during parallel execution:
  std::uint32_t emitted = 0;       ///< tokens emitted into `primary`
  std::uint32_t primary = 0;       ///< context the emissions landed in
  std::uint32_t intra_used = 0;    ///< next free intra index
  std::uint64_t cell = 0;          ///< resolved memory cell (kMem)
  std::int64_t store_value = 0;    ///< value operand (stores)
  /// Deferred I-structure reads satisfied by this firing: extra live
  /// tokens per *other* context. Rare; usually empty.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> extra_live;
};

struct CtxInfo {
  cfg::LoopId loop;
  std::uint32_t invocation = 0;
  std::uint32_t iter = 0;
};

struct CtxKey {
  std::uint32_t loop;
  std::uint32_t invocation;
  std::uint32_t iter;
  bool operator==(const CtxKey&) const = default;
};

struct CtxKeyHash {
  std::size_t operator()(const CtxKey& k) const {
    std::uint64_t h = k.loop;
    h = h * 0x9e3779b97f4a7c15ULL + k.invocation;
    h = h * 0x9e3779b97f4a7c15ULL + k.iter;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

struct LoopInstance {
  unsigned in_flight = 0;
  std::vector<PToken> stalled;
};

/// Everything one worker owns exclusively: its matching-store
/// partition, its inbox, its outbox, and its memory bank's I-structure
/// deferral lists. Padded so neighbouring shards don't share lines.
struct alignas(64) Shard {
  std::unordered_map<std::uint64_t, Slot> slots;
  std::map<std::uint64_t, std::vector<PToken>> inbox;
  std::vector<PToken> outbox;
  std::vector<QEntry> ready;
  std::vector<std::uint64_t> erase_keys;
  std::unordered_map<std::size_t,
                     std::vector<std::pair<std::uint32_t, NodeId>>>
      deferred;
  std::uint64_t tokens_sent = 0;
  std::uint64_t matches = 0;
  std::uint64_t deferred_reads = 0;
  bool collision = false;
  bool istore_error = false;
};

/// Spin/yield worker pool: worker 0 is the calling (coordinator)
/// thread. Phases are released by an epoch increment (release) and
/// collected by an arrival counter (acquire), which is all the
/// synchronization the engine needs — every structure is either
/// owner-exclusive within a phase or only read across phases.
class Pool {
 public:
  explicit Pool(unsigned workers) : workers_(workers) {
    threads_.reserve(workers_ - 1);
    for (unsigned w = 1; w < workers_; ++w)
      threads_.emplace_back([this, w] { worker_loop(w); });
  }

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  ~Pool() {
    shutdown_.store(true, std::memory_order_release);
    for (auto& t : threads_) t.join();
  }

  /// Runs fn(w) on every worker (coordinator included) and waits.
  void run(const std::function<void(unsigned)>& fn) {
    job_ = &fn;
    remaining_.store(workers_ - 1, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    fn(0);
    while (remaining_.load(std::memory_order_acquire) != 0)
      std::this_thread::yield();
  }

 private:
  void worker_loop(unsigned w) {
    std::uint64_t seen = 0;
    for (;;) {
      while (epoch_.load(std::memory_order_acquire) == seen) {
        if (shutdown_.load(std::memory_order_acquire)) return;
        std::this_thread::yield();
      }
      seen = epoch_.load(std::memory_order_acquire);
      (*job_)(w);
      remaining_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  unsigned workers_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<unsigned> remaining_{0};
  std::atomic<bool> shutdown_{false};
  const std::function<void(unsigned)>* job_ = nullptr;
  std::vector<std::thread> threads_;
};

class ParallelEngine {
 public:
  ParallelEngine(const dfg::Graph& g, std::size_t memory_cells,
                 const MachineOptions& opt,
                 const std::vector<IStructureRegion>& istructures)
      : g_(g),
        opt_(opt),
        workers_(std::min(opt.host_threads, 256u)),
        rng_(opt.scheduler_seed),
        shards_(workers_),
        pool_(workers_) {
    CTDF_ASSERT_MSG(opt_.alu_latency >= 1 && opt_.mem_latency >= 1,
                    "latencies must be at least one cycle");
    cells_.assign(memory_cells, 0);
    istate_.assign(memory_cells, kNormal);
    for (const auto& r : istructures)
      for (std::uint32_t c = r.base; c < r.base + r.extent; ++c)
        istate_[c] = kEmpty;
    contexts_.push_back(CtxInfo{});
    live_tokens_.push_back(0);
    retired_.push_back(false);
    stats_.fired_by_kind.assign(17, 0);
    stats_.first_fire_cycle.assign(g.num_nodes(), UINT64_MAX);

    out_index_.resize(g.num_nodes());
    for (const dfg::Arc& a : g.arcs())
      out_index_[a.src.index()].push_back(a);
    consumed_inputs_.resize(g.num_nodes());
    for (std::size_t n = 0; n < g.num_nodes(); ++n) {
      const dfg::Node& node = g_.node(NodeId{static_cast<std::uint32_t>(n)});
      std::uint32_t c = 0;
      for (std::uint16_t p = 0; p < node.num_inputs; ++p)
        if (!node.operands[p].is_literal) ++c;
      consumed_inputs_[n] = c;
    }
  }

  /// nullopt = delegate to the serial engine (see header).
  std::optional<RunResult> run() {
    boot();
    exchange(/*batch=*/0, /*cycle_for_profile=*/0);

    std::uint64_t cycle = 0;
    while (!completed_) {
      if (cycle >= opt_.max_cycles) {
        stats_.cycles = cycle;
        stats_.error = "cycle cap exceeded (possible livelock or "
                       "non-terminating program)";
        merge_shard_counters();
        stats_.completed = false;
        RunResult out;
        out.stats = std::move(stats_);
        out.store.cells = std::move(cells_);
        return out;
      }
      cycle_ = cycle;

      pool_.run([this](unsigned w) { deliver_phase(w); });
      for (const Shard& s : shards_)
        if (s.collision) return std::nullopt;

      merge_ready();
      stats_.peak_ready = std::max<std::uint64_t>(
          stats_.peak_ready, queue_.size() - head_);

      select();
      if (!firings_.empty()) {
        pool_.run([this](unsigned w) { exec_phase(w); });
        if (!mem_idx_.empty()) {
          pool_.run([this](unsigned w) { bank_phase(w); });
          for (const Shard& s : shards_)
            if (s.istore_error) return std::nullopt;
        }
        replay();
      }
      if (opt_.record_profile && profile_ok(cycle))
        stats_.profile[cycle] =
            static_cast<std::uint32_t>(firings_.size());

      exchange(/*batch=*/cycle + 1, cycle);

      if (completed_) {
        stats_.cycles = cycle + 1;
        break;
      }
      if (head_ < queue_.size()) {
        ++cycle;
      } else {
        std::uint64_t next = UINT64_MAX;
        for (const Shard& s : shards_)
          if (!s.inbox.empty()) next = std::min(next, s.inbox.begin()->first);
        if (next == UINT64_MAX) return std::nullopt;  // deadlock
        cycle = next;
      }
    }

    return finalize();
  }

 private:
  static constexpr std::uint8_t kNormal = 0, kEmpty = 1, kFull = 2;

  [[nodiscard]] std::uint64_t slot_key(std::uint32_t ctx, NodeId node) const {
    return static_cast<std::uint64_t>(ctx) * g_.num_nodes() + node.index();
  }

  [[nodiscard]] unsigned shard_of(std::uint32_t ctx, NodeId node) const {
    const std::uint64_t h = slot_key(ctx, node) * 0x9e3779b97f4a7c15ULL;
    return static_cast<unsigned>((h >> 33) % workers_);
  }

  /// Cacheline-block interleave: consecutive 8-cell blocks round-robin
  /// across banks — balances same-cycle array sweeps without false
  /// sharing on the cells vector.
  [[nodiscard]] unsigned bank_of(std::uint64_t cell) const {
    return static_cast<unsigned>((cell >> 3) % workers_);
  }

  [[nodiscard]] unsigned pe_of(std::uint32_t ctx, NodeId node) const {
    if (opt_.processors == 0) return 0;
    const std::uint64_t key =
        opt_.placement == Placement::kByNode ? node.value() : ctx;
    return static_cast<unsigned>(
        ((key * 0x9e3779b97f4a7c15ULL) >> 33) % opt_.processors);
  }

  [[nodiscard]] bool non_strict(const dfg::Node& n) const {
    switch (n.kind) {
      case OpKind::kMerge:
      case OpKind::kLoopExit:
        return true;
      case OpKind::kLoopEntry:
        return opt_.loop_mode == LoopMode::kPipelined;
      default:
        return false;
    }
  }

  bool profile_ok(std::uint64_t cycle) {
    if (cycle >= (1u << 22)) return false;
    if (stats_.profile.size() <= cycle) stats_.profile.resize(cycle + 1, 0);
    return true;
  }

  // -- boot ---------------------------------------------------------------

  void boot() {
    const NodeId s = g_.start();
    const dfg::Node& start = g_.node(s);
    ++stats_.ops_fired;
    ++stats_.fired_by_kind[static_cast<std::size_t>(start.kind)];
    const unsigned from_pe = pe_of(0, s);
    std::uint32_t intra = 0;
    for (std::uint16_t p = 0; p < start.num_outputs; ++p) {
      for (const dfg::Arc& a : out_index_[s.index()]) {
        if (a.src_port != p) continue;
        std::uint64_t hop = 0;
        if (opt_.processors > 0 && pe_of(0, a.dst) != from_pe)
          hop = opt_.network_latency;
        coord_outbox_.push_back(PToken{{0, 0, intra++},
                                       /*due=*/hop,
                                       /*ctx=*/0, a.dst, a.dst_port,
                                       /*requeued=*/false,
                                       start.start_values[p]});
        ++live_tokens_[0];
      }
    }
  }

  // -- phase 1: deliver (parallel, per shard) -----------------------------

  void deliver_phase(unsigned w) {
    Shard& s = shards_[w];
    s.outbox.clear();
    s.ready.clear();
    const auto it = s.inbox.find(cycle_);
    if (it == s.inbox.end()) return;
    for (const PToken& t : it->second) deliver(s, t);
    s.inbox.erase(it);
  }

  void deliver(Shard& s, const PToken& t) {
    ++s.tokens_sent;
    const dfg::Node& n = g_.node(t.node);
    if (non_strict(n)) {
      QEntry e{t.rank, t.ctx, t.node, /*immediate=*/true, t.requeued,
               t.port, t.value, kNoInvocation};
      if (n.kind == OpKind::kLoopExit && contexts_[t.ctx].loop.valid())
        e.invocation = contexts_[t.ctx].invocation;
      s.ready.push_back(e);
      return;
    }
    const std::uint64_t key = slot_key(t.ctx, t.node);
    auto [slot_it, inserted] = s.slots.try_emplace(key);
    Slot& slot = slot_it->second;
    if (inserted) {
      slot.values.assign(n.num_inputs, 0);
      slot.filled.assign(n.num_inputs, false);
      slot.remaining = 0;
      for (std::uint16_t p = 0; p < n.num_inputs; ++p) {
        if (n.operands[p].is_literal) {
          slot.values[p] = n.operands[p].literal;
          slot.filled[p] = true;
        } else {
          ++slot.remaining;
        }
      }
    }
    if (slot.filled[t.port]) {
      s.collision = true;  // serial rerun reports the exact diagnostic
      return;
    }
    slot.values[t.port] = t.value;
    slot.filled[t.port] = true;
    ++s.matches;
    if (--slot.remaining == 0)
      s.ready.push_back(QEntry{t.rank, t.ctx, t.node, /*immediate=*/false,
                               false, 0, 0, kNoInvocation});
  }

  // -- schedule (coordinator) ---------------------------------------------

  /// Appends the shards' rank-sorted ready lists to the global queue in
  /// rank order — reproducing the order the serial engine would have
  /// appended them in while draining the one global pending vector.
  void merge_ready() {
    std::vector<std::size_t> cursor(workers_, 0);
    for (;;) {
      int best = -1;
      for (unsigned w = 0; w < workers_; ++w) {
        const Shard& s = shards_[w];
        if (cursor[w] >= s.ready.size()) continue;
        if (best < 0 ||
            s.ready[cursor[w]].rank <
                shards_[static_cast<unsigned>(best)]
                    .ready[cursor[static_cast<unsigned>(best)]]
                    .rank)
          best = static_cast<int>(w);
      }
      if (best < 0) break;
      queue_.push_back(
          shards_[static_cast<unsigned>(best)]
              .ready[cursor[static_cast<unsigned>(best)]++]);
    }
  }

  /// Replays the serial selection rule on the global queue: which ready
  /// operators fire this cycle, in which order. Mirrors Engine::run()'s
  /// abstract-pool loop (FIFO budget + optional seeded swaps, stopping
  /// at End) and Engine::fire_multi_pe (per-PE arbitration, order of
  /// survivors preserved).
  void select() {
    firings_.clear();
    mem_idx_.clear();
    if (opt_.processors == 0) {
      const std::uint64_t budget = opt_.width == 0 ? UINT64_MAX : opt_.width;
      std::uint64_t fired = 0;
      while (head_ < queue_.size() && fired < budget) {
        if (opt_.scheduler_seed != 0) {
          const std::size_t span = queue_.size() - head_;
          const std::size_t pick = head_ + rng_.next_below(span);
          std::swap(queue_[head_], queue_[pick]);
        }
        const bool is_end = push_firing(queue_[head_++]);
        ++fired;
        if (is_end) break;
      }
      if (head_ > 4096 && head_ * 2 > queue_.size()) {
        queue_.erase(queue_.begin(),
                     queue_.begin() + static_cast<std::ptrdiff_t>(head_));
        head_ = 0;
      }
    } else {
      std::vector<std::uint8_t> busy(opt_.processors, 0);
      std::vector<QEntry> kept;
      std::size_t i = head_;
      bool stop = false;
      for (; i < queue_.size() && !stop; ++i) {
        const unsigned pe = pe_of(queue_[i].ctx, queue_[i].node);
        if (busy[pe]) {
          kept.push_back(queue_[i]);
          continue;
        }
        busy[pe] = 1;
        stop = push_firing(queue_[i]);
      }
      for (; i < queue_.size(); ++i) kept.push_back(queue_[i]);
      queue_ = std::move(kept);
      head_ = 0;
    }
  }

  /// Classifies and appends one firing; returns true for End (selection
  /// stops — the serial engine's completed_ check).
  bool push_firing(const QEntry& e) {
    Firing f;
    f.e = e;
    f.seq = static_cast<std::uint32_t>(firings_.size());
    switch (g_.node(e.node).kind) {
      case OpKind::kEnd:
        f.klass = FiringClass::kEnd;
        break;
      case OpKind::kLoopEntry:
        f.klass = FiringClass::kLoop;
        break;
      case OpKind::kLoad:
      case OpKind::kLoadIdx:
      case OpKind::kStore:
      case OpKind::kStoreIdx:
      case OpKind::kIStore:
      case OpKind::kIFetch:
        f.klass = FiringClass::kMem;
        mem_idx_.push_back(f.seq);
        break;
      default:
        f.klass = FiringClass::kPure;
        break;
    }
    firings_.push_back(std::move(f));
    return firings_.back().klass == FiringClass::kEnd;
  }

  // -- execute (parallel) -------------------------------------------------

  /// Emission helper for the parallel phases: one token per out-arc of
  /// (node, port), tagged (seq, intra) and routed later by the
  /// exchange. Counts the emissions toward f.primary's live tokens
  /// (applied by the replay at f's position in the firing order).
  void emit_exec(Shard& s, Firing& f, std::uint32_t token_ctx, NodeId node,
                 std::uint16_t port, std::int64_t value,
                 std::uint64_t latency, unsigned from_pe) {
    for (const dfg::Arc& a : out_index_[node.index()]) {
      if (a.src_port != port) continue;
      std::uint64_t hop = 0;
      if (opt_.processors > 0 && pe_of(token_ctx, a.dst) != from_pe)
        hop = opt_.network_latency;
      s.outbox.push_back(PToken{{0, f.seq, f.intra_used++},
                               cycle_ + latency + hop, token_ctx, a.dst,
                               a.dst_port, false, value});
      ++f.emitted;
    }
  }

  /// Pure-operator execution (strided seq % W) plus memory-operand
  /// resolution; no order-sensitive state is touched.
  void exec_phase(unsigned w) {
    Shard& s = shards_[w];
    const std::uint64_t alu = opt_.alu_latency;
    for (std::size_t i = w; i < firings_.size(); i += workers_) {
      Firing& f = firings_[i];
      const QEntry& e = f.e;
      const dfg::Node& n = g_.node(e.node);
      const unsigned from_pe = pe_of(e.ctx, e.node);
      f.primary = e.ctx;
      if (f.klass == FiringClass::kEnd || f.klass == FiringClass::kLoop)
        continue;  // replayed by the coordinator
      if (e.immediate) {
        switch (n.kind) {
          case OpKind::kMerge:
            emit_exec(s, f, e.ctx, e.node, 0, e.value, alu, from_pe);
            break;
          case OpKind::kLoopExit:
            CTDF_ASSERT_MSG(e.invocation != kNoInvocation,
                            "loop exit fired outside an iteration context");
            f.primary = e.invocation;
            emit_exec(s, f, e.invocation, e.node, e.port, e.value, alu,
                      from_pe);
            break;
          default:
            CTDF_UNREACHABLE("bad non-strict op");
        }
        continue;
      }
      const Shard& owner = shards_[shard_of(e.ctx, e.node)];
      const auto it = owner.slots.find(slot_key(e.ctx, e.node));
      CTDF_ASSERT(it != owner.slots.end() && it->second.remaining == 0);
      const std::vector<std::int64_t>& in = it->second.values;

      const auto cell_of = [&](std::int64_t index) {
        const std::int64_t wrapped = lang::wrap_index(index, n.mem_extent);
        const std::uint64_t cell =
            n.mem_base + static_cast<std::uint64_t>(wrapped);
        CTDF_ASSERT(cell < cells_.size());
        return cell;
      };

      switch (n.kind) {
        case OpKind::kBinOp:
          emit_exec(s, f, e.ctx, e.node, 0,
                    lang::eval_binop(n.bop, in[0], in[1]), alu, from_pe);
          break;
        case OpKind::kUnOp:
          emit_exec(s, f, e.ctx, e.node, 0, lang::eval_unop(n.uop, in[0]),
                    alu, from_pe);
          break;
        case OpKind::kSynch:
          emit_exec(s, f, e.ctx, e.node, 0, 0, alu, from_pe);
          break;
        case OpKind::kGate:
          emit_exec(s, f, e.ctx, e.node, 0, in[0], alu, from_pe);
          break;
        case OpKind::kSwitch: {
          const bool dir = in[dfg::port::kSwitchPred] != 0;
          emit_exec(s, f, e.ctx, e.node,
                    dir ? dfg::port::kSwitchTrue : dfg::port::kSwitchFalse,
                    in[dfg::port::kSwitchData], alu, from_pe);
          break;
        }
        case OpKind::kLoad:
          f.cell = n.mem_base;
          CTDF_ASSERT(f.cell < cells_.size());
          break;
        case OpKind::kLoadIdx:
          f.cell = cell_of(in[0]);
          break;
        case OpKind::kStore:
          f.cell = n.mem_base;
          CTDF_ASSERT(f.cell < cells_.size());
          f.store_value = in[0];
          break;
        case OpKind::kStoreIdx:
          f.cell = cell_of(in[1]);
          f.store_value = in[0];
          break;
        case OpKind::kIStore:
          f.cell = cell_of(in[1]);
          f.store_value = in[0];
          break;
        case OpKind::kIFetch:
          f.cell = cell_of(in[0]);
          break;
        default:
          CTDF_UNREACHABLE("op cannot fire strictly");
      }
    }
  }

  /// Split-phase memory, applied by bank owners in firing order — the
  /// serial engine's same-cycle read-after-write and write-after-write
  /// resolutions fall out exactly.
  void bank_phase(unsigned w) {
    Shard& s = shards_[w];
    const std::uint64_t mem = opt_.mem_latency;
    for (const std::uint32_t idx : mem_idx_) {
      Firing& f = firings_[idx];
      if (bank_of(f.cell) != w) continue;
      const QEntry& e = f.e;
      const dfg::Node& n = g_.node(e.node);
      const unsigned from_pe = pe_of(e.ctx, e.node);
      switch (n.kind) {
        case OpKind::kLoad:
        case OpKind::kLoadIdx:
          emit_exec(s, f, e.ctx, e.node, dfg::port::kLoadValue,
                    cells_[f.cell], mem, from_pe);
          emit_exec(s, f, e.ctx, e.node, dfg::port::kLoadAck, 0, mem,
                    from_pe);
          break;
        case OpKind::kStore:
        case OpKind::kStoreIdx:
          cells_[f.cell] = f.store_value;
          emit_exec(s, f, e.ctx, e.node, 0, 0, mem, from_pe);
          break;
        case OpKind::kIStore: {
          if (istate_[f.cell] == kFull) {
            s.istore_error = true;  // serial rerun reports it
            return;
          }
          istate_[f.cell] = kFull;
          cells_[f.cell] = f.store_value;
          emit_exec(s, f, e.ctx, e.node, 0, 0, mem, from_pe);
          if (const auto d = s.deferred.find(f.cell); d != s.deferred.end()) {
            for (const auto& [dctx, dnode] : d->second) {
              const std::uint32_t before = f.emitted;
              // The serial engine computes the hop origin from the
              // *storing* firing's context and the reader's node.
              emit_exec(s, f, dctx, dnode, 0, f.store_value, mem,
                        pe_of(e.ctx, dnode));
              f.extra_live.emplace_back(dctx, f.emitted - before);
              f.emitted = before;  // not in e.ctx: tracked via extra_live
            }
            s.deferred.erase(d);
          }
          break;
        }
        case OpKind::kIFetch:
          if (istate_[f.cell] == kFull || istate_[f.cell] == kNormal) {
            emit_exec(s, f, e.ctx, e.node, 0, cells_[f.cell], mem, from_pe);
          } else {
            ++s.deferred_reads;
            s.deferred[f.cell].emplace_back(e.ctx, e.node);
          }
          break;
        default:
          CTDF_UNREACHABLE("not a memory op");
      }
    }
  }

  // -- phase 2: replay (coordinator) --------------------------------------

  [[nodiscard]] static std::uint64_t instance_key(cfg::LoopId loop,
                                                  std::uint32_t invocation) {
    return (static_cast<std::uint64_t>(loop.value()) << 32) | invocation;
  }

  [[nodiscard]] CtxKey iteration_key(cfg::LoopId loop,
                                     std::uint32_t from) const {
    const CtxInfo& cur = contexts_[from];
    CtxKey key{};
    key.loop = loop.value();
    if (cur.loop == loop) {
      key.invocation = cur.invocation;
      key.iter = cur.iter + 1;
    } else {
      key.invocation = from;
      key.iter = 0;
    }
    return key;
  }

  std::uint32_t context_for_iteration(cfg::LoopId loop, std::uint32_t from) {
    const CtxKey key = iteration_key(loop, from);
    const auto [it, inserted] = ctx_table_.try_emplace(
        key, static_cast<std::uint32_t>(contexts_.size()));
    if (inserted) {
      contexts_.push_back(CtxInfo{loop, key.invocation, key.iter});
      live_tokens_.push_back(0);
      retired_.push_back(false);
      ++stats_.contexts_allocated;
      ++instances_[instance_key(loop, key.invocation)].in_flight;
      ++live_contexts_;
      stats_.peak_live_contexts =
          std::max<std::uint64_t>(stats_.peak_live_contexts, live_contexts_);
    }
    return it->second;
  }

  /// Identical to the serial engine's consume(), except that stalled
  /// forwardings re-enter through the coordinator outbox (rank-tagged
  /// after the triggering firing's own emissions) instead of a direct
  /// pending push.
  void consume(Firing& f, std::uint32_t ctx, std::uint32_t n = 1) {
    CTDF_ASSERT(live_tokens_[ctx] >= n);
    live_tokens_[ctx] -= n;
    if (live_tokens_[ctx] != 0 || ctx == 0 || retired_[ctx]) return;
    retired_[ctx] = true;
    --live_contexts_;
    const CtxInfo& info = contexts_[ctx];
    const auto it = instances_.find(instance_key(info.loop, info.invocation));
    if (it == instances_.end()) return;
    LoopInstance& instance = it->second;
    if (instance.in_flight > 0) --instance.in_flight;
    if (!instance.stalled.empty()) {
      auto stalled = std::move(instance.stalled);
      instance.stalled.clear();
      for (PToken& t : stalled) {
        t.rank = Rank{0, f.seq, f.intra_used++};
        t.due = cycle_ + 1;
        coord_outbox_.push_back(t);
      }
    }
  }

  void emit_replay(Firing& f, std::uint32_t token_ctx, NodeId node,
                   std::uint16_t port, std::int64_t value,
                   std::uint64_t latency, unsigned from_pe) {
    for (const dfg::Arc& a : out_index_[node.index()]) {
      if (a.src_port != port) continue;
      std::uint64_t hop = 0;
      if (opt_.processors > 0 && pe_of(token_ctx, a.dst) != from_pe)
        hop = opt_.network_latency;
      coord_outbox_.push_back(PToken{{0, f.seq, f.intra_used++},
                                     cycle_ + latency + hop, token_ctx,
                                     a.dst, a.dst_port, false, value});
      ++live_tokens_[token_ctx];
    }
  }

  /// Walks the firing list in order applying everything the serial
  /// engine interleaves with execution: statistics, token accounting
  /// (emission counts were gathered by the parallel phases), context
  /// allocation/retirement with k-bound credits, and the loop-entry
  /// operators themselves (their decisions read that very state).
  void replay() {
    for (Firing& f : firings_) {
      const QEntry& e = f.e;
      const dfg::Node& n = g_.node(e.node);
      ++stats_.ops_fired;
      ++stats_.fired_by_kind[static_cast<std::size_t>(n.kind)];
      if (stats_.first_fire_cycle[e.node.index()] == UINT64_MAX)
        stats_.first_fire_cycle[e.node.index()] = cycle_;
      if (opt_.trace)
        std::fprintf(stderr, "[%8llu] fire %-10s '%s' ctx=%u\n",
                     static_cast<unsigned long long>(cycle_),
                     to_string(n.kind), n.label.c_str(), e.ctx);
      switch (n.kind) {
        case OpKind::kLoad:
        case OpKind::kLoadIdx:
        case OpKind::kIFetch:
          ++stats_.mem_reads;
          break;
        case OpKind::kStore:
        case OpKind::kStoreIdx:
        case OpKind::kIStore:
          ++stats_.mem_writes;
          break;
        default:
          break;
      }

      if (f.klass == FiringClass::kEnd) {
        completed_ = true;
        consume(f, e.ctx, consumed_inputs_[e.node.index()]);
        schedule_erase(e);
        continue;
      }
      if (f.klass == FiringClass::kLoop) {
        replay_loop_entry(f);
        continue;
      }
      live_tokens_[f.primary] += f.emitted;
      for (const auto& [ctx, count] : f.extra_live) live_tokens_[ctx] += count;
      if (e.immediate) {
        if (!e.requeued) consume(f, e.ctx);
      } else {
        consume(f, e.ctx, consumed_inputs_[e.node.index()]);
        schedule_erase(e);
      }
    }
  }

  void replay_loop_entry(Firing& f) {
    const QEntry& e = f.e;
    const dfg::Node& n = g_.node(e.node);
    const unsigned from_pe = pe_of(e.ctx, e.node);
    const std::uint64_t alu = opt_.alu_latency;
    if (e.immediate) {
      if (opt_.loop_bound > 0) {
        const CtxKey key = iteration_key(n.loop, e.ctx);
        if (!ctx_table_.contains(key)) {
          auto& inst = instances_[instance_key(n.loop, key.invocation)];
          if (inst.in_flight >= opt_.loop_bound) {
            inst.stalled.push_back(PToken{{0, 0, 0}, 0, e.ctx, e.node,
                                          e.port, true, e.value});
            ++stats_.throttle_stalls;
            if (!e.requeued) consume(f, e.ctx);
            return;
          }
        }
      }
      const std::uint32_t next = context_for_iteration(n.loop, e.ctx);
      emit_replay(f, next, e.node, e.port, e.value, alu, from_pe);
      if (!e.requeued) consume(f, e.ctx);
      return;
    }
    // Barrier mode: strict entry forwards the full circulating set into
    // the next iteration's context.
    const Shard& owner = shards_[shard_of(e.ctx, e.node)];
    const auto it = owner.slots.find(slot_key(e.ctx, e.node));
    CTDF_ASSERT(it != owner.slots.end() && it->second.remaining == 0);
    const std::vector<std::int64_t>& in = it->second.values;
    const std::uint32_t next = context_for_iteration(n.loop, e.ctx);
    for (std::uint16_t p = 0; p < n.num_inputs; ++p)
      emit_replay(f, next, e.node, p, in[p], alu, from_pe);
    consume(f, e.ctx, consumed_inputs_[e.node.index()]);
    schedule_erase(e);
  }

  void schedule_erase(const QEntry& e) {
    shards_[shard_of(e.ctx, e.node)].erase_keys.push_back(
        slot_key(e.ctx, e.node));
  }

  // -- phase 2: exchange (parallel, per shard) ----------------------------

  void exchange(std::uint64_t batch, std::uint64_t cycle) {
    batch_ = batch;
    cycle_ = cycle;
    pool_.run([this](unsigned w) { exchange_phase(w); });
    coord_outbox_.clear();
    for (Shard& s : shards_) s.erase_keys.clear();
  }

  void exchange_phase(unsigned w) {
    Shard& s = shards_[w];
    for (const std::uint64_t key : s.erase_keys) s.slots.erase(key);
    route_.clear();
    const auto take = [&](const std::vector<PToken>& outbox) {
      for (const PToken& t : outbox)
        if (shard_of(t.ctx, t.node) == w) route_.push_back(t);
    };
    for (const Shard& src : shards_) take(src.outbox);
    take(coord_outbox_);
    std::sort(route_.begin(), route_.end(),
              [](const PToken& a, const PToken& b) { return a.rank < b.rank; });
    for (PToken& t : route_) {
      t.rank.batch = batch_;
      s.inbox[t.due].push_back(t);
    }
  }

  // -- completion ---------------------------------------------------------

  void merge_shard_counters() {
    for (const Shard& s : shards_) {
      stats_.tokens_sent += s.tokens_sent;
      stats_.matches += s.matches;
      stats_.deferred_reads += s.deferred_reads;
    }
  }

  std::optional<RunResult> finalize() {
    stats_.completed = true;
    const auto is_write = [&](NodeId n) {
      const OpKind k = g_.node(n).kind;
      return k == OpKind::kStore || k == OpKind::kStoreIdx ||
             k == OpKind::kIStore;
    };
    for (std::size_t i = head_; i < queue_.size(); ++i) {
      ++stats_.leftover_tokens;
      if (is_write(queue_[i].node)) return std::nullopt;  // serial rerun
    }
    for (const Shard& s : shards_) {
      for (const auto& [due, tokens] : s.inbox) {
        for (const PToken& t : tokens) {
          ++stats_.leftover_tokens;
          if (is_write(t.node)) return std::nullopt;
        }
      }
      for (const auto& [key, slot] : s.slots) {
        (void)slot;
        const NodeId n{static_cast<std::uint32_t>(key % g_.num_nodes())};
        if (is_write(n)) return std::nullopt;
      }
    }
    merge_shard_counters();
    RunResult out;
    out.stats = std::move(stats_);
    out.store.cells = std::move(cells_);
    return out;
  }

  // -- state --------------------------------------------------------------

  const dfg::Graph& g_;
  MachineOptions opt_;
  unsigned workers_;
  support::SplitMix64 rng_;

  std::vector<std::int64_t> cells_;
  std::vector<std::uint8_t> istate_;

  std::vector<CtxInfo> contexts_;
  std::vector<std::uint32_t> live_tokens_;
  std::vector<bool> retired_;
  std::uint64_t live_contexts_ = 0;
  std::unordered_map<std::uint64_t, LoopInstance> instances_;
  std::unordered_map<CtxKey, std::uint32_t, CtxKeyHash> ctx_table_;

  std::vector<QEntry> queue_;
  std::size_t head_ = 0;
  std::vector<Firing> firings_;
  std::vector<std::uint32_t> mem_idx_;
  std::vector<PToken> coord_outbox_;

  std::vector<std::vector<dfg::Arc>> out_index_;
  std::vector<std::uint32_t> consumed_inputs_;

  std::vector<Shard> shards_;
  Pool pool_;

  std::uint64_t cycle_ = 0;
  std::uint64_t batch_ = 0;

  RunStats stats_;
  bool completed_ = false;

  /// Per-exchange scratch; thread_local so each worker reuses capacity.
  static thread_local std::vector<PToken> route_;
};

thread_local std::vector<PToken> ParallelEngine::route_;

}  // namespace

std::optional<RunResult> run_parallel(
    const dfg::Graph& graph, std::size_t memory_cells,
    const MachineOptions& options,
    const std::vector<IStructureRegion>& istructures) {
  return ParallelEngine{graph, memory_cells, options, istructures}.run();
}

}  // namespace ctdf::machine::detail
