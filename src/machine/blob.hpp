// Versioned binary serialization of a lowered program — the
// compile-once half of the serve architecture (ROADMAP item 1; the
// blob/executor split mirrors how compiled NN-graph stacks ship
// serialized artifacts to a thin runtime).
//
// A blob carries a ProgramImage: the machine::ExecProgram plus the
// memory image machine::run needs (cell count, I-structure and shared
// regions) and the name→cell table used to render stores by variable
// name. Deserializing a blob and running it produces stores and
// semantic counters byte-identical to running the freshly lowered
// program, on every engine (tests/machine_blob_test.cpp sweeps this).
//
// Wire format (all integers little-endian, fixed width):
//
//   offset  size  field
//        0     8  magic "CTDFBLOB"
//        8     4  format version (kBlobVersion)
//       12     4  reserved (zero)
//       16     8  payload size in bytes
//       24     8  content hash: Fnv1a64+splitmix over the payload
//       32     –  payload (field-by-field ExecProgram + image encoding)
//
// The content hash doubles as the blob's identity (the "content
// address" of core/progcache.hpp's disk tier). Readers verify magic,
// version, size, and hash — in that order — before touching the
// payload, so truncation and bit rot surface as typed BlobErrors, never
// as a malformed ExecProgram. Versioning policy: any change to the
// payload encoding, the header, or the hash function bumps
// kBlobVersion; old blobs are rejected with kBadVersion (callers fall
// back to recompilation — there is no migration path, blobs are a
// cache artifact, not an archival format).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "machine/exec.hpp"
#include "machine/machine.hpp"

namespace ctdf::machine {

inline constexpr std::uint32_t kBlobVersion = 1;
inline constexpr std::size_t kBlobMagicSize = 8;
inline constexpr std::size_t kBlobHeaderSize = 32;
inline constexpr char kBlobMagic[kBlobMagicSize + 1] = "CTDFBLOB";

/// One named storage binding of the memory image (scalar or array).
/// Kept in the blob so a deserialized program can render its final
/// store by variable name (CLI --print, serve "store" objects) without
/// the source program's symbol table.
struct NamedCell {
  std::string name;
  std::uint32_t base = 0;
  /// 0 = scalar occupying `base`; > 0 = array of this many cells.
  std::int64_t extent = 0;
};

/// Everything machine::run needs to execute a program: the lowered
/// ExecProgram and its memory image. This — not the bare ExecProgram —
/// is the unit the blob format serializes and the program cache stores.
struct ProgramImage {
  ExecProgram exec;
  std::uint64_t memory_cells = 0;
  std::vector<IStructureRegion> istructures;
  std::vector<SharedRegion> shared;
  std::vector<NamedCell> names;
};

/// Typed rejection taxonomy, checked in declaration order by readers.
enum class BlobError : std::uint8_t {
  kNone = 0,
  kUnreadable,     ///< file missing / not readable (file API only)
  kBadMagic,       ///< not a ctdf blob at all
  kBadVersion,     ///< a ctdf blob of another format generation
  kTruncated,      ///< shorter than the header or the declared payload
  kHashMismatch,   ///< payload bytes do not match the integrity header
  kMalformed,      ///< hash-valid payload with inconsistent structure
};

[[nodiscard]] const char* to_string(BlobError e);

struct BlobReadResult {
  BlobError error = BlobError::kNone;
  /// Human-readable detail ("blob version 7, expected 1", ...).
  std::string message;
  /// Valid only when error == kNone.
  ProgramImage image;
  /// The verified payload hash (the blob's content address); 0 unless
  /// the read got far enough to check it.
  std::uint64_t content_hash = 0;
  /// Total blob size in bytes (header + payload) when known.
  std::uint64_t blob_bytes = 0;

  [[nodiscard]] bool ok() const { return error == BlobError::kNone; }
};

/// Serializes an image into a self-contained blob (header + payload).
[[nodiscard]] std::vector<std::uint8_t> serialize(const ProgramImage& image);

/// Verifies and decodes a blob. Never throws: every malformed input
/// maps to a typed BlobError so callers can fall back to recompiling.
[[nodiscard]] BlobReadResult deserialize(std::span<const std::uint8_t> bytes);

/// Content hash of an already-serialized blob's payload without
/// decoding it (reads the header field; does not verify).
[[nodiscard]] std::uint64_t blob_content_hash(
    std::span<const std::uint8_t> bytes);

/// File convenience wrappers. write_blob_file returns false when the
/// path cannot be created/written; read_blob_file reports kUnreadable
/// for missing/unopenable files and otherwise behaves as deserialize.
[[nodiscard]] bool write_blob_file(const std::string& path,
                                   std::span<const std::uint8_t> bytes);
[[nodiscard]] BlobReadResult read_blob_file(const std::string& path);

}  // namespace ctdf::machine
