// Shared CLI-style parsing of machine options.
//
// The ctdf CLI and the serve front-end (src/serve/) accept the same
// `--engine=…`/`--faults=…`/… machine flags — the CLI from argv, serve
// from a per-request JSON "options" array. One parser keeps the two
// surfaces identical, the same way translate::apply_schema_flag is
// shared between the CLI and the bench harnesses.
#pragma once

#include <string>

#include "machine/options.hpp"

namespace ctdf::machine {

enum class MachineFlagParse : std::uint8_t {
  kNotMachineFlag,  ///< not recognized; try the next flag family
  kApplied,
  kBadValue,
};

/// Applies one `--flag[=value]` style argument to `o`. On kBadValue,
/// `*detail` (when given) receives a short complaint suitable for
/// appending to a "bad value: ARG" diagnostic (may stay empty).
/// Numeric values are parsed strictly: signs, embedded junk, and
/// overflow are kBadValue, never silent wrapping.
[[nodiscard]] MachineFlagParse apply_machine_flag(MachineOptions& o,
                                                  const std::string& arg,
                                                  std::string* detail = nullptr);

/// The machine defaults both interactive surfaces start from: pipelined
/// loop control (the CLI's long-standing default, vs. the library
/// default of barrier) and host threads taken from CTDF_HOST_THREADS.
[[nodiscard]] MachineOptions default_cli_machine_options();

}  // namespace ctdf::machine
