#include "machine/mutate.hpp"

#include <cstddef>

namespace ctdf::machine {

const char* to_string(Mutation m) {
  switch (m) {
    case Mutation::kDupFanoutArc: return "dup-fanout-arc";
    case Mutation::kMiswireFanoutPort: return "miswire-fanout-port";
    case Mutation::kDropGateArc: return "drop-gate-arc";
    case Mutation::kUndercountArity: return "undercount-arity";
    case Mutation::kSkipSynch: return "skip-synch";
    case Mutation::kAliasIStoreBase: return "alias-istore-base";
    case Mutation::kDupMemResponse: return "dup-mem-response";
  }
  return "?";
}

/// The friend of ExecProgram (see exec.hpp): all raw-table surgery lives
/// here, keyed by flat fan-out index. fanout_begin_ holds one boundary
/// per (op, out-port) plus a sentinel, so inserting or erasing a dest at
/// flat index i shifts every boundary strictly greater than i.
struct ProgramMutator {
  static std::vector<ExecOp>& ops(ExecProgram& ep) { return ep.ops_; }
  static std::vector<ExecDest>& fanout(ExecProgram& ep) { return ep.fanout_; }

  static void insert_dest(ExecProgram& ep, std::size_t i, ExecDest d) {
    ep.fanout_.insert(ep.fanout_.begin() + static_cast<std::ptrdiff_t>(i), d);
    for (std::uint32_t& b : ep.fanout_begin_)
      if (b > i) ++b;
  }

  static void erase_dest(ExecProgram& ep, std::size_t i) {
    ep.fanout_.erase(ep.fanout_.begin() + static_cast<std::ptrdiff_t>(i));
    for (std::uint32_t& b : ep.fanout_begin_)
      if (b > i) --b;
  }
};

namespace {

/// A strict rendezvous target whose matching slot can legally hold a
/// pending token: the duplicate arrives while the first copy waits.
bool strict_multi_input(const ExecOp& op) {
  return op.framed() && op.consumed_inputs >= 2 &&
         (op.flags & (kExecNonStrict | kExecLoopEntry)) == 0 &&
         op.kind != dfg::OpKind::kEnd;
}

/// First flat fan-out index of a dest matching `pred`, or npos.
template <class Pred>
std::size_t find_dest(ExecProgram& ep, Pred&& pred) {
  const std::vector<ExecDest>& f = ProgramMutator::fanout(ep);
  for (std::size_t i = 0; i < f.size(); ++i)
    if (pred(f[i])) return i;
  return static_cast<std::size_t>(-1);
}

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool dup_fanout_arc(ExecProgram& ep) {
  const std::size_t i = find_dest(ep, [&](const ExecDest& d) {
    const ExecOp& t = ep.op(d.node);
    return strict_multi_input(t) && !ep.literal_at(t, d.port);
  });
  if (i == kNpos) return false;
  ProgramMutator::insert_dest(ep, i + 1, ProgramMutator::fanout(ep)[i]);
  return true;
}

bool miswire_fanout_port(ExecProgram& ep) {
  for (std::uint32_t n = 0; n < ep.num_ops(); ++n) {
    const ExecOp& t = ep.op(n);
    if (!strict_multi_input(t)) continue;
    // The op's first two token-carrying ports: retarget the arc feeding
    // the second onto the first.
    std::uint16_t ports[2];
    std::uint16_t found = 0;
    for (std::uint16_t p = 0; p < t.num_inputs && found < 2; ++p)
      if (!ep.literal_at(t, p)) ports[found++] = p;
    if (found < 2) continue;
    const std::size_t i = find_dest(ep, [&](const ExecDest& d) {
      return d.node.index() == n && d.port == ports[1];
    });
    if (i == kNpos) continue;
    ProgramMutator::fanout(ep)[i].port = ports[0];
    return true;
  }
  return false;
}

bool drop_gate_arc(ExecProgram& ep) {
  const std::size_t i = find_dest(ep, [&](const ExecDest& d) {
    const ExecOp& t = ep.op(d.node);
    return t.kind == dfg::OpKind::kGate && !ep.literal_at(t, d.port);
  });
  if (i == kNpos) return false;
  ProgramMutator::erase_dest(ep, i);
  return true;
}

/// Index of the op feeding (target, port), or kNpos.
std::size_t source_of(const ExecProgram& ep, std::uint32_t target,
                      std::uint16_t port) {
  for (std::uint32_t u = 0; u < ep.num_ops(); ++u) {
    const ExecOp& o = ep.op(u);
    for (std::uint16_t q = 0; q < o.num_outputs; ++q)
      for (const ExecDest& d : ep.dests(o, q))
        if (d.node.index() == target && d.port == port) return u;
  }
  return kNpos;
}

bool undercount_arity(ExecProgram& ep) {
  for (std::uint32_t n = 0; n < ep.num_ops(); ++n) {
    ExecOp& op = ProgramMutator::ops(ep)[n];
    if (!strict_multi_input(op)) continue;
    // Require the two token inputs to come from distinct producers so
    // the op observably fires one token early (same-producer inputs
    // arrive in the same cycle — the firing would never be premature).
    std::uint16_t ports[2];
    std::uint16_t found = 0;
    for (std::uint16_t p = 0; p < op.num_inputs && found < 2; ++p)
      if (!ep.literal_at(op, p)) ports[found++] = p;
    if (found < 2) continue;
    const std::size_t a = source_of(ep, n, ports[0]);
    const std::size_t b = source_of(ep, n, ports[1]);
    if (a == kNpos || b == kNpos || a == b) continue;
    --op.consumed_inputs;
    return true;
  }
  return false;
}

bool skip_synch(ExecProgram& ep) {
  for (std::uint32_t n = 0; n < ep.num_ops(); ++n) {
    ExecOp& op = ProgramMutator::ops(ep)[n];
    if (op.kind != dfg::OpKind::kSynch || op.consumed_inputs < 2) continue;
    // Drop the arc into the last port (by convention the ordering
    // input: the ack edge from the guarded access's predecessor) and
    // shrink the arity coherently so the synch fires one token early
    // rather than never.
    const std::uint16_t last = static_cast<std::uint16_t>(op.num_inputs - 1);
    if (ep.literal_at(op, last)) continue;
    const std::size_t i = find_dest(ep, [&](const ExecDest& d) {
      return d.node.index() == n && d.port == last;
    });
    if (i == kNpos) continue;
    ProgramMutator::erase_dest(ep, i);
    --op.num_inputs;
    --op.consumed_inputs;
    return true;
  }
  return false;
}

bool alias_istore_base(ExecProgram& ep) {
  const ExecOp* first = nullptr;
  for (ExecOp& op : ProgramMutator::ops(ep)) {
    if (op.kind != dfg::OpKind::kIStore) continue;
    if (!first) {
      first = &op;
      continue;
    }
    op.mem_base = first->mem_base;
    op.mem_extent = first->mem_extent;
    return true;
  }
  return false;
}

}  // namespace

bool apply_mutation(ExecProgram& ep, Mutation m) {
  switch (m) {
    case Mutation::kDupFanoutArc: return dup_fanout_arc(ep);
    case Mutation::kMiswireFanoutPort: return miswire_fanout_port(ep);
    case Mutation::kDropGateArc: return drop_gate_arc(ep);
    case Mutation::kUndercountArity: return undercount_arity(ep);
    case Mutation::kSkipSynch: return skip_synch(ep);
    case Mutation::kAliasIStoreBase: return alias_istore_base(ep);
    case Mutation::kDupMemResponse: return false;  // options hook
  }
  return false;
}

}  // namespace ctdf::machine
