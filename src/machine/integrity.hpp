// Run-time integrity checking (MachineOptions::check, CLI
// `--check=integrity`): cheap dynamic certificates that a run obeyed
// the tagged-token machine's own rules.
//
// Three disciplines are validated, all on the shared firing path
// (frames.hpp / fire.hpp) so every engine inherits them:
//
//  * Frame-slot permission tags. Each matching slot carries a shadow
//    tag cycling empty → written → (consumed back to) empty — the
//    dynamic analogue of WaveCert's fractional channel permissions,
//    implemented as HDFI-style tag bits beside the data. Delivering a
//    token onto a written tag is a double write (two tokens on one
//    arc: single-assignment violated); firing with an empty tag on a
//    non-literal port means the operator consumed an input no token
//    ever produced (a presence-bit discipline break).
//
//  * Memory access ordering. Updatable cells have no hardware
//    interlock — the *translation* must order conflicting accesses
//    through ack edges. Any translator-ordered pair of accesses to one
//    cell is therefore at least mem_latency cycles apart (the ordering
//    edge is the first access's acknowledgement, which takes the full
//    split-phase round trip). Two accesses to the same cell closer
//    than that, at least one a write, are provably unordered: a race.
//    I-structure cells are exempt (their write-once/deferral protocol
//    is the interlock, checked separately), as are read/read pairs
//    (parallel reads are legal and encouraged).
//
//  * Split-phase response accounting. Every deferred I-structure read
//    parks exactly one outstanding request; every response must
//    consume exactly one. A response with no matching request (e.g. a
//    duplicated deferred-reader wake-up) is an orphan.
//
// A violation fails the run through the typed RunError taxonomy with
// an `integrity/*` code. The serial and parallel engines build their
// reports through the shared constructors below, so a violating run
// reports identically whichever engine found it.
#pragma once

#include <cstdint>
#include <vector>

#include "dfg/graph.hpp"
#include "machine/faults.hpp"
#include "machine/machine.hpp"

namespace ctdf::machine {

class ExecProgram;

/// The verdict of one checked memory access (apply_mem).
struct MemCheck {
  enum class Kind : std::uint8_t {
    kOk = 0,
    kIStoreDoubleWrite,  ///< second write to a write-once cell
    kMemRace,            ///< unordered same-cell accesses, one a write
    kOrphanResponse,     ///< deferred response with no parked request
  };
  Kind kind = Kind::kOk;
  std::uint64_t cell = 0;
  // kMemRace: the conflicting earlier access.
  std::uint32_t prev_node = 0;
  std::uint64_t prev_cycle = 0;
  bool prev_write = false;
  // kOrphanResponse: the reader the surplus response would wake.
  std::uint32_t reader_node = 0;
  std::uint32_t reader_ctx = 0;
};

/// Per-run checker state for the memory disciplines. Engaged only when
/// MachineOptions::check != kOff; the engines pass nullptr otherwise
/// and apply_mem's checking branches are dead.
struct IntegrityState {
  static constexpr std::uint64_t kNever = UINT64_MAX;

  /// Per-cell access history and outstanding-request count.
  struct Cell {
    std::uint64_t last_cycle = kNever;
    std::uint32_t last_node = 0;
    bool last_write = false;
    /// Bind-shared cell (several program names): the spacing rule's
    /// soundness argument covers only same-name ack ordering, so the
    /// race check skips this cell entirely.
    bool shared = false;
    std::uint32_t parked = 0;  ///< deferred readers awaiting a response
  };
  std::vector<Cell> cells;
  std::uint64_t mem_latency = 1;
  /// Mutation-harness hook (MachineOptions::test_dup_response).
  bool dup_response = false;

  void init(std::size_t num_cells, std::uint64_t latency, bool dup,
            const std::vector<SharedRegion>& shared = {}) {
    cells.assign(num_cells, Cell{});
    mem_latency = latency;
    dup_response = dup;
    for (const SharedRegion& r : shared)
      for (std::uint32_t i = 0; i < r.extent; ++i)
        if (r.base + i < cells.size()) cells[r.base + i].shared = true;
  }
};

// Shared report constructors: both engines (and the parallel engine's
// fault-mode direct reports) produce byte-identical RunErrors.
[[nodiscard]] RunError integrity_double_write_error(const ExecProgram& ep,
                                                    dfg::NodeId node,
                                                    std::uint16_t port,
                                                    std::uint32_t ctx,
                                                    std::uint64_t cycle);
[[nodiscard]] RunError integrity_read_empty_error(const ExecProgram& ep,
                                                  dfg::NodeId node, int port,
                                                  std::uint32_t ctx,
                                                  std::uint64_t cycle);
[[nodiscard]] RunError integrity_mem_race_error(const ExecProgram& ep,
                                                dfg::NodeId node,
                                                const MemCheck& mc,
                                                std::uint64_t cycle,
                                                std::uint64_t mem_latency);
[[nodiscard]] RunError integrity_orphan_error(const ExecProgram& ep,
                                              const MemCheck& mc);

}  // namespace ctdf::machine
