#include "machine/report.hpp"

#include <algorithm>
#include <sstream>

#include "dfg/graph.hpp"

namespace ctdf::machine {

std::string render_report(const RunStats& stats) {
  std::ostringstream os;
  if (!stats.completed) {
    os << "run FAILED: " << stats.error << "\n";
    return os.str();
  }
  os << "cycles                " << stats.cycles << "\n";
  os << "operators fired       " << stats.ops_fired << " ("
     << static_cast<double>(stats.ops_fired) /
            static_cast<double>(std::max<std::uint64_t>(1, stats.cycles))
     << " per cycle)\n";
  os << "tokens sent           " << stats.tokens_sent << " ("
     << stats.matches << " matched in frames)\n";
  os << "iteration contexts    " << stats.contexts_allocated << "\n";
  os << "memory                " << stats.mem_reads << " reads, "
     << stats.mem_writes << " writes";
  if (stats.deferred_reads)
    os << " (" << stats.deferred_reads << " deferred I-structure reads)";
  os << "\n";
  os << "peak ready operators  " << stats.peak_ready << "\n";
  if (stats.leftover_tokens)
    os << "drain tokens at end   " << stats.leftover_tokens << "\n";

  os << "firings by kind      ";
  for (std::size_t k = 0; k < stats.fired_by_kind.size(); ++k) {
    if (stats.fired_by_kind[k] == 0) continue;
    os << ' ' << dfg::to_string(static_cast<dfg::OpKind>(k)) << '='
       << stats.fired_by_kind[k];
  }
  os << "\n";

  if (!stats.profile.empty()) {
    // Coarse timeline: bucket the profile into at most 64 columns and
    // render each as a height-8 sparkline character.
    static const char* kBars[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
    const std::size_t columns = std::min<std::size_t>(64, stats.profile.size());
    const std::size_t bucket =
        (stats.profile.size() + columns - 1) / columns;
    std::vector<double> avg;
    double peak = 0;
    for (std::size_t c = 0; c < columns; ++c) {
      double sum = 0;
      std::size_t n = 0;
      for (std::size_t i = c * bucket;
           i < std::min(stats.profile.size(), (c + 1) * bucket); ++i, ++n)
        sum += stats.profile[i];
      avg.push_back(n ? sum / static_cast<double>(n) : 0);
      peak = std::max(peak, avg.back());
    }
    os << "parallelism timeline  [";
    for (const double a : avg) {
      const int level =
          peak > 0 ? static_cast<int>(a / peak * 7.0 + 0.5) : 0;
      os << kBars[std::clamp(level, 0, 7)];
    }
    os << "] (peak " << peak << " ops/cycle, " << bucket
       << " cycles/column)\n";
  }
  return os.str();
}

}  // namespace ctdf::machine
