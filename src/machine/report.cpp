#include "machine/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "dfg/graph.hpp"

namespace ctdf::machine {

std::string render_report(const RunStats& stats) {
  std::ostringstream os;
  if (!stats.completed) {
    os << "run FAILED";
    if (stats.error_detail.code != ErrorCode::kNone)
      os << " [" << code_slug(stats.error_detail.code) << "]";
    os << ": " << stats.error << "\n";
    return os.str();
  }
  os << "cycles                " << stats.cycles << "\n";
  os << "operators fired       " << stats.ops_fired << " ("
     << static_cast<double>(stats.ops_fired) /
            static_cast<double>(std::max<std::uint64_t>(1, stats.cycles))
     << " per cycle)\n";
  os << "tokens sent           " << stats.tokens_sent << " ("
     << stats.matches << " matched in frames)\n";
  os << "iteration contexts    " << stats.contexts_allocated << "\n";
  os << "memory                " << stats.mem_reads << " reads, "
     << stats.mem_writes << " writes";
  if (stats.deferred_reads)
    os << " (" << stats.deferred_reads << " deferred I-structure reads)";
  os << "\n";
  os << "peak ready operators  " << stats.peak_ready << "\n";
  if (stats.epochs)
    os << "async scheduling      " << stats.epochs << " shard batches, "
       << stats.steals << " steals, " << stats.tokens_exchanged
       << " tokens exchanged, " << stats.idle_waits << " idle waits over "
       << stats.per_pe.size() << " PE(s)\n";
  if (stats.integrity_checks)
    os << "integrity             " << stats.integrity_checks
       << " checks passed\n";
  if (stats.leftover_tokens)
    os << "drain tokens at end   " << stats.leftover_tokens << "\n";
  if (stats.faults_injected || stats.nacks_seen || stats.duplicates_dropped ||
      stats.retries || stats.backpressure_stalls)
    os << "faults                " << stats.faults_injected << " injected, "
       << stats.retries << " retries, " << stats.nacks_seen << " NACKs, "
       << stats.duplicates_dropped << " duplicates dropped, "
       << stats.backpressure_stalls << " backpressure stalls\n";

  os << "firings by kind      ";
  for (std::size_t k = 0; k < stats.fired_by_kind.size(); ++k) {
    if (stats.fired_by_kind[k] == 0) continue;
    os << ' ' << dfg::to_string(static_cast<dfg::OpKind>(k)) << '='
       << stats.fired_by_kind[k];
  }
  os << "\n";

  if (!stats.profile.empty()) {
    // Coarse timeline: bucket the profile into at most 64 columns and
    // render each as a height-8 sparkline character.
    static const char* kBars[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
    const std::size_t columns = std::min<std::size_t>(64, stats.profile.size());
    const std::size_t bucket =
        (stats.profile.size() + columns - 1) / columns;
    std::vector<double> avg;
    double peak = 0;
    for (std::size_t c = 0; c < columns; ++c) {
      double sum = 0;
      std::size_t n = 0;
      for (std::size_t i = c * bucket;
           i < std::min(stats.profile.size(), (c + 1) * bucket); ++i, ++n)
        sum += stats.profile[i];
      avg.push_back(n ? sum / static_cast<double>(n) : 0);
      peak = std::max(peak, avg.back());
    }
    os << "parallelism timeline  [";
    for (const double a : avg) {
      const int level =
          peak > 0 ? static_cast<int>(a / peak * 7.0 + 0.5) : 0;
      os << kBars[std::clamp(level, 0, 7)];
    }
    os << "] (peak " << peak << " ops/cycle, " << bucket
       << " cycles/column)\n";
  }
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_stats_json(const RunStats& stats,
                              const MachineOptions& opt) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"options\": {"
     << "\"engine\": \"" << to_string(opt.engine) << "\", "
     << "\"check\": \"" << to_string(opt.check) << "\", "
     << "\"loop_mode\": \"" << to_string(opt.loop_mode) << "\", "
     << "\"width\": " << opt.width << ", "
     << "\"loop_bound\": " << opt.loop_bound << ", "
     << "\"processors\": " << opt.processors << ", "
     << "\"placement\": \"" << to_string(opt.placement) << "\", "
     << "\"network_latency\": " << opt.network_latency << ", "
     << "\"alu_latency\": " << opt.alu_latency << ", "
     << "\"mem_latency\": " << opt.mem_latency << ", "
     << "\"host_threads\": " << opt.host_threads << ", "
     << "\"parallel\": \"" << to_string(opt.parallel) << "\", "
     << "\"slack\": " << opt.slack << ", "
     << "\"deterministic\": " << (opt.deterministic ? "true" : "false")
     << ", "
     << "\"scheduler_seed\": " << opt.scheduler_seed << ", "
     << "\"frame_capacity\": " << opt.frame_capacity << ", "
     << "\"max_cycles\": " << opt.budget.max_cycles << ", "
     << "\"deadline_ms\": " << opt.budget.deadline_ms << ", "
     << "\"max_tokens\": " << opt.budget.max_tokens << ", "
     << "\"fault_seed\": " << opt.faults.seed << ", "
     << "\"fault_drop\": " << opt.faults.drop << ", "
     << "\"fault_dup\": " << opt.faults.dup << ", "
     << "\"fault_jitter\": " << opt.faults.jitter << ", "
     << "\"fault_nack\": " << opt.faults.nack << "},\n";
  os << "  \"completed\": " << (stats.completed ? "true" : "false") << ",\n";
  // Typed failure taxonomy; the legacy flat string is kept alongside so
  // pre-existing consumers keep parsing.
  os << "  \"error\": {\"code\": \"" << code_slug(stats.error_detail.code)
     << "\", \"message\": \"" << json_escape(stats.error_detail.message)
     << "\", \"diagnosis\": \"" << json_escape(stats.error_detail.diagnosis)
     << "\"},\n";
  os << "  \"error_string\": \"" << json_escape(stats.error) << "\",\n";
  os << "  \"cycles\": " << stats.cycles << ",\n";
  os << "  \"ops_fired\": " << stats.ops_fired << ",\n";
  os << "  \"tokens_sent\": " << stats.tokens_sent << ",\n";
  os << "  \"matches\": " << stats.matches << ",\n";
  os << "  \"contexts_allocated\": " << stats.contexts_allocated << ",\n";
  os << "  \"mem_reads\": " << stats.mem_reads << ",\n";
  os << "  \"mem_writes\": " << stats.mem_writes << ",\n";
  os << "  \"peak_live_contexts\": " << stats.peak_live_contexts << ",\n";
  os << "  \"throttle_stalls\": " << stats.throttle_stalls << ",\n";
  os << "  \"deferred_reads\": " << stats.deferred_reads << ",\n";
  os << "  \"peak_ready\": " << stats.peak_ready << ",\n";
  os << "  \"leftover_tokens\": " << stats.leftover_tokens << ",\n";
  os << "  \"faults_injected\": " << stats.faults_injected << ",\n";
  os << "  \"retries\": " << stats.retries << ",\n";
  os << "  \"nacks_seen\": " << stats.nacks_seen << ",\n";
  os << "  \"duplicates_dropped\": " << stats.duplicates_dropped << ",\n";
  os << "  \"watchdog_triggers\": " << stats.watchdog_triggers << ",\n";
  os << "  \"backpressure_stalls\": " << stats.backpressure_stalls << ",\n";
  os << "  \"integrity_checks\": " << stats.integrity_checks << ",\n";
  // Async-engine scheduling counters (all zero on the serial and
  // cycle-synchronous paths, where no PE ever steals or fences).
  os << "  \"steals\": " << stats.steals << ",\n";
  os << "  \"epochs\": " << stats.epochs << ",\n";
  os << "  \"idle_waits\": " << stats.idle_waits << ",\n";
  os << "  \"tokens_exchanged\": " << stats.tokens_exchanged << ",\n";
  os << "  \"per_pe\": [";
  for (std::size_t p = 0; p < stats.per_pe.size(); ++p) {
    if (p) os << ", ";
    os << "{\"steals\": " << stats.per_pe[p].steals
       << ", \"epochs\": " << stats.per_pe[p].epochs
       << ", \"idle_waits\": " << stats.per_pe[p].idle_waits
       << ", \"tokens_exchanged\": " << stats.per_pe[p].tokens_exchanged
       << "}";
  }
  os << "],\n";
  os << "  \"avg_parallelism\": " << stats.avg_parallelism() << ",\n";
  os << "  \"fired_by_kind\": {";
  bool first = true;
  for (std::size_t k = 0; k < stats.fired_by_kind.size(); ++k) {
    if (stats.fired_by_kind[k] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << '"' << dfg::to_string(static_cast<dfg::OpKind>(k)) << "\": "
       << stats.fired_by_kind[k];
  }
  os << "}\n}";
  return os.str();
}

}  // namespace ctdf::machine
