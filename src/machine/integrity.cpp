#include "machine/integrity.hpp"

#include <string>

#include "machine/exec.hpp"

namespace ctdf::machine {
namespace {

std::string node_ref(const ExecProgram& ep, dfg::NodeId node) {
  return "node " + std::to_string(node.value()) + " (" +
         to_string(ep.op(node).kind) + " '" + ep.label(node.index()) + "')";
}

}  // namespace

RunError integrity_double_write_error(const ExecProgram& ep, dfg::NodeId node,
                                      std::uint16_t port, std::uint32_t ctx,
                                      std::uint64_t cycle) {
  RunError err;
  err.code = ErrorCode::kIntegrityDoubleWrite;
  err.message = "integrity: double write to matching slot of " +
                node_ref(ep, node) + " port " + std::to_string(port) +
                " in context " + std::to_string(ctx) + " at cycle " +
                std::to_string(cycle);
  err.diagnosis =
      "  slot tag: written and not yet consumed — two tokens on one arc "
      "(single-assignment violated)";
  return err;
}

RunError integrity_read_empty_error(const ExecProgram& ep, dfg::NodeId node,
                                    int port, std::uint32_t ctx,
                                    std::uint64_t cycle) {
  RunError err;
  err.code = ErrorCode::kIntegrityReadEmpty;
  err.message = "integrity: " + node_ref(ep, node) +
                " fired with empty operand slot port " + std::to_string(port) +
                " in context " + std::to_string(ctx) + " at cycle " +
                std::to_string(cycle);
  err.diagnosis =
      "  slot tag: empty — the operator consumed an input no token ever "
      "wrote";
  return err;
}

RunError integrity_mem_race_error(const ExecProgram& ep, dfg::NodeId node,
                                  const MemCheck& mc, std::uint64_t cycle,
                                  std::uint64_t mem_latency) {
  RunError err;
  err.code = ErrorCode::kIntegrityMemRace;
  err.message = "integrity: unordered accesses to memory cell " +
                std::to_string(mc.cell) + ": " + node_ref(ep, node) +
                " at cycle " + std::to_string(cycle) + " races " +
                node_ref(ep, dfg::NodeId{mc.prev_node}) + " at cycle " +
                std::to_string(mc.prev_cycle);
  err.diagnosis =
      "  accesses " + std::to_string(cycle - mc.prev_cycle) +
      " cycle(s) apart with at least one write; translator-ordered "
      "accesses are at least mem-latency (" + std::to_string(mem_latency) +
      ") apart because ordering flows through an acknowledgement edge";
  return err;
}

RunError integrity_orphan_error(const ExecProgram& ep, const MemCheck& mc) {
  RunError err;
  err.code = ErrorCode::kIntegrityOrphanResponse;
  err.message = "integrity: orphan memory response on cell " +
                std::to_string(mc.cell) + ": deferred reader " +
                node_ref(ep, dfg::NodeId{mc.reader_node}) + " in context " +
                std::to_string(mc.reader_ctx) +
                " has no outstanding request";
  err.diagnosis =
      "  split-phase accounting: every deferred read parks exactly one "
      "request and every response must consume exactly one";
  return err;
}

}  // namespace ctdf::machine
