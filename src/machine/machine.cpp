#include "machine/machine.hpp"

#include <cstdio>
#include <map>
#include <unordered_map>
#include <utility>

#include "machine/engine_parallel.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace ctdf::machine {

namespace {

using dfg::NodeId;
using dfg::OpKind;

struct Token {
  std::uint32_t ctx = 0;
  NodeId node;
  std::uint16_t port = 0;
  std::int64_t value = 0;
  /// True for a loop-entry forwarding re-delivered after a k-bound
  /// stall: it was already consumed from its source context when it
  /// was buffered, so a successful re-fire must not consume it again.
  bool requeued = false;
};

struct CtxInfo {
  cfg::LoopId loop;            ///< invalid for the root context
  std::uint32_t invocation = 0;  ///< context the loop was entered from
  std::uint32_t iter = 0;
};

/// Matching slot for a strict operator in one context.
struct Slot {
  std::vector<std::int64_t> values;
  std::vector<bool> filled;
  std::uint16_t remaining = 0;
};

struct CtxKey {
  std::uint32_t loop;
  std::uint32_t invocation;
  std::uint32_t iter;
  bool operator==(const CtxKey&) const = default;
};

struct CtxKeyHash {
  std::size_t operator()(const CtxKey& k) const {
    std::uint64_t h = k.loop;
    h = h * 0x9e3779b97f4a7c15ULL + k.invocation;
    h = h * 0x9e3779b97f4a7c15ULL + k.iter;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

struct ReadyEntry {
  std::uint32_t ctx = 0;
  NodeId node;
  /// Non-strict firings carry their single token inline.
  bool immediate = false;
  bool requeued = false;  ///< see Token::requeued
  std::uint16_t port = 0;
  std::int64_t value = 0;
};

class Engine {
 public:
  Engine(const dfg::Graph& g, std::size_t memory_cells,
         const MachineOptions& opt,
         const std::vector<IStructureRegion>& istructures)
      : g_(g), opt_(opt), rng_(opt.scheduler_seed) {
    CTDF_ASSERT_MSG(opt_.alu_latency >= 1 && opt_.mem_latency >= 1,
                    "latencies must be at least one cycle");
    store_.cells.assign(memory_cells, 0);
    istate_.assign(memory_cells, kNormal);
    for (const auto& r : istructures)
      for (std::uint32_t c = r.base; c < r.base + r.extent; ++c)
        istate_[c] = kEmpty;
    contexts_.push_back(CtxInfo{});  // root context 0
    live_tokens_.push_back(0);
    retired_.push_back(false);
    stats_.fired_by_kind.assign(17, 0);
    stats_.first_fire_cycle.assign(g.num_nodes(), UINT64_MAX);

    // Pre-index out-arcs by (node, port) for O(1) emission.
    out_index_.resize(g.num_nodes());
    for (const dfg::Arc& a : g.arcs())
      out_index_[a.src.index()].push_back(a);
  }

  RunResult run() {
    boot();
    std::uint64_t cycle = 0;
    while (!completed_ && stats_.error.empty()) {
      if (cycle >= opt_.max_cycles) {
        stats_.cycles = cycle;
        stats_.error = "cycle cap exceeded (possible livelock or "
                       "non-terminating program)";
        break;
      }
      // 1. Deliver tokens due this cycle.
      if (const auto it = pending_.find(cycle); it != pending_.end()) {
        for (const Token& t : it->second) deliver(t, cycle);
        pending_.erase(it);
      }
      stats_.peak_ready = std::max<std::uint64_t>(
          stats_.peak_ready, ready_.size() - ready_head_);

      // 2. Fire ready operators: either the abstract pool bounded by
      // `width`, or one operator per processing element per cycle.
      std::uint32_t fired = 0;
      if (opt_.processors == 0) {
        const std::uint64_t budget =
            opt_.width == 0 ? UINT64_MAX : opt_.width;
        while (ready_head_ < ready_.size() && fired < budget && !completed_ &&
               stats_.error.empty()) {
          fire(pop_ready(), cycle);
          ++fired;
        }
      } else {
        fired = fire_multi_pe(cycle);
      }
      if (opt_.record_profile && profile_ok(cycle))
        stats_.profile[cycle] = fired;

      // 3. Advance time: next cycle if work remains ready, else jump to
      // the next scheduled delivery.
      if (completed_ || !stats_.error.empty()) {
        stats_.cycles = cycle + 1;
        break;
      }
      if (ready_head_ < ready_.size()) {
        ++cycle;
      } else if (!pending_.empty()) {
        cycle = pending_.begin()->first;
      } else {
        stats_.cycles = cycle + 1;
        stats_.error = deadlock_report();
        break;
      }
    }
    stats_.completed = completed_ && stats_.error.empty();
    if (stats_.completed) {
      // Tokens may legally still be draining when End fires (dead value
      // chains — e.g. a loop value overwritten before use — produce
      // tokens End does not transitively wait for). That is recorded.
      // A *store* still in flight, however, means memory is not final
      // and the translation failed to collect its acknowledgement.
      const auto is_write = [&](NodeId n) {
        const OpKind k = g_.node(n).kind;
        return k == OpKind::kStore || k == OpKind::kStoreIdx ||
               k == OpKind::kIStore;
      };
      NodeId pending_write;
      for (std::size_t i = ready_head_; i < ready_.size(); ++i) {
        ++stats_.leftover_tokens;
        if (is_write(ready_[i].node)) pending_write = ready_[i].node;
      }
      for (const auto& [c, v] : pending_) {
        for (const Token& t : v) {
          ++stats_.leftover_tokens;
          if (is_write(t.node)) pending_write = t.node;
        }
      }
      for (const auto& [key, slot] : slots_) {
        (void)slot;
        const NodeId n{static_cast<std::uint32_t>(key % g_.num_nodes())};
        if (is_write(n)) pending_write = n;
      }
      if (pending_write.valid()) {
        stats_.completed = false;
        stats_.error =
            "end fired while store '" + g_.node(pending_write).label +
            "' was still in flight — its acknowledgement is not collected";
      }
    }
    return RunResult{std::move(stats_), std::move(store_)};
  }

 private:
  static constexpr std::uint8_t kNormal = 0, kEmpty = 1, kFull = 2;

  bool profile_ok(std::uint64_t cycle) {
    if (cycle >= (1u << 22)) return false;
    if (stats_.profile.size() <= cycle) stats_.profile.resize(cycle + 1, 0);
    return true;
  }

  void boot() {
    const NodeId s = g_.start();
    const dfg::Node& start = g_.node(s);
    ++stats_.ops_fired;
    ++stats_.fired_by_kind[static_cast<std::size_t>(start.kind)];
    for (std::uint16_t p = 0; p < start.num_outputs; ++p)
      emit(0, s, p, start.start_values[p], /*cycle=*/0, /*latency=*/0);
  }

  [[nodiscard]] bool non_strict(const dfg::Node& n) const {
    switch (n.kind) {
      case OpKind::kMerge:
      case OpKind::kLoopExit:
        return true;
      case OpKind::kLoopEntry:
        return opt_.loop_mode == LoopMode::kPipelined;
      default:
        return false;
    }
  }

  void deliver(const Token& t, std::uint64_t cycle) {
    ++stats_.tokens_sent;
    const dfg::Node& n = g_.node(t.node);
    if (non_strict(n)) {
      ready_.push_back({t.ctx, t.node, true, t.requeued, t.port, t.value});
      return;
    }
    const std::uint64_t key =
        static_cast<std::uint64_t>(t.ctx) * g_.num_nodes() + t.node.index();
    auto [it, inserted] = slots_.try_emplace(key);
    Slot& slot = it->second;
    if (inserted) {
      slot.values.assign(n.num_inputs, 0);
      slot.filled.assign(n.num_inputs, false);
      slot.remaining = 0;
      for (std::uint16_t p = 0; p < n.num_inputs; ++p) {
        if (n.operands[p].is_literal) {
          slot.values[p] = n.operands[p].literal;
          slot.filled[p] = true;
        } else {
          ++slot.remaining;
        }
      }
    }
    if (slot.filled[t.port]) {
      stats_.error = "token collision at node " +
                     std::to_string(t.node.value()) + " (" +
                     to_string(n.kind) + " '" + n.label + "') port " +
                     std::to_string(t.port) + " in context " +
                     std::to_string(t.ctx) + " at cycle " +
                     std::to_string(cycle);
      return;
    }
    slot.values[t.port] = t.value;
    slot.filled[t.port] = true;
    ++stats_.matches;
    if (--slot.remaining == 0)
      ready_.push_back({t.ctx, t.node, false, false, 0, 0});
  }

  [[nodiscard]] unsigned pe_of(std::uint32_t ctx, NodeId node) const {
    if (opt_.processors == 0) return 0;
    const std::uint64_t key =
        opt_.placement == Placement::kByNode ? node.value() : ctx;
    return static_cast<unsigned>(
        ((key * 0x9e3779b97f4a7c15ULL) >> 33) % opt_.processors);
  }

  /// One cycle of multi-PE issue: each PE fires at most one ready
  /// operator (FIFO per PE); the rest wait.
  std::uint32_t fire_multi_pe(std::uint64_t cycle) {
    std::vector<std::uint8_t> busy(opt_.processors, 0);
    std::vector<ReadyEntry> kept;
    std::uint32_t fired = 0;
    std::size_t i = ready_head_;
    for (; i < ready_.size() && !completed_ && stats_.error.empty(); ++i) {
      const unsigned pe = pe_of(ready_[i].ctx, ready_[i].node);
      if (busy[pe]) {
        kept.push_back(ready_[i]);
        continue;
      }
      busy[pe] = 1;
      fire(ready_[i], cycle);
      ++fired;
    }
    for (; i < ready_.size(); ++i) kept.push_back(ready_[i]);
    ready_ = std::move(kept);
    ready_head_ = 0;
    return fired;
  }

  ReadyEntry pop_ready() {
    if (opt_.scheduler_seed != 0) {
      const std::size_t span = ready_.size() - ready_head_;
      const std::size_t pick = ready_head_ + rng_.next_below(span);
      std::swap(ready_[ready_head_], ready_[pick]);
    }
    ReadyEntry e = ready_[ready_head_++];
    if (ready_head_ > 4096 && ready_head_ * 2 > ready_.size()) {
      ready_.erase(ready_.begin(),
                   ready_.begin() + static_cast<std::ptrdiff_t>(ready_head_));
      ready_head_ = 0;
    }
    return e;
  }

  /// Schedules value onto every arc out of (node, port), counting each
  /// token as live in its context until a firing consumes it.
  void emit(std::uint32_t ctx, NodeId node, std::uint16_t port,
            std::int64_t value, std::uint64_t cycle, std::uint64_t latency) {
    const unsigned from_pe = pe_of(fire_ctx_, node);
    for (const dfg::Arc& a : out_index_[node.index()]) {
      if (a.src_port != port) continue;
      std::uint64_t hop = 0;
      if (opt_.processors > 0 && pe_of(ctx, a.dst) != from_pe)
        hop = opt_.network_latency;
      pending_[cycle + latency + hop].push_back(
          Token{ctx, a.dst, a.dst_port, value});
      ++live_tokens_[ctx];
    }
  }

  [[nodiscard]] static std::uint64_t instance_key(cfg::LoopId loop,
                                                  std::uint32_t invocation) {
    return (static_cast<std::uint64_t>(loop.value()) << 32) | invocation;
  }

  struct LoopInstance {
    unsigned in_flight = 0;       ///< allocated, not yet retired iterations
    std::vector<Token> stalled;   ///< forwardings blocked by the k-bound
  };

  [[nodiscard]] CtxKey iteration_key(cfg::LoopId loop,
                                     std::uint32_t from) const {
    const CtxInfo& cur = contexts_[from];
    CtxKey key{};
    key.loop = loop.value();
    if (cur.loop == loop) {
      key.invocation = cur.invocation;
      key.iter = cur.iter + 1;
    } else {
      key.invocation = from;
      key.iter = 0;
    }
    return key;
  }

  std::uint32_t context_for_iteration(cfg::LoopId loop, std::uint32_t from) {
    const CtxKey key = iteration_key(loop, from);
    const auto [it, inserted] =
        ctx_table_.try_emplace(key, static_cast<std::uint32_t>(contexts_.size()));
    if (inserted) {
      contexts_.push_back(CtxInfo{loop, key.invocation, key.iter});
      live_tokens_.push_back(0);
      retired_.push_back(false);
      ++stats_.contexts_allocated;
      auto& instance = instances_[instance_key(loop, key.invocation)];
      ++instance.in_flight;
      ++live_contexts_;
      stats_.peak_live_contexts =
          std::max<std::uint64_t>(stats_.peak_live_contexts, live_contexts_);
    }
    return it->second;
  }

  /// One token of `ctx` was consumed; retire the context when its last
  /// token dies, releasing a k-bound credit (and re-attempting any
  /// forwardings stalled on it). Contexts can transiently hit zero and
  /// come back (an inner loop exiting later re-injects tokens), so
  /// retirement is once-only and the bound is approximate across
  /// nested-loop boundaries.
  void consume(std::uint32_t ctx, std::uint64_t cycle, std::uint32_t n = 1) {
    CTDF_ASSERT(live_tokens_[ctx] >= n);
    live_tokens_[ctx] -= n;
    if (live_tokens_[ctx] != 0 || ctx == 0 || retired_[ctx]) return;
    retired_[ctx] = true;
    --live_contexts_;
    const CtxInfo& info = contexts_[ctx];
    const auto it = instances_.find(instance_key(info.loop, info.invocation));
    if (it == instances_.end()) return;
    LoopInstance& instance = it->second;
    if (instance.in_flight > 0) --instance.in_flight;
    if (!instance.stalled.empty()) {
      // Re-deliver the stalled forwardings to the loop entry; they are
      // still counted live in their source contexts, so push them
      // without re-counting.
      auto stalled = std::move(instance.stalled);
      instance.stalled.clear();
      for (Token& t : stalled) pending_[cycle + 1].push_back(t);
    }
  }

  void fire(const ReadyEntry& e, std::uint64_t cycle) {
    const dfg::Node& n = g_.node(e.node);
    fire_ctx_ = e.ctx;
    ++stats_.ops_fired;
    ++stats_.fired_by_kind[static_cast<std::size_t>(n.kind)];
    if (stats_.first_fire_cycle[e.node.index()] == UINT64_MAX)
      stats_.first_fire_cycle[e.node.index()] = cycle;
    if (opt_.trace)
      std::fprintf(stderr, "[%8llu] fire %-10s '%s' ctx=%u\n",
                   static_cast<unsigned long long>(cycle), to_string(n.kind),
                   n.label.c_str(), e.ctx);
    const std::uint64_t alu = opt_.alu_latency;
    const std::uint64_t mem = opt_.mem_latency;

    // Non-strict firings: one token in, forwarded.
    if (e.immediate) {
      switch (n.kind) {
        case OpKind::kMerge:
          emit(e.ctx, e.node, 0, e.value, cycle, alu);
          consume(e.ctx, cycle);
          return;
        case OpKind::kLoopExit: {
          const CtxInfo& cur = contexts_[e.ctx];
          CTDF_ASSERT_MSG(cur.loop.valid(),
                          "loop exit fired outside an iteration context");
          emit(cur.invocation, e.node, e.port, e.value, cycle, alu);
          consume(e.ctx, cycle);
          return;
        }
        case OpKind::kLoopEntry: {
          // k-bounded loops: stall the forwarding (token stays live in
          // its source context) if starting the target iteration would
          // exceed the bound.
          if (opt_.loop_bound > 0) {
            const CtxKey key = iteration_key(n.loop, e.ctx);
            if (!ctx_table_.contains(key)) {
              auto& inst = instances_[instance_key(
                  n.loop, key.invocation)];
              if (inst.in_flight >= opt_.loop_bound) {
                // Buffer the forwarding in the loop entry: consumed
                // from its source context now (so that context can
                // retire and release a credit), re-fired on retirement.
                inst.stalled.push_back(
                    Token{e.ctx, e.node, e.port, e.value, true});
                ++stats_.throttle_stalls;
                if (!e.requeued) consume(e.ctx, cycle);
                return;
              }
            }
          }
          const std::uint32_t next = context_for_iteration(n.loop, e.ctx);
          emit(next, e.node, e.port, e.value, cycle, alu);
          if (!e.requeued) consume(e.ctx, cycle);
          return;
        }
        default:
          CTDF_UNREACHABLE("bad non-strict op");
      }
    }

    // Strict firings: consume the matching slot.
    const std::uint64_t key =
        static_cast<std::uint64_t>(e.ctx) * g_.num_nodes() + e.node.index();
    const auto it = slots_.find(key);
    CTDF_ASSERT(it != slots_.end() && it->second.remaining == 0);
    const std::vector<std::int64_t> in = std::move(it->second.values);
    slots_.erase(it);
    // Count the tokens this firing consumes; the consume() itself runs
    // after the outputs are emitted so a context never transiently
    // retires while its own successor tokens are being produced.
    std::uint32_t consumed_inputs = 0;
    for (std::uint16_t p = 0; p < n.num_inputs; ++p)
      if (!n.operands[p].is_literal) ++consumed_inputs;

    const auto cell_of = [&](std::int64_t index) {
      const std::int64_t w = lang::wrap_index(index, n.mem_extent);
      const std::size_t cell = n.mem_base + static_cast<std::size_t>(w);
      CTDF_ASSERT(cell < store_.cells.size());
      return cell;
    };

    switch (n.kind) {
      case OpKind::kBinOp:
        emit(e.ctx, e.node, 0, lang::eval_binop(n.bop, in[0], in[1]), cycle,
             alu);
        break;
      case OpKind::kUnOp:
        emit(e.ctx, e.node, 0, lang::eval_unop(n.uop, in[0]), cycle, alu);
        break;
      case OpKind::kSynch:
        emit(e.ctx, e.node, 0, 0, cycle, alu);
        break;
      case OpKind::kGate:
        emit(e.ctx, e.node, 0, in[0], cycle, alu);
        break;
      case OpKind::kSwitch: {
        const bool dir = in[dfg::port::kSwitchPred] != 0;
        emit(e.ctx, e.node,
             dir ? dfg::port::kSwitchTrue : dfg::port::kSwitchFalse,
             in[dfg::port::kSwitchData], cycle, alu);
        break;
      }
      case OpKind::kLoad: {
        ++stats_.mem_reads;
        emit(e.ctx, e.node, dfg::port::kLoadValue, store_.cells[n.mem_base],
             cycle, mem);
        emit(e.ctx, e.node, dfg::port::kLoadAck, 0, cycle, mem);
        break;
      }
      case OpKind::kLoadIdx: {
        ++stats_.mem_reads;
        const std::size_t cell = cell_of(in[0]);
        emit(e.ctx, e.node, dfg::port::kLoadValue, store_.cells[cell], cycle,
             mem);
        emit(e.ctx, e.node, dfg::port::kLoadAck, 0, cycle, mem);
        break;
      }
      case OpKind::kStore:
        ++stats_.mem_writes;
        store_.cells[n.mem_base] = in[0];
        emit(e.ctx, e.node, 0, 0, cycle, mem);
        break;
      case OpKind::kStoreIdx: {
        ++stats_.mem_writes;
        store_.cells[cell_of(in[1])] = in[0];
        emit(e.ctx, e.node, 0, 0, cycle, mem);
        break;
      }
      case OpKind::kIStore: {
        ++stats_.mem_writes;
        const std::size_t cell = cell_of(in[1]);
        if (istate_[cell] == kFull) {
          stats_.error = "I-structure double write to cell " +
                         std::to_string(cell) + " by node '" + n.label + "'";
          return;
        }
        istate_[cell] = kFull;
        store_.cells[cell] = in[0];
        emit(e.ctx, e.node, 0, 0, cycle, mem);
        if (const auto d = deferred_.find(cell); d != deferred_.end()) {
          for (const auto& [ctx, node] : d->second)
            emit(ctx, node, 0, in[0], cycle, mem);
          deferred_.erase(d);
        }
        break;
      }
      case OpKind::kIFetch: {
        ++stats_.mem_reads;
        const std::size_t cell = cell_of(in[0]);
        if (istate_[cell] == kFull || istate_[cell] == kNormal) {
          emit(e.ctx, e.node, 0, store_.cells[cell], cycle, mem);
        } else {
          ++stats_.deferred_reads;
          deferred_[cell].emplace_back(e.ctx, e.node);
        }
        break;
      }
      case OpKind::kLoopEntry: {
        // Barrier mode: the full circulating set starts the next
        // iteration in a freshly allocated context.
        const std::uint32_t next = context_for_iteration(n.loop, e.ctx);
        for (std::uint16_t p = 0; p < n.num_inputs; ++p)
          emit(next, e.node, p, in[p], cycle, alu);
        break;
      }
      case OpKind::kEnd:
        completed_ = true;
        break;
      case OpKind::kStart:
      case OpKind::kMerge:
      case OpKind::kLoopExit:
        CTDF_UNREACHABLE("op cannot fire strictly");
    }
    consume(e.ctx, cycle, consumed_inputs);
  }

  std::string deadlock_report() const {
    std::string msg = "deadlock: no events pending, end never fired; " +
                      std::to_string(slots_.size()) +
                      " matching slot(s) still waiting";
    int listed = 0;
    for (const auto& [key, slot] : slots_) {
      if (listed++ >= 5) break;
      const NodeId node{static_cast<std::uint32_t>(key % g_.num_nodes())};
      const dfg::Node& n = g_.node(node);
      msg += "\n  waiting: node " + std::to_string(node.value()) + " (" +
             to_string(n.kind) + " '" + n.label + "') ctx " +
             std::to_string(key / g_.num_nodes()) + " missing " +
             std::to_string(slot.remaining) + " input(s)";
    }
    if (!deferred_.empty())
      msg += "\n  plus " + std::to_string(deferred_.size()) +
             " I-structure cell(s) with deferred readers";
    std::size_t stalled = 0;
    for (const auto& [k, inst] : instances_) stalled += inst.stalled.size();
    if (stalled > 0)
      msg += "\n  plus " + std::to_string(stalled) +
             " forwarding(s) stalled by the loop bound";
    return msg;
  }

  const dfg::Graph& g_;
  MachineOptions opt_;
  support::SplitMix64 rng_;

  lang::Store store_;
  std::vector<std::uint8_t> istate_;
  std::unordered_map<std::size_t,
                     std::vector<std::pair<std::uint32_t, NodeId>>>
      deferred_;

  std::vector<CtxInfo> contexts_;
  std::vector<std::uint32_t> live_tokens_;
  std::vector<bool> retired_;
  std::uint64_t live_contexts_ = 0;
  std::unordered_map<std::uint64_t, LoopInstance> instances_;
  std::unordered_map<CtxKey, std::uint32_t, CtxKeyHash> ctx_table_;
  std::unordered_map<std::uint64_t, Slot> slots_;

  std::map<std::uint64_t, std::vector<Token>> pending_;
  std::vector<ReadyEntry> ready_;
  std::size_t ready_head_ = 0;
  std::uint32_t fire_ctx_ = 0;  ///< context of the firing in progress

  std::vector<std::vector<dfg::Arc>> out_index_;

  RunStats stats_;
  bool completed_ = false;
};

}  // namespace

RunResult run(const dfg::Graph& graph, std::size_t memory_cells,
              const MachineOptions& options,
              const std::vector<IStructureRegion>& istructures) {
  // Tracing stays on the serial engine so an error run doesn't print a
  // partial parallel trace followed by the rerun's full one.
  if (options.host_threads > 1 && !options.trace) {
    if (auto r =
            detail::run_parallel(graph, memory_cells, options, istructures))
      return std::move(*r);
    // Error path: the parallel engine saw a deadlock, collision,
    // I-structure double write, or in-flight store at End. Re-run
    // serially for the reference diagnostics (whose text depends on
    // serial container iteration order).
  }
  return Engine{graph, memory_cells, options, istructures}.run();
}

}  // namespace ctdf::machine
