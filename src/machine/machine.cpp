#include "machine/machine.hpp"

#include <utility>

#include "machine/budget.hpp"
#include "machine/calendar.hpp"
#include "machine/engine_event.hpp"
#include "machine/engine_parallel.hpp"
#include "machine/engine_serial.hpp"

namespace ctdf::machine {

RunResult run(const ExecProgram& program, std::size_t memory_cells,
              const MachineOptions& options,
              const std::vector<IStructureRegion>& istructures,
              const std::vector<SharedRegion>& shared) {
  // A zero-millisecond deadline is already expired: reject up front —
  // 0 cycles, 0 firings, the store untouched — with the same typed
  // error a mid-run expiry produces. Checked once here so every engine
  // shares the semantics (and a serving layer can clamp a request's
  // remaining deadline to zero after compilation ate it).
  if (options.budget.deadline_ms == 0) {
    RunResult out;
    out.stats.fired_by_kind.assign(dfg::kNumOpKinds, 0);
    out.stats.first_fire_cycle.assign(program.num_ops(), UINT64_MAX);
    out.stats.fail(BudgetState::deadline_error_for(0));
    return out;
  }
  // The event engine is serial by design (host_threads is documented as
  // ignored); absurd latency configurations whose horizon would need a
  // degenerate wheel fall back to the scan engine transparently —
  // results are byte-identical either way.
  if (options.engine == EngineKind::kEvent &&
      detail::event_horizon(options) < CalendarQueue::kMaxHorizon) {
    return detail::run_event(program, memory_cells, options, istructures,
                             shared);
  }
  // Tracing stays on the serial engine so an error run doesn't print a
  // partial parallel trace followed by the rerun's full one.
  if (options.host_threads > 1 && !options.trace) {
    auto r = options.parallel == ParallelMode::kAsync
                 ? detail::run_parallel_async(program, memory_cells, options,
                                              istructures, shared)
                 : detail::run_parallel(program, memory_cells, options,
                                        istructures, shared);
    if (r) return std::move(*r);
    // Error path: the parallel engine saw a deadlock, collision,
    // I-structure double write, or in-flight store at End (for async,
    // any fault-free error including the cycle cap). Re-run serially
    // for the reference diagnostics (whose text depends on the serial
    // engine's frame-scan order).
  }
  return detail::SerialEngine<detail::MapPending>{program, memory_cells,
                                                  options, istructures, shared}
      .run();
}

RunResult run(const dfg::Graph& graph, std::size_t memory_cells,
              const MachineOptions& options,
              const std::vector<IStructureRegion>& istructures,
              const std::vector<SharedRegion>& shared) {
  return run(lower(graph), memory_cells, options, istructures, shared);
}

}  // namespace ctdf::machine
