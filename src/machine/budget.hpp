// Live tracking of a RunBudget (machine/options.hpp): the cooperative
// deadline and token ceilings every engine polls on its firing path.
//
// The cost contract mirrors the fault/integrity machinery: an unarmed
// budget is one dead `if (budget_)` branch per firing, and an armed but
// unexercised one must stay within 5% of the legacy throughput
// (BM_MachineBudgetOverhead gates the ratio). Two tricks keep the armed
// path cheap:
//   * the token ceiling is a plain integer compare against a counter
//     the engine already maintains (RunStats::tokens_sent);
//   * the wall clock is read once every kPollStride polls — a strided
//     countdown, so at ~10M firings/s the deadline is detected within
//     ~100us of expiry while the steady_clock call amortizes to noise.
//
// Error text depends only on the *configured* budget, never on when the
// poll happened to trip, so all three engines (scan, event, async)
// render byte-identical `deadline-exceeded` / `token-budget` messages —
// the same cross-engine identity the rest of the error taxonomy keeps.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "machine/faults.hpp"
#include "machine/options.hpp"

namespace ctdf::machine {

class BudgetState {
 public:
  using Clock = std::chrono::steady_clock;

  /// Polls between wall-clock reads on the strided path.
  static constexpr std::uint32_t kPollStride = 1024;

  explicit BudgetState(const RunBudget& budget)
      : max_tokens_(budget.max_tokens), deadline_ms_(budget.deadline_ms) {
    if (budget.deadline_ms >= 0)
      deadline_ = Clock::now() + std::chrono::milliseconds(budget.deadline_ms);
  }

  [[nodiscard]] bool has_deadline() const { return deadline_ms_ >= 0; }
  [[nodiscard]] std::uint64_t max_tokens() const { return max_tokens_; }

  /// Token ceiling: exact and deterministic (serial engines trip at the
  /// same firing every run).
  [[nodiscard]] bool tokens_exceeded(std::uint64_t tokens_sent) const {
    return max_tokens_ != 0 && tokens_sent > max_tokens_;
  }

  /// Strided deadline poll for per-firing call sites: counts down
  /// between clock reads. Not thread-safe — one engine coordinator (or
  /// one serial engine) owns this object.
  [[nodiscard]] bool deadline_exceeded_strided() {
    if (deadline_ms_ < 0) return false;
    if (--until_poll_ != 0) return false;
    until_poll_ = kPollStride;
    return Clock::now() >= deadline_;
  }

  /// Immediate deadline check for coarse call sites (per async batch /
  /// up-front rejection), where one clock read is already noise.
  [[nodiscard]] bool deadline_exceeded_now() const {
    return deadline_ms_ >= 0 && Clock::now() >= deadline_;
  }

  [[nodiscard]] RunError deadline_error() const {
    return deadline_error_for(deadline_ms_);
  }

  [[nodiscard]] RunError token_error() const {
    return RunError{ErrorCode::kTokenBudget,
                    "token budget exceeded: more than " +
                        std::to_string(max_tokens_) +
                        " token(s) sent (max-tokens)",
                    {}};
  }

  /// Shared error builder so the up-front zero-deadline rejection in
  /// machine.cpp renders the same message a mid-run expiry does.
  [[nodiscard]] static RunError deadline_error_for(std::int64_t deadline_ms) {
    return RunError{ErrorCode::kDeadlineExceeded,
                    "deadline exceeded: the " + std::to_string(deadline_ms) +
                        " ms wall-clock budget was spent before the program "
                        "completed",
                    {}};
  }

 private:
  std::uint64_t max_tokens_ = 0;
  std::int64_t deadline_ms_ = -1;
  Clock::time_point deadline_{};
  std::uint32_t until_poll_ = kPollStride;
};

}  // namespace ctdf::machine
