// ExecProgram — the one-time lowering of a dfg::Graph into the flat
// struct-of-arrays form both simulation engines execute (paper Section
// 2.2; the layout mirrors Monsoon's explicit token store [17]).
//
// Lowering precomputes everything the per-token hot path would
// otherwise chase pointers or hash for:
//  * a dense op table (kind, strictness flags, arities, operator
//    payload) indexed by dfg::NodeId;
//  * inline literal operands (is-literal mask + values in one flat
//    array, sliced per op);
//  * contiguous fan-out destination arrays, grouped by (op, out-port)
//    in graph-arc order — the emission order the engines must preserve;
//  * a per-context frame-slot layout: every strict op owns a fixed
//    range [frame_base, frame_base + num_inputs) of the context frame,
//    so token matching is a presence-bit set in a dense array (a true
//    ETS frame) instead of a hash-map slot lookup.
//
// The lowering is per-graph, not per-MachineOptions: LoopEntry's
// strictness depends on LoopMode (pipelined = non-strict), so the op
// table records base strictness flags and the engines resolve the mode-
// dependent part at run time. Labels are copied so diagnostics need no
// Graph.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dfg/graph.hpp"

namespace ctdf::machine {

/// One fan-out destination: the in-port fed by an out-port's arc.
struct ExecDest {
  dfg::NodeId node;
  std::uint16_t port = 0;
};

/// ExecOp::flags bits (base strictness; see header comment).
inline constexpr std::uint8_t kExecNonStrict = 1;  ///< Merge / LoopExit
inline constexpr std::uint8_t kExecLoopEntry = 2;
inline constexpr std::uint8_t kExecMem = 4;
inline constexpr std::uint8_t kExecWrite = 8;

inline constexpr std::uint32_t kNoFrameSlot = UINT32_MAX;

/// One lowered operator. POD row of the dense op table; index == the
/// source dfg::NodeId.
struct ExecOp {
  dfg::OpKind kind = dfg::OpKind::kSynch;
  std::uint8_t flags = 0;
  std::uint16_t num_inputs = 0;
  std::uint16_t num_outputs = 0;
  /// Non-literal inputs: tokens one firing consumes, and the initial
  /// presence count of a freshly created frame slot.
  std::uint16_t consumed_inputs = 0;
  std::uint32_t first_operand = 0;  ///< into the operand tables
  std::uint32_t first_port = 0;     ///< into the fan-out port index
  /// First frame value slot of this op's matching range, kNoFrameSlot
  /// for ops that never rendezvous (Start, Merge, LoopExit).
  std::uint32_t frame_base = kNoFrameSlot;
  /// Dense index among framed ops (per-frame presence-state array).
  std::uint32_t strict_index = UINT32_MAX;

  lang::BinOp bop = lang::BinOp::kAdd;  ///< kBinOp (and kMacro binop heads)
  lang::UnOp uop = lang::UnOp::kNeg;    ///< kUnOp (and kMacro unop heads)
  std::uint32_t mem_base = 0;           ///< memory ops
  std::int64_t mem_extent = 1;          ///< memory ops (index wrapping)
  cfg::LoopId loop;                     ///< kLoopEntry / kLoopExit

  /// kMacro: the original head kind plus this op's slice of the dense
  /// fused-step table (ExecProgram::macro_steps).
  dfg::OpKind macro_head = dfg::OpKind::kBinOp;
  std::uint16_t num_steps = 0;
  std::uint32_t first_step = 0;

  [[nodiscard]] bool framed() const { return frame_base != kNoFrameSlot; }
};

class ExecProgram {
 public:
  [[nodiscard]] std::size_t num_ops() const { return ops_.size(); }
  [[nodiscard]] const ExecOp& op(std::uint32_t idx) const { return ops_[idx]; }
  [[nodiscard]] const ExecOp& op(dfg::NodeId n) const {
    return ops_[n.index()];
  }

  [[nodiscard]] dfg::NodeId start() const { return start_; }
  [[nodiscard]] dfg::NodeId end() const { return end_; }
  [[nodiscard]] std::span<const std::int64_t> start_values() const {
    return start_values_;
  }

  /// Fan-out destinations of (op, out-port), in graph-arc order.
  [[nodiscard]] std::span<const ExecDest> dests(const ExecOp& o,
                                                std::uint16_t port) const {
    const std::uint32_t p = o.first_port + port;
    return {fanout_.data() + fanout_begin_[p],
            fanout_.data() + fanout_begin_[p + 1]};
  }
  [[nodiscard]] std::span<const ExecDest> dests(dfg::NodeId n,
                                                std::uint16_t port) const {
    return dests(op(n), port);
  }

  [[nodiscard]] bool literal_at(const ExecOp& o, std::uint16_t port) const {
    return operand_is_literal_[o.first_operand + port] != 0;
  }
  [[nodiscard]] std::int64_t literal_value(const ExecOp& o,
                                           std::uint16_t port) const {
    return operand_literal_[o.first_operand + port];
  }

  [[nodiscard]] const std::string& label(std::uint32_t idx) const {
    return labels_[idx];
  }

  /// The fused ALU steps a kMacro op applies after its head fires.
  [[nodiscard]] std::span<const dfg::FusedStep> macro_steps(
      const ExecOp& o) const {
    return {macro_steps_.data() + o.first_step,
            macro_steps_.data() + o.first_step + o.num_steps};
  }

  /// Frame geometry: value/presence slots per context, and the number
  /// of ops carrying a slot range (the per-frame state array length).
  [[nodiscard]] std::size_t frame_slots() const { return frame_slots_; }
  [[nodiscard]] std::size_t num_framed_ops() const { return num_framed_; }

  /// Aggregates reported by the pipeline's `lower` stage trace.
  [[nodiscard]] std::size_t num_dests() const { return fanout_.size(); }
  [[nodiscard]] std::size_t num_literals() const {
    std::size_t n = 0;
    for (const std::uint8_t b : operand_is_literal_) n += b;
    return n;
  }

 private:
  friend ExecProgram lower(const dfg::Graph& g);
  /// Test-only seeded-defect injection (machine/mutate.hpp): the
  /// mutation harness edits a lowered program to break one translator
  /// invariant, proving --check=integrity is not vacuous.
  friend struct ProgramMutator;
  /// Versioned binary serialization (machine/blob.hpp): the codec
  /// walks every field below, so adding a member here means extending
  /// the blob format and bumping kBlobVersion.
  friend struct BlobCodec;

  std::vector<ExecOp> ops_;
  std::vector<ExecDest> fanout_;          ///< all dests, port-contiguous
  std::vector<std::uint32_t> fanout_begin_;  ///< per (op, port), +1 sentinel
  std::vector<std::uint8_t> operand_is_literal_;
  std::vector<std::int64_t> operand_literal_;
  std::vector<dfg::FusedStep> macro_steps_;  ///< all macro steps, op-contiguous
  std::vector<std::string> labels_;
  std::vector<std::int64_t> start_values_;
  dfg::NodeId start_;
  dfg::NodeId end_;
  std::size_t frame_slots_ = 0;
  std::size_t num_framed_ = 0;
};

/// Lowers a graph; O(nodes + arcs), run once per compilation (the
/// pipeline's `lower` stage) and cached in core::CompileResult.
[[nodiscard]] ExecProgram lower(const dfg::Graph& g);

/// Human-readable op-table rendering (`ctdf ... --dump-exec`).
[[nodiscard]] std::string render(const ExecProgram& p);

}  // namespace ctdf::machine
