// Cycle-level simulator of an explicit-token-store dataflow machine
// (paper Section 2.2; the model is Monsoon's [17]).
//
// Execution model:
//  * A token is (context, instruction, port, value). Contexts play the
//    role of Monsoon frames: tokens destined for a multi-input operator
//    rendezvous in a per-(context, instruction) matching slot.
//  * Every loop iteration gets a fresh context, allocated by the
//    loop-entry operator (LoopMode selects barrier vs pipelined
//    allocation); loop-exit operators retag tokens back into the
//    invocation's context.
//  * Memory is ordinary updatable storage (the paper's deliberate
//    departure from I-structure-only dataflow): loads and stores are
//    split-phase, consume an access token and emit an acknowledgement
//    after `mem_latency` cycles. I-structure cells (for the Section 6.3
//    write-once optimization) additionally support deferred reads.
//  * Up to `width` operators fire per cycle (0 = unlimited); unchosen
//    ready operators wait. Scheduling is deterministic FIFO unless a
//    scheduler seed is given (confluence testing).
//
// The run ends when the End operator fires. Deadlock (no events
// pending, End never fired), matching-slot collisions (two tokens
// waiting on the same port — illegal in a one-token-per-arc model),
// leftover in-flight tokens at completion, and cycle-cap overruns are
// all detected and reported; the test suite treats each as a
// translation bug.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dfg/graph.hpp"
#include "lang/interp.hpp"
#include "machine/faults.hpp"
#include "machine/options.hpp"

namespace ctdf::machine {

class ExecProgram;

struct RunStats {
  bool completed = false;
  /// Rendered error_detail (message [+ "\n" + diagnosis]); non-empty on
  /// any failure. Kept for backward compatibility — new code should
  /// consult error_detail.code.
  std::string error;
  /// Typed failure taxonomy (machine/faults.hpp).
  RunError error_detail;

  /// Records a failure: sets error_detail and the rendered string.
  void fail(ErrorCode code, std::string message, std::string diagnosis = {}) {
    error_detail = RunError{code, std::move(message), std::move(diagnosis)};
    error = error_detail.render();
  }
  void fail(RunError err) {
    error_detail = std::move(err);
    error = error_detail.render();
  }

  std::uint64_t cycles = 0;
  std::uint64_t ops_fired = 0;
  std::uint64_t tokens_sent = 0;
  std::uint64_t matches = 0;             ///< tokens stored in match slots
  std::uint64_t contexts_allocated = 0;  ///< loop iterations started
  std::uint64_t mem_reads = 0;
  std::uint64_t mem_writes = 0;
  /// Iteration contexts simultaneously live (allocated, not yet
  /// retired) at the worst moment — the frame-store footprint.
  std::uint64_t peak_live_contexts = 0;
  /// Loop-entry forwardings stalled by the k-bound (see
  /// MachineOptions::loop_bound).
  std::uint64_t throttle_stalls = 0;
  std::uint64_t deferred_reads = 0;  ///< I-structure reads that waited
  std::uint64_t peak_ready = 0;      ///< max operators ready in one cycle
  /// Tokens still draining when End fired (dead value chains; see
  /// machine.cpp — a draining *store* is an error instead).
  std::uint64_t leftover_tokens = 0;

  /// Fault-injection accounting (all zero on fault-free runs; see
  /// machine/faults.hpp).
  std::uint64_t faults_injected = 0;   ///< drops + duplicates + jitters + NACKs
  std::uint64_t retries = 0;           ///< retransmissions + memory refires
  std::uint64_t nacks_seen = 0;        ///< memory NACKs absorbed
  std::uint64_t duplicates_dropped = 0;  ///< dedup'd redundant deliveries
  std::uint64_t watchdog_triggers = 0;   ///< livelock/retry-budget diagnoses
  std::uint64_t backpressure_stalls = 0;  ///< frame-capacity stalls

  /// Integrity validations performed (MachineOptions::check): one per
  /// checked strict delivery (tag transition), per firing (permission
  /// sweep at release), and per memory access (race / response
  /// accounting). Zero when checking is off — the run carried no
  /// certificate.
  std::uint64_t integrity_checks = 0;

  /// Async-engine host-parallel accounting (all zero for the serial,
  /// event, and sync-barrier engines). Schedule-derived — NOT part of
  /// the semantic counter set the differential suites compare.
  std::uint64_t steals = 0;            ///< shard deque pops by a thief PE
  std::uint64_t epochs = 0;            ///< exchange epochs participated in
  std::uint64_t idle_waits = 0;        ///< PE spins with an empty pending set
  std::uint64_t tokens_exchanged = 0;  ///< tokens crossing shard mailboxes

  /// Per-host-worker breakdown of the counters above (async engine
  /// only; indexed by worker/PE id).
  struct PeCounters {
    std::uint64_t steals = 0;
    std::uint64_t epochs = 0;
    std::uint64_t idle_waits = 0;
    std::uint64_t tokens_exchanged = 0;
  };
  std::vector<PeCounters> per_pe;

  /// Fired-operator counts by dfg::OpKind (indexed by its value).
  std::vector<std::uint64_t> fired_by_kind;

  /// Cycle of each node's first firing, indexed by dfg::NodeId;
  /// UINT64_MAX if the node never fired. Used to measure when a
  /// particular operation (e.g. Fig. 9's second assignment to x) became
  /// able to execute.
  std::vector<std::uint64_t> first_fire_cycle;

  /// ops fired per cycle (only when MachineOptions::record_profile).
  std::vector<std::uint32_t> profile;

  [[nodiscard]] double avg_parallelism() const {
    return cycles ? static_cast<double>(ops_fired) / static_cast<double>(cycles)
                  : 0.0;
  }
};

struct RunResult {
  RunStats stats;
  lang::Store store;  ///< final memory contents
};

/// An I-structure region of memory (write-once cells with deferred
/// reads).
struct IStructureRegion {
  std::uint32_t base = 0;
  std::uint32_t extent = 0;
};

/// An updatable region reachable under more than one program name
/// (storage binding). The integrity checker's mem-race spacing rule
/// exempts these cells: cross-name ordering flows through ordinary
/// token edges, not mem-latency acknowledgement round trips, so the
/// rule's soundness argument does not cover them.
struct SharedRegion {
  std::uint32_t base = 0;
  std::uint32_t extent = 0;
};

/// Executes `graph` against a zeroed memory of `memory_cells` cells.
/// Lowers the graph to an ExecProgram internally; callers that execute
/// one program repeatedly should lower once and use the overload below.
[[nodiscard]] RunResult run(const dfg::Graph& graph, std::size_t memory_cells,
                            const MachineOptions& options,
                            const std::vector<IStructureRegion>& istructures = {},
                            const std::vector<SharedRegion>& shared = {});

/// Executes an already-lowered program (see machine/exec.hpp; the
/// pipeline's `lower` stage caches one in core::CompileResult).
[[nodiscard]] RunResult run(const ExecProgram& program,
                            std::size_t memory_cells,
                            const MachineOptions& options,
                            const std::vector<IStructureRegion>& istructures = {},
                            const std::vector<SharedRegion>& shared = {});

}  // namespace ctdf::machine
