// Seeded translator defects for the integrity-checker mutation harness
// (tests only; see tests/machine_mutation_test.cpp). Each mutation
// edits a *lowered* ExecProgram in place to break exactly one invariant
// the translator normally guarantees, so a checked run must fail with
// the matching typed error code — proof that --check=integrity is not
// vacuous. Mutations pick the first applicable site in op order, so a
// given program mutates deterministically.
#pragma once

#include "machine/exec.hpp"

namespace ctdf::machine {

enum class Mutation : std::uint8_t {
  /// Duplicate a fan-out arc into a strict input port: two tokens on
  /// one arc → integrity/double-write.
  kDupFanoutArc,
  /// Retarget an arc feeding a two-input op's second port onto its
  /// first: the first port is written twice → integrity/double-write.
  kMiswireFanoutPort,
  /// Drop the arc feeding a Gate's data port: the gate can never fire
  /// and its consumers starve → deadlock.
  kDropGateArc,
  /// Decrement a strict op's consumed-input count: it fires after one
  /// token too few, consuming an empty slot → integrity/read-empty.
  kUndercountArity,
  /// Remove a Synch's ordering input (the arc into its last port, with
  /// the arity shrunk coherently): the synch fires early and the
  /// memory access it guarded races its predecessor →
  /// integrity/mem-race.
  kSkipSynch,
  /// Alias the second I-structure store's address range onto the
  /// first's: both write one write-once cell → istore-double-write.
  kAliasIStoreBase,
  /// Not a program edit: MachineOptions::test_dup_response makes the
  /// memory answer each deferred read twice → integrity/orphan-response.
  kDupMemResponse,
};

[[nodiscard]] const char* to_string(Mutation m);

/// Applies `m` to `ep` in place. Returns true when an applicable site
/// was found and mutated; false when the program has none (or the
/// mutation is an options hook, kDupMemResponse).
bool apply_mutation(ExecProgram& ep, Mutation m);

}  // namespace ctdf::machine
