// The shared firing core: what one matched operator firing *does*, as
// pure functions from the matched inputs and a small machine-state
// interface to emitted (port, value) tokens and memory effects. Both
// engines call these — the serial engine inline in its fire loop, the
// parallel engine from its execute and bank phases — so the operator
// semantics exist in exactly one place and the engines differ only in
// scheduling and token transport.
#pragma once

#include <cstdint>
#include <vector>

#include "dfg/graph.hpp"
#include "machine/exec.hpp"
#include "machine/frames.hpp"
#include "machine/integrity.hpp"
#include "machine/machine.hpp"
#include "machine/options.hpp"
#include "support/assert.hpp"

namespace ctdf::machine {

/// Effective strictness of a lowered op: Merge/LoopExit always forward
/// immediately; LoopEntry additionally does under pipelined loop
/// control (a machine-mode decision, which is why it is resolved here
/// and not in the lowering).
[[nodiscard]] inline bool non_strict(const ExecOp& op, LoopMode mode) {
  if (op.flags & kExecNonStrict) return true;
  return (op.flags & kExecLoopEntry) != 0 && mode == LoopMode::kPipelined;
}

/// Updatable memory plus the I-structure cell states layered on it.
struct MemoryState {
  static constexpr std::uint8_t kNormal = 0, kEmpty = 1, kFull = 2;

  lang::Store store;
  std::vector<std::uint8_t> istate;  ///< per cell

  void init(std::size_t memory_cells,
            const std::vector<IStructureRegion>& istructures);
};

/// A resolved memory request: the absolute cell and, for writes, the
/// value operand.
struct MemAccess {
  std::uint64_t cell = 0;
  std::int64_t store_value = 0;
};

/// Resolves a memory op's matched inputs to the cell it addresses
/// (index operands wrapped into the op's extent).
[[nodiscard]] MemAccess resolve_mem(const ExecOp& op, const std::int64_t* in,
                                    std::size_t num_cells);

/// Fires a pure (ALU-class) operator: emit(port, value) per output
/// token. `p` supplies a kMacro op's fused-step slice — the head
/// computes the initial value from the matched inputs exactly as the
/// original operator would, then the absorbed tail steps apply in
/// chain order within the same firing (one match, one emitted token,
/// N ALU steps).
template <class EmitFn>
void fire_pure(const ExecProgram& p, const ExecOp& op, const std::int64_t* in,
               EmitFn&& emit) {
  switch (op.kind) {
    case dfg::OpKind::kBinOp:
      emit(std::uint16_t{0}, lang::eval_binop(op.bop, in[0], in[1]));
      break;
    case dfg::OpKind::kUnOp:
      emit(std::uint16_t{0}, lang::eval_unop(op.uop, in[0]));
      break;
    case dfg::OpKind::kSynch:
      emit(std::uint16_t{0}, std::int64_t{0});
      break;
    case dfg::OpKind::kGate:
      emit(std::uint16_t{0}, in[0]);
      break;
    case dfg::OpKind::kSwitch: {
      const bool dir = in[dfg::port::kSwitchPred] != 0;
      emit(dir ? dfg::port::kSwitchTrue : dfg::port::kSwitchFalse,
           in[dfg::port::kSwitchData]);
      break;
    }
    case dfg::OpKind::kMacro: {
      std::int64_t v = 0;
      switch (op.macro_head) {
        case dfg::OpKind::kBinOp:
          v = lang::eval_binop(op.bop, in[0], in[1]);
          break;
        case dfg::OpKind::kUnOp:
          v = lang::eval_unop(op.uop, in[0]);
          break;
        case dfg::OpKind::kGate:
          v = in[0];
          break;
        case dfg::OpKind::kSynch:
          v = 0;
          break;
        default:
          CTDF_UNREACHABLE("bad macro head");
      }
      for (const dfg::FusedStep& s : p.macro_steps(op))
        v = dfg::apply_step(s, v);
      emit(std::uint16_t{0}, v);
      break;
    }
    default:
      CTDF_UNREACHABLE("not a pure op");
  }
}

/// Applies a resolved memory request: cell mutation, acknowledgement /
/// value emission, and I-structure deferral. The caller supplies the
/// transport — emit(port, value) for the firing op's own outputs,
/// emit_deferred(ctx, node, value) for deferred readers an I-store
/// satisfies (tokens in *other* contexts), count_deferred_read() when a
/// fetch parks. mem_reads/mem_writes are counted by the engines (the
/// parallel engine counts in replay order, after the bank already
/// applied the effect).
///
/// `integ` (non-null iff --check=integrity) adds the memory
/// disciplines of machine/integrity.hpp: the race check on updatable
/// cells and split-phase response accounting on deferred reads; the
/// write-once check is always on (it guards memory state, not just the
/// certificate). Returns MemCheck::Kind::kOk on success; on any
/// violation the cell's new state was not committed beyond what the
/// report needs and the caller fails the run.
template <class EmitFn, class EmitDeferredFn, class CountFn>
[[nodiscard]] MemCheck apply_mem(const ExecOp& op, std::uint32_t ctx,
                                 dfg::NodeId node, const MemAccess& a,
                                 MemoryState& m, DeferredMap& deferred,
                                 IntegrityState* integ, std::uint64_t cycle,
                                 EmitFn&& emit, EmitDeferredFn&& emit_deferred,
                                 CountFn&& count_deferred_read) {
  if (integ && m.istate[a.cell] == MemoryState::kNormal) {
    // Updatable cells have no hardware interlock: conflicting accesses
    // must be ordered by the translation, and any *same-name* ordering
    // edge runs through an acknowledgement (a full mem-latency round
    // trip). Two accesses closer than that with at least one write are
    // therefore provably unordered. Read/read pairs are exempt
    // (parallel reads are legal), as are bind-shared cells (several
    // program names): cross-name ordering flows through ordinary token
    // edges the spacing argument says nothing about.
    const bool is_write = (op.flags & kExecWrite) != 0;
    IntegrityState::Cell& c = integ->cells[a.cell];
    if (!c.shared && c.last_cycle != IntegrityState::kNever &&
        cycle - c.last_cycle < integ->mem_latency &&
        (is_write || c.last_write)) {
      MemCheck mc;
      mc.kind = MemCheck::Kind::kMemRace;
      mc.cell = a.cell;
      mc.prev_node = c.last_node;
      mc.prev_cycle = c.last_cycle;
      mc.prev_write = c.last_write;
      return mc;
    }
    c.last_cycle = cycle;
    c.last_node = node.value();
    c.last_write = is_write;
  }
  switch (op.kind) {
    case dfg::OpKind::kLoad:
    case dfg::OpKind::kLoadIdx:
      emit(dfg::port::kLoadValue, m.store.cells[a.cell]);
      emit(dfg::port::kLoadAck, std::int64_t{0});
      break;
    case dfg::OpKind::kStore:
    case dfg::OpKind::kStoreIdx:
      m.store.cells[a.cell] = a.store_value;
      emit(std::uint16_t{0}, std::int64_t{0});
      break;
    case dfg::OpKind::kIStore: {
      if (m.istate[a.cell] == MemoryState::kFull) {
        MemCheck mc;
        mc.kind = MemCheck::Kind::kIStoreDoubleWrite;
        mc.cell = a.cell;
        return mc;
      }
      m.istate[a.cell] = MemoryState::kFull;
      m.store.cells[a.cell] = a.store_value;
      emit(std::uint16_t{0}, std::int64_t{0});
      if (const auto d = deferred.find(a.cell); d != deferred.end()) {
        for (const auto& [dctx, dnode] : d->second) {
          // Split-phase accounting: each response consumes exactly one
          // parked request. The dup_response mutation hook emits a
          // surplus response, which this check must turn away.
          const unsigned copies =
              integ && integ->dup_response ? 2u : 1u;
          for (unsigned i = 0; i < copies; ++i) {
            if (integ) {
              IntegrityState::Cell& c = integ->cells[a.cell];
              if (c.parked == 0) {
                MemCheck mc;
                mc.kind = MemCheck::Kind::kOrphanResponse;
                mc.cell = a.cell;
                mc.reader_node = dnode.value();
                mc.reader_ctx = dctx;
                return mc;
              }
              --c.parked;
            }
            emit_deferred(dctx, dnode, a.store_value);
          }
        }
        deferred.erase(d);
      }
      break;
    }
    case dfg::OpKind::kIFetch:
      if (m.istate[a.cell] != MemoryState::kEmpty) {
        emit(std::uint16_t{0}, m.store.cells[a.cell]);
      } else {
        count_deferred_read();
        if (integ) ++integ->cells[a.cell].parked;
        deferred[a.cell].emplace_back(ctx, node);
      }
      break;
    default:
      CTDF_UNREACHABLE("not a memory op");
  }
  return MemCheck{};
}

}  // namespace ctdf::machine
