// The shared firing core: what one matched operator firing *does*, as
// pure functions from the matched inputs and a small machine-state
// interface to emitted (port, value) tokens and memory effects. Both
// engines call these — the serial engine inline in its fire loop, the
// parallel engine from its execute and bank phases — so the operator
// semantics exist in exactly one place and the engines differ only in
// scheduling and token transport.
#pragma once

#include <cstdint>
#include <vector>

#include "dfg/graph.hpp"
#include "machine/exec.hpp"
#include "machine/frames.hpp"
#include "machine/machine.hpp"
#include "machine/options.hpp"
#include "support/assert.hpp"

namespace ctdf::machine {

/// Effective strictness of a lowered op: Merge/LoopExit always forward
/// immediately; LoopEntry additionally does under pipelined loop
/// control (a machine-mode decision, which is why it is resolved here
/// and not in the lowering).
[[nodiscard]] inline bool non_strict(const ExecOp& op, LoopMode mode) {
  if (op.flags & kExecNonStrict) return true;
  return (op.flags & kExecLoopEntry) != 0 && mode == LoopMode::kPipelined;
}

/// Updatable memory plus the I-structure cell states layered on it.
struct MemoryState {
  static constexpr std::uint8_t kNormal = 0, kEmpty = 1, kFull = 2;

  lang::Store store;
  std::vector<std::uint8_t> istate;  ///< per cell

  void init(std::size_t memory_cells,
            const std::vector<IStructureRegion>& istructures);
};

/// A resolved memory request: the absolute cell and, for writes, the
/// value operand.
struct MemAccess {
  std::uint64_t cell = 0;
  std::int64_t store_value = 0;
};

/// Resolves a memory op's matched inputs to the cell it addresses
/// (index operands wrapped into the op's extent).
[[nodiscard]] MemAccess resolve_mem(const ExecOp& op, const std::int64_t* in,
                                    std::size_t num_cells);

/// Fires a pure (ALU-class) operator: emit(port, value) per output
/// token.
template <class EmitFn>
void fire_pure(const ExecOp& op, const std::int64_t* in, EmitFn&& emit) {
  switch (op.kind) {
    case dfg::OpKind::kBinOp:
      emit(std::uint16_t{0}, lang::eval_binop(op.bop, in[0], in[1]));
      break;
    case dfg::OpKind::kUnOp:
      emit(std::uint16_t{0}, lang::eval_unop(op.uop, in[0]));
      break;
    case dfg::OpKind::kSynch:
      emit(std::uint16_t{0}, std::int64_t{0});
      break;
    case dfg::OpKind::kGate:
      emit(std::uint16_t{0}, in[0]);
      break;
    case dfg::OpKind::kSwitch: {
      const bool dir = in[dfg::port::kSwitchPred] != 0;
      emit(dir ? dfg::port::kSwitchTrue : dfg::port::kSwitchFalse,
           in[dfg::port::kSwitchData]);
      break;
    }
    default:
      CTDF_UNREACHABLE("not a pure op");
  }
}

/// Applies a resolved memory request: cell mutation, acknowledgement /
/// value emission, and I-structure deferral. The caller supplies the
/// transport — emit(port, value) for the firing op's own outputs,
/// emit_deferred(ctx, node, value) for deferred readers an I-store
/// satisfies (tokens in *other* contexts), count_deferred_read() when a
/// fetch parks. mem_reads/mem_writes are counted by the engines (the
/// parallel engine counts in replay order, after the bank already
/// applied the effect). Returns false on an I-structure double write —
/// memory and the deferral map are untouched, and no tokens were
/// emitted; the caller reports the error.
template <class EmitFn, class EmitDeferredFn, class CountFn>
[[nodiscard]] bool apply_mem(const ExecOp& op, std::uint32_t ctx,
                             dfg::NodeId node, const MemAccess& a,
                             MemoryState& m, DeferredMap& deferred,
                             EmitFn&& emit, EmitDeferredFn&& emit_deferred,
                             CountFn&& count_deferred_read) {
  switch (op.kind) {
    case dfg::OpKind::kLoad:
    case dfg::OpKind::kLoadIdx:
      emit(dfg::port::kLoadValue, m.store.cells[a.cell]);
      emit(dfg::port::kLoadAck, std::int64_t{0});
      break;
    case dfg::OpKind::kStore:
    case dfg::OpKind::kStoreIdx:
      m.store.cells[a.cell] = a.store_value;
      emit(std::uint16_t{0}, std::int64_t{0});
      break;
    case dfg::OpKind::kIStore: {
      if (m.istate[a.cell] == MemoryState::kFull) return false;
      m.istate[a.cell] = MemoryState::kFull;
      m.store.cells[a.cell] = a.store_value;
      emit(std::uint16_t{0}, std::int64_t{0});
      if (const auto d = deferred.find(a.cell); d != deferred.end()) {
        for (const auto& [dctx, dnode] : d->second)
          emit_deferred(dctx, dnode, a.store_value);
        deferred.erase(d);
      }
      break;
    }
    case dfg::OpKind::kIFetch:
      if (m.istate[a.cell] != MemoryState::kEmpty) {
        emit(std::uint16_t{0}, m.store.cells[a.cell]);
      } else {
        count_deferred_read();
        deferred[a.cell].emplace_back(ctx, node);
      }
      break;
    default:
      CTDF_UNREACHABLE("not a memory op");
  }
  return true;
}

}  // namespace ctdf::machine
