#include "machine/blob.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "support/hash.hpp"

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace ctdf::machine {

namespace {

long current_pid() {
#ifdef _WIN32
  return static_cast<long>(_getpid());
#else
  return static_cast<long>(::getpid());
#endif
}

/// Little-endian append-only byte sink.
class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void i64(std::int64_t v) { le(static_cast<std::uint64_t>(v), 8); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

 private:
  void le(std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i)
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked little-endian reader: any overrun latches `ok` false
/// and subsequent reads return zero, so the decoder can run to the end
/// and report one typed kTruncated/kMalformed instead of crashing.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> in) : in_(in) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  std::uint64_t u64() { return le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(le(8)); }
  std::string str() {
    const std::uint32_t n = u32();
    if (pos_ + n > in_.size()) {
      ok = false;
      pos_ = in_.size();
      return {};
    }
    std::string s(reinterpret_cast<const char*>(in_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == in_.size(); }
  bool ok = true;

 private:
  std::uint64_t le(int bytes) {
    if (pos_ + static_cast<std::size_t>(bytes) > in_.size()) {
      ok = false;
      pos_ = in_.size();
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i)
      v |= static_cast<std::uint64_t>(in_[pos_ + i]) << (8 * i);
    pos_ += static_cast<std::size_t>(bytes);
    return v;
  }
  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
};

}  // namespace

/// Private-field access for the blob codec (befriended by ExecProgram).
/// Every ExecProgram member is written and read here, field by field,
/// in one fixed order — the payload layout documented in blob.hpp.
struct BlobCodec {
  static void encode(const ExecProgram& p, Writer& w) {
    w.u32(static_cast<std::uint32_t>(p.ops_.size()));
    for (const ExecOp& op : p.ops_) {
      w.u8(static_cast<std::uint8_t>(op.kind));
      w.u8(op.flags);
      w.u16(op.num_inputs);
      w.u16(op.num_outputs);
      w.u16(op.consumed_inputs);
      w.u32(op.first_operand);
      w.u32(op.first_port);
      w.u32(op.frame_base);
      w.u32(op.strict_index);
      w.u8(static_cast<std::uint8_t>(op.bop));
      w.u8(static_cast<std::uint8_t>(op.uop));
      w.u32(op.mem_base);
      w.i64(op.mem_extent);
      w.u32(op.loop.value());
      w.u8(static_cast<std::uint8_t>(op.macro_head));
      w.u16(op.num_steps);
      w.u32(op.first_step);
    }
    w.u32(p.start_.value());
    w.u32(p.end_.value());
    w.u64(p.frame_slots_);
    w.u64(p.num_framed_);

    w.u32(static_cast<std::uint32_t>(p.start_values_.size()));
    for (const std::int64_t v : p.start_values_) w.i64(v);

    w.u32(static_cast<std::uint32_t>(p.fanout_begin_.size()));
    for (const std::uint32_t v : p.fanout_begin_) w.u32(v);

    w.u32(static_cast<std::uint32_t>(p.fanout_.size()));
    for (const ExecDest& d : p.fanout_) {
      w.u32(d.node.value());
      w.u16(d.port);
    }

    w.u32(static_cast<std::uint32_t>(p.operand_is_literal_.size()));
    for (const std::uint8_t b : p.operand_is_literal_) w.u8(b);
    w.u32(static_cast<std::uint32_t>(p.operand_literal_.size()));
    for (const std::int64_t v : p.operand_literal_) w.i64(v);

    w.u32(static_cast<std::uint32_t>(p.macro_steps_.size()));
    for (const dfg::FusedStep& s : p.macro_steps_) {
      w.u8(static_cast<std::uint8_t>(s.kind));
      w.u8(static_cast<std::uint8_t>(s.bop));
      w.u8(static_cast<std::uint8_t>(s.uop));
      w.u16(s.value_port);
      w.i64(s.literal);
    }

    for (const std::string& l : p.labels_) w.str(l);  // count == ops
  }

  /// Returns an empty string on success, a kMalformed detail otherwise.
  /// Structural validation is deliberately shallow — the content hash
  /// already rules out corruption, so this only guards against blobs
  /// produced by a buggy or adversarial writer.
  static std::string decode(Reader& r, ExecProgram& p) {
    const std::uint32_t num_ops = r.u32();
    if (num_ops > (1u << 24)) return "implausible op count";
    p.ops_.resize(num_ops);
    for (ExecOp& op : p.ops_) {
      const std::uint8_t kind = r.u8();
      if (kind >= dfg::kNumOpKinds) return "op kind out of range";
      op.kind = static_cast<dfg::OpKind>(kind);
      op.flags = r.u8();
      op.num_inputs = r.u16();
      op.num_outputs = r.u16();
      op.consumed_inputs = r.u16();
      op.first_operand = r.u32();
      op.first_port = r.u32();
      op.frame_base = r.u32();
      op.strict_index = r.u32();
      const std::uint8_t bop = r.u8();
      const std::uint8_t uop = r.u8();
      if (bop > static_cast<std::uint8_t>(lang::BinOp::kOr))
        return "binop out of range";
      if (uop > static_cast<std::uint8_t>(lang::UnOp::kNot))
        return "unop out of range";
      op.bop = static_cast<lang::BinOp>(bop);
      op.uop = static_cast<lang::UnOp>(uop);
      op.mem_base = r.u32();
      op.mem_extent = r.i64();
      op.loop = cfg::LoopId{r.u32()};
      const std::uint8_t head = r.u8();
      if (head >= dfg::kNumOpKinds) return "macro head out of range";
      op.macro_head = static_cast<dfg::OpKind>(head);
      op.num_steps = r.u16();
      op.first_step = r.u32();
    }
    p.start_ = dfg::NodeId{r.u32()};
    p.end_ = dfg::NodeId{r.u32()};
    p.frame_slots_ = r.u64();
    p.num_framed_ = r.u64();

    p.start_values_.resize(r.u32());
    for (std::int64_t& v : p.start_values_) v = r.i64();

    p.fanout_begin_.resize(r.u32());
    for (std::uint32_t& v : p.fanout_begin_) v = r.u32();

    p.fanout_.resize(r.u32());
    for (ExecDest& d : p.fanout_) {
      d.node = dfg::NodeId{r.u32()};
      d.port = r.u16();
    }

    p.operand_is_literal_.resize(r.u32());
    for (std::uint8_t& b : p.operand_is_literal_) b = r.u8();
    p.operand_literal_.resize(r.u32());
    for (std::int64_t& v : p.operand_literal_) v = r.i64();

    p.macro_steps_.resize(r.u32());
    for (dfg::FusedStep& s : p.macro_steps_) {
      const std::uint8_t kind = r.u8();
      if (kind >= dfg::kNumOpKinds) return "fused-step kind out of range";
      s.kind = static_cast<dfg::OpKind>(kind);
      s.bop = static_cast<lang::BinOp>(r.u8());
      s.uop = static_cast<lang::UnOp>(r.u8());
      s.value_port = r.u16();
      s.literal = r.i64();
    }

    p.labels_.resize(num_ops);
    for (std::string& l : p.labels_) l = r.str();

    if (!r.ok) return "payload ended mid-field";
    // Cross-field consistency the engines rely on unconditionally.
    if (!p.fanout_begin_.empty() &&
        p.fanout_begin_.back() != p.fanout_.size())
      return "fan-out index does not cover the destination table";
    for (const ExecOp& op : p.ops_) {
      if (op.first_port + op.num_outputs + 1 > p.fanout_begin_.size())
        return "op fan-out range out of bounds";
      if (op.first_operand + op.num_inputs > p.operand_is_literal_.size())
        return "op operand range out of bounds";
      if (static_cast<std::size_t>(op.first_step) + op.num_steps >
          p.macro_steps_.size())
        return "op macro-step range out of bounds";
    }
    if (p.start_.index() >= num_ops || p.end_.index() >= num_ops)
      return "start/end node out of range";
    return {};
  }
};

const char* to_string(BlobError e) {
  switch (e) {
    case BlobError::kNone: return "none";
    case BlobError::kUnreadable: return "unreadable";
    case BlobError::kBadMagic: return "bad-magic";
    case BlobError::kBadVersion: return "version-mismatch";
    case BlobError::kTruncated: return "truncated";
    case BlobError::kHashMismatch: return "hash-mismatch";
    case BlobError::kMalformed: return "malformed";
  }
  return "unknown";
}

std::vector<std::uint8_t> serialize(const ProgramImage& image) {
  std::vector<std::uint8_t> payload;
  {
    Writer w(payload);
    BlobCodec::encode(image.exec, w);
    w.u64(image.memory_cells);
    w.u32(static_cast<std::uint32_t>(image.istructures.size()));
    for (const IStructureRegion& r : image.istructures) {
      w.u32(r.base);
      w.u32(r.extent);
    }
    w.u32(static_cast<std::uint32_t>(image.shared.size()));
    for (const SharedRegion& r : image.shared) {
      w.u32(r.base);
      w.u32(r.extent);
    }
    w.u32(static_cast<std::uint32_t>(image.names.size()));
    for (const NamedCell& n : image.names) {
      w.str(n.name);
      w.u32(n.base);
      w.i64(n.extent);
    }
  }

  std::vector<std::uint8_t> blob;
  blob.reserve(kBlobHeaderSize + payload.size());
  Writer w(blob);
  for (std::size_t i = 0; i < kBlobMagicSize; ++i)
    w.u8(static_cast<std::uint8_t>(kBlobMagic[i]));
  w.u32(kBlobVersion);
  w.u32(0);  // reserved
  w.u64(payload.size());
  w.u64(support::content_hash64(payload.data(), payload.size()));
  blob.insert(blob.end(), payload.begin(), payload.end());
  return blob;
}

std::uint64_t blob_content_hash(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kBlobHeaderSize) return 0;
  Reader r(bytes.subspan(24, 8));
  return r.u64();
}

BlobReadResult deserialize(std::span<const std::uint8_t> bytes) {
  BlobReadResult out;
  out.blob_bytes = bytes.size();
  if (bytes.size() < kBlobHeaderSize) {
    out.error = BlobError::kTruncated;
    out.message = "blob shorter than the " +
                  std::to_string(kBlobHeaderSize) + "-byte header (" +
                  std::to_string(bytes.size()) + " bytes)";
    return out;
  }
  if (std::memcmp(bytes.data(), kBlobMagic, kBlobMagicSize) != 0) {
    out.error = BlobError::kBadMagic;
    out.message = "not a ctdf program blob (bad magic)";
    return out;
  }
  Reader header(bytes.subspan(kBlobMagicSize));
  const std::uint32_t version = header.u32();
  header.u32();  // reserved
  const std::uint64_t payload_size = header.u64();
  const std::uint64_t declared_hash = header.u64();
  if (version != kBlobVersion) {
    out.error = BlobError::kBadVersion;
    out.message = "blob format version " + std::to_string(version) +
                  ", this build reads version " +
                  std::to_string(kBlobVersion);
    return out;
  }
  if (bytes.size() - kBlobHeaderSize < payload_size) {
    out.error = BlobError::kTruncated;
    out.message = "payload truncated: header declares " +
                  std::to_string(payload_size) + " bytes, " +
                  std::to_string(bytes.size() - kBlobHeaderSize) +
                  " present";
    return out;
  }
  const std::span<const std::uint8_t> payload =
      bytes.subspan(kBlobHeaderSize, payload_size);
  const std::uint64_t actual_hash =
      support::content_hash64(payload.data(), payload.size());
  if (actual_hash != declared_hash) {
    out.error = BlobError::kHashMismatch;
    std::ostringstream os;
    os << "content hash mismatch: header " << std::hex << declared_hash
       << ", payload " << actual_hash;
    out.message = os.str();
    return out;
  }
  out.content_hash = actual_hash;

  Reader r(payload);
  std::string complaint = BlobCodec::decode(r, out.image.exec);
  if (complaint.empty()) {
    out.image.memory_cells = r.u64();
    out.image.istructures.resize(r.u32());
    for (IStructureRegion& reg : out.image.istructures) {
      reg.base = r.u32();
      reg.extent = r.u32();
    }
    out.image.shared.resize(r.u32());
    for (SharedRegion& reg : out.image.shared) {
      reg.base = r.u32();
      reg.extent = r.u32();
    }
    out.image.names.resize(r.u32());
    for (NamedCell& n : out.image.names) {
      n.name = r.str();
      n.base = r.u32();
      n.extent = r.i64();
    }
    if (!r.ok)
      complaint = "payload ended mid-field";
    else if (!r.exhausted())
      complaint = "trailing bytes after the image";
  }
  if (!complaint.empty()) {
    out.error = BlobError::kMalformed;
    out.message = "malformed payload: " + complaint;
    out.image = {};
  }
  return out;
}

bool write_blob_file(const std::string& path,
                     std::span<const std::uint8_t> bytes) {
  // Write-then-rename so a reader never observes a torn blob: writing
  // in place would let a concurrent read_blob_file (the disk cache
  // tier, another server process) see a truncated prefix that fails
  // the hash check — or worse, a stale header over new payload. The
  // tmp name carries pid + a process-wide counter so concurrent
  // writers of the same path never collide; rename() is atomic within
  // a filesystem, so readers see the old bytes or the new, never a
  // mix.
  static std::atomic<std::uint64_t> tmp_counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(current_pid()) + "." +
      std::to_string(tmp_counter.fetch_add(1, std::memory_order_relaxed));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  const std::size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  if (std::fclose(f) != 0 || written != bytes.size()) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

BlobReadResult read_blob_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    BlobReadResult out;
    out.error = BlobError::kUnreadable;
    out.message = "cannot open " + path;
    return out;
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
    bytes.insert(bytes.end(), buf, buf + n);
  std::fclose(f);
  return deserialize(bytes);
}

}  // namespace ctdf::machine
