// Deterministic RNG for program generation and scheduler fuzzing.
//
// std::mt19937 output differs across standard-library versions for the
// distributions; we need bit-identical program generation so test
// failures reproduce from a seed alone. SplitMix64 + explicit bounded
// sampling gives that.
#pragma once

#include <cstdint>

#include "support/hash.hpp"

namespace ctdf::support {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() { return splitmix64_mix(state_ += kGoldenGamma); }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible
    // for the small bounds used in test generation.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) {
    return next_below(den) < num;
  }

 private:
  std::uint64_t state_;
};

}  // namespace ctdf::support
