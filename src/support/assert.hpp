// Lightweight always-on assertion macros for ctdf.
//
// The simulator and the translators are full of structural invariants
// (port arities, frame-slot presence bits, worklist monotonicity) whose
// violation indicates a bug in *this* library, never in user input.
// User-input problems are reported through support/diagnostics.hpp
// instead; these macros abort.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ctdf::support {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "ctdf assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace ctdf::support

#define CTDF_ASSERT(expr)                                                  \
  ((expr) ? (void)0                                                        \
          : ::ctdf::support::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define CTDF_ASSERT_MSG(expr, msg)                                         \
  ((expr) ? (void)0                                                        \
          : ::ctdf::support::assert_fail(#expr, __FILE__, __LINE__, (msg)))

#define CTDF_UNREACHABLE(msg)                                              \
  ::ctdf::support::assert_fail("unreachable", __FILE__, __LINE__, (msg))
