// Dense maps keyed by strong ids.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "support/assert.hpp"
#include "support/ids.hpp"

namespace ctdf::support {

/// A vector wrapper indexed by a strong Id. Grows on demand via
/// `ensure`, bounds-checked on access.
template <typename IdT, typename V>
class IndexMap {
 public:
  IndexMap() = default;
  explicit IndexMap(std::size_t n) : data_(n) {}
  IndexMap(std::size_t n, const V& init) : data_(n, init) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  void resize(std::size_t n) { data_.resize(n); }
  void resize(std::size_t n, const V& init) { data_.resize(n, init); }
  void clear() { data_.clear(); }

  /// Grow (never shrink) so that `id` is addressable
  /// (default-constructing new slots; works for move-only V).
  void ensure(IdT id) {
    if (id.index() >= data_.size()) data_.resize(id.index() + 1);
  }
  void ensure(IdT id, const V& init) {
    if (id.index() >= data_.size()) data_.resize(id.index() + 1, init);
  }

  [[nodiscard]] bool contains(IdT id) const {
    return id.valid() && id.index() < data_.size();
  }

  V& operator[](IdT id) {
    CTDF_ASSERT(contains(id));
    return data_[id.index()];
  }
  const V& operator[](IdT id) const {
    CTDF_ASSERT(contains(id));
    return data_[id.index()];
  }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  std::vector<V>& raw() { return data_; }
  const std::vector<V>& raw() const { return data_; }

 private:
  std::vector<V> data_;
};

}  // namespace ctdf::support
