// Strong index types.
//
// Nearly every module in ctdf addresses entities by dense integer index
// (CFG nodes, DFG nodes, variables, frame contexts, instructions).
// Using a distinct wrapper type per entity prevents the classic bug of
// passing a CFG node id where a DFG node id is expected; the wrapper
// compiles down to a bare uint32_t.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace ctdf::support {

/// A strongly-typed dense index. `Tag` is any (possibly incomplete) type
/// used purely for differentiation.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;
  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();

  constexpr Id() = default;
  constexpr explicit Id(underlying_type v) : value_(v) {}
  constexpr explicit Id(std::size_t v)
      : value_(static_cast<underlying_type>(v)) {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr std::size_t index() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  static constexpr Id invalid() { return Id{}; }

  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  underlying_type value_ = kInvalid;
};

}  // namespace ctdf::support

template <typename Tag>
struct std::hash<ctdf::support::Id<Tag>> {
  std::size_t operator()(ctdf::support::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
