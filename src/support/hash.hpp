// Shared SplitMix64 mixing primitives and the streaming content hash.
//
// The same finalizer (Steele/Lea/Flood constants) was copied between the
// RNG, the fault-decision streams, and the parallel engine's shard/PE
// placement hash; one header keeps the constants and the avalanche in a
// single place so the streams stay bit-identical across call sites.
//
// Fnv1a64 is the one streaming hash of the codebase: ExecProgram blob
// integrity headers (machine/blob.hpp) and program-cache keys
// (core/progcache.hpp) both use it, so a blob's on-disk identity and
// its cache address come from the same function. The digest is part of
// the persisted blob format — changing the constants or the finalizer
// is a format break and must bump machine::kBlobVersion.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ctdf::support {

/// 2^64 / golden ratio — the SplitMix64 stream increment, also used as a
/// multiplicative spreader for placement hashing.
inline constexpr std::uint64_t kGoldenGamma = 0x9e3779b97f4a7c15ULL;

/// SplitMix64 output finalizer: full-avalanche bijection on 64 bits.
inline constexpr std::uint64_t splitmix64_mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Golden-ratio multiplicative hash into [0, n): spreads consecutive ids
/// across buckets. `n` must be > 0.
inline constexpr std::uint32_t golden_bucket(std::uint64_t id,
                                             std::uint32_t n) {
  return static_cast<std::uint32_t>(((id * kGoldenGamma) >> 33) % n);
}

/// Streaming 64-bit FNV-1a with a SplitMix64 avalanche on output.
/// Order-sensitive; length-prefix helpers keep concatenation ambiguity
/// out of composite keys ("ab"+"c" vs "a"+"bc" hash differently).
class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ULL;
  static constexpr std::uint64_t kPrime = 1099511628211ULL;

  constexpr void update_byte(std::uint8_t b) {
    state_ = (state_ ^ b) * kPrime;
  }
  void update(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < n; ++i) update_byte(p[i]);
  }
  /// Little-endian, all eight bytes — a fixed-width field.
  constexpr void update_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) update_byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  /// Length-prefixed so adjacent strings cannot alias.
  void update_string(std::string_view s) {
    update_u64(s.size());
    update(s.data(), s.size());
  }

  [[nodiscard]] constexpr std::uint64_t digest() const {
    return splitmix64_mix(state_);
  }

 private:
  std::uint64_t state_ = kOffsetBasis;
};

/// One-shot content hash of a byte range (the blob integrity header).
inline std::uint64_t content_hash64(const void* data, std::size_t n) {
  Fnv1a64 h;
  h.update(data, n);
  return h.digest();
}

}  // namespace ctdf::support
