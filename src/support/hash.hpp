// Shared SplitMix64 mixing primitives.
//
// The same finalizer (Steele/Lea/Flood constants) was copied between the
// RNG, the fault-decision streams, and the parallel engine's shard/PE
// placement hash; one header keeps the constants and the avalanche in a
// single place so the streams stay bit-identical across call sites.
#pragma once

#include <cstdint>

namespace ctdf::support {

/// 2^64 / golden ratio — the SplitMix64 stream increment, also used as a
/// multiplicative spreader for placement hashing.
inline constexpr std::uint64_t kGoldenGamma = 0x9e3779b97f4a7c15ULL;

/// SplitMix64 output finalizer: full-avalanche bijection on 64 bits.
inline constexpr std::uint64_t splitmix64_mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Golden-ratio multiplicative hash into [0, n): spreads consecutive ids
/// across buckets. `n` must be > 0.
inline constexpr std::uint32_t golden_bucket(std::uint64_t id,
                                             std::uint32_t n) {
  return static_cast<std::uint32_t>(((id * kGoldenGamma) >> 33) % n);
}

}  // namespace ctdf::support
