#include "support/diagnostics.hpp"

#include <sstream>

namespace ctdf::support {

std::string SourceLoc::to_string() const {
  if (line == 0) return "<unknown>";
  std::ostringstream os;
  os << line << ':' << column;
  return os.str();
}

std::string Diagnostic::to_string() const {
  const char* sev = severity == Severity::kError     ? "error"
                    : severity == Severity::kWarning ? "warning"
                                                     : "note";
  std::ostringstream os;
  os << loc.to_string() << ": " << sev << ": " << message;
  return os.str();
}

void DiagnosticEngine::error(SourceLoc loc, std::string message) {
  diags_.push_back({Severity::kError, loc, std::move(message)});
  ++error_count_;
}

void DiagnosticEngine::warning(SourceLoc loc, std::string message) {
  diags_.push_back({Severity::kWarning, loc, std::move(message)});
}

void DiagnosticEngine::note(SourceLoc loc, std::string message) {
  diags_.push_back({Severity::kNote, loc, std::move(message)});
}

std::string DiagnosticEngine::to_string() const {
  std::ostringstream os;
  for (const auto& d : diags_) os << d.to_string() << '\n';
  return os.str();
}

void DiagnosticEngine::throw_if_errors() const {
  if (has_errors()) throw CompileError(to_string());
}

}  // namespace ctdf::support
