// User-facing diagnostics: source locations, errors, and a collector.
//
// Frontend errors (lex/parse/semantic) are reported through a
// DiagnosticEngine so callers can choose between throwing and batch
// inspection; internal invariant violations use support/assert.hpp.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ctdf::support {

struct SourceLoc {
  std::uint32_t line = 0;  ///< 1-based; 0 means "unknown".
  std::uint32_t column = 0;

  [[nodiscard]] std::string to_string() const;
};

enum class Severity { kError, kWarning, kNote };

struct Diagnostic {
  Severity severity = Severity::kError;
  SourceLoc loc;
  std::string message;

  [[nodiscard]] std::string to_string() const;
};

/// Thrown by `DiagnosticEngine::throw_if_errors` and by convenience
/// frontend entry points on the first hard error.
class CompileError : public std::runtime_error {
 public:
  explicit CompileError(const std::string& what) : std::runtime_error(what) {}
};

class DiagnosticEngine {
 public:
  void error(SourceLoc loc, std::string message);
  void warning(SourceLoc loc, std::string message);
  void note(SourceLoc loc, std::string message);

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }

  /// Render all diagnostics, one per line.
  [[nodiscard]] std::string to_string() const;

  /// Throw CompileError carrying all rendered diagnostics if any error
  /// was reported.
  void throw_if_errors() const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

}  // namespace ctdf::support
