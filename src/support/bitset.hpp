// Fixed-capacity dynamic bitset used by the CFG dataflow analyses.
//
// The switch-placement and liveness computations manipulate sets of CFG
// nodes / variables as bit vectors; std::vector<bool> lacks the word-wise
// union/intersection operations those fixpoints need to be fast.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace ctdf::support {

class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const { return nbits_; }

  void set(std::size_t i) {
    CTDF_ASSERT(i < nbits_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  void reset(std::size_t i) {
    CTDF_ASSERT(i < nbits_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  [[nodiscard]] bool test(std::size_t i) const {
    CTDF_ASSERT(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  [[nodiscard]] bool any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  /// this |= other; returns true iff this changed.
  bool union_with(const Bitset& other) {
    CTDF_ASSERT(nbits_ == other.nbits_);
    bool changed = false;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t before = words_[i];
      words_[i] |= other.words_[i];
      changed |= (words_[i] != before);
    }
    return changed;
  }

  /// this &= other.
  void intersect_with(const Bitset& other) {
    CTDF_ASSERT(nbits_ == other.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      words_[i] &= other.words_[i];
  }

  [[nodiscard]] bool intersects(const Bitset& other) const {
    CTDF_ASSERT(nbits_ == other.nbits_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & other.words_[i]) return true;
    return false;
  }

  friend bool operator==(const Bitset&, const Bitset&) = default;

  /// Invoke f(i) for every set bit, ascending.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w) {
        const int b = __builtin_ctzll(w);
        f(wi * 64 + static_cast<std::size_t>(b));
        w &= w - 1;
      }
    }
  }

 private:
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ctdf::support
