// Environment-variable knobs shared by the CLI and the bench harnesses
// (one parser — previously duplicated in tools/ctdf.cpp and
// bench/common.hpp).
#pragma once

#include <cstdlib>

namespace ctdf::support {

/// Host-parallelism override: CTDF_HOST_THREADS=N advances the
/// simulator with N worker threads (0/unset = sequential). Results are
/// bit-identical either way (enforced by machine_parallel_equiv_test),
/// so the knob only changes wall-clock.
inline unsigned host_threads_from_env() {
  const char* v = std::getenv("CTDF_HOST_THREADS");
  if (!v || !*v) return 0;
  const long n = std::strtol(v, nullptr, 10);
  return n > 0 ? static_cast<unsigned>(n) : 0;
}

/// CTDF_STAGE_STATS=1 makes the bench harnesses print each compile's
/// per-stage pipeline table to stderr (off by default).
inline bool stage_stats_from_env() {
  const char* v = std::getenv("CTDF_STAGE_STATS");
  return v && *v && *v != '0';
}

/// CTDF_FUZZ_SEEDS=N sizes the random-program fuzz sweep (tests with
/// the `fuzz` ctest label). Defaults to `fallback` — the quick local
/// sweep; CI's dedicated fuzz job raises it an order of magnitude.
inline unsigned fuzz_seeds_from_env(unsigned fallback) {
  const char* v = std::getenv("CTDF_FUZZ_SEEDS");
  if (!v || !*v) return fallback;
  const long n = std::strtol(v, nullptr, 10);
  return n > 0 ? static_cast<unsigned>(n) : fallback;
}

}  // namespace ctdf::support
