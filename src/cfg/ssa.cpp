#include "cfg/ssa.hpp"

#include <algorithm>

#include "cfg/dataflow.hpp"
#include "support/assert.hpp"

namespace ctdf::cfg {

DominanceFrontiers::DominanceFrontiers(const Graph& g, const DomTree& dom)
    : num_nodes_(g.size()) {
  CTDF_ASSERT(dom.direction() == DomDirection::kForward);
  df_.resize(g.size());
  // Cooper-Harvey-Kennedy: for each join point, walk up from each
  // predecessor to the join's idom, adding the join to every frontier
  // on the way.
  for (NodeId n : g.all_nodes()) {
    const auto& preds = g.preds(n);
    if (preds.size() < 2) continue;
    for (NodeId p : preds) {
      NodeId runner = p;
      while (runner != dom.idom(n)) {
        auto& df = df_[runner];
        if (std::find(df.begin(), df.end(), n) == df.end()) df.push_back(n);
        runner = dom.idom(runner);
        CTDF_ASSERT_MSG(runner.valid(), "runner escaped the dominator tree");
      }
    }
  }
}

std::vector<NodeId> DominanceFrontiers::iterated(
    const std::vector<NodeId>& nodes) const {
  support::Bitset in_result(num_nodes_);
  support::Bitset visited(num_nodes_);
  std::vector<NodeId> work;
  for (NodeId n : nodes) {
    if (!visited.test(n.index())) {
      visited.set(n.index());
      work.push_back(n);
    }
  }
  while (!work.empty()) {
    const NodeId n = work.back();
    work.pop_back();
    for (NodeId m : df_[n]) {
      if (in_result.test(m.index())) continue;
      in_result.set(m.index());
      if (!visited.test(m.index())) {
        visited.set(m.index());
        work.push_back(m);
      }
    }
  }
  std::vector<NodeId> out;
  in_result.for_each([&](std::size_t i) { out.emplace_back(i); });
  return out;
}

PhiPlacement place_phis(const Graph& g, const lang::SymbolTable& syms,
                        bool pruned) {
  const DomTree dom(g, DomDirection::kForward);
  const DominanceFrontiers df(g, dom);
  const Liveness live(g, syms);

  PhiPlacement out;
  out.phis.resize(g.size());
  for (lang::VarId v : syms.all_vars()) {
    std::vector<NodeId> defs{g.start()};  // the initial value
    for (NodeId n : g.all_nodes()) {
      const Node& node = g.node(n);
      if (node.kind == NodeKind::kAssign && node.lhs.var == v)
        defs.push_back(n);
    }
    if (defs.size() < 2) continue;  // never assigned: no joins needed
    for (NodeId site : df.iterated(defs)) {
      if (pruned && !live.live_in(site).test(v.index())) continue;
      out.phis[site].push_back(v);
      ++out.total;
    }
  }
  return out;
}

}  // namespace ctdf::cfg
