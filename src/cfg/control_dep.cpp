#include "cfg/control_dep.hpp"

#include "support/assert.hpp"

namespace ctdf::cfg {

ControlDeps::ControlDeps(const Graph& g, const DomTree& pdom)
    : num_nodes_(g.size()) {
  CTDF_ASSERT(pdom.direction() == DomDirection::kPostdom);
  deps_.resize(g.size());
  for (NodeId f : g.all_nodes()) {
    const Node& node = g.node(f);
    // Only nodes with two out-edges can carry control dependences; in
    // our graphs that is forks and (by the paper's convention) start.
    if (!node.succ_false.valid()) continue;
    const NodeId stop = pdom.idom(f);
    for (const bool dir : {true, false}) {
      NodeId walk = dir ? node.succ_true : node.succ_false;
      while (walk != stop) {
        deps_[walk].push_back({f, dir});
        walk = pdom.idom(walk);
        CTDF_ASSERT_MSG(walk.valid(), "walk ran past the pdom root");
      }
    }
  }
}

support::Bitset ControlDeps::iterated(NodeId n) const {
  return iterated(std::vector<NodeId>{n});
}

support::Bitset ControlDeps::iterated(const std::vector<NodeId>& ns) const {
  // Worklist closure, as in the paper's Figure 10.
  support::Bitset in_set(num_nodes_);
  std::vector<NodeId> worklist;
  const auto push = [&](NodeId n) {
    if (!in_set.test(n.index())) {
      in_set.set(n.index());
      worklist.push_back(n);
    }
  };
  for (NodeId n : ns) push(n);

  support::Bitset result(num_nodes_);
  while (!worklist.empty()) {
    const NodeId n = worklist.back();
    worklist.pop_back();
    for (const ControlDep& d : deps_[n]) {
      result.set(d.fork.index());
      push(d.fork);
    }
  }
  return result;
}

}  // namespace ctdf::cfg
