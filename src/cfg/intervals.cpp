#include "cfg/intervals.hpp"

#include <algorithm>
#include <unordered_set>

#include "cfg/dominance.hpp"
#include "support/assert.hpp"

namespace ctdf::cfg {

namespace {

using NodeSet = std::unordered_set<NodeId::underlying_type>;

bool contains(const NodeSet& s, NodeId n) { return s.contains(n.value()); }

/// Tarjan SCCs of the subgraph induced by `region` (iterative).
std::vector<std::vector<NodeId>> sccs_in_region(const Graph& g,
                                                const NodeSet& region) {
  struct Info {
    std::uint32_t index = UINT32_MAX;
    std::uint32_t lowlink = 0;
    bool on_stack = false;
  };
  support::IndexMap<NodeId, Info> info(g.size());
  std::vector<NodeId> stack;
  std::vector<std::vector<NodeId>> sccs;
  std::uint32_t counter = 0;

  struct Frame {
    NodeId node;
    std::vector<NodeId> succs;
    std::size_t i = 0;
  };
  std::vector<Frame> dfs;

  for (NodeId root : g.all_nodes()) {
    if (!contains(region, root) || info[root].index != UINT32_MAX) continue;
    dfs.push_back({root, g.succs(root)});
    info[root].index = info[root].lowlink = counter++;
    info[root].on_stack = true;
    stack.push_back(root);
    while (!dfs.empty()) {
      Frame& f = dfs.back();
      if (f.i < f.succs.size()) {
        const NodeId w = f.succs[f.i++];
        if (!contains(region, w)) continue;
        if (info[w].index == UINT32_MAX) {
          info[w].index = info[w].lowlink = counter++;
          info[w].on_stack = true;
          stack.push_back(w);
          dfs.push_back({w, g.succs(w)});
        } else if (info[w].on_stack) {
          info[f.node].lowlink = std::min(info[f.node].lowlink, info[w].index);
        }
      } else {
        const NodeId v = f.node;
        dfs.pop_back();
        if (!dfs.empty())
          info[dfs.back().node].lowlink =
              std::min(info[dfs.back().node].lowlink, info[v].lowlink);
        if (info[v].lowlink == info[v].index) {
          std::vector<NodeId> scc;
          for (;;) {
            const NodeId w = stack.back();
            stack.pop_back();
            info[w].on_stack = false;
            scc.push_back(w);
            if (w == v) break;
          }
          sccs.push_back(std::move(scc));
        }
      }
    }
  }
  return sccs;
}

bool has_self_edge(const Graph& g, NodeId n) {
  const Node& node = g.node(n);
  return node.succ_true == n || node.succ_false == n;
}

NodeId clone_node(Graph& g, NodeId n) {
  const Node& node = g.node(n);
  // add_* may grow the node vector and invalidate `node`; copy the
  // successors out before allocating.
  const NodeId succ_true = node.succ_true;
  const NodeId succ_false = node.succ_false;
  NodeId copy;
  switch (node.kind) {
    case NodeKind::kAssign:
      copy = g.add_assign(node.lhs.clone(), node.rhs->clone());
      break;
    case NodeKind::kFork:
      copy = g.add_fork(node.pred->clone());
      break;
    case NodeKind::kJoin:
      copy = g.add_join(node.name.empty() ? "" : node.name + "'");
      break;
    default:
      CTDF_UNREACHABLE("only statements can be split");
  }
  if (succ_true.valid()) g.set_succ(copy, true, succ_true);
  if (succ_false.valid()) g.set_succ(copy, false, succ_false);
  return copy;
}

/// One splitting step inside `region`; true iff the graph was changed.
bool split_pass(Graph& g, const NodeSet& region, int& splits) {
  for (auto& scc_nodes : sccs_in_region(g, region)) {
    const bool nontrivial =
        scc_nodes.size() > 1 || has_self_edge(g, scc_nodes.front());
    if (!nontrivial) continue;

    NodeSet scc;
    for (NodeId n : scc_nodes) scc.insert(n.value());

    // Entry nodes: members with a predecessor outside the SCC.
    std::vector<NodeId> entries;
    support::IndexMap<NodeId, int> external_preds(g.size(), 0);
    for (NodeId n : scc_nodes) {
      int ext = 0;
      for (NodeId p : g.preds(n))
        if (!contains(scc, p)) ++ext;
      if (ext > 0) {
        entries.push_back(n);
        external_preds[n] = ext;
      }
    }
    CTDF_ASSERT_MSG(!entries.empty(), "SCC unreachable from outside");

    if (entries.size() > 1) {
      // Irreducible: keep the most-entered node as header, split the
      // others (code copying).
      const NodeId header = *std::max_element(
          entries.begin(), entries.end(), [&](NodeId a, NodeId b) {
            return external_preds[a] < external_preds[b];
          });
      for (NodeId e : entries) {
        if (e == header) continue;
        const NodeId copy = clone_node(g, e);
        ++splits;
        const std::vector<NodeId> preds = g.preds(e);  // copy; we mutate
        for (NodeId p : preds) {
          if (contains(scc, p)) continue;
          for (const bool dir : {true, false}) {
            if (g.has_succ(p, dir) &&
                (dir ? g.node(p).succ_true : g.node(p).succ_false) == e)
              g.redirect_succ(p, dir, copy);
          }
        }
      }
      return true;
    }

    // Single entry: recurse into the region below the header to find
    // nested irreducibility.
    const NodeId header = entries.front();
    NodeSet inner = scc;
    inner.erase(header.value());
    if (!inner.empty() && split_pass(g, inner, splits)) return true;
  }
  return false;
}

int make_reducible(Graph& g, support::DiagnosticEngine& diags) {
  int splits = 0;
  const int budget = 1000 + static_cast<int>(g.size()) * 10;
  for (;;) {
    NodeSet all;
    for (NodeId n : g.all_nodes()) all.insert(n.value());
    if (!split_pass(g, all, splits)) break;
    if (splits > budget) {
      diags.error({}, "node splitting budget exceeded; control flow too "
                      "irreducible to decompose into intervals");
      break;
    }
  }
  return splits;
}

}  // namespace

bool LoopInfo::in_loop(NodeId n, LoopId l) const {
  if (!membership_.contains(n)) return false;
  const auto& ls = membership_[n];
  return std::find(ls.begin(), ls.end(), l) != ls.end();
}

LoopId LoopInfo::loop_of_control_node(const Graph& g, NodeId n) const {
  const Node& node = g.node(n);
  if (node.kind == NodeKind::kLoopEntry || node.kind == NodeKind::kLoopExit)
    return node.loop;
  return LoopId::invalid();
}

bool LoopInfo::is_back_edge(NodeId from, NodeId to) const {
  for (const Loop& l : loops_)
    if (l.entry == to) return in_loop(from, l.id);
  return false;
}

std::vector<lang::VarId> LoopInfo::used_vars(const Graph& g, LoopId l) const {
  std::vector<lang::VarId> out;
  for (NodeId n : loop(l).members) {
    const NodeKind k = g.kind(n);
    if (k != NodeKind::kAssign && k != NodeKind::kFork) continue;
    for (lang::VarId v : g.refs(n))
      if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

LoopInfo transform_loops(Graph& g, support::DiagnosticEngine& diags) {
  LoopInfo info;
  info.nodes_split_ = make_reducible(g, diags);
  if (diags.has_errors()) return info;

  // Natural loops of the (now reducible) graph, merged per header.
  const DomTree dom{g, DomDirection::kForward};
  std::vector<NodeId> headers;
  support::IndexMap<NodeId, NodeSet> members_of(g.size());
  for (NodeId u : g.all_nodes()) {
    for (NodeId v : g.succs(u)) {
      if (!dom.dominates(v, u)) continue;  // not a back edge
      NodeSet& members = members_of[v];
      if (members.empty()) headers.push_back(v);
      // Backward closure from u, stopping at v.
      std::vector<NodeId> stack;
      const auto add = [&](NodeId n) {
        if (members.insert(n.value()).second && n != v) stack.push_back(n);
      };
      add(v);
      add(u);
      while (!stack.empty()) {
        const NodeId n = stack.back();
        stack.pop_back();
        for (NodeId p : g.preds(n)) add(p);
      }
    }
  }

  // Loop records; parents by smallest strictly-containing loop.
  std::vector<NodeSet> member_sets;
  for (NodeId h : headers) {
    Loop l;
    l.id = LoopId{info.loops_.size()};
    l.header = h;
    info.loops_.push_back(std::move(l));
    member_sets.push_back(members_of[h]);
  }
  const auto set_size = [&](LoopId l) { return member_sets[l.index()].size(); };
  for (Loop& l : info.loops_) {
    LoopId best;
    for (const Loop& m : info.loops_) {
      if (m.id == l.id) continue;
      if (!member_sets[m.id.index()].contains(l.header.value())) continue;
      if (!best.valid() || set_size(m.id) < set_size(best)) best = m.id;
    }
    l.parent = best;
  }
  for (Loop& l : info.loops_) {
    int d = 0;
    for (LoopId p = l.parent; p.valid(); p = info.loops_[p.index()].parent)
      ++d;
    l.depth = d;
  }

  // Insert loop exits and entries, innermost loops first.
  std::vector<LoopId> order;
  for (const Loop& l : info.loops_) order.push_back(l.id);
  std::sort(order.begin(), order.end(), [&](LoopId a, LoopId b) {
    return info.loops_[a.index()].depth > info.loops_[b.index()].depth;
  });

  const auto ancestors_of = [&](LoopId l) {
    std::vector<LoopId> out;
    for (LoopId p = info.loops_[l.index()].parent; p.valid();
         p = info.loops_[p.index()].parent)
      out.push_back(p);
    return out;
  };

  for (LoopId lid : order) {
    Loop& l = info.loops_[lid.index()];
    NodeSet& members = member_sets[lid.index()];
    const auto ancestors = ancestors_of(lid);

    // Exits first (so the freshly inserted entry node is not mistaken
    // for an exit target): every edge member --dir--> non-member.
    const std::vector<NodeId::underlying_type> snapshot(members.begin(),
                                                        members.end());
    for (const auto raw : snapshot) {
      const NodeId a{raw};
      for (const bool dir : {true, false}) {
        if (!g.has_succ(a, dir)) continue;
        const NodeId b = dir ? g.node(a).succ_true : g.node(a).succ_false;
        if (contains(members, b)) continue;
        const NodeId lx = g.add_loop_exit(lid);
        g.redirect_succ(a, dir, lx);
        g.set_succ(lx, true, b);
        l.exits.push_back(lx);
        // Exit nodes belong to every enclosing loop (so outer exits
        // chain after inner ones) but not to this loop.
        for (LoopId anc : ancestors)
          member_sets[anc.index()].insert(lx.value());
      }
    }

    // Entry: reroute every edge into the header — external entries and
    // back edges alike — through a single loop-entry node.
    const NodeId le = g.add_loop_entry(lid);
    const std::vector<NodeId> preds = g.preds(l.header);  // copy; we mutate
    for (NodeId p : preds) {
      for (const bool dir : {true, false}) {
        if (g.has_succ(p, dir) &&
            (dir ? g.node(p).succ_true : g.node(p).succ_false) == l.header)
          g.redirect_succ(p, dir, le);
      }
    }
    g.set_succ(le, true, l.header);
    l.entry = le;
    members.insert(le.value());
    for (LoopId anc : ancestors) member_sets[anc.index()].insert(le.value());
  }

  // Freeze membership into queryable form.
  info.membership_.resize(g.size());
  for (const Loop& l : info.loops_) {
    for (const auto raw : member_sets[l.id.index()]) {
      const NodeId n{raw};
      info.membership_[n].push_back(l.id);
    }
  }
  for (Loop& l : info.loops_) {
    for (const auto raw : member_sets[l.id.index()]) l.members.emplace_back(raw);
    std::sort(l.members.begin(), l.members.end());
  }

  for (auto& problem : g.validate())
    diags.error({}, "loop transform: " + problem);
  return info;
}

}  // namespace ctdf::cfg
