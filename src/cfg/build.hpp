// Lowering lang::Program to the statement-level CFG of Section 2.1.
//
// Every source label becomes a join node (joins are the only goto
// targets, per the paper); structured if/while statements lower to
// fork + join diamonds and cycles. A synthetic final join collects all
// program exits in front of `end`, and the conventional start→end edge
// is added (start's false out-direction), making start a fork.
//
// Unreachable statements (e.g. code after an unconditional goto with no
// label) are pruned. A reachable cycle with no path to `end` (a true
// infinite loop) violates the paper's every-node-on-a-start-to-end-path
// assumption and is reported as an error.
#pragma once

#include "cfg/graph.hpp"
#include "lang/ast.hpp"
#include "support/diagnostics.hpp"

namespace ctdf::cfg {

/// Lowers `prog` to a CFG. On malformed flow (infinite loop with no
/// exit) reports to `diags` and returns the partial graph.
[[nodiscard]] Graph build_cfg(const lang::Program& prog,
                              support::DiagnosticEngine& diags);

/// Convenience wrapper that throws support::CompileError on any error.
[[nodiscard]] Graph build_cfg_or_throw(const lang::Program& prog);

}  // namespace ctdf::cfg
