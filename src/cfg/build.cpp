#include "cfg/build.hpp"

#include <optional>
#include <unordered_map>
#include <utility>

#include "support/assert.hpp"

namespace ctdf::cfg {

namespace {

class Builder {
 public:
  Builder(const lang::Program& prog, support::DiagnosticEngine& diags)
      : prog_(prog), diags_(diags) {}

  Graph run() {
    // Joins for every label; `end` is the synthetic final join.
    end_join_ = g_.add_join("end");
    joins_.emplace("end", end_join_);
    for (const auto& s : prog_.body)
      for (const auto& l : s->labels) joins_.emplace(l, g_.add_join(l));

    current_ = {g_.start(), true};
    g_.set_succ(g_.start(), false, g_.end());  // conventional start→end edge

    for (const auto& s : prog_.body) lower_toplevel(*s);
    wire_to(end_join_);
    g_.set_succ(end_join_, true, g_.end());

    Graph pruned = prune(std::move(g_));
    for (auto& problem : pruned.validate())
      diags_.error({}, "CFG: " + problem);
    return pruned;
  }

 private:
  /// Wires the pending out-edge (if any) into `to`.
  void wire_to(NodeId to) {
    if (current_) g_.set_succ(current_->first, current_->second, to);
    current_.reset();
  }

  /// Wires the pending edge into `n` and makes `n`'s single out-edge the
  /// new pending edge.
  void append(NodeId n) {
    wire_to(n);
    current_ = {n, true};
  }

  void lower_toplevel(const lang::Stmt& s) {
    for (const auto& label : s.labels) append(joins_.at(label));
    // A statement that is unreachable (no pending edge, no label) is
    // dead code; skip it entirely.
    if (!current_) return;
    switch (s.kind) {
      case lang::Stmt::Kind::kGoto:
        wire_to(joins_.at(s.target_true));
        break;
      case lang::Stmt::Kind::kCondGoto: {
        const NodeId f = g_.add_fork(s.expr->clone());
        wire_to(f);
        g_.set_succ(f, true, joins_.at(s.target_true));
        g_.set_succ(f, false, joins_.at(s.target_false));
        break;
      }
      default:
        lower_structured(s);
        break;
    }
  }

  void lower_structured(const lang::Stmt& s) {
    switch (s.kind) {
      case lang::Stmt::Kind::kAssign:
        append(g_.add_assign(s.lhs.clone(), s.expr->clone()));
        break;
      case lang::Stmt::Kind::kSkip:
        break;
      case lang::Stmt::Kind::kIf: {
        const NodeId f = g_.add_fork(s.expr->clone());
        wire_to(f);
        const NodeId j = g_.add_join();
        current_ = {f, true};
        for (const auto& t : s.then_body) lower_structured(*t);
        wire_to(j);
        current_ = {f, false};
        for (const auto& t : s.else_body) lower_structured(*t);
        wire_to(j);
        current_ = {j, true};
        break;
      }
      case lang::Stmt::Kind::kWhile: {
        const NodeId h = g_.add_join();
        append(h);
        const NodeId f = g_.add_fork(s.expr->clone());
        wire_to(f);
        current_ = {f, true};
        for (const auto& t : s.then_body) lower_structured(*t);
        wire_to(h);  // back edge
        current_ = {f, false};
        break;
      }
      case lang::Stmt::Kind::kGoto:
      case lang::Stmt::Kind::kCondGoto:
        CTDF_UNREACHABLE("gotos are top-level only (parser enforced)");
    }
  }

  /// Copies the subgraph reachable from start into a fresh graph,
  /// dropping dead label joins and unreachable code.
  Graph prune(Graph&& old) {
    std::vector<bool> reach(old.size(), false);
    std::vector<NodeId> stack{old.start()};
    reach[old.start().index()] = true;
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      for (NodeId s : old.succs(n)) {
        if (!reach[s.index()]) {
          reach[s.index()] = true;
          stack.push_back(s);
        }
      }
    }

    Graph fresh;
    support::IndexMap<NodeId, NodeId> remap(old.size());
    remap[old.start()] = fresh.start();
    remap[old.end()] = fresh.end();
    for (NodeId n : old.all_nodes()) {
      if (!reach[n.index()] || n == old.start() || n == old.end()) continue;
      Node& node = old.node(n);
      switch (node.kind) {
        case NodeKind::kAssign:
          remap[n] = fresh.add_assign(std::move(node.lhs), std::move(node.rhs));
          break;
        case NodeKind::kFork:
          remap[n] = fresh.add_fork(std::move(node.pred));
          break;
        case NodeKind::kJoin:
          remap[n] = fresh.add_join(node.name);
          break;
        default:
          CTDF_UNREACHABLE("loop nodes cannot exist before LoopTransform");
      }
    }
    for (NodeId n : old.all_nodes()) {
      if (!reach[n.index()]) continue;
      const Node& node = old.node(n);
      if (node.succ_true.valid())
        fresh.set_succ(remap[n], true, remap[node.succ_true]);
      if (node.succ_false.valid())
        fresh.set_succ(remap[n], false, remap[node.succ_false]);
    }
    return fresh;
  }

  const lang::Program& prog_;
  support::DiagnosticEngine& diags_;
  Graph g_;
  NodeId end_join_;
  std::unordered_map<std::string, NodeId> joins_;
  std::optional<std::pair<NodeId, bool>> current_;
};

}  // namespace

Graph build_cfg(const lang::Program& prog, support::DiagnosticEngine& diags) {
  return Builder{prog, diags}.run();
}

Graph build_cfg_or_throw(const lang::Program& prog) {
  support::DiagnosticEngine diags;
  Graph g = build_cfg(prog, diags);
  diags.throw_if_errors();
  return g;
}

}  // namespace ctdf::cfg
