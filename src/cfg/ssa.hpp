// Static single assignment construction: dominance frontiers and
// minimal/pruned φ-function placement.
//
// The paper's Section 6.1 draws the connection explicitly: eliminating
// memory operations and passing values on tokens turns the program into
// a single-assignment form, where "the joining of values to produce a
// single value is implicit in the model" — the dataflow merge plays the
// role SSA gives to φ-functions. This module builds classic SSA
// (Cytron-style: dominance frontiers of definition sites, optionally
// pruned by liveness) so that correspondence can be measured: the
// tab_ssa_merges experiment compares φ counts against the merge
// operators the memory-eliminated translation actually emits.
#pragma once

#include <vector>

#include "cfg/dominance.hpp"
#include "cfg/graph.hpp"
#include "lang/symbols.hpp"
#include "support/bitset.hpp"
#include "support/index_map.hpp"

namespace ctdf::cfg {

/// Dominance frontiers (Cytron et al.): DF(n) = nodes m with a
/// predecessor dominated by n while m itself is not strictly dominated
/// by n.
class DominanceFrontiers {
 public:
  /// `dom` must be the forward dominator tree of `g`.
  DominanceFrontiers(const Graph& g, const DomTree& dom);

  [[nodiscard]] const std::vector<NodeId>& frontier(NodeId n) const {
    return df_[n];
  }

  /// Iterated dominance frontier of a set of nodes.
  [[nodiscard]] std::vector<NodeId> iterated(
      const std::vector<NodeId>& nodes) const;

 private:
  support::IndexMap<NodeId, std::vector<NodeId>> df_;
  std::size_t num_nodes_;
};

struct PhiPlacement {
  /// φ-functions per node: phis[n] lists the variables needing a φ at n.
  support::IndexMap<NodeId, std::vector<lang::VarId>> phis;
  std::size_t total = 0;
};

/// Minimal SSA: a φ for v at every node of the iterated dominance
/// frontier of v's definition sites (assignments to v plus the implicit
/// definition of everything at start). With `pruned`, φs are kept only
/// where v is live-in (pruned SSA) — the placement that corresponds to
/// merges that actually carry a consumed value.
[[nodiscard]] PhiPlacement place_phis(const Graph& g,
                                      const lang::SymbolTable& syms,
                                      bool pruned);

}  // namespace ctdf::cfg
